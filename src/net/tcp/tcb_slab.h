// Slab allocator for TCP connection control blocks (docs/SCALING.md §3).
//
// Connections are allocated with std::allocate_shared into fixed 256-byte slots carved from
// large chunks, so one million TCBs cost exactly 256 MB-ish of arena with zero per-object
// malloc metadata and no heap fragmentation: the shared_ptr control block and the TcpConnection
// object share one slot. Freed slots go on an intrusive freelist and are reused LIFO (warm
// cache lines first).
//
// Lifetime: the allocator baked into each control block holds a shared_ptr to the arena state,
// so connection handles that outlive the TcpStack (application-held shared_ptrs) still return
// their slot to an arena that is kept alive until the last handle drops.

#ifndef SRC_NET_TCP_TCB_SLAB_H_
#define SRC_NET_TCP_TCB_SLAB_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "src/common/affinity.h"

namespace demi {

class TcbSlab {  // demilint: shard-local
 public:
  static constexpr size_t kSlotBytes = 256;
  static constexpr size_t kSlotsPerChunk = 4096;  // 1 MB chunks

  TcbSlab() : state_(std::make_shared<State>()) {}

  // Allocates a T with shared ownership; control block and object live in one slab slot.
  template <typename T, typename... Args>
  std::shared_ptr<T> Make(Args&&... args) {
    return std::allocate_shared<T>(Alloc<T>{state_}, std::forward<Args>(args)...);
  }

  // Live slot count (allocated minus freed), i.e. connections currently backed by the slab.
  size_t live() const { return state_->live; }
  // Bytes reserved by all chunks (the slab's share of the per-connection byte budget).
  size_t ReservedBytes() const { return state_->chunks.size() * kSlotsPerChunk * kSlotBytes; }
  // Allocations that did not fit a slot and fell back to the global heap (should be zero; a
  // nonzero count means sizeof(TcpConnection) + control block outgrew kSlotBytes).
  uint64_t oversize_allocs() const { return state_->oversize; }
  uint64_t total_allocs() const { return state_->allocs; }

  // DemiSan thread-affinity (docs/STATIC_ANALYSIS.md): binds the arena to the owning worker at
  // shard spawn so a foreign thread allocating or returning a TCB slot aborts deterministically.
  // The tag lives in the shared State so slots returned through application-held connection
  // handles are checked too; ShardGroup unbinds at worker exit, so post-Join teardown on the
  // control thread is legal. Zero-cost unless built with DEMI_OWNERSHIP_CHECKS.
  void BindShard(int shard_id) { state_->affinity.Bind(shard_id); }
  void UnbindShard() { state_->affinity.Unbind(); }

 private:
  struct State {
    std::vector<std::unique_ptr<uint8_t[]>> chunks;
    void* free_head = nullptr;  // intrusive: first 8 bytes of a free slot point to the next
    size_t live = 0;
    uint64_t allocs = 0;
    uint64_t oversize = 0;
    ShardAffinity affinity;  // empty (zero-cost) unless DEMI_OWNERSHIP_CHECKS

    void* AllocSlot() {
      affinity.Check("TcbSlab::AllocSlot");
      if (free_head == nullptr) {
        auto chunk = std::make_unique<uint8_t[]>(kSlotsPerChunk * kSlotBytes);
        uint8_t* base = chunk.get();
        for (size_t i = kSlotsPerChunk; i-- > 0;) {
          void* slot = base + i * kSlotBytes;
          *static_cast<void**>(slot) = free_head;
          free_head = slot;
        }
        chunks.push_back(std::move(chunk));
      }
      void* slot = free_head;
      free_head = *static_cast<void**>(slot);
      live++;
      allocs++;
      return slot;
    }

    void FreeSlot(void* slot) {
      affinity.Check("TcbSlab::FreeSlot");
      *static_cast<void**>(slot) = free_head;
      free_head = slot;
      live--;
    }
  };

  template <typename T>
  struct Alloc {
    using value_type = T;

    std::shared_ptr<State> state;

    template <typename U>
    // NOLINTNEXTLINE(google-explicit-constructor): rebind conversion must be implicit
    Alloc(const Alloc<U>& other) : state(other.state) {}
    explicit Alloc(std::shared_ptr<State> s) : state(std::move(s)) {}

    T* allocate(size_t n) {
      const size_t bytes = n * sizeof(T);
      if (bytes > kSlotBytes) {
        state->oversize++;
        state->allocs++;
        return static_cast<T*>(::operator new(bytes));
      }
      return static_cast<T*>(state->AllocSlot());
    }

    void deallocate(T* p, size_t n) {
      if (n * sizeof(T) > kSlotBytes) {
        ::operator delete(p);
        return;
      }
      state->FreeSlot(p);
    }

    friend bool operator==(const Alloc& a, const Alloc& b) { return a.state == b.state; }
  };

  template <typename U>
  friend struct Alloc;

  std::shared_ptr<State> state_;
};

}  // namespace demi

#endif  // SRC_NET_TCP_TCB_SLAB_H_
