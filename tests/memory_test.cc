// Unit and property tests for the DMA-capable heap: pool allocator, UAF protection, Buffer.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/memory/buffer.h"
#include "src/memory/dma.h"
#include "src/memory/pool_allocator.h"

namespace demi {
namespace {

// Registrar that records registrations so tests can observe DMA behaviour.
class RecordingRegistrar final : public DmaRegistrar {
 public:
  uint64_t RegisterRegion(void* base, size_t len) override {
    registered_.insert(base);
    total_registrations_++;
    return next_key_++;
  }
  void UnregisterRegion(void* base) override { registered_.erase(base); }

  bool IsRegistered(void* base) const { return registered_.count(base) > 0; }
  size_t num_registered() const { return registered_.size(); }
  size_t total_registrations() const { return total_registrations_; }

 private:
  std::set<void*> registered_;
  uint64_t next_key_ = 100;
  size_t total_registrations_ = 0;
};

TEST(PoolAllocatorTest, AllocFreeBasic) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(64);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(alloc.Owns(p));
  EXPECT_EQ(alloc.ObjectSize(p), 64u);
  std::memset(p, 0xAB, 64);
  alloc.Free(p);
  EXPECT_EQ(alloc.GetStats().live_objects, 0u);
}

TEST(PoolAllocatorTest, SizeClassRounding) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(17);
  EXPECT_EQ(alloc.ObjectSize(p), 32u);
  alloc.Free(p);
  void* q = alloc.Alloc(1);
  EXPECT_EQ(alloc.ObjectSize(q), 16u);
  alloc.Free(q);
}

TEST(PoolAllocatorTest, LifoReuse) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(128);
  alloc.Free(p);
  void* q = alloc.Alloc(128);
  EXPECT_EQ(p, q);  // Hoard-style LIFO free list
  alloc.Free(q);
}

TEST(PoolAllocatorTest, DistinctObjectsDoNotAlias) {
  PoolAllocator alloc;
  std::set<void*> seen;
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; i++) {
    void* p = alloc.Alloc(256);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate allocation";
    ptrs.push_back(p);
  }
  for (void* p : ptrs) {
    alloc.Free(p);
  }
}

TEST(PoolAllocatorTest, SpillsToNewSuperblockWhenFull) {
  PoolAllocator alloc;
  // 64 kB objects: only a few fit per 256 kB superblock.
  std::vector<void*> ptrs;
  for (int i = 0; i < 16; i++) {
    ptrs.push_back(alloc.Alloc(64 * 1024));
  }
  EXPECT_GT(alloc.GetStats().superblocks, 1u);
  for (void* p : ptrs) {
    alloc.Free(p);
  }
}

TEST(PoolAllocatorTest, HugeAllocationsWork) {
  PoolAllocator alloc;
  const size_t huge = 1 << 20;  // 1 MB, beyond kMaxPooledObject
  void* p = alloc.Alloc(huge);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(alloc.Owns(p));
  std::memset(p, 0x5A, huge);
  alloc.Free(p);
}

TEST(PoolAllocatorTest, HugeAllocationWithOsRefDefersFree) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(1 << 20);
  alloc.IncRef(p);
  alloc.Free(p);  // deferred: libOS still holds it
  // Writing must still be safe (memory not released).
  std::memset(p, 1, 16);
  alloc.DecRef(p);  // now truly released
}

TEST(UafProtectionTest, FreeDeferredWhileLibOsHoldsRef) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(2048);
  alloc.IncRef(p);
  alloc.Free(p);
  EXPECT_EQ(alloc.GetStats().deferred_frees, 1u);
  // The object must NOT be recycled yet: a new allocation can't return it.
  void* q = alloc.Alloc(2048);
  EXPECT_NE(p, q);
  alloc.DecRef(p);
  EXPECT_EQ(alloc.GetStats().deferred_frees, 0u);
  // Now it is recyclable (LIFO: comes right back).
  void* r = alloc.Alloc(2048);
  EXPECT_EQ(r, p);
  alloc.Free(q);
  alloc.Free(r);
}

TEST(UafProtectionTest, MultipleLibOsRefsUseOverflowTable) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(4096);
  alloc.IncRef(p);  // bitmap bit
  alloc.IncRef(p);  // overflow
  alloc.IncRef(p);  // overflow
  EXPECT_EQ(alloc.GetStats().overflow_refs, 2u);
  alloc.Free(p);
  alloc.DecRef(p);
  alloc.DecRef(p);
  EXPECT_EQ(alloc.GetStats().deferred_frees, 1u);
  alloc.DecRef(p);  // last ref: recycled
  EXPECT_EQ(alloc.GetStats().deferred_frees, 0u);
  EXPECT_EQ(alloc.GetStats().overflow_refs, 0u);
}

TEST(UafProtectionTest, RefWithoutFreeKeepsObjectAlive) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(1024);
  alloc.IncRef(p);
  alloc.DecRef(p);
  // App still owns it; must not have been recycled.
  void* q = alloc.Alloc(1024);
  EXPECT_NE(p, q);
  alloc.Free(p);
  alloc.Free(q);
}

TEST(DmaTest, LazyRegistrationOnFirstRkey) {
  RecordingRegistrar reg;
  PoolAllocator alloc(reg);
  void* p = alloc.Alloc(2048);
  EXPECT_EQ(reg.total_registrations(), 0u);
  uint64_t key1 = alloc.GetRkey(p);
  EXPECT_EQ(reg.total_registrations(), 1u);
  // Same superblock: cached, no re-registration (the paper's get_rkey design).
  void* q = alloc.Alloc(2048);
  uint64_t key2 = alloc.GetRkey(q);
  EXPECT_EQ(key1, key2);
  EXPECT_EQ(reg.total_registrations(), 1u);
  alloc.Free(p);
  alloc.Free(q);
}

TEST(DmaTest, UnregisterOnRelease) {
  RecordingRegistrar reg;
  {
    PoolAllocator alloc(reg);
    void* p = alloc.Alloc(2048);
    alloc.GetRkey(p);
    EXPECT_EQ(reg.num_registered(), 1u);
    alloc.Free(p);
  }
  EXPECT_EQ(reg.num_registered(), 0u);
}

TEST(PoolAllocatorTest, ReleaseEmptySuperblocksReturnsMemory) {
  PoolAllocator alloc;
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; i++) {
    ptrs.push_back(alloc.Alloc(512));
  }
  for (void* p : ptrs) {
    alloc.Free(p);
  }
  EXPECT_GT(alloc.GetStats().superblocks, 0u);
  alloc.ReleaseEmptySuperblocks();
  EXPECT_EQ(alloc.GetStats().superblocks, 0u);
  EXPECT_EQ(alloc.GetStats().bytes_reserved, 0u);
}

// Property test: random alloc/free/ref sequences never corrupt free lists or alias objects.
TEST(PoolAllocatorPropertyTest, RandomizedWorkloadMaintainsInvariants) {
  PoolAllocator alloc;
  Rng rng(2024);
  struct Live {
    void* ptr;
    size_t size;
    uint8_t fill;
    int os_refs;
    bool app_owned;
  };
  std::vector<Live> live;
  for (int step = 0; step < 20'000; step++) {
    const uint64_t action = rng.NextBounded(100);
    if (action < 45 || live.empty()) {
      const size_t size = 1ull << (4 + rng.NextBounded(8));  // 16B .. 2 kB
      void* p = alloc.Alloc(size);
      ASSERT_NE(p, nullptr);
      const uint8_t fill = static_cast<uint8_t>(rng.Next());
      std::memset(p, fill, size);
      live.push_back({p, size, fill, 0, true});
    } else {
      const size_t i = rng.NextBounded(live.size());
      Live& obj = live[i];
      // Verify the fill is intact: no other object overwrote us.
      for (size_t b = 0; b < obj.size; b += 97) {
        ASSERT_EQ(static_cast<uint8_t*>(obj.ptr)[b], obj.fill) << "heap corruption";
      }
      if (action < 65 && obj.app_owned) {
        alloc.Free(obj.ptr);
        obj.app_owned = false;
      } else if (action < 80) {
        alloc.IncRef(obj.ptr);
        obj.os_refs++;
      } else if (obj.os_refs > 0) {
        alloc.DecRef(obj.ptr);
        obj.os_refs--;
      }
      if (!obj.app_owned && obj.os_refs == 0) {
        live.erase(live.begin() + static_cast<long>(i));
      }
    }
  }
  // Drain.
  for (Live& obj : live) {
    while (obj.os_refs-- > 0) {
      alloc.DecRef(obj.ptr);
    }
    if (obj.app_owned) {
      alloc.Free(obj.ptr);
    }
  }
  EXPECT_EQ(alloc.GetStats().live_objects, 0u);
  EXPECT_EQ(alloc.GetStats().deferred_frees, 0u);
}

TEST(BufferTest, AllocateAndRelease) {
  PoolAllocator alloc;
  {
    Buffer b = Buffer::Allocate(alloc, 2048);
    EXPECT_EQ(b.size(), 2048u);
    std::memset(b.mutable_data(), 7, b.size());
  }
  EXPECT_EQ(alloc.GetStats().live_objects, 0u);
}

TEST(BufferTest, FromAppZeroCopyAboveThreshold) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(4096);
  std::memset(p, 3, 4096);
  {
    Buffer b = Buffer::FromApp(alloc, p, 4096);
    EXPECT_EQ(b.data(), p);  // zero-copy: same memory
    // App frees while libOS holds the buffer: UAF protection defers.
    alloc.Free(p);
    EXPECT_EQ(alloc.GetStats().deferred_frees, 1u);
    EXPECT_EQ(b.data()[100], 3);
  }
  EXPECT_EQ(alloc.GetStats().deferred_frees, 0u);
}

TEST(BufferTest, FromAppCopiesBelowThreshold) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(64);
  std::memset(p, 9, 64);
  Buffer b = Buffer::FromApp(alloc, p, 64);
  EXPECT_NE(static_cast<const void*>(b.data()), p);  // copied
  EXPECT_EQ(b.data()[10], 9);
  alloc.Free(p);  // immediately reusable: libOS took a copy
}

TEST(BufferTest, FromAppCopiesForeignMemory) {
  PoolAllocator alloc;
  char stack_buf[32] = "hello";
  Buffer b = Buffer::FromApp(alloc, stack_buf, sizeof(stack_buf));
  EXPECT_EQ(std::memcmp(b.data(), "hello", 5), 0);
}

TEST(BufferTest, SliceSharesMemory) {
  PoolAllocator alloc;
  Buffer b = Buffer::Allocate(alloc, 2048);
  std::memset(b.mutable_data(), 0, 2048);
  b.mutable_data()[100] = 42;
  Buffer s = b.Slice(100, 50);
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(s.data()[0], 42);
  EXPECT_EQ(s.data(), b.data() + 100);
}

TEST(BufferTest, SliceKeepsObjectAliveAfterOriginalDies) {
  PoolAllocator alloc;
  Buffer s;
  {
    Buffer b = Buffer::Allocate(alloc, 2048);
    b.mutable_data()[5] = 11;
    s = b.Slice(0, 10);
  }
  EXPECT_EQ(s.data()[5], 11);  // slice's reference kept it alive
  s = Buffer();
  EXPECT_EQ(alloc.GetStats().live_objects, 0u);
  EXPECT_EQ(alloc.GetStats().deferred_frees, 0u);
}

TEST(BufferTest, TrimAdjustsView) {
  PoolAllocator alloc;
  Buffer b = Buffer::Allocate(alloc, 100);
  for (int i = 0; i < 100; i++) {
    b.mutable_data()[i] = static_cast<uint8_t>(i);
  }
  b.TrimFront(10);
  EXPECT_EQ(b.size(), 90u);
  EXPECT_EQ(b.data()[0], 10);
  b.TrimTo(5);
  EXPECT_EQ(b.size(), 5u);
}

TEST(BufferTest, ReleaseToAppTransfersOwnership) {
  PoolAllocator alloc;
  Buffer b = Buffer::Allocate(alloc, 2048);
  std::memset(b.mutable_data(), 0xCD, 2048);
  void* p = b.ReleaseToApp();
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(b.valid());
  // App now owns p: data intact, and app must free it.
  EXPECT_EQ(static_cast<uint8_t*>(p)[7], 0xCD);
  alloc.Free(p);
  EXPECT_EQ(alloc.GetStats().live_objects, 0u);
}

TEST(BufferTest, MoveTransfersWithoutRefchurn) {
  PoolAllocator alloc;
  Buffer a = Buffer::Allocate(alloc, 2048);
  const uint8_t* data = a.data();
  Buffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.data(), data);
}

// Parameterized sweep: Buffer round-trips across the zero-copy threshold boundary.
class BufferSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferSizeSweep, FromAppRoundTripPreservesData) {
  PoolAllocator alloc;
  const size_t size = GetParam();
  void* p = alloc.Alloc(size);
  for (size_t i = 0; i < size; i++) {
    static_cast<uint8_t*>(p)[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  Buffer b = Buffer::FromApp(alloc, p, size);
  for (size_t i = 0; i < size; i += 13) {
    ASSERT_EQ(b.data()[i], static_cast<uint8_t>(i * 31 + 7));
  }
  const bool zero_copy = size >= PoolAllocator::kZeroCopyThreshold;
  EXPECT_EQ(static_cast<const void*>(b.data()) == p, zero_copy);
  alloc.Free(p);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BufferSizeSweep,
                         ::testing::Values(1, 16, 100, 512, 1023, 1024, 1025, 4096, 65536,
                                           1 << 20));

// --- Ownership-violation death tests ---
//
// The first three require a DemiSan build (cmake -DDEMI_OWNERSHIP_CHECKS=ON): generation
// counters and poison bytes exist only there, so plain builds skip them. The last two are
// refcount-discipline aborts that the allocator enforces in EVERY build.

TEST(DemiSanDeathTest, WriteAfterFreeCaughtAtNextAlloc) {
#if defined(DEMI_OWNERSHIP_CHECKS)
  PoolAllocator alloc;
  void* p = alloc.Alloc(256);
  alloc.Free(p);
  // The application keeps writing through its stale pointer (use-after-pop). The damage is
  // detected when the LIFO free list hands the same slot out again.
  static_cast<uint8_t*>(p)[16] = 0x42;
  EXPECT_DEATH((void)alloc.Alloc(256), "DemiSan: write to freed object \\(poison damaged\\)");
#else
  GTEST_SKIP() << "requires -DDEMI_OWNERSHIP_CHECKS=ON";
#endif
}

TEST(DemiSanDeathTest, BufferAccessAfterObjectRecycled) {
#if defined(DEMI_OWNERSHIP_CHECKS)
  PoolAllocator alloc;
  // Everything lives inside the death statement so the stale Buffer never destructs in the
  // parent process (its Release would abort there too, which is the point of the check).
  EXPECT_DEATH(
      {
        Buffer b = Buffer::TryAllocate(alloc, 128);
        ASSERT_TRUE(b.valid());
        void* base = b.mutable_data();
        // A buggy component releases both identities behind the view's back; the slot
        // recycles and its generation advances.
        alloc.DecRef(base);
        alloc.Free(base);
        (void)b.data();
      },
      "DemiSan: Buffer access after underlying object recycled");
#else
  GTEST_SKIP() << "requires -DDEMI_OWNERSHIP_CHECKS=ON";
#endif
}

TEST(DemiSanDeathTest, ViolationReportNamesLastOwner) {
#if defined(DEMI_OWNERSHIP_CHECKS)
  PoolAllocator alloc;
  EXPECT_DEATH(
      {
        Buffer b = Buffer::TryAllocate(alloc, 128);
        ASSERT_TRUE(b.valid());
        b.NoteOwner(/*qd=*/7, /*qt=*/99);  // what Push does when it pins app memory
        void* base = b.mutable_data();
        alloc.DecRef(base);
        alloc.Free(base);
        (void)b.data();
      },
      "last owner: qd=7 qt=99");
#else
  GTEST_SKIP() << "requires -DDEMI_OWNERSHIP_CHECKS=ON";
#endif
}

TEST(DemiSanDeathTest, PushAfterFreeCaughtAtIncRef) {
#if defined(DEMI_OWNERSHIP_CHECKS)
  PoolAllocator alloc;
  // Zero-copy push of memory the app already freed: the pin (IncRef) must refuse it.
  void* p = alloc.Alloc(2048);
  alloc.Free(p);
  EXPECT_DEATH((void)Buffer::TryFromApp(alloc, p, 2048),
               "DemiSan: IncRef of a freed object \\(push after free\\)");
#else
  GTEST_SKIP() << "requires -DDEMI_OWNERSHIP_CHECKS=ON";
#endif
}

TEST(DemiSanDeathTest, RefcountUnderflowAbortsInAnyBuild) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(64);
  EXPECT_DEATH(alloc.DecRef(p), "DecRef without reference");
  alloc.Free(p);
}

TEST(DemiSanDeathTest, DoubleFreeAbortsInAnyBuild) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(64);
  alloc.Free(p);
  EXPECT_DEATH(alloc.Free(p), "double free or free of libOS-owned object");
}

}  // namespace
}  // namespace demi
