// Cattree: the standalone SPDK storage library OS (paper §6.4), over the simulated block
// device. PDPIX queues map onto an abstract log: open() returns a queue with a read cursor,
// push appends durably, pop reads at the cursor, seek/truncate move the cursor and GC the log.
// Network calls return kNotSupported — pair with Catnip/Catmint for the integrated libOSes.

#ifndef SRC_LIBOSES_CATTREE_H_
#define SRC_LIBOSES_CATTREE_H_

#include <unordered_map>

#include "src/core/libos.h"
#include "src/liboses/storage_queue_engine.h"

namespace demi {

class Cattree final : public LibOS {
 public:
  Cattree(SimBlockDevice& disk, Clock& clock);
  ~Cattree() override;

  Result<QueueDesc> Socket(SocketType type) override { return Status::kNotSupported; }
  [[nodiscard]] Status Bind(QueueDesc, SocketAddress) override { return Status::kNotSupported; }
  [[nodiscard]] Status Listen(QueueDesc, int) override { return Status::kNotSupported; }
  Result<QToken> Accept(QueueDesc) override { return Status::kNotSupported; }
  Result<QToken> Connect(QueueDesc, SocketAddress) override { return Status::kNotSupported; }

  Result<QueueDesc> Open(std::string_view path) override;
  [[nodiscard]] Status Seek(QueueDesc qd, uint64_t offset) override;
  [[nodiscard]] Status Truncate(QueueDesc qd, uint64_t offset) override;
  [[nodiscard]] Status Close(QueueDesc qd) override;
  Result<QToken> Push(QueueDesc qd, const Sgarray& sga) override;
  Result<QToken> Pop(QueueDesc qd) override;

  StorageQueueEngine& storage() { return storage_; }

 private:
  struct QueueState {
    uint64_t cursor = 0;
  };

  Task<void> FastPathFiber();

  StorageQueueEngine storage_;
  SimBlockDevice* disk_;  // external device: tracer detached at destruction
  std::unordered_map<QueueDesc, QueueState> queues_;
  bool shutdown_ = false;
};

}  // namespace demi

#endif  // SRC_LIBOSES_CATTREE_H_
