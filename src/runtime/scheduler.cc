#include "src/runtime/scheduler.h"

namespace demi {

namespace {

struct CurrentContext {
  Scheduler* sched = nullptr;
  Scheduler::FiberId fiber = Scheduler::kInvalidFiber;
};

thread_local CurrentContext g_current;

}  // namespace

SchedulerContextGuard::SchedulerContextGuard(Scheduler* sched, Scheduler::FiberId fiber)
    : prev_sched(g_current.sched), prev_fiber(g_current.fiber) {
  g_current.sched = sched;
  g_current.fiber = fiber;
}

SchedulerContextGuard::~SchedulerContextGuard() {
  g_current.sched = prev_sched;
  g_current.fiber = prev_fiber;
}

Scheduler* Scheduler::Current() { return g_current.sched; }
Scheduler::FiberId Scheduler::CurrentFiber() { return g_current.fiber; }

Scheduler::~Scheduler() { Shutdown(); }

void Scheduler::Shutdown() {
  DEMI_CHECK_MSG(running_fiber_ == kInvalidFiber, "Shutdown during Poll");
  for (size_t id = 0; id < fibers_.size(); id++) {
    Fiber& f = fibers_[id];
    if (f.live && f.root) {
      f.root.destroy();
      f.root = {};
      f.resume_point = {};
      f.live = false;
      live_fibers_--;
      blocks_[id / 64].ready &= ~(1ULL << (id % 64));
      free_slots_.push_back(static_cast<FiberId>(id));
    }
  }
}

Scheduler::FiberId Scheduler::Spawn(Task<void> task) {
  DEMI_CHECK(task.valid());
  FiberId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<FiberId>(fibers_.size());
    fibers_.emplace_back();
    if ((id / 64) >= blocks_.size()) {
      blocks_.emplace_back();
    }
  }
  Fiber& f = fibers_[id];
  f.root = task.Release();
  f.resume_point = f.root;
  f.live = true;
  live_fibers_++;
  stats_.fibers_spawned++;
  WakerFor(id).Wake();
  return id;
}

size_t Scheduler::Poll() {
  // demilint: fastpath
  FireDueTimers();
  stats_.polls++;
  size_t resumed = 0;
  const size_t num_blocks = blocks_.size();  // snapshot: fibers spawned mid-poll run next round
  for (size_t b = 0; b < num_blocks; b++) {
    uint64_t bits = blocks_[b].ready;
    if (bits == 0) {
      stats_.blocks_skipped++;
      continue;
    }
    stats_.blocks_scanned++;
    blocks_[b].ready &= ~bits;  // consume readiness; running fibers must re-arm to stay runnable
    ForEachSetBit(bits, [&](int bit) {
      const FiberId id = static_cast<FiberId>(b * 64 + static_cast<size_t>(bit));
      if (id >= fibers_.size() || !fibers_[id].live) {
        stats_.stale_wakes++;
        return;  // stale wake of a recycled/dead slot
      }
      fibers_[id].runs++;
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventType::kFiberScheduled, id, fibers_[id].runs);
      }
      std::coroutine_handle<> to_run = fibers_[id].resume_point;
      {
        SchedulerContextGuard guard(this, id);
        running_fiber_ = id;
        to_run.resume();
        running_fiber_ = kInvalidFiber;
      }
      resumed++;
      // Re-index: the fiber may have spawned others, reallocating fibers_.
      if (fibers_[id].root.done()) {
        ReleaseFiber(id);
      }
    });
  }
  stats_.resumptions += resumed;
  return resumed;
  // demilint: end-fastpath
}

size_t Scheduler::NumRunnable() const {
  size_t n = 0;
  for (const WakerBlock& b : blocks_) {
    n += static_cast<size_t>(std::popcount(b.ready));
  }
  return n;
}

Waker Scheduler::CurrentWaker() {
  DEMI_CHECK(running_fiber_ != kInvalidFiber);
  return WakerFor(running_fiber_);
}

Waker Scheduler::WakerFor(FiberId id) {
  DEMI_CHECK(id / 64 < blocks_.size());
  return Waker(&blocks_[id / 64].ready, 1ULL << (id % 64));
}

void Scheduler::AddTimer(TimeNs deadline, Waker waker) {
  if (!waker.valid()) {
    return;
  }
  wheel_.Arm(deadline, &Scheduler::WakeWordCb, waker.word_, waker.mask_);
}

TimeNs Scheduler::NextTimerDeadline() const { return wheel_.NextDeadline(); }

void Scheduler::SetResumePoint(std::coroutine_handle<> h) {
  DEMI_CHECK(running_fiber_ != kInvalidFiber);
  fibers_[running_fiber_].resume_point = h;
}

void Scheduler::FireDueTimers() { stats_.timer_fires += wheel_.Advance(clock_.Now()); }

void Scheduler::ReleaseFiber(FiberId id) {
  stats_.fibers_completed++;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventType::kFiberCompleted, id);
  }
  Fiber& f = fibers_[id];
  f.root.destroy();
  f.root = {};
  f.resume_point = {};
  f.live = false;
  live_fibers_--;
  // Drop any pending readiness so a recycled slot starts clean.
  blocks_[id / 64].ready &= ~(1ULL << (id % 64));
  free_slots_.push_back(id);
}

void Scheduler::Yield::await_suspend(std::coroutine_handle<> h) noexcept {
  Scheduler* s = Scheduler::Current();
  DEMI_CHECK(s != nullptr);
  s->SetResumePoint(h);
  s->stats_.yields++;
  if (s->tracer_ != nullptr) {
    s->tracer_->Record(TraceEventType::kFiberYielded, s->running_fiber_);
  }
  s->CurrentWaker().Wake();  // stay runnable
}

void Scheduler::SleepAwaitable::await_suspend(std::coroutine_handle<> h) noexcept {
  DEMI_CHECK(Scheduler::Current() == sched);
  sched->SetResumePointForAwait(h);  // a sleep is a blocking suspension, not a yield
  sched->AddTimer(deadline, sched->CurrentWaker());
}

}  // namespace demi
