#include "src/net/tcp/syn_cookies.h"

namespace demi {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

uint32_t SynCookies::RoundMss(uint32_t mss) {
  uint32_t best = kMssTable[0];
  for (const uint32_t entry : kMssTable) {
    if (entry <= mss) {
      best = entry;
    }
  }
  return best;
}

uint32_t SynCookies::Hash22(uint64_t key, uint32_t client_iss, uint64_t bucket,
                            uint8_t opts_byte) const {
  uint64_t h = Mix64(key ^ secret_);
  h = Mix64(h ^ (static_cast<uint64_t>(client_iss) << 32) ^ bucket);
  h = Mix64(h ^ opts_byte);
  return static_cast<uint32_t>(h & 0x3FFFFF);
}

uint32_t SynCookies::Encode(uint64_t key, uint32_t client_iss, const SynOptions& opts,
                            TimeNs now) const {
  uint8_t mss_idx = 0;
  for (uint8_t i = 0; i < 8; i++) {
    if (kMssTable[i] <= opts.mss) {
      mss_idx = i;
    }
  }
  const uint8_t opts_byte = static_cast<uint8_t>(
      (mss_idx & 0x7) | ((opts.peer_wscale & 0xF) << 3) | (opts.timestamps ? 0x80 : 0));
  const uint64_t bucket = now >> kBucketShift;
  return (Hash22(key, client_iss, bucket, opts_byte) << 10) |
         (static_cast<uint32_t>(bucket & 0x3) << 8) | opts_byte;
}

std::optional<SynCookies::SynOptions> SynCookies::Decode(uint64_t key, uint32_t client_iss,
                                                         uint32_t cookie, TimeNs now) const {
  const auto opts_byte = static_cast<uint8_t>(cookie & 0xFF);
  const uint32_t bucket_bits = (cookie >> 8) & 0x3;
  const uint32_t hash = cookie >> 10;
  const uint64_t cur_bucket = now >> kBucketShift;
  for (uint64_t age = 0; age < 2; age++) {
    if (cur_bucket < age) {
      break;
    }
    const uint64_t bucket = cur_bucket - age;
    if (static_cast<uint32_t>(bucket & 0x3) != bucket_bits) {
      continue;
    }
    if (Hash22(key, client_iss, bucket, opts_byte) != hash) {
      continue;
    }
    SynOptions opts;
    opts.mss = kMssTable[opts_byte & 0x7];
    opts.peer_wscale = (opts_byte >> 3) & 0xF;
    opts.timestamps = (opts_byte & 0x80) != 0;
    return opts;
  }
  return std::nullopt;
}

}  // namespace demi
