file(REMOVE_RECURSE
  "CMakeFiles/udp_relay_demo.dir/udp_relay_demo.cpp.o"
  "CMakeFiles/udp_relay_demo.dir/udp_relay_demo.cpp.o.d"
  "udp_relay_demo"
  "udp_relay_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_relay_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
