#include "src/netsim/sim_network.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/faults/fault_injector.h"
#include "src/netsim/rss.h"

namespace demi {

namespace {
// Frames moved wire-heap -> descriptor ring (and ring -> caller) per burst; bounds the stack
// scratch while keeping the amortized one-fence-per-burst property.
constexpr size_t kFrameBurst = 32;
}  // namespace

SimNetwork::SimNetwork(const LinkConfig& link, uint64_t seed) : link_(link), rng_(seed) {}
SimNetwork::~SimNetwork() = default;

SimNetwork::Port::Port(MacAddr mac, size_t num_queues, size_t queue_capacity) : mac_(mac) {
  queues_.reserve(num_queues);
  for (size_t i = 0; i < num_queues; i++) {
    queues_.push_back(std::make_unique<RxQueue>(queue_capacity));
  }
}

SimNetwork::Port* SimNetwork::CreatePort(MacAddr mac, size_t num_queues) {
  std::unique_lock<std::shared_mutex> lock(ports_mu_);
  auto [it, inserted] = ports_.try_emplace(
      mac.value,
      std::make_unique<Port>(mac, num_queues == 0 ? 1 : num_queues, link_.rx_queue_frames));
  if (!inserted) {
    return nullptr;
  }
  return it->second.get();
}

SimNetwork::Port* SimNetwork::FindPort(MacAddr mac) const {
  std::shared_lock<std::shared_mutex> lock(ports_mu_);
  auto it = ports_.find(mac.value);
  return it == ports_.end() ? nullptr : it->second.get();
}

void SimNetwork::Deliver(MacAddr src, MacAddr dst, WireFrame frame, TimeNs now) {
  // demilint: atomic(relaxed stats bump; see AtomicStats in the header)
  stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  // demilint: atomic(acquire pairs with the release in EnablePcap so a sender that sees
  // the gate up also sees pcap_ fully constructed; gate-down senders skip the mutex)
  if (pcap_on_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(pcap_mu_);
    if (pcap_ != nullptr) {
      pcap_->WriteFrame(frame, now);
    }
  }

  // Sender-side serialization delay: the frame occupies the source's line for bytes/line-rate.
  // Tracked under the source port's own lock — senders on different ports don't serialize.
  TimeNs depart = now;
  Port* src_port = FindPort(src);
  if (src_port != nullptr && link_.bandwidth_bps != 0) {
    const DurationNs serialize =
        static_cast<DurationNs>(frame.size()) * 8ULL * kSecond / link_.bandwidth_bps;
    std::lock_guard<std::mutex> lock(src_port->tx_mu_);
    src_port->next_tx_free_ = std::max<TimeNs>(src_port->next_tx_free_, now) + serialize;
    depart = src_port->next_tx_free_;
  }

  // Stochastic link model. The global rng is only consulted when a stochastic knob is armed,
  // so the common lossless multi-shard path takes no shared lock here; when armed, the draw
  // order per frame (loss -> [faults] -> reorder -> duplicate) matches the single-queue
  // implementation exactly, preserving seeded replays.
  const bool stochastic = link_.loss > 0 || link_.reorder > 0 || link_.duplicate > 0;
  if (stochastic) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (rng_.NextBool(link_.loss)) {
      // demilint: atomic(relaxed stats bump; see AtomicStats in the header)
      stats_.frames_dropped_loss.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // Injected faults, after the stochastic link model so existing seeds are undisturbed when no
  // injector is attached: flap/partition windows swallow the frame, corruption flips bits and
  // delivers it anyway (the stacks' checksums must catch it). The injector locks itself.
  // demilint: atomic(acquire pairs with SetFaultInjector's release: a non-null pointer
  // implies a fully constructed injector)
  FaultInjector* faults = faults_.load(std::memory_order_acquire);
  if (faults != nullptr) {
    if (faults->NetShouldDrop(src, dst, now)) {
      // demilint: atomic(relaxed stats bump; see AtomicStats in the header)
      stats_.frames_dropped_fault.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (faults->NetMaybeCorrupt(frame)) {
      // demilint: atomic(relaxed stats bump; see AtomicStats in the header)
      stats_.frames_corrupted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  TimeNs deliver_at = depart + link_.latency + link_.per_frame_overhead;
  bool duplicate = false;
  if (stochastic) {
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (link_.reorder > 0 && rng_.NextBool(link_.reorder)) {
      deliver_at += link_.reorder_extra;
      // demilint: atomic(relaxed stats bump; see AtomicStats in the header)
      stats_.frames_reordered.fetch_add(1, std::memory_order_relaxed);
    }
    duplicate = link_.duplicate > 0 && rng_.NextBool(link_.duplicate);
  }

  if (dst.IsBroadcast()) {
    std::shared_lock<std::shared_mutex> lock(ports_mu_);
    for (auto& [mac_value, port] : ports_) {
      if (mac_value == src.value) {
        continue;
      }
      DeliverToPort(port.get(), frame, deliver_at);  // copies: each port needs its own
    }
    return;
  }

  Port* dst_port = FindPort(dst);
  if (dst_port == nullptr) {
    return;  // no such host: frame vanishes, like a real switch with no matching port
  }
  if (duplicate) {
    // demilint: atomic(relaxed stats bump; see AtomicStats in the header)
    stats_.frames_duplicated.fetch_add(1, std::memory_order_relaxed);
    DeliverToPort(dst_port, frame, deliver_at + 1);
  }
  DeliverToPort(dst_port, std::move(frame), deliver_at);
}

void SimNetwork::DeliverToPort(Port* port, WireFrame frame, TimeNs deliver_at) {
  // RSS steering: the destination queue is a pure function of the frame's flow 4-tuple, so a
  // flow's packets always land on the same shard regardless of which core delivered them.
  const size_t queue =
      port->queues_.size() == 1 ? 0 : RssQueueForFrame(frame, port->queues_.size());
  Port::RxQueue& q = *port->queues_[queue];
  std::unique_lock<std::mutex> lock(q.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // demilint: atomic(relaxed stats bump; see AtomicStats in the header)
    stats_.port_lock_contention.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  if (q.inbound.size() + q.ring.SizeApprox() >= link_.rx_queue_frames) {
    // demilint: atomic(relaxed stats bump; see AtomicStats in the header)
    stats_.frames_dropped_queue.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // demilint: atomic(ticket draw: uniqueness needs only the RMW modification order; the
  // frame itself is published by q.mu, held here)
  q.inbound.push(PendingFrame{deliver_at, next_seq_.fetch_add(1, std::memory_order_relaxed),
                              std::move(frame)});
}

SimNetwork::Stats SimNetwork::GetStats() const {
  Stats s;
  // demilint: atomic(relaxed stats snapshot; see AtomicStats in the header)
  s.frames_sent = stats_.frames_sent.load(std::memory_order_relaxed);
  // demilint: atomic(relaxed stats snapshot; see AtomicStats in the header)
  s.frames_dropped_loss = stats_.frames_dropped_loss.load(std::memory_order_relaxed);
  // demilint: atomic(relaxed stats snapshot; see AtomicStats in the header)
  s.frames_dropped_queue = stats_.frames_dropped_queue.load(std::memory_order_relaxed);
  // demilint: atomic(relaxed stats snapshot; see AtomicStats in the header)
  s.frames_dropped_fault = stats_.frames_dropped_fault.load(std::memory_order_relaxed);
  // demilint: atomic(relaxed stats snapshot; see AtomicStats in the header)
  s.frames_duplicated = stats_.frames_duplicated.load(std::memory_order_relaxed);
  // demilint: atomic(relaxed stats snapshot; see AtomicStats in the header)
  s.frames_reordered = stats_.frames_reordered.load(std::memory_order_relaxed);
  // demilint: atomic(relaxed stats snapshot; see AtomicStats in the header)
  s.frames_corrupted = stats_.frames_corrupted.load(std::memory_order_relaxed);
  // demilint: atomic(relaxed stats snapshot; see AtomicStats in the header)
  s.port_lock_contention = stats_.port_lock_contention.load(std::memory_order_relaxed);
  return s;
}

bool SimNetwork::EnablePcap(const std::string& path) {
  std::lock_guard<std::mutex> lock(pcap_mu_);
  auto writer = std::make_unique<PcapWriter>(path);
  if (!writer->ok()) {
    return false;
  }
  pcap_ = std::move(writer);
  // demilint: atomic(release publishes pcap_'s construction to senders' acquire loads)
  pcap_on_.store(true, std::memory_order_release);
  return true;
}

void SimNetwork::DisablePcap() {
  std::lock_guard<std::mutex> lock(pcap_mu_);
  // demilint: atomic(lowers the gate before pcap_ is destroyed; in-flight writers that
  // already saw the gate up finish under pcap_mu_, which we hold)
  pcap_on_.store(false, std::memory_order_release);
  pcap_.reset();
}

uint64_t SimNetwork::PcapFramesWritten() const {
  std::lock_guard<std::mutex> lock(pcap_mu_);
  return pcap_ == nullptr ? 0 : pcap_->frames_written();
}

TimeNs SimNetwork::NextDeliveryTime() const {
  std::shared_lock<std::shared_mutex> ports_lock(ports_mu_);
  TimeNs earliest = 0;
  for (const auto& [mac, port] : ports_) {
    for (const auto& q : port->queues_) {
      TimeNs t = 0;
      // Matured-but-unpolled frames keep their original timestamps in the descriptor ring.
      if (const PendingFrame* front = q->ring.Front(); front != nullptr) {
        t = front->deliver_at;
      }
      std::lock_guard<std::mutex> lock(q->mu);
      if (!q->inbound.empty() && (t == 0 || q->inbound.top().deliver_at < t)) {
        t = q->inbound.top().deliver_at;
      }
      if (t != 0 && (earliest == 0 || t < earliest)) {
        earliest = t;
      }
    }
  }
  return earliest;
}

void SimNetwork::Port::MatureLocked(RxQueue& q, TimeNs now) {
  PendingFrame batch[kFrameBurst];
  while (!q.inbound.empty() && q.inbound.top().deliver_at <= now) {
    size_t n = 0;
    while (n < kFrameBurst && !q.inbound.empty() && q.inbound.top().deliver_at <= now) {
      batch[n++] = std::move(const_cast<PendingFrame&>(q.inbound.top()));
      q.inbound.pop();
    }
    const size_t pushed = q.ring.PushBurst(std::span<PendingFrame>(batch, n));
    if (pushed < n) {
      // Ring full (can't normally happen: ring capacity >= the taildrop bound). Put the
      // remainder back rather than dropping frames that already survived the link model.
      for (size_t i = pushed; i < n; i++) {
        q.inbound.push(std::move(batch[i]));
      }
      return;
    }
  }
}

size_t SimNetwork::Port::DrainRing(RxQueue& q, std::span<WireFrame> out) {
  PendingFrame batch[kFrameBurst];
  size_t total = 0;
  while (total < out.size()) {
    const size_t want = std::min(out.size() - total, kFrameBurst);
    const size_t got = q.ring.PopBurst(std::span<PendingFrame>(batch, want));
    if (got == 0) {
      break;
    }
    for (size_t i = 0; i < got; i++) {
      out[total + i] = std::move(batch[i].data);
    }
    total += got;
  }
  return total;
}

size_t SimNetwork::Port::PollQueue(size_t queue, std::span<WireFrame> out, TimeNs now) {
  DEMI_DCHECK(queue < queues_.size());
  RxQueue& q = *queues_[queue];
  // Fast path: matured descriptors already on the ring satisfy the whole burst without the
  // timing-stage lock.
  size_t n = DrainRing(q, out);
  if (n == out.size()) {
    return n;
  }
  {
    std::lock_guard<std::mutex> lock(q.mu);
    MatureLocked(q, now);
  }
  n += DrainRing(q, out.subspan(n));
  return n;
}

bool SimNetwork::Port::HasDeliverable(TimeNs now) const {
  for (const auto& q : queues_) {
    if (!q->ring.EmptyApprox()) {
      return true;
    }
    std::lock_guard<std::mutex> lock(q->mu);
    if (!q->inbound.empty() && q->inbound.top().deliver_at <= now) {
      return true;
    }
  }
  return false;
}

SimNic::SimNic(SimNetwork& network, MacAddr mac, Clock& clock, size_t num_queues)
    : network_(network), mac_(mac), clock_(clock),
      queue_stats_(num_queues == 0 ? 1 : num_queues) {
  port_ = network.CreatePort(mac, queue_stats_.size());
  DEMI_CHECK_MSG(port_ != nullptr, "MAC %s already attached", mac.ToString().c_str());
}

size_t SimNic::RxBurst(size_t queue, std::span<WireFrame> out) {
  DEMI_DCHECK(queue < queue_stats_.size());
  const size_t n = port_->PollQueue(queue, out, clock_.Now());
  PaddedStats& qs = queue_stats_[queue];
  qs.rx_frames += n;
  for (size_t i = 0; i < n; i++) {
    qs.rx_bytes += out[i].size();
  }
  return n;
}

Status SimNic::TxBurst(size_t queue, MacAddr dst,
                       std::span<const std::span<const uint8_t>> segments) {
  DEMI_DCHECK(queue < queue_stats_.size());
  PaddedStats& qs = queue_stats_[queue];
  size_t total = 0;
  for (const auto& seg : segments) {
    total += seg.size();
  }
  if (total > mtu()) {
    qs.tx_oversize++;
    return Status::kMessageTooLong;
  }
  WireFrame frame;
  frame.reserve(total);
  for (const auto& seg : segments) {
    // The DMA discipline: large (zero-copy) segments must come from device-registered memory,
    // as a real kernel-bypass NIC can only DMA from pinned, IOMMU-mapped pages.
    if (seg.size() >= 1024) {
      DEMI_CHECK_MSG(registrar_.Covers(seg.data(), seg.size()),
                     "zero-copy TX segment not in DMA-registered memory");
    }
    frame.insert(frame.end(), seg.begin(), seg.end());
  }
  qs.tx_frames++;
  qs.tx_bytes += frame.size();
  network_.Deliver(mac_, dst, std::move(frame), clock_.Now());
  return Status::kOk;
}

SimNic::Stats SimNic::stats() const {
  Stats total;
  for (const PaddedStats& qs : queue_stats_) {
    total.tx_frames += qs.tx_frames;
    total.tx_bytes += qs.tx_bytes;
    total.rx_frames += qs.rx_frames;
    total.rx_bytes += qs.rx_bytes;
    total.tx_oversize += qs.tx_oversize;
  }
  return total;
}

SimNic::Stats SimNic::queue_stats(size_t queue) const {
  DEMI_DCHECK(queue < queue_stats_.size());
  return queue_stats_[queue];
}

}  // namespace demi
