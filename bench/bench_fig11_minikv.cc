// Figure 11 reproduction: MiniKv (Redis-substitute) GET/SET throughput, in-memory and with
// durable persistence (append-only file, fsync per SET).
//
// Paper result: in-memory, Catmint ~2x unmodified Redis and Catnip ~+20%, while Catnap loses
// 75-80% (polling trades throughput for latency on the kernel path). With persistence, Linux
// throughput collapses (synchronous ext4 fsync), Catnap's polling *helps*, and
// Catnip/Catmint×Cattree stay within ~10% of their own in-memory rate — the headline: durable
// Demikernel ~= in-memory Linux. Required shape here: same ordering and a small
// persistent-vs-in-memory gap for the integrated libOSes only.

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "src/apps/minikv.h"
#include "src/faults/fault_injector.h"

namespace demi {
namespace bench {
namespace {

constexpr uint64_t kOps = 20000;
constexpr size_t kValueSize = 64;
constexpr uint64_t kNumKeys = 10000;
constexpr size_t kPipeline = 16;

KvBenchOptions ClientOpts(SocketAddress server, bool sets) {
  KvBenchOptions o;
  o.server = server;
  o.num_keys = kNumKeys;
  o.value_size = kValueSize;
  o.operations = sets ? kOps : kOps;
  o.pipeline = kPipeline;
  o.do_sets = sets;
  return o;
}

struct Row {
  double get_kops = 0;
  double set_kops = 0;
  double persist_set_kops = 0;
};

Row PosixRow() {
  Row row;
  for (int persist = 0; persist < 2; persist++) {
    std::atomic<bool> stop{false};
    const SocketAddress addr = Loopback(UniquePort());
    char path[] = "/tmp/demi_fig11_XXXXXX";
    const int fd = ::mkstemp(path);
    ::close(fd);
    std::atomic<bool> up{false};
    std::thread server([&] {
      MiniKvOptions opts{addr};
      opts.persist = persist == 1;
      opts.aof_path = path;
      up = true;
      RunPosixMiniKvServer(opts, stop, nullptr);
    });
    while (!up) {
    }
    if (persist == 0) {
      auto sets = RunPosixKvBenchClient(ClientOpts(addr, true));
      auto gets = RunPosixKvBenchClient(ClientOpts(addr, false));
      row.set_kops = sets.OpsPerSec() / 1e3;
      row.get_kops = gets.OpsPerSec() / 1e3;
    } else {
      KvBenchOptions o = ClientOpts(addr, true);
      o.operations = kOps / 10;  // fsync per SET on a real fs is slow; bound the run
      auto sets = RunPosixKvBenchClient(o);
      row.persist_set_kops = sets.OpsPerSec() / 1e3;
    }
    stop = true;
    server.join();
    ::unlink(path);
  }
  return row;
}

// Generic duet row over a server/client libOS pair.
Row DuetRow(LibOS& server_os, LibOS& client_os, SocketAddress addr, bool has_storage,
            uint64_t persist_ops, const char* aof_path) {
  Row row;
  {
    MiniKvOptions opts{addr};
    MiniKvServerApp app(server_os, opts);
    client_os.SetExternalPump([&] {
      server_os.PollOnce();
      app.Pump();
    });
    auto sets = RunKvBenchClient(client_os, ClientOpts(addr, true));
    auto gets = RunKvBenchClient(client_os, ClientOpts(addr, false));
    row.set_kops = sets.OpsPerSec() / 1e3;
    row.get_kops = gets.OpsPerSec() / 1e3;
    client_os.SetExternalPump(nullptr);
  }
  if (has_storage) {
    SocketAddress paddr = addr;
    paddr.port++;
    MiniKvOptions opts{paddr};
    opts.persist = true;
    opts.aof_path = aof_path;
    MiniKvServerApp app(server_os, opts);
    client_os.SetExternalPump([&] {
      server_os.PollOnce();
      app.Pump();
    });
    KvBenchOptions o = ClientOpts(paddr, true);
    o.operations = persist_ops;
    auto sets = RunKvBenchClient(client_os, o);
    row.persist_set_kops = sets.OpsPerSec() / 1e3;
    client_os.SetExternalPump(nullptr);
  }
  return row;
}

void PrintRow(const char* name, const Row& row, const char* note) {
  std::printf("%-28s %12.1f %12.1f %14.1f  %s\n", name, row.get_kops, row.set_kops,
              row.persist_set_kops, note);
}

}  // namespace

void Main() {
  PrintHeader("Figure 11: MiniKv (Redis-substitute) throughput, 64 B values",
              "Catmint ~2x Redis, Catnip ~+20%, Catnap -75%; with fsync-per-SET "
              "persistence Linux collapses while Catnip/Catmint x Cattree stay within ~10%",
              /*latency_columns=*/false);
  std::printf("%-28s %12s %12s %14s  %s\n", "system", "GET kops/s", "SET kops/s",
              "SET+AOF kops/s", "note");

  PrintRow("Linux (POSIX MiniKv)", PosixRow(), "kernel sockets + ext4 fsync");

  {
    CatnapPair pair;
    char path[] = "/tmp/demi_fig11_catnap_XXXXXX";
    const int fd = ::mkstemp(path);
    ::close(fd);
    Row row = DuetRow(*pair.server, *pair.client, Loopback(UniquePort()), true, kOps / 10, path);
    ::unlink(path);
    PrintRow("Catnap", row, "polled kernel sockets");
  }
  {
    MonotonicClock clock;
    SimBlockDevice disk(SimBlockDevice::Config{}, clock);
    CatnipPair pair(LinkConfig{}, &disk);
    // Opt-in chaos: DEMI_FAULT_PLAN / DEMI_FAULT_SEED arm an injector so the bench doubles
    // as a throughput-under-faults probe (docs/FAULTS.md). Unset env = plain Figure 11 run.
    FaultInjector faults;
    if (auto plan = FaultPlan::FromEnv(); plan.has_value() && plan->Any()) {
      faults.Arm(*plan);
      pair.net.SetFaultInjector(&faults);
      disk.SetFaultInjector(&faults);
      faults.RegisterMetrics(pair.server->metrics());
      std::printf("(chaos armed: %s)\n", plan->ToString().c_str());
    }
    Row row = DuetRow(*pair.server, *pair.client, {kServerIp, 5701}, true, kOps / 2, "aof");
    PrintRow("Catnip (x Cattree for AOF)", row, "userspace TCP + SPDK log");
    const uint64_t injected = faults.GetStats().disk_io_errors + faults.GetStats().disk_delays +
                              faults.GetStats().frames_corrupted + faults.GetStats().frames_dropped;
    if (injected > 0) {
      std::printf("(chaos: %llu faults injected, run still completed)\n",
                  static_cast<unsigned long long>(injected));
    }
  }
  {
    MonotonicClock clock;
    SimBlockDevice disk(SimBlockDevice::Config{}, clock);
    CatmintPair pair(LinkConfig{}, &disk);
    Row row = DuetRow(*pair.server, *pair.client, {kServerIp, 5703}, true, kOps / 2, "aof");
    PrintRow("Catmint (x Cattree for AOF)", row, "RDMA messaging + SPDK log");
  }
}

}  // namespace bench
}  // namespace demi

int main() {
  demi::bench::Main();
  return 0;
}
