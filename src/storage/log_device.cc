#include "src/storage/log_device.h"

#include <algorithm>
#include <cstring>

#include "src/common/crc32.h"
#include "src/common/logging.h"
#include "src/observability/metrics.h"

namespace demi {

namespace {

uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }

void PutU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, sizeof(v)); }
void PutU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, sizeof(v)); }
uint32_t GetU32(const uint8_t* src) {
  uint32_t v = 0;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
uint64_t GetU64(const uint8_t* src) {
  uint64_t v = 0;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

}  // namespace

void LogDevice::RegisterMetrics(MetricsRegistry& registry) {
  registry.RegisterCallback("log.io_retries", "log", "ops",
                            "Transient device errors absorbed by backoff+retry",
                            [this] { return stats_.io_retries; });
  registry.RegisterCallback("log.io_terminal_errors", "log", "ops",
                            "Appends/reads failed after the retry budget was spent",
                            [this] { return stats_.io_terminal_errors; });
  registry.RegisterCallback("log.sg_appends", "log", "ops",
                            "Scatter-gather (splice) records appended",
                            [this] { return stats_.sg_appends; });
  registry.RegisterCallback("log.pad_bytes", "log", "bytes",
                            "Alignment pad bytes written around scatter-gather records",
                            [this] { return stats_.pad_bytes; });
  registry.RegisterCallback("log.epoch", "log", "count",
                            "Allocation epoch stamped into this partition's latest record",
                            [this] { return stats_.last_epoch; });
  registry.RegisterGauge("log.partition_id", "log", "index",
                         "This shard's log partition (and device completion queue)")
      .Set(static_cast<int64_t>(part_.id));
  registry.RegisterGauge("log.partition_blocks", "log", "count",
                         "Blocks owned by this shard's log partition")
      .Set(static_cast<int64_t>(part_bytes_ / block_size_));
}

LogDevice::LogDevice(SimBlockDevice& device, Scheduler& scheduler, const LogPartition& partition,
                     std::atomic<uint64_t>* epoch)
    : device_(device),
      scheduler_(scheduler),
      block_size_(device.config().block_size),
      part_(partition),
      epoch_(epoch != nullptr ? epoch : &local_epoch_) {
  const uint64_t device_blocks = device.config().num_blocks;
  DEMI_CHECK_MSG(part_.first_block <= device_blocks, "log partition starts past the device");
  if (part_.num_blocks == 0) {
    part_.num_blocks = device_blocks - part_.first_block;
  }
  DEMI_CHECK_MSG(part_.first_block + part_.num_blocks <= device_blocks,
                 "log partition exceeds the device");
  part_bytes_ = part_.num_blocks * block_size_;
  tail_block_cache_.assign(block_size_, 0);
}

Task<void> LogDevice::AcquireAppendLock() {
  while (append_locked_) {
    co_await append_lock_released_.Wait();
  }
  append_locked_ = true;
}

void LogDevice::ReleaseAppendLock() {
  append_locked_ = false;
  append_lock_released_.Notify();
}

std::vector<uint8_t> LogDevice::MakeHeader(uint32_t payload_len, uint32_t payload_crc) {
  // demilint: atomic(relaxed is sufficient: the single modification order of the shared
  // epoch makes every draw unique across shards, and one shard's draws are monotonic
  // because its own RMWs are ordered. The record carrying this epoch travels through the
  // shard's own partition, never through the counter — see docs/STORAGE.md audit)
  const uint64_t epoch = epoch_->fetch_add(1, std::memory_order_relaxed);
  stats_.last_epoch = epoch;
  std::vector<uint8_t> hdr(kHeaderSize, 0);
  PutU32(hdr.data(), kRecordMagic);
  PutU32(hdr.data() + 4, payload_len);
  PutU64(hdr.data() + 8, epoch);
  PutU32(hdr.data() + 16, payload_crc);
  PutU32(hdr.data() + 20, Crc32(hdr.data(), 20));
  return hdr;
}

Task<Status> LogDevice::SubmitOnceAndWait(bool is_read, uint64_t lba,
                                          std::span<const uint8_t> data,
                                          std::span<const std::span<const uint8_t>> iov,
                                          std::span<uint8_t> out) {
  IoWait wait;
  const uint64_t cookie = next_cookie_++;
  for (;;) {
    Status s;
    if (is_read) {
      s = device_.SubmitRead(lba, out, cookie, part_.id);
    } else if (!iov.empty()) {
      s = device_.SubmitWritev(lba, iov, cookie, part_.id);
    } else {
      s = device_.SubmitWrite(lba, data, cookie, part_.id);
    }
    if (s == Status::kOk) {
      break;
    }
    if (s != Status::kQueueFull) {
      co_return s;
    }
    co_await Scheduler::Yield{};  // device queue full: let the poller drain completions
  }
  outstanding_++;
  waiting_[cookie] = &wait;
  while (!wait.done) {
    co_await wait.event.Wait();
  }
  co_return wait.status;
}

Task<Status> LogDevice::SubmitWriteAndWait(uint64_t lba, std::span<const uint8_t> data) {
  DurationNs backoff = retry_.initial_backoff;
  for (uint32_t attempt = 0;; attempt++) {
    const Status s = co_await SubmitOnceAndWait(/*is_read=*/false, lba, data, {}, {});
    if (s != Status::kIoError) {
      co_return s;  // success, or a non-retryable submission error
    }
    if (attempt >= retry_.max_retries) {
      stats_.io_terminal_errors++;
      co_return s;  // budget spent: the terminal error propagates to the qtoken
    }
    stats_.io_retries++;
    co_await scheduler_.Sleep(backoff);
    backoff = std::min<DurationNs>(backoff * 2, retry_.max_backoff);
  }
}

Task<Status> LogDevice::SubmitWritevAndWait(uint64_t lba,
                                            std::span<const std::span<const uint8_t>> iov) {
  DurationNs backoff = retry_.initial_backoff;
  for (uint32_t attempt = 0;; attempt++) {
    const Status s = co_await SubmitOnceAndWait(/*is_read=*/false, lba, {}, iov, {});
    if (s != Status::kIoError) {
      co_return s;
    }
    if (attempt >= retry_.max_retries) {
      stats_.io_terminal_errors++;
      co_return s;
    }
    stats_.io_retries++;
    co_await scheduler_.Sleep(backoff);
    backoff = std::min<DurationNs>(backoff * 2, retry_.max_backoff);
  }
}

Task<Status> LogDevice::SubmitReadAndWait(uint64_t lba, std::span<uint8_t> out) {
  DurationNs backoff = retry_.initial_backoff;
  for (uint32_t attempt = 0;; attempt++) {
    const Status s = co_await SubmitOnceAndWait(/*is_read=*/true, lba, {}, {}, out);
    if (s != Status::kIoError) {
      co_return s;
    }
    if (attempt >= retry_.max_retries) {
      stats_.io_terminal_errors++;
      co_return s;
    }
    stats_.io_retries++;
    co_await scheduler_.Sleep(backoff);
    backoff = std::min<DurationNs>(backoff * 2, retry_.max_backoff);
  }
}

Task<Result<uint64_t>> LogDevice::Append(std::span<const uint8_t> payload) {
  co_await AcquireAppendLock();
  // RAII is awkward across co_return paths here; release explicitly on every exit.
  const uint64_t record_offset = tail_;
  const uint64_t record_bytes = AlignUp(kHeaderSize + payload.size(), kAlign);
  const uint64_t new_tail = tail_ + record_bytes;
  if (new_tail > part_bytes_) {
    ReleaseAppendLock();
    co_return Status::kNoBufferSpace;
  }

  // Compose the affected block range: the (possibly partial) tail block comes from the cache so
  // previously appended bytes in the same block are preserved. The cache itself is only updated
  // after the device acknowledges the write — a retried or terminally failed attempt must not
  // leave phantom bytes in the next append's block image.
  const uint64_t first_block = tail_ / block_size_;
  const uint64_t last_block = (new_tail - 1) / block_size_;
  const size_t nblocks = static_cast<size_t>(last_block - first_block + 1);
  std::vector<uint8_t> io(nblocks * block_size_, 0);
  std::memcpy(io.data(), tail_block_cache_.data(), block_size_);

  const size_t in_block_off = static_cast<size_t>(tail_ - first_block * block_size_);
  const std::vector<uint8_t> hdr =
      MakeHeader(static_cast<uint32_t>(payload.size()), Crc32(payload.data(), payload.size()));
  std::memcpy(io.data() + in_block_off, hdr.data(), kHeaderSize);
  std::memcpy(io.data() + in_block_off + kHeaderSize, payload.data(), payload.size());

  const Status s = co_await SubmitWriteAndWait(DeviceLba(tail_), io);
  if (s != Status::kOk) {
    ReleaseAppendLock();
    co_return s;
  }

  // Acknowledged: commit the new partial last block to the cache and advance the tail.
  std::memcpy(tail_block_cache_.data(), io.data() + (nblocks - 1) * block_size_, block_size_);
  tail_ = new_tail;
  ReleaseAppendLock();
  co_return record_offset;
}

Task<Result<uint64_t>> LogDevice::AppendSg(std::span<const std::span<const uint8_t>> slices) {
  co_await AcquireAppendLock();
  uint64_t payload_len64 = 0;
  uint32_t payload_crc = 0;
  for (const auto& s : slices) {
    payload_len64 += s.size();
    payload_crc = Crc32(s.data(), s.size(), payload_crc);
  }
  if (payload_len64 > UINT32_MAX) {
    ReleaseAppendLock();
    co_return Status::kMessageTooLong;
  }
  const uint32_t payload_len = static_cast<uint32_t>(payload_len64);

  // Block-align the record: a leading pad marker fills the current tail block (its image comes
  // from the cache, never from payload), and a trailing pad fills out the last block, so after
  // the append the tail-block cache is simply empty. That is what keeps this path zero-copy —
  // no payload byte is ever staged host-side to rebuild a shared block.
  const uint64_t gap1 = (block_size_ - tail_ % block_size_) % block_size_;
  const uint64_t record_off = tail_ + gap1;
  const uint64_t rec_aligned = AlignUp(kHeaderSize + payload_len, kAlign);
  const uint64_t gap2 = (block_size_ - (record_off + rec_aligned) % block_size_) % block_size_;
  const uint64_t new_tail = record_off + rec_aligned + gap2;
  if (new_tail > part_bytes_) {
    ReleaseAppendLock();
    co_return Status::kNoBufferSpace;
  }

  const std::vector<uint8_t> hdr = MakeHeader(payload_len, payload_crc);

  std::vector<std::span<const uint8_t>> iov;
  iov.reserve(slices.size() + 3);

  std::vector<uint8_t> lead;
  if (gap1 > 0) {
    lead = tail_block_cache_;
    const size_t in_off = static_cast<size_t>(tail_ % block_size_);
    std::fill(lead.begin() + in_off, lead.end(), 0);
    PutU32(lead.data() + in_off, kPadMagic);
    PutU32(lead.data() + in_off + 4, static_cast<uint32_t>(gap1));
    iov.emplace_back(lead.data(), lead.size());
  }
  iov.emplace_back(hdr.data(), hdr.size());

  // Flatten only if the slice list exceeds the device SGL limit (counted: this is the one
  // bounce path, and splice batches are sized to never hit it).
  std::vector<uint8_t> flat;
  const size_t budget = SimBlockDevice::kMaxWritevSegments - iov.size() - 1;
  if (slices.size() > budget) {
    flat.reserve(payload_len);
    for (const auto& s : slices) {
      flat.insert(flat.end(), s.begin(), s.end());
    }
    stats_.bounce_bytes += flat.size();
    iov.emplace_back(flat.data(), flat.size());
  } else {
    for (const auto& s : slices) {
      if (!s.empty()) {
        iov.emplace_back(s.data(), s.size());
      }
    }
  }

  // Trailer: zero fill to 8-byte alignment, then a pad marker covering the rest of the block.
  std::vector<uint8_t> trailer(static_cast<size_t>(new_tail - record_off - kHeaderSize -
                                                   payload_len),
                               0);
  if (gap2 > 0) {
    const size_t pad_at = static_cast<size_t>(rec_aligned - kHeaderSize - payload_len);
    PutU32(trailer.data() + pad_at, kPadMagic);
    PutU32(trailer.data() + pad_at + 4, static_cast<uint32_t>(gap2));
  }
  if (!trailer.empty()) {
    iov.emplace_back(trailer.data(), trailer.size());
  }

  const uint64_t first_byte = gap1 > 0 ? tail_ - tail_ % block_size_ : tail_;
  const Status s = co_await SubmitWritevAndWait(DeviceLba(first_byte), iov);
  if (s != Status::kOk) {
    ReleaseAppendLock();
    co_return s;
  }

  stats_.sg_appends++;
  stats_.pad_bytes += (new_tail - tail_) - (kHeaderSize + payload_len);
  tail_ = new_tail;  // block-aligned: the tail block is fresh and the cache all zeros
  std::fill(tail_block_cache_.begin(), tail_block_cache_.end(), 0);
  ReleaseAppendLock();
  co_return record_off;
}

Task<Result<LogDevice::ReadResult>> LogDevice::Read(uint64_t cursor) {
  for (;;) {
    if (cursor < head_) {
      co_return Status::kInvalidArgument;
    }
    if (cursor >= tail_) {
      co_return Status::kEndOfFile;
    }
    // Read the block(s) holding the header; it can straddle a block boundary.
    const uint64_t first_block = cursor / block_size_;
    size_t hdr_blocks = (cursor % block_size_) + kHeaderSize > block_size_ ? 2 : 1;
    hdr_blocks = std::min<size_t>(hdr_blocks,
                                  static_cast<size_t>(part_.num_blocks - first_block));
    std::vector<uint8_t> hdr_io(hdr_blocks * block_size_);
    Status s = co_await SubmitReadAndWait(part_.first_block + first_block, hdr_io);
    if (s != Status::kOk) {
      co_return s;
    }
    const size_t in_off = static_cast<size_t>(cursor - first_block * block_size_);
    const uint32_t magic = GetU32(hdr_io.data() + in_off);
    if (magic == kPadMagic) {
      const uint32_t skip = GetU32(hdr_io.data() + in_off + 4);
      if (skip < kPadHeaderSize || skip % kAlign != 0 || cursor + skip > tail_) {
        co_return Status::kProtocolError;
      }
      cursor += skip;
      continue;  // alignment filler between records
    }
    if (magic != kRecordMagic || hdr_io.size() - in_off < kHeaderSize) {
      co_return Status::kProtocolError;
    }
    const uint32_t len = GetU32(hdr_io.data() + in_off + 4);
    const uint32_t stored_hdr_crc = GetU32(hdr_io.data() + in_off + 20);
    if (Crc32(hdr_io.data() + in_off, 20) != stored_hdr_crc) {
      co_return Status::kProtocolError;
    }
    const uint64_t record_bytes = AlignUp(kHeaderSize + len, kAlign);
    if (cursor + record_bytes > tail_) {
      co_return Status::kProtocolError;
    }

    ReadResult result;
    result.payload.resize(len);
    result.next_cursor = cursor + record_bytes;
    const uint32_t stored_payload_crc = GetU32(hdr_io.data() + in_off + 16);

    const uint64_t payload_start = cursor + kHeaderSize;
    const uint64_t payload_end = payload_start + len;
    const uint64_t span_first = payload_start / block_size_;
    const uint64_t span_last = len == 0 ? span_first : (payload_end - 1) / block_size_;
    if (span_last < first_block + hdr_blocks) {
      // Entire payload was already covered by the header read.
      std::memcpy(result.payload.data(), hdr_io.data() + in_off + kHeaderSize, len);
    } else {
      std::vector<uint8_t> io((span_last - span_first + 1) * block_size_);
      s = co_await SubmitReadAndWait(part_.first_block + span_first, io);
      if (s != Status::kOk) {
        co_return s;
      }
      std::memcpy(result.payload.data(), io.data() + (payload_start - span_first * block_size_),
                  len);
    }
    if (Crc32(result.payload.data(), result.payload.size()) != stored_payload_crc) {
      co_return Status::kProtocolError;
    }
    co_return result;
  }
}

Task<Result<LogDevice::ZcReadResult>> LogDevice::ReadZc(uint64_t cursor, PoolAllocator& alloc) {
  for (;;) {
    if (cursor < head_) {
      co_return Status::kInvalidArgument;
    }
    if (cursor >= tail_) {
      co_return Status::kEndOfFile;
    }
    const uint64_t first_block = cursor / block_size_;
    size_t hdr_blocks = (cursor % block_size_) + kHeaderSize > block_size_ ? 2 : 1;
    hdr_blocks = std::min<size_t>(hdr_blocks,
                                  static_cast<size_t>(part_.num_blocks - first_block));
    std::vector<uint8_t> hdr_io(hdr_blocks * block_size_);
    Status s = co_await SubmitReadAndWait(part_.first_block + first_block, hdr_io);
    if (s != Status::kOk) {
      co_return s;
    }
    const size_t in_off = static_cast<size_t>(cursor - first_block * block_size_);
    const uint32_t magic = GetU32(hdr_io.data() + in_off);
    if (magic == kPadMagic) {
      const uint32_t skip = GetU32(hdr_io.data() + in_off + 4);
      if (skip < kPadHeaderSize || skip % kAlign != 0 || cursor + skip > tail_) {
        co_return Status::kProtocolError;
      }
      cursor += skip;
      continue;
    }
    if (magic != kRecordMagic || hdr_io.size() - in_off < kHeaderSize) {
      co_return Status::kProtocolError;
    }
    const uint32_t len = GetU32(hdr_io.data() + in_off + 4);
    const uint32_t stored_payload_crc = GetU32(hdr_io.data() + in_off + 16);
    const uint32_t stored_hdr_crc = GetU32(hdr_io.data() + in_off + 20);
    if (Crc32(hdr_io.data() + in_off, 20) != stored_hdr_crc) {
      co_return Status::kProtocolError;
    }
    const uint64_t record_bytes = AlignUp(kHeaderSize + len, kAlign);
    if (cursor + record_bytes > tail_) {
      co_return Status::kProtocolError;
    }

    // One pool allocation covers every block the payload touches; the device DMAs into it and
    // the returned view slices the payload out of it — no host-side payload copy.
    const uint64_t payload_start = cursor + kHeaderSize;
    const uint64_t span_first = payload_start / block_size_;
    const uint64_t span_last =
        len == 0 ? span_first : (payload_start + len - 1) / block_size_;
    const size_t span_bytes = static_cast<size_t>((span_last - span_first + 1) * block_size_);
    Buffer buf = Buffer::TryAllocate(alloc, span_bytes);
    if (!buf.valid()) {
      co_return Status::kNoMemory;
    }
    s = co_await SubmitReadAndWait(part_.first_block + span_first,
                                   {buf.mutable_data(), span_bytes});
    if (s != Status::kOk) {
      co_return s;
    }
    const size_t view_off = static_cast<size_t>(payload_start - span_first * block_size_);
    if (Crc32(buf.data() + view_off, len) != stored_payload_crc) {
      co_return Status::kProtocolError;
    }
    ZcReadResult result;
    result.payload = buf.Slice(view_off, len);
    result.next_cursor = cursor + record_bytes;
    co_return result;
  }
}

Status LogDevice::Truncate(uint64_t offset) {
  if (offset > tail_) {
    return Status::kInvalidArgument;
  }
  if (offset > head_) {
    head_ = offset;
  }
  return Status::kOk;
}

void LogDevice::PollDevice() {
  SimBlockDevice::Completion comps[16];
  for (;;) {
    const size_t n = device_.PollCompletions(comps, part_.id);
    if (n == 0) {
      return;
    }
    for (size_t i = 0; i < n; i++) {
      auto it = waiting_.find(comps[i].cookie);
      if (it != waiting_.end()) {
        it->second->done = true;
        it->second->status = comps[i].status;
        it->second->event.Notify();
        waiting_.erase(it);
        outstanding_--;
      }
    }
  }
}

uint64_t LogDevice::ScanPartition(const SimBlockDevice& device, const LogPartition& partition,
                                  std::vector<RecordInfo>* out) {
  const size_t block_size = device.config().block_size;
  LogPartition part = partition;
  if (part.num_blocks == 0) {
    part.num_blocks = device.config().num_blocks - part.first_block;
  }
  const uint64_t base = part.first_block * block_size;
  const uint64_t cap = part.num_blocks * block_size;
  uint64_t cursor = 0;
  uint64_t last_epoch = 0;
  std::vector<uint8_t> hdr(kHeaderSize);
  std::vector<uint8_t> payload;
  while (cursor + kPadHeaderSize <= cap) {
    const size_t avail = static_cast<size_t>(std::min<uint64_t>(kHeaderSize, cap - cursor));
    device.RawRead(base + cursor, {hdr.data(), avail});
    const uint32_t magic = GetU32(hdr.data());
    if (magic == kPadMagic) {
      const uint32_t skip = GetU32(hdr.data() + 4);
      if (skip < kPadHeaderSize || skip % kAlign != 0 || cursor + skip > cap) {
        break;
      }
      cursor += skip;
      continue;
    }
    if (magic != kRecordMagic || avail < kHeaderSize) {
      break;
    }
    if (Crc32(hdr.data(), 20) != GetU32(hdr.data() + 20)) {
      break;  // torn header
    }
    const uint32_t len = GetU32(hdr.data() + 4);
    const uint64_t epoch = GetU64(hdr.data() + 8);
    const uint64_t record_bytes = AlignUp(kHeaderSize + len, kAlign);
    if (cursor + record_bytes > cap || epoch <= last_epoch) {
      break;  // out of bounds, or epoch monotonicity broken (stale/torn data)
    }
    payload.resize(len);
    if (len > 0) {
      device.RawRead(base + cursor + kHeaderSize, payload);
    }
    if (Crc32(payload.data(), payload.size()) != GetU32(hdr.data() + 16)) {
      break;  // torn payload: the record never became durable
    }
    if (out != nullptr) {
      out->push_back(RecordInfo{cursor, len, epoch});
    }
    last_epoch = epoch;
    cursor += record_bytes;
  }
  return cursor;
}

Status LogDevice::Recover() {
  head_ = 0;
  std::vector<RecordInfo> records;
  tail_ = ScanPartition(device_, part_, &records);
  // The shared epoch must move past every recovered record so post-recovery appends keep the
  // per-partition strict ordering. (PartitionedLog::RecoverAll does this across partitions;
  // this covers the standalone whole-device log.)
  uint64_t max_epoch = records.empty() ? 0 : records.back().epoch;
  stats_.last_epoch = max_epoch;
  // demilint: atomic(recovery is synchronous — no concurrent appenders — so the relaxed
  // CAS only has to win the modification order when several partitions recover in turn)
  uint64_t cur = epoch_->load(std::memory_order_relaxed);
  // demilint: atomic(see load above)
  while (cur <= max_epoch &&
         !epoch_->compare_exchange_weak(  // demilint: atomic(see load above)
             cur, max_epoch + 1, std::memory_order_relaxed)) {
  }
  // Rebuild the tail-block cache from media.
  std::fill(tail_block_cache_.begin(), tail_block_cache_.end(), 0);
  const uint64_t tail_block = tail_ / block_size_;
  if ((tail_block + 1) * block_size_ <= part_bytes_) {
    device_.RawRead((part_.first_block + tail_block) * block_size_, tail_block_cache_);
    // A torn write may have left a non-durable prefix after the recovered tail; scrub it so the
    // next append's block image contains only acknowledged bytes.
    std::fill(tail_block_cache_.begin() + static_cast<long>(tail_ % block_size_),
              tail_block_cache_.end(), 0);
  }
  return Status::kOk;
}

}  // namespace demi
