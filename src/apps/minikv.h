// MiniKv: Redis-substitute in-memory key-value server (DESIGN.md §2, Figure 11).
//
// Mirrors the structure of the paper's Redis port (§7.5): a single event loop over wait_any,
// values stored in the DMA-capable heap and served zero-copy (Redis's keys/values are immutable
// — no update in place — so UAF protection alone makes zero-copy GETs/SETs safe, §4.1), and an
// optional append-only file: every SET is pushed to a storage queue and fsync'd before the
// reply, the Figure 11 persistence configuration.
//
// Wire protocol (length-framed so it runs over byte streams and message transports alike):
//   request  := [u32 frame_len][u8 op][u16 klen][u32 vlen][key][value]
//   response := [u32 frame_len][u8 status][u32 vlen][value]

#ifndef SRC_APPS_MINIKV_H_
#define SRC_APPS_MINIKV_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/libos.h"

namespace demi {

class ShardGroup;

enum class KvOp : uint8_t { kGet = 1, kSet = 2, kDel = 3 };
enum class KvStatus : uint8_t { kOk = 0, kNotFound = 1, kError = 2 };

// Serialization helpers (shared by server, clients and benches).
size_t KvEncodeRequest(KvOp op, std::string_view key, std::string_view value, uint8_t* out,
                       size_t out_cap);
size_t KvEncodeResponse(KvStatus status, std::string_view value, uint8_t* out, size_t out_cap);

struct KvRequestView {
  KvOp op;
  std::string_view key;
  std::string_view value;
};
// Parses one complete frame (without the leading u32 length); returns false on malformed input.
bool KvParseRequest(std::span<const uint8_t> frame, KvRequestView* out);
struct KvResponseView {
  KvStatus status;
  std::string_view value;
};
bool KvParseResponse(std::span<const uint8_t> frame, KvResponseView* out);

struct MiniKvOptions {
  SocketAddress listen;
  bool persist = false;          // append-only file, fsync per SET
  std::string aof_path = "minikv.aof";
};

struct MiniKvStats {
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t dels = 0;
  uint64_t hits = 0;
  uint64_t connections = 0;
  uint64_t aof_failures = 0;  // SETs answered kError because the AOF append failed terminally
};

// Pumpable PDPIX MiniKv server (see EchoServerApp for the pump pattern).
class MiniKvServerApp {
 public:
  MiniKvServerApp(LibOS& os, const MiniKvOptions& options);
  ~MiniKvServerApp();

  size_t Pump();  // non-blocking; returns requests served
  const MiniKvStats& stats() const { return stats_; }

 private:
  struct Impl;
  LibOS& os_;
  MiniKvOptions options_;
  MiniKvStats stats_;
  std::unique_ptr<Impl> impl_;
};

// PDPIX MiniKv server: runs over any Demikernel libOS until `stop`.
void RunMiniKvServer(LibOS& os, const MiniKvOptions& options, std::atomic<bool>& stop,
                     MiniKvStats* stats = nullptr);

// Multi-worker MiniKv over a ShardGroup: one independent store per shard, keys partitioned by
// connection placement (RSS pins each client connection — and so its keyspace — to one shard,
// the redis-cluster model). Same start/stop contract as StartShardedEchoServer.
void StartShardedMiniKvServer(ShardGroup& group, const MiniKvOptions& options,
                              std::vector<MiniKvStats>* per_shard = nullptr);

// POSIX MiniKv server (select-based event loop): the "unmodified Redis on Linux" stand-in.
void RunPosixMiniKvServer(const MiniKvOptions& options, std::atomic<bool>& stop,
                          MiniKvStats* stats = nullptr);

// --- Benchmark client (redis-benchmark equivalent) ---

struct KvBenchOptions {
  SocketAddress server;
  uint64_t num_keys = 100'000;
  size_t value_size = 64;
  uint64_t operations = 100'000;
  size_t pipeline = 16;  // requests kept in flight
  bool do_sets = true;   // false = GET-only run (after preloading)
  uint64_t seed = 1;
};

struct KvBenchResult {
  uint64_t completed = 0;
  DurationNs elapsed = 0;
  Histogram latency;
  double OpsPerSec() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(completed) * static_cast<double>(kSecond) /
                              static_cast<double>(elapsed);
  }
};

// Pipelined closed-loop KV benchmark over a Demikernel libOS.
KvBenchResult RunKvBenchClient(LibOS& os, const KvBenchOptions& options);

// Pipelined closed-loop KV benchmark over a blocking POSIX socket.
KvBenchResult RunPosixKvBenchClient(const KvBenchOptions& options);

}  // namespace demi

#endif  // SRC_APPS_MINIKV_H_
