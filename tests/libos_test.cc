// PDPIX-level tests: echo and queue semantics across all library OSes — Catnip (simulated
// DPDK), Catmint (simulated RDMA), Catnap (real POSIX loopback), Cattree (simulated SPDK) and
// the integrated network×storage variants.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/liboses/catmint.h"
#include "src/liboses/catnap.h"
#include "src/liboses/catnip.h"
#include "src/liboses/cattree.h"

namespace demi {
namespace {

// Steps every libOS in `world` until `self`'s token completes (single-threaded cooperative
// multi-instance testing; benchmarks run instances on separate threads instead).
QResult WaitStepped(LibOS& self, QToken qt, std::vector<LibOS*> world,
                    int max_steps = 2'000'000) {
  for (int i = 0; i < max_steps; i++) {
    for (LibOS* os : world) {
      os->PollOnce();
    }
    if (self.IsDone(qt)) {
      auto r = self.TryTake(qt);
      EXPECT_TRUE(r.ok());
      return r.ok() ? *r : QResult{};
    }
  }
  ADD_FAILURE() << "token did not complete";
  return QResult{};
}

Sgarray MakeSga(LibOS& os, const std::string& data) {
  void* buf = os.DmaMalloc(data.size());
  std::memcpy(buf, data.data(), data.size());
  return Sgarray::Of(buf, static_cast<uint32_t>(data.size()));
}

std::string SgaToString(LibOS& os, Sgarray& sga, bool free_after = true) {
  std::string out;
  for (uint32_t i = 0; i < sga.num_segs; i++) {
    out.append(static_cast<const char*>(sga.segs[i].buf), sga.segs[i].len);
  }
  if (free_after) {
    os.FreeSga(sga);
  }
  return out;
}

uint16_t NextPort() {
  static std::atomic<uint16_t> port{static_cast<uint16_t>(21000 + (getpid() % 500) * 40)};
  return port++;
}

// --- Catnip (simulated DPDK) ---

class CatnipPairTest : public ::testing::Test {
 protected:
  CatnipPairTest()
      : net_(LinkConfig{}, 7),
        server_(net_, Catnip::Config{MacAddr{1}, Ipv4Addr::FromOctets(10, 0, 0, 1), TcpConfig{}, nullptr}, clock_),
        client_(net_, Catnip::Config{MacAddr{2}, Ipv4Addr::FromOctets(10, 0, 0, 2), TcpConfig{}, nullptr}, clock_) {
    server_.ethernet().arp().Insert(client_.local_ip(), MacAddr{2});
    client_.ethernet().arp().Insert(server_.local_ip(), MacAddr{1});
  }

  std::vector<LibOS*> World() { return {&server_, &client_}; }

  MonotonicClock clock_;
  SimNetwork net_;
  Catnip server_;
  Catnip client_;
};

TEST_F(CatnipPairTest, TcpEchoThroughPdpix) {
  // Server: socket/bind/listen/accept.
  auto sqd = server_.Socket(SocketType::kStream);
  ASSERT_TRUE(sqd.ok());
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 7000}), Status::kOk);
  ASSERT_EQ(server_.Listen(*sqd, 8), Status::kOk);
  auto accept_qt = server_.Accept(*sqd);
  ASSERT_TRUE(accept_qt.ok());

  // Client: socket/connect.
  auto cqd = client_.Socket(SocketType::kStream);
  ASSERT_TRUE(cqd.ok());
  auto connect_qt = client_.Connect(*cqd, {server_.local_ip(), 7000});
  ASSERT_TRUE(connect_qt.ok());

  QResult conn_r = WaitStepped(client_, *connect_qt, World());
  EXPECT_EQ(conn_r.status, Status::kOk);
  QResult acc_r = WaitStepped(server_, *accept_qt, World());
  ASSERT_EQ(acc_r.status, Status::kOk);
  const QueueDesc server_conn = acc_r.new_qd;
  EXPECT_EQ(acc_r.remote.ip, client_.local_ip());

  // Client pushes; server pops; server echoes; client pops.
  auto push_qt = client_.Push(*cqd, MakeSga(client_, "hello pdpix"));
  ASSERT_TRUE(push_qt.ok());
  EXPECT_EQ(WaitStepped(client_, *push_qt, World()).status, Status::kOk);

  auto pop_qt = server_.Pop(server_conn);
  ASSERT_TRUE(pop_qt.ok());
  QResult pop_r = WaitStepped(server_, *pop_qt, World());
  ASSERT_EQ(pop_r.status, Status::kOk);
  EXPECT_EQ(SgaToString(server_, pop_r.sga, false), "hello pdpix");

  // Echo back the same buffer (zero-copy round): push then free.
  auto echo_qt = server_.Push(server_conn, pop_r.sga);
  ASSERT_TRUE(echo_qt.ok());
  server_.FreeSga(pop_r.sga);  // safe immediately: UAF protection pins it until acked

  auto cpop_qt = client_.Pop(*cqd);
  ASSERT_TRUE(cpop_qt.ok());
  QResult cpop_r = WaitStepped(client_, *cpop_qt, World());
  ASSERT_EQ(cpop_r.status, Status::kOk);
  EXPECT_EQ(SgaToString(client_, cpop_r.sga), "hello pdpix");
}

TEST_F(CatnipPairTest, UdpPushToAndPop) {
  auto sqd = server_.Socket(SocketType::kDatagram);
  ASSERT_TRUE(sqd.ok());
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 5353}), Status::kOk);
  auto pop_qt = server_.Pop(*sqd);
  ASSERT_TRUE(pop_qt.ok());

  auto cqd = client_.Socket(SocketType::kDatagram);
  ASSERT_TRUE(cqd.ok());
  auto push_qt = client_.PushTo(*cqd, MakeSga(client_, "datagram!"), {server_.local_ip(), 5353});
  ASSERT_TRUE(push_qt.ok());
  EXPECT_EQ(WaitStepped(client_, *push_qt, World()).status, Status::kOk);

  QResult r = WaitStepped(server_, *pop_qt, World());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.remote.ip, client_.local_ip());
  EXPECT_EQ(SgaToString(server_, r.sga), "datagram!");
}

TEST_F(CatnipPairTest, PopCompletesWithEofOnPeerClose) {
  auto sqd = server_.Socket(SocketType::kStream);
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 7001}), Status::kOk);
  ASSERT_EQ(server_.Listen(*sqd, 4), Status::kOk);
  auto acc = server_.Accept(*sqd);
  auto cqd = client_.Socket(SocketType::kStream);
  auto conn = client_.Connect(*cqd, {server_.local_ip(), 7001});
  WaitStepped(client_, *conn, World());
  QResult acc_r = WaitStepped(server_, *acc, World());

  auto pop_qt = server_.Pop(acc_r.new_qd);
  ASSERT_TRUE(pop_qt.ok());
  ASSERT_EQ(client_.Close(*cqd), Status::kOk);
  QResult r = WaitStepped(server_, *pop_qt, World());
  EXPECT_EQ(r.status, Status::kEndOfFile);
}

TEST_F(CatnipPairTest, WaitAnyWakesOnReadyToken) {
  auto sqd = server_.Socket(SocketType::kDatagram);
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 6000}), Status::kOk);
  auto sqd2 = server_.Socket(SocketType::kDatagram);
  ASSERT_EQ(server_.Bind(*sqd2, {server_.local_ip(), 6001}), Status::kOk);
  auto pop1 = server_.Pop(*sqd);
  auto pop2 = server_.Pop(*sqd2);

  auto cqd = client_.Socket(SocketType::kDatagram);
  auto push = client_.PushTo(*cqd, MakeSga(client_, "to-6001"), {server_.local_ip(), 6001});
  WaitStepped(client_, *push, World());

  // Drive both sides until one of the two pops completes, then use WaitAny to claim it.
  QToken qts[2] = {*pop1, *pop2};
  for (int i = 0; i < 200000 && !(server_.IsDone(qts[0]) || server_.IsDone(qts[1])); i++) {
    client_.PollOnce();
    server_.PollOnce();
  }
  size_t index = 99;
  auto r = server_.WaitAny(qts, &index, /*timeout=*/kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(index, 1u);
  EXPECT_EQ(SgaToString(server_, r->sga), "to-6001");
}

TEST_F(CatnipPairTest, MemoryQueueRoundTrip) {
  auto mq = server_.MemoryQueue();
  ASSERT_TRUE(mq.ok());
  auto push = server_.Push(*mq, MakeSga(server_, "channel-msg"));
  ASSERT_TRUE(push.ok());
  auto pop = server_.Pop(*mq);
  ASSERT_TRUE(pop.ok());
  auto r = server_.Wait(*pop, kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(SgaToString(server_, r->sga), "channel-msg");
}

// WaitAny must not starve later entries when earlier ones are continuously ready: the scan
// start rotates across calls. Pre-fix, scanning from index 0 every call meant a hot queue at
// position 0 monopolized a server loop and position 1 was never harvested.
TEST_F(CatnipPairTest, WaitAnyRotatesAcrossHotQueues) {
  auto q0 = server_.MemoryQueue();
  auto q1 = server_.MemoryQueue();
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q1.ok());
  // Preload both queues so a fresh pop on either completes immediately: both stay "hot".
  for (int i = 0; i < 8; i++) {
    for (QueueDesc qd : {*q0, *q1}) {
      auto push = server_.Push(qd, MakeSga(server_, "hot"));
      ASSERT_TRUE(push.ok());
      (void)server_.Wait(*push, kSecond);
    }
  }
  QToken qts[2];
  auto p0 = server_.Pop(*q0);
  auto p1 = server_.Pop(*q1);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  qts[0] = *p0;
  qts[1] = *p1;
  int harvested[2] = {0, 0};
  for (int round = 0; round < 6; round++) {
    // Both tokens must be complete before the call, so the scan order alone decides.
    for (int i = 0; i < 1000 && !(server_.IsDone(qts[0]) && server_.IsDone(qts[1])); i++) {
      server_.PollOnce();
    }
    ASSERT_TRUE(server_.IsDone(qts[0]) && server_.IsDone(qts[1]));
    size_t idx = 99;
    auto r = server_.WaitAny(qts, &idx, kSecond);
    ASSERT_TRUE(r.ok());
    ASSERT_LT(idx, 2u);
    harvested[idx]++;
    server_.FreeSga(r->sga);
    auto next = server_.Pop(idx == 0 ? *q0 : *q1);
    ASSERT_TRUE(next.ok());
    qts[idx] = *next;
  }
  EXPECT_GT(harvested[0], 0);
  EXPECT_GT(harvested[1], 0) << "queue at index 1 was starved by the scan order";
}

TEST_F(CatnipPairTest, WaitAnyHarvestDrainsBurst) {
  // The paper's wait_any returns an array of qevents; a burst of completions should harvest in
  // one call.
  auto mq = server_.MemoryQueue();
  ASSERT_TRUE(mq.ok());
  std::vector<QToken> pops;
  for (int i = 0; i < 4; i++) {
    auto pop = server_.Pop(*mq);
    ASSERT_TRUE(pop.ok());
    pops.push_back(*pop);
  }
  for (int i = 0; i < 4; i++) {
    auto push = server_.Push(*mq, MakeSga(server_, "burst-" + std::to_string(i)));
    ASSERT_TRUE(push.ok());
    (void)server_.Wait(*push, kSecond);
  }
  std::vector<QResult> events;
  std::vector<size_t> indices;
  const size_t n = server_.WaitAnyHarvest(pops, &events, &indices, kSecond);
  EXPECT_EQ(n, 4u);
  ASSERT_EQ(events.size(), 4u);
  std::vector<std::string> got;
  for (auto& e : events) {
    got.push_back(SgaToString(server_, e.sga));
  }
  std::sort(got.begin(), got.end());
  for (int i = 0; i < 4; i++) {
    EXPECT_EQ(got[i], "burst-" + std::to_string(i));
  }
  // All tokens consumed: a second harvest times out.
  std::vector<QResult> empty;
  EXPECT_EQ(server_.WaitAnyHarvest(pops, &empty, nullptr, 2 * kMillisecond), 0u);
}

TEST_F(CatnipPairTest, BadDescriptorsAndTokensRejected) {
  EXPECT_EQ(server_.Push(999, Sgarray{}).error(), Status::kBadQueueDescriptor);
  EXPECT_EQ(server_.Pop(999).error(), Status::kBadQueueDescriptor);
  EXPECT_EQ(server_.Wait(0xDEAD).error(), Status::kBadQToken);
  EXPECT_EQ(server_.Close(999), Status::kBadQueueDescriptor);
}

TEST_F(CatnipPairTest, WaitTimesOut) {
  auto sqd = server_.Socket(SocketType::kDatagram);
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 6100}), Status::kOk);
  auto pop = server_.Pop(*sqd);
  auto r = server_.Wait(*pop, 5 * kMillisecond);
  EXPECT_EQ(r.error(), Status::kTimedOut);
}

TEST_F(CatnipPairTest, DmaHeapMallocFree) {
  void* p = server_.DmaMalloc(4096);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(server_.allocator().Owns(p));
  server_.DmaFree(p);
}

// --- Catnip×Cattree (integrated network + storage) ---

TEST(CatnipCattreeTest, FileQueuePushPopSeek) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, 3);
  SimBlockDevice disk(SimBlockDevice::Config{}, clock);
  Catnip::Config cfg{MacAddr{9}, Ipv4Addr::FromOctets(10, 0, 0, 9), TcpConfig{}, nullptr};
  cfg.disk = &disk;
  Catnip os(net, cfg, clock);
  ASSERT_TRUE(os.has_storage());

  auto fqd = os.Open("log");
  ASSERT_TRUE(fqd.ok());
  for (const char* msg : {"rec-one", "rec-two", "rec-three"}) {
    auto push = os.Push(*fqd, MakeSga(os, msg));
    ASSERT_TRUE(push.ok());
    auto r = os.Wait(*push, kSecond);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, Status::kOk);
  }
  std::vector<std::string> seen;
  for (int i = 0; i < 3; i++) {
    auto pop = os.Pop(*fqd);
    ASSERT_TRUE(pop.ok());
    auto r = os.Wait(*pop, kSecond);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->status, Status::kOk);
    seen.push_back(SgaToString(os, r->sga));
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"rec-one", "rec-two", "rec-three"}));

  // EOF at tail; seek back to replay.
  auto pop = os.Pop(*fqd);
  auto eof = os.Wait(*pop, kSecond);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(eof->status, Status::kEndOfFile);
  ASSERT_EQ(os.Seek(*fqd, 0), Status::kOk);
  auto again = os.Pop(*fqd);
  auto r2 = os.Wait(*again, kSecond);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(SgaToString(os, r2->sga), "rec-one");
}

TEST(CatnipCattreeTest, NetworkToDiskRunToCompletion) {
  // The paper's marquee flow (§5.5): receive from the network, persist, reply — one libOS,
  // one scheduler, no copies of the application payload on the network side.
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, 4);
  SimBlockDevice disk(SimBlockDevice::Config{}, clock);
  Catnip::Config scfg{MacAddr{11}, Ipv4Addr::FromOctets(10, 0, 1, 1), TcpConfig{}, nullptr};
  scfg.disk = &disk;
  Catnip server(net, scfg, clock);
  Catnip client(net, Catnip::Config{MacAddr{12}, Ipv4Addr::FromOctets(10, 0, 1, 2), TcpConfig{}, nullptr}, clock);
  server.ethernet().arp().Insert(client.local_ip(), MacAddr{12});
  client.ethernet().arp().Insert(server.local_ip(), MacAddr{11});
  std::vector<LibOS*> world{&server, &client};

  auto sqd = server.Socket(SocketType::kStream);
  ASSERT_EQ(server.Bind(*sqd, {server.local_ip(), 7100}), Status::kOk);
  ASSERT_EQ(server.Listen(*sqd, 4), Status::kOk);
  auto acc = server.Accept(*sqd);
  auto cqd = client.Socket(SocketType::kStream);
  auto conn = client.Connect(*cqd, {server.local_ip(), 7100});
  WaitStepped(client, *conn, world);
  QResult acc_r = WaitStepped(server, *acc, world);

  auto log_qd = server.Open("wal");
  ASSERT_TRUE(log_qd.ok());

  auto push = client.Push(*cqd, MakeSga(client, "PUT k v"));
  WaitStepped(client, *push, world);
  auto pop = server.Pop(acc_r.new_qd);
  QResult req = WaitStepped(server, *pop, world);
  ASSERT_EQ(req.status, Status::kOk);

  // Persist the request payload, then ack the client.
  auto log_push = server.Push(*log_qd, req.sga);
  ASSERT_TRUE(log_push.ok());
  QResult durable = WaitStepped(server, *log_push, world);
  EXPECT_EQ(durable.status, Status::kOk);
  auto reply = server.Push(acc_r.new_qd, req.sga);
  ASSERT_TRUE(reply.ok());
  server.FreeSga(req.sga);

  auto cpop = client.Pop(*cqd);
  QResult resp = WaitStepped(client, *cpop, world);
  EXPECT_EQ(SgaToString(client, resp.sga), "PUT k v");

  // And the record is really on disk.
  auto rpop = server.Pop(*log_qd);
  QResult rec = WaitStepped(server, *rpop, world);
  EXPECT_EQ(SgaToString(server, rec.sga), "PUT k v");
}

// --- Catmint (simulated RDMA) ---

class CatmintPairTest : public ::testing::Test {
 protected:
  CatmintPairTest()
      : net_(LinkConfig{}, 5),
        server_(net_, Catmint::Config{MacAddr{21}, Ipv4Addr::FromOctets(10, 9, 0, 1)}, clock_),
        client_(net_, Catmint::Config{MacAddr{22}, Ipv4Addr::FromOctets(10, 9, 0, 2)}, clock_) {
    server_.AddPeer(client_.local_ip(), MacAddr{22});
    client_.AddPeer(server_.local_ip(), MacAddr{21});
  }

  std::vector<LibOS*> World() { return {&server_, &client_}; }

  MonotonicClock clock_;
  SimNetwork net_;
  Catmint server_;
  Catmint client_;
};

TEST_F(CatmintPairTest, MessageEchoThroughPdpix) {
  auto sqd = server_.Socket(SocketType::kStream);
  ASSERT_TRUE(sqd.ok());
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 800}), Status::kOk);
  ASSERT_EQ(server_.Listen(*sqd, 8), Status::kOk);
  auto acc = server_.Accept(*sqd);
  ASSERT_TRUE(acc.ok());

  auto cqd = client_.Socket(SocketType::kStream);
  auto conn = client_.Connect(*cqd, {server_.local_ip(), 800});
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(WaitStepped(client_, *conn, World()).status, Status::kOk);
  QResult acc_r = WaitStepped(server_, *acc, World());
  ASSERT_EQ(acc_r.status, Status::kOk);

  auto push = client_.Push(*cqd, MakeSga(client_, "rdma says hi"));
  ASSERT_TRUE(push.ok());
  EXPECT_EQ(WaitStepped(client_, *push, World()).status, Status::kOk);

  auto pop = server_.Pop(acc_r.new_qd);
  QResult r = WaitStepped(server_, *pop, World());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(SgaToString(server_, r.sga, false), "rdma says hi");

  auto echo = server_.Push(acc_r.new_qd, r.sga);
  server_.FreeSga(r.sga);
  auto cpop = client_.Pop(*cqd);
  QResult er = WaitStepped(client_, *cpop, World());
  EXPECT_EQ(SgaToString(client_, er.sga), "rdma says hi");
  (void)echo;
}

TEST_F(CatmintPairTest, MessageBoundariesPreserved) {
  // RDMA messaging is message-oriented, unlike TCP's byte stream: three pushes = three pops.
  auto sqd = server_.Socket(SocketType::kStream);
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 801}), Status::kOk);
  ASSERT_EQ(server_.Listen(*sqd, 8), Status::kOk);
  auto acc = server_.Accept(*sqd);
  auto cqd = client_.Socket(SocketType::kStream);
  auto conn = client_.Connect(*cqd, {server_.local_ip(), 801});
  WaitStepped(client_, *conn, World());
  QResult acc_r = WaitStepped(server_, *acc, World());

  for (const char* m : {"one", "two", "three"}) {
    auto push = client_.Push(*cqd, MakeSga(client_, m));
    WaitStepped(client_, *push, World());
  }
  std::vector<std::string> got;
  for (int i = 0; i < 3; i++) {
    auto pop = server_.Pop(acc_r.new_qd);
    QResult r = WaitStepped(server_, *pop, World());
    ASSERT_EQ(r.status, Status::kOk);
    got.push_back(SgaToString(server_, r.sga));
  }
  EXPECT_EQ(got, (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(CatmintPairTest, ConnectionRefusedWithoutListener) {
  auto cqd = client_.Socket(SocketType::kStream);
  auto conn = client_.Connect(*cqd, {server_.local_ip(), 4242});
  ASSERT_TRUE(conn.ok());
  QResult r = WaitStepped(client_, *conn, World());
  EXPECT_EQ(r.status, Status::kConnectionRefused);
}

TEST_F(CatmintPairTest, OversizeMessageRejected) {
  auto sqd = server_.Socket(SocketType::kStream);
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 802}), Status::kOk);
  ASSERT_EQ(server_.Listen(*sqd, 8), Status::kOk);
  auto acc = server_.Accept(*sqd);
  auto cqd = client_.Socket(SocketType::kStream);
  auto conn = client_.Connect(*cqd, {server_.local_ip(), 802});
  WaitStepped(client_, *conn, World());
  WaitStepped(server_, *acc, World());

  void* big = client_.DmaMalloc(64 * 1024);
  auto push = client_.Push(*cqd, Sgarray::Of(big, 64 * 1024));
  EXPECT_EQ(push.error(), Status::kMessageTooLong);
  client_.DmaFree(big);
}

TEST_F(CatmintPairTest, CreditFlowControlBlocksAndRecovers) {
  // Push far more messages than the credit window without popping; the extras must block,
  // then drain as the receiver pops (credits returned via one-sided writes).
  auto sqd = server_.Socket(SocketType::kStream);
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 803}), Status::kOk);
  ASSERT_EQ(server_.Listen(*sqd, 8), Status::kOk);
  auto acc = server_.Accept(*sqd);
  auto cqd = client_.Socket(SocketType::kStream);
  auto conn = client_.Connect(*cqd, {server_.local_ip(), 803});
  WaitStepped(client_, *conn, World());
  QResult acc_r = WaitStepped(server_, *acc, World());

  constexpr int kMessages = 200;  // > send_window_msgs (64)
  std::vector<QToken> pushes;
  for (int i = 0; i < kMessages; i++) {
    std::string m = "m" + std::to_string(i);
    auto push = client_.Push(*cqd, MakeSga(client_, m));
    ASSERT_TRUE(push.ok());
    pushes.push_back(*push);
    client_.PollOnce();
    server_.PollOnce();
  }
  EXPECT_GT(client_.stats().sends_blocked_on_credits, 0u);

  std::vector<std::string> got;
  for (int i = 0; i < kMessages; i++) {
    auto pop = server_.Pop(acc_r.new_qd);
    QResult r = WaitStepped(server_, *pop, World());
    ASSERT_EQ(r.status, Status::kOk);
    got.push_back(SgaToString(server_, r.sga));
  }
  for (int i = 0; i < kMessages; i++) {
    EXPECT_EQ(got[i], "m" + std::to_string(i));
    QResult r = WaitStepped(client_, pushes[i], World());
    EXPECT_EQ(r.status, Status::kOk);
  }
  EXPECT_GT(client_.stats().credit_updates_sent + server_.stats().credit_updates_sent, 0u);
}

TEST_F(CatmintPairTest, PopSeesEofAfterPeerClose) {
  auto sqd = server_.Socket(SocketType::kStream);
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 804}), Status::kOk);
  ASSERT_EQ(server_.Listen(*sqd, 8), Status::kOk);
  auto acc = server_.Accept(*sqd);
  auto cqd = client_.Socket(SocketType::kStream);
  auto conn = client_.Connect(*cqd, {server_.local_ip(), 804});
  WaitStepped(client_, *conn, World());
  QResult acc_r = WaitStepped(server_, *acc, World());

  auto pop = server_.Pop(acc_r.new_qd);
  ASSERT_EQ(client_.Close(*cqd), Status::kOk);
  QResult r = WaitStepped(server_, *pop, World());
  EXPECT_EQ(r.status, Status::kEndOfFile);
}

// --- Catnap (real POSIX loopback) ---

class CatnapPairTest : public ::testing::Test {
 protected:
  CatnapPairTest() : server_(clock_), client_(clock_) {}

  std::vector<LibOS*> World() { return {&server_, &client_}; }
  static SocketAddress Loopback(uint16_t port) {
    return {Ipv4Addr::FromOctets(127, 0, 0, 1), port};
  }

  MonotonicClock clock_;
  Catnap server_;
  Catnap client_;
};

TEST_F(CatnapPairTest, TcpEchoOverLoopback) {
  const uint16_t port = NextPort();
  auto sqd = server_.Socket(SocketType::kStream);
  ASSERT_TRUE(sqd.ok());
  ASSERT_EQ(server_.Bind(*sqd, Loopback(port)), Status::kOk);
  ASSERT_EQ(server_.Listen(*sqd, 8), Status::kOk);
  auto acc = server_.Accept(*sqd);

  auto cqd = client_.Socket(SocketType::kStream);
  auto conn = client_.Connect(*cqd, Loopback(port));
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(WaitStepped(client_, *conn, World()).status, Status::kOk);
  QResult acc_r = WaitStepped(server_, *acc, World());
  ASSERT_EQ(acc_r.status, Status::kOk);

  auto push = client_.Push(*cqd, MakeSga(client_, "posix echo"));
  EXPECT_EQ(WaitStepped(client_, *push, World()).status, Status::kOk);
  auto pop = server_.Pop(acc_r.new_qd);
  QResult r = WaitStepped(server_, *pop, World());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(SgaToString(server_, r.sga, false), "posix echo");

  auto echo = server_.Push(acc_r.new_qd, r.sga);
  WaitStepped(server_, *echo, World());
  server_.FreeSga(r.sga);
  auto cpop = client_.Pop(*cqd);
  QResult er = WaitStepped(client_, *cpop, World());
  EXPECT_EQ(SgaToString(client_, er.sga), "posix echo");
}

TEST_F(CatnapPairTest, UdpEchoOverLoopback) {
  const uint16_t port = NextPort();
  auto sqd = server_.Socket(SocketType::kDatagram);
  ASSERT_EQ(server_.Bind(*sqd, Loopback(port)), Status::kOk);
  auto pop = server_.Pop(*sqd);

  auto cqd = client_.Socket(SocketType::kDatagram);
  ASSERT_EQ(client_.Bind(*cqd, Loopback(0)), Status::kOk);
  auto push = client_.PushTo(*cqd, MakeSga(client_, "udp ping"), Loopback(port));
  EXPECT_EQ(WaitStepped(client_, *push, World()).status, Status::kOk);

  QResult r = WaitStepped(server_, *pop, World());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.remote.ip, Ipv4Addr::FromOctets(127, 0, 0, 1));
  ASSERT_NE(r.remote.port, 0);
  EXPECT_EQ(SgaToString(server_, r.sga, false), "udp ping");

  auto reply = server_.PushTo(*sqd, r.sga, r.remote);
  WaitStepped(server_, *reply, World());
  server_.FreeSga(r.sga);
  auto cpop = client_.Pop(*cqd);
  QResult er = WaitStepped(client_, *cpop, World());
  EXPECT_EQ(SgaToString(client_, er.sga), "udp ping");
}

TEST_F(CatnapPairTest, ConnectionRefused) {
  auto cqd = client_.Socket(SocketType::kStream);
  auto conn = client_.Connect(*cqd, Loopback(1));  // nothing listens on port 1
  ASSERT_TRUE(conn.ok());
  QResult r = WaitStepped(client_, *conn, World());
  EXPECT_NE(r.status, Status::kOk);
}

TEST_F(CatnapPairTest, FileQueueWithFsync) {
  char path[] = "/tmp/demi_catnap_XXXXXX";
  const int tmp = ::mkstemp(path);
  ASSERT_GE(tmp, 0);
  ::close(tmp);

  auto fqd = server_.Open(path);
  ASSERT_TRUE(fqd.ok());
  auto push = server_.Push(*fqd, MakeSga(server_, "durable"));
  ASSERT_TRUE(push.ok());
  EXPECT_EQ(WaitStepped(server_, *push, World()).status, Status::kOk);

  auto pop = server_.Pop(*fqd);
  QResult r = WaitStepped(server_, *pop, World());
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(SgaToString(server_, r.sga), "durable");
  ::unlink(path);
}

// --- Cattree (standalone storage libOS) ---

TEST(CattreeTest, LogQueueSemantics) {
  MonotonicClock clock;
  SimBlockDevice disk(SimBlockDevice::Config{}, clock);
  Cattree os(disk, clock);

  EXPECT_EQ(os.Socket(SocketType::kStream).error(), Status::kNotSupported);

  auto qd = os.Open("device-log");
  ASSERT_TRUE(qd.ok());
  std::vector<QToken> pushes;
  for (int i = 0; i < 10; i++) {
    std::string rec = "record-" + std::to_string(i);
    auto push = os.Push(*qd, MakeSga(os, rec));
    ASSERT_TRUE(push.ok());
    pushes.push_back(*push);
  }
  std::vector<QResult> results;
  ASSERT_EQ(os.WaitAll(pushes, &results, kSecond), Status::kOk);
  for (const auto& r : results) {
    EXPECT_EQ(r.status, Status::kOk);
  }

  // A second open replays from the head: two independent cursors.
  auto qd2 = os.Open("device-log");
  for (int i = 0; i < 10; i++) {
    auto pop = os.Pop(*qd2);
    auto r = os.Wait(*pop, kSecond);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->status, Status::kOk);
    Sgarray sga = r->sga;
    EXPECT_EQ(SgaToString(os, sga), "record-" + std::to_string(i));
  }
}

TEST(CattreeTest, TruncateGarbageCollects) {
  MonotonicClock clock;
  SimBlockDevice disk(SimBlockDevice::Config{}, clock);
  Cattree os(disk, clock);
  auto qd = os.Open("log");
  auto p1 = os.Push(*qd, MakeSga(os, "old"));
  (void)os.Wait(*p1, kSecond);
  const uint64_t keep_from = os.storage().log().tail();
  auto p2 = os.Push(*qd, MakeSga(os, "new"));
  (void)os.Wait(*p2, kSecond);

  ASSERT_EQ(os.Truncate(*qd, keep_from), Status::kOk);
  auto qd2 = os.Open("log");
  ASSERT_EQ(os.Seek(*qd2, keep_from), Status::kOk);
  auto pop = os.Pop(*qd2);
  auto r = os.Wait(*pop, kSecond);
  ASSERT_TRUE(r.ok());
  Sgarray sga = r->sga;
  EXPECT_EQ(SgaToString(os, sga), "new");
  EXPECT_EQ(os.Seek(*qd2, 0), Status::kInvalidArgument);  // below GC head
}

}  // namespace
}  // namespace demi
