# Empty dependencies file for bench_fig8_netpipe.
# This may be replaced when dependencies are built.
