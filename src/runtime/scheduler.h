// The Demikernel coroutine scheduler (paper §5.4).
//
// One scheduler per libOS instance; single-threaded and cooperative. Fibers (spawned Task<void>
// coroutines) are either *runnable* or *blocked*. Readiness is one bit per fiber kept in 64-bit
// "waker blocks"; a Waker is a pointer to one such bit. Poll() scans the blocks with tzcnt-based
// set-bit iteration (Lemire's algorithm) so finding the next runnable coroutine among thousands
// of mostly-blocked ones costs nanoseconds.
//
// Wake-up protocol (Rust-futures-style, as in the paper): before resuming a fiber its ready bit
// is cleared; the fiber either
//   - co_awaits Yield{}            -> re-sets its own bit (stays runnable),
//   - co_awaits an Event/Timer     -> stashes its Waker with the event source and stays blocked
//                                     until some other coroutine (or a timer) sets the bit.
// Spurious wakes are permitted, so all blocking sites loop over their predicate.

#ifndef SRC_RUNTIME_SCHEDULER_H_
#define SRC_RUNTIME_SCHEDULER_H_

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/bitops.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/observability/trace.h"
#include "src/runtime/task.h"
#include "src/runtime/timer_wheel.h"

namespace demi {

class Scheduler;

// A handle that can mark one fiber runnable. Stable for the lifetime of the fiber's slot; waking
// a slot that has since been recycled produces at worst a spurious wake, which blocking code
// tolerates by re-checking its predicate.
class Waker {
 public:
  Waker() = default;
  Waker(uint64_t* word, uint64_t mask) : word_(word), mask_(mask) {}

  void Wake() const {
    if (word_ != nullptr) {
      *word_ |= mask_;
    }
  }
  bool valid() const { return word_ != nullptr; }

 private:
  friend class Scheduler;  // timer-wheel entries store the raw word/mask pair

  uint64_t* word_ = nullptr;
  uint64_t mask_ = 0;
};

class Scheduler {  // demilint: shard-local
 public:
  using FiberId = uint32_t;
  static constexpr FiberId kInvalidFiber = UINT32_MAX;

  explicit Scheduler(Clock& clock) : clock_(clock) {}
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Takes ownership of the task's coroutine frame and schedules it runnable.
  FiberId Spawn(Task<void> task);

  // Destroys every live fiber frame without running it further. LibOS destructors call this
  // FIRST: fiber frames own resources (buffer references, connection shared_ptrs) that must be
  // released while the heap and devices those resources point into still exist — member
  // destruction order alone would tear the allocator down before the base-class scheduler.
  void Shutdown();

  // Runs every currently-runnable fiber once (plus any fibers that become runnable during the
  // round, on subsequent rounds of a future Poll). Fires due timers first. Returns the number of
  // fiber resumptions performed.
  size_t Poll();

  // Convenience: polls until `pred()` is true or `timeout` elapses (0 = no timeout).
  // Returns true if the predicate was met.
  //
  // On a manual clock (VirtualClock) an idle poll round — zero resumptions, empty run queue —
  // can never make progress by itself: nothing advances virtual time, so pending timers never
  // fire. In that situation the clock is stepped to the next timer deadline; with no timers
  // pending the loop returns false instead of spinning forever.
  template <typename Pred>
  bool PollUntil(Pred&& pred, DurationNs timeout = 0) {
    const TimeNs deadline = timeout == 0 ? 0 : clock_.Now() + timeout;
    while (!pred()) {
      const size_t resumed = Poll();
      if (deadline != 0 && clock_.Now() >= deadline) {
        return pred();
      }
      if (resumed == 0 && NumRunnable() == 0 && clock_.IsManual()) {
        const TimeNs next = NextTimerDeadline();
        if (next == 0) {
          return pred();  // live-locked: no runnable fibers, no timers, frozen clock
        }
        clock_.AdvanceTo(deadline != 0 ? std::min(next, deadline) : next);
      }
    }
    return true;
  }

  // --- Introspection ---
  size_t NumLiveFibers() const { return live_fibers_; }
  size_t NumRunnable() const;
  Clock& clock() { return clock_; }
  TimeNs Now() const { return clock_.Now(); }

  // Cumulative scheduling counters (docs/OBSERVABILITY.md lists each as `sched.*`). Plain
  // increments on the poll path; registered into the owning libOS's MetricsRegistry as
  // callback gauges.
  struct Stats {
    uint64_t polls = 0;              // Poll() calls
    uint64_t resumptions = 0;        // fiber resumes across all polls
    uint64_t fibers_spawned = 0;
    uint64_t fibers_completed = 0;
    uint64_t timer_fires = 0;        // timers whose deadline fired
    uint64_t stale_wakes = 0;        // ready bits of dead/recycled slots
    uint64_t blocks_scanned = 0;     // waker blocks with at least one ready bit
    uint64_t blocks_skipped = 0;     // waker blocks skipped because all 64 bits were clear
    uint64_t yields = 0;             // co_await Yield{} suspensions
    uint64_t fiber_blocks = 0;       // suspensions into a blocking awaitable (Event/Sleep)
  };
  const Stats& stats() const { return stats_; }

  // Times this fiber slot has been resumed (cumulative across slot reuse).
  uint64_t FiberRunCount(FiberId id) const {
    return id < fibers_.size() ? fibers_[id].runs : 0;
  }

  // Attaches a tracer for kFiberScheduled/kFiberBlocked/kFiberYielded/kFiberCompleted and
  // kTimerWheelCascade events; nullptr detaches. The tracer must outlive the scheduler.
  void SetTracer(Tracer* tracer) {
    tracer_ = tracer;
    wheel_.SetTracer(tracer);
  }

  // --- Called from inside a running fiber (via thread-local current context) ---
  static Scheduler* Current();
  static FiberId CurrentFiber();

  // Waker for the currently running fiber.
  Waker CurrentWaker();
  Waker WakerFor(FiberId id);

  // Registers a one-shot timer that wakes `waker` at `deadline`. Fire-and-forget: there is no
  // handle, so the wake happens regardless (spurious wakes are tolerated everywhere).
  void AddTimer(TimeNs deadline, Waker waker);

  // Cancellable callback timer on the scheduler's timing wheel (src/runtime/timer_wheel.h).
  // `cb(ctx, arg)` runs during a future Poll() once `deadline` is reached; O(1) arm/cancel, so
  // per-connection protocol timers (retransmit/delayed-ack/TIME_WAIT) re-arm freely at
  // million-connection scale. Cancelling an already-fired id is a safe no-op.
  TimerId ArmTimer(TimeNs deadline, TimerWheel::Callback cb, void* ctx, uint64_t arg) {
    return wheel_.Arm(deadline, cb, ctx, arg);
  }
  bool CancelTimer(TimerId id) { return wheel_.Cancel(id); }

  // The wheel itself, for `timerwheel.*` metrics and tests.
  const TimerWheel& timer_wheel() const { return wheel_; }

  // Called by blocking awaitables at suspension: records where to resume the current fiber.
  // `h` is the innermost suspended coroutine of the running fiber. Distinct from the Yield
  // path so blocked-vs-yielded suspensions are counted (and traced) separately.
  void SetResumePointForAwait(std::coroutine_handle<> h) {
    SetResumePoint(h);
    stats_.fiber_blocks++;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventType::kFiberBlocked, running_fiber_);
    }
  }

  // Earliest pending timer deadline, or 0 if none. Lets stepped-mode tests advance a
  // VirtualClock exactly to the next event.
  TimeNs NextTimerDeadline() const;

  // --- Awaitables ---

  // co_await Yield{}: reschedule the current fiber behind other runnable work.
  struct Yield {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept;
    void await_resume() const noexcept {}
  };

  // co_await scheduler.Sleep(d): block for at least d (measured on the scheduler clock).
  struct SleepAwaitable {
    Scheduler* sched;
    TimeNs deadline;
    bool await_ready() const noexcept { return sched->clock_.Now() >= deadline; }
    void await_suspend(std::coroutine_handle<> h) noexcept;
    void await_resume() const noexcept {}
  };
  SleepAwaitable Sleep(DurationNs d) { return SleepAwaitable{this, clock_.Now() + d}; }
  SleepAwaitable SleepUntil(TimeNs t) { return SleepAwaitable{this, t}; }

 private:
  friend class Event;

  struct WakerBlock {
    uint64_t ready = 0;
  };

  struct Fiber {
    std::coroutine_handle<internal::Promise<void>> root;  // for done-check and destroy
    std::coroutine_handle<> resume_point;                 // innermost suspended coroutine
    bool live = false;
    uint64_t runs = 0;  // resumptions of this slot (survives slot reuse; per-fiber run count)
  };

  // Set by awaitables at suspension: where to resume this fiber next.
  void SetResumePoint(std::coroutine_handle<> h);
  void FireDueTimers();
  void ReleaseFiber(FiberId id);

  Clock& clock_;
  std::deque<WakerBlock> blocks_;  // deque: Waker pointers must stay stable as fibers spawn
  std::vector<Fiber> fibers_;
  std::vector<FiberId> free_slots_;
  size_t live_fibers_ = 0;

  // Wake-a-fiber timer callback: `ctx` is the waker block word, `arg` the ready-bit mask.
  static void WakeWordCb(void* ctx, uint64_t arg) { *static_cast<uint64_t*>(ctx) |= arg; }

  TimerWheel wheel_;
  FiberId running_fiber_ = kInvalidFiber;
  Stats stats_;
  Tracer* tracer_ = nullptr;
};

// RAII guard for the thread-local current-scheduler context (exposed for tests).
struct SchedulerContextGuard {
  SchedulerContextGuard(Scheduler* sched, Scheduler::FiberId fiber);
  ~SchedulerContextGuard();
  Scheduler* prev_sched;
  Scheduler::FiberId prev_fiber;
};

}  // namespace demi

#endif  // SRC_RUNTIME_SCHEDULER_H_
