file(REMOVE_RECURSE
  "CMakeFiles/pdpix_c_test.dir/pdpix_c_test.cc.o"
  "CMakeFiles/pdpix_c_test.dir/pdpix_c_test.cc.o.d"
  "pdpix_c_test"
  "pdpix_c_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdpix_c_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
