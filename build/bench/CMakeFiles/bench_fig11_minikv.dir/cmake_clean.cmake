file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_minikv.dir/bench_fig11_minikv.cc.o"
  "CMakeFiles/bench_fig11_minikv.dir/bench_fig11_minikv.cc.o.d"
  "bench_fig11_minikv"
  "bench_fig11_minikv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_minikv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
