// UDP relay (TURN-style) server (paper §7.4, Figure 10): forwards every datagram received on
// the relay port to a configured target — the data path of Azure's TURN relays, where
// per-packet CPU cost is what matters.
//
// Three variants reproduce Figure 10's comparison: the Demikernel PDPIX relay, a plain POSIX
// recvfrom/sendto relay ("Linux"), and a batched recvmmsg/sendmmsg relay standing in for the
// io_uring variant (liburing is not available offline; batched msg syscalls capture the same
// "fewer kernel crossings per packet" effect — see DESIGN.md §2).

#ifndef SRC_APPS_UDP_RELAY_H_
#define SRC_APPS_UDP_RELAY_H_

#include <atomic>

#include "src/common/histogram.h"
#include "src/core/libos.h"

namespace demi {

struct RelayOptions {
  SocketAddress listen;
  SocketAddress target;
};

struct RelayStats {
  uint64_t forwarded = 0;
  uint64_t bytes = 0;
};

// Pumpable relay (see EchoServerApp for the pump pattern).
class UdpRelayApp {
 public:
  UdpRelayApp(LibOS& os, const RelayOptions& options);
  size_t Pump();  // non-blocking; returns packets forwarded
  const RelayStats& stats() const { return stats_; }

 private:
  LibOS& os_;
  RelayOptions options_;
  RelayStats stats_;
  QueueDesc sock_ = kInvalidQd;
  QToken pop_ = kInvalidQToken;
};

void RunUdpRelay(LibOS& os, const RelayOptions& options, std::atomic<bool>& stop,
                 RelayStats* stats = nullptr);
void RunPosixUdpRelay(const RelayOptions& options, std::atomic<bool>& stop,
                      RelayStats* stats = nullptr);
void RunBatchedPosixUdpRelay(const RelayOptions& options, std::atomic<bool>& stop,
                             RelayStats* stats = nullptr);

// Traffic generator + sink: sends datagrams to the relay and measures generator->relay->sink
// latency (the sink is a second socket owned by the generator, as in §7.4's methodology).
struct RelayLoadOptions {
  SocketAddress relay;
  SocketAddress sink_bind;  // where relayed packets land (the relay's target)
  size_t packet_size = 64;
  uint64_t packets = 10'000;
  uint64_t warmup = 100;
};

struct RelayLoadResult {
  Histogram latency;
  uint64_t lost = 0;
};

// POSIX traffic generator (the paper uses a non-kernel-bypass Linux generator). Usable when
// the relay runs on the kernel path (POSIX/Catnap over loopback).
RelayLoadResult RunPosixRelayLoadGenerator(const RelayLoadOptions& options);

// PDPIX traffic generator for relays running on the simulated fabric (Catnip): sends to the
// relay from one socket and receives the relayed packets on a second socket bound to the
// relay's target address.
RelayLoadResult RunRelayLoadGenerator(LibOS& os, const RelayLoadOptions& options);

}  // namespace demi

#endif  // SRC_APPS_UDP_RELAY_H_
