#include "src/netsim/rss.h"

namespace demi {
namespace {

// The canonical Microsoft RSS key (the one every NIC datasheet and DPDK ship as the default).
constexpr uint8_t kRssKey[40] = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3,
    0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3,
    0x80, 0x30, 0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

constexpr size_t kEthHeaderSize = 14;
constexpr size_t kIpv4MinHeaderSize = 20;
constexpr uint16_t kEtherTypeIpv4 = 0x0800;
constexpr uint8_t kProtoTcp = 6;
constexpr uint8_t kProtoUdp = 17;

}  // namespace

uint32_t ToeplitzHash(std::span<const uint8_t> input) {
  uint32_t hash = 0;
  // 32-bit window sliding over the key bit stream, refilled one bit per input bit.
  uint32_t window = (uint32_t{kRssKey[0]} << 24) | (uint32_t{kRssKey[1]} << 16) |
                    (uint32_t{kRssKey[2]} << 8) | kRssKey[3];
  for (size_t i = 0; i < input.size() && i + 4 < sizeof(kRssKey); i++) {
    for (int bit = 0; bit < 8; bit++) {
      if ((input[i] & (0x80u >> bit)) != 0) {
        hash ^= window;
      }
      window <<= 1;
      if ((kRssKey[i + 4] & (0x80u >> bit)) != 0) {
        window |= 1;
      }
    }
  }
  return hash;
}

uint32_t RssHash4Tuple(Ipv4Addr src_ip, Ipv4Addr dst_ip, uint16_t src_port, uint16_t dst_port) {
  // Network byte order, per the RSS spec: src ip, dst ip, src port, dst port.
  const uint8_t input[12] = {
      static_cast<uint8_t>(src_ip.value >> 24), static_cast<uint8_t>(src_ip.value >> 16),
      static_cast<uint8_t>(src_ip.value >> 8),  static_cast<uint8_t>(src_ip.value),
      static_cast<uint8_t>(dst_ip.value >> 24), static_cast<uint8_t>(dst_ip.value >> 16),
      static_cast<uint8_t>(dst_ip.value >> 8),  static_cast<uint8_t>(dst_ip.value),
      static_cast<uint8_t>(src_port >> 8),      static_cast<uint8_t>(src_port),
      static_cast<uint8_t>(dst_port >> 8),      static_cast<uint8_t>(dst_port)};
  return ToeplitzHash(std::span<const uint8_t>(input, sizeof(input)));
}

size_t RssQueueForFrame(std::span<const uint8_t> frame, size_t num_queues) {
  if (num_queues <= 1) {
    return 0;
  }
  if (frame.size() < kEthHeaderSize + kIpv4MinHeaderSize) {
    return 0;
  }
  const uint16_t ether_type =
      static_cast<uint16_t>((uint16_t{frame[12]} << 8) | uint16_t{frame[13]});
  if (ether_type != kEtherTypeIpv4) {
    return 0;  // ARP and friends go to the default queue
  }
  const std::span<const uint8_t> ip = frame.subspan(kEthHeaderSize);
  const size_t ihl = static_cast<size_t>(ip[0] & 0x0F) * 4;
  if ((ip[0] >> 4) != 4 || ihl < kIpv4MinHeaderSize || ip.size() < ihl) {
    return 0;
  }
  const uint8_t protocol = ip[9];
  // Fragment with a nonzero offset (or more-fragments chains) carries no L4 header; RSS
  // hardware falls back to the 2-tuple for those and for non-TCP/UDP protocols.
  const bool fragmented = ((ip[6] & 0x3F) != 0) || ip[7] != 0;  // MF flag or nonzero offset
  uint8_t input[12];
  size_t input_len = 8;
  for (size_t i = 0; i < 8; i++) {
    input[i] = ip[12 + i];  // src ip, dst ip as they sit on the wire
  }
  if ((protocol == kProtoTcp || protocol == kProtoUdp) && !fragmented &&
      ip.size() >= ihl + 4) {
    for (size_t i = 0; i < 4; i++) {
      input[8 + i] = ip[ihl + i];  // src port, dst port
    }
    input_len = 12;
  }
  const uint32_t hash = ToeplitzHash(std::span<const uint8_t>(input, input_len));
  // Real hardware indexes a 128-entry indirection table with the low 7 bits; with the default
  // round-robin table that reduces to a modulo, which we use directly.
  return static_cast<size_t>(hash % num_queues);
}

}  // namespace demi
