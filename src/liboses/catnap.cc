#include "src/liboses/catnap.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/logging.h"
#include "src/memory/dma.h"

namespace demi {

namespace {

constexpr uint32_t kFileRecordMagic = 0x4C4F4752;  // same framing as LogDevice ("LOGR")
constexpr size_t kFileHeaderSize = 8;

sockaddr_in ToSockaddr(SocketAddress addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr.ip.value);
  sa.sin_port = htons(addr.port);
  return sa;
}

SocketAddress FromSockaddr(const sockaddr_in& sa) {
  return SocketAddress{Ipv4Addr{ntohl(sa.sin_addr.s_addr)}, ntohs(sa.sin_port)};
}

[[nodiscard]] Status ErrnoToStatus(int err) {
  switch (err) {
    case ECONNREFUSED: return Status::kConnectionRefused;
    case ECONNRESET: return Status::kConnectionReset;
    case ECONNABORTED: return Status::kConnectionAborted;
    case ENOTCONN: return Status::kNotConnected;
    case EADDRINUSE: return Status::kAddressInUse;
    case ETIMEDOUT: return Status::kTimedOut;
    case EMSGSIZE: return Status::kMessageTooLong;
    case ENOMEM: return Status::kNoMemory;
    case EBADF: return Status::kBadQueueDescriptor;
    case EPIPE: return Status::kConnectionReset;
    default: return Status::kIoError;
  }
}

uint64_t AlignUp8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

}  // namespace

Catnap::Catnap(Clock& clock) : LibOS("catnap", clock, NullDmaRegistrar::Global()) {}

Catnap::~Catnap() {
  sched_.Shutdown();  // release fiber-held pinned buffers while the heap is alive
  for (auto& [qd, q] : queues_) {
    if (q.fd >= 0) {
      ::close(q.fd);
    }
  }
}

Catnap::QueueState* Catnap::Find(QueueDesc qd) {
  auto it = queues_.find(qd);
  return it == queues_.end() ? nullptr : &it->second;
}

QueueDesc Catnap::InstallFd(int fd, QKind kind, SocketType type) {
  const QueueDesc qd = next_qd_++;
  QueueState q;
  q.kind = kind;
  q.fd = fd;
  q.type = type;
  queues_[qd] = q;
  return qd;
}

Result<QueueDesc> Catnap::Socket(SocketType type) {
  const int sock_type =
      (type == SocketType::kStream ? SOCK_STREAM : SOCK_DGRAM) | SOCK_NONBLOCK;
  const int fd = ::socket(AF_INET, sock_type, 0);
  if (fd < 0) {
    return ErrnoToStatus(errno);
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (type == SocketType::kStream) {
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return InstallFd(fd, type == SocketType::kStream ? QKind::kTcp : QKind::kUdp, type);
}

Status Catnap::Bind(QueueDesc qd, SocketAddress local) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->fd < 0) {
    return Status::kBadQueueDescriptor;
  }
  sockaddr_in sa = ToSockaddr(local);
  if (::bind(q->fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    return ErrnoToStatus(errno);
  }
  return Status::kOk;
}

Status Catnap::Listen(QueueDesc qd, int backlog) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->kind != QKind::kTcp) {
    return Status::kBadQueueDescriptor;
  }
  if (::listen(q->fd, backlog) != 0) {
    return ErrnoToStatus(errno);
  }
  q->kind = QKind::kTcpListener;
  return Status::kOk;
}

Result<QToken> Catnap::Accept(QueueDesc qd) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->kind != QKind::kTcpListener) {
    return Status::kBadQueueDescriptor;
  }
  const QToken qt = tokens_.Allocate(OpCode::kAccept, qd);
  sched_.Spawn(AcceptOp(qd, qt, q->fd));
  return qt;
}

Task<void> Catnap::AcceptOp(QueueDesc qd, QToken qt, int fd) {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int conn_fd =
        ::accept4(fd, reinterpret_cast<sockaddr*>(&peer), &peer_len, SOCK_NONBLOCK);
    if (conn_fd >= 0) {
      const int one = 1;
      ::setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      QResult r;
      r.status = Status::kOk;
      r.new_qd = InstallFd(conn_fd, QKind::kTcp, SocketType::kStream);
      queues_[r.new_qd].connected = true;
      r.remote = FromSockaddr(peer);
      CompleteToken(qt, r);
      co_return;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      QResult r;
      r.status = ErrnoToStatus(errno);
      CompleteToken(qt, r);
      co_return;
    }
    // Polling accept: yield and retry (Catnap's polling design).
    co_await Scheduler::Yield{};
    if (Find(qd) == nullptr) {
      QResult r;
      r.status = Status::kCancelled;
      CompleteToken(qt, r);
      co_return;
    }
  }
}

Result<QToken> Catnap::Connect(QueueDesc qd, SocketAddress remote) {
  QueueState* q = Find(qd);
  if (q == nullptr) {
    return Status::kBadQueueDescriptor;
  }
  const QToken qt = tokens_.Allocate(OpCode::kConnect, qd);
  sockaddr_in sa = ToSockaddr(remote);
  const int rc = ::connect(q->fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc == 0 || q->kind == QKind::kUdp) {
    q->connected = true;
    QResult r;
    r.status = Status::kOk;
    r.remote = remote;
    CompleteToken(qt, r);
    return qt;
  }
  if (errno != EINPROGRESS) {
    QResult r;
    r.status = ErrnoToStatus(errno);
    CompleteToken(qt, r);
    return qt;
  }
  sched_.Spawn(ConnectOp(qd, qt, q->fd));
  return qt;
}

Task<void> Catnap::ConnectOp(QueueDesc qd, QToken qt, int fd) {
  for (;;) {
    // A second connect on an in-progress socket reports the outcome.
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getpeername(fd, reinterpret_cast<sockaddr*>(&sa), &len) == 0) {
      QueueState* q = Find(qd);
      if (q != nullptr) {
        q->connected = true;
      }
      QResult r;
      r.status = Status::kOk;
      r.remote = FromSockaddr(sa);
      CompleteToken(qt, r);
      co_return;
    }
    if (errno == ENOTCONN) {
      // Still in progress, or failed: check SO_ERROR.
      int so_error = 0;
      socklen_t err_len = sizeof(so_error);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &err_len);
      if (so_error != 0) {
        QResult r;
        r.status = ErrnoToStatus(so_error);
        CompleteToken(qt, r);
        co_return;
      }
    }
    co_await Scheduler::Yield{};
    if (Find(qd) == nullptr) {
      QResult r;
      r.status = Status::kCancelled;
      CompleteToken(qt, r);
      co_return;
    }
  }
}

Result<QToken> Catnap::Push(QueueDesc qd, const Sgarray& sga) {
  QueueState* q = Find(qd);
  if (q == nullptr) {
    return Status::kBadQueueDescriptor;
  }
  if (q->kind == QKind::kFile) {
    // Append one framed record, then fsync for durability (the paper's logging setup).
    const QToken qt = tokens_.Allocate(OpCode::kPush, qd);
    const size_t payload = sga.TotalBytes();
    std::vector<uint8_t> rec(AlignUp8(kFileHeaderSize + payload), 0);
    const uint32_t magic = kFileRecordMagic;
    const uint32_t len32 = static_cast<uint32_t>(payload);
    std::memcpy(rec.data(), &magic, 4);
    std::memcpy(rec.data() + 4, &len32, 4);
    size_t off = kFileHeaderSize;
    for (uint32_t i = 0; i < sga.num_segs; i++) {
      std::memcpy(rec.data() + off, sga.segs[i].buf, sga.segs[i].len);
      off += sga.segs[i].len;
    }
    QResult r;
    const ssize_t n = ::write(q->fd, rec.data(), rec.size());
    if (n != static_cast<ssize_t>(rec.size()) || ::fsync(q->fd) != 0) {
      r.status = ErrnoToStatus(errno);
    } else {
      r.status = Status::kOk;
    }
    CompleteToken(qt, r);
    return qt;
  }
  if (q->kind == QKind::kUdp) {
    if (!q->connected) {
      return Status::kNotConnected;
    }
    const QToken qt = tokens_.Allocate(OpCode::kPush, qd);
    iovec iov[kSgaMaxSegments];
    for (uint32_t i = 0; i < sga.num_segs; i++) {
      iov[i] = {sga.segs[i].buf, sga.segs[i].len};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = sga.num_segs;
    QResult r;
    r.status = ::sendmsg(q->fd, &msg, 0) < 0 ? ErrnoToStatus(errno) : Status::kOk;
    CompleteToken(qt, r);
    return qt;
  }
  // TCP: try an inline gather write; finish leftovers in a coroutine on short writes.
  const QToken qt = tokens_.Allocate(OpCode::kPush, qd);
  iovec iov[kSgaMaxSegments];
  for (uint32_t i = 0; i < sga.num_segs; i++) {
    iov[i] = {sga.segs[i].buf, sga.segs[i].len};
  }
  const ssize_t n = ::writev(q->fd, iov, static_cast<int>(sga.num_segs));
  const size_t total = sga.TotalBytes();
  if (n == static_cast<ssize_t>(total)) {
    QResult r;
    r.status = Status::kOk;
    CompleteToken(qt, r);
    return qt;
  }
  if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
    QResult r;
    r.status = ErrnoToStatus(errno);
    CompleteToken(qt, r);
    return qt;
  }
  // Pin the application buffers for the remainder of the write: PDPIX lets the app free
  // immediately after push (UAF protection), so the coroutine must hold references (or copies
  // for foreign/small memory) rather than raw pointers.
  std::vector<Buffer> pinned;
  pinned.reserve(sga.num_segs);
  for (uint32_t i = 0; i < sga.num_segs; i++) {
    pinned.push_back(Buffer::FromApp(alloc_, sga.segs[i].buf, sga.segs[i].len));
  }
  sched_.Spawn(PushSocketOp(qd, qt, q->fd, std::move(pinned), n < 0 ? 0 : static_cast<size_t>(n)));
  return qt;
}

Task<void> Catnap::PushSocketOp(QueueDesc qd, QToken qt, int fd, std::vector<Buffer> pinned,
                                size_t already_written) {
  size_t written = already_written;
  size_t total = 0;
  for (const Buffer& b : pinned) {
    total += b.size();
  }
  while (written < total) {
    // Rebuild the iovec past `written`.
    iovec iov[kSgaMaxSegments];
    int iovcnt = 0;
    size_t skip = written;
    for (const Buffer& b : pinned) {
      if (skip >= b.size()) {
        skip -= b.size();
        continue;
      }
      iov[iovcnt++] = {const_cast<uint8_t*>(b.data()) + skip, b.size() - skip};
      skip = 0;
    }
    const ssize_t n = ::writev(fd, iov, iovcnt);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      QResult r;
      r.status = ErrnoToStatus(errno);
      CompleteToken(qt, r);
      co_return;
    }
    co_await Scheduler::Yield{};
    if (Find(qd) == nullptr) {
      QResult r;
      r.status = Status::kCancelled;
      CompleteToken(qt, r);
      co_return;
    }
  }
  QResult r;
  r.status = Status::kOk;
  CompleteToken(qt, r);
}

Result<QToken> Catnap::PushTo(QueueDesc qd, const Sgarray& sga, SocketAddress to) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->kind != QKind::kUdp) {
    return Status::kBadQueueDescriptor;
  }
  const QToken qt = tokens_.Allocate(OpCode::kPush, qd);
  iovec iov[kSgaMaxSegments];
  for (uint32_t i = 0; i < sga.num_segs; i++) {
    iov[i] = {sga.segs[i].buf, sga.segs[i].len};
  }
  sockaddr_in sa = ToSockaddr(to);
  msghdr msg{};
  msg.msg_name = &sa;
  msg.msg_namelen = sizeof(sa);
  msg.msg_iov = iov;
  msg.msg_iovlen = sga.num_segs;
  QResult r;
  r.status = ::sendmsg(q->fd, &msg, 0) < 0 ? ErrnoToStatus(errno) : Status::kOk;
  CompleteToken(qt, r);
  return qt;
}

Result<QToken> Catnap::Pop(QueueDesc qd) {
  QueueState* q = Find(qd);
  if (q == nullptr) {
    return Status::kBadQueueDescriptor;
  }
  if (q->kind == QKind::kFile) {
    const QToken qt = tokens_.Allocate(OpCode::kPop, qd);
    // Synchronous framed read at the cursor.
    uint8_t hdr[kFileHeaderSize];
    QResult r;
    const ssize_t n = ::pread(q->fd, hdr, sizeof(hdr), static_cast<off_t>(q->read_cursor));
    if (n == 0) {
      r.status = Status::kEndOfFile;
    } else if (n != static_cast<ssize_t>(sizeof(hdr))) {
      r.status = Status::kIoError;
    } else {
      uint32_t magic = 0;
      uint32_t len = 0;
      std::memcpy(&magic, hdr, 4);
      std::memcpy(&len, hdr + 4, 4);
      if (magic != kFileRecordMagic) {
        r.status = Status::kProtocolError;
      } else {
        void* buf = alloc_.Alloc(len == 0 ? 1 : len);
        if (::pread(q->fd, buf, len, static_cast<off_t>(q->read_cursor + kFileHeaderSize)) !=
            static_cast<ssize_t>(len)) {
          alloc_.Free(buf);
          r.status = Status::kIoError;
        } else {
          q->read_cursor += AlignUp8(kFileHeaderSize + len);
          r.status = Status::kOk;
          r.sga = Sgarray::Of(buf, len);
        }
      }
    }
    CompleteToken(qt, r);
    return qt;
  }
  const QToken qt = tokens_.Allocate(OpCode::kPop, qd);
  sched_.Spawn(PopSocketOp(qd, qt, q->fd, q->type));
  return qt;
}

Task<void> Catnap::PopSocketOp(QueueDesc qd, QToken qt, int fd, SocketType type) {
  for (;;) {
    void* buf = alloc_.Alloc(kPopChunk);
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    ssize_t n;
    if (type == SocketType::kDatagram) {
      n = ::recvfrom(fd, buf, kPopChunk, 0, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    } else {
      n = ::read(fd, buf, kPopChunk);
    }
    if (n > 0) {
      QResult r;
      r.status = Status::kOk;
      r.sga = Sgarray::Of(buf, static_cast<uint32_t>(n));
      if (type == SocketType::kDatagram) {
        r.remote = FromSockaddr(peer);
      }
      CompleteToken(qt, r);
      co_return;
    }
    alloc_.Free(buf);
    if (n == 0 && type == SocketType::kStream) {
      QResult r;
      r.status = Status::kEndOfFile;
      CompleteToken(qt, r);
      co_return;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
      QResult r;
      r.status = ErrnoToStatus(errno);
      CompleteToken(qt, r);
      co_return;
    }
    co_await Scheduler::Yield{};
    if (Find(qd) == nullptr) {
      QResult r;
      r.status = Status::kCancelled;
      CompleteToken(qt, r);
      co_return;
    }
  }
}

Result<QueueDesc> Catnap::Open(std::string_view path) {
  const std::string p(path);
  const int fd = ::open(p.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return ErrnoToStatus(errno);
  }
  return InstallFd(fd, QKind::kFile, SocketType::kStream);
}

Status Catnap::Seek(QueueDesc qd, uint64_t offset) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->kind != QKind::kFile) {
    return Status::kBadQueueDescriptor;
  }
  q->read_cursor = offset;
  return Status::kOk;
}

Status Catnap::Truncate(QueueDesc qd, uint64_t offset) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->kind != QKind::kFile) {
    return Status::kBadQueueDescriptor;
  }
  // Log-GC semantics: drop everything *before* offset is not expressible on a flat file, so
  // Catnap interprets truncate as cutting the tail back to `offset`, like ftruncate.
  if (::ftruncate(q->fd, static_cast<off_t>(offset)) != 0) {
    return ErrnoToStatus(errno);
  }
  return Status::kOk;
}

Status Catnap::Close(QueueDesc qd) {
  auto it = queues_.find(qd);
  if (it == queues_.end()) {
    return Status::kBadQueueDescriptor;
  }
  if (it->second.fd >= 0) {
    ::close(it->second.fd);
  }
  queues_.erase(it);
  return Status::kOk;
}

}  // namespace demi
