// DemiSan thread-affinity and qtoken lifecycle tests (docs/STATIC_ANALYSIS.md).
//
// Build-dependent split:
//   - DEMI_OWNERSHIP_CHECKS on: death tests assert that cross-shard touches and stale-token
//     misuses abort with diagnostics naming the owning shard, both threads, and the violation
//     kind. The sanitizer suite in scripts/run_sanitizers.sh runs this binary in that tree.
//   - Default build: the same misuses must stay non-fatal — stale ops keep returning
//     kBadQToken/false — but are classified and counted in `qtoken.lifecycle_violations`.
//   - Both builds: the negative controls. Owner-thread access through every tagged structure
//     must never abort, and a real two-shard ShardGroup workload must run clean end to end
//     (zero false positives), exporting the demisan.enabled / pool.numa_node /
//     qtoken.lifecycle_violations metrics.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "src/apps/echo.h"
#include "src/common/affinity.h"
#include "src/common/clock.h"
#include "src/common/numa.h"
#include "src/core/qtoken_table.h"
#include "src/core/shard_group.h"
#include "src/core/types.h"
#include "src/liboses/catnip.h"
#include "src/memory/buffer.h"
#include "src/memory/pool_allocator.h"
#include "src/net/tcp/flow_table.h"
#include "src/net/tcp/tcb_slab.h"
#include "src/netsim/sim_network.h"

namespace demi {
namespace {

// --- Negative controls (both builds): owner-thread access is always legal ---

TEST(AffinityTest, OwnerThreadAccessNeverAborts) {
  PoolAllocator alloc;
  QTokenTable tokens;
  FlowTable table;
  TcbSlab slab;
  // Bind and use everything on one spawned thread — the owner. Nothing here may abort.
  std::thread owner([&] {
    alloc.BindShard(0);
    tokens.BindShard(0);
    table.BindShard(0);
    slab.BindShard(0);

    Buffer b = Buffer::Allocate(alloc, 4096);
    b.mutable_data()[0] = 0x5A;
    EXPECT_EQ(b.data()[0], 0x5A);
    b = Buffer();  // release on the owner

    const QToken qt = tokens.Allocate(OpCode::kPop, 1);
    QResult r;
    r.status = Status::kOk;
    EXPECT_TRUE(tokens.Complete(qt, r));
    EXPECT_TRUE(tokens.Take(qt).ok());

    const uint64_t key = FlowTable::MakeKey(0x0A000002, 40000, 7777);
    EXPECT_TRUE(table.Insert(key, nullptr));
    EXPECT_EQ(table.Find(key), nullptr);  // inserted a null conn; lookup itself is the point
    EXPECT_TRUE(table.Erase(key));

    auto slot = slab.Make<int>(7);
    EXPECT_EQ(*slot, 7);
    slot.reset();

    // Unbind on the owner itself, mirroring ShardGroup::WorkerMain's exit sequence.
    tokens.UnbindShard();
    table.UnbindShard();
    slab.UnbindShard();
    alloc.UnbindShard();
  });
  owner.join();
  EXPECT_EQ(tokens.lifecycle_violations(), 0u);
}

TEST(AffinityTest, UnboundStructuresAreUncheckedOnAnyThread) {
  // Single-threaded tests and benches never bind; everything must work from any thread.
  PoolAllocator alloc;
  Buffer b = Buffer::Allocate(alloc, 1024);
  std::thread other([&] { EXPECT_NE(b.data(), nullptr); });
  other.join();
}

TEST(AffinityTest, ExemptScopeAllowsAnnotatedCrossDomainAccess) {
  PoolAllocator alloc;
  std::thread owner([&] { alloc.BindShard(4); });
  owner.join();
  {
    // Handoff-point exemption: inside the scope this foreign thread may touch the bound heap.
    [[maybe_unused]] AffinityExemptScope handoff;
    void* p = alloc.Alloc(64);
    ASSERT_NE(p, nullptr);
    alloc.Free(p);
  }
  alloc.UnbindShard();
}

TEST(AffinityTest, CurrentNumaNodeIsSane) {
  // -1 (unknown) or a real node id; never garbage. BindShard snapshots this value.
  const int node = CurrentNumaNode();
  EXPECT_GE(node, -1);
  PoolAllocator alloc;
  EXPECT_EQ(alloc.numa_node(), -1);  // unplaced until bound
  alloc.BindShard(0);
  EXPECT_EQ(alloc.numa_node(), node);
  alloc.UnbindShard();
  // Placement info survives unbind: post-Join metric snapshots still see the real node.
  EXPECT_EQ(alloc.numa_node(), node);
}

// End-to-end zero-false-positive soak: a real two-worker RSS-sharded echo run under the
// affinity tags, then metric export from the control plane (the annotated exemption).
TEST(AffinityTest, ShardedEchoRunsCleanUnderAffinityTags) {
  constexpr Ipv4Addr kServerIp = Ipv4Addr::FromOctets(10, 0, 0, 1);
  constexpr MacAddr kServerMac{0xA1};
  constexpr Ipv4Addr kClientIp = Ipv4Addr::FromOctets(10, 0, 0, 2);
  constexpr MacAddr kClientMac{0xB2};

  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/21);
  ShardGroup::Options opts;
  opts.num_workers = 2;
  opts.base = Catnip::Config{kServerMac, kServerIp, TcpConfig{}, nullptr};
  opts.static_arp.emplace_back(kClientIp, kClientMac);
  ShardGroup group(net, clock, opts);

  const SocketAddress server_addr{kServerIp, 7777};
  StartShardedEchoServer(group, EchoServerOptions{server_addr});

  Catnip::Config ccfg{kClientMac, kClientIp, TcpConfig{}, nullptr};
  Catnip client(net, ccfg, clock);
  client.ethernet().arp().Insert(kServerIp, kServerMac);

  // A few connections so both shards are exercised through their bound heaps and tables.
  for (int conn = 0; conn < 4; conn++) {
    auto sock = client.Socket(SocketType::kStream);
    ASSERT_TRUE(sock.ok());
    auto cqt = client.Connect(*sock, server_addr);
    ASSERT_TRUE(cqt.ok());
    auto cr = client.Wait(*cqt, 5 * kSecond);
    ASSERT_TRUE(cr.ok());
    ASSERT_EQ(cr->status, Status::kOk);

    const char msg[] = "affinity soak";
    void* buf = client.DmaMalloc(sizeof(msg));
    ASSERT_NE(buf, nullptr);
    std::memcpy(buf, msg, sizeof(msg));
    auto pqt = client.Push(*sock, Sgarray::Of(buf, static_cast<uint32_t>(sizeof(msg))));
    ASSERT_TRUE(pqt.ok());
    auto pr = client.Wait(*pqt, 5 * kSecond);
    client.DmaFree(buf);
    ASSERT_TRUE(pr.ok());

    auto popqt = client.Pop(*sock);
    ASSERT_TRUE(popqt.ok());
    auto popr = client.Wait(*popqt, 5 * kSecond);
    ASSERT_TRUE(popr.ok());
    ASSERT_EQ(popr->status, Status::kOk);
    Sgarray got = popr->sga;
    client.FreeSga(got);
    EXPECT_EQ(client.Close(*sock), Status::kOk);
  }

  // Control-plane scrape while workers are still live (the annotated exemption in
  // ShardGroup::ExportMetricsText), then a clean stop.
  const std::string live_metrics = group.ExportMetricsText();
  EXPECT_NE(live_metrics.find("pool.numa_node"), std::string::npos);
  EXPECT_NE(live_metrics.find("demisan.enabled"), std::string::npos);
  EXPECT_NE(live_metrics.find("qtoken.lifecycle_violations"), std::string::npos);

  group.RequestStop();
  group.Join();

  // Zero violations across both shards: the rollup value for the counter must be 0.
  for (const auto& s : group.AggregateSnapshot()) {
    if (s.name == "qtoken.lifecycle_violations") {
      EXPECT_EQ(s.value, 0);
    }
#if defined(DEMI_OWNERSHIP_CHECKS)
    if (s.name == "demisan.enabled") {
      EXPECT_EQ(s.value, 2);  // gauge value 1 per shard, summed across 2 shards
    }
#endif
  }
}

// --- Default build: stale-token misuses are classified and counted, never fatal ---

#if !defined(DEMI_OWNERSHIP_CHECKS)

TEST(QTokenLifecycleTest, DoubleWaitCountedNotFatal) {
  QTokenTable table;
  const QToken qt = table.Allocate(OpCode::kPop, 3);
  table.Complete(qt, QResult{});
  ASSERT_TRUE(table.Take(qt).ok());
  EXPECT_EQ(table.Take(qt).error(), Status::kBadQToken);  // double-wait
  EXPECT_EQ(table.lifecycle_violations(), 1u);
}

TEST(QTokenLifecycleTest, HarvestAfterDropCountedNotFatal) {
  QTokenTable table;
  const QToken qt = table.Allocate(OpCode::kPop, 3);
  EXPECT_EQ(table.Drain([](const QResult&) {}), 1u);
  EXPECT_EQ(table.Take(qt).error(), Status::kBadQToken);  // harvest-after-drop
  EXPECT_EQ(table.lifecycle_violations(), 1u);
}

TEST(QTokenLifecycleTest, CompleteAfterFreeCountedNotFatal) {
  QTokenTable table;
  const QToken qt = table.Allocate(OpCode::kPush, 3);
  table.Complete(qt, QResult{});
  ASSERT_TRUE(table.Take(qt).ok());
  EXPECT_FALSE(table.Complete(qt, QResult{}));  // complete-after-free
  EXPECT_EQ(table.lifecycle_violations(), 1u);
}

TEST(QTokenLifecycleTest, GarbageTokensAreNotClassified) {
  // A token that never existed (slot out of range) is plain kBadQToken, not a violation.
  QTokenTable table;
  EXPECT_EQ(table.Take(0xDEAD).error(), Status::kBadQToken);
  EXPECT_EQ(table.lifecycle_violations(), 0u);
}

#else  // DEMI_OWNERSHIP_CHECKS

// --- DemiSan build: the same misuses abort with naming diagnostics (death tests) ---

using AffinityDeathTest = ::testing::Test;

TEST(AffinityDeathTest, CrossShardBufferTouchAbortsNamingBothThreads) {
  PoolAllocator alloc;
  Buffer buf;
  std::thread owner([&] {
    alloc.BindShard(3);
    buf = Buffer::Allocate(alloc, 2048);
  });
  owner.join();
  // Touching the worker-bound buffer from this (foreign) thread must abort, naming the owning
  // shard and both thread tags.
  EXPECT_DEATH(
      { (void)buf.data(); },
      "cross-shard access: Buffer data access: owner shard=3 owner thread=0x[0-9a-f]+ "
      "accessor thread=0x[0-9a-f]+");
  // Unbind so the parent process can release the buffer without tripping the same check.
  alloc.UnbindShard();
}

TEST(AffinityDeathTest, CrossShardFlowTableMutationAborts) {
  FlowTable table;
  std::thread owner([&] {
    table.BindShard(1);
    table.Insert(FlowTable::MakeKey(0x0A000002, 40000, 7777), nullptr);
  });
  owner.join();
  EXPECT_DEATH(table.Insert(FlowTable::MakeKey(0x0A000003, 40001, 7777), nullptr),
               "cross-shard access: FlowTable::Insert: owner shard=1");
  table.UnbindShard();
}

TEST(AffinityDeathTest, CrossShardTcbSlotAllocAborts) {
  TcbSlab slab;
  std::thread owner([&] { slab.BindShard(2); });
  owner.join();
  EXPECT_DEATH({ auto p = slab.Make<int>(7); }, "cross-shard access: TcbSlab::AllocSlot: owner shard=2");
  slab.UnbindShard();
}

TEST(AffinityDeathTest, CrossShardQTokenAllocateAborts) {
  QTokenTable table;
  std::thread owner([&] { table.BindShard(5); });
  owner.join();
  EXPECT_DEATH(table.Allocate(OpCode::kPop, 1), "cross-shard access: QTokenTable::Allocate: owner shard=5");
  table.UnbindShard();
}

TEST(AffinityDeathTest, DoubleWaitAborts) {
  QTokenTable table;
  const QToken qt = table.Allocate(OpCode::kPop, 3);
  table.Complete(qt, QResult{});
  ASSERT_TRUE(table.Take(qt).ok());
  EXPECT_DEATH(table.Take(qt), "qtoken lifecycle violation: double-wait: qt=0x");
}

TEST(AffinityDeathTest, HarvestAfterDropAborts) {
  QTokenTable table;
  const QToken qt = table.Allocate(OpCode::kPop, 3);
  table.Drain([](const QResult&) {});
  EXPECT_DEATH(table.Take(qt), "qtoken lifecycle violation: harvest-after-drop: qt=0x");
}

TEST(AffinityDeathTest, CompleteAfterFreeAborts) {
  QTokenTable table;
  const QToken qt = table.Allocate(OpCode::kPush, 3);
  table.Complete(qt, QResult{});
  ASSERT_TRUE(table.Take(qt).ok());
  EXPECT_DEATH(table.Complete(qt, QResult{}), "qtoken lifecycle violation: complete-after-free: qt=0x");
}

#endif  // DEMI_OWNERSHIP_CHECKS

}  // namespace
}  // namespace demi
