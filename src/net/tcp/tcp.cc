#include "src/net/tcp/tcp.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/observability/metrics.h"

namespace demi {

namespace {
// Wrapper coroutines that pin the connection alive for a background fiber's lifetime.
Task<void> RunFiber(std::shared_ptr<TcpConnection> conn, Task<void> body) {
  co_await std::move(body);
}
}  // namespace

// ============================== SegmentPayload ====================================

void SegmentPayload::TrimFront(size_t n) {
  bytes_ -= n;
  size_t keep = 0;
  for (size_t i = 0; i < count_; i++) {
    if (n >= slices_[i].size()) {
      n -= slices_[i].size();
      slices_[i] = Buffer{};  // fully covered: drop the reference (buffer may recycle)
      continue;
    }
    if (n > 0) {
      slices_[i].TrimFront(n);
      n = 0;
    }
    if (keep != i) {
      slices_[keep] = std::move(slices_[i]);
    }
    keep++;
  }
  count_ = keep;
}

// ============================== TcpConnection =====================================

TcpConnection::TcpConnection(TcpStack& stack, SocketAddress local, SocketAddress remote,
                             SeqNum iss)
    : stack_(stack),
      local_(local),
      remote_(remote),
      snd_una_(iss),
      snd_nxt_(iss),
      iss_(iss),
      mss_(stack.DefaultMss()),
      rtt_(stack.config()) {
  cc_ = CongestionControl::Create(stack.config().congestion, mss_,
                                  stack.config().fixed_window_bytes);
}

TcpConnection::~TcpConnection() = default;

size_t TcpConnection::EffectiveSendWindow() const {
  const size_t wnd = std::min(cc_->cwnd(), snd_wnd_);
  return wnd > bytes_inflight_ ? wnd - bytes_inflight_ : 0;
}

size_t TcpConnection::ReceiveCapacityLeft() const {
  const size_t used = ready_bytes_ + reassembly_bytes_;
  const size_t cap = stack_.config().recv_buffer_bytes;
  return used >= cap ? 0 : cap - used;
}

uint16_t TcpConnection::AdvertisedWindow() const {
  const size_t wnd = ReceiveCapacityLeft() >> rcv_wscale_;
  return static_cast<uint16_t>(std::min<size_t>(wnd, 0xFFFF));
}

Status TcpConnection::Push(Buffer data) {
  if (error_ != Status::kOk) {
    return error_;
  }
  if (fin_queued_) {
    return Status::kInvalidArgument;  // already closed for sending
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return Status::kNotConnected;
  }
  if (data.empty()) {
    return Status::kOk;
  }
  // Registers the underlying superblock with the device on first use (get_rkey path) so the
  // zero-copy TX below passes the NIC's DMA check.
  if (data.size() >= PoolAllocator::kZeroCopyThreshold) {
    data.Rkey();
  }
  unsent_bytes_ += data.size();
  unsent_.push_back(std::move(data));
  // Fast path: transmit inline, run-to-completion (§5.2). Leftovers wake the sender fiber.
  TrySend(stack_.clock().Now());
  if (!unsent_.empty()) {
    window_event_.Notify();
  }
  return Status::kOk;
}

std::optional<Buffer> TcpConnection::PopData() {
  if (ready_.empty()) {
    return std::nullopt;
  }
  const bool window_was_closed = ReceiveCapacityLeft() == 0;
  Buffer b = std::move(ready_.front());
  ready_.pop_front();
  ready_bytes_ -= b.size();
  // The receive window just opened; advertise it — urgently if it had slammed shut (the peer
  // may be persist-probing against a zero window), lazily otherwise (the next data segment or
  // delayed ack carries the update).
  if (window_was_closed) {
    ScheduleAck();
  } else {
    ScheduleDelayedAck(stack_.clock().Now());
  }
  return b;
}

Status TcpConnection::Close() {
  switch (state_) {
    case TcpState::kSynSent:
    case TcpState::kSynReceived:
      EnterClosed(Status::kOk);
      return Status::kOk;
    case TcpState::kEstablished:
      state_ = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      state_ = TcpState::kLastAck;
      break;
    case TcpState::kClosed:
      return Status::kOk;
    default:
      return Status::kOk;  // close already in progress
  }
  fin_queued_ = true;
  TrySend(stack_.clock().Now());
  window_event_.Notify();
  return Status::kOk;
}

void TcpConnection::Abort() {
  if (state_ != TcpState::kClosed) {
    TcpHeader rst;
    rst.src_port = local_.port;
    rst.dst_port = remote_.port;
    rst.seq = snd_nxt_.v;
    rst.flags.rst = true;
    rst.flags.ack = true;
    rst.ack = rcv_nxt_.v;
    if (stack_.SendSegment(rst, remote_.ip, {}) != Status::kOk) {
      stack_.CountTxError();  // peer will see the abort via RTO instead
    }
    EnterClosed(Status::kConnectionAborted);
  }
}

void TcpConnection::StartActiveOpen() {
  state_ = TcpState::kSynSent;
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number
  rcv_wscale_ = stack_.config().window_scale;
  auto self =
      stack_.conns_.at(TcpStack::ConnKey{remote_.ip.value, remote_.port, local_.port});
  stack_.scheduler().Spawn(RunFiber(self, ConnectFiber()));
  stack_.scheduler().Spawn(RunFiber(self, RetransmitFiber()));
  stack_.scheduler().Spawn(RunFiber(self, AckerFiber()));
  stack_.scheduler().Spawn(RunFiber(self, SenderFiber()));
}

void TcpConnection::StartPassiveOpen(const TcpHeader& syn, TcpListener* listener) {
  state_ = TcpState::kSynReceived;
  pending_listener_ = listener;
  listener->syn_rcvd_count_++;
  irs_ = SeqNum{syn.seq};
  rcv_nxt_ = irs_ + 1;
  snd_nxt_ = iss_ + 1;
  if (syn.mss_option) {
    mss_ = std::min<size_t>(mss_, *syn.mss_option);
  }
  if (syn.window_scale_option) {
    snd_wscale_ = *syn.window_scale_option;
    rcv_wscale_ = stack_.config().window_scale;
  }
  if (syn.timestamps_option && stack_.config().timestamps) {
    ts_enabled_ = true;
    ts_recent_ = syn.timestamps_option->tsval;
    ts_recent_valid_ = true;
  }
  snd_wnd_ = syn.window;  // SYN windows are never scaled
  auto self =
      stack_.conns_.at(TcpStack::ConnKey{remote_.ip.value, remote_.port, local_.port});
  stack_.scheduler().Spawn(RunFiber(self, SynAckFiber()));
  stack_.scheduler().Spawn(RunFiber(self, RetransmitFiber()));
  stack_.scheduler().Spawn(RunFiber(self, AckerFiber()));
  stack_.scheduler().Spawn(RunFiber(self, SenderFiber()));
}

uint32_t TcpConnection::NowTsval() const {
  // 1 µs timestamp tick: fine-grained enough for µs RTTs, wraps in ~71 minutes (acceptable for
  // the fabric's MSL; PAWS comparisons use wrapping arithmetic anyway).
  return static_cast<uint32_t>(stack_.clock().Now() / 1000);
}

void TcpConnection::StampTimestamps(TcpHeader* hdr) const {
  if (ts_enabled_) {
    hdr->timestamps_option =
        TcpHeader::Timestamps{NowTsval(), ts_recent_valid_ ? ts_recent_ : 0};
  }
}

Status TcpConnection::SendControl(TcpFlags flags, SeqNum seq, bool with_options) {
  TcpHeader hdr;
  hdr.src_port = local_.port;
  hdr.dst_port = remote_.port;
  hdr.seq = seq.v;
  hdr.flags = flags;
  if (flags.ack) {
    hdr.ack = rcv_nxt_.v;
  }
  if (flags.syn) {
    hdr.window = static_cast<uint16_t>(
        std::min<size_t>(ReceiveCapacityLeft(), 0xFFFF));  // unscaled on SYN
  } else {
    hdr.window = AdvertisedWindow();
  }
  if (with_options) {
    hdr.mss_option = static_cast<uint16_t>(stack_.DefaultMss());
    hdr.window_scale_option = stack_.config().window_scale;
    if (stack_.config().timestamps) {
      // Offer (or confirm) RFC 7323 timestamps on the SYN/SYN-ACK.
      hdr.timestamps_option = TcpHeader::Timestamps{NowTsval(), ts_recent_};
    }
  } else {
    StampTimestamps(&hdr);
  }
  return stack_.SendSegment(hdr, remote_.ip, {});
}

void TcpConnection::SendDataSegment(InflightSegment& seg, TimeNs now) {
  TcpHeader hdr;
  hdr.src_port = local_.port;
  hdr.dst_port = remote_.port;
  hdr.seq = seg.seq.v;
  hdr.ack = rcv_nxt_.v;
  hdr.flags.ack = true;
  hdr.flags.psh = !seg.data.empty();
  hdr.flags.fin = seg.fin;
  hdr.window = AdvertisedWindow();
  StampTimestamps(&hdr);
  std::span<const uint8_t> slices[SegmentPayload::kMaxSlices];
  const size_t nslices = seg.data.Gather(slices);
  if (stack_.SendSegment(hdr, remote_.ip, {slices, nslices}) != Status::kOk) {
    stack_.CountTxError();  // segment stays inflight; the RTO path retransmits it
  }
  seg.sent_at = now;
  seg.rto_deadline = now + rtt_.rto();
  stats_.segments_sent++;
  stats_.bytes_sent += seg.data.size();
  // This segment carried the ack: drop any pending pure-ack obligation (piggybacking).
  ack_needed_ = false;
  ack_immediate_ = false;
  full_segs_since_ack_ = 0;
}

void TcpConnection::TrySend(TimeNs now) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kLastAck &&
      state_ != TcpState::kClosing) {
    return;
  }
  const bool coalesce = stack_.config().coalesce_segments;
  bool sent_any = false;
  while (!unsent_.empty()) {
    const size_t window = EffectiveSendWindow();
    if (window == 0) {
      break;
    }
    const size_t budget = std::min(EffectiveMss(), window);
    InflightSegment seg;
    seg.seq = snd_nxt_;
    size_t filled = 0;
    // Gather queued buffers (or leading slices of them) until the segment fills to MSS/window
    // or runs out of gather slots; with coalescing off, one Push buffer per segment.
    while (!unsent_.empty() && filled < budget && !seg.data.full()) {
      Buffer& front = unsent_.front();
      const size_t take = std::min(front.size(), budget - filled);
      if (take == front.size()) {
        // Whole buffer fits in this segment: move it, avoiding a second reference (which
        // would spill into the allocator's overflow table).
        seg.data.Append(std::move(front));
        unsent_.pop_front();
      } else {
        seg.data.Append(front.Slice(0, take));
        front.TrimFront(take);
      }
      filled += take;
      if (!coalesce) {
        break;
      }
    }
    unsent_bytes_ -= filled;
    snd_nxt_ = snd_nxt_ + static_cast<uint32_t>(filled);
    bytes_inflight_ += filled;
    if (seg.data.num_slices() > 1) {
      stats_.coalesced_segments++;
    }
    SendDataSegment(seg, now);
    inflight_.push_back(std::move(seg));
    sent_any = true;
  }
  // FIN rides after all data has been carved into segments.
  if (fin_queued_ && !fin_sent_ && unsent_.empty()) {
    InflightSegment seg;
    seg.seq = snd_nxt_;
    seg.fin = true;
    fin_seq_ = snd_nxt_;
    fin_sent_ = true;
    snd_nxt_ = snd_nxt_ + 1;
    SendDataSegment(seg, now);
    inflight_.push_back(std::move(seg));
    sent_any = true;
  }
  if (sent_any) {
    ArmRetransmitter();
  }
}

void TcpConnection::ScheduleAck() {
  if (!ack_needed_ || !ack_immediate_) {
    // Newly needed, or escalating an armed delayed ack: wake the acker out of its timed wait.
    ack_needed_ = true;
    ack_immediate_ = true;
    ack_event_.Notify();
  }
}

void TcpConnection::ScheduleDelayedAck(TimeNs now) {
  if (!stack_.config().delayed_acks) {
    ScheduleAck();  // ablation: legacy ack-per-segment (plus the fixed ack_delay, if set)
    return;
  }
  if (ack_needed_) {
    return;  // already armed (or immediate); never push an armed deadline back (RFC 1122)
  }
  ack_needed_ = true;
  ack_immediate_ = false;
  ack_deadline_ = now + DelayedAckTimeout();
  ack_event_.Notify();
}

DurationNs TcpConnection::DelayedAckTimeout() const {
  // RFC 1122 4.2.3.2 hard cap: never hold an ack longer than 500 ms, whatever the config says.
  return std::min<DurationNs>(stack_.config().delayed_ack_timeout, 500 * kMillisecond);
}

void TcpConnection::OnSegment(const TcpHeader& hdr, std::span<const uint8_t> payload,
                              TimeNs now) {
  stats_.segments_received++;
  stats_.bytes_received += payload.size();

  if (hdr.flags.rst) {
    if (state_ == TcpState::kSynSent) {
      EnterClosed(Status::kConnectionRefused);
    } else if (state_ != TcpState::kClosed) {
      EnterClosed(Status::kConnectionReset);
    }
    return;
  }

  switch (state_) {
    case TcpState::kSynSent: {
      if (!hdr.flags.syn || !hdr.flags.ack) {
        return;  // simultaneous open unsupported; ignore
      }
      if (SeqNum{hdr.ack} != iss_ + 1) {
        return;  // bogus ack of our SYN
      }
      irs_ = SeqNum{hdr.seq};
      rcv_nxt_ = irs_ + 1;
      snd_una_ = SeqNum{hdr.ack};
      if (hdr.mss_option) {
        mss_ = std::min<size_t>(mss_, *hdr.mss_option);
      }
      if (hdr.window_scale_option) {
        snd_wscale_ = *hdr.window_scale_option;
      } else {
        rcv_wscale_ = 0;  // peer doesn't scale; neither do we
      }
      if (hdr.timestamps_option && stack_.config().timestamps) {
        ts_enabled_ = true;
        ts_recent_ = hdr.timestamps_option->tsval;
        ts_recent_valid_ = true;
      }
      snd_wnd_ = hdr.window;  // unscaled on SYN
      state_ = TcpState::kEstablished;
      if (SendControl(TcpFlags{.ack = true}, snd_nxt_, /*with_options=*/false) !=
          Status::kOk) {
        stack_.CountTxError();  // peer's SYN-ACK retransmit re-triggers this ack
      }
      established_.Notify();
      window_event_.Notify();
      return;
    }
    case TcpState::kSynReceived: {
      if (hdr.flags.syn) {
        // Duplicate SYN: our SYN-ACK may have been lost; the SynAckFiber retransmits.
        return;
      }
      if (!hdr.flags.ack || SeqNum{hdr.ack} != iss_ + 1) {
        return;
      }
      snd_una_ = SeqNum{hdr.ack};
      snd_wnd_ = static_cast<size_t>(hdr.window) << snd_wscale_;
      state_ = TcpState::kEstablished;
      established_.Notify();
      window_event_.Notify();
      if (pending_listener_ != nullptr) {
        TcpListener* l = pending_listener_;
        pending_listener_ = nullptr;
        l->syn_rcvd_count_--;
        auto it = stack_.conns_.find(
            TcpStack::ConnKey{remote_.ip.value, remote_.port, local_.port});
        DEMI_CHECK(it != stack_.conns_.end());
        l->ready_.push_back(it->second);
        l->acceptable_.Notify();
      }
      // Fall through to process any piggybacked payload.
      break;
    }
    case TcpState::kClosed:
      return;
    default:
      break;
  }

  if (ts_enabled_ && hdr.timestamps_option) {
    // PAWS (RFC 7323 §5): reject segments whose timestamp regressed strictly before ts_recent
    // (wrapping compare), unless they are bare acks for new data.
    const uint32_t tsval = hdr.timestamps_option->tsval;
    if (ts_recent_valid_ && static_cast<int32_t>(tsval - ts_recent_) < 0) {
      stats_.paws_drops++;
      ScheduleAck();  // duplicate-looking segment: re-ack so the peer resynchronizes
      return;
    }
    // Update ts_recent when the segment covers rcv_nxt (RFC 7323 §4.3's simplified rule).
    if (SeqNum{hdr.seq} <= rcv_nxt_) {
      ts_recent_ = tsval;
      ts_recent_valid_ = true;
    }
  }

  if (hdr.flags.ack) {
    ProcessAck(hdr, now);
  }
  if (!payload.empty() || hdr.flags.fin) {
    ProcessData(hdr, payload, now);
  }
}

void TcpConnection::ProcessAck(const TcpHeader& hdr, TimeNs now) {
  // demilint: fastpath
  const SeqNum ack{hdr.ack};
  const size_t new_wnd = static_cast<size_t>(hdr.window) << snd_wscale_;
  const bool window_grew = new_wnd > snd_wnd_;
  snd_wnd_ = new_wnd;

  if (ack > snd_nxt_) {
    return;  // acks data we never sent; ignore
  }
  if (ack > snd_una_) {
    const size_t newly_acked = static_cast<size_t>(ack - snd_una_);
    bool sampled = false;
    if (ts_enabled_ && hdr.timestamps_option && hdr.timestamps_option->tsecr != 0) {
      // RTTM: tsecr echoes our clock at transmit time, valid even across retransmissions.
      const uint32_t echoed = hdr.timestamps_option->tsecr;
      const uint32_t delta_us = NowTsval() - echoed;
      if (delta_us < 60u * 1000u * 1000u) {  // sanity: ignore >60 s (wrap artifacts)
        rtt_.OnSample(static_cast<DurationNs>(delta_us) * 1000);
        stats_.ts_rtt_samples++;
        sampled = true;  // prefer the timestamp sample over the per-segment timer
      }
    }
    // Karn's algorithm (RFC 6298 §3): if the cumulative ack covers ANY retransmitted segment,
    // the ack's timing is driven by the retransmission and every per-segment timer in the
    // range is ambiguous — take no timer sample at all. (A lost first segment held later ones
    // in the peer's reassembly queue; the cumulative ack releasing them measures the RTO, not
    // the path RTT.) Timestamp RTTM above is retransmission-safe and exempt.
    bool ack_covers_retx = false;
    for (const InflightSegment& seg : inflight_) {
      const uint32_t seg_len = static_cast<uint32_t>(seg.data.size()) + (seg.fin ? 1 : 0);
      if (ack < seg.seq + seg_len) {
        break;  // past the fully-covered prefix
      }
      if (seg.retransmitted) {
        ack_covers_retx = true;
        break;
      }
    }
    while (!inflight_.empty()) {
      InflightSegment& seg = inflight_.front();
      const uint32_t seg_len = static_cast<uint32_t>(seg.data.size()) + (seg.fin ? 1 : 0);
      if (ack >= seg.seq + seg_len) {
        if (!seg.retransmitted && !ack_covers_retx && !sampled) {
          rtt_.OnSample(now - seg.sent_at);
          sampled = true;
        }
        bytes_inflight_ -= seg.data.size();
        inflight_.pop_front();  // drops the libOS reference: UAF-protected buffer may recycle
      } else if (ack > seg.seq) {
        const uint32_t covered = static_cast<uint32_t>(ack - seg.seq);
        seg.data.TrimFront(covered);
        seg.seq = ack;
        bytes_inflight_ -= covered;
        break;
      } else {
        break;
      }
    }
    snd_una_ = ack;
    dup_acks_ = 0;
    consecutive_retx_ = 0;
    cc_->OnAck(newly_acked, now);
    if (fin_sent_ && !our_fin_acked_ && ack >= fin_seq_ + 1) {
      our_fin_acked_ = true;
      OnOurFinAcked(now);
    }
    window_event_.Notify();
    ArmRetransmitter();
    TrySend(now);
  } else if (ack == snd_una_ && !inflight_.empty() && !hdr.flags.syn && !hdr.flags.fin) {
    stats_.dup_acks_seen++;
    if (++dup_acks_ == 3) {
      // Fast retransmit.
      InflightSegment& seg = inflight_.front();
      seg.retransmitted = true;
      SendDataSegment(seg, now);
      stats_.fast_retransmits++;
      stack_.TraceRetransmit(local_.port, seg.seq);
      cc_->OnFastRetransmit(now);
      dup_acks_ = 0;
    }
  }
  if (window_grew) {
    window_event_.Notify();
  }
  // demilint: end-fastpath
}

void TcpConnection::ProcessData(const TcpHeader& hdr, std::span<const uint8_t> payload,
                                TimeNs now) {
  SeqNum seq{hdr.seq};

  // Ack policy (RFC 1122 4.2.3.2, RFC 5681 §4.2): in-order sub-threshold data may ride a
  // delayed ack; everything ambiguous or urgent — duplicates (the peer is retransmitting),
  // out-of-order arrivals (dup-ack drives fast retransmit), gap fills, FIN advancement, and
  // every `ack_every_segments`-th full-sized segment — acks immediately.
  bool immediate = false;

  if (hdr.flags.fin) {
    const SeqNum fin_at = seq + static_cast<uint32_t>(payload.size());
    if (!remote_fin_seen_) {
      remote_fin_seen_ = true;
      remote_fin_seq_ = fin_at;
    }
  }

  if (!payload.empty()) {
    // Left-trim data we already have.
    if (seq < rcv_nxt_) {
      immediate = true;  // duplicate bytes: re-ack now so the retransmitting peer resyncs
      const uint32_t overlap = static_cast<uint32_t>(rcv_nxt_ - seq);
      if (overlap >= payload.size()) {
        payload = {};
      } else {
        payload = payload.subspan(overlap);
        seq = rcv_nxt_;
      }
    }
  }

  if (!payload.empty()) {
    if (payload.size() > ReceiveCapacityLeft()) {
      // Receiver overrun: drop; the ack (without window) makes the sender back off.
      ScheduleAck();
      return;
    }
    if (seq == rcv_nxt_) {
      Buffer buf = Buffer::TryAllocate(stack_.allocator(), payload.size());
      if (!buf.valid()) {
        // Heap exhausted: drop without advancing rcv_nxt_; the un-acked sender retransmits.
        stack_.CountRxAllocDrop();
        ScheduleAck();
        return;
      }
      std::memcpy(buf.mutable_data(), payload.data(), payload.size());
      rcv_nxt_ = rcv_nxt_ + static_cast<uint32_t>(payload.size());
      ready_bytes_ += buf.size();
      ready_.push_back(std::move(buf));
      const SeqNum before_drain = rcv_nxt_;
      DrainReassembly();
      if (rcv_nxt_ != before_drain) {
        immediate = true;  // this segment filled a gap: ack the whole advance right away
      }
      if (payload.size() >= EffectiveMss() &&
          ++full_segs_since_ack_ >= stack_.config().ack_every_segments) {
        immediate = true;
      }
      readable_.Notify();
    } else if (seq > rcv_nxt_) {
      // Out of order: stash for reassembly (dedup by start seq; overlaps resolved on drain).
      stats_.out_of_order++;
      immediate = true;  // dup-ack immediately so the peer's fast retransmit can trigger
      if (reassembly_.find(seq.v) == reassembly_.end()) {
        Buffer buf = Buffer::TryAllocate(stack_.allocator(), payload.size());
        if (!buf.valid()) {
          // The reassembly stash is an optimization; dropping only costs a retransmit later.
          stack_.CountRxAllocDrop();
        } else {
          std::memcpy(buf.mutable_data(), payload.data(), payload.size());
          reassembly_bytes_ += buf.size();
          reassembly_.emplace(seq.v, std::move(buf));
        }
      }
    }
  }

  // A FIN becomes "received" only once all data before it is in order.
  if (remote_fin_seen_ && !remote_fin_received_ && rcv_nxt_ == remote_fin_seq_) {
    rcv_nxt_ = rcv_nxt_ + 1;
    remote_fin_received_ = true;
    immediate = true;  // don't hold the peer's close on a delay timer
    HandleFinReached(now);
    readable_.Notify();
  } else if (remote_fin_seen_ && !remote_fin_received_) {
    immediate = true;  // FIN past a gap: keep dup-acking until the hole fills
  }

  if (immediate) {
    ScheduleAck();
  } else {
    ScheduleDelayedAck(now);
  }
}

void TcpConnection::DrainReassembly() {
  while (!reassembly_.empty()) {
    auto it = reassembly_.begin();
    SeqNum seq{it->first};
    if (seq > rcv_nxt_) {
      break;
    }
    Buffer buf = std::move(it->second);
    reassembly_bytes_ -= buf.size();
    reassembly_.erase(it);
    if (seq < rcv_nxt_) {
      const uint32_t overlap = static_cast<uint32_t>(rcv_nxt_ - seq);
      if (overlap >= buf.size()) {
        continue;  // fully duplicate
      }
      buf.TrimFront(overlap);
    }
    rcv_nxt_ = rcv_nxt_ + static_cast<uint32_t>(buf.size());
    ready_bytes_ += buf.size();
    ready_.push_back(std::move(buf));
  }
}

void TcpConnection::HandleFinReached(TimeNs now) {
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      state_ = our_fin_acked_ ? TcpState::kTimeWait : TcpState::kClosing;
      if (state_ == TcpState::kTimeWait) {
        EnterTimeWait();
      }
      break;
    case TcpState::kFinWait2:
      state_ = TcpState::kTimeWait;
      EnterTimeWait();
      break;
    default:
      break;
  }
}

void TcpConnection::OnOurFinAcked(TimeNs now) {
  switch (state_) {
    case TcpState::kFinWait1:
      state_ = TcpState::kFinWait2;
      break;
    case TcpState::kClosing:
      state_ = TcpState::kTimeWait;
      EnterTimeWait();
      break;
    case TcpState::kLastAck:
      EnterClosed(Status::kOk);
      break;
    default:
      break;
  }
}

void TcpConnection::EnterTimeWait() {
  state_ = TcpState::kTimeWait;
  auto it = stack_.conns_.find(TcpStack::ConnKey{remote_.ip.value, remote_.port, local_.port});
  if (it != stack_.conns_.end()) {
    stack_.scheduler().Spawn(RunFiber(it->second, TimeWaitFiber()));
  }
}

void TcpConnection::EnterClosed(Status error) {
  if (state_ == TcpState::kClosed) {
    return;
  }
  state_ = TcpState::kClosed;
  if (error_ == Status::kOk && error != Status::kOk) {
    error_ = error;
  }
  if (pending_listener_ != nullptr) {
    pending_listener_->syn_rcvd_count_--;
    pending_listener_ = nullptr;
  }
  // Drop all buffer references (releases UAF-deferred application frees).
  inflight_.clear();
  unsent_.clear();
  unsent_bytes_ = 0;
  bytes_inflight_ = 0;
  // Wake everything so blocked fibers and application waiters observe the close and exit.
  readable_.Notify();
  established_.Notify();
  retx_event_.Notify();
  ack_event_.Notify();
  window_event_.Notify();
}

// --- Background fibers ---

Task<void> TcpConnection::ConnectFiber() {
  Scheduler& sched = stack_.scheduler();
  DurationNs timeout = rtt_.rto();
  int attempts = 0;
  if (SendControl(TcpFlags{.syn = true}, iss_, /*with_options=*/true) != Status::kOk) {
    stack_.CountTxError();  // the timeout below retries the SYN
  }
  while (state_ == TcpState::kSynSent) {
    co_await established_.WaitWithTimeout(sched, stack_.clock().Now() + timeout);
    if (state_ != TcpState::kSynSent) {
      break;
    }
    if (++attempts > stack_.config().max_syn_retries) {
      EnterClosed(Status::kTimedOut);
      break;
    }
    timeout *= 2;
    if (SendControl(TcpFlags{.syn = true}, iss_, /*with_options=*/true) != Status::kOk) {
      stack_.CountTxError();
    }
    stats_.retransmits++;
    stack_.TraceRetransmit(local_.port, iss_);
  }
}

Task<void> TcpConnection::SynAckFiber() {
  Scheduler& sched = stack_.scheduler();
  DurationNs timeout = rtt_.rto();
  int attempts = 0;
  const bool offer_options = true;
  if (SendControl(TcpFlags{.syn = true, .ack = true}, iss_, offer_options) != Status::kOk) {
    stack_.CountTxError();  // the timeout below retries the SYN-ACK
  }
  while (state_ == TcpState::kSynReceived) {
    co_await established_.WaitWithTimeout(sched, stack_.clock().Now() + timeout);
    if (state_ != TcpState::kSynReceived) {
      break;
    }
    if (++attempts > stack_.config().max_syn_retries) {
      EnterClosed(Status::kTimedOut);
      break;
    }
    timeout *= 2;
    if (SendControl(TcpFlags{.syn = true, .ack = true}, iss_, offer_options) != Status::kOk) {
      stack_.CountTxError();
    }
    stats_.retransmits++;
    stack_.TraceRetransmit(local_.port, iss_);
  }
}

Task<void> TcpConnection::RetransmitFiber() {
  Scheduler& sched = stack_.scheduler();
  while (state_ != TcpState::kClosed) {
    if (inflight_.empty()) {
      co_await retx_event_.Wait();
      continue;
    }
    const TimeNs deadline = inflight_.front().rto_deadline;
    const TimeNs now = stack_.clock().Now();
    if (now < deadline) {
      co_await retx_event_.WaitWithTimeout(sched, deadline);
      continue;
    }
    // RTO fired. A zero-window stall is a *persist* situation, not a dead peer: keep probing
    // without counting toward the abort limit (RFC 1122 4.2.2.17 — the connection stays open
    // as long as the receiver keeps acking).
    if (snd_wnd_ != 0 && ++consecutive_retx_ > stack_.config().max_retransmits) {
      // Established-connection give-up: the abort status (not a connect timeout) reaches every
      // waiter — pending pops complete with it and subsequent pushes return it.
      EnterClosed(Status::kConnectionAborted);
      break;
    }
    InflightSegment& seg = inflight_.front();
    seg.retransmitted = true;
    rtt_.Backoff();
    SendDataSegment(seg, now);  // also refreshes rto_deadline via current rto
    stats_.retransmits++;
    stack_.TraceRetransmit(local_.port, seg.seq);
    cc_->OnTimeout(now);
  }
}

Task<void> TcpConnection::AckerFiber() {
  Scheduler& sched = stack_.scheduler();
  const DurationNs legacy_delay = stack_.config().ack_delay;
  while (state_ != TcpState::kClosed) {
    if (!ack_needed_) {
      co_await ack_event_.Wait();
      continue;
    }
    if (!ack_immediate_) {
      // Delayed ack armed: hold until the deadline unless escalated to immediate (or
      // piggybacked away by an outgoing data segment) first.
      const TimeNs now = stack_.clock().Now();
      if (now < ack_deadline_) {
        co_await ack_event_.WaitWithTimeout(sched, ack_deadline_);
        continue;  // re-evaluate: escalated, piggybacked, or deadline reached
      }
    } else if (legacy_delay > 0 && !stack_.config().delayed_acks) {
      // Legacy fixed-delay coalescing (only with the RFC 1122 machinery disabled).
      co_await sched.Sleep(legacy_delay);
    }
    if (state_ == TcpState::kClosed) {
      break;
    }
    if (ack_needed_) {
      if (!ack_immediate_) {
        stats_.delayed_acks++;  // held to the timer; no data segment piggybacked it
      }
      ack_needed_ = false;
      ack_immediate_ = false;
      full_segs_since_ack_ = 0;
      if (SendControl(TcpFlags{.ack = true}, snd_nxt_, /*with_options=*/false) != Status::kOk) {
        stack_.CountTxError();  // a lost pure ack is recovered by the peer's retransmit
      }
    }
  }
}

Task<void> TcpConnection::SenderFiber() {
  Scheduler& sched = stack_.scheduler();
  while (state_ != TcpState::kClosed) {
    const bool want_send = !unsent_.empty() || (fin_queued_ && !fin_sent_);
    if (!want_send) {
      co_await window_event_.Wait();
      continue;
    }
    const TimeNs now = stack_.clock().Now();
    TrySend(now);
    if (!unsent_.empty() && EffectiveSendWindow() == 0 && bytes_inflight_ == 0 &&
        snd_wnd_ == 0) {
      // Zero-window persist: wait an RTO, then force a 1-byte probe through.
      co_await window_event_.WaitWithTimeout(sched, now + rtt_.rto());
      if (state_ == TcpState::kClosed) {
        break;
      }
      if (!unsent_.empty() && snd_wnd_ == 0 && bytes_inflight_ == 0) {
        Buffer& front = unsent_.front();
        InflightSegment seg;
        seg.seq = snd_nxt_;
        seg.data.Append(front.Slice(0, 1));
        front.TrimFront(1);
        if (front.empty()) {
          unsent_.pop_front();
        }
        unsent_bytes_ -= 1;
        snd_nxt_ = snd_nxt_ + 1;
        bytes_inflight_ += 1;
        SendDataSegment(seg, stack_.clock().Now());
        inflight_.push_back(std::move(seg));
        ArmRetransmitter();
      }
    } else if (!unsent_.empty() || (fin_queued_ && !fin_sent_)) {
      co_await window_event_.Wait();
    }
  }
}

Task<void> TcpConnection::TimeWaitFiber() {
  co_await stack_.scheduler().Sleep(stack_.config().time_wait);
  if (state_ == TcpState::kTimeWait) {
    EnterClosed(Status::kOk);
  }
}

// ============================== TcpStack ==========================================

TcpStack::TcpStack(EthernetLayer& eth, Scheduler& scheduler, PoolAllocator& alloc, Clock& clock,
                   TcpConfig config)
    : eth_(eth), scheduler_(scheduler), alloc_(alloc), clock_(clock), config_(config),
      rng_(config.isn_seed) {
  eth_.RegisterReceiver(IpProto::kTcp, this);
}

TcpStack::~TcpStack() {
  for (auto& [key, conn] : conns_) {
    conn->EnterClosed(Status::kCancelled);
  }
}

size_t TcpStack::DefaultMss() const {
  return eth_.MaxIpPayload() - TcpHeader::kBaseSize;
}

uint16_t TcpStack::AllocEphemeralPort() {
  for (int tries = 0; tries < 65536; tries++) {
    const uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65500 ? 40000 : next_ephemeral_ + 1;
    bool taken = listeners_.count(port) > 0;
    if (!taken) {
      return port;
    }
  }
  return 0;
}

Result<std::shared_ptr<TcpConnection>> TcpStack::Connect(SocketAddress remote) {
  const uint16_t local_port = AllocEphemeralPort();
  if (local_port == 0) {
    return Status::kNoBufferSpace;
  }
  const ConnKey key{remote.ip.value, remote.port, local_port};
  if (conns_.count(key) > 0) {
    return Status::kAddressInUse;
  }
  const SocketAddress local{eth_.local_ip(), local_port};
  auto conn = std::make_shared<TcpConnection>(*this, local, remote, NewIss());
  conns_[key] = conn;
  stats_.conns_opened++;
  conn->StartActiveOpen();
  return conn;
}

Result<TcpListener*> TcpStack::Listen(uint16_t port, size_t backlog) {
  if (port == 0 || listeners_.count(port) > 0) {
    return Status::kAddressInUse;
  }
  auto listener = std::make_unique<TcpListener>();
  listener->port_ = port;
  listener->backlog_ = backlog == 0 ? 64 : backlog;
  TcpListener* raw = listener.get();
  listeners_[port] = std::move(listener);
  return raw;
}

void TcpStack::CloseListener(TcpListener* listener) {
  if (listener == nullptr) {
    return;
  }
  for (auto& conn : listener->ready_) {
    conn->Abort();
    conn->ReleaseByApp();
  }
  listeners_.erase(listener->port_);
}

Status TcpStack::SendSegment(const TcpHeader& hdr, Ipv4Addr dst,
                             std::span<const std::span<const uint8_t>> payload_slices) {
  uint8_t hdr_bytes[TcpHeader::kBaseSize + TcpHeader::kMaxOptionBytes];
  hdr.Serialize(hdr_bytes, eth_.local_ip(), dst, payload_slices,
                /*compute_checksum=*/!eth_.checksum_offload());
  const size_t hdr_len = hdr.SerializedSize();
  stats_.segments_tx++;
  // Gather [tcp hdr | payload slices...]; the ethernet layer prepends its own header slot.
  DEMI_CHECK(payload_slices.size() <= SegmentPayload::kMaxSlices);
  std::span<const uint8_t> segs[1 + SegmentPayload::kMaxSlices];
  segs[0] = {hdr_bytes, hdr_len};
  size_t n = 1;
  for (const auto& slice : payload_slices) {
    if (!slice.empty()) {
      segs[n++] = slice;
    }
  }
  return eth_.SendIpv4(dst, IpProto::kTcp, {segs, n});
}

void TcpStack::SendRst(const TcpHeader& in, Ipv4Addr dst) {
  TcpHeader rst;
  rst.src_port = in.dst_port;
  rst.dst_port = in.src_port;
  rst.flags.rst = true;
  rst.flags.ack = true;
  rst.seq = in.ack;
  rst.ack = in.seq + 1;
  stats_.rst_sent++;
  if (SendSegment(rst, dst, {}) != Status::kOk) {
    stats_.tx_errors++;  // best-effort by design; an unanswered peer retries and re-triggers it
  }
}

void TcpStack::OnIpv4Packet(const Ipv4Header& ip, std::span<const uint8_t> l4) {
  // demilint: fastpath
  size_t hdr_len = 0;
  bool checksum_failed = false;
  const auto hdr = TcpHeader::Parse(l4, ip.src, ip.dst, &hdr_len,
                                    /*verify=*/!eth_.checksum_offload(), &checksum_failed);
  if (!hdr) {
    if (checksum_failed) {
      stats_.rx_checksum_drops++;  // corruption caught before it could reach a connection
    } else {
      stats_.parse_errors++;
    }
    return;
  }
  stats_.segments_rx++;
  const auto payload = l4.subspan(hdr_len);

  const ConnKey key{ip.src.value, hdr->src_port, hdr->dst_port};
  auto it = conns_.find(key);
  if (it != conns_.end()) {
    it->second->OnSegment(*hdr, payload, clock_.Now());
    return;
  }
  // demilint: end-fastpath

  // No connection: a SYN may match a listener.
  if (hdr->flags.syn && !hdr->flags.ack) {
    auto lit = listeners_.find(hdr->dst_port);
    if (lit != listeners_.end()) {
      TcpListener* listener = lit->second.get();
      if (listener->ready_.size() + listener->syn_rcvd_count_ >= listener->backlog_ ||
          conns_.size() >= config_.max_syn_backlog + 1024) {
        return;  // backlog full: drop the SYN, client retries
      }
      const SocketAddress local{eth_.local_ip(), hdr->dst_port};
      const SocketAddress remote{ip.src, hdr->src_port};
      auto conn = std::make_shared<TcpConnection>(*this, local, remote, NewIss());
      conns_[key] = conn;
      stats_.conns_opened++;
      conn->StartPassiveOpen(*hdr, listener);
      return;
    }
  }
  stats_.no_connection++;
  if (!hdr->flags.rst) {
    SendRst(*hdr, ip.src);
  }
}

namespace {
void AccumulateConnStats(TcpConnection::ConnStats* into, const TcpConnection::ConnStats& s) {
  into->segments_sent += s.segments_sent;
  into->segments_received += s.segments_received;
  into->bytes_sent += s.bytes_sent;
  into->bytes_received += s.bytes_received;
  into->retransmits += s.retransmits;
  into->fast_retransmits += s.fast_retransmits;
  into->out_of_order += s.out_of_order;
  into->dup_acks_seen += s.dup_acks_seen;
  into->paws_drops += s.paws_drops;
  into->ts_rtt_samples += s.ts_rtt_samples;
  into->coalesced_segments += s.coalesced_segments;
  into->delayed_acks += s.delayed_acks;
}
}  // namespace

void TcpStack::Reap() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second->state() == TcpState::kClosed && it->second->app_released()) {
      AccumulateConnStats(&reaped_conn_stats_, it->second->conn_stats());
      it = conns_.erase(it);
      stats_.conns_reaped++;
    } else {
      ++it;
    }
  }
}

TcpConnection::ConnStats TcpStack::AggregateConnStats() const {
  TcpConnection::ConnStats total = reaped_conn_stats_;
  for (const auto& [key, conn] : conns_) {
    AccumulateConnStats(&total, conn->conn_stats());
  }
  return total;
}

void TcpStack::SetObservability(MetricsRegistry* registry, Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    return;
  }
  MetricsRegistry& reg = *registry;
  reg.RegisterCallback("tcp.segments_rx", "tcp", "segments", "Segments received by the stack",
                       [this] { return stats_.segments_rx; });
  reg.RegisterCallback("tcp.segments_tx", "tcp", "segments", "Segments transmitted",
                       [this] { return stats_.segments_tx; });
  reg.RegisterCallback("tcp.rst_sent", "tcp", "segments", "RSTs sent",
                       [this] { return stats_.rst_sent; });
  reg.RegisterCallback("tcp.no_connection", "tcp", "segments",
                       "Segments for no known connection or listener",
                       [this] { return stats_.no_connection; });
  reg.RegisterCallback("tcp.parse_errors", "tcp", "segments", "Unparseable segments",
                       [this] { return stats_.parse_errors; });
  reg.RegisterCallback("tcp.rx_checksum_drops", "tcp", "segments",
                       "Segments dropped: software checksum verification failed",
                       [this] { return stats_.rx_checksum_drops; });
  reg.RegisterCallback("tcp.rx_alloc_drops", "tcp", "segments",
                       "Segment payloads dropped on heap exhaustion (recovered by retransmit)",
                       [this] { return stats_.rx_alloc_drops; });
  reg.RegisterCallback("tcp.tx_errors", "tcp", "segments",
                       "Segment transmit failures absorbed (recovered by retransmit)",
                       [this] { return stats_.tx_errors; });
  reg.RegisterCallback("tcp.conns_opened", "tcp", "conns", "Connections opened",
                       [this] { return stats_.conns_opened; });
  reg.RegisterCallback("tcp.conns_reaped", "tcp", "conns", "Closed connections reaped",
                       [this] { return stats_.conns_reaped; });
  reg.RegisterCallback("tcp.connections", "tcp", "conns", "Current connection table size",
                       [this] { return conns_.size(); });
  reg.RegisterCallback("tcp.bytes_sent", "tcp", "bytes", "Payload bytes sent (all conns)",
                       [this] { return AggregateConnStats().bytes_sent; });
  reg.RegisterCallback("tcp.bytes_received", "tcp", "bytes",
                       "Payload bytes received (all conns)",
                       [this] { return AggregateConnStats().bytes_received; });
  reg.RegisterCallback("tcp.retransmits", "tcp", "segments", "RTO + handshake retransmissions",
                       [this] { return AggregateConnStats().retransmits; });
  reg.RegisterCallback("tcp.fast_retransmits", "tcp", "segments",
                       "Fast retransmits (3 duplicate acks)",
                       [this] { return AggregateConnStats().fast_retransmits; });
  reg.RegisterCallback("tcp.out_of_order", "tcp", "segments",
                       "Segments arriving out of order (reassembly queue)",
                       [this] { return AggregateConnStats().out_of_order; });
  reg.RegisterCallback("tcp.dup_acks", "tcp", "acks", "Duplicate acks seen",
                       [this] { return AggregateConnStats().dup_acks_seen; });
  reg.RegisterCallback("tcp.paws_drops", "tcp", "segments",
                       "Segments rejected by PAWS (RFC 7323)",
                       [this] { return AggregateConnStats().paws_drops; });
  reg.RegisterCallback("tcp.coalesced_segments", "tcp", "segments",
                       "Data segments sent carrying more than one gathered buffer slice",
                       [this] { return AggregateConnStats().coalesced_segments; });
  reg.RegisterCallback("tcp.delayed_acks", "tcp", "acks",
                       "Pure acks held to the delayed-ack timer before sending",
                       [this] { return AggregateConnStats().delayed_acks; });
}

}  // namespace demi
