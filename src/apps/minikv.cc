#include "src/apps/minikv.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/core/shard_group.h"

namespace demi {

namespace {

constexpr size_t kReqHeader = 1 + 2 + 4;   // op, klen, vlen
constexpr size_t kRespHeader = 1 + 4;      // status, vlen

void PutLe32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
uint32_t GetLe32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
void PutLe16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
uint16_t GetLe16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

}  // namespace

size_t KvEncodeRequest(KvOp op, std::string_view key, std::string_view value, uint8_t* out,
                       size_t out_cap) {
  const size_t frame = kReqHeader + key.size() + value.size();
  const size_t total = 4 + frame;
  if (total > out_cap) {
    return 0;
  }
  PutLe32(out, static_cast<uint32_t>(frame));
  out[4] = static_cast<uint8_t>(op);
  PutLe16(out + 5, static_cast<uint16_t>(key.size()));
  PutLe32(out + 7, static_cast<uint32_t>(value.size()));
  std::memcpy(out + 11, key.data(), key.size());
  std::memcpy(out + 11 + key.size(), value.data(), value.size());
  return total;
}

size_t KvEncodeResponse(KvStatus status, std::string_view value, uint8_t* out, size_t out_cap) {
  const size_t frame = kRespHeader + value.size();
  const size_t total = 4 + frame;
  if (total > out_cap) {
    return 0;
  }
  PutLe32(out, static_cast<uint32_t>(frame));
  out[4] = static_cast<uint8_t>(status);
  PutLe32(out + 5, static_cast<uint32_t>(value.size()));
  std::memcpy(out + 9, value.data(), value.size());
  return total;
}

bool KvParseRequest(std::span<const uint8_t> frame, KvRequestView* out) {
  if (frame.size() < kReqHeader) {
    return false;
  }
  const uint8_t op = frame[0];
  if (op < 1 || op > 3) {
    return false;
  }
  const uint16_t klen = GetLe16(frame.data() + 1);
  const uint32_t vlen = GetLe32(frame.data() + 3);
  if (frame.size() != kReqHeader + klen + vlen) {
    return false;
  }
  out->op = static_cast<KvOp>(op);
  out->key = std::string_view(reinterpret_cast<const char*>(frame.data() + kReqHeader), klen);
  out->value =
      std::string_view(reinterpret_cast<const char*>(frame.data() + kReqHeader + klen), vlen);
  return true;
}

bool KvParseResponse(std::span<const uint8_t> frame, KvResponseView* out) {
  if (frame.size() < kRespHeader) {
    return false;
  }
  const uint32_t vlen = GetLe32(frame.data() + 1);
  if (frame.size() != kRespHeader + vlen) {
    return false;
  }
  out->status = static_cast<KvStatus>(frame[0]);
  out->value =
      std::string_view(reinterpret_cast<const char*>(frame.data() + kRespHeader), vlen);
  return true;
}

namespace {

// The in-memory store: values live in the DMA-capable heap so GET responses go out zero-copy
// and SET overwrites are safe under UAF protection (no update in place — old values are freed,
// and the heap defers recycling while a previous GET's push still references them).
class KvHeapStore {
 public:
  explicit KvHeapStore(LibOS& os) : os_(os) {}
  ~KvHeapStore() {
    for (auto& [k, v] : map_) {
      os_.DmaFree(v.ptr);
    }
  }

  void Set(std::string_view key, std::string_view value) {
    void* ptr = os_.DmaMalloc(value.size() == 0 ? 1 : value.size());
    std::memcpy(ptr, value.data(), value.size());
    auto [it, inserted] = map_.try_emplace(std::string(key));
    if (!inserted) {
      os_.DmaFree(it->second.ptr);
    }
    it->second = Value{ptr, static_cast<uint32_t>(value.size())};
  }

  bool Get(std::string_view key, void** ptr, uint32_t* len) const {
    auto it = map_.find(std::string(key));
    if (it == map_.end()) {
      return false;
    }
    *ptr = it->second.ptr;
    *len = it->second.len;
    return true;
  }

  bool Del(std::string_view key) {
    auto it = map_.find(std::string(key));
    if (it == map_.end()) {
      return false;
    }
    os_.DmaFree(it->second.ptr);
    map_.erase(it);
    return true;
  }

 private:
  struct Value {
    void* ptr;
    uint32_t len;
  };
  LibOS& os_;
  std::unordered_map<std::string, Value> map_;
};

// Extracts complete length-prefixed frames from an accumulation buffer.
template <typename FrameFn>
void DrainFrames(std::vector<uint8_t>& acc, FrameFn&& fn) {
  size_t off = 0;
  while (acc.size() - off >= 4) {
    const uint32_t frame_len = GetLe32(acc.data() + off);
    if (acc.size() - off - 4 < frame_len) {
      break;
    }
    fn(std::span<const uint8_t>(acc.data() + off + 4, frame_len));
    off += 4 + frame_len;
  }
  if (off > 0) {
    acc.erase(acc.begin(), acc.begin() + static_cast<long>(off));
  }
}

}  // namespace

struct MiniKvServerApp::Impl {
  explicit Impl(LibOS& os) : store(os) {}
  KvHeapStore store;
  QueueDesc aof_qd = kInvalidQd;
  struct ConnState {
    std::vector<uint8_t> acc;
  };
  std::unordered_map<QueueDesc, ConnState> conns;
  std::vector<QToken> tokens;
};

MiniKvServerApp::MiniKvServerApp(LibOS& os, const MiniKvOptions& options)
    : os_(os), options_(options), impl_(std::make_unique<Impl>(os)) {
  if (options.persist) {
    auto aof = os.Open(options.aof_path);
    DEMI_CHECK_MSG(aof.ok(), "minikv: cannot open AOF queue");
    impl_->aof_qd = *aof;
  }
  auto sock = os.Socket(SocketType::kStream);
  DEMI_CHECK(sock.ok());
  DEMI_CHECK(os.Bind(*sock, options.listen) == Status::kOk);
  DEMI_CHECK(os.Listen(*sock, 64) == Status::kOk);
  auto accept_qt = os.Accept(*sock);
  DEMI_CHECK(accept_qt.ok());
  impl_->tokens.push_back(*accept_qt);
}

MiniKvServerApp::~MiniKvServerApp() = default;

size_t MiniKvServerApp::Pump() {
  Impl& im = *impl_;
  size_t served = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t index = 0; index < im.tokens.size(); index++) {
      if (!os_.IsDone(im.tokens[index])) {
        continue;
      }
      auto result = os_.TryTake(im.tokens[index]);
      if (!result.ok()) {
        continue;
      }
      progress = true;
      QResult& r = *result;
      if (r.opcode == OpCode::kAccept) {
        if (r.status == Status::kOk) {
          stats_.connections++;
          im.conns[r.new_qd] = Impl::ConnState{};
          auto pop_qt = os_.Pop(r.new_qd);
          if (pop_qt.ok()) {
            im.tokens.push_back(*pop_qt);
          }
          auto next_accept = os_.Accept(r.qd);
          DEMI_CHECK(next_accept.ok());
          im.tokens[index] = *next_accept;
        } else {
          im.tokens.erase(im.tokens.begin() + static_cast<long>(index));
        }
        break;
      }
      // Pop on a connection.
      const QueueDesc qd = r.qd;
      if (r.status != Status::kOk) {
        os_.Close(qd);
        im.conns.erase(qd);
        im.tokens.erase(im.tokens.begin() + static_cast<long>(index));
        break;
      }
      Impl::ConnState& cs = im.conns[qd];
      for (uint32_t i = 0; i < r.sga.num_segs; i++) {
        const uint8_t* p = static_cast<const uint8_t*>(r.sga.segs[i].buf);
        cs.acc.insert(cs.acc.end(), p, p + r.sga.segs[i].len);
      }
      os_.FreeSga(r.sga);

      DrainFrames(cs.acc, [&](std::span<const uint8_t> frame) {
        served++;
        KvRequestView req;
        uint8_t hdr[4 + kRespHeader];
        if (!KvParseRequest(frame, &req)) {
          const size_t n = KvEncodeResponse(KvStatus::kError, "", hdr, sizeof(hdr));
          void* out = os_.DmaMalloc(n);
          std::memcpy(out, hdr, n);
          auto push = os_.Push(qd, Sgarray::Of(out, static_cast<uint32_t>(n)));
          os_.DmaFree(out);
          (void)push;
          return;
        }
        switch (req.op) {
          case KvOp::kSet: {
            stats_.sets++;
            im.store.Set(req.key, req.value);
            KvStatus set_status = KvStatus::kOk;
            if (im.aof_qd != kInvalidQd) {
              // Durable before acknowledged: append the raw request frame (fsync-equivalent).
              // A terminal append failure (e.g. disk retry budget exhausted under injected
              // faults) degrades to a kError reply — the value is live in memory but the client
              // knows it isn't durable.
              void* rec = os_.DmaMalloc(frame.size());
              if (rec == nullptr) {
                set_status = KvStatus::kError;
              } else {
                std::memcpy(rec, frame.data(), frame.size());
                auto aof_push =
                    os_.Push(im.aof_qd, Sgarray::Of(rec, static_cast<uint32_t>(frame.size())));
                os_.DmaFree(rec);
                if (!aof_push.ok()) {
                  set_status = KvStatus::kError;
                } else {
                  auto aof_r = os_.Wait(*aof_push);
                  if (!aof_r.ok() || aof_r->status != Status::kOk) {
                    set_status = KvStatus::kError;
                  }
                }
              }
              if (set_status != KvStatus::kOk) {
                stats_.aof_failures++;
              }
            }
            const size_t n = KvEncodeResponse(set_status, "", hdr, sizeof(hdr));
            void* out = os_.DmaMalloc(n);
            std::memcpy(out, hdr, n);
            auto push = os_.Push(qd, Sgarray::Of(out, static_cast<uint32_t>(n)));
            os_.DmaFree(out);
            (void)push;
            break;
          }
          case KvOp::kGet: {
            stats_.gets++;
            void* vptr = nullptr;
            uint32_t vlen = 0;
            if (im.store.Get(req.key, &vptr, &vlen)) {
              stats_.hits++;
              // Zero-copy GET: header segment + the stored value straight from the heap.
              const uint32_t frame_len = static_cast<uint32_t>(kRespHeader + vlen);
              void* out = os_.DmaMalloc(4 + kRespHeader);
              uint8_t* op = static_cast<uint8_t*>(out);
              PutLe32(op, frame_len);
              op[4] = static_cast<uint8_t>(KvStatus::kOk);
              PutLe32(op + 5, vlen);
              Sgarray sga;
              sga.num_segs = 2;
              sga.segs[0] = {out, 4 + kRespHeader};
              sga.segs[1] = {vptr, vlen};
              auto push = os_.Push(qd, sga);
              os_.DmaFree(out);  // header freed; the stored value stays owned by the store
              (void)push;
            } else {
              const size_t n = KvEncodeResponse(KvStatus::kNotFound, "", hdr, sizeof(hdr));
              void* out = os_.DmaMalloc(n);
              std::memcpy(out, hdr, n);
              auto push = os_.Push(qd, Sgarray::Of(out, static_cast<uint32_t>(n)));
              os_.DmaFree(out);
              (void)push;
            }
            break;
          }
          case KvOp::kDel: {
            stats_.dels++;
            const KvStatus st = im.store.Del(req.key) ? KvStatus::kOk : KvStatus::kNotFound;
            const size_t n = KvEncodeResponse(st, "", hdr, sizeof(hdr));
            void* out = os_.DmaMalloc(n);
            std::memcpy(out, hdr, n);
            auto push = os_.Push(qd, Sgarray::Of(out, static_cast<uint32_t>(n)));
            os_.DmaFree(out);
            (void)push;
            break;
          }
        }
      });
      auto pop_qt = os_.Pop(qd);
      if (pop_qt.ok()) {
        im.tokens[index] = *pop_qt;
      } else {
        os_.Close(qd);
        im.conns.erase(qd);
        im.tokens.erase(im.tokens.begin() + static_cast<long>(index));
      }
      break;
    }
  }
  return served;
}

void RunMiniKvServer(LibOS& os, const MiniKvOptions& options, std::atomic<bool>& stop,
                     MiniKvStats* stats) {
  MiniKvServerApp app(os, options);
  // demilint: atomic(stop latch with no payload; relaxed poll — thread join is the sync point)
  while (!stop.load(std::memory_order_relaxed)) {
    os.PollOnce();
    app.Pump();
  }
  if (stats != nullptr) {
    *stats = app.stats();
  }
}

void StartShardedMiniKvServer(ShardGroup& group, const MiniKvOptions& options,
                              std::vector<MiniKvStats>* per_shard) {
  if (per_shard != nullptr) {
    per_shard->assign(group.num_workers(), MiniKvStats{});
  }
  group.Start([&group, options, per_shard](size_t shard_id, Catnip& os) {
    MiniKvServerApp app(os, options);
    group.ServeLoop(os, [&app] { app.Pump(); });
    if (per_shard != nullptr) {
      (*per_shard)[shard_id] = app.stats();  // distinct slot per worker; read after Join
    }
  });
}

KvBenchResult RunKvBenchClient(LibOS& os, const KvBenchOptions& options) {
  KvBenchResult result;
  auto sock = os.Socket(SocketType::kStream);
  DEMI_CHECK(sock.ok());
  auto connect_qt = os.Connect(*sock, options.server);
  DEMI_CHECK(connect_qt.ok());
  auto conn_r = os.Wait(*connect_qt, 5 * kSecond);
  DEMI_CHECK_MSG(conn_r.ok() && conn_r->status == Status::kOk, "kv bench: connect failed");

  Rng rng(options.seed);
  std::string value(options.value_size, 'v');
  std::vector<uint8_t> acc;
  std::deque<TimeNs> send_times;
  uint64_t sent = 0;
  uint64_t received = 0;
  Clock& clock = os.clock();
  const TimeNs start = clock.Now();

  auto send_one = [&]() {
    const uint64_t k = rng.NextBounded(options.num_keys);
    char key[32];
    const int klen = std::snprintf(key, sizeof(key), "key:%012llu",
                                   static_cast<unsigned long long>(k));
    uint8_t buf[4096];
    const size_t n =
        options.do_sets
            ? KvEncodeRequest(KvOp::kSet, std::string_view(key, klen), value, buf, sizeof(buf))
            : KvEncodeRequest(KvOp::kGet, std::string_view(key, klen), "", buf, sizeof(buf));
    DEMI_CHECK(n > 0);
    void* out = os.DmaMalloc(n);
    std::memcpy(out, buf, n);
    auto push = os.Push(*sock, Sgarray::Of(out, static_cast<uint32_t>(n)));
    os.DmaFree(out);
    DEMI_CHECK(push.ok());
    send_times.push_back(clock.Now());
    sent++;
  };

  while (received < options.operations) {
    while (sent < options.operations && sent - received < options.pipeline) {
      send_one();
    }
    auto pop = os.Pop(*sock);
    DEMI_CHECK(pop.ok());
    auto r = os.Wait(*pop, 10 * kSecond);
    if (!r.ok() || r->status != Status::kOk) {
      break;
    }
    for (uint32_t i = 0; i < r->sga.num_segs; i++) {
      const uint8_t* p = static_cast<const uint8_t*>(r->sga.segs[i].buf);
      acc.insert(acc.end(), p, p + r->sga.segs[i].len);
    }
    os.FreeSga(r->sga);
    DrainFrames(acc, [&](std::span<const uint8_t> frame) {
      KvResponseView resp;
      if (KvParseResponse(frame, &resp)) {
        received++;
        if (!send_times.empty()) {
          result.latency.Record(clock.Now() - send_times.front());
          send_times.pop_front();
        }
      }
    });
  }
  result.completed = received;
  result.elapsed = clock.Now() - start;
  os.Close(*sock);
  return result;
}

// --- POSIX variants ---

namespace {

sockaddr_in KvSockaddr(SocketAddress addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr.ip.value);
  sa.sin_port = htons(addr.port);
  return sa;
}

bool WriteAll(int fd, const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

void RunPosixMiniKvServer(const MiniKvOptions& options, std::atomic<bool>& stop,
                          MiniKvStats* stats) {
  MiniKvStats local;
  std::unordered_map<std::string, std::string> store;
  int aof_fd = -1;
  if (options.persist) {
    aof_fd = ::open(options.aof_path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
    DEMI_CHECK(aof_fd >= 0);
  }
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DEMI_CHECK(listen_fd >= 0);
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa = KvSockaddr(options.listen);
  DEMI_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0);
  DEMI_CHECK(::listen(listen_fd, 64) == 0);

  std::unordered_map<int, std::vector<uint8_t>> conns;
  std::vector<uint8_t> rx(64 * 1024);
  std::vector<uint8_t> tx;

  // demilint: atomic(stop latch with no payload; relaxed poll — thread join is the sync point)
  while (!stop.load(std::memory_order_relaxed)) {
    fd_set rfds;
    FD_ZERO(&rfds);
    FD_SET(listen_fd, &rfds);
    int maxfd = listen_fd;
    for (const auto& [fd, acc] : conns) {
      FD_SET(fd, &rfds);
      maxfd = std::max(maxfd, fd);
    }
    timeval tv{0, 2000};
    if (::select(maxfd + 1, &rfds, nullptr, nullptr, &tv) <= 0) {
      continue;
    }
    if (FD_ISSET(listen_fd, &rfds)) {
      const int conn = ::accept(listen_fd, nullptr, nullptr);
      if (conn >= 0) {
        ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns[conn] = {};
        local.connections++;
      }
    }
    std::vector<int> closed;
    for (auto& [fd, acc] : conns) {
      if (!FD_ISSET(fd, &rfds)) {
        continue;
      }
      const ssize_t n = ::read(fd, rx.data(), rx.size());
      if (n <= 0) {
        closed.push_back(fd);
        continue;
      }
      acc.insert(acc.end(), rx.data(), rx.data() + n);
      tx.clear();
      DrainFrames(acc, [&](std::span<const uint8_t> frame) {
        KvRequestView req;
        uint8_t buf[64 * 1024];
        if (!KvParseRequest(frame, &req)) {
          const size_t m = KvEncodeResponse(KvStatus::kError, "", buf, sizeof(buf));
          tx.insert(tx.end(), buf, buf + m);
          return;
        }
        switch (req.op) {
          case KvOp::kSet: {
            local.sets++;
            store[std::string(req.key)] = std::string(req.value);
            if (aof_fd >= 0) {
              DEMI_CHECK(::write(aof_fd, frame.data(), frame.size()) ==
                         static_cast<ssize_t>(frame.size()));
              DEMI_CHECK(::fsync(aof_fd) == 0);
            }
            const size_t m = KvEncodeResponse(KvStatus::kOk, "", buf, sizeof(buf));
            tx.insert(tx.end(), buf, buf + m);
            break;
          }
          case KvOp::kGet: {
            local.gets++;
            auto it = store.find(std::string(req.key));
            if (it != store.end()) {
              local.hits++;
              const size_t m = KvEncodeResponse(KvStatus::kOk, it->second, buf, sizeof(buf));
              tx.insert(tx.end(), buf, buf + m);
            } else {
              const size_t m = KvEncodeResponse(KvStatus::kNotFound, "", buf, sizeof(buf));
              tx.insert(tx.end(), buf, buf + m);
            }
            break;
          }
          case KvOp::kDel: {
            local.dels++;
            const KvStatus st =
                store.erase(std::string(req.key)) > 0 ? KvStatus::kOk : KvStatus::kNotFound;
            const size_t m = KvEncodeResponse(st, "", buf, sizeof(buf));
            tx.insert(tx.end(), buf, buf + m);
            break;
          }
        }
      });
      if (!tx.empty() && !WriteAll(fd, tx.data(), tx.size())) {
        closed.push_back(fd);
      }
    }
    for (int fd : closed) {
      ::close(fd);
      conns.erase(fd);
    }
  }
  for (auto& [fd, acc] : conns) {
    ::close(fd);
  }
  ::close(listen_fd);
  if (aof_fd >= 0) {
    ::close(aof_fd);
  }
  if (stats != nullptr) {
    *stats = local;
  }
}

KvBenchResult RunPosixKvBenchClient(const KvBenchOptions& options) {
  KvBenchResult result;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DEMI_CHECK(fd >= 0);
  sockaddr_in sa = KvSockaddr(options.server);
  int rc = -1;
  for (int attempt = 0; attempt < 200; attempt++) {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    if (rc == 0) {
      break;
    }
    ::usleep(5000);
  }
  DEMI_CHECK_MSG(rc == 0, "posix kv bench: connect failed");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  Rng rng(options.seed);
  std::string value(options.value_size, 'v');
  std::vector<uint8_t> acc;
  std::deque<TimeNs> send_times;
  std::vector<uint8_t> rx(64 * 1024);
  uint64_t sent = 0;
  uint64_t received = 0;
  MonotonicClock clock;
  const TimeNs start = clock.Now();

  while (received < options.operations) {
    while (sent < options.operations && sent - received < options.pipeline) {
      const uint64_t k = rng.NextBounded(options.num_keys);
      char key[32];
      const int klen = std::snprintf(key, sizeof(key), "key:%012llu",
                                     static_cast<unsigned long long>(k));
      uint8_t buf[4096];
      const size_t n = options.do_sets
                           ? KvEncodeRequest(KvOp::kSet, std::string_view(key, klen), value, buf,
                                             sizeof(buf))
                           : KvEncodeRequest(KvOp::kGet, std::string_view(key, klen), "", buf,
                                             sizeof(buf));
      if (!WriteAll(fd, buf, n)) {
        break;
      }
      send_times.push_back(clock.Now());
      sent++;
    }
    const ssize_t n = ::read(fd, rx.data(), rx.size());
    if (n <= 0) {
      break;
    }
    acc.insert(acc.end(), rx.data(), rx.data() + n);
    DrainFrames(acc, [&](std::span<const uint8_t> frame) {
      KvResponseView resp;
      if (KvParseResponse(frame, &resp)) {
        received++;
        if (!send_times.empty()) {
          result.latency.Record(clock.Now() - send_times.front());
          send_times.pop_front();
        }
      }
    });
  }
  result.completed = received;
  result.elapsed = clock.Now() - start;
  ::close(fd);
  return result;
}

}  // namespace demi
