// Congestion control: Cubic (RFC 8312, the algorithm Catnip ships with), NewReno, and a fixed
// window for ablation benchmarks.

#ifndef SRC_NET_TCP_CONGESTION_H_
#define SRC_NET_TCP_CONGESTION_H_

#include <cstddef>
#include <memory>

#include "src/common/clock.h"
#include "src/net/tcp/tcp_types.h"

namespace demi {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Bytes newly acknowledged by a cumulative ack.
  virtual void OnAck(size_t bytes_acked, TimeNs now) = 0;
  // Loss inferred via triple duplicate acks (fast retransmit): multiplicative decrease.
  virtual void OnFastRetransmit(TimeNs now) = 0;
  // Loss inferred via RTO: collapse to slow start.
  virtual void OnTimeout(TimeNs now) = 0;

  virtual size_t cwnd() const = 0;
  virtual const char* Name() const = 0;

  static std::unique_ptr<CongestionControl> Create(CongestionAlgorithm algo, size_t mss,
                                                   size_t fixed_window);
};

// RFC 8312 Cubic with standard slow start below ssthresh.
class CubicCongestion final : public CongestionControl {
 public:
  explicit CubicCongestion(size_t mss);

  void OnAck(size_t bytes_acked, TimeNs now) override;
  void OnFastRetransmit(TimeNs now) override;
  void OnTimeout(TimeNs now) override;
  size_t cwnd() const override { return cwnd_; }
  const char* Name() const override { return "cubic"; }

 private:
  void EnterRecovery(TimeNs now, double beta_cwnd_factor);
  double CubicWindow(double t_seconds) const;  // W_cubic(t), in segments

  const size_t mss_;
  size_t cwnd_;           // bytes
  size_t ssthresh_;       // bytes
  double w_max_seg_ = 0;  // window before last reduction, segments
  double k_seconds_ = 0;  // time for the cubic to return to w_max
  TimeNs epoch_start_ = 0;
};

// Classic NewReno AIMD.
class NewRenoCongestion final : public CongestionControl {
 public:
  explicit NewRenoCongestion(size_t mss);

  void OnAck(size_t bytes_acked, TimeNs now) override;
  void OnFastRetransmit(TimeNs now) override;
  void OnTimeout(TimeNs now) override;
  size_t cwnd() const override { return cwnd_; }
  const char* Name() const override { return "newreno"; }

 private:
  const size_t mss_;
  size_t cwnd_;
  size_t ssthresh_;
  size_t ack_accum_ = 0;  // bytes acked since last congestion-avoidance increment
};

// No congestion reaction at all; flow control only (ablation baseline).
class FixedWindowCongestion final : public CongestionControl {
 public:
  explicit FixedWindowCongestion(size_t window) : window_(window) {}

  void OnAck(size_t, TimeNs) override {}
  void OnFastRetransmit(TimeNs) override {}
  void OnTimeout(TimeNs) override {}
  size_t cwnd() const override { return window_; }
  const char* Name() const override { return "fixed"; }

 private:
  const size_t window_;
};

}  // namespace demi

#endif  // SRC_NET_TCP_CONGESTION_H_
