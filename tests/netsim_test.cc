// Tests for the simulated kernel-bypass devices: fabric, SimNic, SimRdmaDevice.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/memory/pool_allocator.h"
#include "src/netsim/sim_network.h"
#include "src/netsim/sim_rdma.h"

namespace demi {
namespace {

WireFrame MakeFrame(const char* text) {
  const auto* p = reinterpret_cast<const uint8_t*>(text);
  return WireFrame(p, p + std::strlen(text));
}

std::span<const uint8_t> AsSpan(const WireFrame& f) { return {f.data(), f.size()}; }

class SimNicTest : public ::testing::Test {
 protected:
  SimNicTest() : net_(LinkConfig{}, /*seed=*/7), a_(net_, MacAddr{1}, clock_), b_(net_, MacAddr{2}, clock_) {}

  VirtualClock clock_;
  SimNetwork net_;
  SimNic a_;
  SimNic b_;
};

TEST_F(SimNicTest, FrameArrivesAfterLatency) {
  WireFrame payload = MakeFrame("hello");
  std::span<const uint8_t> seg = AsSpan(payload);
  ASSERT_EQ(a_.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);

  WireFrame rx[4];
  EXPECT_EQ(b_.RxBurst(rx), 0u);  // not yet: propagation delay
  clock_.Advance(net_.link().latency + 1 * kMicrosecond);
  ASSERT_EQ(b_.RxBurst(rx), 1u);
  EXPECT_EQ(std::memcmp(rx[0].data(), "hello", 5), 0);
}

TEST_F(SimNicTest, OversizeFrameRejected) {
  std::vector<uint8_t> big(net_.link().mtu + 1, 0);
  std::span<const uint8_t> seg(big);
  EXPECT_EQ(a_.TxBurst(MacAddr{2}, {&seg, 1}), Status::kMessageTooLong);
  EXPECT_EQ(a_.stats().tx_oversize, 1u);
}

TEST_F(SimNicTest, GatherConcatenatesSegments) {
  WireFrame h = MakeFrame("head|");
  WireFrame t = MakeFrame("tail");
  std::span<const uint8_t> segs[2] = {AsSpan(h), AsSpan(t)};
  ASSERT_EQ(a_.TxBurst(MacAddr{2}, segs), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  WireFrame rx[1];
  ASSERT_EQ(b_.RxBurst(rx), 1u);
  EXPECT_EQ(rx[0].size(), 9u);
  EXPECT_EQ(std::memcmp(rx[0].data(), "head|tail", 9), 0);
}

TEST_F(SimNicTest, BroadcastReachesAllButSender) {
  SimNic c(net_, MacAddr{3}, clock_);
  WireFrame payload = MakeFrame("arp");
  std::span<const uint8_t> seg = AsSpan(payload);
  ASSERT_EQ(a_.TxBurst(MacAddr::Broadcast(), {&seg, 1}), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  WireFrame rx[4];
  EXPECT_EQ(b_.RxBurst(rx), 1u);
  EXPECT_EQ(c.RxBurst(rx), 1u);
  EXPECT_EQ(a_.RxBurst(rx), 0u);
}

TEST_F(SimNicTest, UnknownDestinationVanishes) {
  WireFrame payload = MakeFrame("x");
  std::span<const uint8_t> seg = AsSpan(payload);
  EXPECT_EQ(a_.TxBurst(MacAddr{99}, {&seg, 1}), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  WireFrame rx[1];
  EXPECT_EQ(b_.RxBurst(rx), 0u);
}

// A burst-sized RxBurst must return only frames whose simulated delivery time has arrived:
// batching the poll loop must not let later frames jump their propagation delay.
TEST_F(SimNicTest, RxBurstHonorsPerFrameDeliveryTimes) {
  // Three frames staggered 10 µs apart on a 1 µs-latency link.
  bool first = true;
  for (const char* text : {"f-one", "f-two", "f-three"}) {
    if (!first) {
      clock_.Advance(10 * kMicrosecond);
    }
    first = false;
    WireFrame f = MakeFrame(text);
    std::span<const uint8_t> seg = AsSpan(f);
    ASSERT_EQ(a_.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  // Halfway into frame 3's propagation: frames 1 and 2 (sent at t=0 and t=10 µs) are due,
  // frame 3 (sent at t=20 µs, due at ~21 µs) is still on the wire.
  clock_.Advance(net_.link().latency / 2);
  WireFrame rx[32];
  EXPECT_EQ(b_.RxBurst(rx), 2u) << "burst returned a frame ahead of its delivery time";
  EXPECT_EQ(std::memcmp(rx[0].data(), "f-one", 5), 0);
  EXPECT_EQ(std::memcmp(rx[1].data(), "f-two", 5), 0);
  clock_.Advance(net_.link().latency);
  ASSERT_EQ(b_.RxBurst(rx), 1u);
  EXPECT_EQ(std::memcmp(rx[0].data(), "f-three", 7), 0);
}

TEST_F(SimNicTest, FramesStayInOrderOnCleanLink) {
  for (int i = 0; i < 50; i++) {
    WireFrame f{static_cast<uint8_t>(i)};
    std::span<const uint8_t> seg = AsSpan(f);
    ASSERT_EQ(a_.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  clock_.Advance(1 * kMillisecond);
  WireFrame rx[64];
  const size_t n = b_.RxBurst(rx);
  ASSERT_EQ(n, 50u);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(rx[i][0], static_cast<uint8_t>(i));
  }
}

TEST(SimNetworkTest, LossDropsRoughlyAtConfiguredRate) {
  LinkConfig link;
  link.loss = 0.2;
  VirtualClock clock;
  SimNetwork net(link, /*seed=*/11);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  constexpr int kFrames = 5000;
  WireFrame f = MakeFrame("z");
  std::span<const uint8_t> seg = AsSpan(f);
  for (int i = 0; i < kFrames; i++) {
    ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  clock.Advance(1 * kSecond);
  size_t received = 0;
  WireFrame rx[64];
  for (;;) {
    const size_t n = b.RxBurst(rx);
    if (n == 0) {
      break;
    }
    received += n;
  }
  EXPECT_NEAR(static_cast<double>(received) / kFrames, 0.8, 0.03);
  EXPECT_EQ(net.GetStats().frames_dropped_loss + received, static_cast<uint64_t>(kFrames));
}

TEST(SimNetworkTest, DuplicationDeliversTwice) {
  LinkConfig link;
  link.duplicate = 1.0;
  VirtualClock clock;
  SimNetwork net(link, 3);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  WireFrame f = MakeFrame("dup");
  std::span<const uint8_t> seg = AsSpan(f);
  ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  clock.Advance(1 * kMillisecond);
  WireFrame rx[4];
  EXPECT_EQ(b.RxBurst(rx), 2u);
}

TEST(SimNetworkTest, ReorderDelaysSomeFrames) {
  LinkConfig link;
  link.reorder = 0.5;
  link.reorder_extra = 100 * kMicrosecond;
  VirtualClock clock;
  SimNetwork net(link, 5);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  for (int i = 0; i < 20; i++) {
    WireFrame f{static_cast<uint8_t>(i)};
    std::span<const uint8_t> seg = AsSpan(f);
    ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  clock.Advance(1 * kSecond);
  WireFrame rx[32];
  const size_t n = b.RxBurst(rx);
  ASSERT_EQ(n, 20u);
  bool out_of_order = false;
  for (size_t i = 1; i < n; i++) {
    if (rx[i][0] < rx[i - 1][0]) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order);
  EXPECT_GT(net.GetStats().frames_reordered, 0u);
}

TEST(SimNetworkTest, BandwidthAddsSerializationDelay) {
  LinkConfig link;
  link.latency = 0;
  link.bandwidth_bps = 8'000'000;  // 8 Mbps: 1000 bytes take 1 ms
  VirtualClock clock;
  SimNetwork net(link, 1);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  std::vector<uint8_t> kb(1000, 1);
  std::span<const uint8_t> seg(kb);
  ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  WireFrame rx[1];
  clock.Advance(999 * kMicrosecond);
  EXPECT_EQ(b.RxBurst(rx), 0u);
  clock.Advance(2 * kMicrosecond);
  EXPECT_EQ(b.RxBurst(rx), 1u);
}

TEST(SimNetworkTest, RxQueueTailDrops) {
  LinkConfig link;
  link.rx_queue_frames = 8;
  VirtualClock clock;
  SimNetwork net(link, 1);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  WireFrame f = MakeFrame("q");
  std::span<const uint8_t> seg = AsSpan(f);
  for (int i = 0; i < 20; i++) {
    ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  EXPECT_EQ(net.GetStats().frames_dropped_queue, 12u);
}

TEST(SimNetworkTest, NextDeliveryTimeTracksEarliestFrame) {
  VirtualClock clock(1000);
  SimNetwork net(LinkConfig{}, 1);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  EXPECT_EQ(net.NextDeliveryTime(), 0u);
  WireFrame f = MakeFrame("t");
  std::span<const uint8_t> seg = AsSpan(f);
  ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  EXPECT_GT(net.NextDeliveryTime(), 1000u);
}

TEST(SimNetworkTest, CrossThreadPingPong) {
  // Two threads, monotonic clocks, like the echo benchmark topology.
  MonotonicClock clock;
  SimNetwork net(LinkConfig{.latency = 1 * kMicrosecond}, 1);
  SimNic server(net, MacAddr{1}, clock);
  SimNic client(net, MacAddr{2}, clock);
  constexpr int kRounds = 2000;

  std::thread server_thread([&] {
    WireFrame rx[8];
    int echoed = 0;
    while (echoed < kRounds) {
      const size_t n = server.RxBurst(rx);
      for (size_t i = 0; i < n; i++) {
        std::span<const uint8_t> seg(rx[i]);
        ASSERT_EQ(server.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
        echoed++;
      }
    }
  });

  WireFrame rx[8];
  for (int r = 0; r < kRounds; r++) {
    WireFrame f{static_cast<uint8_t>(r & 0xFF)};
    std::span<const uint8_t> seg = AsSpan(f);
    ASSERT_EQ(client.TxBurst(MacAddr{1}, {&seg, 1}), Status::kOk);
    size_t n = 0;
    while (n == 0) {
      n = client.RxBurst(std::span<WireFrame>(rx, 1));
    }
    ASSERT_EQ(rx[0][0], static_cast<uint8_t>(r & 0xFF));
  }
  server_thread.join();
}

// --- SimRdmaDevice ---

class SimRdmaTest : public ::testing::Test {
 protected:
  SimRdmaTest()
      : net_(LinkConfig{}, 9),
        a_(net_, MacAddr{10}, clock_),
        b_(net_, MacAddr{20}, clock_) {
    qp_a_ = *a_.CreateQp(1);
    qp_b_ = *b_.CreateQp(1);
  }

  // Registers a buffer on a device and returns it zeroed.
  std::vector<uint8_t>& MakeRegistered(SimRdmaDevice& dev, std::vector<uint8_t>& storage,
                                       size_t size) {
    storage.assign(size, 0);
    dev.RegisterMemory(storage.data(), storage.size());
    return storage;
  }

  VirtualClock clock_;
  SimNetwork net_;
  SimRdmaDevice a_;
  SimRdmaDevice b_;
  uint32_t qp_a_ = 0;
  uint32_t qp_b_ = 0;
};

TEST_F(SimRdmaTest, TwoSidedSendRecv) {
  std::vector<uint8_t> recv_buf;
  MakeRegistered(b_, recv_buf, 256);
  ASSERT_EQ(b_.PostRecv(qp_b_, recv_buf.data(), 256, /*wr_id=*/77), Status::kOk);

  std::vector<uint8_t> msg = {1, 2, 3, 4, 5};
  std::span<const uint8_t> seg(msg);
  ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, /*wr_id=*/55), Status::kOk);

  // Sender sees a send completion.
  RdmaCompletion comps[4];
  ASSERT_EQ(a_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].type, RdmaCompletion::Type::kSend);
  EXPECT_EQ(comps[0].wr_id, 55u);

  // Receiver sees the message after the fabric delay.
  EXPECT_EQ(b_.PollCq(comps), 0u);
  clock_.Advance(10 * kMicrosecond);
  ASSERT_EQ(b_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].type, RdmaCompletion::Type::kRecv);
  EXPECT_EQ(comps[0].wr_id, 77u);
  EXPECT_EQ(comps[0].byte_len, 5u);
  EXPECT_EQ(comps[0].src_mac.value, 10u);
  EXPECT_EQ(std::memcmp(recv_buf.data(), msg.data(), 5), 0);
}

TEST_F(SimRdmaTest, LargeMessageFragmentsAndReassembles) {
  const size_t size = 10'000;  // several MTU-sized fragments
  std::vector<uint8_t> recv_buf;
  MakeRegistered(b_, recv_buf, size);
  ASSERT_EQ(b_.PostRecv(qp_b_, recv_buf.data(), static_cast<uint32_t>(size), 1), Status::kOk);

  std::vector<uint8_t> msg(size);
  for (size_t i = 0; i < size; i++) {
    msg[i] = static_cast<uint8_t>(i * 7);
  }
  a_.RegisterMemory(msg.data(), msg.size());
  std::span<const uint8_t> seg(msg);
  ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, 2), Status::kOk);

  clock_.Advance(1 * kMillisecond);
  RdmaCompletion comps[4];
  ASSERT_EQ(b_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].byte_len, size);
  EXPECT_EQ(std::memcmp(recv_buf.data(), msg.data(), size), 0);
}

TEST_F(SimRdmaTest, RnrDropWhenNoRecvPosted) {
  std::vector<uint8_t> msg = {9};
  std::span<const uint8_t> seg(msg);
  ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, 3), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  RdmaCompletion comps[4];
  EXPECT_EQ(b_.PollCq(comps), 0u);
  EXPECT_EQ(b_.stats().rnr_drops, 1u);
}

TEST_F(SimRdmaTest, RecvBufferTooSmallCompletesWithError) {
  std::vector<uint8_t> recv_buf;
  MakeRegistered(b_, recv_buf, 4);
  ASSERT_EQ(b_.PostRecv(qp_b_, recv_buf.data(), 4, 8), Status::kOk);
  std::vector<uint8_t> msg(100, 1);
  std::span<const uint8_t> seg(msg);
  ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, 9), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  RdmaCompletion comps[4];
  ASSERT_EQ(b_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].status, Status::kMessageTooLong);
  EXPECT_EQ(b_.stats().recv_too_small, 1u);
}

TEST_F(SimRdmaTest, OneSidedWriteLandsInRegisteredMemory) {
  std::vector<uint8_t> window(64, 0);
  const uint64_t rkey = b_.RegisterMemory(window.data(), window.size());

  std::vector<uint8_t> update = {0xAB, 0xCD};
  ASSERT_EQ(a_.PostWrite(qp_a_, MacAddr{20}, qp_b_, rkey,
                         reinterpret_cast<uint64_t>(window.data() + 8), update, 4),
            Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  RdmaCompletion comps[4];
  // One-sided: no receiver completion, but memory updated after device processes the frame.
  EXPECT_EQ(b_.PollCq(comps), 0u);
  EXPECT_EQ(window[8], 0xAB);
  EXPECT_EQ(window[9], 0xCD);
  // Sender got a write completion.
  ASSERT_EQ(a_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].type, RdmaCompletion::Type::kWrite);
}

TEST_F(SimRdmaTest, WriteWithBadRkeyRejected) {
  std::vector<uint8_t> window(64, 0);
  b_.RegisterMemory(window.data(), window.size());
  std::vector<uint8_t> update = {1};
  ASSERT_EQ(a_.PostWrite(qp_a_, MacAddr{20}, qp_b_, /*rkey=*/999999,
                         reinterpret_cast<uint64_t>(window.data()), update, 5),
            Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  RdmaCompletion comps[4];
  b_.PollCq(comps);
  EXPECT_EQ(b_.stats().bad_rkey_writes, 1u);
  EXPECT_EQ(window[0], 0);
}

TEST_F(SimRdmaTest, ManyMessagesStayOrdered) {
  std::vector<std::vector<uint8_t>> bufs(64, std::vector<uint8_t>(16, 0));
  for (size_t i = 0; i < bufs.size(); i++) {
    b_.RegisterMemory(bufs[i].data(), bufs[i].size());
    ASSERT_EQ(b_.PostRecv(qp_b_, bufs[i].data(), 16, i), Status::kOk);
  }
  for (uint8_t i = 0; i < 64; i++) {
    std::vector<uint8_t> msg = {i};
    std::span<const uint8_t> seg(msg);
    ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, i), Status::kOk);
  }
  clock_.Advance(1 * kMillisecond);
  RdmaCompletion comps[128];
  const size_t n = b_.PollCq(comps);
  ASSERT_EQ(n, 64u);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(comps[i].wr_id, i);  // recv buffers consumed FIFO, messages in order
    EXPECT_EQ(bufs[i][0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(b_.stats().seq_violations, 0u);
}

TEST_F(SimRdmaTest, QpNumbersCollideExplicitly) {
  auto r = a_.CreateQp(1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Status::kAddressInUse);
  auto r2 = a_.CreateQp();
  EXPECT_TRUE(r2.ok());
}

}  // namespace
}  // namespace demi
