# Empty compiler generated dependencies file for bench_micro_tcp.
# This may be replaced when dependencies are built.
