// TxnStore substitute (DESIGN.md §2, Figure 12): a replicated, transactional key-value store
// driven by a YCSB-T workload-F client (read-modify-write transactions).
//
// Reproduces the paper's §7.6 setup: the weakly consistent quorum-write protocol — every GET
// reads one replica, every PUT replicates to all three and waits for a write quorum — with
// 64 B keys, 700 B values and a Zipf key distribution. Replica servers are MiniKv instances
// (the storage engine is identical; the protocol above it is what differs).
//
// Also provides the paper's comparison point: a *custom raw-RDMA* KV transport built directly
// on SimRdmaDevice with one QP per connection and copy-in/copy-out buffers — the naive RDMA
// messaging design TxnStore shipped with, which Catmint outperforms (§7.6).

#ifndef SRC_APPS_TXNSTORE_H_
#define SRC_APPS_TXNSTORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "src/apps/minikv.h"
#include "src/common/histogram.h"
#include "src/core/libos.h"
#include "src/netsim/sim_rdma.h"

namespace demi {

struct YcsbOptions {
  std::vector<SocketAddress> replicas;  // typically 3
  size_t write_quorum = 2;
  uint64_t num_keys = 10'000;
  size_t key_size = 64;
  size_t value_size = 700;
  uint64_t transactions = 10'000;
  double zipf_theta = 0.99;
  uint64_t seed = 7;
};

struct YcsbResult {
  uint64_t committed = 0;
  Histogram txn_latency;  // full read-modify-write transaction latency
  DurationNs elapsed = 0;
};

// Runs YCSB-T workload F (read-modify-write) against the replicas over a Demikernel libOS.
YcsbResult RunYcsbFClient(LibOS& os, const YcsbOptions& options);

// POSIX variant of the same client (kernel TCP baseline).
YcsbResult RunPosixYcsbFClient(const YcsbOptions& options);

// --- Custom raw-RDMA KV transport (the paper's TxnStore-RDMA baseline) ---

// Serves the KV protocol directly over SimRdmaDevice. One QP per client, request and response
// buffers copied in and out (the "serious changes would be needed for zero-copy" design the
// paper describes).
class RawRdmaKvReplicaApp {
 public:
  RawRdmaKvReplicaApp(SimNetwork& network, MacAddr mac, Clock& clock);
  ~RawRdmaKvReplicaApp();
  size_t PollOnce();  // serves any pending requests; returns requests served

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

void RunRawRdmaKvReplica(SimNetwork& network, MacAddr mac, Clock& clock,
                         std::atomic<bool>& stop);

struct RawRdmaYcsbOptions {
  std::vector<MacAddr> replicas;
  size_t write_quorum = 2;
  uint64_t num_keys = 10'000;
  size_t key_size = 64;
  size_t value_size = 700;
  uint64_t transactions = 10'000;
  double zipf_theta = 0.99;
  uint64_t seed = 7;
};

// `pump` (optional) runs co-located replicas between polls (single-thread duet benchmarking).
YcsbResult RunRawRdmaYcsbFClient(SimNetwork& network, MacAddr mac, Clock& clock,
                                 const RawRdmaYcsbOptions& options,
                                 const std::function<void()>& pump = {});

}  // namespace demi

#endif  // SRC_APPS_TXNSTORE_H_
