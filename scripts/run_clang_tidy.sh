#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over src/, driven by a compile_commands.json.
#
# Usage: scripts/run_clang_tidy.sh [repo_root] [build_dir]
#
# Exits 0 with a notice when clang-tidy isn't installed — the container image doesn't ship
# it, so CI treats this stage as optional; demilint carries the repo-specific rules either
# way (docs/STATIC_ANALYSIS.md).

set -euo pipefail

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
BDIR="${2:-$ROOT/build}"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping (demilint still enforces the repo rules)."
  exit 0
fi

if [ ! -f "$BDIR/compile_commands.json" ]; then
  echo "run_clang_tidy: generating compile_commands.json in $BDIR"
  cmake -B "$BDIR" -S "$ROOT" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t sources < <(find "$ROOT/src" -name '*.cc' | sort)
echo "run_clang_tidy: ${#sources[@]} translation units"
fail=0
for f in "${sources[@]}"; do
  clang-tidy -p "$BDIR" --quiet "$f" || fail=1
done

if [ "$fail" -ne 0 ]; then
  echo "run_clang_tidy: FAILED"
  exit 1
fi
echo "run_clang_tidy: OK"
