#include "src/core/libos.h"

namespace demi {

Result<QResult> LibOS::Wait(QToken qt, DurationNs timeout) {
  if (!tokens_.IsValid(qt)) {
    return Status::kBadQToken;
  }
  const TimeNs deadline = timeout == 0 ? 0 : clock_.Now() + timeout;
  for (;;) {
    if (tokens_.IsDone(qt)) {
      return tokens_.Take(qt);
    }
    sched_.Poll();
    RunExternalPump();
    if (deadline != 0 && clock_.Now() >= deadline && !tokens_.IsDone(qt)) {
      return Status::kTimedOut;
    }
  }
}

Result<QResult> LibOS::WaitAny(std::span<const QToken> qts, size_t* index_out,
                               DurationNs timeout) {
  for (QToken qt : qts) {
    if (!tokens_.IsValid(qt)) {
      return Status::kBadQToken;
    }
  }
  const TimeNs deadline = timeout == 0 ? 0 : clock_.Now() + timeout;
  for (;;) {
    for (size_t i = 0; i < qts.size(); i++) {
      if (tokens_.IsDone(qts[i])) {
        if (index_out != nullptr) {
          *index_out = i;
        }
        return tokens_.Take(qts[i]);
      }
    }
    sched_.Poll();
    RunExternalPump();
    if (deadline != 0 && clock_.Now() >= deadline) {
      for (size_t i = 0; i < qts.size(); i++) {
        if (tokens_.IsDone(qts[i])) {
          if (index_out != nullptr) {
            *index_out = i;
          }
          return tokens_.Take(qts[i]);
        }
      }
      return Status::kTimedOut;
    }
  }
}

size_t LibOS::WaitAnyHarvest(std::span<const QToken> qts, std::vector<QResult>* events,
                             std::vector<size_t>* indices, DurationNs timeout) {
  const TimeNs deadline = timeout == 0 ? 0 : clock_.Now() + timeout;
  for (;;) {
    size_t harvested = 0;
    for (size_t i = 0; i < qts.size(); i++) {
      if (tokens_.IsDone(qts[i])) {
        auto r = tokens_.Take(qts[i]);
        if (r.ok()) {
          if (events != nullptr) {
            events->push_back(*r);
          }
          if (indices != nullptr) {
            indices->push_back(i);
          }
          harvested++;
        }
      }
    }
    if (harvested > 0) {
      return harvested;
    }
    sched_.Poll();
    RunExternalPump();
    if (deadline != 0 && clock_.Now() >= deadline) {
      return 0;
    }
  }
}

Status LibOS::WaitAll(std::span<const QToken> qts, std::vector<QResult>* out,
                      DurationNs timeout) {
  const TimeNs deadline = timeout == 0 ? 0 : clock_.Now() + timeout;
  for (QToken qt : qts) {
    const DurationNs left =
        deadline == 0 ? 0
                      : (clock_.Now() >= deadline ? 1 : deadline - clock_.Now());
    auto r = Wait(qt, left);
    if (!r.ok()) {
      return r.error();
    }
    if (out != nullptr) {
      out->push_back(*r);
    }
  }
  return Status::kOk;
}

}  // namespace demi
