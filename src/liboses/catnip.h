// Catnip: the DPDK library OS (paper §6.3), here over the simulated poll-mode NIC.
//
// Implements PDPIX over the full userspace UDP/TCP stacks. A single fast-path coroutine polls
// the NIC (and, when a disk is attached, the storage completion queue — the Catnip×Cattree
// round-robin split of §5.5); pop/accept/connect allocate blocked coroutines only when the
// data isn't already available, and push transmits inline run-to-completion.
//
// Constructing with a SimBlockDevice yields the integrated Catnip×Cattree libOS: network
// sockets and storage queues share one scheduler and one DMA heap, enabling the paper's
// NIC→app→disk run-to-completion path without copies or thread switches.

#ifndef SRC_LIBOSES_CATNIP_H_
#define SRC_LIBOSES_CATNIP_H_

#include <deque>
#include <memory>
#include <unordered_map>

#include "src/core/libos.h"
#include "src/liboses/storage_queue_engine.h"
#include "src/net/ethernet.h"
#include "src/net/tcp/tcp.h"
#include "src/net/udp.h"
#include "src/netsim/sim_network.h"

namespace demi {

class Catnip final : public LibOS {
 public:
  struct Config {
    MacAddr mac;
    Ipv4Addr ip;
    TcpConfig tcp;
    // Attach a disk to get the integrated Catnip×Cattree libOS.
    SimBlockDevice* disk = nullptr;
    // NIC checksum offload (default on, as DPDK deployments configure); off = software
    // checksums (ablation).
    bool checksum_offload = true;
    // Frames the fast path drains from the NIC per scheduler round (DPDK rx_burst nb_pkts);
    // 1 reproduces the pre-batching frame-per-poll datapath for ablation.
    size_t rx_burst_frames = EthernetLayer::kDefaultRxBurst;
    // Reap closed TCP state every N fast-path iterations.
    uint32_t reap_interval = 1024;
    // --- Sharding (paper §7 multi-worker mode; see src/core/shard_group.h) ---
    // Total shared-nothing workers the NIC splits flows across: the owned NIC is created with
    // this many RSS queue pairs. 1 (the default) is the classic single-threaded libOS.
    size_t num_workers = 1;
    // The RSS queue pair this instance polls and transmits on; each worker owns exactly one.
    size_t queue_id = 0;
    // When set, this instance attaches to an existing multi-queue NIC instead of creating its
    // own — how ShardGroup gives every worker the same port. The NIC must outlive the libOS.
    SimNic* shared_nic = nullptr;
  };

  Catnip(SimNetwork& network, const Config& config, Clock& clock);
  ~Catnip() override;

  // --- PDPIX ---
  Result<QueueDesc> Socket(SocketType type) override;
  [[nodiscard]] Status Bind(QueueDesc qd, SocketAddress local) override;
  [[nodiscard]] Status Listen(QueueDesc qd, int backlog) override;
  Result<QToken> Accept(QueueDesc qd) override;
  Result<QToken> Connect(QueueDesc qd, SocketAddress remote) override;
  [[nodiscard]] Status Close(QueueDesc qd) override;
  Result<QueueDesc> Open(std::string_view path) override;
  [[nodiscard]] Status Seek(QueueDesc qd, uint64_t offset) override;
  [[nodiscard]] Status Truncate(QueueDesc qd, uint64_t offset) override;
  Result<QueueDesc> MemoryQueue() override;
  Result<QToken> Push(QueueDesc qd, const Sgarray& sga) override;
  Result<QToken> PushTo(QueueDesc qd, const Sgarray& sga, SocketAddress to) override;
  Result<QToken> Pop(QueueDesc qd) override;
  // Assigns a queue to an isolation domain: its qtokens, buffers, and TX frames are charged to
  // that tenant, and accepted connections inherit the listener's tenant.
  [[nodiscard]] Status SetQueueTenant(QueueDesc qd, TenantId tenant) override;

  // --- Introspection ---
  EthernetLayer& ethernet() { return eth_; }
  TcpStack& tcp() { return tcp_; }
  UdpStack& udp() { return udp_; }
  SimNic& nic() { return nic_; }
  Ipv4Addr local_ip() const { return eth_.local_ip(); }
  bool has_storage() const { return storage_ != nullptr; }
  // Null unless constructed with a disk; chaos tests use this to tune the log retry policy.
  StorageQueueEngine* storage() { return storage_.get(); }

 private:
  struct MemChannel {
    std::deque<Buffer> items;
    Event readable;
    bool closed = false;
  };

  enum class QKind : uint8_t {
    kTcpUnbound,  // Socket(kStream) before listen/connect
    kTcpListener,
    kTcpConn,
    kUdp,
    kFile,
    kMemory,
  };

  struct QueueState {
    QKind kind = QKind::kTcpUnbound;
    bool closing = false;
    TenantId tenant = kDefaultTenant;
    int waiters = 0;  // blocked op coroutines touching events owned by this queue
    SocketAddress bound{};
    bool has_bound = false;
    TcpListener* listener = nullptr;
    std::shared_ptr<TcpConnection> conn;
    UdpStack::Socket* udp = nullptr;
    SocketAddress udp_default_remote{};
    bool udp_connected = false;
    uint64_t file_cursor = 0;
    std::shared_ptr<MemChannel> mem;
  };

  QueueState* Find(QueueDesc qd);
  QueueDesc NewQd() { return next_qd_++; }
  // Load shedding at submission: true (and counted/traced) when the tenant is over its
  // inflight-qtoken watermark; the caller returns kQueueFull without allocating a qtoken.
  bool ShedOp(TenantId tenant);
  void OnTenantRegistered(TenantId tenant, const TenantConfig& config) override;
  QueueDesc InstallConnQueue(std::shared_ptr<TcpConnection> conn);
  void FinishClose(QueueDesc qd, QueueState& q);

  // Op coroutines.
  Task<void> FastPathFiber();
  Task<void> AcceptOp(QueueDesc qd, QToken qt);
  Task<void> ConnectOp(QueueDesc qd, QToken qt, std::shared_ptr<TcpConnection> conn);
  Task<void> PopTcpOp(QueueDesc qd, QToken qt, std::shared_ptr<TcpConnection> conn);
  Task<void> PopUdpOp(QueueDesc qd, QToken qt);
  Task<void> PopMemOp(QueueDesc qd, QToken qt, std::shared_ptr<MemChannel> mem);

  // Completes a TCP pop from ready data (fast path and coroutine tail share this).
  void CompleteTcpPop(QToken qt, QueueDesc qd, TcpConnection& conn);

  std::unique_ptr<SimNic> owned_nic_;  // null when Config::shared_nic is used
  SimNic& nic_;
  EthernetLayer eth_;
  UdpStack udp_;
  TcpStack tcp_;
  std::unique_ptr<StorageQueueEngine> storage_;
  SimBlockDevice* disk_ = nullptr;  // external device: tracer detached at destruction
  std::unordered_map<QueueDesc, QueueState> queues_;
  std::deque<QueueDesc> deferred_close_;
  uint32_t reap_interval_ = 1024;
  bool shutdown_ = false;
};

}  // namespace demi

#endif  // SRC_LIBOSES_CATNIP_H_
