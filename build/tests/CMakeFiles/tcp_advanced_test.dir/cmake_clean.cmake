file(REMOVE_RECURSE
  "CMakeFiles/tcp_advanced_test.dir/tcp_advanced_test.cc.o"
  "CMakeFiles/tcp_advanced_test.dir/tcp_advanced_test.cc.o.d"
  "tcp_advanced_test"
  "tcp_advanced_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
