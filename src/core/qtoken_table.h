// QTokenTable: slab of pending-operation states behind PDPIX qtokens.
//
// A qtoken encodes (slot | generation<<32): slots recycle, generations catch stale tokens.
// The paper allocates the waiting coroutine only when the application calls wait (§5.2); here
// the table itself is the cheap part allocated at op submission, and completion either happens
// inline on the fast path or from a libOS coroutine.
//
// Lifecycle checking (docs/STATIC_ANALYSIS.md): every qtoken moves through
// alloc -> pending -> completed -> harvested, and each slot remembers the generation it most
// recently released plus whether that release came from a shutdown Drain. A stale Take or
// Complete against that remembered generation is therefore classifiable:
//   - Take of an already-harvested token   -> double-wait
//   - Take of a token released by Drain    -> harvest-after-drop
//   - Complete of a released token         -> complete-after-free
// In the default build these bump the `qtoken.lifecycle_violations` counter and the caller
// still gets kBadQToken/false (unchanged API); under DEMI_OWNERSHIP_CHECKS they abort with a
// diagnostic naming the kind, token, slot and the released op's queue. Tokens staler than one
// recycle are indistinguishable from corruption and stay plain kBadQToken (best effort).

#ifndef SRC_CORE_QTOKEN_TABLE_H_
#define SRC_CORE_QTOKEN_TABLE_H_

#include <memory>
#include <vector>

#if defined(DEMI_OWNERSHIP_CHECKS)
#include <cstdio>
#include <cstdlib>
#endif

#include "src/common/affinity.h"
#include "src/core/types.h"
#include "src/observability/trace.h"
#include "src/runtime/event.h"

namespace demi {

class QTokenTable {  // demilint: shard-local
 public:
  // Attaches a tracer for kQTokenIssued events (the redeem side is traced by LibOS::Wait*).
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  // DemiSan thread-affinity (docs/STATIC_ANALYSIS.md): the owning worker binds the table at
  // shard spawn; Allocate/Complete/Take then revalidate the calling thread. Zero-cost unless
  // built with DEMI_OWNERSHIP_CHECKS.
  void BindShard(int shard_id) { affinity_.Bind(shard_id); }
  void UnbindShard() { affinity_.Unbind(); }

  // Stale-token misuses detected since construction (see the lifecycle comment up top). Only
  // ever increments; exported as the `qtoken.lifecycle_violations` metric.
  uint64_t lifecycle_violations() const { return lifecycle_violations_; }

  QToken Allocate(OpCode op, QueueDesc qd, TenantId tenant = kDefaultTenant) {
    affinity_.Check("QTokenTable::Allocate");
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<uint32_t>(entries_.size());
      entries_.emplace_back(new Entry());
    }
    Entry& e = *entries_[slot];
    e.in_use = true;
    e.done = false;
    e.tenant = tenant;
    e.result = QResult{};
    e.result.opcode = op;
    e.result.qd = qd;
    // Per-tenant inflight accounting backs the load-shedding watermark. Indexed by tenant id
    // (ids are small) so the hot path is an array increment, never a hash lookup.
    if (tenant >= inflight_by_tenant_.size()) {
      inflight_by_tenant_.resize(static_cast<size_t>(tenant) + 1, 0);
    }
    inflight_by_tenant_[tenant]++;
    // Generation 0 would collide with kInvalidQToken for slot 0; start at 1.
    if (e.generation == 0) {
      e.generation = 1;
    }
    const QToken qt = (static_cast<uint64_t>(e.generation) << 32) | slot;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventType::kQTokenIssued, static_cast<uint32_t>(qd), qt);
    }
    return qt;
  }

  bool IsValid(QToken qt) const {
    const Entry* e = Lookup(qt);
    return e != nullptr;
  }

  bool IsDone(QToken qt) const {
    const Entry* e = Lookup(qt);
    return e != nullptr && e->done;
  }

  // Completes a pending token. Returns false if the token is stale (e.g., queue closed and the
  // token already cancelled and consumed).
  bool Complete(QToken qt, QResult result) {
    affinity_.Check("QTokenTable::Complete");
    Entry* e = Lookup(qt);
    if (e == nullptr) {
      NoteStaleOp(qt, /*is_complete=*/true);
      return false;
    }
    if (e->done) {
      return false;
    }
    // Preserve opcode/qd recorded at Allocate when the completer didn't fill them.
    if (result.opcode == OpCode::kInvalid) {
      result.opcode = e->result.opcode;
    }
    if (result.qd == kInvalidQd) {
      result.qd = e->result.qd;
    }
    e->result = result;
    e->done = true;
    return true;
  }

  // Consumes a completed token; invalidates it.
  Result<QResult> Take(QToken qt) {
    affinity_.Check("QTokenTable::Take");
    Entry* e = Lookup(qt);
    if (e == nullptr) {
      NoteStaleOp(qt, /*is_complete=*/false);
      return Status::kBadQToken;
    }
    if (!e->done) {
      return Status::kWouldBlock;
    }
    QResult result = e->result;
    Release(qt);
    return result;
  }

  // Cancels a pending token (queue closed underneath it) by completing it with `status`.
  void Cancel(QToken qt, Status status) {
    Entry* e = Lookup(qt);
    if (e != nullptr && !e->done) {
      e->result.status = status;
      e->done = true;
    }
  }

  OpCode OpOf(QToken qt) const {
    const Entry* e = Lookup(qt);
    return e == nullptr ? OpCode::kInvalid : e->result.opcode;
  }
  QueueDesc QdOf(QToken qt) const {
    const Entry* e = Lookup(qt);
    return e == nullptr ? kInvalidQd : e->result.qd;
  }

  size_t NumPending() const {
    size_t n = 0;
    for (const auto& e : entries_) {
      if (e->in_use && !e->done) {
        n++;
      }
    }
    return n;
  }

  size_t NumInUse() const {
    size_t n = 0;
    for (const auto& e : entries_) {
      if (e->in_use) {
        n++;
      }
    }
    return n;
  }

  // Inflight (allocated, not yet consumed) qtokens charged to `tenant`. Backs the
  // load-shedding watermark (docs/TENANCY.md).
  size_t InflightForTenant(TenantId tenant) const {
    return tenant < inflight_by_tenant_.size() ? inflight_by_tenant_[tenant] : 0;
  }

  TenantId TenantOf(QToken qt) const {
    const Entry* e = Lookup(qt);
    return e == nullptr ? kDefaultTenant : e->tenant;
  }

  // Shutdown path: force-release every live slot (ShardGroup drains before joining workers so
  // an in-flight pop at stop cannot leak its slot). Completed results are handed to `dispose`
  // first so their payloads (pop sga buffers the app never saw) can be freed.
  template <typename Dispose>
  size_t Drain(Dispose&& dispose) {
    size_t drained = 0;
    for (uint32_t slot = 0; slot < entries_.size(); slot++) {
      Entry& e = *entries_[slot];
      if (!e.in_use) {
        continue;
      }
      if (e.done) {
        dispose(e.result);
      }
      ReleaseSlot(slot, /*drained=*/true);
      drained++;
    }
    return drained;
  }

 private:
  struct Entry {
    uint32_t generation = 0;
    // Lifecycle memory: the generation this slot most recently released (0 = never released)
    // and whether that release came from a shutdown Drain rather than a harvest. Lets a stale
    // Take/Complete against the previous incarnation be classified instead of just rejected.
    uint32_t last_released_gen = 0;
    bool drain_released = false;
    bool in_use = false;
    bool done = false;
    TenantId tenant = kDefaultTenant;
    QResult result;
  };

  Entry* Lookup(QToken qt) {
    const uint32_t slot = static_cast<uint32_t>(qt & 0xFFFFFFFF);
    const uint32_t gen = static_cast<uint32_t>(qt >> 32);
    if (slot >= entries_.size()) {
      return nullptr;
    }
    Entry& e = *entries_[slot];
    if (!e.in_use || e.generation != gen) {
      return nullptr;
    }
    return &e;
  }
  const Entry* Lookup(QToken qt) const { return const_cast<QTokenTable*>(this)->Lookup(qt); }

  void Release(QToken qt) { ReleaseSlot(static_cast<uint32_t>(qt & 0xFFFFFFFF)); }

  void ReleaseSlot(uint32_t slot, bool drained = false) {
    Entry& e = *entries_[slot];
    e.last_released_gen = e.generation;
    e.drain_released = drained;
    e.in_use = false;
    e.generation++;
    if (e.generation == 0) {
      e.generation = 1;
    }
    if (e.tenant < inflight_by_tenant_.size() && inflight_by_tenant_[e.tenant] > 0) {
      inflight_by_tenant_[e.tenant]--;
    }
    free_.push_back(slot);
  }

  // Classifies a Take/Complete whose token failed Lookup. Only the slot's most recently
  // released generation is classifiable (older tokens are indistinguishable from garbage and
  // stay plain kBadQToken). Default build: count and carry on; DemiSan build: abort naming the
  // kind, the token, and the queue the released op belonged to.
  void NoteStaleOp(QToken qt, bool is_complete) {
    const uint32_t slot = static_cast<uint32_t>(qt & 0xFFFFFFFF);
    const uint32_t gen = static_cast<uint32_t>(qt >> 32);
    if (slot >= entries_.size()) {
      return;
    }
    const Entry& e = *entries_[slot];
    if (e.last_released_gen == 0 || gen != e.last_released_gen) {
      return;
    }
    const char* kind = is_complete ? "complete-after-free"
                       : e.drain_released ? "harvest-after-drop"
                                          : "double-wait";
    lifecycle_violations_++;
#if defined(DEMI_OWNERSHIP_CHECKS)
    // qd/op are best-effort: ReleaseSlot never clears e.result, so they name the released op
    // unless the slot was already reallocated to a new one (then they name the new occupant).
    std::fprintf(stderr,
                 "[demi] DemiSan: qtoken lifecycle violation: %s: qt=0x%llx slot=%u gen=%u "
                 "last qd=%d op=%d shard=%d\n",
                 kind, static_cast<unsigned long long>(qt), slot, gen,
                 static_cast<int>(e.result.qd), static_cast<int>(e.result.opcode),
                 affinity_.shard_id());
    std::abort();
#else
    (void)kind;
#endif
  }

  std::vector<std::unique_ptr<Entry>> entries_;
  std::vector<uint32_t> free_;
  std::vector<size_t> inflight_by_tenant_;
  Tracer* tracer_ = nullptr;
  ShardAffinity affinity_;  // empty (zero-cost) unless DEMI_OWNERSHIP_CHECKS
  uint64_t lifecycle_violations_ = 0;
};

}  // namespace demi

#endif  // SRC_CORE_QTOKEN_TABLE_H_
