// Catmint: the RDMA library OS (paper §6.2), over the simulated RDMA device.
//
// The device provides ordered, reliable message delivery (like an RDMA HCA), so Catmint is
// thin: it multiplexes PDPIX connections over one shared, well-known queue pair per device
// (one QP per connection was unaffordably slow, §6.2) and adds message-based credit flow
// control. The receiver advances the sender's window by *one-sided RDMA writes* into the
// sender's registered credit counter, exactly as the paper describes; a flow-control fiber per
// device keeps receive buffers posted, and the fast path unblocks per-connection send fibers
// when credits or sends arrive.
//
// Constructing with a SimBlockDevice yields the integrated Catmint×Cattree libOS.

#ifndef SRC_LIBOSES_CATMINT_H_
#define SRC_LIBOSES_CATMINT_H_

#include <deque>
#include <memory>
#include <unordered_map>

#include "src/core/libos.h"
#include "src/liboses/storage_queue_engine.h"
#include "src/netsim/sim_rdma.h"

namespace demi {

class Catmint final : public LibOS {
 public:
  struct Config {
    MacAddr mac;
    Ipv4Addr ip;
    size_t max_msg_size = 16 * 1024;  // paper: messages up to a configurable buffer size
    size_t send_window_msgs = 64;     // per-connection credits
    size_t recv_buffers = 256;        // device-level posted receives (shared by all conns)
    size_t repost_threshold = 64;     // wake the flow fiber below this many posted buffers
    SimBlockDevice* disk = nullptr;   // attach for Catmint×Cattree
  };

  Catmint(SimNetwork& network, const Config& config, Clock& clock);
  ~Catmint() override;

  // Out-of-band peer discovery (the role rdma_cm's address resolution plays).
  void AddPeer(Ipv4Addr ip, MacAddr mac) { directory_[ip.value] = mac; }

  Result<QueueDesc> Socket(SocketType type) override;
  [[nodiscard]] Status Bind(QueueDesc qd, SocketAddress local) override;
  [[nodiscard]] Status Listen(QueueDesc qd, int backlog) override;
  Result<QToken> Accept(QueueDesc qd) override;
  Result<QToken> Connect(QueueDesc qd, SocketAddress remote) override;
  [[nodiscard]] Status Close(QueueDesc qd) override;
  Result<QueueDesc> Open(std::string_view path) override;
  [[nodiscard]] Status Seek(QueueDesc qd, uint64_t offset) override;
  [[nodiscard]] Status Truncate(QueueDesc qd, uint64_t offset) override;
  Result<QToken> Push(QueueDesc qd, const Sgarray& sga) override;
  Result<QToken> Pop(QueueDesc qd) override;

  SimRdmaDevice& device() { return device_; }
  Ipv4Addr local_ip() const { return ip_; }
  bool has_storage() const { return storage_ != nullptr; }

  struct Stats {
    uint64_t msgs_sent = 0;
    uint64_t msgs_received = 0;
    uint64_t credit_updates_sent = 0;
    uint64_t sends_blocked_on_credits = 0;
    uint64_t connects_rejected = 0;
    uint64_t post_failures = 0;  // RDMA verb posts that failed and were absorbed (retried later)
  };
  const Stats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kWellKnownQp = 1;

  struct Connection;
  struct Listener {
    uint16_t port = 0;
    size_t backlog = 64;
    std::deque<std::shared_ptr<Connection>> pending;
    Event acceptable;
    bool closing = false;
  };

  struct PendingSend {
    Buffer data;
    QToken qt;
  };

  struct Connection {
    uint32_t id = 0;
    uint32_t peer_conn = 0;
    MacAddr peer_mac;
    SocketAddress peer_addr;
    enum class State : uint8_t { kConnecting, kEstablished, kClosed } state = State::kConnecting;
    Status error = Status::kOk;
    bool remote_closed = false;

    // Send side: credits = window - (msgs_sent - *consumed_by_peer).
    uint64_t msgs_sent = 0;
    uint64_t* consumed_by_peer = nullptr;  // registered heap slot; the peer writes it remotely
    std::deque<PendingSend> blocked_sends;

    // Where we write our consumption count (the peer's counter).
    uint64_t peer_ctr_addr = 0;
    uint64_t peer_ctr_rkey = 0;
    uint64_t local_consumed = 0;
    uint64_t last_reported_consumed = 0;

    std::deque<Buffer> rx;
    Event readable;
    Event established;
    Event send_window;  // notified when credits may have changed
  };

  enum class QKind : uint8_t { kUnbound, kListener, kConn, kFile };

  struct QueueState {
    QKind kind = QKind::kUnbound;
    bool closing = false;
    int waiters_guard = 0;  // blocked coroutines touching queue-owned events
    uint16_t bound_port = 0;
    bool has_bound = false;
    std::unique_ptr<Listener> listener;
    std::shared_ptr<Connection> conn;
    uint64_t file_cursor = 0;
  };

  QueueState* Find(QueueDesc qd);
  std::shared_ptr<Connection> NewConnection(MacAddr peer_mac);
  void SendControl(uint8_t type, MacAddr dst, uint32_t src_conn, uint32_t dst_conn,
                   uint16_t port, const Connection* conn);
  [[nodiscard]] Status SendData(Connection& conn, const Buffer& data);
  void TrySendBlocked(Connection& conn);
  void PublishConsumed(Connection& conn);
  void HandleMessage(const RdmaCompletion& comp);
  void PostRecvBuffers();
  size_t CreditsAvailable(const Connection& conn) const;

  Task<void> FastPathFiber();
  Task<void> FlowControlFiber();
  Task<void> AcceptOp(QueueDesc qd, QToken qt);
  Task<void> PopOp(QueueDesc qd, QToken qt, std::shared_ptr<Connection> conn);
  Task<void> ConnectOp(QToken qt, std::shared_ptr<Connection> conn);
  Task<void> SendFiber(std::shared_ptr<Connection> conn);

  QueueDesc InstallConnQueue(std::shared_ptr<Connection> conn);

  SimRdmaDevice device_;
  Ipv4Addr ip_;
  Config config_;
  std::unordered_map<uint32_t, MacAddr> directory_;  // ip -> mac

  std::unordered_map<uint32_t, std::shared_ptr<Connection>> conns_;  // by local conn id
  std::unordered_map<uint16_t, Listener*> listeners_;               // by port
  uint32_t next_conn_id_ = 1;

  // Device-level receive buffer pool.
  struct RecvSlot {
    void* buf = nullptr;
  };
  std::vector<RecvSlot> recv_slots_;
  std::deque<size_t> free_slots_;
  size_t posted_recvs_ = 0;
  Event need_repost_;

  std::unique_ptr<StorageQueueEngine> storage_;
  std::unordered_map<QueueDesc, QueueState> queues_;
  std::deque<QueueDesc> deferred_close_;
  bool shutdown_ = false;
  Stats stats_;
};

}  // namespace demi

#endif  // SRC_LIBOSES_CATMINT_H_
