file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_echo_logging.dir/bench_fig7_echo_logging.cc.o"
  "CMakeFiles/bench_fig7_echo_logging.dir/bench_fig7_echo_logging.cc.o.d"
  "bench_fig7_echo_logging"
  "bench_fig7_echo_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_echo_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
