// LibOS: the abstract Demikernel datapath library OS (paper §5).
//
// Every concrete libOS (Catnap, Catnip, Catmint, Cattree and the network×storage integrations)
// shares this PDPIX surface and the common machinery: a cooperative coroutine scheduler, a
// DMA-capable heap with UAF protection, and a qtoken table. wait/wait_any/wait_all are
// implemented here — they run the scheduler (fast-path + background coroutines) until the
// requested tokens complete, which is how application threads donate cycles to the datapath OS
// (cooperative scheduling, §3.2).

#ifndef SRC_CORE_LIBOS_H_
#define SRC_CORE_LIBOS_H_

#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "src/common/clock.h"
#include "src/core/qtoken_table.h"
#include "src/core/tenant.h"
#include "src/core/types.h"
#include "src/memory/buffer.h"
#include "src/memory/pool_allocator.h"
#include "src/observability/metrics.h"
#include "src/observability/trace.h"
#include "src/runtime/scheduler.h"

namespace demi {

class LibOS {
 public:
  virtual ~LibOS() = default;

  LibOS(const LibOS&) = delete;
  LibOS& operator=(const LibOS&) = delete;

  // --- Queue creation and management (PDPIX libcalls, Figure 2) ---
  virtual Result<QueueDesc> Socket(SocketType type) = 0;
  [[nodiscard]] virtual Status Bind(QueueDesc qd, SocketAddress local) = 0;
  [[nodiscard]] virtual Status Listen(QueueDesc qd, int backlog) = 0;
  virtual Result<QToken> Accept(QueueDesc qd) = 0;
  virtual Result<QToken> Connect(QueueDesc qd, SocketAddress remote) = 0;
  [[nodiscard]] virtual Status Close(QueueDesc qd) = 0;

  // Storage queues (libOSes without a storage engine return kNotSupported).
  virtual Result<QueueDesc> Open(std::string_view path) { return Status::kNotSupported; }
  [[nodiscard]] virtual Status Seek(QueueDesc qd, uint64_t offset) { return Status::kNotSupported; }
  [[nodiscard]] virtual Status Truncate(QueueDesc qd, uint64_t offset) { return Status::kNotSupported; }

  // Lightweight in-memory queue (PDPIX queue(), Go-channel-like).
  virtual Result<QueueDesc> MemoryQueue() { return Status::kNotSupported; }

  // --- I/O processing ---
  // Submits a complete outgoing operation; attempts to issue it immediately (fast path).
  // Zero-copy: ownership of sga buffers passes to the libOS until the qtoken completes; with
  // UAF protection the app may even free them right away and the heap defers the recycle.
  virtual Result<QToken> Push(QueueDesc qd, const Sgarray& sga) = 0;
  virtual Result<QToken> PushTo(QueueDesc qd, const Sgarray& sga, SocketAddress to) {
    return Status::kNotSupported;
  }
  // Asks for the next incoming operation; the qtoken completes with an app-owned sga.
  virtual Result<QToken> Pop(QueueDesc qd) = 0;

  // Splice: moves a stream between two queues inside the libOS with no application-visible
  // copy — pop src, push the same Buffer views into dst (sendfile, §5.3's zero-copy goal
  // applied across devices). Runs until src reports end-of-stream (TCP FIN, log tail); the
  // qtoken then completes with QResult::bytes = total payload moved. LibOSes without a
  // device pair that can splice return kNotSupported.
  virtual Result<QToken> Splice(QueueDesc src_qd, QueueDesc dst_qd) {
    return Status::kNotSupported;
  }

  // --- wait_*: PDPIX's epoll replacement (§4.2) ---
  // Blocks the calling thread, donating it to the libOS scheduler, until `qt` completes.
  // timeout 0 = wait forever.
  Result<QResult> Wait(QToken qt, DurationNs timeout = 0);
  // Waits for any of `qts`; `index_out` receives the position that completed.
  Result<QResult> WaitAny(std::span<const QToken> qts, size_t* index_out,
                          DurationNs timeout = 0);
  // Waits for all tokens; results appended to `out` in token order.
  [[nodiscard]] Status WaitAll(std::span<const QToken> qts, std::vector<QResult>* out,
                 DurationNs timeout = 0);

  // The paper's full wait_any shape (Figure 2): blocks until at least one token completes,
  // then harvests EVERY completed token into `events` (with its index in `indices`). Returns
  // the number harvested, or 0 on timeout. Batch harvesting lets servers drain a burst of
  // completions in one call instead of one wakeup each.
  size_t WaitAnyHarvest(std::span<const QToken> qts, std::vector<QResult>* events,
                        std::vector<size_t>* indices, DurationNs timeout = 0);

  // Non-blocking check/claim.
  bool IsDone(QToken qt) const { return tokens_.IsDone(qt); }
  Result<QResult> TryTake(QToken qt) { return tokens_.Take(qt); }

  // --- Multi-tenancy (docs/TENANCY.md) ---
  // Registers an isolation domain: installs its memory budget on the DMA heap, publishes its
  // per-tenant labelled metrics, and gives the concrete libOS a chance to wire datapath-side
  // limits (TX token bucket, DRR weight). Tenant 0 is the control domain and not registrable.
  [[nodiscard]] Status RegisterTenant(TenantId tenant, const TenantConfig& config);
  // Assigns an existing queue (listener, connection, or UDP socket) to a tenant; every qtoken,
  // buffer, and TX frame the queue produces is charged to that domain from then on. LibOSes
  // without tenant-aware queues return kNotSupported.
  [[nodiscard]] virtual Status SetQueueTenant(QueueDesc qd, TenantId tenant) {
    return Status::kNotSupported;
  }
  TenantTable& tenants() { return tenants_; }
  const TenantTable& tenants() const { return tenants_; }

  // --- Memory (the DMA-capable heap, §5.3) ---
  void* DmaMalloc(size_t size) { return alloc_.Alloc(size); }
  // Tenant-charged allocation: fails (nullptr) once the tenant's registered budget is spent.
  void* DmaMallocFor(TenantId tenant, size_t size) { return alloc_.AllocFor(size, tenant); }
  void DmaFree(void* ptr) { alloc_.Free(ptr); }
  // Frees every segment of a popped sgarray.
  void FreeSga(Sgarray& sga) {
    for (uint32_t i = 0; i < sga.num_segs; i++) {
      alloc_.Free(sga.segs[i].buf);
      sga.segs[i] = {};
    }
    sga.num_segs = 0;
  }

  PoolAllocator& allocator() { return alloc_; }
  Scheduler& scheduler() { return sched_; }
  Clock& clock() { return clock_; }
  QTokenTable& tokens() { return tokens_; }

  // --- Observability (docs/OBSERVABILITY.md) ---
  // Every libOS carries a metrics registry (populated at construction with scheduler, heap and
  // wait metrics; concrete libOSes add their stacks' counters) and a tracer that is wired into
  // the scheduler, the qtoken table and the device stacks but records nothing until enabled.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  // Runs one scheduler round (fast-path poll + runnable coroutines) without blocking. µs-scale
  // apps call this (or wait) at least every millisecond per the system model (§3.2).
  size_t PollOnce() { return sched_.Poll(); }

  // Shutdown aid: polls until every issued qtoken completes (bounded rounds), then force-drains
  // whatever is left, freeing popped sga buffers so the heap stays balanced. Returns the number
  // of tokens disposed. ShardGroup calls this per shard before joining its workers so an
  // in-flight pop at stop time cannot leak its completion buffer.
  size_t DrainPendingTokens();

  // --- DemiSan thread-affinity (docs/STATIC_ANALYSIS.md) ---
  // Called by ShardGroup on the owning worker thread right after the shard's libOS is
  // constructed: tags the DMA heap and qtoken table with that thread (concrete libOSes
  // override to add their own shard-local structures) and records first-touch NUMA placement
  // into the `pool.numa_node` gauge. The inverse runs on the same thread right before it
  // exits, so post-Join control-plane inspection and teardown stay exempt. The affinity tags
  // compile to nothing without DEMI_OWNERSHIP_CHECKS; the NUMA side is live in every build.
  virtual void BindShardAffinity(int shard_id) {
    alloc_.BindShard(shard_id);
    tokens_.BindShard(shard_id);
    if (numa_gauge_ != nullptr) {
      numa_gauge_->Set(alloc_.numa_node());
    }
  }
  virtual void UnbindShardAffinity() {
    tokens_.UnbindShard();
    alloc_.UnbindShard();
  }

  // Single-process benchmarking hook: a function invoked on every wait_* polling round, used to
  // pump a peer libOS (and its server application) on the same thread. This emulates the
  // paper's two-machine topology without kernel scheduler noise — essential on small hosts
  // where two busy-polling threads would timeslice at millisecond granularity.
  void SetExternalPump(std::function<void()> pump) { external_pump_ = std::move(pump); }

  const char* name() const { return name_; }

 protected:
  LibOS(const char* name, Clock& clock, DmaRegistrar& registrar)
      : name_(name), clock_(clock), tracer_(clock), sched_(clock), alloc_(registrar) {
    InitObservability();
  }

  // Completes a qtoken inline (fast path) or from a coroutine.
  void CompleteToken(QToken qt, QResult result) { tokens_.Complete(qt, std::move(result)); }

  void RunExternalPump() {
    if (external_pump_) {
      external_pump_();
    }
  }

  const char* name_;
  std::function<void()> external_pump_;
  Clock& clock_;
  // Observability members precede the scheduler: the scheduler traces fiber teardown from its
  // destructor, so the tracer must be destroyed after it.
  MetricsRegistry metrics_;
  Tracer tracer_;
  Scheduler sched_;
  PoolAllocator alloc_;
  QTokenTable tokens_;
  TenantTable tenants_;
  QueueDesc next_qd_ = 3;  // 0..2 reserved out of POSIX habit

  // Hook for concrete libOSes to propagate a freshly registered tenant's limits into their
  // datapath (e.g. Catnip configures the NIC TX scheduler's token bucket and DRR weight).
  virtual void OnTenantRegistered(TenantId /*tenant*/, const TenantConfig& /*config*/) {}

 private:
  // Registers the common instruments (sched.*, heap.*, core.*) and wires the tracer into the
  // scheduler and qtoken table; concrete libOSes register their stacks on top.
  void InitObservability();

  Counter* wait_calls_ = nullptr;
  Counter* wait_poll_rounds_ = nullptr;
  Histogram* wait_ns_ = nullptr;
  Gauge* numa_gauge_ = nullptr;  // pool.numa_node; set by BindShardAffinity
  // Rotating scan start for WaitAny/WaitAnyHarvest: scanning from index 0 every call lets a
  // busy low-index qtoken shadow completions on higher indices indefinitely.
  size_t wait_any_rr_ = 0;
};

// Converts a popped Buffer into an app-owned single-segment sgarray. The buffer must be a whole
// libOS-owned heap object (which rx-path allocations are).
inline Sgarray BufferToAppSga(Buffer&& buf) {
  Sgarray sga;
  const uint32_t len = static_cast<uint32_t>(buf.size());
  sga.num_segs = 1;
  sga.segs[0] = {buf.ReleaseToApp(), len};
  return sga;
}

}  // namespace demi

#endif  // SRC_CORE_LIBOS_H_
