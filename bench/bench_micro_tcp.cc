// §6.3 microbenchmarks: Catnip TCP fast-path costs.
//
// The paper's claim: "Catnip can process an incoming TCP packet and dispatch it to the waiting
// application coroutine in 53 ns". We measure the analogous quantities: header serialize/parse
// with checksum, the full in-order receive fast path (frame -> eth -> ip -> tcp -> ready queue
// -> app wake), and the inline push-transmit path, all on a VirtualClock so only CPU work is
// timed (no simulated wire latency is attributed to the stack).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/common/clock.h"
#include "src/net/ethernet.h"
#include "src/net/headers.h"
#include "src/net/tcp/tcp.h"
#include "src/netsim/sim_network.h"

namespace demi {
namespace {

void BM_TcpHeaderSerialize(benchmark::State& state) {
  const Ipv4Addr src = Ipv4Addr::FromOctets(1, 1, 1, 1);
  const Ipv4Addr dst = Ipv4Addr::FromOctets(2, 2, 2, 2);
  std::vector<uint8_t> payload(64, 7);
  TcpHeader h;
  h.src_port = 1;
  h.dst_port = 2;
  h.flags.ack = true;
  uint8_t out[64];
  for (auto _ : state) {
    h.Serialize(out, src, dst, payload);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_TcpHeaderSerialize);

void BM_TcpHeaderParse(benchmark::State& state) {
  const Ipv4Addr src = Ipv4Addr::FromOctets(1, 1, 1, 1);
  const Ipv4Addr dst = Ipv4Addr::FromOctets(2, 2, 2, 2);
  std::vector<uint8_t> payload(64, 7);
  TcpHeader h;
  h.src_port = 1;
  h.dst_port = 2;
  h.flags.ack = true;
  std::vector<uint8_t> wire(h.SerializedSize() + payload.size());
  h.Serialize(wire.data(), src, dst, payload);
  std::memcpy(wire.data() + h.SerializedSize(), payload.data(), payload.size());
  size_t hdr_len;
  for (auto _ : state) {
    auto parsed = TcpHeader::Parse(wire, src, dst, &hdr_len);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_TcpHeaderParse);

void BM_ChecksumThroughput(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0x3C);
  for (auto _ : state) {
    InternetChecksum sum;
    sum.Add(data);
    benchmark::DoNotOptimize(sum.Finish());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChecksumThroughput)->Arg(64)->Arg(1460)->Arg(65536);

// Full established-connection fixture over the fabric on a VirtualClock.
struct TcpFixture {
  explicit TcpFixture(TcpConfig cfg = TcpConfig{})
      : net(LinkConfig{.latency = 0}, 1),
        a_nic(net, MacAddr{1}, clock),
        b_nic(net, MacAddr{2}, clock),
        a_alloc(a_nic.registrar()),
        b_alloc(b_nic.registrar()),
        a_sched(clock),
        b_sched(clock),
        a_eth(a_nic, Ipv4Addr::FromOctets(10, 0, 0, 1)),
        b_eth(b_nic, Ipv4Addr::FromOctets(10, 0, 0, 2)),
        a_tcp(a_eth, a_sched, a_alloc, clock, cfg),
        b_tcp(b_eth, b_sched, b_alloc, clock, cfg) {
    a_eth.arp().Insert(Ipv4Addr::FromOctets(10, 0, 0, 2), MacAddr{2});
    b_eth.arp().Insert(Ipv4Addr::FromOctets(10, 0, 0, 1), MacAddr{1});
    auto listener = b_tcp.Listen(80, 8);
    auto conn = a_tcp.Connect(SocketAddress{Ipv4Addr::FromOctets(10, 0, 0, 2), 80});
    client = *conn;
    for (int i = 0; i < 1000 && !(*listener)->HasPending(); i++) {
      Step();
    }
    server = (*listener)->Accept();
  }

  void Step() {
    a_eth.PollOnce();
    b_eth.PollOnce();
    a_sched.Poll();
    b_sched.Poll();
    clock.Advance(100);
  }

  VirtualClock clock;
  SimNetwork net;
  SimNic a_nic, b_nic;
  PoolAllocator a_alloc, b_alloc;
  Scheduler a_sched, b_sched;
  EthernetLayer a_eth, b_eth;
  TcpStack a_tcp, b_tcp;
  std::shared_ptr<TcpConnection> client;
  std::shared_ptr<TcpConnection> server;
};

// One in-order 64 B data segment: push on the client, receive fast path + app-wake + ack and
// the client's ack processing — a full stack round per iteration, CPU cost only.
void BM_TcpInOrderSegmentRound(benchmark::State& state) {
  TcpFixture fx;
  for (auto _ : state) {
    void* p = fx.a_alloc.Alloc(64);
    (void)fx.client->Push(Buffer::FromApp(fx.a_alloc, p, 64));  // lossless sim link; benches measure the success path
    fx.a_alloc.Free(p);
    while (!fx.server->HasReadyData()) {
      fx.Step();
    }
    auto data = fx.server->PopData();
    benchmark::DoNotOptimize(data);
    // Let acks drain so windows never bind.
    fx.Step();
  }
  state.SetLabel("full push->receive->pop round, both stacks");
}
BENCHMARK(BM_TcpInOrderSegmentRound);

// Isolates the receiver's fast path: hand-crafted in-order segments fed straight into
// OnIpv4Packet — the '53 ns per packet' quantity (parse + state machine + ready-queue append +
// app wake), without the sender's costs.
void BM_TcpReceiveFastPath(benchmark::State& state) {
  TcpFixture fx;
  {
    // Discover rcv_nxt by sending one real segment.
    void* p = fx.a_alloc.Alloc(64);
    (void)fx.client->Push(Buffer::FromApp(fx.a_alloc, p, 64));  // lossless sim link; benches measure the success path
    fx.a_alloc.Free(p);
    while (!fx.server->HasReadyData()) {
      fx.Step();
    }
    fx.server->PopData();
  }
  for (auto _ : state) {
    // Produce the next in-order segment with the client's real stack, capture the frame off
    // the wire, and time ONLY the receiver's processing of it.
    state.PauseTiming();
    void* p = fx.a_alloc.Alloc(64);
    (void)fx.client->Push(Buffer::FromApp(fx.a_alloc, p, 64));  // lossless sim link; benches measure the success path
    fx.a_alloc.Free(p);
    WireFrame frames[4];
    size_t n = 0;
    while (n == 0) {
      fx.clock.Advance(100);
      n = fx.b_nic.RxBurst(frames);
    }
    auto eth = EthernetHeader::Parse(frames[0]);
    // The NIC offloads checksums (none are written), so parse without verification.
    auto iph = Ipv4Header::Parse(std::span<const uint8_t>(frames[0]).subspan(14), false);
    auto l4 = std::span<const uint8_t>(frames[0]).subspan(14 + 20, iph->total_length - 20);
    state.ResumeTiming();

    fx.b_tcp.OnIpv4Packet(*iph, l4);  // <-- the timed fast path

    state.PauseTiming();
    fx.server->PopData();
    fx.b_sched.Poll();  // acker
    fx.a_eth.PollOnce();
    fx.a_sched.Poll();
    (void)eth;
    state.ResumeTiming();
  }
  state.SetLabel("receiver OnIpv4Packet only (paper: ~53ns/pkt)");
}
// Fixed iteration count: the timed section is tens of ns but each iteration's untimed segment
// production costs microseconds, so min_time-driven runs would take hours.
BENCHMARK(BM_TcpReceiveFastPath)->Iterations(20000);

// Inline transmit: the cost of Push carving+sending one MSS-sized segment (error-free path).
void BM_TcpInlinePush(benchmark::State& state) {
  TcpFixture fx;
  for (auto _ : state) {
    const uint64_t target = fx.server->conn_stats().bytes_received + 1400;
    void* p = fx.a_alloc.Alloc(1400);
    (void)fx.client->Push(Buffer::FromApp(fx.a_alloc, p, 1400));  // lossless sim link; benches measure the success path
    fx.a_alloc.Free(p);
    state.PauseTiming();
    while (fx.server->conn_stats().bytes_received < target) {
      fx.Step();
    }
    while (fx.server->HasReadyData()) {
      fx.server->PopData();
    }
    // Drain acks back to the sender.
    for (int i = 0; i < 4; i++) {
      fx.Step();
    }
    state.ResumeTiming();
  }
  state.SetLabel("inline run-to-completion push, 1400B");
}
BENCHMARK(BM_TcpInlinePush);

// Sustained sub-MSS sender under backlog: 64 pushes of 512 B against a window pinned below
// the burst, so the send window binds and a queue of sub-MSS views forms — the case the
// batching datapath targets. arg 0 = batching off (one segment per Push, immediate acks: the
// pre-batching datapath), arg 1 = batching on (MSS coalescing + RFC 1122 delayed acks).
// Read the UserCounters, not the time column: batching cuts wire frames roughly in half
// (data_segs/burst, ack_frames/burst). The time column is inflated for the batched arm by
// virtual-clock idle-stepping while the receiver holds acks against the artificially pinned
// window — the classic delayed-ack stall, which Cubic's real (growing) window avoids; fig8
// measures the realistic end-to-end effect.
void BM_TcpSmallMsgBurst(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  TcpConfig cfg;
  cfg.coalesce_segments = batched;
  cfg.delayed_acks = batched;
  // Pin the window below the burst size (both arms identically) so the send window binds and
  // a queue of sub-MSS views forms — with Cubic, steady-state cwnd outgrows any fixed burst
  // and the inline run-to-completion push would mask the coalescer entirely.
  cfg.congestion = CongestionAlgorithm::kFixedWindow;
  cfg.fixed_window_bytes = 8 * 1024;
  TcpFixture fx(cfg);
  constexpr size_t kMsgs = 64;
  constexpr size_t kMsgBytes = 512;
  for (auto _ : state) {
    const uint64_t target = fx.server->conn_stats().bytes_received + kMsgs * kMsgBytes;
    for (size_t i = 0; i < kMsgs; i++) {
      void* p = fx.a_alloc.Alloc(kMsgBytes);
      (void)fx.client->Push(Buffer::FromApp(fx.a_alloc, p, kMsgBytes));  // lossless sim link; benches measure the success path
      fx.a_alloc.Free(p);
    }
    while (fx.server->conn_stats().bytes_received < target) {
      fx.Step();
    }
    while (fx.server->HasReadyData()) {
      fx.server->PopData();
    }
    for (int i = 0; i < 4; i++) {
      fx.Step();  // drain acks so the next burst starts window-open
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kMsgs));
  const double bursts = static_cast<double>(state.iterations());
  state.counters["data_segs/burst"] =
      bursts == 0 ? 0 : static_cast<double>(fx.client->conn_stats().segments_sent) / bursts;
  state.counters["ack_frames/burst"] =
      bursts == 0 ? 0 : static_cast<double>(fx.client->conn_stats().segments_received) / bursts;
  state.counters["coalesced/burst"] =
      bursts == 0 ? 0 : static_cast<double>(fx.client->conn_stats().coalesced_segments) / bursts;
  state.SetLabel(batched ? "coalescing+delayed acks (default)" : "batching off (ablation)");
}
BENCHMARK(BM_TcpSmallMsgBurst)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// --quick perf smoke for ctest: sustained in-order segment rounds for a fixed wall-time
// budget, measured in TCP segments processed per second (data + acks, client's view).
// Fails (exit 1) only if throughput regresses more than 2x below the checked-in floor, so
// machine-to-machine variance doesn't flake CI while order-of-magnitude datapath regressions
// (e.g. an accidental O(n) scan per segment) are caught.
int RunQuickPerfSmoke() {
  // ~1/3 of the rate observed on the reference dev container (1.5M segs/s, debug build, one
  // 2.1 GHz core — see EXPERIMENTS.md); the gate is floor/2, so only a >6x slowdown trips it.
  constexpr double kSegmentsPerSecFloor = 500000.0;
  TcpFixture fx;
  auto round = [&fx] {
    void* p = fx.a_alloc.Alloc(64);
    (void)fx.client->Push(Buffer::FromApp(fx.a_alloc, p, 64));  // lossless sim link; benches measure the success path
    fx.a_alloc.Free(p);
    while (!fx.server->HasReadyData()) {
      fx.Step();
    }
    while (fx.server->HasReadyData()) {
      fx.server->PopData();
    }
    fx.Step();  // let acks drain so windows never bind
  };
  for (int i = 0; i < 256; i++) {
    round();  // warmup: ARP, cwnd growth, allocator pools
  }
  const uint64_t segs_before =
      fx.client->conn_stats().segments_sent + fx.client->conn_stats().segments_received;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (int i = 0; i < 512; i++) {
      round();
    }
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  } while (elapsed < 0.5);
  const uint64_t segs =
      fx.client->conn_stats().segments_sent + fx.client->conn_stats().segments_received - segs_before;
  const double pps = static_cast<double>(segs) / elapsed;
  std::printf("perf-smoke: %.0f TCP segments/sec (floor %.0f, gate = floor/2 = %.0f)\n", pps,
              kSegmentsPerSecFloor, kSegmentsPerSecFloor / 2);
  if (pps < kSegmentsPerSecFloor / 2) {
    std::fprintf(stderr,
                 "perf-smoke FAILED: %.0f segments/sec is >2x below the checked-in floor %.0f\n",
                 pps, kSegmentsPerSecFloor);
    return 1;
  }
  std::printf("perf-smoke OK\n");
  return 0;
}

}  // namespace
}  // namespace demi

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      return demi::RunQuickPerfSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
