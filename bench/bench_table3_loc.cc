// Table 3 reproduction: lines of code for the POSIX and Demikernel (PDPIX) versions of each
// µs-scale application.
//
// Paper result (their apps): echo 328 POSIX vs 291 Demikernel; UDP relay 1731 vs 2076; Redis
// 52954 vs 54332; TxnStore 13430 vs 12610 — i.e., porting to PDPIX costs roughly nothing in
// code size. We count the analogous split in this repository's app sources at build time:
// functions/classes implementing the POSIX variant vs the PDPIX variant of the same app.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef DEMI_SOURCE_DIR
#define DEMI_SOURCE_DIR "."
#endif

namespace {

struct Span {
  const char* begin_marker;  // first line of the variant's implementation
  const char* end_marker;    // line that ends it (exclusive)
};

// Counts non-blank lines between two marker substrings in a file (end may be null = EOF).
int CountRegion(const std::string& path, const char* begin, const char* end) {
  std::ifstream in(path);
  if (!in) {
    return -1;
  }
  std::string line;
  bool active = false;
  int count = 0;
  while (std::getline(in, line)) {
    if (!active && line.find(begin) != std::string::npos) {
      active = true;
    }
    if (active && end != nullptr && line.find(end) != std::string::npos) {
      break;
    }
    if (active && line.find_first_not_of(" \t") != std::string::npos) {
      count++;
    }
  }
  return active ? count : -1;
}

}  // namespace

int main() {
  const std::string src = std::string(DEMI_SOURCE_DIR) + "/src/apps/";
  std::printf("\n=== Table 3: LoC for POSIX vs Demikernel app versions ===\n");
  std::printf("echo 328/291, relay 1731/2076, Redis 52954/54332, TxnStore 13430/12610 — "
              "porting costs ~nothing\n");
  std::printf("%-14s %14s %18s\n", "app", "POSIX LoC", "Demikernel LoC");

  struct Entry {
    const char* name;
    std::string file;
    Span posix;
    Span pdpix;
  };
  const Entry entries[] = {
      {"echo", src + "echo.cc",
       {"void RunPosixEchoServer", nullptr},
       {"EchoServerApp::EchoServerApp", "// --- POSIX variants"}},
      {"udp relay", src + "udp_relay.cc",
       {"void RunPosixUdpRelay", "RelayLoadResult RunRelayLoadGenerator"},
       {"UdpRelayApp::UdpRelayApp", "void RunPosixUdpRelay"}},
      {"minikv", src + "minikv.cc",
       {"void RunPosixMiniKvServer", nullptr},
       {"struct MiniKvServerApp::Impl", "// --- POSIX variants"}},
      {"txnstore", src + "txnstore.cc",
       {"YcsbResult RunPosixYcsbFClient", "// --- Custom raw-RDMA"},
       {"YcsbResult RunYcsbFClient", "// --- POSIX YCSB client"}},
  };
  for (const Entry& e : entries) {
    const int posix = CountRegion(e.file, e.posix.begin_marker, e.posix.end_marker);
    const int pdpix = CountRegion(e.file, e.pdpix.begin_marker, e.pdpix.end_marker);
    if (posix < 0 || pdpix < 0) {
      std::printf("%-14s %14s %18s  (source not found at %s)\n", e.name, "?", "?",
                  e.file.c_str());
      continue;
    }
    std::printf("%-14s %14d %18d\n", e.name, posix, pdpix);
  }
  std::printf("(counted from this repo's app sources; both variants share the protocol and "
              "workload code, mirroring the paper's methodology)\n");
  return 0;
}
