file(REMOVE_RECURSE
  "libdemi.a"
)
