#include "bench/bench_common.h"

#include <unistd.h>

#include <atomic>
#include <cstring>

#include "src/common/logging.h"

namespace demi {
namespace bench {

uint16_t UniquePort() {
  static std::atomic<uint16_t> next{
      static_cast<uint16_t>(22000 + (::getpid() % 997) * 37 % 20000)};
  return next++;
}

EchoClientResult DuetEcho(const EchoSetup& setup, size_t message_size, uint64_t iterations) {
  EchoServerOptions sopts{setup.server_addr, setup.type};
  sopts.log_to_disk = setup.log_to_disk;
  EchoServerApp app(setup.server_os, sopts);
  setup.client_os.SetExternalPump([&] {
    setup.server_os.PollOnce();
    app.Pump();
  });

  EchoClientOptions copts;
  copts.server = setup.server_addr;
  copts.type = setup.type;
  copts.message_size = message_size;
  copts.iterations = iterations;
  copts.warmup = std::min<uint64_t>(iterations / 10 + 1, 200);
  auto result = RunEchoClient(setup.client_os, copts);
  setup.client_os.SetExternalPump(nullptr);
  return result;
}

WindowedEchoResult DuetWindowedEcho(const EchoSetup& setup, size_t message_size, size_t window,
                                    uint64_t ops) {
  WindowedEchoResult result;
  EchoServerOptions sopts{setup.server_addr, setup.type};
  EchoServerApp app(setup.server_os, sopts);
  LibOS& os = setup.client_os;
  os.SetExternalPump([&] {
    setup.server_os.PollOnce();
    app.Pump();
  });

  auto sock = os.Socket(setup.type);
  DEMI_CHECK(sock.ok());
  auto connect_qt = os.Connect(*sock, setup.server_addr);
  DEMI_CHECK(connect_qt.ok());
  auto conn_r = os.Wait(*connect_qt, 5 * kSecond);
  DEMI_CHECK(conn_r.ok() && conn_r->status == Status::kOk);

  Clock& clock = os.clock();
  std::deque<TimeNs> send_times;  // FIFO: replies come back in order on a stream
  uint64_t sent = 0;
  uint64_t completed = 0;
  size_t partial_bytes = 0;
  const TimeNs start = clock.Now();

  auto send_one = [&] {
    void* buf = os.DmaMalloc(message_size);
    std::memset(buf, static_cast<int>(sent & 0xFF), message_size);
    auto push = os.Push(*sock, Sgarray::Of(buf, static_cast<uint32_t>(message_size)));
    os.DmaFree(buf);
    DEMI_CHECK(push.ok());
    send_times.push_back(clock.Now());
    sent++;
  };

  while (completed < ops) {
    while (sent < ops && sent - completed < window) {
      send_one();
    }
    auto pop = os.Pop(*sock);
    DEMI_CHECK(pop.ok());
    auto r = os.Wait(*pop, 10 * kSecond);
    if (!r.ok() || r->status != Status::kOk) {
      break;
    }
    partial_bytes += r->sga.TotalBytes();
    os.FreeSga(r->sga);
    // A stream may coalesce or split replies; count completions by whole messages.
    while (partial_bytes >= message_size) {
      partial_bytes -= message_size;
      completed++;
      if (!send_times.empty()) {
        result.latency.Record(clock.Now() - send_times.front());
        send_times.pop_front();
      }
    }
  }
  result.completed = completed;
  result.elapsed = clock.Now() - start;
  os.Close(*sock);
  os.SetExternalPump(nullptr);
  return result;
}

void DumpMetrics(const char* label, LibOS& os) {
  std::printf("\n--- metrics: %s ---\n", label);
  const std::string text = os.metrics().ExportText();
  std::fwrite(text.data(), 1, text.size(), stdout);
}

size_t ExportTraceJson(LibOS& os, const std::string& path) {
  Tracer& tracer = os.tracer();
  if (tracer.size() == 0) {
    return 0;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return 0;
  }
  const std::string json = tracer.ExportChromeJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return tracer.size();
}

void PrintHeader(const char* title, const char* paper_note, bool latency_columns) {
  std::printf("\n=== %s ===\n", title);
  if (paper_note != nullptr && paper_note[0] != '\0') {
    std::printf("%s\n", paper_note);
  }
  if (latency_columns) {
    std::printf("%-28s %12s %12s %12s %12s  %s\n", "system", "mean(us)", "p50(us)", "p99(us)",
                "p99.9(us)", "note");
  }
}

void PrintLatencyRow(const std::string& name, const Histogram& h, const char* note) {
  std::printf("%-28s %12.2f %12.2f %12.2f %12.2f  %s\n", name.c_str(), h.Mean() / 1e3,
              static_cast<double>(h.P50()) / 1e3, static_cast<double>(h.P99()) / 1e3,
              static_cast<double>(h.P999()) / 1e3, note);
}

void PrintThroughputRow(const std::string& name, double value, const char* unit,
                        const char* note) {
  std::printf("%-28s %12.2f %-10s  %s\n", name.c_str(), value, unit, note);
}

}  // namespace bench
}  // namespace demi
