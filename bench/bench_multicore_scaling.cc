// Multicore scaling (paper §7, Fig. 9 shape): echo and miniKV closed-loop throughput as the
// shard count rises 1 → 2 → 4 → 8.
//
// Each point builds a ShardGroup (N shared-nothing Catnip workers over one N-queue RSS NIC)
// and drives it with one client thread per worker, each client a full Catnip stack on its own
// single-queue NIC. The paper's claim is near-linear scaling because nothing on the datapath
// is shared; here the fabric's per-queue delivery locks are the only cross-core touch point,
// so the interesting outputs are Gbps/Mops per worker count and the efficiency column.
//
// `--quick` is the perf_smoke_multicore ctest gate: workers {1,2}, asserting 2-worker
// throughput >= 1.5x 1-worker. The gate needs real parallelism to mean anything, so it SKIPS
// (exit 0) on hosts with fewer than 4 hardware threads (2 workers + 2 client threads).

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/apps/minikv.h"
#include "src/core/shard_group.h"

namespace demi {
namespace bench {
namespace {

constexpr size_t kMsgSize = 64;
constexpr size_t kWindow = 16;

Ipv4Addr ClientIp(size_t i) { return Ipv4Addr::FromOctets(10, 0, 1, static_cast<uint8_t>(i + 1)); }
MacAddr ClientMac(size_t i) { return MacAddr{0xB0 + static_cast<uint64_t>(i)}; }

ShardGroup::Options GroupOptions(size_t workers) {
  ShardGroup::Options opts;
  opts.num_workers = workers;
  opts.base = Catnip::Config{kServerMac, kServerIp, TcpConfig{}, nullptr};
  for (size_t i = 0; i < workers; i++) {
    opts.static_arp.emplace_back(ClientIp(i), ClientMac(i));
  }
  return opts;
}

std::unique_ptr<Catnip> MakeClient(SimNetwork& net, Clock& clock, size_t i) {
  Catnip::Config cfg{ClientMac(i), ClientIp(i), TcpConfig{}, nullptr};
  auto os = std::make_unique<Catnip>(net, cfg, clock);
  os->ethernet().arp().Insert(kServerIp, kServerMac);
  return os;
}

// Windowed closed-loop echo on the caller's thread: keeps `window` messages in flight until
// `ops` full echoes complete. Returns echoed ops (0 on connection failure).
uint64_t WindowedEchoClient(Catnip& os, SocketAddress server, uint64_t ops, size_t window) {
  auto sock = os.Socket(SocketType::kStream);
  if (!sock.ok()) {
    return 0;
  }
  auto cqt = os.Connect(*sock, server);
  if (!cqt.ok()) {
    return 0;
  }
  auto cr = os.Wait(*cqt, 10 * kSecond);
  if (!cr.ok() || cr->status != Status::kOk) {
    return 0;
  }

  std::vector<uint8_t> payload(kMsgSize, 0x5A);
  const uint64_t total_bytes = ops * kMsgSize;
  uint64_t tx_bytes = 0;
  uint64_t rx_bytes = 0;
  std::vector<QToken> pushes;
  auto pop = os.Pop(*sock);
  if (!pop.ok()) {
    return 0;
  }
  QToken pop_qt = *pop;

  while (rx_bytes < total_bytes) {
    os.PollOnce();
    bool progressed = false;
    for (size_t i = 0; i < pushes.size();) {
      if (os.IsDone(pushes[i])) {
        auto r = os.TryTake(pushes[i]);
        if (!r.ok() || r->status != Status::kOk) {
          return rx_bytes / kMsgSize;
        }
        pushes.erase(pushes.begin() + static_cast<ptrdiff_t>(i));
        progressed = true;
      } else {
        i++;
      }
    }
    while (tx_bytes < total_bytes && tx_bytes - rx_bytes < window * kMsgSize) {
      auto qt = os.Push(*sock, Sgarray::Of(payload.data(), kMsgSize));
      if (!qt.ok()) {
        break;
      }
      pushes.push_back(*qt);
      tx_bytes += kMsgSize;
      progressed = true;
    }
    if (os.IsDone(pop_qt)) {
      auto r = os.TryTake(pop_qt);
      if (!r.ok() || r->status != Status::kOk) {
        return rx_bytes / kMsgSize;
      }
      rx_bytes += r->sga.TotalBytes();
      os.FreeSga(r->sga);
      auto next = os.Pop(*sock);
      if (!next.ok()) {
        return rx_bytes / kMsgSize;
      }
      pop_qt = *next;
      progressed = true;
    }
    if (!progressed) {
      // Load generator, not datapath: yielding when the window is parked lets the shard
      // workers run on oversubscribed hosts. On dedicated client cores this almost never
      // fires — the window keeps the loop busy.
      std::this_thread::yield();
    }
  }
  (void)os.Close(*sock);
  return ops;
}

struct ScalingPoint {
  size_t workers = 0;
  uint64_t completed = 0;
  DurationNs elapsed = 0;
  double Mops() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(completed) * static_cast<double>(kSecond) /
                              static_cast<double>(elapsed) / 1e6;
  }
  double Gbps(size_t msg_size) const {
    return Mops() * 1e6 * static_cast<double>(msg_size) * 8.0 / 1e9;
  }
};

// One echo scaling point: N shard workers served by N client threads.
ScalingPoint RunEchoScaling(size_t workers, uint64_t ops_per_client) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/1);
  ShardGroup group(net, clock, GroupOptions(workers));
  const SocketAddress server_addr{kServerIp, UniquePort()};
  StartShardedEchoServer(group, EchoServerOptions{server_addr});

  std::vector<uint64_t> completed(workers, 0);
  const TimeNs start = clock.Now();
  std::vector<std::thread> clients;
  clients.reserve(workers);
  for (size_t i = 0; i < workers; i++) {
    clients.emplace_back([&, i] {
      auto os = MakeClient(net, clock, i);
      completed[i] = WindowedEchoClient(*os, server_addr, ops_per_client, kWindow);
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  ScalingPoint p{workers, 0, clock.Now() - start};
  for (uint64_t c : completed) {
    p.completed += c;
  }
  group.RequestStop();
  group.Join();
  return p;
}

// One miniKV scaling point: each client thread runs the pipelined KV bench against its shard.
ScalingPoint RunKvScaling(size_t workers, uint64_t ops_per_client) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/2);
  ShardGroup group(net, clock, GroupOptions(workers));
  const SocketAddress server_addr{kServerIp, UniquePort()};
  StartShardedMiniKvServer(group, MiniKvOptions{server_addr});

  std::vector<uint64_t> completed(workers, 0);
  const TimeNs start = clock.Now();
  std::vector<std::thread> clients;
  clients.reserve(workers);
  for (size_t i = 0; i < workers; i++) {
    clients.emplace_back([&, i] {
      auto os = MakeClient(net, clock, i);
      KvBenchOptions opts;
      opts.server = server_addr;
      opts.num_keys = 1024;
      opts.value_size = kMsgSize;
      opts.operations = ops_per_client;
      opts.pipeline = kWindow;
      opts.seed = 1 + i;
      completed[i] = RunKvBenchClient(*os, opts).completed;
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  ScalingPoint p{workers, 0, clock.Now() - start};
  for (uint64_t c : completed) {
    p.completed += c;
  }
  group.RequestStop();
  group.Join();
  return p;
}

void PrintScalingTable(const char* title, const std::vector<ScalingPoint>& points) {
  std::printf("\n%s:\n", title);
  std::printf("  %8s %12s %10s %12s\n", "workers", "Mops/s", "Gbps", "efficiency");
  const double base = points.empty() ? 0.0 : points[0].Mops();
  for (const ScalingPoint& p : points) {
    const double eff =
        base == 0.0 ? 0.0 : p.Mops() / (base * static_cast<double>(p.workers));
    std::printf("  %8zu %12.3f %10.3f %11.0f%%\n", p.workers, p.Mops(), p.Gbps(kMsgSize),
                eff * 100.0);
  }
}

int RunQuickGate() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 4) {
    // 2 shard workers + 2 client threads need 4 hardware threads to show real scaling; on
    // smaller hosts the oversubscribed numbers would gate on scheduler noise.
    std::printf("perf-smoke SKIPPED: %u hardware threads (< 4); scaling gate needs real cores\n",
                hw);
    return 0;
  }
  constexpr uint64_t kQuickOps = 20'000;
  const ScalingPoint one = RunEchoScaling(1, kQuickOps);
  const ScalingPoint two = RunEchoScaling(2, kQuickOps);
  PrintScalingTable("echo 64 B scaling (quick)", {one, two});
  if (one.completed != kQuickOps || two.completed != 2 * kQuickOps) {
    std::fprintf(stderr, "perf-smoke FAILED: clients completed %llu/%llu of their ops\n",
                 static_cast<unsigned long long>(one.completed),
                 static_cast<unsigned long long>(two.completed));
    return 1;
  }
  const double speedup = one.Mops() == 0.0 ? 0.0 : two.Mops() / one.Mops();
  if (speedup < 1.5) {
    std::fprintf(stderr,
                 "perf-smoke FAILED: 2-worker throughput only %.2fx the 1-worker run "
                 "(gate: >= 1.5x)\n",
                 speedup);
    return 1;
  }
  std::printf("perf-smoke OK: 2 workers = %.2fx of 1 worker\n", speedup);
  return 0;
}

void Main() {
  PrintHeader("Multicore scaling: shared-nothing shards over RSS (paper Fig. 9 shape)",
              "near-linear scaling; the only shared state is the fabric's per-queue "
              "delivery locks",
              /*latency_columns=*/false);
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("host hardware threads: %u%s\n", hw,
              hw < 8 ? " (points beyond the core count oversubscribe and flatten)" : "");
  std::fflush(stdout);

  // Per-client op count; override with DEMI_SCALING_OPS on slow/small hosts.
  uint64_t ops = 50'000;
  if (const char* o = std::getenv("DEMI_SCALING_OPS")) {
    const uint64_t v = std::strtoull(o, nullptr, 10);
    if (v > 0) {
      ops = v;
    }
  }

  std::vector<ScalingPoint> echo;
  for (size_t workers : {1, 2, 4, 8}) {
    echo.push_back(RunEchoScaling(workers, ops));
    std::fprintf(stderr, "echo %zu workers done (%.3f Mops/s)\n", workers, echo.back().Mops());
  }
  PrintScalingTable("echo 64 B closed loop (window 16)", echo);
  std::fflush(stdout);

  const uint64_t kv_ops = ops * 3 / 5;
  std::vector<ScalingPoint> kv;
  for (size_t workers : {1, 2, 4, 8}) {
    kv.push_back(RunKvScaling(workers, kv_ops));
    std::fprintf(stderr, "miniKV %zu workers done (%.3f Mops/s)\n", workers, kv.back().Mops());
  }
  PrintScalingTable("miniKV 64 B values, pipeline 16 (SET+GET mix)", kv);
}

}  // namespace
}  // namespace bench
}  // namespace demi

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      return demi::bench::RunQuickGate();
    }
  }
  demi::bench::Main();
  return 0;
}
