// §5.4 microbenchmarks: the coroutine scheduler.
//
// Paper claims: a coroutine context switch (yield to an empty coroutine and find the next
// runnable one) costs ~12 cycles; the waker-block design lets the scheduler skip thousands of
// blocked coroutines in nanoseconds (Lemire tzcnt iteration), which plain polling cannot.
// These google-benchmark timings substantiate both: Yield/switch in the low nanoseconds, and
// Poll() over mostly-blocked fiber populations staying flat as the population grows.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/runtime/event.h"
#include "src/runtime/scheduler.h"

namespace demi {
namespace {

// Cost of one fiber resume+yield round: the paper's "context switch between an empty yielding
// coroutine and find another runnable coroutine".
void BM_YieldContextSwitch(benchmark::State& state) {
  VirtualClock clock;
  Scheduler sched(clock);
  bool stop = false;
  sched.Spawn([](bool* halt) -> Task<void> {
    while (!*halt) {
      co_await Scheduler::Yield{};
    }
  }(&stop));
  for (auto _ : state) {
    sched.Poll();  // one resume of the single runnable fiber + one scan
  }
  stop = true;
  sched.Poll();
}
BENCHMARK(BM_YieldContextSwitch);

// Two runnable fibers ping-ponging: measures switch + handoff.
void BM_TwoFiberPingPong(benchmark::State& state) {
  VirtualClock clock;
  Scheduler sched(clock);
  bool stop = false;
  for (int i = 0; i < 2; i++) {
    sched.Spawn([](bool* halt) -> Task<void> {
      while (!*halt) {
        co_await Scheduler::Yield{};
      }
    }(&stop));
  }
  for (auto _ : state) {
    sched.Poll();
  }
  stop = true;
  sched.Poll();
}
BENCHMARK(BM_TwoFiberPingPong);

// The headline scaling result: Poll() with N fibers where all but one are BLOCKED. The waker
// bitmap scan must keep this near-constant — this is why Demikernel coroutines are blockable
// rather than polled (§3.3).
void BM_PollWithBlockedFibers(benchmark::State& state) {
  VirtualClock clock;
  Scheduler sched(clock);
  const int n = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<Event>> events;
  bool stop = false;
  for (int i = 0; i < n; i++) {
    events.push_back(std::make_unique<Event>());
    sched.Spawn([](Event* e) -> Task<void> {
      co_await e->Wait();  // blocks forever
    }(events.back().get()));
  }
  sched.Poll();  // everyone blocks
  sched.Spawn([](bool* halt) -> Task<void> {
    while (!*halt) {
      co_await Scheduler::Yield{};
    }
  }(&stop));
  for (auto _ : state) {
    sched.Poll();  // must skip n blocked fibers and run 1
  }
  state.SetLabel(std::to_string(n) + " blocked fibers skipped per poll");
  stop = true;
  sched.Poll();
}
BENCHMARK(BM_PollWithBlockedFibers)->Arg(1)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

// Ablation: the same population but every fiber RUNNABLE (the "traditional polling" model the
// paper rejects) — cost grows linearly with N, unlike the blocked case.
void BM_PollWithRunnableFibers(benchmark::State& state) {
  VirtualClock clock;
  Scheduler sched(clock);
  const int n = static_cast<int>(state.range(0));
  bool stop = false;
  for (int i = 0; i < n; i++) {
    sched.Spawn([](bool* halt) -> Task<void> {
      while (!*halt) {
        co_await Scheduler::Yield{};
      }
    }(&stop));
  }
  for (auto _ : state) {
    sched.Poll();
  }
  state.SetItemsProcessed(state.iterations() * n);
  stop = true;
  sched.Poll();
}
BENCHMARK(BM_PollWithRunnableFibers)->Arg(1)->Arg(64)->Arg(1024);

// Wake-then-run latency: event notify -> fiber resumed (the fast path's unblocking step).
void BM_EventWakeToRun(benchmark::State& state) {
  VirtualClock clock;
  Scheduler sched(clock);
  Event event;
  uint64_t counter = 0;
  bool stop = false;
  sched.Spawn([](Event* e, uint64_t* count_out, bool* halt) -> Task<void> {
    while (!*halt) {
      co_await e->Wait();
      (*count_out)++;
    }
  }(&event, &counter, &stop));
  sched.Poll();
  for (auto _ : state) {
    event.Notify();
    sched.Poll();
  }
  benchmark::DoNotOptimize(counter);
  stop = true;
  event.Notify();
  sched.Poll();
}
BENCHMARK(BM_EventWakeToRun);

// Fiber spawn + run-to-completion + teardown (pop/accept ops allocate one of these per token).
void BM_SpawnRunTeardown(benchmark::State& state) {
  VirtualClock clock;
  Scheduler sched(clock);
  for (auto _ : state) {
    sched.Spawn([]() -> Task<void> { co_return; }());
    sched.Poll();
  }
}
BENCHMARK(BM_SpawnRunTeardown);

// Timer arming + firing through the scheduler's timer heap.
void BM_TimerFire(benchmark::State& state) {
  VirtualClock clock;
  Scheduler sched(clock);
  Event dummy;
  bool stop = false;
  sched.Spawn([](Scheduler* s, bool* halt) -> Task<void> {
    while (!*halt) {
      co_await s->Sleep(10);
    }
  }(&sched, &stop));
  sched.Poll();
  for (auto _ : state) {
    clock.Advance(10);
    sched.Poll();
  }
  stop = true;
  clock.Advance(10);
  sched.Poll();
}
BENCHMARK(BM_TimerFire);

}  // namespace
}  // namespace demi
