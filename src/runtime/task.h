// Task<T>: the lazy coroutine type Demikernel fibers are written in.
//
// Mirrors the role of Rust async fns in the paper's libOSes: the compiler turns imperative
// protocol code (e.g., a TCP handshake) into a state machine; awaiting a sub-task is a symmetric
// transfer (a function call, not a stack switch), which is what keeps "context switches" at
// ~a dozen cycles (§5.1, §5.4).
//
// Ownership: a Task owns its coroutine frame. Awaiting it keeps it alive in the awaiting frame;
// spawning it on a Scheduler transfers frame ownership to the scheduler.

#ifndef SRC_RUNTIME_TASK_H_
#define SRC_RUNTIME_TASK_H_

#include <coroutine>
#include <cstdlib>
#include <utility>

#include "src/common/logging.h"

namespace demi {

template <typename T>
class Task;

namespace internal {

struct PromiseBase {
  std::coroutine_handle<> continuation;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      // Symmetric transfer back to whoever awaited us; top-level fibers have no continuation
      // and return control to the scheduler's resume() call.
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept {
    // The datapath is exception-free by design; an escaping exception is a bug.
    DEMI_CHECK_MSG(false, "unhandled exception escaped a demi::Task");
  }
};

template <typename T>
struct Promise : PromiseBase {
  alignas(T) unsigned char value[sizeof(T)];
  bool has_value = false;

  Task<T> get_return_object();
  void return_value(T v) {
    new (&value) T(std::move(v));
    has_value = true;
  }
  T TakeValue() {
    DEMI_CHECK(has_value);
    T* p = std::launder(reinterpret_cast<T*>(&value));
    T out = std::move(*p);
    p->~T();
    has_value = false;
    return out;
  }
  ~Promise() {
    if (has_value) {
      std::launder(reinterpret_cast<T*>(&value))->~T();
    }
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() {}
};

}  // namespace internal

template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = internal::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_.done(); }

  // Releases frame ownership to the caller (used by Scheduler::Spawn).
  Handle Release() { return std::exchange(handle_, {}); }

  // Awaiting a Task starts it (lazy) via symmetric transfer and resumes the awaiter on
  // completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      T await_resume() {
        if constexpr (!std::is_void_v<T>) {
          return handle.promise().TakeValue();
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace internal {

template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace internal

}  // namespace demi

#endif  // SRC_RUNTIME_TASK_H_
