// Figure 10 reproduction: TURN-style UDP relay, average and p99 forwarding latency.
//
// Paper result: Linux 27.6 µs avg / 25-ish p99; io_uring modestly better (24.4/24.9);
// Catnip 14-16 µs — an ~11 µs per-packet CPU saving that translates directly into relay-fleet
// cost. Substitutions: the io_uring variant is a batched recvmmsg/sendmmsg relay (liburing is
// unavailable offline), and the Catnip row uses a fabric-side generator (a kernel generator
// cannot reach the simulated NIC). Required shape: kernel < batched-kernel < Catnip, with the
// kernel rows dominated by syscall+wakeup costs.

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "src/apps/udp_relay.h"

namespace demi {
namespace bench {
namespace {

constexpr uint64_t kPackets = 5000;
constexpr size_t kPacketSize = 64;

Histogram KernelRelay(bool batched) {
  std::atomic<bool> stop{false};
  const SocketAddress relay_addr = Loopback(UniquePort());
  const SocketAddress sink_addr = Loopback(UniquePort());
  std::atomic<bool> up{false};
  std::thread relay([&] {
    up = true;
    if (batched) {
      RunBatchedPosixUdpRelay(RelayOptions{relay_addr, sink_addr}, stop, nullptr);
    } else {
      RunPosixUdpRelay(RelayOptions{relay_addr, sink_addr}, stop, nullptr);
    }
  });
  while (!up) {
  }
  RelayLoadOptions load;
  load.relay = relay_addr;
  load.sink_bind = sink_addr;
  load.packet_size = kPacketSize;
  load.packets = kPackets;
  load.warmup = 200;
  auto result = RunPosixRelayLoadGenerator(load);
  stop = true;
  relay.join();
  return result.latency;
}

}  // namespace

void Main() {
  PrintHeader("Figure 10: UDP relay forwarding latency (avg and tail)",
              "Linux 27.6/24.9us, io_uring 25.8/24.4us, Catnip 14.9/13.9us — ~11us "
              "per-packet CPU saved");

  PrintLatencyRow("Linux (recvfrom/sendto)", KernelRelay(false), "2 syscalls per packet");
  PrintLatencyRow("Linux batched (mmsg)", KernelRelay(true), "io_uring stand-in: batched syscalls");

  {
    MonotonicClock clock;
    SimNetwork net(LinkConfig{}, 1);
    Catnip relay_os(net, Catnip::Config{kServerMac, kServerIp, TcpConfig{}, nullptr}, clock);
    Catnip gen_os(net, Catnip::Config{kClientMac, kClientIp, TcpConfig{}, nullptr}, clock);
    relay_os.ethernet().arp().Insert(kClientIp, kClientMac);
    gen_os.ethernet().arp().Insert(kServerIp, kServerMac);
    const SocketAddress relay_addr{kServerIp, 3478};
    const SocketAddress sink_addr{kClientIp, 9999};
    UdpRelayApp relay(relay_os, RelayOptions{relay_addr, sink_addr});
    gen_os.SetExternalPump([&] {
      relay_os.PollOnce();
      relay.Pump();
    });
    RelayLoadOptions load;
    load.relay = relay_addr;
    load.sink_bind = sink_addr;
    load.packet_size = kPacketSize;
    load.packets = kPackets;
    load.warmup = 200;
    auto result = RunRelayLoadGenerator(gen_os, load);
    PrintLatencyRow("Catnip (PDPIX relay)", result.latency, "zero-copy forward, no syscalls");
  }

  {
    // Catnap relay: the PDPIX relay application unchanged, over kernel sockets.
    CatnapPair pair;
    const SocketAddress relay_addr = Loopback(UniquePort());
    const SocketAddress sink_addr = Loopback(UniquePort());
    UdpRelayApp relay(*pair.server, RelayOptions{relay_addr, sink_addr});
    pair.client->SetExternalPump([&] {
      pair.server->PollOnce();
      relay.Pump();
    });
    RelayLoadOptions load;
    load.relay = relay_addr;
    load.sink_bind = sink_addr;
    load.packet_size = kPacketSize;
    load.packets = kPackets / 2;
    load.warmup = 100;
    auto result = RunRelayLoadGenerator(*pair.client, load);
    PrintLatencyRow("Catnap (PDPIX relay)", result.latency, "same app, kernel datapath");
  }
}

}  // namespace bench
}  // namespace demi

int main() {
  demi::bench::Main();
  return 0;
}
