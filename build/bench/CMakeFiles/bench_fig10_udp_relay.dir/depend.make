# Empty dependencies file for bench_fig10_udp_relay.
# This may be replaced when dependencies are built.
