#include "src/liboses/catnip.h"

#include <cstring>

#include "src/common/logging.h"

namespace demi {

Catnip::Catnip(SimNetwork& network, const Config& config, Clock& clock)
    : LibOS("catnip", clock, NullDmaRegistrar::Global()),
      owned_nic_(config.shared_nic != nullptr
                     ? nullptr
                     : std::make_unique<SimNic>(network, config.mac, clock,
                                                config.num_workers == 0 ? 1
                                                                        : config.num_workers)),
      nic_(config.shared_nic != nullptr ? *config.shared_nic : *owned_nic_),
      eth_(nic_, config.ip, config.checksum_offload, config.rx_burst_frames, config.queue_id),
      udp_(eth_, alloc_),
      tcp_(eth_, sched_, alloc_, clock, config.tcp) {
  alloc_.SetRegistrar(nic_.registrar());
  reap_interval_ = config.reap_interval;
  eth_.RegisterMetrics(metrics_);
  // Per-queue NIC view: each shard's registry reports only its own RSS queue pair, so an
  // aggregated rollup (ShardGroup::AggregateSnapshot) sums to the whole NIC.
  const size_t qid = config.queue_id;
  metrics_.RegisterGauge("nic.queue_id", "nic", "index", "RSS queue pair this shard polls")
      .Set(static_cast<int64_t>(qid));
  metrics_.RegisterCallback("nic.queue_rx_frames", "nic", "frames",
                            "Frames received on this shard's rx queue",
                            [this, qid] { return nic_.queue_stats(qid).rx_frames; });
  metrics_.RegisterCallback("nic.queue_rx_bytes", "nic", "bytes",
                            "Bytes received on this shard's rx queue",
                            [this, qid] { return nic_.queue_stats(qid).rx_bytes; });
  metrics_.RegisterCallback("nic.queue_tx_frames", "nic", "frames",
                            "Frames transmitted on this shard's tx queue",
                            [this, qid] { return nic_.queue_stats(qid).tx_frames; });
  metrics_.RegisterCallback("nic.queue_tx_bytes", "nic", "bytes",
                            "Bytes transmitted on this shard's tx queue",
                            [this, qid] { return nic_.queue_stats(qid).tx_bytes; });
  metrics_.RegisterCallback(
      "net.port_lock_contention", "net", "events",
      "Fabric deliveries that found an rx-queue lock held by another core",
      [this] { return nic_.network().GetStats().port_lock_contention; });
  eth_.SetTracer(&tracer_);
  udp_.RegisterMetrics(metrics_);
  tcp_.SetObservability(&metrics_, &tracer_);
  tcp_.SetTenantTable(&tenants_);
  if (config.disk != nullptr) {
    storage_ = std::make_unique<StorageQueueEngine>(*config.disk, sched_, alloc_, tokens_,
                                                   config.disk_partition, config.log_epoch);
    if (config.log_epoch == nullptr) {
      // Sole owner of the device: attach tracer and register the device-wide counters. In the
      // partitioned layout the device is shared across worker threads; its tracer ring is not
      // thread-safe and ShardGroup registers device metrics through shard 0's view instead.
      disk_ = config.disk;
      disk_->RegisterMetrics(metrics_);
      disk_->SetTracer(&tracer_);
    } else {
      config.disk->RegisterMetrics(metrics_);
    }
    if (config.recover_log) {
      const Status rs = storage_->log().Recover();
      DEMI_CHECK_MSG(rs == Status::kOk, "log partition recovery failed");
      DEMI_LOG_DEBUG("catnip: recovered log partition %u, tail=%llu",
                     storage_->log().partition().id,
                     static_cast<unsigned long long>(storage_->log().tail()));
    }
    storage_->log().RegisterMetrics(metrics_);
    metrics_.RegisterCallback("splice.ops", "splice", "ops",
                              "Completed splice operations",
                              [this] { return splice_stats_.ops; });
    metrics_.RegisterCallback("splice.active", "splice", "ops",
                              "Splice operations currently running",
                              [this] { return splice_stats_.active; });
    metrics_.RegisterCallback("splice.bytes", "splice", "bytes",
                              "Payload bytes moved end to end by splices",
                              [this] { return splice_stats_.bytes; });
    metrics_.RegisterCallback("splice.records", "splice", "records",
                              "Log records written or read on behalf of splices",
                              [this] { return splice_stats_.records; });
    metrics_.RegisterCallback("splice.bounce_bytes", "splice", "bytes",
                              "Payload bytes the log had to flatten instead of gather-DMA",
                              [this] { return storage_->log().stats().bounce_bytes; });
  }
  sched_.Spawn(FastPathFiber());
}

Catnip::~Catnip() {
  shutdown_ = true;
  if (disk_ != nullptr) {
    disk_->SetTracer(nullptr);  // the external device may outlive this libOS's tracer
  }
  // Destroy fiber frames first: they hold Buffers and connection references that must release
  // into a still-live heap (the base-class allocator outlives derived members but not fibers
  // destroyed by the base-class scheduler's own destructor).
  sched_.Shutdown();
  alloc_.UnregisterAll();
}

Catnip::QueueState* Catnip::Find(QueueDesc qd) {
  auto it = queues_.find(qd);
  return it == queues_.end() ? nullptr : &it->second;
}

void Catnip::OnTenantRegistered(TenantId tenant, const TenantConfig& config) {
  // Propagate the bandwidth policy to the NIC boundary: the TX scheduler enforces the token
  // bucket inline and arbitrates backlogged tenants by weighted DRR.
  eth_.tx_scheduler().Configure(tenant, config.tx_rate_bps, config.tx_burst_bytes,
                                config.tx_weight);
}

Status Catnip::SetQueueTenant(QueueDesc qd, TenantId tenant) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing) {
    return Status::kBadQueueDescriptor;
  }
  q->tenant = tenant;
  switch (q->kind) {
    case QKind::kTcpListener:
      q->listener->set_tenant(tenant);  // SYNs and accepted connections inherit it
      break;
    case QKind::kTcpConn:
      q->conn->set_tenant(tenant);
      break;
    case QKind::kUdp:
      q->udp->set_tenant(tenant);
      break;
    case QKind::kTcpUnbound:
    case QKind::kFile:
    case QKind::kMemory:
      break;  // applied when the queue becomes a listener/connection; files/memory charge qtokens only
  }
  return Status::kOk;
}

bool Catnip::ShedOp(TenantId tenant) {
  if (!tenants_.ShouldShed(tenant, tokens_.InflightForTenant(tenant))) {
    return false;
  }
  tenants_.CountOpShed(tenant);
  tracer_.Record(TraceEventType::kTenantOpShed, tenant, tokens_.InflightForTenant(tenant));
  return true;
}

Task<void> Catnip::FastPathFiber() {
  const uint32_t reap_interval = reap_interval_ == 0 ? 1024 : reap_interval_;
  uint32_t iterations = 0;
  while (!shutdown_) {
    eth_.PollOnce();
    if (storage_ != nullptr) {
      // Catnip×Cattree: round-robin the fast path between NIC and disk completions (§5.5).
      storage_->Poll();
    }
    // Deferred queue teardown: objects owning events are freed only once no blocked op
    // coroutine can still touch them.
    while (!deferred_close_.empty()) {
      const QueueDesc qd = deferred_close_.front();
      auto it = queues_.find(qd);
      if (it == queues_.end()) {
        deferred_close_.pop_front();
        continue;
      }
      if (it->second.waiters > 0) {
        break;  // retry next iteration
      }
      deferred_close_.pop_front();
      FinishClose(qd, it->second);
      queues_.erase(it);
    }
    if (++iterations % reap_interval == 0) {
      tcp_.Reap();
    }
    co_await Scheduler::Yield{};
  }
}

// --- Queue creation ---

Result<QueueDesc> Catnip::Socket(SocketType type) {
  const QueueDesc qd = NewQd();
  QueueState q;
  if (type == SocketType::kStream) {
    q.kind = QKind::kTcpUnbound;
  } else {
    auto sock = udp_.Bind(0);
    if (!sock.ok()) {
      return sock.error();
    }
    q.kind = QKind::kUdp;
    q.udp = *sock;
  }
  queues_[qd] = std::move(q);
  return qd;
}

Status Catnip::Bind(QueueDesc qd, SocketAddress local) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing) {
    return Status::kBadQueueDescriptor;
  }
  if (q->kind == QKind::kUdp) {
    // Rebind the ephemeral socket onto the requested port.
    auto sock = udp_.Bind(local.port);
    if (!sock.ok()) {
      return sock.error();
    }
    udp_.Close(q->udp);
    q->udp = *sock;
    return Status::kOk;
  }
  if (q->kind != QKind::kTcpUnbound) {
    return Status::kInvalidArgument;
  }
  q->bound = local;
  q->has_bound = true;
  return Status::kOk;
}

Status Catnip::Listen(QueueDesc qd, int backlog) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing) {
    return Status::kBadQueueDescriptor;
  }
  if (q->kind != QKind::kTcpUnbound || !q->has_bound) {
    return Status::kInvalidArgument;
  }
  auto listener = tcp_.Listen(q->bound.port, static_cast<size_t>(backlog));
  if (!listener.ok()) {
    return listener.error();
  }
  q->kind = QKind::kTcpListener;
  q->listener = *listener;
  q->listener->set_tenant(q->tenant);  // a pre-listen SetQueueTenant carries over
  return Status::kOk;
}

QueueDesc Catnip::InstallConnQueue(std::shared_ptr<TcpConnection> conn) {
  const QueueDesc qd = NewQd();
  QueueState q;
  q.kind = QKind::kTcpConn;
  q.tenant = conn->tenant();  // accepted connections inherit the listener's tenant
  q.conn = std::move(conn);
  queues_[qd] = std::move(q);
  return qd;
}

Result<QToken> Catnip::Accept(QueueDesc qd) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing || q->kind != QKind::kTcpListener) {
    return Status::kBadQueueDescriptor;
  }
  const QToken qt = tokens_.Allocate(OpCode::kAccept, qd, q->tenant);
  if (q->listener->HasPending()) {
    // Fast path: connection already established.
    auto conn = q->listener->Accept();
    QResult r;
    r.status = Status::kOk;
    r.new_qd = InstallConnQueue(conn);
    r.remote = conn->remote();
    CompleteToken(qt, r);
    return qt;
  }
  sched_.Spawn(AcceptOp(qd, qt));
  return qt;
}

Task<void> Catnip::AcceptOp(QueueDesc qd, QToken qt) {
  for (;;) {
    QueueState* q = Find(qd);
    if (q == nullptr || q->closing || q->kind != QKind::kTcpListener) {
      QResult r;
      r.status = Status::kCancelled;
      CompleteToken(qt, r);
      co_return;
    }
    if (q->listener->HasPending()) {
      auto conn = q->listener->Accept();
      QResult r;
      r.status = Status::kOk;
      r.new_qd = InstallConnQueue(conn);
      r.remote = conn->remote();
      CompleteToken(qt, r);
      co_return;
    }
    q->waiters++;
    co_await q->listener->acceptable().Wait();
    // Re-find: the map may have rehashed or the queue may be closing.
    QueueState* q2 = Find(qd);
    if (q2 != nullptr) {
      q2->waiters--;
    }
  }
}

Result<QToken> Catnip::Connect(QueueDesc qd, SocketAddress remote) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing) {
    return Status::kBadQueueDescriptor;
  }
  if (q->kind == QKind::kUdp) {
    // Connected-UDP: just set the default peer; completes immediately.
    q->udp_default_remote = remote;
    q->udp_connected = true;
    const QToken qt = tokens_.Allocate(OpCode::kConnect, qd, q->tenant);
    QResult r;
    r.status = Status::kOk;
    r.remote = remote;
    CompleteToken(qt, r);
    return qt;
  }
  if (q->kind != QKind::kTcpUnbound) {
    return Status::kAlreadyConnected;
  }
  auto conn = tcp_.Connect(remote);
  if (!conn.ok()) {
    return conn.error();
  }
  q->kind = QKind::kTcpConn;
  q->conn = *conn;
  q->conn->set_tenant(q->tenant);  // active opens charge the socket's tenant
  const QToken qt = tokens_.Allocate(OpCode::kConnect, qd, q->tenant);
  sched_.Spawn(ConnectOp(qd, qt, *conn));
  return qt;
}

Task<void> Catnip::ConnectOp(QueueDesc qd, QToken qt, std::shared_ptr<TcpConnection> conn) {
  while (conn->state() != TcpState::kEstablished && conn->state() != TcpState::kClosed) {
    co_await conn->established_event().Wait();
  }
  QResult r;
  r.status = conn->state() == TcpState::kEstablished ? Status::kOk : conn->error();
  if (r.status == Status::kOk) {
    r.remote = conn->remote();
  }
  CompleteToken(qt, r);
}

// --- Push ---

Result<QToken> Catnip::Push(QueueDesc qd, const Sgarray& sga) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing) {
    return Status::kBadQueueDescriptor;
  }
  if (ShedOp(q->tenant)) {
    return Status::kQueueFull;  // over the tenant's inflight watermark: shed at submission
  }
  switch (q->kind) {
    case QKind::kTcpConn: {
      // Inline, run-to-completion: the stack segments and transmits as far as windows allow
      // from within this call; the qtoken completes immediately since the stack now owns
      // (references) the buffers. The qtoken is allocated before pinning so DemiSan can name
      // it as each buffer's owner.
      const QToken qt = tokens_.Allocate(OpCode::kPush, qd, q->tenant);
      Status status = Status::kOk;
      for (uint32_t i = 0; i < sga.num_segs && status == Status::kOk; i++) {
        Buffer buf = Buffer::TryFromApp(alloc_, sga.segs[i].buf, sga.segs[i].len, q->tenant);
        if (!buf.valid()) {
          status = Status::kNoMemory;  // heap exhausted or tenant budget spent: ENOMEM
          if (q->tenant != kDefaultTenant) {
            tracer_.Record(TraceEventType::kTenantMemDeny, q->tenant, sga.segs[i].len);
          }
          break;
        }
        buf.NoteOwner(qd, qt);
        status = q->conn->Push(std::move(buf));
      }
      QResult r;
      r.status = status;
      CompleteToken(qt, r);
      return qt;
    }
    case QKind::kUdp: {
      if (!q->udp_connected) {
        return Status::kNotConnected;
      }
      return PushTo(qd, sga, q->udp_default_remote);
    }
    case QKind::kFile: {
      if (storage_ == nullptr) {
        return Status::kNotSupported;
      }
      const QToken qt = tokens_.Allocate(OpCode::kPush, qd, q->tenant);
      sched_.Spawn(storage_->PushOp(qt, sga));
      return qt;
    }
    case QKind::kMemory: {
      const QToken qt = tokens_.Allocate(OpCode::kPush, qd, q->tenant);
      // Copy into a libOS-owned buffer: the channel hands ownership to the popper.
      Buffer buf = Buffer::TryAllocate(alloc_, sga.TotalBytes(), q->tenant);
      QResult r;
      if (!buf.valid()) {
        r.status = Status::kNoMemory;
        if (q->tenant != kDefaultTenant) {
          tracer_.Record(TraceEventType::kTenantMemDeny, q->tenant, sga.TotalBytes());
        }
        CompleteToken(qt, r);
        return qt;
      }
      buf.NoteOwner(qd, qt);
      size_t off = 0;
      for (uint32_t i = 0; i < sga.num_segs; i++) {
        std::memcpy(buf.mutable_data() + off, sga.segs[i].buf, sga.segs[i].len);
        off += sga.segs[i].len;
      }
      q->mem->items.push_back(std::move(buf));
      q->mem->readable.Notify();
      r.status = Status::kOk;
      CompleteToken(qt, r);
      return qt;
    }
    default:
      return Status::kNotConnected;
  }
}

Result<QToken> Catnip::PushTo(QueueDesc qd, const Sgarray& sga, SocketAddress to) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing) {
    return Status::kBadQueueDescriptor;
  }
  if (q->kind != QKind::kUdp) {
    return Status::kNotSupported;
  }
  if (ShedOp(q->tenant)) {
    return Status::kQueueFull;
  }
  const QToken qt = tokens_.Allocate(OpCode::kPush, qd, q->tenant);
  Status status;
  if (sga.num_segs == 1) {
    // Zero-copy single segment.
    Buffer buf = Buffer::TryFromApp(alloc_, sga.segs[0].buf, sga.segs[0].len, q->tenant);
    if (!buf.valid()) {
      status = Status::kNoMemory;
      if (q->tenant != kDefaultTenant) {
        tracer_.Record(TraceEventType::kTenantMemDeny, q->tenant, sga.segs[0].len);
      }
    } else {
      buf.NoteOwner(qd, qt);
      if (buf.size() >= PoolAllocator::kZeroCopyThreshold) {
        buf.Rkey();
      }
      status = udp_.SendTo(*q->udp, to, buf);
    }
  } else {
    Buffer buf = Buffer::TryAllocate(alloc_, sga.TotalBytes(), q->tenant);
    if (!buf.valid()) {
      status = Status::kNoMemory;
      if (q->tenant != kDefaultTenant) {
        tracer_.Record(TraceEventType::kTenantMemDeny, q->tenant, sga.TotalBytes());
      }
    } else {
      buf.NoteOwner(qd, qt);
      size_t off = 0;
      for (uint32_t i = 0; i < sga.num_segs; i++) {
        std::memcpy(buf.mutable_data() + off, sga.segs[i].buf, sga.segs[i].len);
        off += sga.segs[i].len;
      }
      if (buf.size() >= PoolAllocator::kZeroCopyThreshold) {
        buf.Rkey();
      }
      status = udp_.SendTo(*q->udp, to, buf);
    }
  }
  QResult r;
  r.status = status;
  CompleteToken(qt, r);
  return qt;
}

// --- Pop ---

void Catnip::CompleteTcpPop(QToken qt, QueueDesc qd, TcpConnection& conn) {
  QResult r;
  r.status = Status::kOk;
  r.remote = conn.remote();
  // Drain up to a full scatter-gather array per pop: cuts per-segment qtoken/coroutine costs
  // for bulk streams while staying one op per message for request/response traffic.
  while (r.sga.num_segs < kSgaMaxSegments && conn.HasReadyData()) {
    auto data = conn.PopData();
    DEMI_CHECK(data.has_value());
    const uint32_t len = static_cast<uint32_t>(data->size());
    r.sga.segs[r.sga.num_segs++] = {data->ReleaseToApp(), len};
  }
  DEMI_CHECK(r.sga.num_segs > 0);
  CompleteToken(qt, r);
}

Result<QToken> Catnip::Pop(QueueDesc qd) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing) {
    return Status::kBadQueueDescriptor;
  }
  if (ShedOp(q->tenant)) {
    return Status::kQueueFull;  // over the tenant's inflight watermark: shed at submission
  }
  switch (q->kind) {
    case QKind::kTcpConn: {
      const QToken qt = tokens_.Allocate(OpCode::kPop, qd, q->tenant);
      if (q->conn->HasReadyData()) {
        CompleteTcpPop(qt, qd, *q->conn);  // fast path: data already waiting
      } else {
        sched_.Spawn(PopTcpOp(qd, qt, q->conn));
      }
      return qt;
    }
    case QKind::kUdp: {
      const QToken qt = tokens_.Allocate(OpCode::kPop, qd, q->tenant);
      if (q->udp->HasData()) {
        auto d = q->udp->PopDatagram();
        QResult r;
        r.status = Status::kOk;
        r.remote = d->src;
        r.sga = BufferToAppSga(std::move(d->payload));
        CompleteToken(qt, r);
      } else {
        sched_.Spawn(PopUdpOp(qd, qt));
      }
      return qt;
    }
    case QKind::kFile: {
      if (storage_ == nullptr) {
        return Status::kNotSupported;
      }
      const QToken qt = tokens_.Allocate(OpCode::kPop, qd, q->tenant);
      sched_.Spawn(storage_->PopOp(qt, &q->file_cursor));
      return qt;
    }
    case QKind::kMemory: {
      const QToken qt = tokens_.Allocate(OpCode::kPop, qd, q->tenant);
      sched_.Spawn(PopMemOp(qd, qt, q->mem));
      return qt;
    }
    default:
      return Status::kNotConnected;
  }
}

Task<void> Catnip::PopTcpOp(QueueDesc qd, QToken qt, std::shared_ptr<TcpConnection> conn) {
  for (;;) {
    if (conn->HasReadyData()) {
      CompleteTcpPop(qt, qd, *conn);
      co_return;
    }
    if (conn->EndOfStream()) {
      QResult r;
      r.status = Status::kEndOfFile;
      r.remote = conn->remote();
      CompleteToken(qt, r);
      co_return;
    }
    if (conn->state() == TcpState::kClosed) {
      QResult r;
      r.status = conn->error() == Status::kOk ? Status::kEndOfFile : conn->error();
      CompleteToken(qt, r);
      co_return;
    }
    co_await conn->readable().Wait();
  }
}

Task<void> Catnip::PopUdpOp(QueueDesc qd, QToken qt) {
  for (;;) {
    QueueState* q = Find(qd);
    if (q == nullptr || q->closing || q->kind != QKind::kUdp) {
      QResult r;
      r.status = Status::kCancelled;
      CompleteToken(qt, r);
      co_return;
    }
    if (q->udp->HasData()) {
      auto d = q->udp->PopDatagram();
      QResult r;
      r.status = Status::kOk;
      r.remote = d->src;
      r.sga = BufferToAppSga(std::move(d->payload));
      CompleteToken(qt, r);
      co_return;
    }
    q->waiters++;
    co_await q->udp->readable().Wait();
    QueueState* q2 = Find(qd);
    if (q2 != nullptr) {
      q2->waiters--;
    }
  }
}

Task<void> Catnip::PopMemOp(QueueDesc qd, QToken qt, std::shared_ptr<MemChannel> mem) {
  for (;;) {
    if (!mem->items.empty()) {
      Buffer buf = std::move(mem->items.front());
      mem->items.pop_front();
      QResult r;
      r.status = Status::kOk;
      r.sga = BufferToAppSga(std::move(buf));
      CompleteToken(qt, r);
      co_return;
    }
    if (mem->closed) {
      QResult r;
      r.status = Status::kEndOfFile;
      CompleteToken(qt, r);
      co_return;
    }
    co_await mem->readable.Wait();
  }
}

// --- Splice (docs/STORAGE.md) ---

Result<QToken> Catnip::Splice(QueueDesc src_qd, QueueDesc dst_qd) {
  QueueState* src = Find(src_qd);
  QueueState* dst = Find(dst_qd);
  if (src == nullptr || src->closing || dst == nullptr || dst->closing) {
    return Status::kBadQueueDescriptor;
  }
  if (storage_ == nullptr) {
    return Status::kNotSupported;  // splice needs the integrated Catnip×Cattree build
  }
  if (ShedOp(src->tenant)) {
    return Status::kQueueFull;
  }
  if (src->kind == QKind::kTcpConn && dst->kind == QKind::kFile) {
    const QToken qt = tokens_.Allocate(OpCode::kSplice, src_qd, src->tenant);
    tracer_.Record(TraceEventType::kSpliceStart, static_cast<uint32_t>(src_qd),
                   static_cast<uint64_t>(dst_qd));
    splice_stats_.active++;
    auto st = std::make_shared<SpliceState>();
    sched_.Spawn(SpliceAppendFiber(st));
    sched_.Spawn(SpliceNetToDiskOp(src_qd, qt, src->conn, std::move(st)));
    return qt;
  }
  if (src->kind == QKind::kFile && dst->kind == QKind::kTcpConn) {
    const QToken qt = tokens_.Allocate(OpCode::kSplice, src_qd, src->tenant);
    tracer_.Record(TraceEventType::kSpliceStart, static_cast<uint32_t>(src_qd),
                   static_cast<uint64_t>(dst_qd));
    splice_stats_.active++;
    sched_.Spawn(SpliceDiskToNetOp(src_qd, qt, dst->conn, src->file_cursor));
    return qt;
  }
  return Status::kNotSupported;  // only (TCP connection, file) pairs can splice
}

// Producer half of a TCP→disk splice: drains ready views off the connection into bounded
// batches and hands them to the appender. Never copies — the batch holds references to the
// same heap objects the NIC delivered into.
Task<void> Catnip::SpliceNetToDiskOp(QueueDesc src_qd, QToken qt,
                                     std::shared_ptr<TcpConnection> conn,
                                     std::shared_ptr<SpliceState> st) {
  for (;;) {
    if (st->status != Status::kOk) {
      break;  // the appender hit a terminal disk error
    }
    if (conn->HasReadyData()) {
      SpliceBatch batch;
      while (batch.bytes < kSpliceBatchBytes && batch.views.size() < kSpliceBatchMaxSlices &&
             conn->HasReadyData()) {
        auto data = conn->PopData();
        DEMI_CHECK(data.has_value());
        data->NoteOwner(src_qd, qt);
        batch.bytes += data->size();
        batch.views.push_back(std::move(*data));
      }
      while (st->batches.size() >= kSpliceMaxQueuedBatches && st->status == Status::kOk) {
        co_await st->batch_space.Wait();  // pipeline full: let the appender drain
      }
      if (st->status != Status::kOk) {
        break;
      }
      tracer_.Record(TraceEventType::kSpliceBatch, static_cast<uint32_t>(batch.views.size()),
                     batch.bytes);
      st->batches.push_back(std::move(batch));
      st->batch_ready.Notify();
      continue;
    }
    if (conn->EndOfStream()) {
      break;  // FIN received and every byte consumed: clean end of the splice
    }
    if (conn->state() == TcpState::kClosed) {
      if (st->status == Status::kOk && conn->error() != Status::kOk) {
        st->status = conn->error();
      }
      break;
    }
    co_await conn->readable().Wait();
  }
  st->producer_done = true;
  st->batch_ready.Notify();
  while (!st->appender_done) {
    co_await st->appender_finished.Wait();
  }
  splice_stats_.ops++;
  splice_stats_.active--;
  tracer_.Record(TraceEventType::kSpliceDone, st->status == Status::kOk ? 0 : 1, st->bytes);
  QResult r;
  r.status = st->status;
  r.bytes = st->bytes;
  CompleteToken(qt, r);
}

// Consumer half: gather-appends each batch as one log record. While this coroutine awaits the
// device, the producer keeps popping the connection — the pipelining that overlaps disk
// latency with transmission.
Task<void> Catnip::SpliceAppendFiber(std::shared_ptr<SpliceState> st) {
  while (!(st->batches.empty() && st->producer_done)) {
    if (st->batches.empty()) {
      co_await st->batch_ready.Wait();
      continue;
    }
    SpliceBatch batch = std::move(st->batches.front());
    st->batches.pop_front();
    st->batch_space.Notify();
    if (st->status != Status::kOk) {
      continue;  // drain (and release) remaining batches after a terminal error
    }
    std::vector<std::span<const uint8_t>> slices;
    slices.reserve(batch.views.size());
    for (const Buffer& b : batch.views) {
      slices.emplace_back(b.data(), b.size());
    }
    auto result = co_await storage_->log().AppendSg(slices);
    if (!result.ok()) {
      st->status = result.error();
      st->batch_space.Notify();  // wake a producer parked on the full pipeline
    } else {
      st->bytes += batch.bytes;
      st->records++;
      splice_stats_.bytes += batch.bytes;
      splice_stats_.records++;
    }
    // batch.views destruct here: the TCP rx buffers release only after the record is durable.
  }
  st->appender_done = true;
  st->appender_finished.Notify();
}

// disk→net: read each record into one pooled allocation and push the payload view into the
// connection; the NIC transmits straight from log-read memory. Backpressure bounds the send
// backlog so a slow receiver cannot balloon the heap.
Task<void> Catnip::SpliceDiskToNetOp(QueueDesc src_qd, QToken qt,
                                     std::shared_ptr<TcpConnection> conn, uint64_t cursor) {
  Status status = Status::kOk;
  uint64_t total = 0;
  uint64_t records = 0;
  for (;;) {
    auto result = co_await storage_->log().ReadZc(cursor, alloc_);
    if (!result.ok()) {
      if (result.error() != Status::kEndOfFile) {
        status = result.error();  // reaching the tail is the clean end of the splice
      }
      break;
    }
    cursor = result->next_cursor;
    const uint64_t len = result->payload.size();
    while (conn->SendBacklogBytes() > kSpliceTxHighWater &&
           conn->state() == TcpState::kEstablished) {
      co_await Scheduler::Yield{};
    }
    if (conn->state() == TcpState::kClosed) {
      status = conn->error() == Status::kOk ? Status::kConnectionReset : conn->error();
      break;
    }
    result->payload.NoteOwner(src_qd, qt);
    tracer_.Record(TraceEventType::kSpliceBatch, 1, len);
    const Status push = conn->Push(std::move(result->payload));
    if (push != Status::kOk) {
      status = push;
      break;
    }
    total += len;
    records++;
  }
  QueueState* q = Find(src_qd);
  if (q != nullptr && q->kind == QKind::kFile) {
    q->file_cursor = cursor;  // the next pop/splice on this queue resumes where we stopped
  }
  splice_stats_.ops++;
  splice_stats_.active--;
  splice_stats_.bytes += total;
  splice_stats_.records += records;
  tracer_.Record(TraceEventType::kSpliceDone, status == Status::kOk ? 0 : 1, total);
  QResult r;
  r.status = status;
  r.bytes = total;
  CompleteToken(qt, r);
}

// --- Storage and memory queues ---

Result<QueueDesc> Catnip::Open(std::string_view path) {
  if (storage_ == nullptr) {
    return Status::kNotSupported;
  }
  const QueueDesc qd = NewQd();
  QueueState q;
  q.kind = QKind::kFile;
  q.file_cursor = storage_->log().head();
  queues_[qd] = std::move(q);
  return qd;
}

Status Catnip::Seek(QueueDesc qd, uint64_t offset) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing || q->kind != QKind::kFile) {
    return Status::kBadQueueDescriptor;
  }
  return storage_->Seek(&q->file_cursor, offset);
}

Status Catnip::Truncate(QueueDesc qd, uint64_t offset) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing || q->kind != QKind::kFile) {
    return Status::kBadQueueDescriptor;
  }
  return storage_->Truncate(offset);
}

Result<QueueDesc> Catnip::MemoryQueue() {
  const QueueDesc qd = NewQd();
  QueueState q;
  q.kind = QKind::kMemory;
  q.mem = std::make_shared<MemChannel>();
  queues_[qd] = std::move(q);
  return qd;
}

// --- Close ---

Status Catnip::Close(QueueDesc qd) {
  QueueState* q = Find(qd);
  if (q == nullptr || q->closing) {
    return Status::kBadQueueDescriptor;
  }
  q->closing = true;
  switch (q->kind) {
    case QKind::kTcpConn:
      // Like POSIX close(): teardown proceeds whatever the connection's fate, so a close on an
      // already-reset connection (which reports the stored error) is not surfaced to the app.
      (void)q->conn->Close();
      q->conn->readable().Notify();
      break;
    case QKind::kTcpListener:
      q->listener->acceptable().Notify();
      break;
    case QKind::kUdp:
      q->udp->readable().Notify();
      break;
    case QKind::kMemory:
      q->mem->closed = true;
      q->mem->readable.Notify();
      break;
    default:
      break;
  }
  // Teardown of event-owning objects is deferred to the fast path once no blocked coroutine
  // can still reference them.
  deferred_close_.push_back(qd);
  return Status::kOk;
}

void Catnip::FinishClose(QueueDesc qd, QueueState& q) {
  switch (q.kind) {
    case QKind::kTcpConn:
      q.conn->ReleaseByApp();
      break;
    case QKind::kTcpListener:
      tcp_.CloseListener(q.listener);
      break;
    case QKind::kUdp:
      udp_.Close(q.udp);
      break;
    default:
      break;
  }
}

}  // namespace demi
