#include "src/apps/minirpc.h"

#include <cstring>
#include <unordered_map>

#include "src/common/logging.h"

namespace demi {

namespace {

constexpr uint32_t kRpcMagic = 0x4D525043;  // "MRPC"

struct RpcHeader {
  uint32_t magic;
  uint8_t is_response;
  uint8_t pad[3];
  uint64_t req_id;
  uint64_t src_mac;
  uint32_t payload_len;
};

}  // namespace

MiniRpcServer::MiniRpcServer(SimNetwork& network, MacAddr mac, Clock& clock, Handler handler)
    : nic_(network, mac, clock), clock_(clock), handler_(std::move(handler)) {}

size_t MiniRpcServer::PollOnce() {
  WireFrame frames[32];
  const size_t n = nic_.RxBurst(frames);
  size_t served = 0;
  uint8_t resp_buf[1500];
  for (size_t i = 0; i < n; i++) {
    if (frames[i].size() < sizeof(RpcHeader)) {
      continue;
    }
    RpcHeader hdr;
    std::memcpy(&hdr, frames[i].data(), sizeof(hdr));
    if (hdr.magic != kRpcMagic || hdr.is_response) {
      continue;
    }
    const std::span<const uint8_t> req(frames[i].data() + sizeof(hdr), hdr.payload_len);
    const size_t resp_len =
        handler_(req, std::span<uint8_t>(resp_buf + sizeof(RpcHeader),
                                         sizeof(resp_buf) - sizeof(RpcHeader)));
    RpcHeader resp_hdr = hdr;
    resp_hdr.is_response = 1;
    resp_hdr.src_mac = nic_.mac().value;
    resp_hdr.payload_len = static_cast<uint32_t>(resp_len);
    std::memcpy(resp_buf, &resp_hdr, sizeof(resp_hdr));
    std::span<const uint8_t> seg(resp_buf, sizeof(RpcHeader) + resp_len);
    // A dropped response looks like a lost request: the client's RTO resends it.
    (void)nic_.TxBurst(MacAddr{hdr.src_mac}, {&seg, 1});
    served++;
    requests_served_++;
  }
  return served;
}

void MiniRpcServer::Run(std::atomic<bool>& stop) {
  // demilint: atomic(stop latch with no payload; relaxed poll — thread join is the sync point)
  while (!stop.load(std::memory_order_relaxed)) {
    PollOnce();
  }
}

MiniRpcClient::MiniRpcClient(SimNetwork& network, MacAddr mac, MacAddr server, Clock& clock)
    : nic_(network, mac, clock), server_(server), clock_(clock) {}

std::vector<uint8_t> MiniRpcClient::Call(std::span<const uint8_t> request, DurationNs timeout) {
  const uint64_t req_id = next_req_id_++;
  uint8_t tx_buf[1500];
  RpcHeader hdr{};
  hdr.magic = kRpcMagic;
  hdr.is_response = 0;
  hdr.req_id = req_id;
  hdr.src_mac = nic_.mac().value;
  hdr.payload_len = static_cast<uint32_t>(request.size());
  DEMI_CHECK(sizeof(hdr) + request.size() <= sizeof(tx_buf));
  std::memcpy(tx_buf, &hdr, sizeof(hdr));
  std::memcpy(tx_buf + sizeof(hdr), request.data(), request.size());
  std::span<const uint8_t> seg(tx_buf, sizeof(hdr) + request.size());

  const TimeNs deadline = clock_.Now() + timeout;
  TimeNs next_retransmit = 0;
  const DurationNs rto = 1 * kMillisecond;
  WireFrame frames[8];
  while (clock_.Now() < deadline) {
    if (pump_) {
      pump_();
    }
    if (clock_.Now() >= next_retransmit) {
      (void)nic_.TxBurst(server_, {&seg, 1});  // best-effort; this loop IS the retry path
      next_retransmit = clock_.Now() + rto;
    }
    const size_t n = nic_.RxBurst(frames);
    for (size_t i = 0; i < n; i++) {
      if (frames[i].size() < sizeof(RpcHeader)) {
        continue;
      }
      RpcHeader rh;
      std::memcpy(&rh, frames[i].data(), sizeof(rh));
      if (rh.magic == kRpcMagic && rh.is_response && rh.req_id == req_id) {
        return std::vector<uint8_t>(frames[i].begin() + sizeof(RpcHeader),
                                    frames[i].begin() + sizeof(RpcHeader) + rh.payload_len);
      }
    }
  }
  return {};
}

uint64_t MiniRpcClient::RunClosedLoopWindow(size_t request_size, size_t depth,
                                            DurationNs duration, Histogram* latency) {
  struct Inflight {
    uint64_t req_id;
    TimeNs sent_at;
  };
  std::unordered_map<uint64_t, TimeNs> inflight;
  std::vector<uint8_t> payload(request_size, 0xAB);
  uint64_t completed = 0;
  const TimeNs end = clock_.Now() + duration;
  WireFrame frames[32];
  uint8_t tx_buf[1500];
  DEMI_CHECK(sizeof(RpcHeader) + request_size <= sizeof(tx_buf));

  while (clock_.Now() < end) {
    while (inflight.size() < depth) {
      const uint64_t req_id = next_req_id_++;
      RpcHeader hdr{};
      hdr.magic = kRpcMagic;
      hdr.req_id = req_id;
      hdr.src_mac = nic_.mac().value;
      hdr.payload_len = static_cast<uint32_t>(request_size);
      std::memcpy(tx_buf, &hdr, sizeof(hdr));
      std::memcpy(tx_buf + sizeof(hdr), payload.data(), request_size);
      std::span<const uint8_t> seg(tx_buf, sizeof(hdr) + request_size);
      (void)nic_.TxBurst(server_, {&seg, 1});  // a lost request is resent by the RTO check above
      inflight[req_id] = clock_.Now();
    }
    if (pump_) {
      pump_();
    }
    const size_t n = nic_.RxBurst(frames);
    for (size_t i = 0; i < n; i++) {
      if (frames[i].size() < sizeof(RpcHeader)) {
        continue;
      }
      RpcHeader rh;
      std::memcpy(&rh, frames[i].data(), sizeof(rh));
      auto it = rh.magic == kRpcMagic && rh.is_response ? inflight.find(rh.req_id)
                                                        : inflight.end();
      if (it != inflight.end()) {
        if (latency != nullptr) {
          latency->Record(clock_.Now() - it->second);
        }
        inflight.erase(it);
        completed++;
      }
    }
  }
  return completed;
}

}  // namespace demi
