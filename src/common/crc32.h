// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Used by the log record format
// (docs/STORAGE.md): recovery must distinguish a fully durable record from the prefix a torn
// write left on the media, which magic+length alone cannot do.

#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace demi {

namespace crc32_internal {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t c = i;
    for (int k = 0; k < 8; k++) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace crc32_internal

// Incremental form: pass the previous return value as `seed` to continue a running CRC across
// discontiguous spans (the scatter-gather append CRCs each payload slice in place).
inline uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; i++) {
    c = crc32_internal::kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace demi

#endif  // SRC_COMMON_CRC32_H_
