// §5.3 microbenchmarks: the DMA-capable heap.
//
// What must hold: alloc/free are a few tens of ns (pool LIFO); inc_ref/dec_ref are ~bitmap
// flips; get_rkey after first use is a mask+load (superblock-cached, the paper's design);
// and the 1 kB zero-copy threshold ablation shows why small buffers are copied — below ~1 kB
// the memcpy is cheaper than reference bookkeeping amortized over I/O, above it zero-copy wins
// and its cost stays flat with size.

#include <benchmark/benchmark.h>

#include <cstring>

#include "src/memory/buffer.h"
#include "src/memory/pool_allocator.h"

namespace demi {
namespace {

void BM_AllocFree(benchmark::State& state) {
  PoolAllocator alloc;
  const size_t size = static_cast<size_t>(state.range(0));
  // Prime the superblock.
  alloc.Free(alloc.Alloc(size));
  for (auto _ : state) {
    void* p = alloc.Alloc(size);
    benchmark::DoNotOptimize(p);
    alloc.Free(p);
  }
}
BENCHMARK(BM_AllocFree)->Arg(16)->Arg(64)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_IncDecRef(benchmark::State& state) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(2048);
  for (auto _ : state) {
    alloc.IncRef(p);
    alloc.DecRef(p);
  }
  alloc.Free(p);
}
BENCHMARK(BM_IncDecRef);

void BM_IncDecRefOverflow(benchmark::State& state) {
  // Second reference onward hits the side table (rare path: same buffer on multiple I/Os).
  PoolAllocator alloc;
  void* p = alloc.Alloc(2048);
  alloc.IncRef(p);
  for (auto _ : state) {
    alloc.IncRef(p);
    alloc.DecRef(p);
  }
  alloc.DecRef(p);
  alloc.Free(p);
}
BENCHMARK(BM_IncDecRefOverflow);

void BM_GetRkeyCached(benchmark::State& state) {
  PoolAllocator alloc;
  void* p = alloc.Alloc(4096);
  alloc.GetRkey(p);  // registers once
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc.GetRkey(p));  // the per-I/O path: mask + cached load
  }
  alloc.Free(p);
}
BENCHMARK(BM_GetRkeyCached);

void BM_DeferredFreeCycle(benchmark::State& state) {
  // The UAF-protection cycle: app frees while the libOS holds a reference; recycling happens
  // at DecRef. This is the common TCP-unacked-buffer pattern.
  PoolAllocator alloc;
  for (auto _ : state) {
    void* p = alloc.Alloc(2048);
    alloc.IncRef(p);
    alloc.Free(p);    // deferred
    alloc.DecRef(p);  // actual recycle
  }
}
BENCHMARK(BM_DeferredFreeCycle);

// Zero-copy threshold ablation: Buffer::FromApp copies below kZeroCopyThreshold and
// reference-counts above it. Sweeping sizes across the boundary shows the copy cost growing
// linearly while the zero-copy cost stays flat — the crossover justifies the 1 kB choice.
void BM_BufferFromApp(benchmark::State& state) {
  PoolAllocator alloc;
  const size_t size = static_cast<size_t>(state.range(0));
  void* p = alloc.Alloc(size);
  std::memset(p, 1, size);
  for (auto _ : state) {
    Buffer b = Buffer::FromApp(alloc, p, size);
    benchmark::DoNotOptimize(b.data());
  }
  alloc.Free(p);
  state.SetLabel(size >= PoolAllocator::kZeroCopyThreshold ? "zero-copy (refcount)"
                                                           : "copied");
}
BENCHMARK(BM_BufferFromApp)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1023)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(65536);

void BM_BufferSliceChain(benchmark::State& state) {
  // The TCP send path slices app pushes into MSS segments: measure per-slice cost.
  PoolAllocator alloc;
  Buffer base = Buffer::Allocate(alloc, 64 * 1024);
  for (auto _ : state) {
    Buffer s = base.Slice(1460, 1460);
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_BufferSliceChain);

void BM_HugeAlloc(benchmark::State& state) {
  PoolAllocator alloc;
  for (auto _ : state) {
    void* p = alloc.Alloc(1 << 20);
    benchmark::DoNotOptimize(p);
    alloc.Free(p);
  }
  state.SetLabel("1 MB dedicated-superblock path");
}
BENCHMARK(BM_HugeAlloc);

}  // namespace
}  // namespace demi
