// Figure 8 reproduction: NetPIPE — single-stream ping-pong bandwidth across message sizes.
//
// Paper result at 256 kB: testpmd (raw DPDK) 40.3 Gbps, perftest (raw RDMA) 37.7 Gbps,
// Catnip UDP 33.3 / TCP 29.7 Gbps (17% / 26% overhead on testpmd), Catmint 31.5 Gbps (17% on
// perftest). The reproduction must show the same ordering and roughly those overhead factors:
// raw device > Demikernel libOS, with the libOS within ~tens of percent, converging as
// messages grow.
//
// Also includes the congestion-control ablation (--no-cc shape): Catnip TCP with a fixed window
// instead of Cubic, showing what the congestion machinery costs on a clean fabric.
//
// The CatnipTCP-nobatch column disables the batched datapath (MSS coalescing of queued sub-MSS
// views, RFC 1122 delayed acks, burst RX) — it reproduces the pre-batching numbers so the
// batching win at large message sizes is directly readable off one table.

#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "src/netsim/sim_rdma.h"

namespace demi {
namespace bench {
namespace {

const size_t kSizes[] = {64, 256, 1024, 4096, 16384, 65536, 262144};

double ToGbps(size_t bytes, DurationNs elapsed) {
  return elapsed == 0 ? 0 : static_cast<double>(bytes) * 8.0 / static_cast<double>(elapsed);
}

// Raw L2 ping-pong (testpmd-like). Messages above the MTU are sent as back-to-back frames and
// counted when all bytes returned, mirroring what NetPIPE-over-testpmd measures.
double RawNicGbps(size_t msg_size, uint64_t iters) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, 1);
  SimNic server(net, kServerMac, clock);
  SimNic client(net, kClientMac, clock);
  const size_t mtu = net.link().mtu;
  // Like testpmd, all TX memory comes from the device mempool (registered for DMA).
  std::vector<uint8_t> payload(std::min(msg_size, mtu), 3);
  std::vector<uint8_t> echo_buf(mtu);
  client.registrar().RegisterRegion(payload.data(), payload.size());
  server.registrar().RegisterRegion(echo_buf.data(), echo_buf.size());
  WireFrame rx[32];
  const TimeNs start = clock.Now();
  for (uint64_t i = 0; i < iters; i++) {
    size_t sent = 0;
    while (sent < msg_size) {
      const size_t chunk = std::min(mtu, msg_size - sent);
      std::span<const uint8_t> seg(payload.data(), chunk);
      (void)client.TxBurst(kServerMac, {&seg, 1});  // lossless sim link; benches measure the success path
      sent += chunk;
    }
    size_t echoed = 0;
    size_t returned = 0;
    while (returned < msg_size) {
      size_t n = server.RxBurst(rx);
      for (size_t j = 0; j < n; j++) {
        // Copy into the registered mbuf and retransmit (testpmd's io-mode forward).
        std::memcpy(echo_buf.data(), rx[j].data(), rx[j].size());
        std::span<const uint8_t> echo(echo_buf.data(), rx[j].size());
        (void)server.TxBurst(kClientMac, {&echo, 1});  // lossless sim link; benches measure the success path
        echoed += rx[j].size();
      }
      n = client.RxBurst(rx);
      for (size_t j = 0; j < n; j++) {
        returned += rx[j].size();
      }
    }
  }
  // Ping-pong bandwidth: bytes moved one way per half round trip.
  return ToGbps(msg_size * iters * 2, clock.Now() - start);
}

double RawRdmaGbps(size_t msg_size, uint64_t iters) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, 1);
  SimRdmaDevice server(net, kServerMac, clock);
  SimRdmaDevice client(net, kClientMac, clock);
  (void)server.CreateQp(1);
  (void)client.CreateQp(1);
  std::vector<uint8_t> srv_buf(msg_size);
  std::vector<uint8_t> cli_buf(msg_size);
  std::vector<uint8_t> msg(msg_size, 1);
  server.RegisterMemory(srv_buf.data(), srv_buf.size());
  client.RegisterMemory(cli_buf.data(), cli_buf.size());
  client.RegisterMemory(msg.data(), msg.size());
  server.RegisterMemory(srv_buf.data(), srv_buf.size());
  RdmaCompletion comps[8];
  const TimeNs start = clock.Now();
  for (uint64_t i = 0; i < iters; i++) {
    (void)server.PostRecv(1, srv_buf.data(), static_cast<uint32_t>(msg_size), 0);  // lossless sim link; benches measure the success path
    (void)client.PostRecv(1, cli_buf.data(), static_cast<uint32_t>(msg_size), 0);  // lossless sim link; benches measure the success path
    std::span<const uint8_t> seg(msg);
    (void)client.PostSend(1, kServerMac, 1, {&seg, 1}, 0);  // lossless sim link; benches measure the success path
    bool served = false;
    while (!served) {
      const size_t n = server.PollCq(comps);
      for (size_t j = 0; j < n; j++) {
        if (comps[j].type == RdmaCompletion::Type::kRecv) {
          std::span<const uint8_t> pong(srv_buf.data(), msg_size);
          (void)server.PostSend(1, kClientMac, 1, {&pong, 1}, 0);  // lossless sim link; benches measure the success path
          served = true;
        }
      }
    }
    bool done = false;
    while (!done) {
      const size_t n = client.PollCq(comps);
      for (size_t j = 0; j < n; j++) {
        done |= comps[j].type == RdmaCompletion::Type::kRecv;
      }
    }
  }
  return ToGbps(msg_size * iters * 2, clock.Now() - start);
}

uint64_t ItersFor(size_t size) { return size >= 65536 ? 300 : (size >= 4096 ? 1000 : 3000); }

}  // namespace

void Main() {
  PrintHeader("Figure 8: NetPIPE single-stream ping-pong bandwidth",
              "paper @256kB: testpmd 40.3, perftest 37.7, Catnip UDP 33.3, Catmint 31.5, "
              "Catnip TCP 29.7 Gbps — libOS within 17-26% of raw",
              /*latency_columns=*/false);
  std::printf("%-10s %12s %12s %12s %12s %12s %14s %16s\n", "size(B)", "rawNIC", "rawRDMA",
              "CatnipTCP", "CatnipUDP", "Catmint", "CatnipTCP-nocc", "CatnipTCP-nobatch");

  for (size_t size : kSizes) {
    const uint64_t iters = ItersFor(size);
    const double raw_nic = RawNicGbps(size, iters);
    const double raw_rdma = RawRdmaGbps(size, iters);

    double catnip_tcp = 0;
    {
      CatnipPair pair;
      auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 5501}, SocketType::kStream},
                        size, iters);
      catnip_tcp = ToGbps(size * 2, static_cast<DurationNs>(r.rtt.Mean()));
    }
    double catnip_nocc = 0;
    {
      TcpConfig tcp;
      tcp.congestion = CongestionAlgorithm::kFixedWindow;
      CatnipPair pair(LinkConfig{}, nullptr, tcp);
      auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 5502}, SocketType::kStream},
                        size, iters);
      catnip_nocc = ToGbps(size * 2, static_cast<DurationNs>(r.rtt.Mean()));
    }
    double catnip_nobatch = 0;
    {
      TcpConfig tcp;
      tcp.coalesce_segments = false;
      tcp.delayed_acks = false;
      CatnipPair pair(LinkConfig{}, nullptr, tcp, /*rx_burst_frames=*/1);
      auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 5505}, SocketType::kStream},
                        size, iters);
      catnip_nobatch = ToGbps(size * 2, static_cast<DurationNs>(r.rtt.Mean()));
    }
    double catnip_udp = 0;
    if (size <= 1400) {  // our UDP does not implement IP fragmentation (like the paper's stack
                         // it relies on datagrams fitting the MTU)
      CatnipPair pair;
      auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 5503}, SocketType::kDatagram},
                        size, iters);
      catnip_udp = ToGbps(size * 2, static_cast<DurationNs>(r.rtt.Mean()));
    }
    double catmint = 0;
    {
      CatmintPair pair(LinkConfig{}, nullptr, /*max_msg=*/512 * 1024);
      auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 5504}}, size, iters);
      catmint = ToGbps(size * 2, static_cast<DurationNs>(r.rtt.Mean()));
    }
    std::printf("%-10zu %12.2f %12.2f %12.2f %12s %12.2f %14.2f %16.2f\n", size, raw_nic,
                raw_rdma, catnip_tcp,
                size <= 1400 ? std::to_string(catnip_udp).substr(0, 5).c_str() : "n/a",
                catmint, catnip_nocc, catnip_nobatch);
  }
  std::printf("(Gbps; ping-pong: bytes one way per half-RTT. UDP n/a above one MTU — no IP "
              "fragmentation, as in the paper's stack)\n");
}

}  // namespace bench
}  // namespace demi

int main() {
  demi::bench::Main();
  return 0;
}
