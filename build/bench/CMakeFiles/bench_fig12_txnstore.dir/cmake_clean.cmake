file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_txnstore.dir/bench_fig12_txnstore.cc.o"
  "CMakeFiles/bench_fig12_txnstore.dir/bench_fig12_txnstore.cc.o.d"
  "bench_fig12_txnstore"
  "bench_fig12_txnstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_txnstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
