#include "src/storage/log_device.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/observability/metrics.h"

namespace demi {

namespace {
uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) & ~(a - 1); }
}  // namespace

void LogDevice::RegisterMetrics(MetricsRegistry& registry) {
  registry.RegisterCallback("log.io_retries", "log", "ops",
                            "Transient device errors absorbed by backoff+retry",
                            [this] { return stats_.io_retries; });
  registry.RegisterCallback("log.io_terminal_errors", "log", "ops",
                            "Appends/reads failed after the retry budget was spent",
                            [this] { return stats_.io_terminal_errors; });
}

LogDevice::LogDevice(SimBlockDevice& device, Scheduler& scheduler)
    : device_(device), scheduler_(scheduler), block_size_(device.config().block_size) {
  tail_block_cache_.assign(block_size_, 0);
}

Task<void> LogDevice::AcquireAppendLock() {
  while (append_locked_) {
    co_await append_lock_released_.Wait();
  }
  append_locked_ = true;
}

Task<Status> LogDevice::SubmitOnceAndWait(bool is_read, uint64_t lba,
                                          std::span<const uint8_t> data,
                                          std::span<uint8_t> out) {
  IoWait wait;
  const uint64_t cookie = next_cookie_++;
  for (;;) {
    const Status s =
        is_read ? device_.SubmitRead(lba, out, cookie) : device_.SubmitWrite(lba, data, cookie);
    if (s == Status::kOk) {
      break;
    }
    if (s != Status::kQueueFull) {
      co_return s;
    }
    co_await Scheduler::Yield{};  // device queue full: let the poller drain completions
  }
  outstanding_++;
  waiting_[cookie] = &wait;
  while (!wait.done) {
    co_await wait.event.Wait();
  }
  co_return wait.status;
}

Task<Status> LogDevice::SubmitWriteAndWait(uint64_t lba, std::span<const uint8_t> data) {
  DurationNs backoff = retry_.initial_backoff;
  for (uint32_t attempt = 0;; attempt++) {
    const Status s = co_await SubmitOnceAndWait(/*is_read=*/false, lba, data, {});
    if (s != Status::kIoError) {
      co_return s;  // success, or a non-retryable submission error
    }
    if (attempt >= retry_.max_retries) {
      stats_.io_terminal_errors++;
      co_return s;  // budget spent: the terminal error propagates to the qtoken
    }
    stats_.io_retries++;
    co_await scheduler_.Sleep(backoff);
    backoff = std::min<DurationNs>(backoff * 2, retry_.max_backoff);
  }
}

Task<Status> LogDevice::SubmitReadAndWait(uint64_t lba, std::span<uint8_t> out) {
  DurationNs backoff = retry_.initial_backoff;
  for (uint32_t attempt = 0;; attempt++) {
    const Status s = co_await SubmitOnceAndWait(/*is_read=*/true, lba, {}, out);
    if (s != Status::kIoError) {
      co_return s;
    }
    if (attempt >= retry_.max_retries) {
      stats_.io_terminal_errors++;
      co_return s;
    }
    stats_.io_retries++;
    co_await scheduler_.Sleep(backoff);
    backoff = std::min<DurationNs>(backoff * 2, retry_.max_backoff);
  }
}

Task<Result<uint64_t>> LogDevice::Append(std::span<const uint8_t> payload) {
  co_await AcquireAppendLock();
  // RAII is awkward across co_return paths here; release explicitly on every exit.
  const uint64_t record_offset = tail_;
  const uint64_t record_bytes = AlignUp(kHeaderSize + payload.size(), kAlign);
  const uint64_t new_tail = tail_ + record_bytes;
  if (new_tail > device_.CapacityBytes()) {
    append_locked_ = false;
    append_lock_released_.Notify();
    co_return Status::kNoBufferSpace;
  }

  // Compose the affected block range: the (possibly partial) tail block comes from the cache so
  // previously appended bytes in the same block are preserved.
  const uint64_t first_block = tail_ / block_size_;
  const uint64_t last_block = (new_tail - 1) / block_size_;
  const size_t nblocks = static_cast<size_t>(last_block - first_block + 1);
  std::vector<uint8_t> io(nblocks * block_size_, 0);
  std::memcpy(io.data(), tail_block_cache_.data(), block_size_);

  const size_t in_block_off = static_cast<size_t>(tail_ - first_block * block_size_);
  const uint32_t magic = kRecordMagic;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(io.data() + in_block_off, &magic, sizeof(magic));
  std::memcpy(io.data() + in_block_off + 4, &len, sizeof(len));
  std::memcpy(io.data() + in_block_off + kHeaderSize, payload.data(), payload.size());

  const Status s = co_await SubmitWriteAndWait(first_block, io);
  if (s != Status::kOk) {
    append_locked_ = false;
    append_lock_released_.Notify();
    co_return s;
  }

  // Refresh the tail-block cache with the new partial last block.
  std::memcpy(tail_block_cache_.data(), io.data() + (nblocks - 1) * block_size_, block_size_);
  tail_ = new_tail;
  append_locked_ = false;
  append_lock_released_.Notify();
  co_return record_offset;
}

Task<Result<LogDevice::ReadResult>> LogDevice::Read(uint64_t cursor) {
  if (cursor < head_) {
    co_return Status::kInvalidArgument;
  }
  if (cursor >= tail_) {
    co_return Status::kEndOfFile;
  }
  // Read the block holding the header (record headers never straddle blocks only if aligned;
  // they can straddle, so read two blocks when near a boundary).
  const uint64_t first_block = cursor / block_size_;
  const size_t hdr_blocks = (cursor % block_size_) + kHeaderSize > block_size_ ? 2 : 1;
  std::vector<uint8_t> hdr_io(hdr_blocks * block_size_);
  Status s = co_await SubmitReadAndWait(first_block, hdr_io);
  if (s != Status::kOk) {
    co_return s;
  }
  const size_t in_off = static_cast<size_t>(cursor - first_block * block_size_);
  uint32_t magic = 0;
  uint32_t len = 0;
  std::memcpy(&magic, hdr_io.data() + in_off, 4);
  std::memcpy(&len, hdr_io.data() + in_off + 4, 4);
  if (magic != kRecordMagic) {
    co_return Status::kProtocolError;
  }
  const uint64_t record_bytes = AlignUp(kHeaderSize + len, kAlign);
  if (cursor + record_bytes > tail_) {
    co_return Status::kProtocolError;
  }

  ReadResult result;
  result.payload.resize(len);
  result.next_cursor = cursor + record_bytes;

  const uint64_t payload_start = cursor + kHeaderSize;
  const uint64_t payload_end = payload_start + len;
  const uint64_t span_first = payload_start / block_size_;
  const uint64_t span_last = len == 0 ? span_first : (payload_end - 1) / block_size_;
  if (span_last < first_block + hdr_blocks) {
    // Entire payload was already covered by the header read.
    std::memcpy(result.payload.data(), hdr_io.data() + in_off + kHeaderSize, len);
    co_return result;
  }
  std::vector<uint8_t> io((span_last - span_first + 1) * block_size_);
  s = co_await SubmitReadAndWait(span_first, io);
  if (s != Status::kOk) {
    co_return s;
  }
  std::memcpy(result.payload.data(), io.data() + (payload_start - span_first * block_size_), len);
  co_return result;
}

Status LogDevice::Truncate(uint64_t offset) {
  if (offset > tail_) {
    return Status::kInvalidArgument;
  }
  if (offset > head_) {
    head_ = offset;
  }
  return Status::kOk;
}

void LogDevice::PollDevice() {
  SimBlockDevice::Completion comps[16];
  for (;;) {
    const size_t n = device_.PollCompletions(comps);
    if (n == 0) {
      return;
    }
    for (size_t i = 0; i < n; i++) {
      auto it = waiting_.find(comps[i].cookie);
      if (it != waiting_.end()) {
        it->second->done = true;
        it->second->status = comps[i].status;
        it->second->event.Notify();
        waiting_.erase(it);
        outstanding_--;
      }
    }
  }
}

Status LogDevice::Recover() {
  head_ = 0;
  uint64_t cursor = 0;
  const uint64_t cap = device_.CapacityBytes();
  std::vector<uint8_t> hdr(kHeaderSize);
  while (cursor + kHeaderSize <= cap) {
    device_.RawRead(cursor, hdr);
    uint32_t magic = 0;
    uint32_t len = 0;
    std::memcpy(&magic, hdr.data(), 4);
    std::memcpy(&len, hdr.data() + 4, 4);
    if (magic != kRecordMagic || cursor + AlignUp(kHeaderSize + len, kAlign) > cap) {
      break;
    }
    cursor += AlignUp(kHeaderSize + len, kAlign);
  }
  tail_ = cursor;
  // Rebuild the tail-block cache from media.
  const uint64_t tail_block = tail_ / block_size_;
  if ((tail_block + 1) * block_size_ <= cap) {
    device_.RawRead(tail_block * block_size_, tail_block_cache_);
  }
  return Status::kOk;
}

}  // namespace demi
