// Tests for the zero-copy network×storage splice path (docs/STORAGE.md):
//  - LogDevice scatter-gather append (AppendSg) and zero-copy read (ReadZc)
//  - CRC+epoch-validated recovery, including the torn-write regression the format exists for
//  - PartitionedLog geometry, isolation, and epoch-stitched multi-partition recovery
//  - Catnip::Splice end to end over real TCP in both directions

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/faults/fault_injector.h"
#include "src/liboses/catnip.h"
#include "src/memory/pool_allocator.h"
#include "src/netsim/sim_network.h"
#include "src/runtime/scheduler.h"
#include "src/storage/log_device.h"
#include "src/storage/partitioned_log.h"
#include "src/storage/sim_block_device.h"

namespace demi {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// --- LogDevice scatter-gather / zero-copy unit tests (virtual clock) ---

class SpliceLogTest : public ::testing::Test {
 protected:
  SpliceLogTest() : dev_(SimBlockDevice::Config{}, clock_), sched_(clock_), log_(dev_, sched_) {}

  void RunUntil(const bool& done) {
    for (int guard = 0; guard < 100000 && !done; guard++) {
      log_.PollDevice();
      sched_.Poll();
      if (done) {
        break;
      }
      // Advance virtual time to the next event: a device completion or a retry-backoff timer.
      TimeNs next = log_.HasPendingIo() ? dev_.NextCompletionTime() : 0;
      const TimeNs timer = sched_.NextTimerDeadline();
      if (timer != 0 && (next == 0 || timer < next)) {
        next = timer;
      }
      if (next > clock_.Now()) {
        clock_.SetTime(next);
      }
    }
    ASSERT_TRUE(done) << "log operation did not finish";
  }

  // Synchronous wrapper around AppendSg for a set of slices backed by `parts`.
  Status AppendSgSync(const std::vector<std::string>& parts, uint64_t* offset_out = nullptr) {
    bool done = false;
    Status status = Status::kInternal;
    uint64_t offset = UINT64_MAX;
    sched_.Spawn([](LogDevice* log, const std::vector<std::string>* data, bool* done_out,
                    Status* st, uint64_t* off) -> Task<void> {
      std::vector<std::span<const uint8_t>> slices;
      slices.reserve(data->size());
      for (const std::string& s : *data) {
        slices.push_back(Bytes(s));
      }
      auto r = co_await log->AppendSg(slices);
      *st = r.ok() ? Status::kOk : r.error();
      if (r.ok()) {
        *off = *r;
      }
      *done_out = true;
    }(&log_, &parts, &done, &status, &offset));
    RunUntil(done);
    if (offset_out != nullptr) {
      *offset_out = offset;
    }
    return status;
  }

  Status AppendSync(const std::string& payload) {
    bool done = false;
    Status status = Status::kInternal;
    sched_.Spawn([](LogDevice* log, std::string data, bool* done_out, Status* st) -> Task<void> {
      auto r = co_await log->Append(Bytes(data));
      *st = r.ok() ? Status::kOk : r.error();
      *done_out = true;
    }(&log_, payload, &done, &status));
    RunUntil(done);
    return status;
  }

  // Reads the record at *cursor (advancing it); empty string on any error, with the status in
  // *status_out.
  std::string ReadSync(uint64_t* cursor, Status* status_out = nullptr) {
    bool done = false;
    Status status = Status::kInternal;
    std::string payload;
    sched_.Spawn([](LogDevice* log, uint64_t* cur, bool* done_out, Status* st,
                    std::string* out) -> Task<void> {
      auto r = co_await log->Read(*cur);
      *st = r.ok() ? Status::kOk : r.error();
      if (r.ok()) {
        out->assign(reinterpret_cast<const char*>(r->payload.data()), r->payload.size());
        *cur = r->next_cursor;
      }
      *done_out = true;
    }(&log_, cursor, &done, &status, &payload));
    RunUntil(done);
    if (status_out != nullptr) {
      *status_out = status;
    }
    return payload;
  }

  VirtualClock clock_;
  SimBlockDevice dev_;
  Scheduler sched_;
  LogDevice log_;
};

TEST_F(SpliceLogTest, AppendSgRoundTripsWithoutBounce) {
  const std::vector<std::string> parts = {"splice ", "is ", "zero ", "copy"};
  uint64_t offset = 0;
  ASSERT_EQ(AppendSgSync(parts, &offset), Status::kOk);
  EXPECT_EQ(log_.stats().sg_appends, 1u);
  EXPECT_EQ(log_.stats().bounce_bytes, 0u) << "no payload byte may be flattened host-side";
  EXPECT_GT(log_.stats().pad_bytes, 0u) << "SG records block-align via pad markers";
  // The record starts on a block boundary so the gather DMA never merges with cached bytes.
  EXPECT_EQ(offset % dev_.config().block_size, 0u);

  uint64_t cursor = log_.head();
  EXPECT_EQ(ReadSync(&cursor), "splice is zero copy");
  Status status = Status::kOk;
  ReadSync(&cursor, &status);
  EXPECT_EQ(status, Status::kEndOfFile);
}

TEST_F(SpliceLogTest, SgAndByteAppendsInterleave) {
  // Byte append leaves an unaligned tail; the SG record must pad up to the next block and a
  // later byte append must land right after the SG record — all readable in order.
  ASSERT_EQ(AppendSync("first"), Status::kOk);
  ASSERT_EQ(AppendSgSync({"second-", "gathered"}), Status::kOk);
  ASSERT_EQ(AppendSync("third"), Status::kOk);
  EXPECT_EQ(log_.stats().bounce_bytes, 0u);

  uint64_t cursor = log_.head();
  EXPECT_EQ(ReadSync(&cursor), "first");
  EXPECT_EQ(ReadSync(&cursor), "second-gathered");
  EXPECT_EQ(ReadSync(&cursor), "third");
  Status status = Status::kOk;
  ReadSync(&cursor, &status);
  EXPECT_EQ(status, Status::kEndOfFile);
}

TEST_F(SpliceLogTest, AppendSgFlattensOnlyBeyondSglBudget) {
  // More slices than the device SGL can take: the append must still succeed, but through the
  // counted bounce fallback — the invariant perf gates assert on (bounce_bytes == 0) is only
  // honest if the counter actually moves when flattening happens.
  std::vector<std::string> parts(SimBlockDevice::kMaxWritevSegments + 8, "x");
  ASSERT_EQ(AppendSgSync(parts), Status::kOk);
  EXPECT_GT(log_.stats().bounce_bytes, 0u);
  uint64_t cursor = log_.head();
  EXPECT_EQ(ReadSync(&cursor), std::string(parts.size(), 'x'));
}

TEST_F(SpliceLogTest, ReadZcReturnsViewOverOneAllocation) {
  const std::string payload(5000, 'z');  // spans two blocks
  ASSERT_EQ(AppendSgSync({payload}), Status::kOk);

  NullDmaRegistrar reg;
  PoolAllocator alloc(reg);
  bool done = false;
  Status status = Status::kInternal;
  sched_.Spawn([](LogDevice* log, PoolAllocator* a, const std::string* want, bool* done_out,
                  Status* st) -> Task<void> {
    auto r = co_await log->ReadZc(log->head(), *a);
    if (!r.ok()) {
      *st = r.error();
    } else {
      const bool match = r->payload.size() == want->size() &&
                         std::memcmp(r->payload.data(), want->data(), want->size()) == 0;
      *st = match ? Status::kOk : Status::kInternal;
    }
    *done_out = true;  // the Buffer view dies here; the pool must drain back to zero
  }(&log_, &alloc, &payload, &done, &status));
  RunUntil(done);
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(alloc.GetStats().live_objects, 0u) << "the zc view must release its allocation";
}

// The satellite-b regression: a torn write forges a plausible [magic][len] prefix on the media
// while the op errors terminally. Pre-CRC recovery trusted magic+len and resurrected the torn
// record after restart; epoch+CRC validation must refuse it.
TEST_F(SpliceLogTest, TornTerminalWriteIsNotRecoveredAfterRestart) {
  FaultPlan plan;
  plan.seed = 5;
  plan.disk_torn = 1.0;  // every write tears: a prefix lands, the op reports an error
  FaultInjector faults(plan);
  dev_.SetFaultInjector(&faults);
  LogDevice::RetryPolicy no_retries;
  no_retries.max_retries = 0;
  log_.set_retry_policy(no_retries);

  EXPECT_NE(AppendSync(std::string(3000, 'T')), Status::kOk);
  EXPECT_EQ(log_.stats().io_terminal_errors, 1u);
  EXPECT_EQ(log_.tail(), 0u) << "a failed append must not advance the tail";
  dev_.SetFaultInjector(nullptr);

  // "Restart": a fresh LogDevice over the same media rebuilds its state by scanning.
  LogDevice recovered(dev_, sched_);
  ASSERT_EQ(recovered.Recover(), Status::kOk);
  EXPECT_EQ(recovered.tail(), 0u) << "torn garbage with a valid-looking header was recovered";
}

// Tail-block cache coherence under retry: attempts that tore prefix garbage onto the media
// must not poison later successful appends — the cache, not the media, is the source of truth
// for the partial tail block.
TEST_F(SpliceLogTest, TornRetriesLeaveTailCacheCoherent) {
  ASSERT_EQ(AppendSync("durable-before"), Status::kOk);

  FaultPlan plan;
  plan.seed = 7;
  plan.disk_torn = 1.0;
  FaultInjector faults(plan);
  dev_.SetFaultInjector(&faults);
  LogDevice::RetryPolicy fast;
  fast.max_retries = 2;
  fast.initial_backoff = kMicrosecond;
  log_.set_retry_policy(fast);
  EXPECT_NE(AppendSync("never-lands"), Status::kOk);  // all attempts torn -> terminal
  EXPECT_GT(log_.stats().io_retries, 0u);
  dev_.SetFaultInjector(nullptr);

  ASSERT_EQ(AppendSync("durable-after"), Status::kOk);
  uint64_t cursor = log_.head();
  EXPECT_EQ(ReadSync(&cursor), "durable-before");
  EXPECT_EQ(ReadSync(&cursor), "durable-after");
  Status status = Status::kOk;
  ReadSync(&cursor, &status);
  EXPECT_EQ(status, Status::kEndOfFile) << "torn remnants must not read as records";

  // And the media itself agrees: a fresh scan recovers exactly the two durable records.
  std::vector<LogDevice::RecordInfo> records;
  LogDevice::ScanPartition(dev_, LogPartition{}, &records);
  EXPECT_EQ(records.size(), 2u);
}

// --- PartitionedLog: geometry, isolation, stitched recovery ---

TEST(PartitionedLogTest, EpochStitchedRecoveryPreservesCrossPartitionOrder) {
  VirtualClock clock;
  SimBlockDevice dev(SimBlockDevice::Config{}, clock);
  Scheduler sched(clock);
  PartitionedLog plog(dev, 2);
  LogDevice log0(dev, sched, plog.partition(0), &plog.epoch());
  LogDevice log1(dev, sched, plog.partition(1), &plog.epoch());

  // Interleave appends across the two partitions; the shared epoch must order them globally.
  auto append = [&](LogDevice& log, const std::string& payload) {
    bool done = false;
    Status status = Status::kInternal;
    sched.Spawn([](LogDevice* l, std::string data, bool* d, Status* st) -> Task<void> {
      auto r = co_await l->Append(Bytes(data));
      *st = r.ok() ? Status::kOk : r.error();
      *d = true;
    }(&log, payload, &done, &status));
    for (int guard = 0; guard < 100000 && !done; guard++) {
      log0.PollDevice();
      log1.PollDevice();
      sched.Poll();
      if (!done) {
        const TimeNs next = dev.NextCompletionTime();
        if (next > clock.Now()) {
          clock.SetTime(next);
        }
      }
    }
    ASSERT_EQ(status, Status::kOk);
  };
  const std::vector<std::pair<int, std::string>> writes = {
      {0, "a0"}, {1, "b0"}, {1, "b1"}, {0, "a1"}, {0, "a2"}, {1, "b2"}};
  for (const auto& [part, payload] : writes) {
    append(part == 0 ? log0 : log1, payload);
  }

  std::vector<PartitionedLog::StitchedRecord> records;
  plog.RecoverAll(&records);
  ASSERT_EQ(records.size(), writes.size());
  for (size_t i = 0; i < writes.size(); i++) {
    EXPECT_EQ(records[i].partition, static_cast<uint32_t>(writes[i].first)) << "record " << i;
    const std::vector<uint8_t> payload = plog.ReadPayload(records[i]);
    EXPECT_EQ(std::string(payload.begin(), payload.end()), writes[i].second) << "record " << i;
    if (i > 0) {
      EXPECT_GT(records[i].epoch, records[i - 1].epoch);
    }
  }
}

TEST(PartitionedLogTest, PartitionsAreCapacityIsolated) {
  VirtualClock clock;
  SimBlockDevice::Config cfg;
  cfg.num_blocks = 16;  // tiny device: 2 partitions x 8 blocks
  SimBlockDevice dev(cfg, clock);
  Scheduler sched(clock);
  PartitionedLog plog(dev, 2);
  EXPECT_EQ(plog.partition(0).num_blocks, 8u);
  EXPECT_EQ(plog.partition(1).num_blocks, 8u);
  LogDevice log0(dev, sched, plog.partition(0), &plog.epoch());
  EXPECT_EQ(log0.CapacityBytes(), 8 * cfg.block_size);

  auto append = [&](const std::string& payload) {
    bool done = false;
    Status status = Status::kInternal;
    sched.Spawn([](LogDevice* l, std::string data, bool* d, Status* st) -> Task<void> {
      auto r = co_await l->Append(Bytes(data));
      *st = r.ok() ? Status::kOk : r.error();
      *d = true;
    }(&log0, payload, &done, &status));
    for (int guard = 0; guard < 100000 && !done; guard++) {
      log0.PollDevice();
      sched.Poll();
      if (!done) {
        const TimeNs next = dev.NextCompletionTime();
        if (next > clock.Now()) {
          clock.SetTime(next);
        }
      }
    }
    return status;
  };
  // Fill partition 0 until it rejects; it must reject from ITS capacity, never spill into
  // partition 1's block range.
  Status status = Status::kOk;
  size_t accepted = 0;
  for (int i = 0; i < 64 && status == Status::kOk; i++) {
    status = append(std::string(1024, 'q'));
    if (status == Status::kOk) {
      accepted++;
    }
  }
  EXPECT_EQ(status, Status::kNoBufferSpace);
  EXPECT_GT(accepted, 0u);
  EXPECT_LE(log0.tail(), log0.CapacityBytes());
  // Partition 1's range is still virgin media: scanning it recovers nothing.
  std::vector<LogDevice::RecordInfo> p1_records;
  LogDevice::ScanPartition(dev, plog.partition(1), &p1_records);
  EXPECT_TRUE(p1_records.empty());
}

// --- Catnip::Splice end to end (real TCP over the simulated fabric) ---

QResult WaitStepped(LibOS& self, QToken qt, std::vector<LibOS*> world,
                    int max_steps = 2'000'000) {
  for (int i = 0; i < max_steps; i++) {
    for (LibOS* os : world) {
      os->PollOnce();
    }
    if (self.IsDone(qt)) {
      auto r = self.TryTake(qt);
      EXPECT_TRUE(r.ok());
      return r.ok() ? *r : QResult{};
    }
  }
  ADD_FAILURE() << "token did not complete";
  return QResult{};
}

class CatnipSpliceTest : public ::testing::Test {
 protected:
  CatnipSpliceTest()
      : net_(LinkConfig{}, 11),
        disk_(SimBlockDevice::Config{}, clock_),
        server_(net_,
                Catnip::Config{MacAddr{1}, Ipv4Addr::FromOctets(10, 0, 0, 1), TcpConfig{},
                               &disk_},
                clock_),
        client_(net_,
                Catnip::Config{MacAddr{2}, Ipv4Addr::FromOctets(10, 0, 0, 2), TcpConfig{},
                               nullptr},
                clock_) {
    server_.ethernet().arp().Insert(client_.local_ip(), MacAddr{2});
    client_.ethernet().arp().Insert(server_.local_ip(), MacAddr{1});
  }

  std::vector<LibOS*> World() { return {&server_, &client_}; }

  // Establishes a client connection to server_:7100; returns {client qd, server conn qd}.
  std::pair<QueueDesc, QueueDesc> Connect() {
    auto sqd = server_.Socket(SocketType::kStream);
    EXPECT_TRUE(sqd.ok());
    EXPECT_EQ(server_.Bind(*sqd, {server_.local_ip(), 7100}), Status::kOk);
    EXPECT_EQ(server_.Listen(*sqd, 8), Status::kOk);
    auto accept_qt = server_.Accept(*sqd);
    EXPECT_TRUE(accept_qt.ok());
    auto cqd = client_.Socket(SocketType::kStream);
    EXPECT_TRUE(cqd.ok());
    auto connect_qt = client_.Connect(*cqd, {server_.local_ip(), 7100});
    EXPECT_TRUE(connect_qt.ok());
    EXPECT_EQ(WaitStepped(client_, *connect_qt, World()).status, Status::kOk);
    QResult acc = WaitStepped(server_, *accept_qt, World());
    EXPECT_EQ(acc.status, Status::kOk);
    return {*cqd, acc.new_qd};
  }

  std::vector<uint8_t> PatternChunk(size_t chunk, size_t len) {
    std::vector<uint8_t> data(len);
    for (size_t i = 0; i < len; i++) {
      data[i] = static_cast<uint8_t>(chunk * 41 + i * 7);
    }
    return data;
  }

  MonotonicClock clock_;
  SimNetwork net_;
  SimBlockDevice disk_;
  Catnip server_;
  Catnip client_;
};

TEST_F(CatnipSpliceTest, NetToDiskSpliceIsByteExactAndZeroCopy) {
  auto [cqd, sconn] = Connect();
  auto fqd = server_.Open("relay-log");
  ASSERT_TRUE(fqd.ok());

  auto splice_qt = server_.Splice(sconn, *fqd);
  ASSERT_TRUE(splice_qt.ok());

  // Client streams patterned chunks, then half-closes; the splice must drain every byte into
  // the log and complete at the FIN.
  constexpr size_t kChunks = 40;
  std::vector<uint8_t> sent;
  for (size_t c = 0; c < kChunks; c++) {
    const std::vector<uint8_t> chunk = PatternChunk(c, 512 + (c * 97) % 1024);
    sent.insert(sent.end(), chunk.begin(), chunk.end());
    void* buf = client_.DmaMalloc(chunk.size());
    ASSERT_NE(buf, nullptr);
    std::memcpy(buf, chunk.data(), chunk.size());
    auto push_qt = client_.Push(cqd, Sgarray::Of(buf, static_cast<uint32_t>(chunk.size())));
    ASSERT_TRUE(push_qt.ok());
    EXPECT_EQ(WaitStepped(client_, *push_qt, World()).status, Status::kOk);
    client_.DmaFree(buf);
  }
  ASSERT_EQ(client_.Close(cqd), Status::kOk);

  QResult splice_r = WaitStepped(server_, *splice_qt, World());
  EXPECT_EQ(splice_r.status, Status::kOk);
  EXPECT_EQ(splice_r.bytes, sent.size());
  EXPECT_EQ(server_.storage()->log().stats().bounce_bytes, 0u)
      << "the TCP payload must reach the media through gather DMA, never a host flatten";
  EXPECT_GT(server_.storage()->log().stats().sg_appends, 0u);

  // Byte-exact readback: records concatenate to exactly the client's stream.
  auto rqd = server_.Open("relay-log");
  ASSERT_TRUE(rqd.ok());
  std::vector<uint8_t> stored;
  for (;;) {
    auto pop_qt = server_.Pop(*rqd);
    ASSERT_TRUE(pop_qt.ok());
    QResult r = WaitStepped(server_, *pop_qt, World());
    if (r.status == Status::kEndOfFile) {
      break;
    }
    ASSERT_EQ(r.status, Status::kOk);
    for (uint32_t i = 0; i < r.sga.num_segs; i++) {
      const uint8_t* p = static_cast<const uint8_t*>(r.sga.segs[i].buf);
      stored.insert(stored.end(), p, p + r.sga.segs[i].len);
    }
    server_.FreeSga(r.sga);
  }
  EXPECT_EQ(stored, sent);
}

TEST_F(CatnipSpliceTest, DiskToNetSpliceStreamsTheLog) {
  auto [cqd, sconn] = Connect();
  auto fqd = server_.Open("replay-log");
  ASSERT_TRUE(fqd.ok());

  // Seed the log through the regular push path.
  constexpr size_t kRecords = 12;
  std::vector<uint8_t> expected;
  for (size_t r = 0; r < kRecords; r++) {
    const std::vector<uint8_t> payload = PatternChunk(r, 700 + (r * 131) % 900);
    expected.insert(expected.end(), payload.begin(), payload.end());
    void* buf = server_.DmaMalloc(payload.size());
    ASSERT_NE(buf, nullptr);
    std::memcpy(buf, payload.data(), payload.size());
    auto push_qt = server_.Push(*fqd, Sgarray::Of(buf, static_cast<uint32_t>(payload.size())));
    ASSERT_TRUE(push_qt.ok());
    EXPECT_EQ(WaitStepped(server_, *push_qt, World()).status, Status::kOk);
    server_.DmaFree(buf);
  }

  auto splice_qt = server_.Splice(*fqd, sconn);
  ASSERT_TRUE(splice_qt.ok());

  // Client drains the stream while the splice runs.
  std::vector<uint8_t> received;
  while (received.size() < expected.size()) {
    auto pop_qt = client_.Pop(cqd);
    ASSERT_TRUE(pop_qt.ok());
    QResult r = WaitStepped(client_, *pop_qt, World());
    ASSERT_EQ(r.status, Status::kOk);
    for (uint32_t i = 0; i < r.sga.num_segs; i++) {
      const uint8_t* p = static_cast<const uint8_t*>(r.sga.segs[i].buf);
      received.insert(received.end(), p, p + r.sga.segs[i].len);
    }
    client_.FreeSga(r.sga);
  }
  EXPECT_EQ(received, expected);

  QResult splice_r = WaitStepped(server_, *splice_qt, World());
  EXPECT_EQ(splice_r.status, Status::kOk);
  EXPECT_EQ(splice_r.bytes, expected.size());
}

TEST_F(CatnipSpliceTest, SpliceRejectsUnsupportedQueuePairs) {
  auto [cqd, sconn] = Connect();
  auto fqd = server_.Open("log");
  ASSERT_TRUE(fqd.ok());

  auto conn_conn = server_.Splice(sconn, sconn);
  EXPECT_EQ(conn_conn.error(), Status::kNotSupported);
  auto file_file = server_.Splice(*fqd, *fqd);
  EXPECT_EQ(file_file.error(), Status::kNotSupported);
  auto bad = server_.Splice(999, *fqd);
  EXPECT_EQ(bad.error(), Status::kBadQueueDescriptor);
  // A diskless Catnip has no log to splice with.
  auto client_sock = client_.Socket(SocketType::kStream);
  ASSERT_TRUE(client_sock.ok());
  auto no_disk = client_.Splice(cqd, *client_sock);
  EXPECT_EQ(no_disk.error(), Status::kNotSupported);
}

}  // namespace
}  // namespace demi
