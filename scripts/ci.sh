#!/usr/bin/env bash
# The full CI gate, in the order a reviewer wants failures surfaced:
#
#   1. configure + build with -Werror (DEMI_WERROR=ON) — warnings fail first, fast;
#   2. the unit/integration test suite, including the perf smoke gates (perf_smoke_tcp,
#      perf_smoke_multicore — self-skips on hosts with < 4 hardware threads —
#      perf_smoke_c1m, the 100k-flow scaling gate from docs/SCALING.md, which self-skips
#      on memory-starved hosts, perf_smoke_tenant, the deterministic noisy-neighbor
#      isolation gate from docs/TENANCY.md, and perf_smoke_splice, the zero-copy
#      network×storage splice goodput gate from docs/STORAGE.md) plus the tenant and
#      splice chaos suites (tenant_test, tenant_chaos_test, splice_test,
#      splice_chaos_test);
#   3. the lint label (demilint over the tree — including the concurrency rules:
#      shard-local reachability, shared mutable statics, atomic-ordering justification,
#      lock-free fastpath regions — its fixture selftest, and check_docs);
#   4. clang-tidy, when installed (skips gracefully otherwise; concurrency-* findings are
#      errors);
#   5. the sanitizer sweep (ASan, UBSan, TSan over the threaded suites incl. the splice and
#      tenant chaos soaks, and the DemiSan tree: cross-tenant ownership, thread-affinity and
#      qtoken-lifecycle death tests plus the shard/chaos suites as zero-false-positive
#      soaks — scripts/run_sanitizers.sh).
#
# Usage: scripts/ci.sh [repo_root]
# Set DEMI_CI_SKIP_SANITIZERS=1 to stop after the lint stage (useful while iterating).

set -euo pipefail

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
JOBS="$(nproc 2>/dev/null || echo 4)"
BDIR="$ROOT/build-ci"

echo "=== [1/5] configure + build (DEMI_WERROR=ON) ==="
cmake -B "$BDIR" -S "$ROOT" -DDEMI_WERROR=ON
cmake --build "$BDIR" -j "$JOBS"

echo "=== [2/5] test suite ==="
(cd "$BDIR" && ctest -LE lint --output-on-failure -j "$JOBS")

echo "=== [3/5] lint (demilint + fixtures + check_docs) ==="
(cd "$BDIR" && ctest -L lint --output-on-failure)

echo "=== [4/5] clang-tidy ==="
"$ROOT/scripts/run_clang_tidy.sh" "$ROOT" "$BDIR"

if [ "${DEMI_CI_SKIP_SANITIZERS:-0}" = "1" ]; then
  echo "=== [5/5] sanitizers: skipped (DEMI_CI_SKIP_SANITIZERS=1) ==="
else
  echo "=== [5/5] sanitizers ==="
  "$ROOT/scripts/run_sanitizers.sh" "$ROOT"
fi

echo "ci.sh: all stages passed."
