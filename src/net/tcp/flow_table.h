// Open-addressed TCP flow table (docs/SCALING.md §4).
//
// Maps a packed 4-tuple key -> shared_ptr<TcpConnection> for the per-shard demultiplex on the
// RX fast path. Linear probing over three parallel preallocated arrays (control bytes, keys,
// values): a miss touches only the 1-byte control array until a candidate key matches, so the
// common lookup is one cache line of control bytes plus one key compare. Capacity is a power of
// two; the table grows (rehash, dropping tombstones) when live + tombstone slots exceed half of
// capacity, keeping expected probe lengths O(1) out to millions of flows.
//
// The local IP is implicit (one stack = one local IP), so the key packs the remaining tuple:
//   key = remote_ip << 32 | remote_port << 16 | local_port.

#ifndef SRC_NET_TCP_FLOW_TABLE_H_
#define SRC_NET_TCP_FLOW_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/affinity.h"
#include "src/common/logging.h"

namespace demi {

class TcpConnection;

class FlowTable {  // demilint: shard-local
 public:
  using Value = std::shared_ptr<TcpConnection>;

  static constexpr uint64_t MakeKey(uint32_t remote_ip, uint16_t remote_port,
                                    uint16_t local_port) {
    return (static_cast<uint64_t>(remote_ip) << 32) |
           (static_cast<uint64_t>(remote_port) << 16) | local_port;
  }

  explicit FlowTable(size_t capacity_hint = 1024) { Rehash(NormalizeCapacity(capacity_hint)); }

  size_t size() const { return size_; }
  size_t capacity() const { return ctrl_.size(); }
  bool empty() const { return size_ == 0; }

  // DemiSan thread-affinity (docs/STATIC_ANALYSIS.md): the owning worker binds the table at
  // shard spawn; afterwards every lookup/mutation revalidates the calling thread. Zero-cost
  // unless built with DEMI_OWNERSHIP_CHECKS.
  void BindShard(int shard_id) { affinity_.Bind(shard_id); }
  void UnbindShard() { affinity_.Unbind(); }

  // Returns the connection for `key`, or nullptr. The hot-path lookup: no allocation, no
  // shared_ptr copy.
  TcpConnection* Find(uint64_t key) const {
    affinity_.Check("FlowTable::Find");
    const size_t mask = ctrl_.size() - 1;
    size_t i = Hash(key) & mask;
    size_t probes = 1;
    while (true) {
      if (ctrl_[i] == kEmpty) {
        RecordProbe(probes);
        return nullptr;
      }
      if (ctrl_[i] == kFull && keys_[i] == key) {
        RecordProbe(probes);
        return vals_[i].get();
      }
      i = (i + 1) & mask;
      probes++;
    }
  }

  // Shared-ptr variant for callers that need ownership (accept delivery, erase-and-keep).
  Value FindShared(uint64_t key) const {
    affinity_.Check("FlowTable::FindShared");
    const size_t mask = ctrl_.size() - 1;
    size_t i = Hash(key) & mask;
    while (true) {
      if (ctrl_[i] == kEmpty) {
        return nullptr;
      }
      if (ctrl_[i] == kFull && keys_[i] == key) {
        return vals_[i];
      }
      i = (i + 1) & mask;
    }
  }

  // Inserts; returns false (and leaves the table unchanged) if the key is already present.
  bool Insert(uint64_t key, Value v) {
    affinity_.Check("FlowTable::Insert");
    MaybeGrow();
    const size_t mask = ctrl_.size() - 1;
    size_t i = Hash(key) & mask;
    size_t first_tomb = SIZE_MAX;
    while (true) {
      if (ctrl_[i] == kEmpty) {
        if (first_tomb != SIZE_MAX) {
          i = first_tomb;
          tombstones_--;
        }
        ctrl_[i] = kFull;
        keys_[i] = key;
        vals_[i] = std::move(v);
        size_++;
        return true;
      }
      if (ctrl_[i] == kTombstone) {
        if (first_tomb == SIZE_MAX) {
          first_tomb = i;
        }
      } else if (keys_[i] == key) {
        return false;
      }
      i = (i + 1) & mask;
    }
  }

  bool Erase(uint64_t key) {
    affinity_.Check("FlowTable::Erase");
    const size_t mask = ctrl_.size() - 1;
    size_t i = Hash(key) & mask;
    while (true) {
      if (ctrl_[i] == kEmpty) {
        return false;
      }
      if (ctrl_[i] == kFull && keys_[i] == key) {
        ctrl_[i] = kTombstone;
        vals_[i].reset();
        size_--;
        tombstones_++;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  // Visits every live flow: fn(key, const Value&).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < ctrl_.size(); i++) {
      if (ctrl_[i] == kFull) {
        fn(keys_[i], vals_[i]);
      }
    }
  }

  // Erases every flow for which fn(key, value) returns true; returns the number erased.
  template <typename Fn>
  size_t EraseIf(Fn&& fn) {
    affinity_.Check("FlowTable::EraseIf");
    size_t erased = 0;
    for (size_t i = 0; i < ctrl_.size(); i++) {
      if (ctrl_[i] == kFull && fn(keys_[i], vals_[i])) {
        ctrl_[i] = kTombstone;
        vals_[i].reset();
        size_--;
        tombstones_++;
        erased++;
      }
    }
    return erased;
  }

  void Clear() {
    affinity_.Check("FlowTable::Clear");
    for (size_t i = 0; i < ctrl_.size(); i++) {
      ctrl_[i] = kEmpty;
      vals_[i].reset();
    }
    size_ = 0;
    tombstones_ = 0;
  }

  // Bytes reserved by the three slot arrays (the flow table's share of the per-connection
  // budget in docs/SCALING.md).
  size_t ReservedBytes() const {
    return ctrl_.size() * (sizeof(uint8_t) + sizeof(uint64_t) + sizeof(Value));
  }

  struct Stats {
    uint64_t finds = 0;        // Find() calls
    uint64_t find_probes = 0;  // slots touched across all finds
    uint64_t max_probe = 0;    // worst single-lookup probe length observed
    uint64_t grows = 0;        // rehashes
  };
  const Stats& stats() const { return stats_; }

 private:
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kFull = 1;
  static constexpr uint8_t kTombstone = 2;
  static constexpr size_t kMinCapacity = 64;

  static size_t NormalizeCapacity(size_t hint) {
    size_t cap = kMinCapacity;
    while (cap < hint) {
      cap <<= 1;
    }
    return cap;
  }

  // splitmix64 finalizer: full-avalanche over the packed tuple so linear probing sees a
  // uniform distribution even though real tuples differ only in a few low bits.
  static uint64_t Hash(uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  void RecordProbe(size_t probes) const {
    stats_.finds++;
    stats_.find_probes += probes;
    if (probes > stats_.max_probe) {
      stats_.max_probe = probes;
    }
  }

  void MaybeGrow() {
    if ((size_ + tombstones_ + 1) * 2 <= ctrl_.size()) {
      return;
    }
    // Grow unless the pressure is mostly tombstones, in which case rehash in place.
    Rehash(size_ * 4 > ctrl_.size() ? ctrl_.size() * 2 : ctrl_.size());
    stats_.grows++;
  }

  void Rehash(size_t new_cap) {
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_vals = std::move(vals_);
    ctrl_.assign(new_cap, kEmpty);
    keys_.assign(new_cap, 0);
    vals_.assign(new_cap, nullptr);
    tombstones_ = 0;
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_ctrl.size(); i++) {
      if (old_ctrl[i] != kFull) {
        continue;
      }
      size_t j = Hash(old_keys[i]) & mask;
      while (ctrl_[j] != kEmpty) {
        j = (j + 1) & mask;
      }
      ctrl_[j] = kFull;
      keys_[j] = old_keys[i];
      vals_[j] = std::move(old_vals[i]);
    }
  }

  std::vector<uint8_t> ctrl_;
  std::vector<uint64_t> keys_;
  std::vector<Value> vals_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
  mutable Stats stats_;
  ShardAffinity affinity_;  // empty (zero-cost) unless DEMI_OWNERSHIP_CHECKS
};

}  // namespace demi

#endif  // SRC_NET_TCP_FLOW_TABLE_H_
