// Catnap: the POSIX library OS (paper §6.1), for developing and testing µs-scale applications
// without kernel-bypass hardware.
//
// Implements PDPIX over real kernel sockets in non-blocking mode, *polling* read/write instead
// of sleeping in epoll — which is why Catnap has lower latency than a classic epoll loop but
// burns a core (the trade-off §7.3 measures). No memory-management integration is needed: POSIX
// I/O is copy-based, so buffers are plain DMA-heap allocations handed across the API.
//
// Storage queues are files on the host filesystem with fsync-on-push durability, mirroring the
// paper's Linux/ext4 comparison configuration.

#ifndef SRC_LIBOSES_CATNAP_H_
#define SRC_LIBOSES_CATNAP_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/libos.h"

namespace demi {

class Catnap final : public LibOS {
 public:
  explicit Catnap(Clock& clock);
  ~Catnap() override;

  Result<QueueDesc> Socket(SocketType type) override;
  [[nodiscard]] Status Bind(QueueDesc qd, SocketAddress local) override;
  [[nodiscard]] Status Listen(QueueDesc qd, int backlog) override;
  Result<QToken> Accept(QueueDesc qd) override;
  Result<QToken> Connect(QueueDesc qd, SocketAddress remote) override;
  [[nodiscard]] Status Close(QueueDesc qd) override;
  Result<QueueDesc> Open(std::string_view path) override;
  [[nodiscard]] Status Seek(QueueDesc qd, uint64_t offset) override;
  [[nodiscard]] Status Truncate(QueueDesc qd, uint64_t offset) override;
  Result<QToken> Push(QueueDesc qd, const Sgarray& sga) override;
  Result<QToken> PushTo(QueueDesc qd, const Sgarray& sga, SocketAddress to) override;
  Result<QToken> Pop(QueueDesc qd) override;

  // Maximum bytes returned by one socket pop.
  static constexpr size_t kPopChunk = 64 * 1024;

 private:
  enum class QKind : uint8_t { kTcp, kTcpListener, kUdp, kFile };

  struct QueueState {
    QKind kind;
    int fd = -1;
    SocketType type = SocketType::kStream;
    bool connected = false;
    uint64_t read_cursor = 0;  // files
  };

  QueueState* Find(QueueDesc qd);

  Task<void> AcceptOp(QueueDesc qd, QToken qt, int fd);
  Task<void> ConnectOp(QueueDesc qd, QToken qt, int fd);
  Task<void> PopSocketOp(QueueDesc qd, QToken qt, int fd, SocketType type);
  Task<void> PushSocketOp(QueueDesc qd, QToken qt, int fd, std::vector<Buffer> pinned,
                          size_t already_written);

  QueueDesc InstallFd(int fd, QKind kind, SocketType type);

  std::unordered_map<QueueDesc, QueueState> queues_;
};

}  // namespace demi

#endif  // SRC_LIBOSES_CATNAP_H_
