#include "src/core/tenant.h"

namespace demi {

void TenantTable::Register(TenantId tenant, const TenantConfig& config) {
  if (tenant == kDefaultTenant) {
    return;  // the control domain is implicit and unlimited
  }
  Entry* e = FindEntry(tenant);
  if (e == nullptr) {
    entries_.push_back(Entry{tenant, config, TenantStats{}});
    ids_.push_back(tenant);
  } else {
    e->config = config;
  }
  any_watermark_ = false;
  for (const Entry& entry : entries_) {
    if (entry.config.inflight_watermark > 0) {
      any_watermark_ = true;
    }
  }
}

TenantTable::Entry* TenantTable::FindEntry(TenantId tenant) {
  for (Entry& e : entries_) {
    if (e.id == tenant) {
      return &e;
    }
  }
  return nullptr;
}

const TenantTable::Entry* TenantTable::FindEntry(TenantId tenant) const {
  for (const Entry& e : entries_) {
    if (e.id == tenant) {
      return &e;
    }
  }
  return nullptr;
}

const TenantConfig* TenantTable::Find(TenantId tenant) const {
  const Entry* e = FindEntry(tenant);
  return e == nullptr ? nullptr : &e->config;
}

bool TenantTable::TryAdmitAccept(TenantId tenant) {
  Entry* e = FindEntry(tenant);
  if (e == nullptr) {
    return true;  // unregistered tenants (and kDefaultTenant) are never limited
  }
  if (e->config.accept_backlog > 0 && e->stats.accept_inflight >= e->config.accept_backlog) {
    e->stats.accept_shed++;
    return false;
  }
  e->stats.accept_inflight++;
  e->stats.accept_admitted++;
  return true;
}

void TenantTable::ReleaseAccept(TenantId tenant) {
  Entry* e = FindEntry(tenant);
  if (e != nullptr && e->stats.accept_inflight > 0) {
    e->stats.accept_inflight--;
  }
}

bool TenantTable::ShouldShed(TenantId tenant, size_t inflight_qtokens) const {
  if (!any_watermark_ || tenant == kDefaultTenant) {
    return false;
  }
  const Entry* e = FindEntry(tenant);
  if (e == nullptr || e->config.inflight_watermark == 0) {
    return false;
  }
  return inflight_qtokens >= e->config.inflight_watermark;
}

void TenantTable::CountOpShed(TenantId tenant) {
  Entry* e = FindEntry(tenant);
  if (e != nullptr) {
    e->stats.op_shed++;
  }
}

TenantTable::TenantStats TenantTable::GetStats(TenantId tenant) const {
  const Entry* e = FindEntry(tenant);
  return e == nullptr ? TenantStats{} : e->stats;
}

uint64_t TenantTable::TotalAcceptAdmitted() const {
  uint64_t total = 0;
  for (const Entry& e : entries_) {
    total += e.stats.accept_admitted;
  }
  return total;
}

uint64_t TenantTable::TotalAcceptShed() const {
  uint64_t total = 0;
  for (const Entry& e : entries_) {
    total += e.stats.accept_shed;
  }
  return total;
}

uint64_t TenantTable::TotalOpShed() const {
  uint64_t total = 0;
  for (const Entry& e : entries_) {
    total += e.stats.op_shed;
  }
  return total;
}

}  // namespace demi
