// FaultInjector: seeded, deterministic cross-layer fault injection for chaos testing.
//
// FoundationDB-style simulation testing: every fault decision — frame corruption, link flaps,
// pairwise partitions, disk I/O errors and latency spikes, torn writes, allocation failures —
// is drawn from one xoshiro256** stream seeded by FaultPlan::seed, so a failing chaos run
// replays bit-for-bit from its seed alone. Substrates (SimNetwork, SimBlockDevice,
// PoolAllocator) hold an optional FaultInjector* and consult it at their injection points; a
// null pointer (the default everywhere) costs one branch and keeps production behaviour
// unchanged.
//
// Every injected fault increments a `faults.*` metric and emits a `kFault*` trace event, so
// chaos tests can assert that injected faults are observable end to end. The plan is
// env-configurable: DEMI_FAULT_SEED pins the seed, DEMI_FAULT_PLAN overrides the knob list
// (see docs/FAULTS.md for the schema and the seed-replay workflow).

#ifndef SRC_FAULTS_FAULT_INJECTOR_H_
#define SRC_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/core/types.h"
#include "src/net/address.h"
#include "src/observability/metrics.h"
#include "src/observability/trace.h"

namespace demi {

// All probabilities are per-decision (per frame, per disk op, per allocation) in [0, 1].
// Durations are virtual nanoseconds. A default-constructed plan injects nothing.
struct FaultPlan {
  uint64_t seed = 1;

  // Network (consulted once per frame in SimNetwork::Deliver).
  double net_corrupt = 0.0;          // flip bits in a delivered frame
  uint32_t net_corrupt_bits = 1;     // how many bits flip per corrupted frame
  double net_link_flap = 0.0;        // the whole fabric goes down for net_link_down_ns
  DurationNs net_link_down_ns = 50 * kMicrosecond;
  double net_partition = 0.0;        // the (src, dst) pair partitions for net_partition_ns
  DurationNs net_partition_ns = 200 * kMicrosecond;

  // Disk (consulted once per submitted op in SimBlockDevice).
  double disk_error = 0.0;           // transient I/O-error completion (media untouched)
  double disk_delay = 0.0;           // completion latency spike
  DurationNs disk_delay_ns = 200 * kMicrosecond;
  double disk_torn = 0.0;            // crash-point torn write: only a prefix lands, op errors

  // Memory (consulted once per PoolAllocator::Alloc).
  double alloc_fail = 0.0;           // Alloc returns nullptr

  // Tenant-scoped network loss (consulted per EthernetLayer::SendIpv4 for that tenant only).
  // Parsed as "tenant_drop=<id>:<rate>"; lets chaos soaks aim loss at one tenant and assert
  // the others' invariants still hold (docs/TENANCY.md).
  uint32_t tenant_drop_id = 0;       // kDefaultTenant (0) disables
  double tenant_drop = 0.0;          // per-frame drop probability for that tenant

  // True if any knob is non-zero (i.e. arming this plan can inject something).
  bool Any() const;

  // Parses "key=value,key=value" (e.g. "net_corrupt=0.05,disk_error=0.1,seed=7"). Unknown keys
  // or malformed values fail; `error` (if non-null) receives a description.
  static std::optional<FaultPlan> Parse(std::string_view spec, std::string* error = nullptr);

  // Builds a plan from DEMI_FAULT_PLAN / DEMI_FAULT_SEED. Returns nullopt when neither is set
  // (callers fall back to their own plan); DEMI_FAULT_SEED alone overrides only the seed of
  // `fallback`.
  static std::optional<FaultPlan> FromEnv(const FaultPlan& fallback);
  static std::optional<FaultPlan> FromEnv();  // fallback = default-constructed plan

  std::string ToString() const;
};

class FaultInjector {
 public:
  FaultInjector() = default;  // disarmed: every Should* answers "no fault"
  explicit FaultInjector(const FaultPlan& plan) { Arm(plan); }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // (Re)seeds the decision stream and clears stats and link/partition state.
  void Arm(const FaultPlan& plan);
  void Disarm();

  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  // --- network injection points (SimNetwork::Deliver) ---

  // May start a link-down window or a pairwise partition, then answers whether this frame is
  // swallowed by an active one. Counting and tracing happen inside.
  bool NetShouldDrop(MacAddr src, MacAddr dst, TimeNs now);

  // Possibly flips plan().net_corrupt_bits random bits of `frame` in place; returns true and
  // records the fault if it did.
  bool NetMaybeCorrupt(std::vector<uint8_t>& frame);

  // --- disk injection point (SimBlockDevice::Submit*) ---

  struct DiskFault {
    bool io_error = false;       // complete with Status::kIoError, media untouched
    DurationNs extra_latency = 0;
    bool torn = false;           // write only: `torn_bytes` of the payload reach the media
    size_t torn_bytes = 0;
  };
  DiskFault DiskOnSubmit(bool is_read, size_t bytes, uint64_t cookie);

  // --- memory injection point (PoolAllocator::Alloc) ---

  bool AllocShouldFail(size_t bytes);

  // --- tenant injection point (EthernetLayer::SendIpv4) ---

  // True when the plan targets `tenant` with tenant_drop and this frame loses the coin flip.
  bool TenantShouldDrop(TenantId tenant, size_t bytes);

  struct Stats {
    uint64_t frames_corrupted = 0;
    uint64_t frames_dropped = 0;   // swallowed by a flap or partition window
    uint64_t link_flaps = 0;
    uint64_t partitions = 0;
    uint64_t disk_io_errors = 0;
    uint64_t disk_delays = 0;
    uint64_t disk_torn_writes = 0;
    uint64_t alloc_failures = 0;
    uint64_t tenant_frames_dropped = 0;  // frames swallowed by tenant_drop targeting
  };
  Stats GetStats() const;

  // Registers the `faults.*` metric family (callback-sampled from Stats).
  void RegisterMetrics(MetricsRegistry& registry);
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  void Trace(TraceEventType type, uint32_t arg1, uint64_t arg2) {
    if (tracer_ != nullptr) {
      tracer_->Record(type, arg1, arg2);
    }
  }

  mutable std::mutex mu_;  // decisions may come from multiple stacks/threads
  bool armed_ = false;
  FaultPlan plan_;
  Rng rng_{1};
  Stats stats_;
  TimeNs link_down_until_ = 0;
  // Active pairwise partitions, keyed by the unordered MAC pair.
  std::map<std::pair<uint64_t, uint64_t>, TimeNs> partitions_;
  Tracer* tracer_ = nullptr;
};

}  // namespace demi

#endif  // SRC_FAULTS_FAULT_INJECTOR_H_
