// Figure 6 reproduction (substituted; DESIGN.md §2): the paper demonstrates portability by
// running the unmodified echo server on Windows (Catpaw/WSL) and in Azure VMs. Neither
// environment exists here, so we substitute *simulated environment changes*: the identical
// application binaryruns across
//   - native:      the Figure-5 fabric (bare-metal-like),
//   - virtualized: every frame pays a SmartNIC/vnet-translation overhead and higher base
//                  latency (the Azure-VM effect the paper measured: DPDK still works, but
//                  slower than bare metal; RDMA runs bare-metal-class),
//   - congested:   a slower, jittery fabric (the WSL-like degraded-host stand-in).
// The point being reproduced: the application and libOS code are byte-identical across rows —
// only the environment changes, and relative libOS ordering is preserved within each.

#include "bench/bench_common.h"

namespace demi {
namespace bench {
namespace {

constexpr size_t kMsgSize = 64;
constexpr uint64_t kIters = 10000;

void RunEnvironment(const char* env_name, const LinkConfig& link, bool rdma_native) {
  std::printf("\n--- environment: %s ---\n", env_name);
  {
    CatnapPair pair;
    const SocketAddress addr = Loopback(UniquePort());
    auto r = DuetEcho({*pair.server, *pair.client, addr, SocketType::kStream}, kMsgSize,
                      kIters / 4);
    PrintLatencyRow("  Catnap", r.rtt, "kernel loopback: environment-independent");
  }
  {
    // The paper: Azure does not virtualize RDMA — Catmint runs bare-metal Infiniband even in
    // the VM rows. Model that by keeping the RDMA fabric native when rdma_native is set.
    CatmintPair pair(rdma_native ? LinkConfig{} : link);
    auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 5301}}, kMsgSize, kIters);
    PrintLatencyRow("  Catmint", r.rtt,
                    rdma_native ? "RDMA not virtualized (bare-metal path)" : "");
  }
  {
    CatnipPair pair(link);
    auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 5302}, SocketType::kStream},
                      kMsgSize, kIters);
    PrintLatencyRow("  Catnip TCP", r.rtt, "same binary, different fabric");
  }
}

}  // namespace

void Main() {
  PrintHeader("Figure 6: portability — identical echo app across environments",
              "same app runs on Windows and Azure VMs unchanged; Catnip ~5x faster than "
              "kernel in a VM, Catmint native even in the VM");

  LinkConfig native;  // defaults: 1 us, 100 Gbps

  LinkConfig azure_like;
  azure_like.latency = 10 * kMicrosecond;        // VM-to-VM through the vnet
  azure_like.per_frame_overhead = 3 * kMicrosecond;  // SmartNIC vnet translation per frame
  azure_like.bandwidth_bps = 40'000'000'000ULL;

  LinkConfig degraded;
  degraded.latency = 25 * kMicrosecond;
  degraded.per_frame_overhead = 8 * kMicrosecond;
  degraded.bandwidth_bps = 10'000'000'000ULL;

  RunEnvironment("native (bare-metal-like fabric)", native, /*rdma_native=*/false);
  RunEnvironment("virtualized (Azure-VM-like: vnet overhead per frame)", azure_like,
                 /*rdma_native=*/true);
  RunEnvironment("degraded host (WSL-like slow path)", degraded, /*rdma_native=*/false);
}

}  // namespace bench
}  // namespace demi

int main() {
  demi::bench::Main();
  return 0;
}
