// SimNetwork + SimNic: the simulated kernel-bypass NIC substrate.
//
// Substitution for DPDK hardware (DESIGN.md §2): SimNic exposes the poll-mode burst interface a
// DPDK PMD gives a userspace stack — TxBurst gathers segments into a wire frame, RxBurst returns
// frames whose simulated delivery time has arrived — and enforces the DMA-registration
// discipline: zero-copy payload segments must come from memory registered with the device
// (DPDK's mempool requirement), which the PoolAllocator satisfies via its DmaRegistrar hook.
//
// The fabric connects ports by MAC address and models per-link one-way latency, serialization
// delay (line rate), loss, reordering and duplication. Ports are thread-safe so a client and a
// server stack can run on different threads, like two hosts on a switch; deterministic tests
// drive everything single-threaded off a VirtualClock.

#ifndef SRC_NETSIM_SIM_NETWORK_H_
#define SRC_NETSIM_SIM_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/memory/dma.h"
#include "src/net/address.h"
#include "src/netsim/pcap_writer.h"

namespace demi {

class FaultInjector;

struct LinkConfig {
  DurationNs latency = 1 * kMicrosecond;  // one-way propagation + switching
  uint64_t bandwidth_bps = 100'000'000'000ULL;  // 100 Gbps; 0 = infinite
  double loss = 0.0;                      // drop probability per frame
  double reorder = 0.0;                   // probability of extra delay (causes reordering)
  DurationNs reorder_extra = 20 * kMicrosecond;
  double duplicate = 0.0;                 // probability a frame is delivered twice
  size_t mtu = 1500;                      // max frame size the port accepts
  size_t rx_queue_frames = 4096;          // frames queued at the receiver before taildrop
  DurationNs per_frame_overhead = 0;      // extra per-frame cost (models virtualization layers)
};

// A raw frame on the wire.
using WireFrame = std::vector<uint8_t>;

class SimNetwork {
 public:
  explicit SimNetwork(const LinkConfig& link = LinkConfig{}, uint64_t seed = 1);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  class Port;

  // Attaches a new port with the given MAC. The returned Port stays valid for the network's
  // lifetime. Fails (returns nullptr) if the MAC is taken.
  Port* CreatePort(MacAddr mac);

  // Injects a frame from `src` toward `dst` (broadcast supported). Called by devices.
  void Deliver(MacAddr src, MacAddr dst, WireFrame frame, TimeNs now);

  const LinkConfig& link() const { return link_; }
  void set_link(const LinkConfig& link) { link_ = link; }

  // Optional chaos hook (null by default): consulted per frame for injected corruption, link
  // flaps and pairwise partitions. See src/faults/fault_injector.h.
  void SetFaultInjector(FaultInjector* faults) {
    std::lock_guard<std::mutex> lock(mu_);
    faults_ = faults;
  }

  struct Stats {
    uint64_t frames_sent = 0;
    uint64_t frames_dropped_loss = 0;
    uint64_t frames_dropped_queue = 0;
    uint64_t frames_dropped_fault = 0;  // swallowed by an injected flap/partition window
    uint64_t frames_duplicated = 0;
    uint64_t frames_reordered = 0;
    uint64_t frames_corrupted = 0;      // delivered with injected bit flips
  };
  Stats GetStats() const;

  // Earliest pending delivery time across all ports (0 if idle); lets stepped tests advance a
  // VirtualClock to exactly the next network event.
  TimeNs NextDeliveryTime() const;

  // Starts capturing every transmitted frame (pre-loss, like a switch SPAN port) to a pcap file
  // readable by tcpdump/Wireshark. Returns false if the file cannot be opened.
  bool EnablePcap(const std::string& path);
  void DisablePcap();
  uint64_t PcapFramesWritten() const;

 private:
  struct PendingFrame {
    TimeNs deliver_at;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    WireFrame data;
    bool operator>(const PendingFrame& o) const {
      return deliver_at != o.deliver_at ? deliver_at > o.deliver_at : seq > o.seq;
    }
  };

  void DeliverToPort(Port* port, WireFrame frame, TimeNs deliver_at);

  mutable std::mutex mu_;
  LinkConfig link_;
  Rng rng_;
  uint64_t next_seq_ = 0;
  std::map<uint64_t, std::unique_ptr<Port>> ports_;  // keyed by MAC value
  std::unique_ptr<PcapWriter> pcap_;
  Stats stats_;
  FaultInjector* faults_ = nullptr;

 public:
  // A receive endpoint. Devices poll it for deliverable frames.
  class Port {
   public:
    explicit Port(MacAddr mac) : mac_(mac) {}

    // Pops up to `out.size()` frames whose delivery time has arrived. Returns count.
    size_t Poll(std::span<WireFrame> out, TimeNs now);

    // True if a frame could be delivered at `now` (cheap peek).
    bool HasDeliverable(TimeNs now) const;

    MacAddr mac() const { return mac_; }
    TimeNs next_tx_free = 0;  // sender-side line-rate tracking, guarded by network mu_

   private:
    friend class SimNetwork;
    mutable std::mutex mu_;
    std::priority_queue<PendingFrame, std::vector<PendingFrame>, std::greater<PendingFrame>>
        inbound_;
    MacAddr mac_;
  };
};

// Poll-mode NIC bound to one fabric port; the "device" a Catnip instance drives.
class SimNic {
 public:
  SimNic(SimNetwork& network, MacAddr mac, Clock& clock);

  // DPDK rte_rx_burst analogue: fills `out` with up to out.size() frames; returns count.
  size_t RxBurst(std::span<WireFrame> out);

  // DPDK rte_tx_burst analogue with gather: concatenates `segments` into one wire frame.
  // Zero-copy-sized segments must lie in DMA-registered memory (checked), mirroring the mempool
  // requirement; returns kMessageTooLong if the frame exceeds the MTU.
  [[nodiscard]] Status TxBurst(MacAddr dst, std::span<const std::span<const uint8_t>> segments);

  MacAddr mac() const { return mac_; }
  size_t mtu() const { return network_.link().mtu; }
  Clock& clock() { return clock_; }

  // The registrar applications' allocators must be wired to for zero-copy TX.
  DmaRegistrar& registrar() { return registrar_; }
  bool IsDmaCapable(const void* ptr, size_t len) const { return registrar_.Covers(ptr, len); }

  struct Stats {
    uint64_t tx_frames = 0;
    uint64_t tx_bytes = 0;
    uint64_t rx_frames = 0;
    uint64_t rx_bytes = 0;
    uint64_t tx_oversize = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Records registered regions so the device can verify DMA-capability of TX segments.
  class RangeRegistrar final : public DmaRegistrar {
   public:
    uint64_t RegisterRegion(void* base, size_t len) override {
      std::lock_guard<std::mutex> lock(mu_);
      ranges_[reinterpret_cast<uintptr_t>(base)] = len;
      return next_key_++;
    }
    void UnregisterRegion(void* base) override {
      std::lock_guard<std::mutex> lock(mu_);
      ranges_.erase(reinterpret_cast<uintptr_t>(base));
    }
    bool Covers(const void* ptr, size_t len) const {
      std::lock_guard<std::mutex> lock(mu_);
      const auto addr = reinterpret_cast<uintptr_t>(ptr);
      auto it = ranges_.upper_bound(addr);
      if (it == ranges_.begin()) {
        return false;
      }
      --it;
      return addr + len <= it->first + it->second;
    }

   private:
    mutable std::mutex mu_;
    std::map<uintptr_t, size_t> ranges_;
    uint64_t next_key_ = 1;
  };

  SimNetwork& network_;
  SimNetwork::Port* port_;
  MacAddr mac_;
  Clock& clock_;
  RangeRegistrar registrar_;
  Stats stats_;
};

}  // namespace demi

#endif  // SRC_NETSIM_SIM_NETWORK_H_
