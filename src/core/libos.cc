#include "src/core/libos.h"

namespace demi {

void LibOS::InitObservability() {
  sched_.SetTracer(&tracer_);
  tokens_.SetTracer(&tracer_);

  const Scheduler::Stats& ss = sched_.stats();
  metrics_.RegisterCallback("sched.polls", "sched", "polls", "Scheduler Poll() rounds",
                            [&ss] { return ss.polls; });
  metrics_.RegisterCallback("sched.resumptions", "sched", "resumes",
                            "Fiber resumptions across all polls", [&ss] { return ss.resumptions; });
  metrics_.RegisterCallback("sched.fibers_spawned", "sched", "fibers", "Fibers spawned",
                            [&ss] { return ss.fibers_spawned; });
  metrics_.RegisterCallback("sched.fibers_completed", "sched", "fibers",
                            "Fibers run to completion", [&ss] { return ss.fibers_completed; });
  metrics_.RegisterCallback("sched.timer_fires", "sched", "timers", "Timer deadlines fired",
                            [&ss] { return ss.timer_fires; });
  metrics_.RegisterCallback("sched.stale_wakes", "sched", "wakes",
                            "Ready bits found on dead/recycled fiber slots",
                            [&ss] { return ss.stale_wakes; });
  metrics_.RegisterCallback("sched.blocks_scanned", "sched", "blocks",
                            "Waker blocks scanned with a ready bit set",
                            [&ss] { return ss.blocks_scanned; });
  metrics_.RegisterCallback("sched.blocks_skipped", "sched", "blocks",
                            "Waker blocks skipped as all-clear (the tzcnt fast path)",
                            [&ss] { return ss.blocks_skipped; });
  metrics_.RegisterCallback("sched.yields", "sched", "yields", "co_await Yield{} suspensions",
                            [&ss] { return ss.yields; });
  metrics_.RegisterCallback("sched.fiber_blocks", "sched", "blocks",
                            "Suspensions into blocking awaitables (Event/Sleep)",
                            [&ss] { return ss.fiber_blocks; });
  metrics_.RegisterCallback("sched.live_fibers", "sched", "fibers", "Currently live fibers",
                            [this] { return sched_.NumLiveFibers(); });
  metrics_.RegisterCallback("sched.runnable", "sched", "fibers",
                            "Run-queue depth (fibers with their ready bit set)",
                            [this] { return sched_.NumRunnable(); });

  const TimerWheel& wheel = sched_.timer_wheel();
  metrics_.RegisterCallback("timerwheel.armed", "timerwheel", "timers",
                            "Timers currently armed", [&wheel] { return wheel.armed(); });
  metrics_.RegisterCallback("timerwheel.arms", "timerwheel", "timers",
                            "Successful Arm() calls", [&wheel] { return wheel.stats().arms; });
  metrics_.RegisterCallback("timerwheel.fires", "timerwheel", "timers",
                            "Timer callbacks invoked", [&wheel] { return wheel.stats().fires; });
  metrics_.RegisterCallback("timerwheel.cancels", "timerwheel", "timers",
                            "Cancels that removed a pending timer",
                            [&wheel] { return wheel.stats().cancels; });
  metrics_.RegisterCallback("timerwheel.cascades", "timerwheel", "timers",
                            "Entries re-filed from a higher wheel level toward level 0",
                            [&wheel] { return wheel.stats().cascades; });

  metrics_.RegisterCallback("heap.superblocks", "heap", "blocks", "Live superblocks",
                            [this] { return alloc_.GetStats().superblocks; });
  metrics_.RegisterCallback("heap.live_objects", "heap", "objects",
                            "App-owned or libOS-referenced objects",
                            [this] { return alloc_.GetStats().live_objects; });
  metrics_.RegisterCallback("heap.deferred_frees", "heap", "objects",
                            "Objects freed by the app but pinned by a libOS reference (UAF)",
                            [this] { return alloc_.GetStats().deferred_frees; });
  metrics_.RegisterCallback("heap.registered_blocks", "heap", "blocks",
                            "DMA-registered superblocks",
                            [this] { return alloc_.GetStats().registered_blocks; });
  metrics_.RegisterCallback("heap.overflow_refs", "heap", "refs",
                            "Side-table refcount entries",
                            [this] { return alloc_.GetStats().overflow_refs; });
  metrics_.RegisterCallback("heap.bytes_reserved", "heap", "bytes", "Bytes reserved from the OS",
                            [this] { return alloc_.GetStats().bytes_reserved; });

  wait_calls_ = &metrics_.RegisterCounter("core.wait_calls", "core", "calls",
                                          "wait/wait_any/wait_all invocations");
  wait_poll_rounds_ = &metrics_.RegisterCounter(
      "core.wait_poll_rounds", "core", "rounds",
      "Scheduler rounds run while blocked in a wait_* call");
  wait_ns_ = &metrics_.RegisterHistogram("core.wait_ns", "core", "ns",
                                         "Latency of completed wait_* calls");
  metrics_.RegisterCallback("core.tokens_pending", "core", "tokens",
                            "Issued qtokens not yet completed",
                            [this] { return tokens_.NumPending(); });

  metrics_.RegisterCallback("tenant.registered", "tenant", "tenants",
                            "Isolation domains registered on this libOS",
                            [this] { return tenants_.NumRegistered(); });
  metrics_.RegisterCallback("tenant.accept_admitted", "tenant", "connections",
                            "Accept-admission slots charged across all tenants",
                            [this] { return tenants_.TotalAcceptAdmitted(); });
  metrics_.RegisterCallback("tenant.accept_shed", "tenant", "connections",
                            "Handshakes shed at a tenant's accept-admission limit",
                            [this] { return tenants_.TotalAcceptShed(); });
  metrics_.RegisterCallback("tenant.op_shed", "tenant", "ops",
                            "Push/pop submissions shed at a tenant's inflight watermark",
                            [this] { return tenants_.TotalOpShed(); });
  metrics_.RegisterCallback("tenant.mem_denials", "tenant", "allocations",
                            "DMA-heap allocations denied over a tenant memory budget",
                            [this] { return alloc_.TenantDenials(); });
  metrics_.RegisterCallback("tenant.mem_used_bytes", "tenant", "bytes",
                            "DMA-heap bytes currently charged to registered tenants",
                            [this] { return static_cast<uint64_t>(alloc_.TenantBytesUsed()); });

  metrics_.RegisterCallback("qtoken.lifecycle_violations", "qtoken", "violations",
                            "Stale-token misuses classified by the lifecycle checker "
                            "(double-wait, harvest-after-drop, complete-after-free)",
                            [this] { return tokens_.lifecycle_violations(); });
  Gauge& demisan = metrics_.RegisterGauge(
      "demisan.enabled", "demisan", "bool",
      "1 when the DemiSan ownership/affinity sanitizer (DEMI_OWNERSHIP_CHECKS) is compiled in");
#if defined(DEMI_OWNERSHIP_CHECKS)
  demisan.Set(1);
#else
  demisan.Set(0);
#endif
  numa_gauge_ = &metrics_.RegisterGauge(
      "pool.numa_node", "pool", "node",
      "NUMA node the shard's DMA heap is first-touch placed on (-1 = unplaced/unknown)");
  numa_gauge_->Set(-1);
}

Status LibOS::RegisterTenant(TenantId tenant, const TenantConfig& config) {
  if (tenant == kDefaultTenant) {
    return Status::kInvalidArgument;  // tenant 0 is the implicit control domain
  }
  const bool fresh = !tenants_.IsRegistered(tenant);
  tenants_.Register(tenant, config);
  alloc_.SetTenantBudget(tenant, config.mem_budget_bytes);
  if (fresh) {
    // Per-tenant labelled gauges. The {tenant=N} suffix keeps them out of the fixed metric
    // namespace (docs/OBSERVABILITY.md documents the families once, not per id).
    const std::string label = "{tenant=" + std::to_string(tenant) + "}";
    metrics_.RegisterCallback("tenant.mem_used" + label, "tenant", "bytes",
                              "DMA-heap bytes charged to this tenant", [this, tenant] {
                                return static_cast<uint64_t>(
                                    alloc_.GetTenantMemStats(tenant).used_bytes);
                              });
    metrics_.RegisterCallback("tenant.mem_denials" + label, "tenant", "allocations",
                              "Allocations denied over this tenant's memory budget",
                              [this, tenant] { return alloc_.GetTenantMemStats(tenant).denials; });
    metrics_.RegisterCallback("tenant.accept_shed" + label, "tenant", "connections",
                              "Handshakes shed at this tenant's accept-admission limit",
                              [this, tenant] { return tenants_.GetStats(tenant).accept_shed; });
    metrics_.RegisterCallback("tenant.op_shed" + label, "tenant", "ops",
                              "Submissions shed at this tenant's inflight watermark",
                              [this, tenant] { return tenants_.GetStats(tenant).op_shed; });
    metrics_.RegisterCallback("tenant.inflight_qtokens" + label, "tenant", "tokens",
                              "Qtokens this tenant currently has in flight",
                              [this, tenant] { return tokens_.InflightForTenant(tenant); });
  }
  OnTenantRegistered(tenant, config);
  return Status::kOk;
}

size_t LibOS::DrainPendingTokens() {
  // Give in-flight work a bounded chance to complete normally first: each round runs the
  // fast-path poll plus every runnable coroutine once.
  constexpr size_t kMaxDrainRounds = 64;
  for (size_t round = 0; round < kMaxDrainRounds && tokens_.NumPending() > 0; round++) {
    sched_.Poll();
  }
  // Force-dispose what is left. Completed-but-unclaimed pops carry app-owned sga buffers that
  // must go back to the heap, or shutdown leaks them (and DemiSan flags the imbalance).
  return tokens_.Drain([this](QResult& result) {
    if (result.opcode == OpCode::kPop && result.status == Status::kOk) {
      FreeSga(result.sga);
    }
  });
}

Result<QResult> LibOS::Wait(QToken qt, DurationNs timeout) {
  // demilint: fastpath
  if (!tokens_.IsValid(qt)) {
    return Status::kBadQToken;
  }
  wait_calls_->Inc();
  const TimeNs start = clock_.Now();
  const TimeNs deadline = timeout == 0 ? 0 : start + timeout;
  for (;;) {
    if (tokens_.IsDone(qt)) {
      auto r = tokens_.Take(qt);
      wait_ns_->Record(clock_.Now() - start);
      if (r.ok()) {
        tracer_.Record(TraceEventType::kQTokenRedeemed, static_cast<uint32_t>(r->qd), qt);
      }
      return r;
    }
    sched_.Poll();
    RunExternalPump();
    wait_poll_rounds_->Inc();
    if (deadline != 0 && clock_.Now() >= deadline && !tokens_.IsDone(qt)) {
      return Status::kTimedOut;
    }
  }
  // demilint: end-fastpath
}

Result<QResult> LibOS::WaitAny(std::span<const QToken> qts, size_t* index_out,
                               DurationNs timeout) {
  // demilint: fastpath
  for (QToken qt : qts) {
    if (!tokens_.IsValid(qt)) {
      return Status::kBadQToken;
    }
  }
  wait_calls_->Inc();
  const TimeNs start = clock_.Now();
  const TimeNs deadline = timeout == 0 ? 0 : start + timeout;
  // Fairness: rotate where the scan starts so that when several tokens are done at once, a
  // perpetually-busy low index cannot starve the others across repeated WaitAny calls.
  const size_t rot = qts.empty() ? 0 : wait_any_rr_++ % qts.size();
  for (;;) {
    for (size_t k = 0; k < qts.size(); k++) {
      const size_t i = (rot + k) % qts.size();
      if (tokens_.IsDone(qts[i])) {
        if (index_out != nullptr) {
          *index_out = i;
        }
        auto r = tokens_.Take(qts[i]);
        wait_ns_->Record(clock_.Now() - start);
        if (r.ok()) {
          tracer_.Record(TraceEventType::kQTokenRedeemed, static_cast<uint32_t>(r->qd), qts[i]);
        }
        return r;
      }
    }
    sched_.Poll();
    RunExternalPump();
    wait_poll_rounds_->Inc();
    if (deadline != 0 && clock_.Now() >= deadline) {
      for (size_t k = 0; k < qts.size(); k++) {
        const size_t i = (rot + k) % qts.size();
        if (tokens_.IsDone(qts[i])) {
          if (index_out != nullptr) {
            *index_out = i;
          }
          return tokens_.Take(qts[i]);
        }
      }
      return Status::kTimedOut;
    }
  }
  // demilint: end-fastpath
}

size_t LibOS::WaitAnyHarvest(std::span<const QToken> qts, std::vector<QResult>* events,
                             std::vector<size_t>* indices, DurationNs timeout) {
  // demilint: fastpath
  wait_calls_->Inc();
  const TimeNs start = clock_.Now();
  const TimeNs deadline = timeout == 0 ? 0 : start + timeout;
  // Harvest order rotates like WaitAny: callers that only consume a prefix of `events` would
  // otherwise favor low indices forever.
  const size_t rot = qts.empty() ? 0 : wait_any_rr_++ % qts.size();
  for (;;) {
    size_t harvested = 0;
    for (size_t k = 0; k < qts.size(); k++) {
      const size_t i = (rot + k) % qts.size();
      if (tokens_.IsDone(qts[i])) {
        auto r = tokens_.Take(qts[i]);
        if (r.ok()) {
          tracer_.Record(TraceEventType::kQTokenRedeemed, static_cast<uint32_t>(r->qd), qts[i]);
          if (events != nullptr) {
            // demilint: allow(fastpath-alloc) caller-owned vector, bounded by qts.size()
            events->push_back(*r);
          }
          if (indices != nullptr) {
            // demilint: allow(fastpath-alloc) caller-owned vector, bounded by qts.size()
            indices->push_back(i);
          }
          harvested++;
        }
      }
    }
    if (harvested > 0) {
      wait_ns_->Record(clock_.Now() - start);
      return harvested;
    }
    sched_.Poll();
    RunExternalPump();
    wait_poll_rounds_->Inc();
    if (deadline != 0 && clock_.Now() >= deadline) {
      return 0;
    }
  }
  // demilint: end-fastpath
}

Status LibOS::WaitAll(std::span<const QToken> qts, std::vector<QResult>* out,
                      DurationNs timeout) {
  const TimeNs deadline = timeout == 0 ? 0 : clock_.Now() + timeout;
  for (QToken qt : qts) {
    const DurationNs left =
        deadline == 0 ? 0
                      : (clock_.Now() >= deadline ? 1 : deadline - clock_.Now());
    auto r = Wait(qt, left);
    if (!r.ok()) {
      return r.error();
    }
    if (out != nullptr) {
      out->push_back(*r);
    }
  }
  return Status::kOk;
}

}  // namespace demi
