// Wire formats: Ethernet, ARP, IPv4, UDP, TCP header serialization and parsing.
//
// All multi-byte fields are big-endian on the wire, host order in the structs. Serialization
// writes into caller-provided buffers so header bytes can be gathered with zero-copy payloads.

#ifndef SRC_NET_HEADERS_H_
#define SRC_NET_HEADERS_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>

#include "src/net/address.h"

namespace demi {

// --- Byte-order helpers ---
inline void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}
inline uint16_t GetU16(const uint8_t* p) { return static_cast<uint16_t>((p[0] << 8) | p[1]); }
inline uint32_t GetU32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) | (uint32_t{p[2]} << 8) | p[3];
}

// --- Ethernet ---
enum class EtherType : uint16_t { kIpv4 = 0x0800, kArp = 0x0806 };

struct EthernetHeader {
  static constexpr size_t kSize = 14;
  MacAddr dst;
  MacAddr src;
  EtherType ether_type;

  void Serialize(uint8_t* out) const;
  static std::optional<EthernetHeader> Parse(std::span<const uint8_t> in);
};

// --- ARP (IPv4 over Ethernet only) ---
struct ArpPacket {
  static constexpr size_t kSize = 28;
  enum class Op : uint16_t { kRequest = 1, kReply = 2 };
  Op op;
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;
  Ipv4Addr target_ip;

  void Serialize(uint8_t* out) const;
  static std::optional<ArpPacket> Parse(std::span<const uint8_t> in);
};

// --- IPv4 (no options) ---
enum class IpProto : uint8_t { kTcp = 6, kUdp = 17 };

struct Ipv4Header {
  static constexpr size_t kSize = 20;
  uint16_t total_length = 0;  // header + payload
  uint8_t ttl = 64;
  IpProto protocol = IpProto::kTcp;
  Ipv4Addr src;
  Ipv4Addr dst;

  // Serializes; computes the header checksum unless the device offloads it.
  void Serialize(uint8_t* out, bool compute_checksum = true) const;
  // Parses; verifies the checksum unless the device already did (checksum offload).
  static std::optional<Ipv4Header> Parse(std::span<const uint8_t> in, bool verify = true);
};

// --- UDP ---
struct UdpHeader {
  static constexpr size_t kSize = 8;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;  // header + payload

  // UDP checksum over the IPv4 pseudo-header; pass the payload to include it. Computation is
  // skipped under device checksum offload.
  void Serialize(uint8_t* out, Ipv4Addr src_ip, Ipv4Addr dst_ip,
                 std::span<const uint8_t> payload, bool compute_checksum = true) const;
  // Parses; with `verify`, checks the pseudo-header checksum in software (skipped when the wire
  // checksum is 0 — RFC 768 "no checksum" — or under device RX offload). `checksum_failed`, if
  // non-null, is set when verification (not framing) caused the failure.
  static std::optional<UdpHeader> Parse(std::span<const uint8_t> in, Ipv4Addr src_ip = {},
                                        Ipv4Addr dst_ip = {}, bool verify = false,
                                        bool* checksum_failed = nullptr);
};

// --- TCP ---
struct TcpFlags {
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack = false;

  uint8_t Encode() const {
    return static_cast<uint8_t>((fin ? 0x01 : 0) | (syn ? 0x02 : 0) | (rst ? 0x04 : 0) |
                                (psh ? 0x08 : 0) | (ack ? 0x10 : 0));
  }
  static TcpFlags Decode(uint8_t bits) {
    TcpFlags f;
    f.fin = bits & 0x01;
    f.syn = bits & 0x02;
    f.rst = bits & 0x04;
    f.psh = bits & 0x08;
    f.ack = bits & 0x10;
    return f;
  }
};

struct TcpHeader {
  static constexpr size_t kBaseSize = 20;
  // Options we implement: MSS, window scale and timestamps (RFC 793 + RFC 7323, which the
  // paper's stack targets).
  static constexpr size_t kMaxOptionBytes = 20;  // MSS (4) + WScale (3) + TS (10) + pad

  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  TcpFlags flags;
  uint16_t window = 0;  // possibly scaled; scaling applied by the connection

  // Options. MSS and window scale appear on SYN segments; timestamps, once negotiated, ride
  // on every segment (tsval = sender clock, tsecr = echoed peer clock, RFC 7323 §3).
  std::optional<uint16_t> mss_option;
  std::optional<uint8_t> window_scale_option;
  struct Timestamps {
    uint32_t tsval = 0;
    uint32_t tsecr = 0;
  };
  std::optional<Timestamps> timestamps_option;

  size_t SerializedSize() const;
  // Serializes with checksum over the IPv4 pseudo-header and payload (skipped under device
  // checksum offload, like DPDK TX offload).
  void Serialize(uint8_t* out, Ipv4Addr src_ip, Ipv4Addr dst_ip,
                 std::span<const uint8_t> payload, bool compute_checksum = true) const;
  // Gather variant: the payload is the concatenation of `payload_slices` (the zero-copy
  // coalesced send path hands one Buffer view per slice; InternetChecksum accumulates
  // correctly across odd-length slice boundaries).
  void Serialize(uint8_t* out, Ipv4Addr src_ip, Ipv4Addr dst_ip,
                 std::span<const std::span<const uint8_t>> payload_slices,
                 bool compute_checksum = true) const;
  // Parses; verifies the checksum unless the device validated it on RX. `checksum_failed`, if
  // non-null, is set when verification (not framing) caused the failure.
  static std::optional<TcpHeader> Parse(std::span<const uint8_t> in, Ipv4Addr src_ip,
                                        Ipv4Addr dst_ip, size_t* header_len_out,
                                        bool verify = true, bool* checksum_failed = nullptr);
};

// Internet checksum (RFC 1071) with incremental accumulation for pseudo-headers.
class InternetChecksum {
 public:
  void Add(std::span<const uint8_t> data);
  void AddU16(uint16_t v);
  void AddU32(uint32_t v) {
    AddU16(static_cast<uint16_t>(v >> 16));
    AddU16(static_cast<uint16_t>(v));
  }
  uint16_t Finish() const;

 private:
  uint64_t sum_ = 0;
  bool odd_ = false;
};

}  // namespace demi

#endif  // SRC_NET_HEADERS_H_
