// Blocking primitives built on Wakers.
//
// Event follows the paper's design: a blocked coroutine stashes a pointer to its readiness flag
// with the event source; whoever triggers the event (e.g., the fast-path coroutine receiving a
// packet for that TCP connection) sets the stashed bit, making the coroutine runnable again.
// All waits are edge-triggered and may wake spuriously; callers always loop over a predicate.

#ifndef SRC_RUNTIME_EVENT_H_
#define SRC_RUNTIME_EVENT_H_

#include <coroutine>
#include <vector>

#include "src/common/logging.h"
#include "src/runtime/scheduler.h"

namespace demi {

class Event {
 public:
  Event() = default;
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  // Wakes every fiber currently waiting. Cheap when nobody waits (the common fast-path case).
  void Notify() {
    for (const Waker& w : waiters_) {
      w.Wake();
    }
    waiters_.clear();
  }

  bool HasWaiters() const { return !waiters_.empty(); }

  // co_await event.Wait(): blocks the current fiber until the next Notify().
  struct WaitAwaitable {
    Event* event;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      Scheduler* s = Scheduler::Current();
      DEMI_CHECK(s != nullptr);
      s->SetResumePointForAwait(h);
      event->waiters_.push_back(s->CurrentWaker());
    }
    void await_resume() const noexcept {}
  };
  WaitAwaitable Wait() { return WaitAwaitable{this}; }

  // co_await event.WaitWithTimeout(sched, deadline): wakes on Notify() or at `deadline`,
  // whichever comes first. The caller distinguishes the cases by re-checking its predicate.
  struct WaitTimeoutAwaitable {
    Event* event;
    Scheduler* sched;
    TimeNs deadline;
    bool await_ready() const noexcept { return sched->Now() >= deadline; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      sched->SetResumePointForAwait(h);
      Waker w = sched->CurrentWaker();
      event->waiters_.push_back(w);
      sched->AddTimer(deadline, w);
    }
    void await_resume() const noexcept {}
  };
  WaitTimeoutAwaitable WaitWithTimeout(Scheduler& sched, TimeNs deadline) {
    return WaitTimeoutAwaitable{this, &sched, deadline};
  }

 private:
  std::vector<Waker> waiters_;
};

}  // namespace demi

#endif  // SRC_RUNTIME_EVENT_H_
