#include "src/net/tcp/congestion.h"

#include <algorithm>
#include <cmath>

namespace demi {

namespace {
constexpr double kCubicC = 0.4;
constexpr double kCubicBeta = 0.7;
constexpr size_t kInitialWindowSegments = 10;  // RFC 6928
constexpr size_t kMinWindowSegments = 2;
}  // namespace

std::unique_ptr<CongestionControl> CongestionControl::Create(CongestionAlgorithm algo, size_t mss,
                                                             size_t fixed_window) {
  switch (algo) {
    case CongestionAlgorithm::kCubic:
      return std::make_unique<CubicCongestion>(mss);
    case CongestionAlgorithm::kNewReno:
      return std::make_unique<NewRenoCongestion>(mss);
    case CongestionAlgorithm::kFixedWindow:
      return std::make_unique<FixedWindowCongestion>(fixed_window);
  }
  return nullptr;
}

// --- Cubic ---

CubicCongestion::CubicCongestion(size_t mss)
    : mss_(mss), cwnd_(kInitialWindowSegments * mss), ssthresh_(SIZE_MAX / 2) {}

double CubicCongestion::CubicWindow(double t_seconds) const {
  const double dt = t_seconds - k_seconds_;
  return kCubicC * dt * dt * dt + w_max_seg_;
}

void CubicCongestion::OnAck(size_t bytes_acked, TimeNs now) {
  if (cwnd_ < ssthresh_) {
    // Slow start.
    cwnd_ += bytes_acked;
    return;
  }
  if (epoch_start_ == 0) {
    epoch_start_ = now;
    const double w_seg = static_cast<double>(cwnd_) / static_cast<double>(mss_);
    if (w_max_seg_ < w_seg) {
      w_max_seg_ = w_seg;
      k_seconds_ = 0;
    } else {
      k_seconds_ = std::cbrt((w_max_seg_ - w_seg) / kCubicC);
    }
  }
  const double t = static_cast<double>(now - epoch_start_) / static_cast<double>(kSecond);
  const double target_seg = CubicWindow(t);
  const double cwnd_seg = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  if (target_seg > cwnd_seg) {
    // Approach the cubic target: standard per-ack increment (target - cwnd) / cwnd segments.
    const double inc_seg = (target_seg - cwnd_seg) / cwnd_seg;
    cwnd_ += static_cast<size_t>(inc_seg * static_cast<double>(mss_)) + 1;
  } else {
    // TCP-friendly region floor: at least a Reno-like 1/cwnd growth.
    cwnd_ += std::max<size_t>(1, mss_ * bytes_acked / std::max<size_t>(cwnd_, 1));
  }
}

void CubicCongestion::EnterRecovery(TimeNs now, double beta) {
  w_max_seg_ = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  cwnd_ = std::max<size_t>(static_cast<size_t>(static_cast<double>(cwnd_) * beta),
                           kMinWindowSegments * mss_);
  ssthresh_ = cwnd_;
  epoch_start_ = 0;
}

void CubicCongestion::OnFastRetransmit(TimeNs now) { EnterRecovery(now, kCubicBeta); }

void CubicCongestion::OnTimeout(TimeNs now) {
  w_max_seg_ = static_cast<double>(cwnd_) / static_cast<double>(mss_);
  ssthresh_ = std::max<size_t>(cwnd_ / 2, kMinWindowSegments * mss_);
  cwnd_ = kMinWindowSegments * mss_;  // collapse to slow start
  epoch_start_ = 0;
}

// --- NewReno ---

NewRenoCongestion::NewRenoCongestion(size_t mss)
    : mss_(mss), cwnd_(kInitialWindowSegments * mss), ssthresh_(SIZE_MAX / 2) {}

void NewRenoCongestion::OnAck(size_t bytes_acked, TimeNs now) {
  if (cwnd_ < ssthresh_) {
    cwnd_ += bytes_acked;
    return;
  }
  ack_accum_ += bytes_acked;
  if (ack_accum_ >= cwnd_) {
    ack_accum_ -= cwnd_;
    cwnd_ += mss_;  // one MSS per RTT
  }
}

void NewRenoCongestion::OnFastRetransmit(TimeNs) {
  ssthresh_ = std::max<size_t>(cwnd_ / 2, kMinWindowSegments * mss_);
  cwnd_ = ssthresh_;
}

void NewRenoCongestion::OnTimeout(TimeNs) {
  ssthresh_ = std::max<size_t>(cwnd_ / 2, kMinWindowSegments * mss_);
  cwnd_ = kMinWindowSegments * mss_;
}

}  // namespace demi
