// Echo server and client (paper §7.2): the microbenchmark application for Figures 5-9.
//
// The PDPIX variants are libOS-agnostic — the same code runs over Catnap, Catnip (UDP or TCP)
// and Catmint, which is the portability claim of the paper. The server optionally logs every
// message to a storage queue before replying (Figure 7's configuration). POSIX variants provide
// the kernel baseline and the Table 3 LoC comparison.

#ifndef SRC_APPS_ECHO_H_
#define SRC_APPS_ECHO_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/libos.h"

namespace demi {

class ShardGroup;

struct EchoServerOptions {
  SocketAddress listen;
  SocketType type = SocketType::kStream;
  // If non-empty, open a storage queue and push every message to it (synchronously, before
  // replying) — the Figure 7 configuration. Requires a libOS with storage support.
  bool log_to_disk = false;
  std::string log_path = "echo.log";
  // Isolation domain the listening socket (and thus every accepted connection) is charged to.
  // kDefaultTenant leaves the server in the unbudgeted control domain (docs/TENANCY.md).
  TenantId tenant = kDefaultTenant;
};

struct EchoServerStats {
  uint64_t requests = 0;
  uint64_t bytes = 0;
  uint64_t connections = 0;
  uint64_t log_failures = 0;  // log appends that failed terminally (message echoed, not durable)
};

// Pumpable echo server: arm tokens at construction, then call Pump() (non-blocking) each loop
// iteration alongside LibOS::PollOnce(). This form supports both a dedicated server thread and
// single-thread "duet" benchmarking via LibOS::SetExternalPump.
class EchoServerApp {
 public:
  EchoServerApp(LibOS& os, const EchoServerOptions& options);

  // Processes every completed token once; returns the number of requests served this call.
  size_t Pump();

  const EchoServerStats& stats() const { return stats_; }

 private:
  void HandleAccept(size_t index, QResult& r);
  void HandlePop(size_t index, QResult& r);

  LibOS& os_;
  EchoServerOptions options_;
  EchoServerStats stats_;
  QueueDesc log_qd_ = kInvalidQd;
  std::vector<QToken> tokens_;
};

// Runs until `stop` becomes true. Serves any number of concurrent connections.
void RunEchoServer(LibOS& os, const EchoServerOptions& options, std::atomic<bool>& stop,
                   EchoServerStats* stats = nullptr);

// Multi-worker echo over a ShardGroup (paper §7 Fig. 9): every shard runs its own
// EchoServerApp listening on the same port — RSS steers each connection to one shard, like
// SO_REUSEPORT on kernel stacks. Starts the group's workers and returns; the caller later
// calls group.RequestStop() + Join(), after which `per_shard` (if given) holds each shard's
// stats.
void StartShardedEchoServer(ShardGroup& group, const EchoServerOptions& options,
                            std::vector<EchoServerStats>* per_shard = nullptr);

struct EchoClientOptions {
  SocketAddress server;
  SocketType type = SocketType::kStream;
  size_t message_size = 64;
  uint64_t iterations = 10000;
  uint64_t warmup = 100;
};

struct EchoClientResult {
  Histogram rtt;  // nanoseconds per echo round trip
  uint64_t errors = 0;
};

// Closed-loop echo client: push + wait + pop + wait, recording RTTs.
EchoClientResult RunEchoClient(LibOS& os, const EchoClientOptions& options);

// POSIX (kernel sockets, blocking) echo pair: the "Linux" baseline of Figures 5/7 and the
// POSIX row of Table 3. Returns like their PDPIX counterparts.
void RunPosixEchoServer(const EchoServerOptions& options, std::atomic<bool>& stop,
                        EchoServerStats* stats = nullptr);
EchoClientResult RunPosixEchoClient(const EchoClientOptions& options);

}  // namespace demi

#endif  // SRC_APPS_ECHO_H_
