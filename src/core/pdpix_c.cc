#include "src/core/pdpix_c.h"

#include <cerrno>

#include "src/core/libos.h"

namespace demi {

namespace {

thread_local LibOS* g_current_libos = nullptr;

int StatusToErrno(Status s) {
  switch (s) {
    case Status::kOk: return 0;
    case Status::kInvalidArgument: return -EINVAL;
    case Status::kBadQueueDescriptor: return -EBADF;
    case Status::kBadQToken: return -EINVAL;
    case Status::kWouldBlock: return -EWOULDBLOCK;
    case Status::kConnectionRefused: return -ECONNREFUSED;
    case Status::kConnectionReset: return -ECONNRESET;
    case Status::kConnectionAborted: return -ECONNABORTED;
    case Status::kNotConnected: return -ENOTCONN;
    case Status::kAlreadyConnected: return -EISCONN;
    case Status::kAddressInUse: return -EADDRINUSE;
    case Status::kTimedOut: return -ETIMEDOUT;
    case Status::kMessageTooLong: return -EMSGSIZE;
    case Status::kNoMemory: return -ENOMEM;
    case Status::kNoBufferSpace: return -ENOBUFS;
    case Status::kQueueFull: return -ENOBUFS;
    case Status::kEndOfFile: return 0;  /* EOF is a successful zero-length completion */
    case Status::kNotSupported: return -EOPNOTSUPP;
    case Status::kPermissionDenied: return -EACCES;
    case Status::kNotFound: return -ENOENT;
    case Status::kIoError: return -EIO;
    case Status::kProtocolError: return -EPROTO;
    case Status::kCancelled: return -ECANCELED;
    case Status::kInternal: return -EFAULT;
  }
  return -EIO;
}

Sgarray FromC(const demi_sgarray_t* sga) {
  Sgarray out;
  out.num_segs = sga->numsegs;
  for (uint32_t i = 0; i < sga->numsegs && i < kSgaMaxSegments; i++) {
    out.segs[i] = {sga->segs[i].buf, sga->segs[i].len};
  }
  return out;
}

demi_sgarray_t ToC(const Sgarray& sga) {
  demi_sgarray_t out = {};
  out.numsegs = sga.num_segs;
  for (uint32_t i = 0; i < sga.num_segs; i++) {
    out.segs[i].buf = sga.segs[i].buf;
    out.segs[i].len = sga.segs[i].len;
  }
  return out;
}

demi_qresult_t ToC(const QResult& r) {
  demi_qresult_t out = {};
  switch (r.opcode) {
    case OpCode::kPush: out.opcode = DEMI_OPC_PUSH; break;
    case OpCode::kPop: out.opcode = DEMI_OPC_POP; break;
    case OpCode::kAccept: out.opcode = DEMI_OPC_ACCEPT; break;
    case OpCode::kConnect: out.opcode = DEMI_OPC_CONNECT; break;
    case OpCode::kSplice: out.opcode = DEMI_OPC_SPLICE; break;
    default: out.opcode = DEMI_OPC_INVALID; break;
  }
  out.qd = r.qd;
  out.error = StatusToErrno(r.status);
  out.sga = ToC(r.sga);
  out.remote = {r.remote.ip.value, r.remote.port};
  out.new_qd = r.new_qd;
  out.bytes = r.bytes;
  return out;
}

}  // namespace

void BindPdpixThread(LibOS* os) { g_current_libos = os; }
LibOS* CurrentPdpixLibOS() { return g_current_libos; }

}  // namespace demi

using demi::g_current_libos;

extern "C" {

demi_qd_t demi_socket(int type) {
  if (g_current_libos == nullptr) {
    return -ENODEV;
  }
  auto r = g_current_libos->Socket(type == 0 ? demi::SocketType::kStream
                                             : demi::SocketType::kDatagram);
  return r.ok() ? *r : demi::StatusToErrno(r.error());
}

int demi_bind(demi_qd_t qd, const demi_sockaddr_t* addr) {
  if (g_current_libos == nullptr || addr == nullptr) {
    return -EINVAL;
  }
  return demi::StatusToErrno(
      g_current_libos->Bind(qd, {demi::Ipv4Addr{addr->ip}, addr->port}));
}

int demi_listen(demi_qd_t qd, int backlog) {
  if (g_current_libos == nullptr) {
    return -ENODEV;
  }
  return demi::StatusToErrno(g_current_libos->Listen(qd, backlog));
}

demi_qtoken_t demi_accept(demi_qd_t qd) {
  if (g_current_libos == nullptr) {
    return 0;
  }
  auto r = g_current_libos->Accept(qd);
  return r.ok() ? *r : 0;
}

demi_qtoken_t demi_connect(demi_qd_t qd, const demi_sockaddr_t* addr) {
  if (g_current_libos == nullptr || addr == nullptr) {
    return 0;
  }
  auto r = g_current_libos->Connect(qd, {demi::Ipv4Addr{addr->ip}, addr->port});
  return r.ok() ? *r : 0;
}

int demi_close(demi_qd_t qd) {
  if (g_current_libos == nullptr) {
    return -ENODEV;
  }
  return demi::StatusToErrno(g_current_libos->Close(qd));
}

demi_qd_t demi_open(const char* path) {
  if (g_current_libos == nullptr || path == nullptr) {
    return -EINVAL;
  }
  auto r = g_current_libos->Open(path);
  return r.ok() ? *r : demi::StatusToErrno(r.error());
}

int demi_seek(demi_qd_t qd, uint64_t offset) {
  if (g_current_libos == nullptr) {
    return -ENODEV;
  }
  return demi::StatusToErrno(g_current_libos->Seek(qd, offset));
}

int demi_truncate(demi_qd_t qd, uint64_t offset) {
  if (g_current_libos == nullptr) {
    return -ENODEV;
  }
  return demi::StatusToErrno(g_current_libos->Truncate(qd, offset));
}

demi_qd_t demi_queue(void) {
  if (g_current_libos == nullptr) {
    return -ENODEV;
  }
  auto r = g_current_libos->MemoryQueue();
  return r.ok() ? *r : demi::StatusToErrno(r.error());
}

demi_qtoken_t demi_push(demi_qd_t qd, const demi_sgarray_t* sga) {
  if (g_current_libos == nullptr || sga == nullptr) {
    return 0;
  }
  auto r = g_current_libos->Push(qd, demi::FromC(sga));
  return r.ok() ? *r : 0;
}

demi_qtoken_t demi_pushto(demi_qd_t qd, const demi_sgarray_t* sga,
                          const demi_sockaddr_t* addr) {
  if (g_current_libos == nullptr || sga == nullptr || addr == nullptr) {
    return 0;
  }
  auto r = g_current_libos->PushTo(qd, demi::FromC(sga),
                                   {demi::Ipv4Addr{addr->ip}, addr->port});
  return r.ok() ? *r : 0;
}

demi_qtoken_t demi_pop(demi_qd_t qd) {
  if (g_current_libos == nullptr) {
    return 0;
  }
  auto r = g_current_libos->Pop(qd);
  return r.ok() ? *r : 0;
}

demi_qtoken_t demi_splice(demi_qd_t src_qd, demi_qd_t dst_qd) {
  if (g_current_libos == nullptr) {
    return 0;
  }
  auto r = g_current_libos->Splice(src_qd, dst_qd);
  return r.ok() ? *r : 0;
}

int demi_wait(demi_qresult_t* out, demi_qtoken_t qt, uint64_t timeout_ns) {
  if (g_current_libos == nullptr || out == nullptr) {
    return -EINVAL;
  }
  auto r = g_current_libos->Wait(qt, timeout_ns);
  if (!r.ok()) {
    return demi::StatusToErrno(r.error());
  }
  *out = demi::ToC(*r);
  return 0;
}

int demi_wait_any(demi_qresult_t* out, size_t* index_out, const demi_qtoken_t* qts,
                  size_t num_qts, uint64_t timeout_ns) {
  if (g_current_libos == nullptr || out == nullptr || qts == nullptr) {
    return -EINVAL;
  }
  size_t index = 0;
  auto r = g_current_libos->WaitAny({qts, num_qts}, &index, timeout_ns);
  if (!r.ok()) {
    return demi::StatusToErrno(r.error());
  }
  if (index_out != nullptr) {
    *index_out = index;
  }
  *out = demi::ToC(*r);
  return 0;
}

int demi_wait_all(demi_qresult_t* out, const demi_qtoken_t* qts, size_t num_qts,
                  uint64_t timeout_ns) {
  if (g_current_libos == nullptr || out == nullptr || qts == nullptr) {
    return -EINVAL;
  }
  std::vector<demi::QResult> results;
  const demi::Status s = g_current_libos->WaitAll({qts, num_qts}, &results, timeout_ns);
  if (s != demi::Status::kOk) {
    return demi::StatusToErrno(s);
  }
  for (size_t i = 0; i < results.size(); i++) {
    out[i] = demi::ToC(results[i]);
  }
  return 0;
}

demi_sgarray_t demi_sga_alloc(uint32_t size) {
  demi_sgarray_t sga = {};
  if (g_current_libos == nullptr) {
    return sga;
  }
  void* buf = g_current_libos->DmaMalloc(size);
  if (buf != nullptr) {
    sga.numsegs = 1;
    sga.segs[0].buf = buf;
    sga.segs[0].len = size;
  }
  return sga;
}

void demi_sga_free(demi_sgarray_t* sga) {
  if (g_current_libos == nullptr || sga == nullptr) {
    return;
  }
  for (uint32_t i = 0; i < sga->numsegs; i++) {
    g_current_libos->DmaFree(sga->segs[i].buf);
    sga->segs[i].buf = nullptr;
    sga->segs[i].len = 0;
  }
  sga->numsegs = 0;
}

void* demi_malloc(size_t size) {
  return g_current_libos == nullptr ? nullptr : g_current_libos->DmaMalloc(size);
}

void demi_free(void* ptr) {
  if (g_current_libos != nullptr) {
    g_current_libos->DmaFree(ptr);
  }
}

}  // extern "C"
