#!/usr/bin/env bash
# Documentation consistency checker, run as a CTest case (see top-level CMakeLists.txt).
#
# 1. Every intra-repo link in the repo's markdown files must resolve to an existing file or
#    directory (external http(s)/mailto links and pure #anchors are skipped).
# 2. Every metric name documented in docs/OBSERVABILITY.md must appear as a literal in src/ —
#    so the reference can never drift from what the registry actually exports.
#
# Usage: check_docs.sh [repo_root]   (defaults to the script's parent directory)

set -u

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root" || exit 1

fail=0

# --- 1. intra-repo markdown links ---

# Markdown files under version-controlled paths (exclude build trees and third-party dirs).
mapfile -t md_files < <(find . -name '*.md' \
  -not -path './build/*' -not -path './build-*/*' -not -path '*/.git/*' | sort)

for md in "${md_files[@]}"; do
  dir=$(dirname "$md")
  # Extract [text](target) link targets; tolerate several links per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;  # external or same-file anchor
    esac
    path="${target%%#*}"      # strip fragment
    [ -z "$path" ] && continue
    if [ "${path#/}" != "$path" ]; then
      resolved=".$path"       # absolute-style link: resolve from repo root
    else
      resolved="$dir/$path"   # relative link: resolve from the file's directory
    fi
    if [ ! -e "$resolved" ]; then
      echo "BROKEN LINK: $md -> $target (resolved: $resolved)"
      fail=1
    fi
  done < <(grep -oE '\[[^]]*\]\([^)[:space:]]+\)' "$md" | sed -E 's/.*\(([^)]+)\)/\1/')
done

# --- 2. metric names in docs/OBSERVABILITY.md exist in src/ ---

obs_doc="docs/OBSERVABILITY.md"
metrics=()
if [ ! -f "$obs_doc" ]; then
  echo "MISSING: $obs_doc"
  fail=1
else
  # Metric names are the first backticked cell of each reference-table row: | `comp.metric` |
  mapfile -t metrics < <(grep -oE '^\| `[a-z0-9_]+\.[a-z0-9_]+`' "$obs_doc" \
    | sed -E 's/^\| `([^`]+)`/\1/' | sort -u)
  if [ "${#metrics[@]}" -lt 12 ]; then
    echo "SUSPICIOUS: only ${#metrics[@]} metric names found in $obs_doc (expected >= 12)"
    fail=1
  fi
  for m in "${metrics[@]}"; do
    if ! grep -rqF "\"$m\"" src/; then
      echo "UNDOCUMENTED DRIFT: metric \`$m\` in $obs_doc not found as a literal in src/"
      fail=1
    fi
  done
fi

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK (${#md_files[@]} markdown files, ${#metrics[@]} documented metrics)"
