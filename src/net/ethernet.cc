#include "src/net/ethernet.h"

#include <algorithm>
#include <array>

#include "src/common/logging.h"
#include "src/faults/fault_injector.h"
#include "src/observability/metrics.h"
#include "src/observability/trace.h"

namespace demi {

EthernetLayer::EthernetLayer(SimNic& nic, Ipv4Addr local_ip, bool checksum_offload,
                             size_t rx_burst_frames, size_t queue_id)
    : nic_(nic),
      local_ip_(local_ip),
      checksum_offload_(checksum_offload),
      queue_id_(queue_id),
      rx_frames_(rx_burst_frames == 0 ? 1 : rx_burst_frames) {}

void EthernetLayer::RegisterMetrics(MetricsRegistry& registry) {
  registry.RegisterCallback("eth.ipv4_rx", "eth", "packets", "IPv4 packets received for us",
                            [this] { return stats_.ipv4_rx; });
  registry.RegisterCallback("eth.ipv4_tx", "eth", "packets", "IPv4 packets transmitted",
                            [this] { return stats_.ipv4_tx; });
  registry.RegisterCallback("eth.arp_requests_sent", "eth", "packets", "ARP requests sent",
                            [this] { return stats_.arp_requests_sent; });
  registry.RegisterCallback("eth.arp_replies_sent", "eth", "packets", "ARP replies sent",
                            [this] { return stats_.arp_replies_sent; });
  registry.RegisterCallback("eth.pending_dropped", "eth", "packets",
                            "Packets dropped while waiting on ARP resolution",
                            [this] { return stats_.pending_dropped; });
  registry.RegisterCallback("eth.parse_errors", "eth", "frames", "Unparseable received frames",
                            [this] { return stats_.parse_errors; });
  registry.RegisterCallback("eth.no_receiver", "eth", "packets",
                            "IPv4 packets with no registered protocol receiver",
                            [this] { return stats_.no_receiver; });
  registry.RegisterCallback("eth.rx_bursts", "eth", "bursts",
                            "PollOnce calls that returned at least one frame",
                            [this] { return stats_.rx_bursts; });
  registry.RegisterCallback("eth.rx_burst_frames", "eth", "frames",
                            "Frames delivered through RX bursts",
                            [this] { return stats_.rx_burst_frames; });
  registry.RegisterCallback("eth.tx_errors", "eth", "frames",
                            "Frame transmit failures absorbed (upper layers recover)",
                            [this] { return stats_.tx_errors; });
  registry.RegisterCallback("nic.tx_sched_inline", "nic", "frames",
                            "Frames admitted on the zero-copy TX fast path",
                            [this] { return tx_sched_.stats().inline_frames; });
  registry.RegisterCallback("nic.tx_sched_enqueued", "nic", "frames",
                            "Frames throttled behind a tenant token bucket",
                            [this] { return tx_sched_.stats().enqueued_frames; });
  registry.RegisterCallback("nic.tx_sched_drained", "nic", "frames",
                            "Throttled frames sent by the weighted-DRR drain",
                            [this] { return tx_sched_.stats().drained_frames; });
  registry.RegisterCallback("nic.tx_sched_drops", "nic", "frames",
                            "Frames tail-dropped at a tenant's TX queue cap",
                            [this] { return tx_sched_.stats().dropped_frames; });
  registry.RegisterCallback("nic.tx_sched_rounds", "nic", "rounds",
                            "Deficit-round-robin scan rounds over backlogged tenants",
                            [this] { return tx_sched_.stats().drr_rounds; });
  registry.RegisterCallback("nic.tx_sched_backlog", "nic", "frames",
                            "Frames currently queued across all tenant TX queues",
                            [this] { return tx_sched_.backlog_frames(); });
}

void EthernetLayer::RegisterReceiver(IpProto proto, Ipv4Receiver* receiver) {
  receivers_[static_cast<uint32_t>(proto)] = receiver;
}

Status EthernetLayer::TransmitFlattened(MacAddr dst_mac, Ipv4Addr dst_ip, IpProto proto,
                                        std::span<const uint8_t> l4_bytes) {
  // Flattened frames live in ordinary heap memory, which the NIC may not DMA from (SimNic
  // enforces the discipline for segments at or above the zero-copy threshold). Hand the bytes
  // over as inline-sized chunks instead: the NIC copies each into the frame, the same bounce
  // cost the flattening itself already paid.
  constexpr size_t kInlineChunk = 512;
  std::array<std::span<const uint8_t>, 8> chunks;
  if (l4_bytes.size() > kInlineChunk * chunks.size()) {
    return Status::kMessageTooLong;  // > 4 KB cannot be one frame on any supported MTU
  }
  size_t n = 0;
  for (size_t off = 0; off < l4_bytes.size(); off += kInlineChunk) {
    chunks[n++] = l4_bytes.subspan(off, std::min(kInlineChunk, l4_bytes.size() - off));
  }
  return TransmitIpv4(dst_mac, dst_ip, proto, std::span(chunks.data(), n));
}

Status EthernetLayer::TransmitIpv4(MacAddr dst_mac, Ipv4Addr dst_ip, IpProto proto,
                                   std::span<const std::span<const uint8_t>> l4_segments) {
  size_t l4_len = 0;
  for (const auto& seg : l4_segments) {
    l4_len += seg.size();
  }
  uint8_t headers[EthernetHeader::kSize + Ipv4Header::kSize];
  EthernetHeader eth{dst_mac, nic_.mac(), EtherType::kIpv4};
  eth.Serialize(headers);
  Ipv4Header ip;
  ip.total_length = static_cast<uint16_t>(Ipv4Header::kSize + l4_len);
  ip.protocol = proto;
  ip.src = local_ip_;
  ip.dst = dst_ip;
  ip.Serialize(headers + EthernetHeader::kSize, /*compute_checksum=*/!checksum_offload_);

  // Gather: [eth+ip | l4 segments...] in one burst; payload segments stay zero-copy.
  std::span<const uint8_t> segs[8];
  DEMI_CHECK(l4_segments.size() + 1 <= 8);
  segs[0] = {headers, sizeof(headers)};
  for (size_t i = 0; i < l4_segments.size(); i++) {
    segs[i + 1] = l4_segments[i];
  }
  stats_.ipv4_tx++;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventType::kPacketTx, static_cast<uint32_t>(proto), l4_len);
  }
  return nic_.TxBurst(queue_id_, dst_mac,
                      std::span<const std::span<const uint8_t>>(segs, l4_segments.size() + 1));
}

Status EthernetLayer::SendIpv4(Ipv4Addr dst, IpProto proto,
                               std::span<const std::span<const uint8_t>> l4_segments,
                               TenantId tenant) {
  size_t l4_len = 0;
  for (const auto& seg : l4_segments) {
    l4_len += seg.size();
  }
  if (tenant != kDefaultTenant) {
    // Explicitly attached injector first, else whatever the fabric is armed with — chaos tests
    // arm SimNetwork after the libOS exists and still expect tenant_drop to bite.
    FaultInjector* fx = faults_ != nullptr ? faults_ : nic_.network().fault_injector();
    if (fx != nullptr && fx->TenantShouldDrop(tenant, l4_len)) {
      return Status::kOk;  // injected tenant-scoped loss: frame consumed, L4 RTO recovers
    }
  }
  const auto mac = arp_cache_.Lookup(dst);
  if (mac) {
    if (tenant != kDefaultTenant &&
        !tx_sched_.AdmitInline(tenant, l4_len, nic_.clock().Now())) {
      // Over the tenant's token-bucket rate (or behind its backlog): flatten and queue, the
      // same copy the ARP-miss path accepts. PollOnce drains it when tokens accrue.
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventType::kTenantTxThrottle, tenant, l4_len);
      }
      TxScheduler::Frame f;
      f.dst_mac = *mac;
      f.dst_ip = dst;
      f.proto = proto;
      f.l4_bytes.reserve(l4_len);
      for (const auto& seg : l4_segments) {
        f.l4_bytes.insert(f.l4_bytes.end(), seg.begin(), seg.end());
      }
      tx_sched_.Enqueue(tenant, std::move(f), nic_.clock().Now());
      return Status::kOk;
    }
    return TransmitIpv4(*mac, dst, proto, l4_segments);
  }
  // ARP miss: queue a flattened copy and ask for the mapping (the slow path; the paper's fast
  // path assumes a warm ARP cache).
  auto& q = pending_[dst.value];
  if (q.size() >= kMaxPendingPerIp) {
    stats_.pending_dropped++;
    return Status::kNoBufferSpace;
  }
  PendingPacket p;
  p.proto = proto;
  for (const auto& seg : l4_segments) {
    p.l4_bytes.insert(p.l4_bytes.end(), seg.begin(), seg.end());
  }
  q.push_back(std::move(p));
  SendArp(ArpPacket::Op::kRequest, MacAddr::Broadcast(), MacAddr::Zero(), dst);
  stats_.arp_requests_sent++;
  return Status::kOk;
}

void EthernetLayer::SendArp(ArpPacket::Op op, MacAddr dst_mac, MacAddr target_mac,
                            Ipv4Addr target_ip) {
  uint8_t frame[EthernetHeader::kSize + ArpPacket::kSize];
  EthernetHeader eth{dst_mac, nic_.mac(), EtherType::kArp};
  eth.Serialize(frame);
  ArpPacket arp;
  arp.op = op;
  arp.sender_mac = nic_.mac();
  arp.sender_ip = local_ip_;
  arp.target_mac = target_mac;
  arp.target_ip = target_ip;
  arp.Serialize(frame + EthernetHeader::kSize);
  std::span<const uint8_t> seg(frame, sizeof(frame));
  if (nic_.TxBurst(queue_id_, dst_mac, {&seg, 1}) != Status::kOk) {
    stats_.tx_errors++;  // ARP is best-effort; the requester retries on timeout
  }
}

void EthernetLayer::HandleArp(std::span<const uint8_t> payload) {
  const auto arp = ArpPacket::Parse(payload);
  if (!arp) {
    stats_.parse_errors++;
    return;
  }
  // Learn the sender's mapping either way.
  arp_cache_.Insert(arp->sender_ip, arp->sender_mac);

  if (arp->op == ArpPacket::Op::kRequest && arp->target_ip == local_ip_) {
    SendArp(ArpPacket::Op::kReply, arp->sender_mac, arp->sender_mac, arp->sender_ip);
    stats_.arp_replies_sent++;
  }

  // Flush packets that were waiting on this mapping.
  auto it = pending_.find(arp->sender_ip.value);
  if (it != pending_.end()) {
    for (PendingPacket& p : it->second) {
      if (TransmitFlattened(arp->sender_mac, arp->sender_ip, p.proto, p.l4_bytes) !=
          Status::kOk) {
        stats_.tx_errors++;  // queued packet lost on TX failure; L4 retransmission recovers
      }
    }
    pending_.erase(it);
  }
}

size_t EthernetLayer::PollOnce() {
  // demilint: fastpath
  const size_t n = nic_.RxBurst(queue_id_, rx_frames_);
  if (n > 0) {
    stats_.rx_bursts++;
    stats_.rx_burst_frames += n;
    for (auto& [proto, receiver] : receivers_) {
      (void)proto;
      receiver->OnRxBurstBegin();
    }
  }
  for (size_t i = 0; i < n; i++) {
    std::span<const uint8_t> frame(rx_frames_[i]);
    const auto eth = EthernetHeader::Parse(frame);
    if (!eth) {
      stats_.parse_errors++;
      continue;
    }
    if (eth->dst != nic_.mac() && !eth->dst.IsBroadcast()) {
      continue;  // not for us (promiscuous fabric broadcast)
    }
    auto payload = frame.subspan(EthernetHeader::kSize);
    if (eth->ether_type == EtherType::kArp) {
      HandleArp(payload);
      continue;
    }
    const auto ip = Ipv4Header::Parse(payload, /*verify=*/!checksum_offload_);
    if (!ip) {
      stats_.parse_errors++;
      continue;
    }
    if (ip->dst != local_ip_ && ip->dst != Ipv4Addr::Broadcast()) {
      continue;
    }
    stats_.ipv4_rx++;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventType::kPacketRx, static_cast<uint32_t>(ip->protocol),
                      ip->total_length - Ipv4Header::kSize);
    }
    auto recv_it = receivers_.find(static_cast<uint32_t>(ip->protocol));
    if (recv_it == receivers_.end()) {
      stats_.no_receiver++;
      continue;
    }
    recv_it->second->OnIpv4Packet(*ip, payload.subspan(Ipv4Header::kSize,
                                                       ip->total_length - Ipv4Header::kSize));
  }
  if (n > 0) {
    for (auto& [proto, receiver] : receivers_) {
      (void)proto;
      receiver->OnRxBurstEnd();
    }
  }
  if (tx_sched_.backlog_frames() > 0) {
    // Weighted-DRR drain of throttled tenant frames that virtual time has unlocked.
    tx_sched_.Drain(nic_.clock().Now(), [this](const TxScheduler::Frame& f) {
      const Status st = TransmitFlattened(f.dst_mac, f.dst_ip, f.proto, f.l4_bytes);
      if (st != Status::kOk) {
        stats_.tx_errors++;  // drained frame lost on TX failure; L4 retransmission recovers
      }
      return st;
    });
  }
  return n;
  // demilint: end-fastpath
}

}  // namespace demi
