# Empty compiler generated dependencies file for demi.
# This may be replaced when dependencies are built.
