# Empty dependencies file for udp_relay_demo.
# This may be replaced when dependencies are built.
