// Noisy-neighbor isolation benchmark (docs/TENANCY.md): a victim tenant's echo latency with
// and without a flooding tenant on the same server, and the flooder's achieved TX rate under
// its token bucket.
//
// Topology: one server Catnip hosting both tenants, two separate client hosts (the victim's
// and the flooder's own stacks/ports), all on one VirtualClock-driven fabric — fully
// deterministic, no kernel scheduler noise. The flooder runs a closed-loop window of junk
// echoes; the victim runs closed-loop 64-byte echoes. Scenarios:
//
//   solo      victim alone — the baseline tail
//   capped    flooder throttled by its token bucket + weighted DRR (the shipped config)
//   uncapped  flooder registered with rate 0 (no bucket) — the ablation showing why the
//             scheduler exists: the flood backlog sits in the NIC queue ahead of the victim
//
// `--quick` is the perf_smoke_tenant ctest gate:
//   victim p99 (capped flood) <= 3x victim p99 (solo), and
//   flooder achieved rate <= configured rate x 1.25 (bucket burst amortized), and
//   the flooder was actually throttled (the bucket did real work).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/core/tenant.h"
#include "src/liboses/catnip.h"
#include "src/net/headers.h"
#include "src/netsim/sim_network.h"

namespace demi {
namespace {

constexpr TenantId kVictim = 1;
constexpr TenantId kFlooder = 2;
constexpr uint16_t kVictimPort = 9510;
constexpr uint16_t kFloodPort = 9520;
constexpr size_t kVictimRounds = 300;
constexpr size_t kVictimMsgBytes = 64;
constexpr size_t kFloodMsgBytes = 16 * 1024;
constexpr int kFloodWindow = 32;
constexpr uint64_t kFloodRateBps = 50'000'000;  // 50 Mbit/s bucket on a 10 Gbit/s link
constexpr size_t kFloodBurstBytes = 32 * 1024;
constexpr DurationNs kRateWindow = 100 * kMillisecond;  // virtual time for the rate measurement

enum class FloodMode { kNone, kCapped, kUncapped };

struct ScenarioResult {
  bool ok = false;
  TimeNs victim_p50 = 0;
  TimeNs victim_p99 = 0;
  double flood_bps = 0;
  uint64_t flood_throttled = 0;
};

struct World {
  World()
      : net(Link(), /*seed=*/1),
        server(net, Cfg(MacAddr{0xA1}, Ipv4Addr::FromOctets(10, 5, 0, 1)), clock),
        victim_client(net, Cfg(MacAddr{0xB2}, Ipv4Addr::FromOctets(10, 5, 0, 2)), clock),
        flood_client(net, Cfg(MacAddr{0xB3}, Ipv4Addr::FromOctets(10, 5, 0, 3)), clock) {
    for (Catnip* c : {&victim_client, &flood_client}) {
      server.ethernet().arp().Insert(c->local_ip(), c->ethernet().local_mac());
      c->ethernet().arp().Insert(server.local_ip(), MacAddr{0xA1});
    }
  }

  static LinkConfig Link() {
    LinkConfig l;
    l.bandwidth_bps = 10'000'000'000ULL;  // contention shows up in the NIC TX queue, not prop
    return l;
  }
  static Catnip::Config Cfg(MacAddr mac, Ipv4Addr ip) {
    return Catnip::Config{mac, ip, TcpConfig{}, nullptr};
  }

  void AdvanceClock() {
    TimeNs next = 0;
    const auto consider = [&next](TimeNs t) {
      if (t != 0 && (next == 0 || t < next)) {
        next = t;
      }
    };
    consider(net.NextDeliveryTime());
    consider(server.scheduler().NextTimerDeadline());
    consider(victim_client.scheduler().NextTimerDeadline());
    consider(flood_client.scheduler().NextTimerDeadline());
    if (next > clock.Now()) {
      clock.SetTime(next);
    } else {
      clock.Advance(kMicrosecond);  // idle tick; also paces token-bucket refill granularity
    }
  }

  VirtualClock clock;
  SimNetwork net;
  Catnip server;
  Catnip victim_client;
  Catnip flood_client;
};

Result<QToken> PushCopied(Catnip& os, QueueDesc qd, const std::string& data) {
  return os.Push(qd, Sgarray::Of(const_cast<char*>(data.data()),
                                 static_cast<uint32_t>(data.size())));
}

// One pop token per server-side connection, echoed and re-armed by the pump.
struct EchoConn {
  QueueDesc qd = kInvalidQd;
  QToken pop = kInvalidQToken;
  bool open = false;
};

ScenarioResult RunScenario(FloodMode mode) {
  World w;
  ScenarioResult out;

  TenantConfig victim_cfg;  // unlimited: the victim is only an accounting domain
  if (w.server.RegisterTenant(kVictim, victim_cfg) != Status::kOk) {
    return out;
  }
  TenantConfig flood_cfg;
  flood_cfg.tx_rate_bps = mode == FloodMode::kCapped ? kFloodRateBps : 0;
  flood_cfg.tx_burst_bytes = kFloodBurstBytes;
  flood_cfg.tx_weight = 1;
  if (w.server.RegisterTenant(kFlooder, flood_cfg) != Status::kOk) {
    return out;
  }

  const auto listen = [&](uint16_t port, TenantId tenant) -> QueueDesc {
    auto qd = w.server.Socket(SocketType::kStream);
    if (!qd.ok() || w.server.Bind(*qd, {w.server.local_ip(), port}) != Status::kOk ||
        w.server.SetQueueTenant(*qd, tenant) != Status::kOk ||
        w.server.Listen(*qd, 8) != Status::kOk) {
      return kInvalidQd;
    }
    return *qd;
  };
  const QueueDesc victim_lqd = listen(kVictimPort, kVictim);
  const QueueDesc flood_lqd = listen(kFloodPort, kFlooder);
  if (victim_lqd == kInvalidQd || flood_lqd == kInvalidQd) {
    return out;
  }

  EchoConn victim_sc;
  EchoConn flood_sc;
  const auto pump_server = [&](EchoConn& c) {
    if (!c.open || !w.server.IsDone(c.pop)) {
      return;
    }
    auto r = w.server.TryTake(c.pop);
    if (!r.ok() || r->status != Status::kOk) {
      c.open = false;
      return;
    }
    auto echo = w.server.Push(c.qd, r->sga);
    (void)echo;
    w.server.FreeSga(r->sga);
    auto next = w.server.Pop(c.qd);
    if (next.ok()) {
      c.pop = *next;
    } else {
      c.open = false;
    }
  };

  const bool flooding = mode != FloodMode::kNone;
  const std::string junk(kFloodMsgBytes, 'J');
  std::vector<QToken> flood_pops;
  bool flood_open = false;
  const auto pump_flooder = [&](QueueDesc flood_cqd) {
    if (!flood_open) {
      return;
    }
    for (size_t i = 0; i < flood_pops.size(); i++) {
      if (!w.flood_client.IsDone(flood_pops[i])) {
        continue;
      }
      auto r = w.flood_client.TryTake(flood_pops[i]);
      if (!r.ok() || r->status != Status::kOk) {
        flood_open = false;
        return;
      }
      w.flood_client.FreeSga(r->sga);
      auto push = PushCopied(w.flood_client, flood_cqd, junk);
      auto pop = w.flood_client.Pop(flood_cqd);
      if (!push.ok() || !pop.ok()) {
        flood_open = false;
        return;
      }
      flood_pops[i] = *pop;
    }
  };

  QueueDesc flood_cqd = kInvalidQd;
  // Settle every same-instant reaction (receive -> app echo -> transmit) BEFORE advancing
  // virtual time; otherwise each reaction lands after a clock jump to the next timer (the
  // 500 us delayed-ack deadline) and the measured RTT is timer noise, not wire latency.
  const auto settle = [&]() {
    for (int r = 0; r < 2; r++) {
      w.server.PollOnce();
      pump_server(victim_sc);
      pump_server(flood_sc);
      w.victim_client.PollOnce();
      w.flood_client.PollOnce();
      pump_flooder(flood_cqd);
    }
  };
  const auto run_until = [&](auto&& pred) {
    for (int i = 0; i < 8'000'000; i++) {
      settle();
      if (pred()) {
        return true;
      }
      w.AdvanceClock();
    }
    return pred();
  };

  // Establish the victim connection (and the flooder's, when flooding).
  auto victim_accept = w.server.Accept(victim_lqd);
  auto victim_cqd = w.victim_client.Socket(SocketType::kStream);
  if (!victim_accept.ok() || !victim_cqd.ok()) {
    return out;
  }
  auto victim_connect = w.victim_client.Connect(*victim_cqd, {w.server.local_ip(), kVictimPort});
  if (!victim_connect.ok()) {
    return out;
  }
  if (!run_until([&] {
        return w.server.IsDone(*victim_accept) && w.victim_client.IsDone(*victim_connect);
      })) {
    return out;
  }
  {
    auto a = w.server.TryTake(*victim_accept);
    if (!a.ok() || a->status != Status::kOk) {
      return out;
    }
    victim_sc.qd = a->new_qd;
    (void)w.victim_client.TryTake(*victim_connect);
    auto pop = w.server.Pop(victim_sc.qd);
    if (!pop.ok()) {
      return out;
    }
    victim_sc.pop = *pop;
    victim_sc.open = true;
  }

  if (flooding) {
    auto flood_accept = w.server.Accept(flood_lqd);
    auto cqd = w.flood_client.Socket(SocketType::kStream);
    if (!flood_accept.ok() || !cqd.ok()) {
      return out;
    }
    flood_cqd = *cqd;
    auto flood_connect = w.flood_client.Connect(flood_cqd, {w.server.local_ip(), kFloodPort});
    if (!flood_connect.ok()) {
      return out;
    }
    if (!run_until([&] {
          return w.server.IsDone(*flood_accept) && w.flood_client.IsDone(*flood_connect);
        })) {
      return out;
    }
    auto a = w.server.TryTake(*flood_accept);
    if (!a.ok() || a->status != Status::kOk) {
      return out;
    }
    flood_sc.qd = a->new_qd;
    (void)w.flood_client.TryTake(*flood_connect);
    auto pop = w.server.Pop(flood_sc.qd);
    if (!pop.ok()) {
      return out;
    }
    flood_sc.pop = *pop;
    flood_sc.open = true;
    flood_open = true;
    for (int i = 0; i < kFloodWindow; i++) {
      auto push = PushCopied(w.flood_client, flood_cqd, junk);
      auto pop2 = w.flood_client.Pop(flood_cqd);
      if (!push.ok() || !pop2.ok()) {
        return out;
      }
      flood_pops.push_back(*pop2);
    }
    // Warmup: let the flood reach steady state (bucket burst spent, DRR draining) before any
    // measurement starts.
    const TimeNs warm_until = w.clock.Now() + 20 * kMillisecond;
    run_until([&] { return w.clock.Now() >= warm_until; });
  }

  // Victim measurement: closed-loop echoes, virtual-time RTT per round.
  const std::string msg(kVictimMsgBytes, 'v');
  std::vector<TimeNs> rtts;
  rtts.reserve(kVictimRounds);
  const TimeNs rate_t0 = w.clock.Now();
  const uint64_t rate_bytes0 =
      w.server.ethernet().tx_scheduler().GetTenantTxStats(kFlooder).tx_bytes;
  for (size_t round = 0; round < kVictimRounds; round++) {
    const TimeNs start = w.clock.Now();
    auto push = PushCopied(w.victim_client, *victim_cqd, msg);
    auto pop = w.victim_client.Pop(*victim_cqd);
    if (!push.ok() || !pop.ok()) {
      return out;
    }
    size_t echoed = 0;
    const bool done = run_until([&] {
      if (!w.victim_client.IsDone(*pop)) {
        return false;
      }
      auto r = w.victim_client.TryTake(*pop);
      if (!r.ok() || r->status != Status::kOk) {
        return true;  // dead connection: leaves echoed short
      }
      for (uint32_t s = 0; s < r->sga.num_segs; s++) {
        echoed += r->sga.segs[s].len;
      }
      w.victim_client.FreeSga(r->sga);
      if (echoed < msg.size()) {
        auto again = w.victim_client.Pop(*victim_cqd);
        if (!again.ok()) {
          return true;
        }
        pop = *again;
        return false;
      }
      return true;
    });
    if (!done || echoed != msg.size()) {
      return out;
    }
    rtts.push_back(w.clock.Now() - start);
  }

  if (flooding) {
    // Extend the flood-only run so the rate window dominates the bucket's initial burst.
    const TimeNs until = rate_t0 + kRateWindow;
    run_until([&] { return w.clock.Now() >= until || !flood_open; });
    const TimeNs dt = w.clock.Now() - rate_t0;
    const uint64_t bytes =
        w.server.ethernet().tx_scheduler().GetTenantTxStats(kFlooder).tx_bytes - rate_bytes0;
    out.flood_bps = dt == 0 ? 0 : static_cast<double>(bytes) * 8.0 * kSecond / dt;
    out.flood_throttled = w.server.ethernet().tx_scheduler().GetTenantTxStats(kFlooder).throttled;
  }

  std::sort(rtts.begin(), rtts.end());
  out.victim_p50 = rtts[rtts.size() / 2];
  out.victim_p99 = rtts[(rtts.size() * 99) / 100];
  out.ok = true;
  return out;
}

void PrintRow(const char* name, const ScenarioResult& r) {
  std::printf("%-10s  p50 %8.1f us  p99 %8.1f us  flooder %8.2f Mbit/s  throttled %llu\n", name,
              static_cast<double>(r.victim_p50) / 1e3, static_cast<double>(r.victim_p99) / 1e3,
              r.flood_bps / 1e6, static_cast<unsigned long long>(r.flood_throttled));
}

int Run(bool quick) {
  std::printf("bench_noisy_neighbor: victim echo %zuB x%zu, flooder %zuB window %d, "
              "bucket %.0f Mbit/s (docs/TENANCY.md)\n",
              kVictimMsgBytes, kVictimRounds, kFloodMsgBytes, kFloodWindow,
              static_cast<double>(kFloodRateBps) / 1e6);

  const ScenarioResult solo = RunScenario(FloodMode::kNone);
  if (!solo.ok) {
    std::fprintf(stderr, "FAIL: solo scenario did not complete\n");
    return 1;
  }
  PrintRow("solo", solo);

  const ScenarioResult capped = RunScenario(FloodMode::kCapped);
  if (!capped.ok) {
    std::fprintf(stderr, "FAIL: capped-flood scenario did not complete\n");
    return 1;
  }
  PrintRow("capped", capped);

  if (!quick) {
    const ScenarioResult uncapped = RunScenario(FloodMode::kUncapped);
    if (uncapped.ok) {
      PrintRow("uncapped", uncapped);
    } else {
      std::printf("uncapped   (did not complete)\n");
    }
  }

  if (quick) {
    bool pass = true;
    if (capped.victim_p99 > 3 * solo.victim_p99) {
      std::fprintf(stderr, "FAIL: victim p99 under capped flood %.1f us > 3x solo %.1f us\n",
                   static_cast<double>(capped.victim_p99) / 1e3,
                   static_cast<double>(solo.victim_p99) / 1e3);
      pass = false;
    }
    if (capped.flood_bps > static_cast<double>(kFloodRateBps) * 1.25) {
      std::fprintf(stderr, "FAIL: flooder achieved %.2f Mbit/s > bucket %.2f Mbit/s x1.25\n",
                   capped.flood_bps / 1e6, static_cast<double>(kFloodRateBps) / 1e6);
      pass = false;
    }
    if (capped.flood_throttled == 0) {
      std::fprintf(stderr, "FAIL: the flooder was never throttled — the bucket did no work\n");
      pass = false;
    }
    std::printf("perf_smoke_tenant: %s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace demi

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  return demi::Run(quick);
}
