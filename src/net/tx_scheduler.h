// TxScheduler: per-tenant token-bucket rate limiting plus weighted deficit-round-robin frame
// scheduling at the EthernetLayer/SimNic boundary (docs/TENANCY.md).
//
// The fast path stays zero-copy: a frame from a tenant with tokens available and no backlog is
// transmitted inline by the caller (AdmitInline). Only frames that exceed their tenant's bucket
// are flattened and queued — the same copy cost the ARP-miss path already accepts — and drained
// by weighted DRR from PollOnce, so a flooding tenant queues behind its own bucket while other
// tenants' traffic keeps flowing at full rate. Tenants with no configured rate (and the
// kDefaultTenant control domain) bypass the scheduler entirely: zero cost when unused.
//
// One scheduler per EthernetLayer, i.e. per shard: single-threaded, no locks.

#ifndef SRC_NET_TX_SCHEDULER_H_
#define SRC_NET_TX_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/types.h"
#include "src/net/headers.h"

namespace demi {

class TxScheduler {
 public:
  // A flattened frame waiting behind its tenant's bucket (zero-copy is forfeited on the
  // throttled path, exactly like the ARP-miss queue).
  struct Frame {
    MacAddr dst_mac;
    Ipv4Addr dst_ip;
    IpProto proto = IpProto::kUdp;
    std::vector<uint8_t> l4_bytes;
  };

  struct Stats {
    uint64_t inline_frames = 0;    // admitted on the zero-copy fast path
    uint64_t enqueued_frames = 0;  // throttled behind a token bucket
    uint64_t drained_frames = 0;   // sent from tenant queues by Drain()
    uint64_t dropped_frames = 0;   // tail-dropped at the per-tenant queue cap
    uint64_t drr_rounds = 0;       // deficit-round-robin scan rounds
  };

  struct TenantTxStats {
    uint64_t tx_bytes = 0;      // L4 bytes actually transmitted (inline + drained)
    uint64_t throttled = 0;     // frames that missed the bucket and were queued
    size_t queued_frames = 0;   // current backlog
  };

  // Frames a throttled tenant may hold before tail drop; L4 retransmission recovers.
  static constexpr size_t kMaxQueuedPerTenant = 1024;
  // DRR quantum per weight unit per round, in bytes (roughly one MTU frame).
  static constexpr uint64_t kQuantumBytes = 1500;

  // Installs (or updates) a tenant's TX policy. rate_bps == 0 removes rate limiting for the
  // tenant (it keeps its weight for DRR ordering of any still-queued frames).
  void Configure(TenantId tenant, uint64_t rate_bps, size_t burst_bytes, uint32_t weight);

  // True when `tenant` has a configured rate limit (the only case frames can queue).
  bool IsLimited(TenantId tenant) const;

  // Fast-path admission: consumes `frame_bytes` of tokens and returns true when the caller
  // should transmit inline (tenant unlimited, or bucket covers the frame and nothing is
  // queued ahead of it). Returns false when the frame must go through Enqueue().
  bool AdmitInline(TenantId tenant, size_t frame_bytes, TimeNs now);

  // Queues a throttled frame behind the tenant's bucket. Tail-drops at kMaxQueuedPerTenant.
  void Enqueue(TenantId tenant, Frame frame, TimeNs now);

  // Weighted-DRR drain: refills buckets to `now` and transmits every queued frame whose
  // tenant has both deficit and tokens, via `tx`. Returns frames transmitted.
  size_t Drain(TimeNs now, const std::function<Status(const Frame&)>& tx);

  const Stats& stats() const { return stats_; }
  TenantTxStats GetTenantTxStats(TenantId tenant) const;
  size_t backlog_frames() const { return backlog_frames_; }
  size_t num_configured() const { return states_.size(); }

 private:
  struct TenantState {
    TenantId id = kDefaultTenant;
    uint64_t rate_bps = 0;
    double burst_bytes = 0;
    uint32_t weight = 1;
    double tokens = 0;       // bytes currently in the bucket
    TimeNs last_refill = 0;  // virtual-time refill anchor
    double deficit = 0;      // DRR deficit counter, bytes
    uint64_t tx_bytes = 0;
    uint64_t throttled = 0;
    std::deque<Frame> queue;
  };

  TenantState* FindState(TenantId tenant);
  const TenantState* FindState(TenantId tenant) const;
  static void Refill(TenantState& s, TimeNs now);

  // Linear scan: a handful of tenants per shard, hot in cache.
  std::vector<TenantState> states_;
  Stats stats_;
  size_t backlog_frames_ = 0;
};

}  // namespace demi

#endif  // SRC_NET_TX_SCHEDULER_H_
