// Hoard-style pool allocator backing the DMA-capable heap (paper §5.3).
//
// Memory is carved into fixed-size, alignment-addressable *superblocks*, each holding objects of
// one size class. The superblock header holds:
//   - a LIFO intrusive free list (as in Hoard),
//   - DMA metadata: lazily-registered device key (get_rkey),
//   - per-object ownership/reference bitmaps implementing use-after-free protection: an object
//     returns to the free list only when BOTH the application ownership bit and the libOS
//     reference bit are clear. Additional libOS references (an object in flight on several I/Os)
//     overflow into a side table, exactly as §5.3 describes.
//
// Superblocks are aligned to their size, so ptr -> header is a single mask — this is what makes
// inc_ref/dec_ref/get_rkey ns-scale. Each allocator instance is single-threaded (one per libOS,
// per the paper's one-core system model).

#ifndef SRC_MEMORY_POOL_ALLOCATOR_H_
#define SRC_MEMORY_POOL_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/affinity.h"
#include "src/common/status.h"
#include "src/core/types.h"
#include "src/memory/dma.h"

namespace demi {

class FaultInjector;

class PoolAllocator {  // demilint: shard-local
 public:
  // Superblocks are 256 kB and 256 kB-aligned; objects larger than kMaxPooledObject get a
  // dedicated variable-size (still size-aligned) superblock.
  static constexpr size_t kSuperblockSize = 256 * 1024;
  static constexpr size_t kMinObjectSize = 16;
  static constexpr size_t kMaxPooledObject = 64 * 1024;
  // Zero-copy pays off only above this size (paper §5.3); callers (Buffer) copy below it.
  static constexpr size_t kZeroCopyThreshold = 1024;

  explicit PoolAllocator(DmaRegistrar& registrar = NullDmaRegistrar::Global());
  ~PoolAllocator();

  PoolAllocator(const PoolAllocator&) = delete;
  PoolAllocator& operator=(const PoolAllocator&) = delete;

  // Application-facing allocation: object starts app-owned, libOS ref clear. Charged to the
  // control domain (kDefaultTenant): never budgeted.
  void* Alloc(size_t size) { return AllocFor(size, kDefaultTenant); }
  // Tenant-charged allocation. The object is tagged with `tenant` and its size-class capacity
  // is charged against the tenant's byte budget (SetTenantBudget); a tenant at its budget gets
  // nullptr — indistinguishable from heap exhaustion to the caller, but isolated to that
  // tenant. kDefaultTenant is never charged or denied.
  void* AllocFor(size_t size, TenantId tenant);
  // Application-facing free: clears app ownership; memory is recycled only once the libOS also
  // holds no reference (UAF protection).
  void Free(void* ptr);

  // libOS-facing reference counting (not part of PDPIX; internal to libOSes, §5.3).
  void IncRef(void* ptr);
  void DecRef(void* ptr);

  // Device key for the superblock containing `ptr`; registers the superblock on first use.
  uint64_t GetRkey(void* ptr);

  // Rebinds the DMA registrar (e.g., once the owning libOS's device exists). Only legal before
  // any superblock has been registered.
  void SetRegistrar(DmaRegistrar& registrar);

  // Unregisters every registered superblock and detaches from the current registrar (rebinding
  // to the null registrar). Owners call this before destroying the device the registrar
  // belongs to; the allocator itself may outlive the device.
  void UnregisterAll();

  // True if `ptr` was allocated by this allocator. Safe for arbitrary pointers: the check is a
  // lookup in the superblock base index, never a dereference of unowned memory (a magic-number
  // probe at the masked-down address would read out of bounds for foreign heap pointers).
  bool Owns(const void* ptr) const;

  // Usable size of the object holding `ptr` (its size class).
  size_t ObjectSize(const void* ptr) const;

  // --- Introspection for tests/benches ---
  struct Stats {
    size_t superblocks = 0;
    size_t live_objects = 0;       // app-owned or libOS-referenced
    size_t deferred_frees = 0;     // app freed but libOS still holds a reference
    size_t registered_blocks = 0;  // DMA-registered superblocks
    size_t overflow_refs = 0;      // entries in the side refcount table
    size_t bytes_reserved = 0;
  };
  Stats GetStats() const;

  // Returns fully-free cached superblocks to the system (not used on the datapath).
  void ReleaseEmptySuperblocks();

  // Optional chaos hook (null by default): consulted per Alloc for injected failures, which
  // surface as nullptr exactly like real heap exhaustion. See src/faults/fault_injector.h.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  // --- Shard affinity & NUMA placement ---
  // Called by the owning worker thread at shard spawn (LibOS::BindShardAffinity): tags the
  // heap with the calling thread for DemiSan cross-shard checks and records the worker's
  // NUMA node so future superblocks are first-touched locally (docs/STATIC_ANALYSIS.md).
  void BindShard(int shard_id);
  // Worker-exit release: post-Join control-plane inspection is unchecked by design.
  void UnbindShard();
  // NUMA node recorded at BindShard (-1 before binding or when unknown); feeds the
  // `pool.numa_node` gauge.
  int numa_node() const { return numa_node_; }
  // DemiSan: aborts — naming the owning shard and both thread ids — when a bound heap is
  // touched from a foreign thread. No-op when unbound or when the checks are compiled out.
  void AssertShardAccess(const char* what) const { affinity_.Check(what); }

  // --- Tenant memory domains (docs/TENANCY.md) ---
  // Every object carries a 16-bit tenant tag (parallel to the DemiSan generation array).
  // Budgets are charged in size-class capacity at AllocFor and credited when the object is
  // recycled (i.e., a deferred free stays charged while the libOS still references it).
  struct TenantMemStats {
    size_t budget_bytes = 0;
    size_t used_bytes = 0;
    uint64_t denials = 0;
  };
  // Sets (or updates) a tenant's registered-memory budget; 0 tracks usage without enforcing.
  void SetTenantBudget(TenantId tenant, size_t budget_bytes);
  // Tenant tag of the object holding `ptr`; kDefaultTenant for foreign/untagged pointers.
  TenantId TenantOf(const void* ptr) const;
  TenantMemStats GetTenantMemStats(TenantId tenant) const;
  // Aggregates across all non-default tenants, for fixed metrics.
  size_t TenantBytesUsed() const;
  uint64_t TenantDenials() const;

  // --- DemiSan (docs/STATIC_ANALYSIS.md) ---
  // Deterministic ownership sanitizer, compiled in by the DEMI_OWNERSHIP_CHECKS CMake option.
  // Every object carries a generation counter bumped each time it is recycled, and recycled
  // objects are filled with 0xDD poison. Buffer snapshots the generation at acquisition and
  // revalidates it on every data access, so use-after-pop, double-release, and
  // app-writes-after-push abort with a diagnostic naming the owning queue/qtoken instead of
  // corrupting memory silently. When the option is off every hook below compiles to nothing.
#if defined(DEMI_OWNERSHIP_CHECKS)
  static constexpr unsigned char kPoisonByte = 0xDD;
  // Generation of the object holding `ptr`; 0 if `ptr` is not owned by this allocator (which
  // includes objects whose dedicated huge superblock has been returned to the system).
  uint32_t Generation(const void* ptr) const;
  // Records which queue/qtoken pinned `ptr`, so violation reports can name the owner.
  void NoteOwner(const void* ptr, int32_t qd, uint64_t qt);
  // Prints a DemiSan diagnostic (generations, last known owner) and aborts. `expected_gen` is
  // the generation the accessor captured when it legitimately held the object.
  [[noreturn]] void OwnershipViolation(const void* ptr, uint32_t expected_gen,
                                       const char* what) const;
  // Cross-tenant access check: aborts with a tenant-naming diagnostic when `accessor` touches
  // an object tagged for a different non-default tenant. kDefaultTenant may touch anything
  // (control path), and untagged objects may be touched by anyone.
  void AssertTenantAccess(const void* ptr, TenantId accessor, const char* what) const;
  // Prints a DemiSan cross-tenant diagnostic (both tenant ids, last known owner) and aborts.
  [[noreturn]] void TenantViolation(const void* ptr, TenantId owner, TenantId accessor,
                                    const char* what) const;
#else
  uint32_t Generation(const void* /*ptr*/) const { return 0; }
  void NoteOwner(const void* /*ptr*/, int32_t /*qd*/, uint64_t /*qt*/) {}
  void AssertTenantAccess(const void* /*ptr*/, TenantId /*accessor*/, const char* /*what*/) const {
  }
#endif

 private:
  struct Superblock;
  struct SizeClass;

  static size_t SizeClassIndex(size_t size);
  static Superblock* HeaderOf(const void* ptr);

  Superblock* NewSuperblock(size_t class_index, size_t object_size, size_t block_size);
  bool ChargeTenant(TenantId tenant, size_t bytes);
  void CreditTenant(TenantId tenant, size_t bytes);
  void RecycleObject(Superblock* sb, uint32_t index);
  void FreeHugeBlock(Superblock* sb);
  void IndexBlock(Superblock* sb);
  void UnindexBlock(Superblock* sb);

  DmaRegistrar* registrar_;
  std::vector<SizeClass> classes_;
  // Every kSuperblockSize-aligned unit covered by a live superblock, mapped to its header
  // (huge blocks span several units). Owns() consults this instead of touching memory.
  std::unordered_map<uintptr_t, Superblock*> block_index_;
  // libOS references beyond the first for an object (rare; e.g., same buffer on several I/Os).
  std::unordered_map<const void*, uint32_t> overflow_refs_;
  Stats stats_;
  FaultInjector* faults_ = nullptr;
  ShardAffinity affinity_;  // empty (zero-cost) unless DEMI_OWNERSHIP_CHECKS
  int numa_node_ = -1;      // worker's socket, recorded at BindShard; -1 = unplaced
  struct TenantMem {
    size_t budget_bytes = 0;
    size_t used_bytes = 0;
    uint64_t denials = 0;
  };
  // Per-tenant budget/usage accounting; only consulted for non-default tenants, so the
  // kDefaultTenant hot path pays nothing. Entries appear on SetTenantBudget or first AllocFor.
  std::unordered_map<TenantId, TenantMem> tenant_mem_;
#if defined(DEMI_OWNERSHIP_CHECKS)
  struct OwnerNote {
    int32_t qd;
    uint64_t qt;
  };
  // Last queue/qtoken that pinned each object (keyed by object base), for violation reports.
  std::unordered_map<const void*, OwnerNote> owner_notes_;
#endif
};

}  // namespace demi

#endif  // SRC_MEMORY_POOL_ALLOCATOR_H_
