#include "src/memory/pool_allocator.h"

#include <cstdlib>
#include <cstring>
#include <new>

#include "src/common/bitops.h"
#include "src/common/logging.h"
#include "src/common/numa.h"
#include "src/faults/fault_injector.h"

namespace demi {

namespace {
constexpr uint32_t kSuperblockMagic = 0xDEA11'0C8 & 0xFFFFFFFF;
constexpr uint32_t kFreeListEnd = UINT32_MAX;
#if defined(DEMI_OWNERSHIP_CHECKS)
// Poison verification at Alloc is capped so handing out huge objects stays cheap; 512 bytes is
// plenty to catch stray writes through stale Buffer views.
constexpr size_t kPoisonCheckBytes = 512;
#endif
}  // namespace

// Superblock layout: [Superblock header | app_owned bitmap | os_ref bitmap | objects...].
// The header is at the block's aligned base so HeaderOf() is a mask.
struct PoolAllocator::Superblock {
  uint32_t magic;
  uint32_t class_index;     // index into classes_, or UINT32_MAX for a huge block
  uint32_t object_size;
  uint32_t num_objects;
  uint32_t free_head;       // LIFO free list head (object index), kFreeListEnd if full
  uint32_t live;            // objects not on the free list
  uint64_t rkey;
  bool dma_registered;
  PoolAllocator* owner;
  Superblock* next_partial;  // size-class partial list linkage
  Superblock* prev_partial;
  bool on_partial_list;
  size_t block_size;
  uint64_t* app_owned;  // 1 bit per object: application owns it
  uint64_t* os_ref;     // 1 bit per object: libOS holds >=1 reference
  uint16_t* tenant_tags;  // per-object tenant domain; kDefaultTenant when untagged
#if defined(DEMI_OWNERSHIP_CHECKS)
  uint32_t* generations;  // DemiSan: per-object recycle counter, starts at 1
#endif
  unsigned char* objects;

  uint32_t IndexOf(const void* ptr) const {
    const size_t off = static_cast<size_t>(static_cast<const unsigned char*>(ptr) - objects);
    return static_cast<uint32_t>(off / object_size);
  }
  void* ObjectAt(uint32_t index) const { return objects + static_cast<size_t>(index) * object_size; }

  bool TestBit(const uint64_t* map, uint32_t i) const { return (map[i / 64] >> (i % 64)) & 1; }
  void SetBit(uint64_t* map, uint32_t i) { map[i / 64] |= 1ULL << (i % 64); }
  void ClearBit(uint64_t* map, uint32_t i) { map[i / 64] &= ~(1ULL << (i % 64)); }

  // Free-list next pointers are stored in the free objects themselves (Hoard-style LIFO).
  uint32_t& NextOf(uint32_t index) const {
    return *reinterpret_cast<uint32_t*>(ObjectAt(index));
  }
};

struct PoolAllocator::SizeClass {
  size_t object_size = 0;
  Superblock* partial = nullptr;  // blocks with at least one free object
  std::vector<Superblock*> all;
};

PoolAllocator::PoolAllocator(DmaRegistrar& registrar) : registrar_(&registrar) {
  for (size_t size = kMinObjectSize; size <= kMaxPooledObject; size *= 2) {
    SizeClass sc;
    sc.object_size = size;
    classes_.push_back(sc);
  }
}

PoolAllocator::~PoolAllocator() {
  for (SizeClass& sc : classes_) {
    for (Superblock* sb : sc.all) {
      if (sb->dma_registered) {
        registrar_->UnregisterRegion(sb);
      }
      std::free(sb);
    }
  }
}

size_t PoolAllocator::SizeClassIndex(size_t size) {
  size_t index = 0;
  size_t class_size = kMinObjectSize;
  while (class_size < size) {
    class_size *= 2;
    index++;
  }
  return index;
}

PoolAllocator::Superblock* PoolAllocator::HeaderOf(const void* ptr) {
  auto base = reinterpret_cast<uintptr_t>(ptr) & ~(uintptr_t{kSuperblockSize} - 1);
  return reinterpret_cast<Superblock*>(base);
}

void PoolAllocator::IndexBlock(Superblock* sb) {
  const auto base = reinterpret_cast<uintptr_t>(sb);
  for (uintptr_t unit = base; unit < base + sb->block_size; unit += kSuperblockSize) {
    block_index_[unit] = sb;
  }
}

void PoolAllocator::UnindexBlock(Superblock* sb) {
  const auto base = reinterpret_cast<uintptr_t>(sb);
  for (uintptr_t unit = base; unit < base + sb->block_size; unit += kSuperblockSize) {
    block_index_.erase(unit);
  }
}

PoolAllocator::Superblock* PoolAllocator::NewSuperblock(size_t class_index, size_t object_size,
                                                        size_t block_size) {
  void* mem = std::aligned_alloc(kSuperblockSize, block_size);
  if (mem == nullptr) {
    return nullptr;
  }
  // First-touch NUMA placement: once the heap is bound to a worker (BindShard records the
  // node), fault every page in from this thread so the kernel backs the superblock from the
  // worker's local socket. Unbound heaps (single-threaded tests, control-plane pools) skip the
  // sweep — their pages get touched by the carving below anyway.
  if (numa_node_ >= 0) {
    std::memset(mem, 0, block_size);
  }
  auto* sb = new (mem) Superblock();
  sb->magic = kSuperblockMagic;
  sb->class_index = static_cast<uint32_t>(class_index);
  sb->object_size = static_cast<uint32_t>(object_size);
  sb->rkey = 0;
  sb->dma_registered = false;
  sb->owner = this;
  sb->next_partial = nullptr;
  sb->prev_partial = nullptr;
  sb->on_partial_list = false;
  sb->block_size = block_size;
  sb->live = 0;

  // Carve the remainder: bitmaps (plus DemiSan generations) then the object area.
  unsigned char* cursor = static_cast<unsigned char*>(mem) + sizeof(Superblock);
  const size_t space = block_size - sizeof(Superblock);
  // Solve for num_objects: per-object metadata + n*object_size <= space - padding.
  size_t n = space / object_size;
  while (n > 0) {
    size_t meta_bytes = 2 * ((n + 63) / 64) * sizeof(uint64_t) + n * sizeof(uint16_t);
#if defined(DEMI_OWNERSHIP_CHECKS)
    meta_bytes += n * sizeof(uint32_t);
#endif
    const size_t align_pad = 64;  // generous padding for object-area alignment
    if (meta_bytes + n * object_size + align_pad <= space) {
      break;
    }
    n--;
  }
  DEMI_CHECK_MSG(n > 0, "superblock too small for object size %zu", object_size);
  sb->num_objects = static_cast<uint32_t>(n);

  const size_t words = (n + 63) / 64;
  sb->app_owned = reinterpret_cast<uint64_t*>(cursor);
  cursor += words * sizeof(uint64_t);
  sb->os_ref = reinterpret_cast<uint64_t*>(cursor);
  cursor += words * sizeof(uint64_t);
  std::memset(sb->app_owned, 0, words * sizeof(uint64_t));
  std::memset(sb->os_ref, 0, words * sizeof(uint64_t));
#if defined(DEMI_OWNERSHIP_CHECKS)
  sb->generations = reinterpret_cast<uint32_t*>(cursor);
  cursor += n * sizeof(uint32_t);
  for (size_t i = 0; i < n; i++) {
    sb->generations[i] = 1;  // 0 is reserved for "not a live heap object"
  }
#endif
  // Tenant tags go last: uint16_t needs the weakest alignment of the metadata arrays.
  sb->tenant_tags = reinterpret_cast<uint16_t*>(cursor);
  cursor += n * sizeof(uint16_t);
  std::memset(sb->tenant_tags, 0, n * sizeof(uint16_t));
  // Align the object area to 64 bytes so objects are cacheline-friendly.
  auto addr = reinterpret_cast<uintptr_t>(cursor);
  addr = (addr + 63) & ~uintptr_t{63};
  sb->objects = reinterpret_cast<unsigned char*>(addr);

#if defined(DEMI_OWNERSHIP_CHECKS)
  // Poison before the free-list build below overwrites each object's first word, so fresh
  // objects satisfy the same poison-integrity invariant as recycled ones.
  std::memset(sb->objects, kPoisonByte, static_cast<size_t>(n) * object_size);
#endif
  // Build the LIFO free list, lowest index on top.
  sb->free_head = kFreeListEnd;
  for (uint32_t i = sb->num_objects; i-- > 0;) {
    sb->NextOf(i) = sb->free_head;
    sb->free_head = i;
  }

  stats_.superblocks++;
  stats_.bytes_reserved += block_size;
  IndexBlock(sb);
  return sb;
}

bool PoolAllocator::ChargeTenant(TenantId tenant, size_t bytes) {
  if (tenant == kDefaultTenant) {
    return true;  // the control domain is never budgeted
  }
  TenantMem& mem = tenant_mem_[tenant];
  if (mem.budget_bytes > 0 && mem.used_bytes + bytes > mem.budget_bytes) {
    mem.denials++;
    return false;
  }
  mem.used_bytes += bytes;
  return true;
}

void PoolAllocator::CreditTenant(TenantId tenant, size_t bytes) {
  if (tenant == kDefaultTenant) {
    return;
  }
  auto it = tenant_mem_.find(tenant);
  if (it != tenant_mem_.end()) {
    it->second.used_bytes -= bytes < it->second.used_bytes ? bytes : it->second.used_bytes;
  }
}

void PoolAllocator::BindShard(int shard_id) {
  affinity_.Bind(shard_id);
  numa_node_ = CurrentNumaNode();
}

void PoolAllocator::UnbindShard() {
  // numa_node_ survives the unbind: it records where the heap's pages were placed, which is
  // still the right answer for post-Join metric snapshots.
  affinity_.Unbind();
}

void* PoolAllocator::AllocFor(size_t size, TenantId tenant) {
  affinity_.Check("PoolAllocator::AllocFor");
  if (size == 0) {
    size = 1;
  }
  if (faults_ != nullptr && faults_->AllocShouldFail(size)) {
    return nullptr;  // injected exhaustion: identical to the real out-of-memory path
  }
  if (size > kMaxPooledObject) {
    // Huge path: dedicated superblock holding exactly one object.
    if (!ChargeTenant(tenant, size)) {
      return nullptr;  // over budget: this tenant sees exhaustion, the pool is untouched
    }
    size_t need = sizeof(Superblock) + 2 * sizeof(uint64_t) + sizeof(uint16_t) + 64 + size;
#if defined(DEMI_OWNERSHIP_CHECKS)
    need += sizeof(uint32_t);  // the single object's generation counter
#endif
    const size_t block_size = ((need + kSuperblockSize - 1) / kSuperblockSize) * kSuperblockSize;
    Superblock* sb = NewSuperblock(UINT32_MAX, size, block_size);
    if (sb == nullptr) {
      CreditTenant(tenant, size);
      return nullptr;
    }
    // NewSuperblock computed num_objects from object_size; force exactly one for huge blocks.
    sb->num_objects = 1;
    sb->free_head = kFreeListEnd;
    sb->live = 1;
    sb->SetBit(sb->app_owned, 0);
    sb->tenant_tags[0] = tenant;
    stats_.live_objects++;
    return sb->ObjectAt(0);
  }

  const size_t ci = SizeClassIndex(size);
  SizeClass& sc = classes_[ci];
  if (!ChargeTenant(tenant, sc.object_size)) {
    return nullptr;
  }
  Superblock* sb = sc.partial;
  if (sb == nullptr) {
    sb = NewSuperblock(ci, sc.object_size, kSuperblockSize);
    if (sb == nullptr) {
      CreditTenant(tenant, sc.object_size);
      return nullptr;
    }
    sc.all.push_back(sb);
    sb->next_partial = nullptr;
    sb->prev_partial = nullptr;
    sb->on_partial_list = true;
    sc.partial = sb;
  }

  const uint32_t index = sb->free_head;
  DEMI_CHECK(index != kFreeListEnd);
#if defined(DEMI_OWNERSHIP_CHECKS)
  // Write-after-free detection: a free object must still be wall-to-wall poison apart from the
  // intrusive free-list word. Damaged poison means something wrote through a stale pointer
  // after the object was recycled.
  {
    const auto* obj = static_cast<const unsigned char*>(sb->ObjectAt(index));
    const size_t check = sb->object_size < kPoisonCheckBytes ? sb->object_size : kPoisonCheckBytes;
    for (size_t i = sizeof(uint32_t); i < check; i++) {
      if (obj[i] != kPoisonByte) {
        OwnershipViolation(obj, sb->generations[index],
                           "write to freed object (poison damaged)");
      }
    }
  }
#endif
  sb->free_head = sb->NextOf(index);
  sb->live++;
  sb->SetBit(sb->app_owned, index);
  sb->tenant_tags[index] = tenant;
  if (sb->free_head == kFreeListEnd) {
    // Block is now full: unlink from the partial list.
    sc.partial = sb->next_partial;
    if (sb->next_partial != nullptr) {
      sb->next_partial->prev_partial = nullptr;
    }
    sb->next_partial = nullptr;
    sb->on_partial_list = false;
  }
  stats_.live_objects++;
  return sb->ObjectAt(index);
}

void PoolAllocator::RecycleObject(Superblock* sb, uint32_t index) {
  if (sb->class_index == UINT32_MAX) {
    FreeHugeBlock(sb);
    return;
  }
  // Credit the owning tenant now that the object truly returns to the pool: deferred frees
  // (libOS still holds a reference) stay charged until this point.
  CreditTenant(sb->tenant_tags[index], sb->object_size);
  sb->tenant_tags[index] = kDefaultTenant;
#if defined(DEMI_OWNERSHIP_CHECKS)
  // A recycled slot is a new identity: bump the generation so stale Buffers detect the reuse,
  // and poison the bytes so writes through stale pointers are caught at the next Alloc.
  sb->generations[index]++;
  std::memset(sb->ObjectAt(index), kPoisonByte, sb->object_size);
  // The owner note deliberately survives recycling: a stale Buffer trips its generation
  // check *after* this point, and the report should still name who last pinned the object.
  // The next NoteOwner for this slot overwrites it.
#endif
  sb->NextOf(index) = sb->free_head;
  const bool was_full = (sb->free_head == kFreeListEnd);
  sb->free_head = index;
  sb->live--;
  if (was_full && !sb->on_partial_list) {
    SizeClass& sc = classes_[sb->class_index];
    sb->next_partial = sc.partial;
    sb->prev_partial = nullptr;
    if (sc.partial != nullptr) {
      sc.partial->prev_partial = sb;
    }
    sc.partial = sb;
    sb->on_partial_list = true;
  }
}

void PoolAllocator::FreeHugeBlock(Superblock* sb) {
  CreditTenant(sb->tenant_tags[0], sb->object_size);
#if defined(DEMI_OWNERSHIP_CHECKS)
  owner_notes_.erase(sb->ObjectAt(0));
#endif
  if (sb->dma_registered) {
    registrar_->UnregisterRegion(sb);
    stats_.registered_blocks--;
  }
  stats_.superblocks--;
  stats_.bytes_reserved -= sb->block_size;
  UnindexBlock(sb);
  std::free(sb);
}

void PoolAllocator::Free(void* ptr) {
  affinity_.Check("PoolAllocator::Free");
  if (ptr == nullptr) {
    return;
  }
  Superblock* sb = HeaderOf(ptr);
  DEMI_CHECK_MSG(sb->magic == kSuperblockMagic && sb->owner == this,
                 "Free of pointer not owned by this allocator");
  const uint32_t index = sb->IndexOf(ptr);
  DEMI_CHECK_MSG(sb->TestBit(sb->app_owned, index), "double free or free of libOS-owned object");
  sb->ClearBit(sb->app_owned, index);
  stats_.live_objects--;
  if (sb->TestBit(sb->os_ref, index)) {
    // UAF protection: the libOS still references this buffer (e.g., unacked TCP data); the
    // object is recycled when the last libOS reference drops.
    stats_.deferred_frees++;
    return;
  }
  RecycleObject(sb, index);
}

void PoolAllocator::IncRef(void* ptr) {
  affinity_.Check("PoolAllocator::IncRef");
  Superblock* sb = HeaderOf(ptr);
  DEMI_CHECK(sb->magic == kSuperblockMagic && sb->owner == this);
  const uint32_t index = sb->IndexOf(ptr);
#if defined(DEMI_OWNERSHIP_CHECKS)
  // Both identity bits clear means the object sits on the free list: the caller is pinning a
  // pointer the application already freed (push-after-free).
  if (!sb->TestBit(sb->app_owned, index) && !sb->TestBit(sb->os_ref, index)) {
    OwnershipViolation(ptr, sb->generations[index], "IncRef of a freed object (push after free)");
  }
#endif
  if (!sb->TestBit(sb->os_ref, index)) {
    sb->SetBit(sb->os_ref, index);
    return;
  }
  // Second or later reference: overflow side table keyed by object base address.
  overflow_refs_[sb->ObjectAt(index)]++;
  stats_.overflow_refs++;
}

void PoolAllocator::DecRef(void* ptr) {
  affinity_.Check("PoolAllocator::DecRef");
  Superblock* sb = HeaderOf(ptr);
  DEMI_CHECK(sb->magic == kSuperblockMagic && sb->owner == this);
  const uint32_t index = sb->IndexOf(ptr);
  DEMI_CHECK_MSG(sb->TestBit(sb->os_ref, index), "DecRef without reference");
  void* base = sb->ObjectAt(index);
  auto it = overflow_refs_.find(base);
  if (it != overflow_refs_.end()) {
    if (--it->second == 0) {
      overflow_refs_.erase(it);
    }
    stats_.overflow_refs--;
    return;
  }
  sb->ClearBit(sb->os_ref, index);
  if (!sb->TestBit(sb->app_owned, index)) {
    // Application already freed it; complete the deferred free now.
    stats_.deferred_frees--;
    RecycleObject(sb, index);
  }
}

uint64_t PoolAllocator::GetRkey(void* ptr) {
  Superblock* sb = HeaderOf(ptr);
  DEMI_CHECK(sb->magic == kSuperblockMagic && sb->owner == this);
  if (!sb->dma_registered) {
    sb->rkey = registrar_->RegisterRegion(sb, sb->block_size);
    sb->dma_registered = true;
    stats_.registered_blocks++;
  }
  return sb->rkey;
}

bool PoolAllocator::Owns(const void* ptr) const {
  if (ptr == nullptr) {
    return false;
  }
  // Foreign pointers (app stack/heap memory handed to push) must not be probed via HeaderOf():
  // dereferencing the masked-down address reads memory this allocator does not own. The base
  // index answers ownership without touching the pointee.
  const auto unit = reinterpret_cast<uintptr_t>(ptr) & ~(uintptr_t{kSuperblockSize} - 1);
  const auto it = block_index_.find(unit);
  if (it == block_index_.end()) {
    return false;
  }
  const Superblock* sb = it->second;
  return sb->magic == kSuperblockMagic && sb->owner == this;
}

size_t PoolAllocator::ObjectSize(const void* ptr) const {
  const Superblock* sb = HeaderOf(ptr);
  DEMI_CHECK(sb->magic == kSuperblockMagic);
  return sb->object_size;
}

void PoolAllocator::UnregisterAll() {
  for (SizeClass& sc : classes_) {
    for (Superblock* sb : sc.all) {
      if (sb->dma_registered) {
        registrar_->UnregisterRegion(sb);
        sb->dma_registered = false;
        stats_.registered_blocks--;
      }
    }
  }
  // Huge blocks are not tracked in classes_; they unregister on free. After detaching they
  // would call the dead registrar, so huge zero-copy objects must be freed before the device.
  registrar_ = &NullDmaRegistrar::Global();
}

void PoolAllocator::SetRegistrar(DmaRegistrar& registrar) {
  DEMI_CHECK_MSG(stats_.registered_blocks == 0, "SetRegistrar after registration");
  registrar_ = &registrar;
}

PoolAllocator::Stats PoolAllocator::GetStats() const { return stats_; }

void PoolAllocator::SetTenantBudget(TenantId tenant, size_t budget_bytes) {
  if (tenant == kDefaultTenant) {
    return;  // the control domain is never budgeted
  }
  tenant_mem_[tenant].budget_bytes = budget_bytes;
}

TenantId PoolAllocator::TenantOf(const void* ptr) const {
  if (!Owns(ptr)) {
    return kDefaultTenant;
  }
  const Superblock* sb = HeaderOf(ptr);
  return sb->tenant_tags[sb->IndexOf(ptr)];
}

PoolAllocator::TenantMemStats PoolAllocator::GetTenantMemStats(TenantId tenant) const {
  const auto it = tenant_mem_.find(tenant);
  if (it == tenant_mem_.end()) {
    return TenantMemStats{};
  }
  return TenantMemStats{it->second.budget_bytes, it->second.used_bytes, it->second.denials};
}

size_t PoolAllocator::TenantBytesUsed() const {
  size_t total = 0;
  for (const auto& [id, mem] : tenant_mem_) {
    total += mem.used_bytes;
  }
  return total;
}

uint64_t PoolAllocator::TenantDenials() const {
  uint64_t total = 0;
  for (const auto& [id, mem] : tenant_mem_) {
    total += mem.denials;
  }
  return total;
}

#if defined(DEMI_OWNERSHIP_CHECKS)
uint32_t PoolAllocator::Generation(const void* ptr) const {
  if (!Owns(ptr)) {
    return 0;  // foreign pointer, or the dedicated huge superblock is already gone
  }
  const Superblock* sb = HeaderOf(ptr);
  return sb->generations[sb->IndexOf(ptr)];
}

void PoolAllocator::NoteOwner(const void* ptr, int32_t qd, uint64_t qt) {
  if (!Owns(ptr)) {
    return;
  }
  const Superblock* sb = HeaderOf(ptr);
  owner_notes_[sb->ObjectAt(sb->IndexOf(ptr))] = OwnerNote{qd, qt};
}

void PoolAllocator::OwnershipViolation(const void* ptr, uint32_t expected_gen,
                                       const char* what) const {
  uint32_t current_gen = 0;
  int32_t qd = -1;
  uint64_t qt = 0;
  bool have_owner = false;
  if (Owns(ptr)) {
    const Superblock* sb = HeaderOf(ptr);
    const uint32_t index = sb->IndexOf(ptr);
    current_gen = sb->generations[index];
    const auto it = owner_notes_.find(sb->ObjectAt(index));
    if (it != owner_notes_.end()) {
      qd = it->second.qd;
      qt = it->second.qt;
      have_owner = true;
    }
  }
  std::fprintf(stderr,
               "[demi] DemiSan: %s: ptr=%p generation=%u expected=%u last owner: qd=%d qt=%llu%s\n",
               what, ptr, current_gen, expected_gen, qd, static_cast<unsigned long long>(qt),
               have_owner ? "" : " (none recorded)");
  std::abort();
}

void PoolAllocator::AssertTenantAccess(const void* ptr, TenantId accessor,
                                       const char* what) const {
  if (accessor == kDefaultTenant || !Owns(ptr)) {
    return;  // the control domain may touch anything; foreign pointers carry no tag
  }
  const Superblock* sb = HeaderOf(ptr);
  const TenantId owner = sb->tenant_tags[sb->IndexOf(ptr)];
  if (owner != kDefaultTenant && owner != accessor) {
    TenantViolation(ptr, owner, accessor, what);
  }
}

void PoolAllocator::TenantViolation(const void* ptr, TenantId owner, TenantId accessor,
                                    const char* what) const {
  int32_t qd = -1;
  uint64_t qt = 0;
  bool have_note = false;
  if (Owns(ptr)) {
    const Superblock* sb = HeaderOf(ptr);
    const auto it = owner_notes_.find(sb->ObjectAt(sb->IndexOf(ptr)));
    if (it != owner_notes_.end()) {
      qd = it->second.qd;
      qt = it->second.qt;
      have_note = true;
    }
  }
  std::fprintf(stderr,
               "[demi] DemiSan: cross-tenant access: %s: ptr=%p owner tenant=%u accessor "
               "tenant=%u last owner: qd=%d qt=%llu%s\n",
               what, ptr, owner, accessor, qd, static_cast<unsigned long long>(qt),
               have_note ? "" : " (none recorded)");
  std::abort();
}
#endif  // DEMI_OWNERSHIP_CHECKS

void PoolAllocator::ReleaseEmptySuperblocks() {
  for (SizeClass& sc : classes_) {
    std::vector<Superblock*> kept;
    for (Superblock* sb : sc.all) {
      if (sb->live == 0) {
        // Unlink from the partial list.
        if (sb->on_partial_list) {
          if (sb->prev_partial != nullptr) {
            sb->prev_partial->next_partial = sb->next_partial;
          } else {
            sc.partial = sb->next_partial;
          }
          if (sb->next_partial != nullptr) {
            sb->next_partial->prev_partial = sb->prev_partial;
          }
        }
        if (sb->dma_registered) {
          registrar_->UnregisterRegion(sb);
          stats_.registered_blocks--;
        }
        stats_.superblocks--;
        stats_.bytes_reserved -= sb->block_size;
        UnindexBlock(sb);
        std::free(sb);
      } else {
        kept.push_back(sb);
      }
    }
    sc.all = std::move(kept);
  }
}

}  // namespace demi
