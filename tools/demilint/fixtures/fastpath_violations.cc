// Seeded fastpath-rule violations for `demilint.py --selftest`. Each `demilint-expect`
// comment marks a line the tool MUST flag; lines without one must stay silent.

#include "src/common/logging.h"

namespace demi {

int PollLoop(int* ring, int n) {
  int drained = 0;
  // demilint: fastpath
  for (int i = 0; i < n; i++) {
    DEMI_CHECK(ring[i] >= 0);                    // demilint-expect: fastpath-abort
    DEMI_DCHECK(ring[i] >= 0);                   // debug-only check: permitted
    int* copy = new int(ring[i]);                // demilint-expect: fastpath-alloc
    usleep(10);                                  // demilint-expect: fastpath-syscall
    drained += *copy;
    // demilint: allow(fastpath-alloc) growth bounded by n, seeded suppression test
    scratch_.push_back(drained);
    scratch_.resize(64);                         // demilint-expect: fastpath-alloc
  }
  return drained;
  // demilint: end-fastpath
}

int SlowPath() {
  // Outside any region: the same constructs are fine here.
  int* p = new int(7);
  usleep(10);
  return *p;
}

}  // namespace demi
