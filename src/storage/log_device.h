// LogDevice: the abstract log Cattree maps PDPIX queues onto (paper §6.4).
//
// An append-only record log over SimBlockDevice. push appends records; pop reads from a cursor;
// truncate garbage-collects logically. Appends resolve when the underlying device write
// completes (durability), which Cattree awaits from an application coroutine while the fast-path
// coroutine polls device completions — the SPDK interaction pattern the paper describes.
//
// On-device format (docs/STORAGE.md): a sequence of records, each
//   [magic u32][payload_len u32][epoch u64][payload_crc u32][header_crc u32]
//   [payload bytes][zero padding to 8-byte alignment]
// plus 8-byte pad markers ([pad magic u32][skip u32]) that block-align scatter-gather records.
// Recovery scans from offset 0 and accepts a record only if both CRCs verify and its epoch is
// strictly greater than the previous record's — a torn write (prefix on media, error returned)
// can forge magic+length but not the payload CRC, so recovery stops at the last durable record.
//
// Partitioning: a LogDevice may own a contiguous block range of a shared device (LogPartition)
// with an allocation epoch shared across all partitions; see PartitionedLog for the coordinator
// that carves the ranges and stitches recovery back together in epoch order.

#ifndef SRC_STORAGE_LOG_DEVICE_H_
#define SRC_STORAGE_LOG_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/memory/buffer.h"
#include "src/runtime/event.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"
#include "src/storage/sim_block_device.h"

namespace demi {

class MetricsRegistry;

// A contiguous block range of a shared device owned by one LogDevice (one shard). The default
// (num_blocks = 0) means "the whole device", which is the classic single-worker layout.
struct LogPartition {
  uint64_t first_block = 0;
  uint64_t num_blocks = 0;  // 0 = to the end of the device
  uint32_t id = 0;          // shard index; doubles as the device completion queue
};

class LogDevice {
 public:
  // `epoch` is the allocation epoch shared across every partition of one device (stamped into
  // each record header; recovery orders cross-partition records by it). Null uses a private
  // counter — correct for a sole whole-device log.
  LogDevice(SimBlockDevice& device, Scheduler& scheduler, const LogPartition& partition = {},
            std::atomic<uint64_t>* epoch = nullptr);

  struct ReadResult {
    std::vector<uint8_t> payload;
    uint64_t next_cursor;
  };

  // Zero-copy read: the payload is a view into one pool allocation covering the record's
  // blocks — no payload memcpy between the device and the consumer (e.g. a TCP push).
  struct ZcReadResult {
    Buffer payload;
    uint64_t next_cursor = 0;
  };

  // Appends one record; resumes when the write is durable on the device. Returns the record's
  // byte offset. Appends from multiple coroutines are serialized internally.
  Task<Result<uint64_t>> Append(std::span<const uint8_t> payload);

  // Scatter-gather append: one record whose payload is the concatenation of `slices`, written
  // via the device's gather DMA — the payload bytes are never copied host-side. The record is
  // placed on a block boundary (pad markers fill the gaps) so the tail-block cache never needs
  // payload bytes. Slices must stay valid until the task completes (the awaiting splice op
  // holds the Buffer references). Returns the record's byte offset.
  Task<Result<uint64_t>> AppendSg(std::span<const std::span<const uint8_t>> slices);

  // Reads the record at `cursor` (skipping pad markers); fails with kEndOfFile at the tail,
  // kProtocolError on a corrupt header/CRC, kInvalidArgument below the GC head.
  Task<Result<ReadResult>> Read(uint64_t cursor);

  // As Read, but the payload comes back as a Buffer view over a single pool allocation the
  // device DMAed into (disk→NIC splice path). kNoMemory when the heap can't cover the span.
  Task<Result<ZcReadResult>> ReadZc(uint64_t cursor, PoolAllocator& alloc);

  // Logical garbage collection: records below `offset` become unreadable.
  [[nodiscard]] Status Truncate(uint64_t offset);

  // Drains device completions and wakes blocked appenders/readers. Called from the owning
  // libOS's fast-path coroutine.
  void PollDevice();

  // True when asynchronous work is pending (drives fast-path polling decisions).
  bool HasPendingIo() const { return outstanding_ > 0; }
  TimeNs NextCompletionTime() const { return device_.NextCompletionTime(); }

  uint64_t head() const { return head_; }
  uint64_t tail() const { return tail_; }
  const LogPartition& partition() const { return part_; }
  uint64_t CapacityBytes() const { return part_bytes_; }

  // Rebuilds head_/tail_ by scanning this partition (crash-recovery path, synchronous). Only
  // CRC-verified records with strictly increasing epochs count; a torn prefix is not recovered.
  [[nodiscard]] Status Recover();

  // One recovered record's location (shared by Recover and PartitionedLog::RecoverAll).
  struct RecordInfo {
    uint64_t offset = 0;  // partition-relative byte offset of the header
    uint32_t len = 0;     // payload bytes
    uint64_t epoch = 0;
  };
  // Synchronous media scan of `partition` applying the recovery rules; appends accepted
  // records to `out` (may be null) and returns the rebuilt tail offset.
  static uint64_t ScanPartition(const SimBlockDevice& device, const LogPartition& partition,
                                std::vector<RecordInfo>* out);

  // Bounded exponential backoff applied to transient device I/O errors (injected faults, flaky
  // media). After 1 + max_retries failed attempts the last error becomes terminal and
  // propagates to the caller — and from there through Cattree to the waiting qtoken.
  struct RetryPolicy {
    uint32_t max_retries = 6;
    DurationNs initial_backoff = 10 * kMicrosecond;
    DurationNs max_backoff = 1 * kMillisecond;
  };
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  struct Stats {
    uint64_t io_retries = 0;          // transient device errors absorbed by backoff+retry
    uint64_t io_terminal_errors = 0;  // retry budget exhausted; error surfaced to the caller
    uint64_t sg_appends = 0;          // scatter-gather (splice) records written
    uint64_t pad_bytes = 0;           // alignment pad bytes written around SG records
    uint64_t bounce_bytes = 0;        // payload bytes the SG path had to flatten host-side
                                      // (slice count over the device SGL limit); 0 = zero-copy
    uint64_t last_epoch = 0;          // epoch stamped into the most recent append
  };
  const Stats& stats() const { return stats_; }

  // Exposes the retry counters and partition identity as `log.*` metrics
  // (see docs/OBSERVABILITY.md).
  void RegisterMetrics(MetricsRegistry& registry);

  static constexpr size_t kHeaderSize = 24;

 private:
  static constexpr uint32_t kRecordMagic = 0x4C4F4752;  // "LOGR"
  static constexpr uint32_t kPadMagic = 0x4C4F4750;     // "LOGP"
  static constexpr size_t kAlign = 8;
  static constexpr size_t kPadHeaderSize = 8;

  struct IoWait {
    bool done = false;
    Status status = Status::kOk;  // completion status from the device
    Event event;
  };

  // One submission attempt: retries while the device queue is full, then awaits the completion
  // and returns its status.
  Task<Status> SubmitOnceAndWait(bool is_read, uint64_t lba, std::span<const uint8_t> data,
                                 std::span<const std::span<const uint8_t>> iov,
                                 std::span<uint8_t> out);
  // Issues a device op with transient-error retry per retry_policy(); returns the terminal
  // status once the op succeeds or the budget is spent.
  Task<Status> SubmitWriteAndWait(uint64_t lba, std::span<const uint8_t> data);
  Task<Status> SubmitWritevAndWait(uint64_t lba, std::span<const std::span<const uint8_t>> iov);
  Task<Status> SubmitReadAndWait(uint64_t lba, std::span<uint8_t> out);
  Task<void> AcquireAppendLock();
  void ReleaseAppendLock();
  // Composes the 24-byte record header for `payload_len` bytes with `crc`, stamping a fresh
  // epoch. Must run under the append lock so per-partition epochs stay strictly increasing.
  std::vector<uint8_t> MakeHeader(uint32_t payload_len, uint32_t payload_crc);
  uint64_t DeviceLba(uint64_t byte_offset) const {
    return part_.first_block + byte_offset / block_size_;
  }

  SimBlockDevice& device_;
  Scheduler& scheduler_;
  const size_t block_size_;
  LogPartition part_;
  uint64_t part_bytes_ = 0;
  // demilint: atomic(standalone-log fallback for the shared allocation epoch; atomic only
  // so epoch_ has one type whether it points here (single owner) or at PartitionedLog's
  // truly shared counter — see partitioned_log.h for the relaxed-ordering argument)
  std::atomic<uint64_t> local_epoch_{1};
  std::atomic<uint64_t>* epoch_;  // shared across partitions, or &local_epoch_

  uint64_t head_ = 0;  // oldest readable byte (partition-relative)
  uint64_t tail_ = 0;  // next append offset (partition-relative)
  std::vector<uint8_t> tail_block_cache_;  // in-memory copy of the partial tail block

  bool append_locked_ = false;
  Event append_lock_released_;

  uint64_t next_cookie_ = 1;
  size_t outstanding_ = 0;
  std::unordered_map<uint64_t, IoWait*> waiting_;
  RetryPolicy retry_;
  Stats stats_;
};

}  // namespace demi

#endif  // SRC_STORAGE_LOG_DEVICE_H_
