// SYN-cookie encoding for stateless handshakes (docs/SCALING.md §2).
//
// With `TcpConfig::syn_cookies` on, a listener answers SYNs with a SYN-ACK whose initial
// sequence number *is* the cookie — no TCB, no backlog slot, nothing allocated until the
// third-ACK returns the cookie and proves the peer completed the handshake. The 32-bit ISS
// packs:
//
//   bits 31..10   22-bit keyed hash over (4-tuple, client ISS, time bucket, secret)
//   bits  9..8    time-bucket low bits (~8.6 s per bucket; current and previous accepted)
//   bits  7..0    compressed SYN options: mss table index (3) | peer wscale (4) | ts flag (1)
//
// Options that don't survive the round trip (exact peer MSS, SACK) degrade gracefully: MSS is
// rounded down to a table entry, wscale 15 encodes "peer offered none". Validation is pure
// arithmetic — a flood of half-open connections costs zero bytes of connection state.

#ifndef SRC_NET_TCP_SYN_COOKIES_H_
#define SRC_NET_TCP_SYN_COOKIES_H_

#include <cstdint>
#include <optional>

#include "src/common/clock.h"

namespace demi {

class SynCookies {
 public:
  static constexpr uint32_t kMssTable[8] = {536, 1160, 1400, 1440, 1460, 2960, 4380, 8940};
  static constexpr uint8_t kNoWscale = 15;

  explicit SynCookies(uint64_t secret) : secret_(secret) {}

  struct SynOptions {
    uint32_t mss = 536;           // rounded to the table entry actually encoded
    uint8_t peer_wscale = kNoWscale;  // peer's advertised shift, kNoWscale if absent
    bool timestamps = false;
  };

  // Builds the cookie ISS for a SYN. `mss` is the already-clamped effective MSS (it gets
  // rounded *down* to the nearest table entry); `key` is FlowTable::MakeKey of the 4-tuple.
  uint32_t Encode(uint64_t key, uint32_t client_iss, const SynOptions& opts, TimeNs now) const;

  // Validates `cookie` (the peer's ack - 1) against the 4-tuple and client ISS (seq - 1).
  // Accepts the current and previous time bucket; returns the decoded options on success.
  std::optional<SynOptions> Decode(uint64_t key, uint32_t client_iss, uint32_t cookie,
                                   TimeNs now) const;

  // Largest table MSS <= mss (clamps below the table floor to entry 0).
  static uint32_t RoundMss(uint32_t mss);

 private:
  static constexpr uint64_t kBucketShift = 33;  // 2^33 ns ~= 8.6 s per bucket

  uint32_t Hash22(uint64_t key, uint32_t client_iss, uint64_t bucket, uint8_t opts_byte) const;

  uint64_t secret_;
};

}  // namespace demi

#endif  // SRC_NET_TCP_SYN_COOKIES_H_
