// A violation-free fixture: the selftest fails if any rule fires here (false positive).

#include "src/common/logging.h"

namespace demi {

int CleanPoll(const int* ring, int n) {
  int sum = 0;
  // demilint: fastpath
  for (int i = 0; i < n; i++) {
    DEMI_DCHECK(ring[i] >= 0);
    // Strings and comments must not trip the pattern rules: "abort(" and malloc( in prose.
    const char* label = "new connection accepted";  // `new` inside a literal
    sum += ring[i] + static_cast<int>(label[0]);
    renew_timer(i);     // identifier containing a keyword, not an allocation
    state.resume();     // method call, not a syscall
  }
  return sum;
  // demilint: end-fastpath
}

}  // namespace demi
