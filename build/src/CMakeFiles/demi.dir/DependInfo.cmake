
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/echo.cc" "src/CMakeFiles/demi.dir/apps/echo.cc.o" "gcc" "src/CMakeFiles/demi.dir/apps/echo.cc.o.d"
  "/root/repo/src/apps/minikv.cc" "src/CMakeFiles/demi.dir/apps/minikv.cc.o" "gcc" "src/CMakeFiles/demi.dir/apps/minikv.cc.o.d"
  "/root/repo/src/apps/minirpc.cc" "src/CMakeFiles/demi.dir/apps/minirpc.cc.o" "gcc" "src/CMakeFiles/demi.dir/apps/minirpc.cc.o.d"
  "/root/repo/src/apps/txnstore.cc" "src/CMakeFiles/demi.dir/apps/txnstore.cc.o" "gcc" "src/CMakeFiles/demi.dir/apps/txnstore.cc.o.d"
  "/root/repo/src/apps/udp_relay.cc" "src/CMakeFiles/demi.dir/apps/udp_relay.cc.o" "gcc" "src/CMakeFiles/demi.dir/apps/udp_relay.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/demi.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/demi.dir/common/logging.cc.o.d"
  "/root/repo/src/core/libos.cc" "src/CMakeFiles/demi.dir/core/libos.cc.o" "gcc" "src/CMakeFiles/demi.dir/core/libos.cc.o.d"
  "/root/repo/src/core/pdpix_c.cc" "src/CMakeFiles/demi.dir/core/pdpix_c.cc.o" "gcc" "src/CMakeFiles/demi.dir/core/pdpix_c.cc.o.d"
  "/root/repo/src/liboses/catmint.cc" "src/CMakeFiles/demi.dir/liboses/catmint.cc.o" "gcc" "src/CMakeFiles/demi.dir/liboses/catmint.cc.o.d"
  "/root/repo/src/liboses/catnap.cc" "src/CMakeFiles/demi.dir/liboses/catnap.cc.o" "gcc" "src/CMakeFiles/demi.dir/liboses/catnap.cc.o.d"
  "/root/repo/src/liboses/catnip.cc" "src/CMakeFiles/demi.dir/liboses/catnip.cc.o" "gcc" "src/CMakeFiles/demi.dir/liboses/catnip.cc.o.d"
  "/root/repo/src/liboses/cattree.cc" "src/CMakeFiles/demi.dir/liboses/cattree.cc.o" "gcc" "src/CMakeFiles/demi.dir/liboses/cattree.cc.o.d"
  "/root/repo/src/memory/pool_allocator.cc" "src/CMakeFiles/demi.dir/memory/pool_allocator.cc.o" "gcc" "src/CMakeFiles/demi.dir/memory/pool_allocator.cc.o.d"
  "/root/repo/src/net/ethernet.cc" "src/CMakeFiles/demi.dir/net/ethernet.cc.o" "gcc" "src/CMakeFiles/demi.dir/net/ethernet.cc.o.d"
  "/root/repo/src/net/headers.cc" "src/CMakeFiles/demi.dir/net/headers.cc.o" "gcc" "src/CMakeFiles/demi.dir/net/headers.cc.o.d"
  "/root/repo/src/net/tcp/congestion.cc" "src/CMakeFiles/demi.dir/net/tcp/congestion.cc.o" "gcc" "src/CMakeFiles/demi.dir/net/tcp/congestion.cc.o.d"
  "/root/repo/src/net/tcp/tcp.cc" "src/CMakeFiles/demi.dir/net/tcp/tcp.cc.o" "gcc" "src/CMakeFiles/demi.dir/net/tcp/tcp.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/CMakeFiles/demi.dir/net/udp.cc.o" "gcc" "src/CMakeFiles/demi.dir/net/udp.cc.o.d"
  "/root/repo/src/netsim/pcap_writer.cc" "src/CMakeFiles/demi.dir/netsim/pcap_writer.cc.o" "gcc" "src/CMakeFiles/demi.dir/netsim/pcap_writer.cc.o.d"
  "/root/repo/src/netsim/sim_network.cc" "src/CMakeFiles/demi.dir/netsim/sim_network.cc.o" "gcc" "src/CMakeFiles/demi.dir/netsim/sim_network.cc.o.d"
  "/root/repo/src/netsim/sim_rdma.cc" "src/CMakeFiles/demi.dir/netsim/sim_rdma.cc.o" "gcc" "src/CMakeFiles/demi.dir/netsim/sim_rdma.cc.o.d"
  "/root/repo/src/runtime/scheduler.cc" "src/CMakeFiles/demi.dir/runtime/scheduler.cc.o" "gcc" "src/CMakeFiles/demi.dir/runtime/scheduler.cc.o.d"
  "/root/repo/src/storage/log_device.cc" "src/CMakeFiles/demi.dir/storage/log_device.cc.o" "gcc" "src/CMakeFiles/demi.dir/storage/log_device.cc.o.d"
  "/root/repo/src/storage/sim_block_device.cc" "src/CMakeFiles/demi.dir/storage/sim_block_device.cc.o" "gcc" "src/CMakeFiles/demi.dir/storage/sim_block_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
