// Tracer: a bounded ring buffer of typed datapath events for µs-scale debugging.
//
// Recording is designed to be safe to leave compiled into every hot path: when disabled (the
// default) Record() is a single predictable branch on a bool — no clock read, no allocation —
// so the datapath pays ~a nanosecond, well under the ≤20 ns budget. When enabled, each event
// is one clock read plus four stores into a preallocated power-of-two ring; the ring wraps and
// overwrites the oldest events, so tracing never allocates or blocks the datapath either.
//
// Drains export as readable text or as Chrome `trace_event` JSON (load in chrome://tracing or
// https://ui.perfetto.dev). Event types and argument meanings are documented in
// docs/OBSERVABILITY.md.

#ifndef SRC_OBSERVABILITY_TRACE_H_
#define SRC_OBSERVABILITY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/clock.h"

namespace demi {

enum class TraceEventType : uint8_t {
  kQTokenIssued,     // arg1 = queue descriptor, arg2 = qtoken
  kQTokenRedeemed,   // arg1 = queue descriptor, arg2 = qtoken
  kFiberScheduled,   // arg1 = fiber id, arg2 = cumulative runs of that fiber
  kFiberBlocked,     // arg1 = fiber id
  kFiberYielded,     // arg1 = fiber id
  kFiberCompleted,   // arg1 = fiber id
  kPacketTx,         // arg1 = ip protocol, arg2 = L4 bytes
  kPacketRx,         // arg1 = ip protocol, arg2 = L4 bytes
  kRetransmit,       // arg1 = local port, arg2 = sequence number
  kTimerWheelCascade,  // arg1 = destination level, arg2 = remaining ticks to deadline
  kDiskSubmit,       // arg1 = 1 read / 0 write, arg2 = bytes
  kDiskComplete,     // arg1 = 1 read / 0 write, arg2 = cookie
  // Injected faults (src/faults/fault_injector.h; see docs/FAULTS.md).
  kFaultFrameCorrupt,  // arg1 = first flipped bit index, arg2 = frame bytes
  kFaultLinkFlap,      // arg2 = down-window ns
  kFaultPartition,     // arg1 = src MAC (low 32 bits), arg2 = dst MAC
  kFaultDiskError,     // arg1 = 1 read / 0 write, arg2 = cookie
  kFaultDiskDelay,     // arg1 = 1 read / 0 write, arg2 = extra latency ns
  kFaultTornWrite,     // arg1 = bytes that reached the media, arg2 = cookie
  kFaultAllocFail,     // arg2 = requested bytes
  // Tenant isolation decisions (docs/TENANCY.md).
  kTenantMemDeny,      // arg1 = tenant id, arg2 = requested bytes
  kTenantAcceptShed,   // arg1 = tenant id, arg2 = listener queue descriptor
  kTenantOpShed,       // arg1 = tenant id, arg2 = inflight qtokens at the watermark
  kTenantTxThrottle,   // arg1 = tenant id, arg2 = frame bytes queued behind the bucket
  kFaultTenantDrop,    // arg1 = tenant id, arg2 = frame bytes
  // Zero-copy network×storage splice (docs/STORAGE.md).
  kSpliceStart,        // arg1 = source queue descriptor, arg2 = destination queue descriptor
  kSpliceBatch,        // arg1 = slices in the batch, arg2 = payload bytes
  kSpliceDone,         // arg1 = 0 ok / 1 error, arg2 = total payload bytes moved
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  TimeNs ts = 0;
  TraceEventType type = TraceEventType::kQTokenIssued;
  uint32_t arg1 = 0;
  uint64_t arg2 = 0;
};

class Tracer {
 public:
  explicit Tracer(Clock& clock) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Allocates the ring (capacity rounded up to a power of two, min 8) and starts recording.
  void Enable(size_t capacity);
  // Stops recording and releases the ring.
  void Disable();
  // Stops recording but keeps captured events for draining/export.
  void Pause() { enabled_ = false; }
  void Resume();

  bool enabled() const { return enabled_; }

  // The hot-path entry point; safe (and nearly free) to call while disabled.
  void Record(TraceEventType type, uint32_t arg1 = 0, uint64_t arg2 = 0) {
    if (!enabled_) {
      return;
    }
    TraceEvent& e = ring_[head_ & mask_];
    e.ts = clock_.Now();
    e.type = type;
    e.arg1 = arg1;
    e.arg2 = arg2;
    head_++;
  }

  // Events currently held (≤ capacity).
  size_t size() const {
    return head_ < ring_.size() ? static_cast<size_t>(head_) : ring_.size();
  }
  size_t capacity() const { return ring_.size(); }
  // Events recorded since Enable(), including those overwritten by wraparound.
  uint64_t total_recorded() const { return head_; }
  uint64_t dropped() const { return head_ - size(); }

  void Clear() { head_ = 0; }

  // Oldest-first copy of the held events; clears the ring.
  std::vector<TraceEvent> Drain();

  // One line per held event: "+123456ns  fiber_scheduled  arg1=3 arg2=17".
  std::string ExportText() const;
  // Chrome trace_event JSON ("i"-phase instant events, ts in µs relative to the first event).
  std::string ExportChromeJson() const;

 private:
  template <typename Fn>
  void ForEachHeld(Fn&& fn) const {
    const uint64_t first = head_ < ring_.size() ? 0 : head_ - ring_.size();
    for (uint64_t i = first; i < head_; i++) {
      fn(ring_[i & mask_]);
    }
  }

  Clock& clock_;
  std::vector<TraceEvent> ring_;
  uint64_t mask_ = 0;
  uint64_t head_ = 0;
  bool enabled_ = false;
};

}  // namespace demi

#endif  // SRC_OBSERVABILITY_TRACE_H_
