// Shared harness for the paper-reproduction benchmarks (bench/bench_fig*.cc).
//
// Topology helpers build a client+server libOS pair on the simulated fabric and wire them into
// single-thread "duet" mode: the client's wait_* calls pump the server's libOS and application.
// On multi-core testbeds the two sides would busy-poll on their own cores (the paper's setup);
// duet mode gives the same interleaving without kernel-scheduler noise, which matters because
// this harness must also run on single-core machines.
//
// Kernel-path (POSIX) baselines instead use two threads with *blocking* sockets — the kernel
// wakes the peer, which is exactly the cost being measured.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/apps/echo.h"
#include "src/common/histogram.h"
#include "src/liboses/catmint.h"
#include "src/liboses/catnap.h"
#include "src/liboses/catnip.h"

namespace demi {
namespace bench {

constexpr Ipv4Addr kServerIp = Ipv4Addr::FromOctets(10, 0, 0, 1);
constexpr Ipv4Addr kClientIp = Ipv4Addr::FromOctets(10, 0, 0, 2);
constexpr MacAddr kServerMac{0xA1};
constexpr MacAddr kClientMac{0xB2};

// --- libOS pairs (server + client on one fabric, ARP/peering warmed) ---

struct CatnipPair {
  explicit CatnipPair(const LinkConfig& link = LinkConfig{}, SimBlockDevice* server_disk = nullptr,
                      TcpConfig tcp = TcpConfig{},
                      size_t rx_burst_frames = EthernetLayer::kDefaultRxBurst)
      : net(link, 1) {
    Catnip::Config scfg{kServerMac, kServerIp, tcp, server_disk};
    Catnip::Config ccfg{kClientMac, kClientIp, tcp, nullptr};
    scfg.rx_burst_frames = rx_burst_frames;
    ccfg.rx_burst_frames = rx_burst_frames;
    server = std::make_unique<Catnip>(net, scfg, clock);
    client = std::make_unique<Catnip>(net, ccfg, clock);
    server->ethernet().arp().Insert(kClientIp, kClientMac);
    client->ethernet().arp().Insert(kServerIp, kServerMac);
  }

  MonotonicClock clock;
  SimNetwork net;
  std::unique_ptr<Catnip> server;
  std::unique_ptr<Catnip> client;
};

struct CatmintPair {
  explicit CatmintPair(const LinkConfig& link = LinkConfig{},
                       SimBlockDevice* server_disk = nullptr, size_t max_msg = 16 * 1024)
      : net(link, 1) {
    Catmint::Config scfg{kServerMac, kServerIp};
    scfg.disk = server_disk;
    scfg.max_msg_size = max_msg;
    Catmint::Config ccfg{kClientMac, kClientIp};
    ccfg.max_msg_size = max_msg;
    server = std::make_unique<Catmint>(net, scfg, clock);
    client = std::make_unique<Catmint>(net, ccfg, clock);
    server->AddPeer(kClientIp, kClientMac);
    client->AddPeer(kServerIp, kServerMac);
  }

  MonotonicClock clock;
  SimNetwork net;
  std::unique_ptr<Catmint> server;
  std::unique_ptr<Catmint> client;
};

struct CatnapPair {
  CatnapPair() {
    server = std::make_unique<Catnap>(clock);
    client = std::make_unique<Catnap>(clock);
  }
  MonotonicClock clock;
  std::unique_ptr<Catnap> server;
  std::unique_ptr<Catnap> client;
};

inline SocketAddress Loopback(uint16_t port) {
  return {Ipv4Addr::FromOctets(127, 0, 0, 1), port};
}

// Picks unique loopback ports per run so back-to-back bench invocations don't collide with
// sockets lingering in TIME_WAIT.
uint16_t UniquePort();

// --- Duet echo measurement over any libOS pair ---

struct EchoSetup {
  LibOS& server_os;
  LibOS& client_os;
  SocketAddress server_addr;
  SocketType type = SocketType::kStream;
  bool log_to_disk = false;
};

// Runs an EchoServerApp on server_os, wires the duet pump, and measures a closed-loop client.
EchoClientResult DuetEcho(const EchoSetup& setup, size_t message_size, uint64_t iterations);

// Pipelined (windowed) echo for throughput-vs-latency sweeps: keeps `window` messages in
// flight for `ops` round trips.
struct WindowedEchoResult {
  uint64_t completed = 0;
  DurationNs elapsed = 0;
  Histogram latency;
  double OpsPerSec() const {
    return elapsed == 0 ? 0
                        : static_cast<double>(completed) * static_cast<double>(kSecond) /
                              static_cast<double>(elapsed);
  }
};
WindowedEchoResult DuetWindowedEcho(const EchoSetup& setup, size_t message_size, size_t window,
                                    uint64_t ops);

// --- Observability dumps ---

// Prints a libOS's full metrics registry (text export) under a labelled banner.
void DumpMetrics(const char* label, LibOS& os);

// Writes the libOS's tracer contents as Chrome trace_event JSON to `path` and returns the
// number of events written (0 if the tracer is empty or the file can't be opened). Load the
// output at chrome://tracing or ui.perfetto.dev.
size_t ExportTraceJson(LibOS& os, const std::string& path);

// --- Table formatting ---

void PrintHeader(const char* title, const char* paper_note, bool latency_columns = true);
void PrintLatencyRow(const std::string& name, const Histogram& h, const char* note = "");
void PrintThroughputRow(const std::string& name, double value, const char* unit,
                        const char* note = "");

}  // namespace bench
}  // namespace demi

#endif  // BENCH_BENCH_COMMON_H_
