// Ablation benchmarks for the design choices DESIGN.md calls out (beyond those embedded in the
// figure benches: Cubic-vs-fixed in fig8, polling-vs-blockable in micro_scheduler, zero-copy
// threshold in micro_memory):
//   1. NIC checksum offload on/off — what software checksums cost the Catnip TCP echo path.
//   2. Delayed acks — the ack_delay knob's latency/segment-count trade on a closed loop.
//   3. Catmint send-window credits — how small credit windows throttle pipelined messaging.

#include "bench/bench_common.h"

namespace demi {
namespace bench {
namespace {

constexpr uint64_t kIters = 8000;

void ChecksumOffloadAblation() {
  std::printf("\n-- checksum offload (Catnip TCP echo, 1024 B) --\n");
  for (bool offload : {true, false}) {
    MonotonicClock clock;
    SimNetwork net(LinkConfig{}, 1);
    Catnip::Config scfg{kServerMac, kServerIp, TcpConfig{}, nullptr};
    scfg.checksum_offload = offload;
    Catnip::Config ccfg{kClientMac, kClientIp, TcpConfig{}, nullptr};
    ccfg.checksum_offload = offload;
    Catnip server(net, scfg, clock);
    Catnip client(net, ccfg, clock);
    server.ethernet().arp().Insert(kClientIp, kClientMac);
    client.ethernet().arp().Insert(kServerIp, kServerMac);
    auto r = DuetEcho({server, client, {kServerIp, 6001}, SocketType::kStream}, 1024, kIters);
    PrintLatencyRow(offload ? "  offloaded (device)" : "  software checksums", r.rtt,
                    offload ? "DPDK-style TX/RX offload" : "RFC 1071 in software, both sides");
  }
}

void AckDelayAblation() {
  std::printf("\n-- delayed acks (Catnip TCP echo, 64 B closed loop) --\n");
  for (DurationNs delay : {DurationNs{0}, 5 * kMicrosecond, 50 * kMicrosecond}) {
    TcpConfig tcp;
    tcp.ack_delay = delay;
    CatnipPair pair(LinkConfig{}, nullptr, tcp);
    auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 6002}, SocketType::kStream}, 64,
                      kIters / 2);
    char name[48];
    std::snprintf(name, sizeof(name), "  ack_delay=%lluus",
                  static_cast<unsigned long long>(delay / kMicrosecond));
    PrintLatencyRow(name, r.rtt,
                    delay == 0 ? "ack on next scheduler round" : "coalesces acks, adds latency");
  }
}

void CatmintCreditAblation() {
  std::printf("\n-- Catmint send-window credits (64 B, window-16 pipelined) --\n");
  for (size_t credits : {size_t{2}, size_t{8}, size_t{64}}) {
    MonotonicClock clock;
    SimNetwork net(LinkConfig{}, 1);
    Catmint::Config scfg{kServerMac, kServerIp};
    Catmint::Config ccfg{kClientMac, kClientIp};
    scfg.send_window_msgs = credits;
    ccfg.send_window_msgs = credits;
    Catmint server(net, scfg, clock);
    Catmint client(net, ccfg, clock);
    server.AddPeer(kClientIp, kClientMac);
    client.AddPeer(kServerIp, kServerMac);
    auto r = DuetWindowedEcho({server, client, {kServerIp, 6003}}, 64, 16, kIters);
    char name[48];
    std::snprintf(name, sizeof(name), "  credits=%zu", credits);
    PrintThroughputRow(name, r.OpsPerSec() / 1e3, "kops/s",
                       credits < 16 ? "credit-bound: sender blocks on window updates"
                                    : "credit-rich: pipeline runs free");
  }
}

}  // namespace

void Main() {
  PrintHeader("Ablations: checksum offload, delayed acks, Catmint credits",
              "design-choice costs the paper discusses but does not plot");
  ChecksumOffloadAblation();
  AckDelayAblation();
  CatmintCreditAblation();
}

}  // namespace bench
}  // namespace demi

int main() {
  demi::bench::Main();
  return 0;
}
