#include "src/common/logging.h"

#include <atomic>

namespace demi {

namespace {
// demilint: atomic(process-wide verbosity knob: a plain int flag with no data published
// through it — a logger that observes the old level for a few more calls is harmless)
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};
}  // namespace

// demilint: atomic(see g_log_level — flag read, staleness acceptable)
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  // demilint: atomic(see g_log_level — flag write, no ordering with other state)
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace demi
