#include "src/netsim/sim_network.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/faults/fault_injector.h"

namespace demi {

SimNetwork::SimNetwork(const LinkConfig& link, uint64_t seed) : link_(link), rng_(seed) {}
SimNetwork::~SimNetwork() = default;

SimNetwork::Port* SimNetwork::CreatePort(MacAddr mac) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = ports_.try_emplace(mac.value, std::make_unique<Port>(mac));
  if (!inserted) {
    return nullptr;
  }
  return it->second.get();
}

void SimNetwork::Deliver(MacAddr src, MacAddr dst, WireFrame frame, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.frames_sent++;
  if (pcap_ != nullptr) {
    pcap_->WriteFrame(frame, now);
  }

  // Sender-side serialization delay: the frame occupies the source's line for bytes/line-rate.
  TimeNs depart = now;
  auto src_it = ports_.find(src.value);
  if (src_it != ports_.end() && link_.bandwidth_bps != 0) {
    const DurationNs serialize =
        static_cast<DurationNs>(frame.size()) * 8ULL * kSecond / link_.bandwidth_bps;
    Port* sp = src_it->second.get();
    sp->next_tx_free = std::max<TimeNs>(sp->next_tx_free, now) + serialize;
    depart = sp->next_tx_free;
  }

  if (rng_.NextBool(link_.loss)) {
    stats_.frames_dropped_loss++;
    return;
  }

  // Injected faults, after the stochastic link model so existing seeds are undisturbed when no
  // injector is attached: flap/partition windows swallow the frame, corruption flips bits and
  // delivers it anyway (the stacks' checksums must catch it).
  if (faults_ != nullptr) {
    if (faults_->NetShouldDrop(src, dst, now)) {
      stats_.frames_dropped_fault++;
      return;
    }
    if (faults_->NetMaybeCorrupt(frame)) {
      stats_.frames_corrupted++;
    }
  }

  TimeNs deliver_at = depart + link_.latency + link_.per_frame_overhead;
  if (link_.reorder > 0 && rng_.NextBool(link_.reorder)) {
    deliver_at += link_.reorder_extra;
    stats_.frames_reordered++;
  }

  const bool duplicate = link_.duplicate > 0 && rng_.NextBool(link_.duplicate);

  if (dst.IsBroadcast()) {
    for (auto& [mac_value, port] : ports_) {
      if (mac_value == src.value) {
        continue;
      }
      DeliverToPort(port.get(), frame, deliver_at);  // copies: each port needs its own
    }
    return;
  }

  auto it = ports_.find(dst.value);
  if (it == ports_.end()) {
    return;  // no such host: frame vanishes, like a real switch with no matching port
  }
  if (duplicate) {
    stats_.frames_duplicated++;
    DeliverToPort(it->second.get(), frame, deliver_at + 1);
  }
  DeliverToPort(it->second.get(), std::move(frame), deliver_at);
}

void SimNetwork::DeliverToPort(Port* port, WireFrame frame, TimeNs deliver_at) {
  std::lock_guard<std::mutex> lock(port->mu_);
  if (port->inbound_.size() >= link_.rx_queue_frames) {
    stats_.frames_dropped_queue++;
    return;
  }
  port->inbound_.push(PendingFrame{deliver_at, next_seq_++, std::move(frame)});
}

SimNetwork::Stats SimNetwork::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

bool SimNetwork::EnablePcap(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto writer = std::make_unique<PcapWriter>(path);
  if (!writer->ok()) {
    return false;
  }
  pcap_ = std::move(writer);
  return true;
}

void SimNetwork::DisablePcap() {
  std::lock_guard<std::mutex> lock(mu_);
  pcap_.reset();
}

uint64_t SimNetwork::PcapFramesWritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pcap_ == nullptr ? 0 : pcap_->frames_written();
}

TimeNs SimNetwork::NextDeliveryTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  TimeNs earliest = 0;
  for (const auto& [mac, port] : ports_) {
    std::lock_guard<std::mutex> port_lock(port->mu_);
    if (!port->inbound_.empty()) {
      const TimeNs t = port->inbound_.top().deliver_at;
      if (earliest == 0 || t < earliest) {
        earliest = t;
      }
    }
  }
  return earliest;
}

size_t SimNetwork::Port::Poll(std::span<WireFrame> out, TimeNs now) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  while (n < out.size() && !inbound_.empty() && inbound_.top().deliver_at <= now) {
    out[n++] = std::move(const_cast<PendingFrame&>(inbound_.top()).data);
    inbound_.pop();
  }
  return n;
}

bool SimNetwork::Port::HasDeliverable(TimeNs now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return !inbound_.empty() && inbound_.top().deliver_at <= now;
}

SimNic::SimNic(SimNetwork& network, MacAddr mac, Clock& clock)
    : network_(network), mac_(mac), clock_(clock) {
  port_ = network.CreatePort(mac);
  DEMI_CHECK_MSG(port_ != nullptr, "MAC %s already attached", mac.ToString().c_str());
}

size_t SimNic::RxBurst(std::span<WireFrame> out) {
  const size_t n = port_->Poll(out, clock_.Now());
  stats_.rx_frames += n;
  for (size_t i = 0; i < n; i++) {
    stats_.rx_bytes += out[i].size();
  }
  return n;
}

Status SimNic::TxBurst(MacAddr dst, std::span<const std::span<const uint8_t>> segments) {
  size_t total = 0;
  for (const auto& seg : segments) {
    total += seg.size();
  }
  if (total > mtu()) {
    stats_.tx_oversize++;
    return Status::kMessageTooLong;
  }
  WireFrame frame;
  frame.reserve(total);
  for (const auto& seg : segments) {
    // The DMA discipline: large (zero-copy) segments must come from device-registered memory,
    // as a real kernel-bypass NIC can only DMA from pinned, IOMMU-mapped pages.
    if (seg.size() >= 1024) {
      DEMI_CHECK_MSG(registrar_.Covers(seg.data(), seg.size()),
                     "zero-copy TX segment not in DMA-registered memory");
    }
    frame.insert(frame.end(), seg.begin(), seg.end());
  }
  stats_.tx_frames++;
  stats_.tx_bytes += frame.size();
  network_.Deliver(mac_, dst, std::move(frame), clock_.Now());
  return Status::kOk;
}

}  // namespace demi
