// PDPIX datapath types: queue descriptors, queue tokens, scatter-gather arrays, completion
// results (paper §4.2, Figure 2).

#ifndef SRC_CORE_TYPES_H_
#define SRC_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>

#include "src/common/status.h"
#include "src/net/address.h"

namespace demi {

// Queue descriptor: PDPIX's replacement for POSIX file descriptors.
using QueueDesc = int;
constexpr QueueDesc kInvalidQd = -1;

// Queue token: the asynchronous handle returned by push/pop/accept/connect, redeemed via
// wait/wait_any/wait_all.
using QToken = uint64_t;
constexpr QToken kInvalidQToken = 0;

// Tenant identifier: the isolation domain a queue (and every Buffer/qtoken/TX frame it
// produces) is charged to. Tenant 0 is the default/control domain — untagged memory, ARP,
// RSTs — and is exempt from budgets, rate limiting, and shedding (docs/TENANCY.md).
using TenantId = uint16_t;
constexpr TenantId kDefaultTenant = 0;

enum class SocketType : uint8_t { kStream, kDatagram };

// Scatter-gather array. PDPIX I/O submits complete operations as pointer arrays so the libOS
// can issue them zero-copy without intermediate buffering.
constexpr size_t kSgaMaxSegments = 4;

struct SgaSegment {
  void* buf = nullptr;
  uint32_t len = 0;
};

struct Sgarray {
  uint32_t num_segs = 0;
  SgaSegment segs[kSgaMaxSegments] = {};

  static Sgarray Of(void* buf, uint32_t len) {
    Sgarray sga;
    sga.num_segs = 1;
    sga.segs[0] = {buf, len};
    return sga;
  }

  size_t TotalBytes() const {
    size_t total = 0;
    for (uint32_t i = 0; i < num_segs; i++) {
      total += segs[i].len;
    }
    return total;
  }
};

enum class OpCode : uint8_t { kInvalid, kPush, kPop, kAccept, kConnect, kSplice };

// Completion record returned by wait_*; the qevent of the PDPIX API.
struct QResult {
  OpCode opcode = OpCode::kInvalid;
  QueueDesc qd = kInvalidQd;
  Status status = Status::kOk;
  // pop: received data. Buffers are allocated from the DMA-capable heap and OWNED BY THE
  // APPLICATION on return (free with DmaFree / demi::free).
  Sgarray sga;
  // pop on UDP sockets: datagram source. accept: peer address.
  SocketAddress remote;
  // accept: descriptor of the new connection queue.
  QueueDesc new_qd = kInvalidQd;
  // splice: total payload bytes moved end to end before the op completed.
  uint64_t bytes = 0;
};

}  // namespace demi

#endif  // SRC_CORE_TYPES_H_
