file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_udp_relay.dir/bench_fig10_udp_relay.cc.o"
  "CMakeFiles/bench_fig10_udp_relay.dir/bench_fig10_udp_relay.cc.o.d"
  "bench_fig10_udp_relay"
  "bench_fig10_udp_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_udp_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
