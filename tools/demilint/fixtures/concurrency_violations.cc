// Seeded violations for the demilint concurrency rules: shard-local, shared-state,
// atomic-justify, lock-in-fastpath. Every marked line must be flagged with exactly the
// named rule, and every unmarked line must stay clean — the selftest fails on both a
// miss and an extra. This file is never compiled; it only has to look like datapath code
// (the selftest lints it as src/fixtures/concurrency_violations.cc, which counts as a
// datapath path so shared-state is exercised).
#include "src/common/status.h"

#include <atomic>
#include <cstdint>
#include <mutex>

namespace demi {

// The trailing annotation registers `ConnCache` repo-wide as owned by one shard thread.
class ConnCache {  // demilint: shard-local
 public:
  int Lookup(int k) const { return k; }
};

// --- shared-state: mutable statics in a datapath file --------------------------------
static int g_reassembly_drops = 0;         // demilint-expect: shared-state
static const int kTableSize = 128;         // const: immutable, fine
static thread_local int t_scratch = 0;     // per-thread: fine
// demilint: allow(shared-state) simulation-wide fault epoch, mutated only under DeviceMutex
static int g_fault_epoch = 0;

inline int NextConnId() {
  static int next = 0;                     // demilint-expect: shared-state
  return ++next;
}

// --- shard-local: control-plane and cross-shard escapes ------------------------------
class WorkerPool {
 public:
  // demilint: control-plane
  int Aggregate() {
    ConnCache scratch;                     // demilint-expect: shard-local
    return scratch.Lookup(0) + kTableSize + g_fault_epoch;
  }
  // demilint: end-control-plane

  // demilint: worker-context
  int Steal(int shard_id, int victim) {
    int own = shards_[shard_id].Lookup(1);  // a worker's own slot: fine
    return own + shards_[victim].Lookup(1);  // demilint-expect: shard-local
  }
  // demilint: end-worker-context

 private:
  ConnCache shards_[4];
};

// --- atomic-justify: every owning atomic decl / explicit ordering names its invariant --
class Epoch {
 public:
  uint64_t Advance() {
    return value_.fetch_add(1, std::memory_order_relaxed);  // demilint-expect: atomic-justify
  }
  uint64_t Read() const {
    // demilint: atomic(single-writer counter; readers only need eventual visibility)
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> value_{0};         // demilint-expect: atomic-justify
  // demilint: atomic(monotonic stats mirror; no ordering with other state required)
  std::atomic<uint64_t> justified_{0};
};

// --- lock-in-fastpath: mutex acquisition on the poll loop ----------------------------
class RxPath {
 public:
  // demilint: fastpath
  int Poll() {
    std::lock_guard<std::mutex> g(mu_);    // demilint-expect: lock-in-fastpath
    return budget_;
  }
  // demilint: end-fastpath

  int ControlReset() {
    std::lock_guard<std::mutex> g(mu_);    // off the fast path: fine
    budget_ = 42;
    return budget_;
  }

 private:
  std::mutex mu_;
  int budget_ = 42;
  int use_[3] = {g_reassembly_drops, t_scratch, NextConnId()};
};

}  // namespace demi
