// Advanced TCP state-machine and feature tests: close choreography in every order, RFC 7323
// timestamps (negotiation, RTTM, PAWS), zero-window persistence, congestion-algorithm
// configuration, listener lifecycle, window scaling with large windows, and pcap capture.
//
// All tests run two full stacks in deterministic stepped mode on a shared VirtualClock.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/clock.h"
#include "src/net/tcp/tcp.h"
#include "src/netsim/sim_network.h"

namespace demi {
namespace {

struct Host {
  Host(SimNetwork& net, VirtualClock& clock, MacAddr mac, Ipv4Addr ip, TcpConfig cfg)
      : nic(net, mac, clock),
        alloc(nic.registrar()),
        sched(clock),
        eth(nic, ip),
        tcp(eth, sched, alloc, clock, cfg) {}

  SimNic nic;
  PoolAllocator alloc;
  Scheduler sched;
  EthernetLayer eth;
  TcpStack tcp;
};

class TcpAdvancedTest : public ::testing::Test {
 protected:
  explicit TcpAdvancedTest(LinkConfig link = LinkConfig{}, TcpConfig a_cfg = TcpConfig{},
                           TcpConfig b_cfg = TcpConfig{})
      : net_(link, 11),
        a_(net_, clock_, MacAddr{0xA}, Ipv4Addr::FromOctets(10, 1, 1, 1), a_cfg),
        b_(net_, clock_, MacAddr{0xB}, Ipv4Addr::FromOctets(10, 1, 1, 2), b_cfg) {
    a_.eth.arp().Insert(b_.eth.local_ip(), MacAddr{0xB});
    b_.eth.arp().Insert(a_.eth.local_ip(), MacAddr{0xA});
  }

  void Step() {
    const size_t activity =
        a_.eth.PollOnce() + b_.eth.PollOnce() + a_.sched.Poll() + b_.sched.Poll();
    if (activity > 0) {
      return;
    }
    TimeNs next = 0;
    for (TimeNs t : {net_.NextDeliveryTime(), a_.sched.NextTimerDeadline(),
                     b_.sched.NextTimerDeadline()}) {
      if (t != 0 && (next == 0 || t < next)) {
        next = t;
      }
    }
    if (next > clock_.Now()) {
      clock_.SetTime(next);
    } else {
      clock_.Advance(kMicrosecond);
    }
  }

  template <typename Pred>
  bool RunUntil(Pred&& pred, int max_steps = 200000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) {
        return true;
      }
      Step();
    }
    return pred();
  }

  std::pair<std::shared_ptr<TcpConnection>, std::shared_ptr<TcpConnection>> EstablishPair(
      uint16_t port = 9999) {
    auto listener = b_.tcp.Listen(port, 16);
    EXPECT_TRUE(listener.ok());
    auto client = a_.tcp.Connect(SocketAddress{b_.eth.local_ip(), port});
    EXPECT_TRUE(client.ok());
    EXPECT_TRUE(RunUntil([&] {
      return (*client)->state() == TcpState::kEstablished && (*listener)->HasPending();
    }));
    return {*client, (*listener)->Accept()};
  }

  void PushString(Host& host, const std::shared_ptr<TcpConnection>& conn,
                  const std::string& data) {
    void* app = host.alloc.Alloc(data.size());
    std::memcpy(app, data.data(), data.size());
    ASSERT_EQ(conn->Push(Buffer::FromApp(host.alloc, app, data.size())), Status::kOk);
    host.alloc.Free(app);
  }

  std::string DrainString(const std::shared_ptr<TcpConnection>& conn, size_t expect) {
    std::string out;
    RunUntil([&] {
      while (auto c = conn->PopData()) {
        out.append(reinterpret_cast<const char*>(c->data()), c->size());
      }
      return out.size() >= expect;
    });
    return out;
  }

  VirtualClock clock_;
  SimNetwork net_;
  Host a_;
  Host b_;
};

// --- Close choreography ---

TEST_F(TcpAdvancedTest, SimultaneousCloseReachesClosedOnBothSides) {
  auto [client, server] = EstablishPair();
  // Both FIN before either sees the other's: FIN_WAIT_1 -> CLOSING -> TIME_WAIT on both ends.
  ASSERT_EQ(client->Close(), Status::kOk);
  ASSERT_EQ(server->Close(), Status::kOk);
  ASSERT_TRUE(RunUntil([&] {
    return client->state() == TcpState::kClosed && server->state() == TcpState::kClosed;
  }));
  EXPECT_EQ(client->error(), Status::kOk);
  EXPECT_EQ(server->error(), Status::kOk);
}

TEST_F(TcpAdvancedTest, HalfCloseStillDeliversCounterDirection) {
  auto [client, server] = EstablishPair();
  ASSERT_EQ(client->Close(), Status::kOk);  // client -> server direction done
  ASSERT_TRUE(RunUntil([&] { return server->EndOfStream(); }));
  // Server can still send to the half-closed client (CLOSE_WAIT -> data flows).
  PushString(b_, server, "late data after your FIN");
  EXPECT_EQ(DrainString(client, 24), "late data after your FIN");
  ASSERT_EQ(server->Close(), Status::kOk);
  ASSERT_TRUE(RunUntil([&] { return server->state() == TcpState::kClosed; }));
}

TEST_F(TcpAdvancedTest, FinWait2ThenTimeWaitExpires) {
  auto [client, server] = EstablishPair();
  ASSERT_EQ(client->Close(), Status::kOk);
  // Server acks the FIN but doesn't close yet: client parks in FIN_WAIT_2.
  ASSERT_TRUE(RunUntil([&] { return client->state() == TcpState::kFinWait2; }));
  ASSERT_EQ(server->Close(), Status::kOk);
  ASSERT_TRUE(RunUntil([&] { return client->state() == TcpState::kClosed; }, 400000));
  EXPECT_EQ(client->error(), Status::kOk);
}

TEST_F(TcpAdvancedTest, CloseDuringSynSentAbortsQuietly) {
  auto client = a_.tcp.Connect(SocketAddress{b_.eth.local_ip(), 4444});  // nothing listens
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*client)->Close(), Status::kOk);
  EXPECT_EQ((*client)->state(), TcpState::kClosed);
}

TEST_F(TcpAdvancedTest, ListenerClosePreventsNewConnections) {
  auto listener = b_.tcp.Listen(1234, 4);
  ASSERT_TRUE(listener.ok());
  b_.tcp.CloseListener(*listener);
  auto client = a_.tcp.Connect(SocketAddress{b_.eth.local_ip(), 1234});
  ASSERT_TRUE(RunUntil([&] { return (*client)->state() == TcpState::kClosed; }));
  EXPECT_EQ((*client)->error(), Status::kConnectionRefused);
}

TEST_F(TcpAdvancedTest, PortReusableAfterListenerClose) {
  auto l1 = b_.tcp.Listen(1500, 4);
  ASSERT_TRUE(l1.ok());
  b_.tcp.CloseListener(*l1);
  auto l2 = b_.tcp.Listen(1500, 4);
  ASSERT_TRUE(l2.ok());
  auto client = a_.tcp.Connect(SocketAddress{b_.eth.local_ip(), 1500});
  ASSERT_TRUE(RunUntil([&] { return (*l2)->HasPending(); }));
}

// --- RFC 7323 timestamps ---

TEST_F(TcpAdvancedTest, TimestampsNegotiatedByDefault) {
  auto [client, server] = EstablishPair();
  EXPECT_TRUE(client->timestamps_enabled());
  EXPECT_TRUE(server->timestamps_enabled());
}

TEST_F(TcpAdvancedTest, TimestampRttSamplesAccumulate) {
  auto [client, server] = EstablishPair();
  std::string data(64 * 1024, 't');
  PushString(a_, client, data);
  EXPECT_EQ(DrainString(server, data.size()).size(), data.size());
  EXPECT_GT(client->conn_stats().ts_rtt_samples, 10u);
}

class TcpNoTimestampsTest : public TcpAdvancedTest {
 protected:
  static TcpConfig NoTs() {
    TcpConfig cfg;
    cfg.timestamps = false;
    return cfg;
  }
  TcpNoTimestampsTest() : TcpAdvancedTest(LinkConfig{}, NoTs(), NoTs()) {}
};

TEST_F(TcpNoTimestampsTest, DisabledWhenNotOffered) {
  auto [client, server] = EstablishPair();
  EXPECT_FALSE(client->timestamps_enabled());
  EXPECT_FALSE(server->timestamps_enabled());
  std::string data(32 * 1024, 'n');
  PushString(a_, client, data);
  EXPECT_EQ(DrainString(server, data.size()), data);
  EXPECT_EQ(client->conn_stats().ts_rtt_samples, 0u);
}

class TcpMixedTimestampsTest : public TcpAdvancedTest {
 protected:
  static TcpConfig NoTs() {
    TcpConfig cfg;
    cfg.timestamps = false;
    return cfg;
  }
  TcpMixedTimestampsTest() : TcpAdvancedTest(LinkConfig{}, TcpConfig{}, NoTs()) {}
};

TEST_F(TcpMixedTimestampsTest, FallsBackWhenPeerDeclines) {
  // Client offers timestamps; server is configured without them: both must run plain.
  auto [client, server] = EstablishPair();
  EXPECT_FALSE(server->timestamps_enabled());
  std::string data(16 * 1024, 'm');
  PushString(a_, client, data);
  EXPECT_EQ(DrainString(server, data.size()), data);
}

class TcpReorderPawsTest : public TcpAdvancedTest {
 protected:
  TcpReorderPawsTest()
      : TcpAdvancedTest(LinkConfig{.reorder = 0.3, .reorder_extra = 200 * kMicrosecond}) {}
};

TEST_F(TcpReorderPawsTest, HeavyReorderingStillDeliversWithTimestamps) {
  auto [client, server] = EstablishPair();
  std::string data(64 * 1024, 0);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(i % 253);
  }
  PushString(a_, client, data);
  EXPECT_EQ(DrainString(server, data.size()), data);
  // PAWS may reject late (reordered) segments; the stream must recover regardless.
  EXPECT_GE(server->conn_stats().paws_drops + server->conn_stats().out_of_order, 1u);
}

// --- Flow control ---

class TcpTinyWindowTest : public TcpAdvancedTest {
 protected:
  static TcpConfig Tiny() {
    TcpConfig cfg;
    cfg.recv_buffer_bytes = 4096;  // tiny receive buffer forces zero-window episodes
    cfg.window_scale = 0;
    return cfg;
  }
  TcpTinyWindowTest() : TcpAdvancedTest(LinkConfig{}, Tiny(), Tiny()) {}
};

TEST_F(TcpTinyWindowTest, ZeroWindowStallsAndRecovers) {
  auto [client, server] = EstablishPair();
  std::string data(64 * 1024, 0);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(i * 7);
  }
  PushString(a_, client, data);
  // Let the sender fill the 4 kB window without the app draining: it must stall, not overrun.
  RunUntil([&] { return false; }, 5000);
  size_t buffered = 0;
  std::string out;
  // Now drain slowly: every drained chunk reopens the window and more data flows.
  ASSERT_TRUE(RunUntil(
      [&] {
        while (auto c = server->PopData()) {
          out.append(reinterpret_cast<const char*>(c->data()), c->size());
        }
        return out.size() >= data.size();
      },
      500000));
  EXPECT_EQ(out, data);
  (void)buffered;
}

// --- Congestion configuration ---

class TcpNewRenoTest : public TcpAdvancedTest {
 protected:
  static TcpConfig Reno() {
    TcpConfig cfg;
    cfg.congestion = CongestionAlgorithm::kNewReno;
    return cfg;
  }
  TcpNewRenoTest() : TcpAdvancedTest(LinkConfig{.loss = 0.03}, Reno(), Reno()) {}
};

TEST_F(TcpNewRenoTest, LossyTransferUnderNewReno) {
  auto [client, server] = EstablishPair();
  std::string data(64 * 1024, 0);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(255 - i % 251);
  }
  PushString(a_, client, data);
  EXPECT_EQ(DrainString(server, data.size()), data);
}

TEST_F(TcpAdvancedTest, LargeWindowScalingMovesMoreThan64K) {
  // With wscale=7 the advertised window exceeds the unscaled 64 kB cap; a 512 kB burst must
  // stream without the sender throttling to 64 kB-per-RTT.
  auto [client, server] = EstablishPair();
  std::string data(512 * 1024, 0);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(i % 127);
  }
  PushString(a_, client, data);
  EXPECT_EQ(DrainString(server, data.size()), data);
  EXPECT_GT(client->cwnd(), 64u * 1024u);  // Cubic grew past the unscaled window cap
}

// --- MSS negotiation with a smaller MTU peer ---

TEST(TcpMtuTest, MssClampsToSmallerMtu) {
  VirtualClock clock;
  SimNetwork net(LinkConfig{.mtu = 600}, 2);
  TcpConfig cfg;
  Host a(net, clock, MacAddr{0x1}, Ipv4Addr::FromOctets(10, 2, 0, 1), cfg);
  Host b(net, clock, MacAddr{0x2}, Ipv4Addr::FromOctets(10, 2, 0, 2), cfg);
  a.eth.arp().Insert(b.eth.local_ip(), MacAddr{0x2});
  b.eth.arp().Insert(a.eth.local_ip(), MacAddr{0x1});
  auto step = [&] {
    if (a.eth.PollOnce() + b.eth.PollOnce() + a.sched.Poll() + b.sched.Poll() == 0) {
      clock.Advance(kMicrosecond);
    }
  };
  auto listener = b.tcp.Listen(80, 4);
  auto client = a.tcp.Connect(SocketAddress{b.eth.local_ip(), 80});
  for (int i = 0; i < 100000 && !(*listener)->HasPending(); i++) {
    step();
  }
  ASSERT_TRUE((*listener)->HasPending());
  auto server = (*listener)->Accept();

  std::string data(8000, 'q');
  void* app = a.alloc.Alloc(data.size());
  std::memcpy(app, data.data(), data.size());
  ASSERT_EQ((*client)->Push(Buffer::FromApp(a.alloc, app, data.size())), Status::kOk);
  a.alloc.Free(app);
  std::string out;
  for (int i = 0; i < 200000 && out.size() < data.size(); i++) {
    step();
    while (auto c = server->PopData()) {
      out.append(reinterpret_cast<const char*>(c->data()), c->size());
    }
  }
  EXPECT_EQ(out, data);  // every segment fit the 600 B MTU or the NIC would have rejected it
  EXPECT_EQ(net.GetStats().frames_sent, a.nic.stats().tx_frames + b.nic.stats().tx_frames);
}

// --- Retransmission limits ---

TEST(TcpDeadPeerTest, RetransmitLimitAbortsTheConnection) {
  VirtualClock clock;
  SimNetwork net(LinkConfig{}, 3);
  TcpConfig cfg;
  cfg.max_retransmits = 4;
  Host a(net, clock, MacAddr{0x1}, Ipv4Addr::FromOctets(10, 3, 0, 1), cfg);
  Host b(net, clock, MacAddr{0x2}, Ipv4Addr::FromOctets(10, 3, 0, 2), cfg);
  a.eth.arp().Insert(b.eth.local_ip(), MacAddr{0x2});
  b.eth.arp().Insert(a.eth.local_ip(), MacAddr{0x1});
  auto step = [&](bool pump_b) {
    size_t n = a.eth.PollOnce() + a.sched.Poll();
    if (pump_b) {
      n += b.eth.PollOnce() + b.sched.Poll();
    }
    if (n == 0) {
      const TimeNs next = a.sched.NextTimerDeadline();
      if (next > clock.Now()) {
        clock.SetTime(next);
      } else {
        clock.Advance(kMicrosecond);
      }
    }
  };
  auto listener = b.tcp.Listen(80, 4);
  auto client = a.tcp.Connect(SocketAddress{b.eth.local_ip(), 80});
  for (int i = 0; i < 100000 && (*client)->state() != TcpState::kEstablished; i++) {
    step(true);
  }
  ASSERT_EQ((*client)->state(), TcpState::kEstablished);

  // The peer "dies": stop pumping b entirely; a's data drains into the void.
  void* app = a.alloc.Alloc(2048);
  std::memset(app, 1, 2048);
  ASSERT_EQ((*client)->Push(Buffer::FromApp(a.alloc, app, 2048)), Status::kOk);
  a.alloc.Free(app);
  for (int i = 0; i < 400000 && (*client)->state() != TcpState::kClosed; i++) {
    step(false);
  }
  EXPECT_EQ((*client)->state(), TcpState::kClosed);
  // Established-connection give-up surfaces as an abort, not a connect timeout.
  EXPECT_EQ((*client)->error(), Status::kConnectionAborted);
  EXPECT_GE((*client)->conn_stats().retransmits, 4u);
}

// --- pcap capture ---

TEST_F(TcpAdvancedTest, PcapCapturesHandshakeAndData) {
  char path[] = "/tmp/demi_pcap_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);
  ASSERT_TRUE(net_.EnablePcap(path));

  auto [client, server] = EstablishPair(4321);
  PushString(a_, client, "captured!");
  DrainString(server, 9);
  const uint64_t frames = net_.PcapFramesWritten();
  EXPECT_GE(frames, 4u);  // SYN, SYN-ACK, ACK, data, ack...
  net_.DisablePcap();

  // Validate the file: global header magic + at least `frames` records.
  FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr);
  uint32_t magic = 0;
  ASSERT_EQ(std::fread(&magic, 4, 1, f), 1u);
  EXPECT_EQ(magic, 0xA1B2C3D4u);
  std::fseek(f, 24, SEEK_SET);  // skip global header
  uint64_t records = 0;
  for (;;) {
    uint32_t rec[4];
    if (std::fread(rec, sizeof(rec), 1, f) != 1) {
      break;
    }
    std::fseek(f, rec[2], SEEK_CUR);  // skip frame bytes (incl_len)
    records++;
  }
  std::fclose(f);
  EXPECT_EQ(records, frames);
  ::unlink(path);
}

// --- Stack-level stats and RST behaviour ---

TEST_F(TcpAdvancedTest, StrayeSegmentToClosedPortGetsRst) {
  auto [client, server] = EstablishPair(2500);
  // Reach into the stack: connect to a port that never listened; the RST must come back fast
  // (no RTO wait).
  const uint64_t rsts_before = b_.tcp.stats().rst_sent;
  auto c2 = a_.tcp.Connect(SocketAddress{b_.eth.local_ip(), 2501});
  ASSERT_TRUE(RunUntil([&] { return (*c2)->state() == TcpState::kClosed; }, 20000));
  EXPECT_EQ(b_.tcp.stats().rst_sent, rsts_before + 1);
}

TEST_F(TcpAdvancedTest, ConnectionCountsAndReap) {
  auto [client, server] = EstablishPair(2600);
  EXPECT_EQ(a_.tcp.NumConnections(), 1u);
  EXPECT_EQ(b_.tcp.NumConnections(), 1u);
  ASSERT_EQ(client->Close(), Status::kOk);
  ASSERT_EQ(server->Close(), Status::kOk);
  ASSERT_TRUE(RunUntil([&] {
    return client->state() == TcpState::kClosed && server->state() == TcpState::kClosed;
  }));
  client->ReleaseByApp();
  server->ReleaseByApp();
  a_.tcp.Reap();
  b_.tcp.Reap();
  EXPECT_EQ(a_.tcp.NumConnections(), 0u);
  EXPECT_EQ(b_.tcp.NumConnections(), 0u);
  EXPECT_EQ(a_.tcp.stats().conns_reaped, 1u);
}

}  // namespace
}  // namespace demi
