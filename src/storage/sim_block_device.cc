#include "src/storage/sim_block_device.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/faults/fault_injector.h"
#include "src/observability/metrics.h"
#include "src/observability/trace.h"

namespace demi {

SimBlockDevice::SimBlockDevice(const Config& config, Clock& clock)
    : config_(config), clock_(clock), media_(config.block_size * config.num_blocks, 0),
      ready_(1) {}

void SimBlockDevice::ConfigureQueues(size_t num_queues) {
  std::lock_guard<std::mutex> lock(mu_);
  DEMI_CHECK_MSG(pending_.empty(), "ConfigureQueues with I/O in flight");
  for (const auto& q : ready_) {
    DEMI_CHECK_MSG(q.empty(), "ConfigureQueues with undrained completions");
  }
  ready_.assign(std::max<size_t>(num_queues, 1), {});
}

size_t SimBlockDevice::num_queues() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_.size();
}

SimBlockDevice::Stats SimBlockDevice::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SimBlockDevice::SetTracer(Tracer* tracer) {
  std::lock_guard<std::mutex> lock(mu_);
  tracer_ = tracer;
}

void SimBlockDevice::SetFaultInjector(FaultInjector* faults) {
  std::lock_guard<std::mutex> lock(mu_);
  faults_ = faults;
}

void SimBlockDevice::RegisterMetrics(MetricsRegistry& registry) {
  registry.RegisterCallback("blockdev.reads", "blockdev", "ops", "Read operations submitted",
                            [this] { return GetStats().reads; });
  registry.RegisterCallback("blockdev.writes", "blockdev", "ops", "Write operations submitted",
                            [this] { return GetStats().writes; });
  registry.RegisterCallback("blockdev.bytes_read", "blockdev", "bytes", "Bytes read",
                            [this] { return GetStats().bytes_read; });
  registry.RegisterCallback("blockdev.bytes_written", "blockdev", "bytes", "Bytes written",
                            [this] { return GetStats().bytes_written; });
  registry.RegisterCallback("blockdev.queue_full_rejections", "blockdev", "ops",
                            "Submissions rejected because the queue was full",
                            [this] { return GetStats().queue_full_rejections; });
  registry.RegisterCallback("blockdev.pending", "blockdev", "ops",
                            "Operations submitted and not yet completed", [this] {
                              std::lock_guard<std::mutex> lock(mu_);
                              return pending_.size();
                            });
  registry.RegisterCallback("blockdev.io_errors", "blockdev", "ops",
                            "Completions delivered with an error status",
                            [this] { return GetStats().io_errors; });
}

TimeNs SimBlockDevice::CompletionTimeFor(size_t bytes, bool is_read) {
  const TimeNs now = clock_.Now();
  DurationNs transfer = 0;
  if (config_.bandwidth_bytes_per_sec != 0) {
    transfer = static_cast<DurationNs>(bytes) * kSecond / config_.bandwidth_bytes_per_sec;
  }
  // The device processes one transfer at a time (single media channel model).
  device_free_at_ = std::max<TimeNs>(device_free_at_, now) + transfer;
  return device_free_at_ + (is_read ? config_.read_latency : config_.write_latency);
}

Status SimBlockDevice::SubmitWriteLocked(uint64_t lba, Pending&& p, size_t total_bytes) {
  if (total_bytes % config_.block_size != 0 || total_bytes == 0) {
    return Status::kInvalidArgument;
  }
  const uint64_t nblocks = total_bytes / config_.block_size;
  if (lba + nblocks > config_.num_blocks) {
    return Status::kInvalidArgument;
  }
  if (pending_.size() >= config_.queue_depth) {
    stats_.queue_full_rejections++;
    return Status::kQueueFull;
  }
  p.complete_at = CompletionTimeFor(total_bytes, /*is_read=*/false);
  p.seq = next_seq_++;
  p.is_read = false;
  p.lba = lba;
  p.media_bytes = total_bytes;
  if (faults_ != nullptr) {
    const auto fault = faults_->DiskOnSubmit(/*is_read=*/false, total_bytes, p.cookie);
    p.complete_at += fault.extra_latency;
    if (fault.io_error) {
      p.status = Status::kIoError;
      // Torn write: a prefix still lands on the media before the "crash"; a plain transient
      // error leaves the media untouched.
      p.media_bytes = fault.torn ? fault.torn_bytes : 0;
    }
  }
  pending_.push(std::move(p));
  stats_.writes++;
  stats_.bytes_written += total_bytes;
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventType::kDiskSubmit, 0, total_bytes);
  }
  return Status::kOk;
}

Status SimBlockDevice::SubmitWrite(uint64_t lba, std::span<const uint8_t> data, uint64_t cookie,
                                   size_t queue) {
  std::lock_guard<std::mutex> lock(mu_);
  DEMI_CHECK(queue < ready_.size());
  Pending p;
  p.cookie = cookie;
  p.queue = queue;
  p.write_data.assign(data.begin(), data.end());
  return SubmitWriteLocked(lba, std::move(p), data.size());
}

Status SimBlockDevice::SubmitWritev(uint64_t lba, std::span<const std::span<const uint8_t>> iov,
                                    uint64_t cookie, size_t queue) {
  std::lock_guard<std::mutex> lock(mu_);
  DEMI_CHECK(queue < ready_.size());
  if (iov.size() > kMaxWritevSegments) {
    return Status::kMessageTooLong;
  }
  Pending p;
  p.cookie = cookie;
  p.queue = queue;
  size_t total = 0;
  for (const auto& seg : iov) {
    total += seg.size();
  }
  // Gather at submit time: this models the controller DMAing each registered slice straight
  // from the heap — the captured image is device state, not a host bounce buffer.
  p.write_data.reserve(total);
  for (const auto& seg : iov) {
    p.write_data.insert(p.write_data.end(), seg.begin(), seg.end());
  }
  return SubmitWriteLocked(lba, std::move(p), total);
}

Status SimBlockDevice::SubmitRead(uint64_t lba, std::span<uint8_t> out, uint64_t cookie,
                                  size_t queue) {
  std::lock_guard<std::mutex> lock(mu_);
  DEMI_CHECK(queue < ready_.size());
  if (out.size() % config_.block_size != 0 || out.empty()) {
    return Status::kInvalidArgument;
  }
  const uint64_t nblocks = out.size() / config_.block_size;
  if (lba + nblocks > config_.num_blocks) {
    return Status::kInvalidArgument;
  }
  if (pending_.size() >= config_.queue_depth) {
    stats_.queue_full_rejections++;
    return Status::kQueueFull;
  }
  Pending p;
  p.complete_at = CompletionTimeFor(out.size(), /*is_read=*/true);
  p.seq = next_seq_++;
  p.cookie = cookie;
  p.queue = queue;
  p.is_read = true;
  p.lba = lba;
  p.read_target = out;
  if (faults_ != nullptr) {
    const auto fault = faults_->DiskOnSubmit(/*is_read=*/true, out.size(), cookie);
    p.complete_at += fault.extra_latency;
    if (fault.io_error) {
      p.status = Status::kIoError;
    }
  }
  pending_.push(std::move(p));
  stats_.reads++;
  stats_.bytes_read += out.size();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventType::kDiskSubmit, 1, out.size());
  }
  return Status::kOk;
}

void SimBlockDevice::RetireDueLocked(TimeNs now) {
  while (!pending_.empty() && pending_.top().complete_at <= now) {
    // priority_queue::top is const; we move out then pop, which is safe because nothing reads
    // the moved-from element before the pop.
    Pending p = std::move(const_cast<Pending&>(pending_.top()));
    pending_.pop();
    const size_t offset = p.lba * config_.block_size;
    if (p.is_read) {
      if (p.status == Status::kOk) {
        std::memcpy(p.read_target.data(), media_.data() + offset, p.read_target.size());
      }
    } else if (p.media_bytes > 0) {
      std::memcpy(media_.data() + offset, p.write_data.data(), p.media_bytes);
    }
    if (p.status != Status::kOk) {
      stats_.io_errors++;
    }
    ready_[p.queue < ready_.size() ? p.queue : 0].push_back(Completion{p.cookie, p.status});
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventType::kDiskComplete, p.is_read ? 1 : 0, p.cookie);
    }
  }
}

size_t SimBlockDevice::PollCompletions(std::span<Completion> out, size_t queue) {
  std::lock_guard<std::mutex> lock(mu_);
  DEMI_CHECK(queue < ready_.size());
  RetireDueLocked(clock_.Now());
  size_t n = 0;
  auto& q = ready_[queue];
  while (n < out.size() && !q.empty()) {
    out[n++] = q.front();
    q.pop_front();
  }
  return n;
}

TimeNs SimBlockDevice::NextCompletionTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& q : ready_) {
    if (!q.empty()) {
      return clock_.Now();  // already retired, deliverable on the owner's next poll
    }
  }
  return pending_.empty() ? 0 : pending_.top().complete_at;
}

void SimBlockDevice::RawRead(uint64_t byte_offset, std::span<uint8_t> out) const {
  std::lock_guard<std::mutex> lock(mu_);
  DEMI_CHECK(byte_offset + out.size() <= media_.size());
  std::memcpy(out.data(), media_.data() + byte_offset, out.size());
}

}  // namespace demi
