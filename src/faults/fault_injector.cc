#include "src/faults/fault_injector.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace demi {

bool FaultPlan::Any() const {
  return net_corrupt > 0 || net_link_flap > 0 || net_partition > 0 || disk_error > 0 ||
         disk_delay > 0 || disk_torn > 0 || alloc_fail > 0 ||
         (tenant_drop > 0 && tenant_drop_id != kDefaultTenant);
}

namespace {

bool ParseU64(std::string_view v, uint64_t* out) {
  char* end = nullptr;
  const std::string s(v);
  const unsigned long long x = std::strtoull(s.c_str(), &end, 0);
  if (end == s.c_str() || *end != '\0') {
    return false;
  }
  *out = x;
  return true;
}

bool ParseProb(std::string_view v, double* out) {
  char* end = nullptr;
  const std::string s(v);
  const double x = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || x < 0.0 || x > 1.0) {
    return false;
  }
  *out = x;
  return true;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::Parse(std::string_view spec, std::string* error) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = spec.size();
    }
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) {
      continue;
    }
    const size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      if (error != nullptr) {
        *error = "missing '=' in \"" + std::string(item) + "\"";
      }
      return std::nullopt;
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    uint64_t u = 0;
    bool ok;
    if (key == "seed") {
      ok = ParseU64(val, &plan.seed);
    } else if (key == "net_corrupt") {
      ok = ParseProb(val, &plan.net_corrupt);
    } else if (key == "net_corrupt_bits") {
      ok = ParseU64(val, &u) && u >= 1 && u <= 64;
      plan.net_corrupt_bits = static_cast<uint32_t>(u);
    } else if (key == "net_link_flap") {
      ok = ParseProb(val, &plan.net_link_flap);
    } else if (key == "net_link_down_ns") {
      ok = ParseU64(val, &u);
      plan.net_link_down_ns = static_cast<DurationNs>(u);
    } else if (key == "net_partition") {
      ok = ParseProb(val, &plan.net_partition);
    } else if (key == "net_partition_ns") {
      ok = ParseU64(val, &u);
      plan.net_partition_ns = static_cast<DurationNs>(u);
    } else if (key == "disk_error") {
      ok = ParseProb(val, &plan.disk_error);
    } else if (key == "disk_delay") {
      ok = ParseProb(val, &plan.disk_delay);
    } else if (key == "disk_delay_ns") {
      ok = ParseU64(val, &u);
      plan.disk_delay_ns = static_cast<DurationNs>(u);
    } else if (key == "disk_torn") {
      ok = ParseProb(val, &plan.disk_torn);
    } else if (key == "alloc_fail") {
      ok = ParseProb(val, &plan.alloc_fail);
    } else if (key == "tenant_drop") {
      // "<id>:<rate>": aim per-frame loss at one tenant's TX path.
      const size_t colon = val.find(':');
      ok = colon != std::string_view::npos && ParseU64(val.substr(0, colon), &u) &&
           u <= UINT16_MAX && ParseProb(val.substr(colon + 1), &plan.tenant_drop);
      plan.tenant_drop_id = static_cast<uint32_t>(u);
    } else {
      if (error != nullptr) {
        *error = "unknown FaultPlan key \"" + std::string(key) + "\"";
      }
      return std::nullopt;
    }
    if (!ok) {
      if (error != nullptr) {
        *error = "bad value for \"" + std::string(key) + "\": \"" + std::string(val) + "\"";
      }
      return std::nullopt;
    }
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::FromEnv() { return FromEnv(FaultPlan{}); }

std::optional<FaultPlan> FaultPlan::FromEnv(const FaultPlan& fallback) {
  const char* plan_env = std::getenv("DEMI_FAULT_PLAN");
  const char* seed_env = std::getenv("DEMI_FAULT_SEED");
  if (plan_env == nullptr && seed_env == nullptr) {
    return std::nullopt;
  }
  FaultPlan plan = fallback;
  if (plan_env != nullptr) {
    std::string error;
    auto parsed = Parse(plan_env, &error);
    if (!parsed.has_value()) {
      return std::nullopt;
    }
    plan = *parsed;
  }
  if (seed_env != nullptr) {
    uint64_t seed = 0;
    if (ParseU64(seed_env, &seed)) {
      plan.seed = seed;
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (net_corrupt > 0) {
    os << ",net_corrupt=" << net_corrupt << ",net_corrupt_bits=" << net_corrupt_bits;
  }
  if (net_link_flap > 0) {
    os << ",net_link_flap=" << net_link_flap << ",net_link_down_ns=" << net_link_down_ns;
  }
  if (net_partition > 0) {
    os << ",net_partition=" << net_partition << ",net_partition_ns=" << net_partition_ns;
  }
  if (disk_error > 0) {
    os << ",disk_error=" << disk_error;
  }
  if (disk_delay > 0) {
    os << ",disk_delay=" << disk_delay << ",disk_delay_ns=" << disk_delay_ns;
  }
  if (disk_torn > 0) {
    os << ",disk_torn=" << disk_torn;
  }
  if (alloc_fail > 0) {
    os << ",alloc_fail=" << alloc_fail;
  }
  if (tenant_drop > 0 && tenant_drop_id != kDefaultTenant) {
    os << ",tenant_drop=" << tenant_drop_id << ":" << tenant_drop;
  }
  return os.str();
}

void FaultInjector::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  rng_ = Rng(plan.seed);
  stats_ = Stats{};
  link_down_until_ = 0;
  partitions_.clear();
  armed_ = true;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  link_down_until_ = 0;
  partitions_.clear();
}

bool FaultInjector::NetShouldDrop(MacAddr src, MacAddr dst, TimeNs now) {
  if (!armed_) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // New fault windows open before the drop check so the triggering frame is itself swallowed.
  if (plan_.net_link_flap > 0 && now >= link_down_until_ && rng_.NextBool(plan_.net_link_flap)) {
    link_down_until_ = now + plan_.net_link_down_ns;
    stats_.link_flaps++;
    Trace(TraceEventType::kFaultLinkFlap, 0, static_cast<uint64_t>(plan_.net_link_down_ns));
  }
  const std::pair<uint64_t, uint64_t> key{std::min(src.value, dst.value),
                                          std::max(src.value, dst.value)};
  if (plan_.net_partition > 0 && rng_.NextBool(plan_.net_partition)) {
    auto [it, inserted] = partitions_.try_emplace(key, now + plan_.net_partition_ns);
    if (!inserted) {
      it->second = std::max(it->second, now + plan_.net_partition_ns);
    }
    stats_.partitions++;
    Trace(TraceEventType::kFaultPartition, static_cast<uint32_t>(src.value),
          static_cast<uint64_t>(dst.value));
  }
  bool drop = now < link_down_until_;
  if (!drop) {
    auto it = partitions_.find(key);
    if (it != partitions_.end()) {
      if (now < it->second) {
        drop = true;
      } else {
        partitions_.erase(it);  // window expired
      }
    }
  }
  if (drop) {
    stats_.frames_dropped++;
  }
  return drop;
}

bool FaultInjector::NetMaybeCorrupt(std::vector<uint8_t>& frame) {
  if (!armed_ || frame.empty()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_.net_corrupt <= 0 || !rng_.NextBool(plan_.net_corrupt)) {
    return false;
  }
  const uint64_t total_bits = static_cast<uint64_t>(frame.size()) * 8;
  uint64_t first_bit = 0;
  for (uint32_t i = 0; i < plan_.net_corrupt_bits; i++) {
    const uint64_t bit = rng_.NextBounded(total_bits);
    if (i == 0) {
      first_bit = bit;
    }
    frame[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  stats_.frames_corrupted++;
  Trace(TraceEventType::kFaultFrameCorrupt, static_cast<uint32_t>(first_bit), frame.size());
  return true;
}

FaultInjector::DiskFault FaultInjector::DiskOnSubmit(bool is_read, size_t bytes,
                                                     uint64_t cookie) {
  DiskFault fault;
  if (!armed_) {
    return fault;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_.disk_delay > 0 && rng_.NextBool(plan_.disk_delay)) {
    fault.extra_latency = plan_.disk_delay_ns;
    stats_.disk_delays++;
    Trace(TraceEventType::kFaultDiskDelay, is_read ? 1 : 0,
          static_cast<uint64_t>(plan_.disk_delay_ns));
  }
  if (!is_read && plan_.disk_torn > 0 && rng_.NextBool(plan_.disk_torn) && bytes > 0) {
    // A crash mid-DMA: some prefix of the payload lands, the op reports failure.
    fault.torn = true;
    fault.torn_bytes = static_cast<size_t>(rng_.NextBounded(bytes));
    fault.io_error = true;
    stats_.disk_torn_writes++;
    stats_.disk_io_errors++;
    Trace(TraceEventType::kFaultTornWrite, static_cast<uint32_t>(fault.torn_bytes), cookie);
    Trace(TraceEventType::kFaultDiskError, 0, cookie);
    return fault;
  }
  if (plan_.disk_error > 0 && rng_.NextBool(plan_.disk_error)) {
    fault.io_error = true;
    stats_.disk_io_errors++;
    Trace(TraceEventType::kFaultDiskError, is_read ? 1 : 0, cookie);
  }
  return fault;
}

bool FaultInjector::AllocShouldFail(size_t bytes) {
  if (!armed_) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_.alloc_fail <= 0 || !rng_.NextBool(plan_.alloc_fail)) {
    return false;
  }
  stats_.alloc_failures++;
  Trace(TraceEventType::kFaultAllocFail, 0, bytes);
  return true;
}

bool FaultInjector::TenantShouldDrop(TenantId tenant, size_t bytes) {
  if (!armed_) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (plan_.tenant_drop <= 0 || plan_.tenant_drop_id != tenant ||
      !rng_.NextBool(plan_.tenant_drop)) {
    return false;
  }
  stats_.tenant_frames_dropped++;
  Trace(TraceEventType::kFaultTenantDrop, tenant, bytes);
  return true;
}

FaultInjector::Stats FaultInjector::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultInjector::RegisterMetrics(MetricsRegistry& registry) {
  auto stat = [this](uint64_t Stats::* field) {
    return [this, field]() {
      std::lock_guard<std::mutex> lock(mu_);
      return stats_.*field;
    };
  };
  registry.RegisterCallback("faults.frames_corrupted", "faults", "frames",
                            "Frames with injected bit flips", stat(&Stats::frames_corrupted));
  registry.RegisterCallback("faults.frames_dropped", "faults", "frames",
                            "Frames swallowed by injected flaps/partitions",
                            stat(&Stats::frames_dropped));
  registry.RegisterCallback("faults.link_flaps", "faults", "events",
                            "Injected whole-link down/up flaps", stat(&Stats::link_flaps));
  registry.RegisterCallback("faults.partitions", "faults", "events",
                            "Injected pairwise partition windows", stat(&Stats::partitions));
  registry.RegisterCallback("faults.disk_io_errors", "faults", "ops",
                            "Disk ops completed with an injected I/O error",
                            stat(&Stats::disk_io_errors));
  registry.RegisterCallback("faults.disk_delays", "faults", "ops",
                            "Disk ops with an injected latency spike", stat(&Stats::disk_delays));
  registry.RegisterCallback("faults.disk_torn_writes", "faults", "ops",
                            "Writes torn at an injected crash point",
                            stat(&Stats::disk_torn_writes));
  registry.RegisterCallback("faults.alloc_failures", "faults", "allocs",
                            "Pool allocations failed by injection", stat(&Stats::alloc_failures));
  registry.RegisterCallback("faults.tenant_frames_dropped", "faults", "frames",
                            "Frames swallowed by tenant-scoped drop targeting",
                            stat(&Stats::tenant_frames_dropped));
}

}  // namespace demi
