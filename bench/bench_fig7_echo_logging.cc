// Figure 7 reproduction: 64 B echo where the server synchronously logs every message to disk
// before replying.
//
// Paper result: Linux+ext4 ~70-100 µs dominated by the synchronous write; Catnap lowers it by
// polling; Catnip×Cattree / Catmint×Cattree reach ~12-14 µs total — "lower latency to remote
// disk than kernel-based OSes to remote memory" — because the libOS runs NIC→app→SPDK
// run-to-completion with no copies or context switches. Here the simulated NVMe write costs
// ~10-12 µs (Optane model), so the integrated rows must sit close to that floor while the
// kernel rows pay real fsync costs on top of socket wakeups.

#include <atomic>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"

namespace demi {
namespace bench {
namespace {

constexpr size_t kMsgSize = 64;
constexpr uint64_t kIters = 2000;  // each echo carries a durable write; keep runs bounded

Histogram PosixLoggingEchoRtt() {
  std::atomic<bool> stop{false};
  const SocketAddress addr = Loopback(UniquePort());
  char path[] = "/tmp/demi_fig7_posix_XXXXXX";
  const int fd = ::mkstemp(path);
  ::close(fd);
  std::atomic<bool> up{false};
  std::thread server([&] {
    EchoServerOptions opts{addr, SocketType::kStream};
    opts.log_to_disk = true;
    opts.log_path = path;
    up = true;
    RunPosixEchoServer(opts, stop, nullptr);
  });
  while (!up) {
  }
  EchoClientOptions copts;
  copts.server = addr;
  copts.message_size = kMsgSize;
  copts.iterations = kIters / 2;
  copts.warmup = 50;
  auto result = RunPosixEchoClient(copts);
  stop = true;
  server.join();
  ::unlink(path);
  return result.rtt;
}

Histogram CatnapLoggingEchoRtt() {
  CatnapPair pair;
  const SocketAddress addr = Loopback(UniquePort());
  char path[] = "/tmp/demi_fig7_catnap_XXXXXX";
  const int fd = ::mkstemp(path);
  ::close(fd);
  EchoServerOptions sopts{addr, SocketType::kStream};
  sopts.log_to_disk = true;
  sopts.log_path = path;
  EchoServerApp app(*pair.server, sopts);
  pair.client->SetExternalPump([&] {
    pair.server->PollOnce();
    app.Pump();
  });
  EchoClientOptions copts;
  copts.server = addr;
  copts.message_size = kMsgSize;
  copts.iterations = kIters / 2;
  copts.warmup = 50;
  auto result = RunEchoClient(*pair.client, copts);
  ::unlink(path);
  return result.rtt;
}

}  // namespace

void Main() {
  PrintHeader("Figure 7: echo with synchronous logging to disk (64 B)",
              "Linux ~70us+, Catnap ~55us, Catmint x Cattree ~12us, Catnip(TCP) x "
              "Cattree ~14us — Demikernel reaches remote disk faster than kernels reach "
              "remote memory");

  PrintLatencyRow("Linux (POSIX + ext4 fsync)", PosixLoggingEchoRtt(), "kernel net + kernel fs");
  PrintLatencyRow("Catnap (+file fsync)", CatnapLoggingEchoRtt(), "polled sockets, kernel fs");
  {
    MonotonicClock clock;
    SimBlockDevice disk(SimBlockDevice::Config{}, clock);
    CatnipPair pair(LinkConfig{}, &disk);
    auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 5401}, SocketType::kStream,
                       /*log_to_disk=*/true},
                      kMsgSize, kIters);
    PrintLatencyRow("Catnip(TCP) x Cattree", r.rtt, "NIC->app->SPDK run-to-completion");
  }
  {
    MonotonicClock clock;
    SimBlockDevice disk(SimBlockDevice::Config{}, clock);
    CatmintPair pair(LinkConfig{}, &disk);
    auto r = DuetEcho({*pair.server, *pair.client, {kServerIp, 5402}, SocketType::kStream,
                       /*log_to_disk=*/true},
                      kMsgSize, kIters);
    PrintLatencyRow("Catmint x Cattree", r.rtt, "RDMA->app->SPDK run-to-completion");
  }
  std::printf("(simulated NVMe floor: ~12 us per durable 4 kB write)\n");
}

}  // namespace bench
}  // namespace demi

int main() {
  demi::bench::Main();
  return 0;
}
