// Unit tests for the coroutine runtime: Task, Scheduler, Waker blocks, Event, timers.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/clock.h"
#include "src/runtime/event.h"
#include "src/runtime/scheduler.h"
#include "src/runtime/task.h"

namespace demi {
namespace {

Task<int> ReturnsValue() { co_return 42; }

Task<int> AwaitsSubtask() {
  int v = co_await ReturnsValue();
  co_return v + 1;
}

TEST(SchedulerTest, RunsSpawnedFiberToCompletion) {
  VirtualClock clock;
  Scheduler sched(clock);
  bool ran = false;
  sched.Spawn([](bool* flag) -> Task<void> {
    *flag = true;
    co_return;
  }(&ran));
  EXPECT_EQ(sched.NumLiveFibers(), 1u);
  sched.Poll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sched.NumLiveFibers(), 0u);
}

TEST(SchedulerTest, NestedTaskAwaitPropagatesValues) {
  VirtualClock clock;
  Scheduler sched(clock);
  int result = 0;
  sched.Spawn([](int* out) -> Task<void> {
    *out = co_await AwaitsSubtask();
    co_return;
  }(&result));
  sched.Poll();
  EXPECT_EQ(result, 43);
}

TEST(SchedulerTest, YieldInterleavesFibers) {
  VirtualClock clock;
  Scheduler sched(clock);
  std::vector<int> order;
  auto fiber = [](std::vector<int>* out, int id) -> Task<void> {
    out->push_back(id);
    co_await Scheduler::Yield{};
    out->push_back(id + 10);
    co_return;
  };
  sched.Spawn(fiber(&order, 1));
  sched.Spawn(fiber(&order, 2));
  sched.Poll();  // both run to their yield
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  sched.Poll();  // both resume
  EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12}));
  EXPECT_EQ(sched.NumLiveFibers(), 0u);
}

TEST(SchedulerTest, YieldAfterSubtaskResumesInnermost) {
  // Regression: after a blocked/yielded suspension deep in a nested task, the scheduler must
  // resume the innermost coroutine, not the fiber root.
  VirtualClock clock;
  Scheduler sched(clock);
  std::vector<int> order;
  auto inner = [](std::vector<int>* out) -> Task<int> {
    out->push_back(1);
    co_await Scheduler::Yield{};
    out->push_back(2);
    co_return 7;
  };
  auto outer = [&inner](std::vector<int>* out) -> Task<void> {
    int v = co_await inner(out);
    out->push_back(v);
    co_return;
  };
  sched.Spawn(outer(&order));
  sched.PollUntil([&] { return sched.NumLiveFibers() == 0; });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 7}));
}

TEST(SchedulerTest, BlockedFibersAreNotPolled) {
  VirtualClock clock;
  Scheduler sched(clock);
  Event event;
  int progress = 0;
  sched.Spawn([](Event* e, int* p) -> Task<void> {
    (*p)++;
    co_await e->Wait();
    (*p)++;
    co_return;
  }(&event, &progress));
  sched.Poll();
  EXPECT_EQ(progress, 1);
  // Blocked: repeated polls do not resume it (the paper's "blockable coroutines").
  EXPECT_EQ(sched.Poll(), 0u);
  EXPECT_EQ(sched.Poll(), 0u);
  EXPECT_EQ(progress, 1);
  event.Notify();
  sched.Poll();
  EXPECT_EQ(progress, 2);
  EXPECT_EQ(sched.NumLiveFibers(), 0u);
}

TEST(SchedulerTest, EventWakesAllWaiters) {
  VirtualClock clock;
  Scheduler sched(clock);
  Event event;
  int woken = 0;
  for (int i = 0; i < 5; i++) {
    sched.Spawn([](Event* e, int* w) -> Task<void> {
      co_await e->Wait();
      (*w)++;
      co_return;
    }(&event, &woken));
  }
  sched.Poll();
  EXPECT_EQ(woken, 0);
  EXPECT_TRUE(event.HasWaiters());
  event.Notify();
  sched.Poll();
  EXPECT_EQ(woken, 5);
}

TEST(SchedulerTest, SleepBlocksUntilDeadline) {
  VirtualClock clock;
  Scheduler sched(clock);
  bool done = false;
  sched.Spawn([](Scheduler* s, bool* flag) -> Task<void> {
    co_await s->Sleep(1000);
    *flag = true;
    co_return;
  }(&sched, &done));
  sched.Poll();
  EXPECT_FALSE(done);
  EXPECT_EQ(sched.NextTimerDeadline(), 1000u);
  clock.Advance(999);
  sched.Poll();
  EXPECT_FALSE(done);
  clock.Advance(1);
  sched.Poll();
  EXPECT_TRUE(done);
}

// PollUntil on a VirtualClock must step virtual time to the next timer deadline when only
// timers remain — otherwise a sleeping fiber live-locks the loop (nothing runnable, nothing
// advancing the clock). Pre-fix this test spun until the step budget with `done` never set.
TEST(SchedulerTest, PollUntilStepsVirtualClockToTimers) {
  VirtualClock clock;
  Scheduler sched(clock);
  bool done = false;
  sched.Spawn([](Scheduler* s, bool* flag) -> Task<void> {
    co_await s->Sleep(5 * kMillisecond);
    *flag = true;
    co_return;
  }(&sched, &done));
  EXPECT_TRUE(sched.PollUntil([&] { return done; }));
  EXPECT_GE(clock.Now(), 5 * kMillisecond);
}

// With no runnable fibers and no pending timers, PollUntil(pred) must return false rather
// than spin forever on the frozen clock.
TEST(SchedulerTest, PollUntilReturnsFalseWhenNothingCanProgress) {
  VirtualClock clock;
  Scheduler sched(clock);
  Event never;
  sched.Spawn([](Event* e) -> Task<void> {
    co_await e->Wait();
    co_return;
  }(&never));
  EXPECT_FALSE(sched.PollUntil([] { return false; }));
}

// The timer step never overshoots an explicit PollUntil timeout: a distant timer must not
// drag the clock past the caller's deadline.
TEST(SchedulerTest, PollUntilClampsClockStepAtTimeout) {
  VirtualClock clock;
  Scheduler sched(clock);
  bool done = false;
  sched.Spawn([](Scheduler* s, bool* flag) -> Task<void> {
    co_await s->Sleep(kSecond);
    *flag = true;
    co_return;
  }(&sched, &done));
  EXPECT_FALSE(sched.PollUntil([&] { return done; }, 10 * kMillisecond));
  EXPECT_LT(clock.Now(), 20 * kMillisecond);
}

TEST(SchedulerTest, WaitWithTimeoutFiresOnTimer) {
  VirtualClock clock;
  Scheduler sched(clock);
  Event event;
  int wakes = 0;
  sched.Spawn([](Scheduler* s, Event* e, int* out) -> Task<void> {
    co_await e->WaitWithTimeout(*s, 500);
    (*out)++;
    co_return;
  }(&sched, &event, &wakes));
  sched.Poll();
  EXPECT_EQ(wakes, 0);
  clock.Advance(500);
  sched.Poll();
  EXPECT_EQ(wakes, 1);
}

TEST(SchedulerTest, ManyFibersWakerBlocksScale) {
  // Exercise multiple waker blocks (> 64 fibers) with selective wakes.
  VirtualClock clock;
  Scheduler sched(clock);
  constexpr int kFibers = 200;
  std::vector<Event> events(kFibers);
  std::vector<int> done(kFibers, 0);
  for (int i = 0; i < kFibers; i++) {
    sched.Spawn([](Event* e, int* d) -> Task<void> {
      co_await e->Wait();
      *d = 1;
      co_return;
    }(&events[i], &done[i]));
  }
  sched.Poll();
  // Wake only fiber 130 (block 2).
  events[130].Notify();
  sched.Poll();
  EXPECT_EQ(done[130], 1);
  EXPECT_EQ(done[0], 0);
  EXPECT_EQ(done[64], 0);
  // Wake the rest.
  for (auto& e : events) {
    e.Notify();
  }
  sched.Poll();
  for (int i = 0; i < kFibers; i++) {
    EXPECT_EQ(done[i], 1) << i;
  }
  EXPECT_EQ(sched.NumLiveFibers(), 0u);
}

TEST(SchedulerTest, SlotRecyclingReusesFreedSlots) {
  VirtualClock clock;
  Scheduler sched(clock);
  auto noop = []() -> Task<void> { co_return; };
  Scheduler::FiberId first = sched.Spawn(noop());
  sched.Poll();
  Scheduler::FiberId second = sched.Spawn(noop());
  EXPECT_EQ(first, second);  // slot reused
  sched.Poll();
  EXPECT_EQ(sched.NumLiveFibers(), 0u);
}

TEST(SchedulerTest, StaleWakeOfDeadFiberIsHarmless) {
  VirtualClock clock;
  Scheduler sched(clock);
  Event event;
  sched.Spawn([](Event* e) -> Task<void> {
    co_await e->Wait();
    co_return;
  }(&event));
  sched.Poll();
  event.Notify();
  sched.Poll();  // fiber completes and its slot frees
  EXPECT_EQ(sched.NumLiveFibers(), 0u);
  event.Notify();  // no waiters; nothing to do
  sched.Poll();
}

TEST(SchedulerTest, FiberSpawnedDuringPollRunsNextPoll) {
  VirtualClock clock;
  Scheduler sched(clock);
  int stage = 0;
  sched.Spawn([](Scheduler* s, int* out) -> Task<void> {
    *out = 1;
    s->Spawn([](int* inner_out) -> Task<void> {
      *inner_out = 2;
      co_return;
    }(out));
    co_return;
  }(&sched, &stage));
  sched.Poll();
  EXPECT_GE(stage, 1);
  sched.PollUntil([&] { return sched.NumLiveFibers() == 0; });
  EXPECT_EQ(stage, 2);
}

TEST(SchedulerTest, PollUntilHonorsTimeout) {
  VirtualClock clock;
  Scheduler sched(clock);
  // Keep a fiber yielding forever; ensure PollUntil gives up. With a VirtualClock, advance
  // time from inside the fiber.
  sched.Spawn([](VirtualClock* c) -> Task<void> {
    for (;;) {
      c->Advance(100);
      co_await Scheduler::Yield{};
    }
  }(&clock));
  bool met = sched.PollUntil([] { return false; }, /*timeout=*/10'000);
  EXPECT_FALSE(met);
}

TEST(SchedulerTest, DestructionDestroysLiveFibers) {
  // A blocked fiber must have its frame destroyed with the scheduler (no leaks under ASAN).
  VirtualClock clock;
  Event event;
  auto holder = std::make_unique<Scheduler>(clock);
  holder->Spawn([](Event* e) -> Task<void> {
    co_await e->Wait();
    co_return;
  }(&event));
  holder->Poll();
  EXPECT_EQ(holder->NumLiveFibers(), 1u);
  holder.reset();  // must not leak or crash
}

TEST(TaskTest, TaskIsLazy) {
  bool started = false;
  auto t = [](bool* out) -> Task<void> {
    *out = true;
    co_return;
  }(&started);
  EXPECT_FALSE(started);
  // Never awaited: destroying an unstarted task must be safe.
}

TEST(SchedulerTest, NumRunnableTracksReadyBits) {
  VirtualClock clock;
  Scheduler sched(clock);
  Event event;
  sched.Spawn([](Event* e) -> Task<void> {
    co_await e->Wait();
    co_return;
  }(&event));
  EXPECT_EQ(sched.NumRunnable(), 1u);  // runnable until first poll blocks it
  sched.Poll();
  EXPECT_EQ(sched.NumRunnable(), 0u);
  event.Notify();
  EXPECT_EQ(sched.NumRunnable(), 1u);
  sched.Poll();
}

}  // namespace
}  // namespace demi
