// Tests for the network stacks: headers, Ethernet/ARP, UDP, and TCP (Catnip's stack).
//
// TCP tests run two full stacks over the simulated fabric in deterministic stepped mode: a
// shared VirtualClock advances exactly to the next network/timer event, so every loss and
// retransmission is reproducible — the testing style Catnip's deterministic design enables
// (paper §6.3).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/memory/buffer.h"
#include "src/net/ethernet.h"
#include "src/net/headers.h"
#include "src/net/tcp/congestion.h"
#include "src/net/tcp/tcp.h"
#include "src/net/udp.h"
#include "src/netsim/sim_network.h"

namespace demi {
namespace {

// --- Header serialization ---

TEST(HeadersTest, EthernetRoundTrip) {
  uint8_t buf[EthernetHeader::kSize];
  EthernetHeader h{MacAddr{0x010203040506}, MacAddr{0x0A0B0C0D0E0F}, EtherType::kIpv4};
  h.Serialize(buf);
  auto parsed = EthernetHeader::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst.value, 0x010203040506u);
  EXPECT_EQ(parsed->src.value, 0x0A0B0C0D0E0Fu);
  EXPECT_EQ(parsed->ether_type, EtherType::kIpv4);
}

TEST(HeadersTest, ArpRoundTrip) {
  uint8_t buf[ArpPacket::kSize];
  ArpPacket p;
  p.op = ArpPacket::Op::kRequest;
  p.sender_mac = MacAddr{0x111111111111};
  p.sender_ip = Ipv4Addr::FromOctets(10, 0, 0, 1);
  p.target_mac = MacAddr::Zero();
  p.target_ip = Ipv4Addr::FromOctets(10, 0, 0, 2);
  p.Serialize(buf);
  auto parsed = ArpPacket::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, ArpPacket::Op::kRequest);
  EXPECT_EQ(parsed->sender_ip.ToString(), "10.0.0.1");
  EXPECT_EQ(parsed->target_ip.ToString(), "10.0.0.2");
}

TEST(HeadersTest, Ipv4ChecksumValidates) {
  uint8_t buf[40] = {0};  // header + 20 payload bytes, as a receiver sees it
  Ipv4Header h;
  h.total_length = 40;
  h.protocol = IpProto::kTcp;
  h.src = Ipv4Addr::FromOctets(192, 168, 0, 1);
  h.dst = Ipv4Addr::FromOctets(192, 168, 0, 2);
  h.Serialize(buf);
  ASSERT_TRUE(Ipv4Header::Parse(buf).has_value());
  buf[15] ^= 0x40;  // corrupt a bit
  EXPECT_FALSE(Ipv4Header::Parse(buf).has_value());
}

TEST(HeadersTest, TcpChecksumCoversPayload) {
  const Ipv4Addr src = Ipv4Addr::FromOctets(1, 1, 1, 1);
  const Ipv4Addr dst = Ipv4Addr::FromOctets(2, 2, 2, 2);
  std::vector<uint8_t> payload = {'d', 'a', 't', 'a'};
  TcpHeader h;
  h.src_port = 1234;
  h.dst_port = 80;
  h.seq = 1000;
  h.ack = 2000;
  h.flags.ack = true;
  h.flags.psh = true;
  h.window = 512;
  std::vector<uint8_t> wire(h.SerializedSize() + payload.size());
  h.Serialize(wire.data(), src, dst, payload);
  std::memcpy(wire.data() + h.SerializedSize(), payload.data(), payload.size());

  size_t hdr_len = 0;
  auto parsed = TcpHeader::Parse(wire, src, dst, &hdr_len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(hdr_len, TcpHeader::kBaseSize);
  EXPECT_EQ(parsed->seq, 1000u);
  EXPECT_EQ(parsed->ack, 2000u);
  EXPECT_TRUE(parsed->flags.psh);

  wire[hdr_len + 1] ^= 0xFF;  // corrupt payload: checksum must fail
  EXPECT_FALSE(TcpHeader::Parse(wire, src, dst, &hdr_len).has_value());
}

TEST(HeadersTest, TcpOptionsRoundTrip) {
  const Ipv4Addr src = Ipv4Addr::FromOctets(1, 1, 1, 1);
  const Ipv4Addr dst = Ipv4Addr::FromOctets(2, 2, 2, 2);
  TcpHeader h;
  h.src_port = 10;
  h.dst_port = 20;
  h.flags.syn = true;
  h.mss_option = 1460;
  h.window_scale_option = 7;
  std::vector<uint8_t> wire(h.SerializedSize());
  h.Serialize(wire.data(), src, dst, std::span<const uint8_t>{});
  size_t hdr_len = 0;
  auto parsed = TcpHeader::Parse(wire, src, dst, &hdr_len);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->mss_option.has_value());
  EXPECT_EQ(*parsed->mss_option, 1460);
  ASSERT_TRUE(parsed->window_scale_option.has_value());
  EXPECT_EQ(*parsed->window_scale_option, 7);
  EXPECT_EQ(hdr_len, 28u);  // 20 base + 7 options padded to 8
}

TEST(HeadersTest, UdpRoundTrip) {
  const Ipv4Addr src = Ipv4Addr::FromOctets(1, 1, 1, 1);
  const Ipv4Addr dst = Ipv4Addr::FromOctets(2, 2, 2, 2);
  std::vector<uint8_t> payload = {9, 9, 9};
  UdpHeader h;
  h.src_port = 53;
  h.dst_port = 5353;
  h.length = static_cast<uint16_t>(UdpHeader::kSize + payload.size());
  uint8_t buf[UdpHeader::kSize + 3];
  h.Serialize(buf, src, dst, payload);
  std::memcpy(buf + UdpHeader::kSize, payload.data(), payload.size());
  auto parsed = UdpHeader::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 53);
  EXPECT_EQ(parsed->dst_port, 5353);
  EXPECT_EQ(parsed->length, 11);
}

TEST(HeadersTest, ChecksumOddLengths) {
  InternetChecksum a;
  uint8_t data[3] = {0x12, 0x34, 0x56};
  a.Add(data);
  InternetChecksum b;
  b.Add({data, 1});
  b.Add({data + 1, 2});
  EXPECT_EQ(a.Finish(), b.Finish());
}

// --- Congestion control ---

TEST(CongestionTest, CubicSlowStartDoubles) {
  CubicCongestion cc(1000);
  const size_t initial = cc.cwnd();
  cc.OnAck(initial, kSecond);
  EXPECT_EQ(cc.cwnd(), 2 * initial);  // slow start: cwnd += bytes_acked
}

TEST(CongestionTest, CubicTimeoutCollapses) {
  CubicCongestion cc(1000);
  cc.OnAck(cc.cwnd(), kSecond);
  const size_t before = cc.cwnd();
  cc.OnTimeout(2 * kSecond);
  EXPECT_LT(cc.cwnd(), before / 2);
}

TEST(CongestionTest, CubicFastRetransmitBetaDecrease) {
  CubicCongestion cc(1000);
  const size_t before = cc.cwnd();
  cc.OnFastRetransmit(kSecond);
  EXPECT_NEAR(static_cast<double>(cc.cwnd()), 0.7 * static_cast<double>(before), 1000.0);
}

TEST(CongestionTest, CubicGrowsAfterRecovery) {
  CubicCongestion cc(1000);
  cc.OnFastRetransmit(kSecond);  // forces congestion-avoidance regime
  const size_t after_loss = cc.cwnd();
  TimeNs t = kSecond;
  for (int i = 0; i < 2000; i++) {
    t += kMillisecond;
    cc.OnAck(1000, t);
  }
  EXPECT_GT(cc.cwnd(), after_loss);  // cubic regrowth toward and past w_max
}

TEST(CongestionTest, NewRenoAdditiveIncrease) {
  NewRenoCongestion cc(1000);
  cc.OnFastRetransmit(kSecond);  // leave slow start
  const size_t w = cc.cwnd();
  cc.OnAck(w, 2 * kSecond);  // one full window of acks
  EXPECT_EQ(cc.cwnd(), w + 1000);
}

TEST(CongestionTest, FixedWindowNeverMoves) {
  FixedWindowCongestion cc(8192);
  cc.OnTimeout(1);
  cc.OnFastRetransmit(2);
  cc.OnAck(100000, 3);
  EXPECT_EQ(cc.cwnd(), 8192u);
}

TEST(RttEstimatorTest, TracksSamplesAndBacksOff) {
  TcpConfig cfg;
  RttEstimator est(cfg);
  EXPECT_EQ(est.rto(), cfg.initial_rto);
  est.OnSample(100 * kMicrosecond);
  EXPECT_EQ(est.srtt(), 100 * kMicrosecond);
  // RTO floors at min_rto for tiny RTTs.
  EXPECT_EQ(est.rto(), cfg.min_rto);
  const DurationNs before = est.rto();
  est.Backoff();
  EXPECT_EQ(est.rto(), 2 * before);
}

// --- Two-host harness ---

struct Host {
  Host(SimNetwork& net, VirtualClock& clock, MacAddr mac, Ipv4Addr ip, TcpConfig cfg = {})
      : nic(net, mac, clock),
        alloc(nic.registrar()),
        sched(clock),
        eth(nic, ip),
        udp(eth, alloc),
        tcp(eth, sched, alloc, clock, cfg) {}

  SimNic nic;
  PoolAllocator alloc;
  Scheduler sched;
  EthernetLayer eth;
  UdpStack udp;
  TcpStack tcp;
};

class NetPairTest : public ::testing::Test {
 protected:
  static constexpr MacAddr kMacA{0xAA};
  static constexpr MacAddr kMacB{0xBB};

  explicit NetPairTest(LinkConfig link = LinkConfig{}, uint64_t seed = 1,
                       TcpConfig tcp_cfg = TcpConfig{})
      : net_(link, seed),
        a_(net_, clock_, kMacA, Ipv4Addr::FromOctets(10, 0, 0, 1), tcp_cfg),
        b_(net_, clock_, kMacB, Ipv4Addr::FromOctets(10, 0, 0, 2), tcp_cfg) {
    // Warm ARP (paper's fast path assumes a warm cache); ARP-miss behaviour is tested
    // explicitly elsewhere.
    a_.eth.arp().Insert(b_.eth.local_ip(), kMacB);
    b_.eth.arp().Insert(a_.eth.local_ip(), kMacA);
  }

  // One deterministic step: poll both hosts; if nothing was deliverable, jump the clock to the
  // next event (packet delivery or timer).
  void Step() {
    size_t activity = 0;
    activity += a_.eth.PollOnce();
    activity += b_.eth.PollOnce();
    activity += a_.sched.Poll();
    activity += b_.sched.Poll();
    if (activity > 0) {
      return;
    }
    TimeNs next = 0;
    auto consider = [&next](TimeNs t) {
      if (t != 0 && (next == 0 || t < next)) {
        next = t;
      }
    };
    consider(net_.NextDeliveryTime());
    consider(a_.sched.NextTimerDeadline());
    consider(b_.sched.NextTimerDeadline());
    if (next > clock_.Now()) {
      clock_.SetTime(next);
    } else {
      clock_.Advance(1 * kMicrosecond);
    }
  }

  template <typename Pred>
  bool RunUntil(Pred&& pred, int max_steps = 200000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) {
        return true;
      }
      Step();
    }
    return pred();
  }

  // Establishes a connection pair (client on a_, server listener on b_) and returns both ends.
  std::pair<std::shared_ptr<TcpConnection>, std::shared_ptr<TcpConnection>> EstablishPair(
      uint16_t port = 7777) {
    auto listener = b_.tcp.Listen(port, 16);
    EXPECT_TRUE(listener.ok());
    auto client = a_.tcp.Connect(SocketAddress{b_.eth.local_ip(), port});
    EXPECT_TRUE(client.ok());
    EXPECT_TRUE(RunUntil([&] {
      return (*client)->state() == TcpState::kEstablished && (*listener)->HasPending();
    }));
    auto server = (*listener)->Accept();
    EXPECT_NE(server, nullptr);
    return {*client, server};
  }

  // Pushes `data` on `from` and pops until `to` has received it all; returns the received bytes.
  std::string Transfer(const std::shared_ptr<TcpConnection>& from,
                       const std::shared_ptr<TcpConnection>& to, const std::string& data) {
    void* mem = from == nullptr ? nullptr : nullptr;
    (void)mem;
    PoolAllocator& alloc = (from.get() != nullptr && from->local().ip == a_.eth.local_ip())
                               ? a_.alloc
                               : b_.alloc;
    void* app = alloc.Alloc(data.size());
    std::memcpy(app, data.data(), data.size());
    Buffer buf = Buffer::FromApp(alloc, app, data.size());
    EXPECT_EQ(from->Push(std::move(buf)), Status::kOk);
    std::string received;
    RunUntil([&] {
      while (auto chunk = to->PopData()) {
        received.append(reinterpret_cast<const char*>(chunk->data()), chunk->size());
      }
      return received.size() >= data.size();
    });
    alloc.Free(app);
    return received;
  }

  VirtualClock clock_;
  SimNetwork net_;
  Host a_;
  Host b_;
};

// --- Ethernet / ARP ---

class EthernetTest : public NetPairTest {};

TEST_F(EthernetTest, ArpResolutionOnDemand) {
  // Fresh host with an empty cache.
  Host c(net_, clock_, MacAddr{0xCC}, Ipv4Addr::FromOctets(10, 0, 0, 3));
  auto sock = c.udp.Bind(1000);
  ASSERT_TRUE(sock.ok());
  auto bsock = b_.udp.Bind(2000);
  ASSERT_TRUE(bsock.ok());

  Buffer payload = Buffer::Allocate(c.alloc, 5);
  std::memcpy(payload.mutable_data(), "hello", 5);
  // ARP miss: packet queued, request broadcast; reply flushes it.
  ASSERT_EQ(c.udp.SendTo(**sock, SocketAddress{b_.eth.local_ip(), 2000}, payload), Status::kOk);
  EXPECT_EQ(c.eth.stats().arp_requests_sent, 1u);

  bool got = false;
  for (int i = 0; i < 1000 && !got; i++) {
    clock_.Advance(2 * kMicrosecond);
    a_.eth.PollOnce();
    b_.eth.PollOnce();
    c.eth.PollOnce();
    got = (*bsock)->HasData();
  }
  ASSERT_TRUE(got);
  auto d = (*bsock)->PopDatagram();
  EXPECT_EQ(std::memcmp(d->payload.data(), "hello", 5), 0);
  // And c learned the mapping.
  EXPECT_TRUE(c.eth.arp().Lookup(b_.eth.local_ip()).has_value());
}

// --- UDP ---

class UdpTest : public NetPairTest {};

TEST_F(UdpTest, DatagramRoundTrip) {
  auto sa = a_.udp.Bind(5000);
  auto sb = b_.udp.Bind(6000);
  ASSERT_TRUE(sa.ok() && sb.ok());
  Buffer payload = Buffer::Allocate(a_.alloc, 64);
  std::memset(payload.mutable_data(), 0x42, 64);
  ASSERT_EQ(a_.udp.SendTo(**sa, SocketAddress{b_.eth.local_ip(), 6000}, payload), Status::kOk);
  ASSERT_TRUE(RunUntil([&] { return (*sb)->HasData(); }));
  auto d = (*sb)->PopDatagram();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload.size(), 64u);
  EXPECT_EQ(d->src.port, 5000);
  EXPECT_EQ(d->src.ip, a_.eth.local_ip());
}

TEST_F(UdpTest, EphemeralPortsAreDistinct) {
  auto s1 = a_.udp.Bind(0);
  auto s2 = a_.udp.Bind(0);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE((*s1)->local_port(), (*s2)->local_port());
}

TEST_F(UdpTest, BindConflictRejected) {
  auto s1 = a_.udp.Bind(700);
  ASSERT_TRUE(s1.ok());
  auto s2 = a_.udp.Bind(700);
  EXPECT_EQ(s2.error(), Status::kAddressInUse);
}

TEST_F(UdpTest, OversizeDatagramRejected) {
  auto sa = a_.udp.Bind(0);
  Buffer big = Buffer::Allocate(a_.alloc, 2000);  // > MTU budget
  EXPECT_EQ(a_.udp.SendTo(**sa, SocketAddress{b_.eth.local_ip(), 1}, big),
            Status::kMessageTooLong);
}

TEST_F(UdpTest, NoSocketCountsDrop) {
  auto sa = a_.udp.Bind(0);
  Buffer p = Buffer::Allocate(a_.alloc, 8);
  std::memset(p.mutable_data(), 0, 8);
  ASSERT_EQ(a_.udp.SendTo(**sa, SocketAddress{b_.eth.local_ip(), 9999}, p), Status::kOk);
  RunUntil([&] { return b_.udp.stats().rx_no_socket > 0; }, 10000);
  EXPECT_EQ(b_.udp.stats().rx_no_socket, 1u);
}

// --- TCP: clean-network behaviour ---

class TcpCleanTest : public NetPairTest {};

TEST_F(TcpCleanTest, ThreeWayHandshake) {
  auto [client, server] = EstablishPair();
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  EXPECT_EQ(server->remote().ip, a_.eth.local_ip());
}

TEST_F(TcpCleanTest, SmallDataRoundTrip) {
  auto [client, server] = EstablishPair();
  EXPECT_EQ(Transfer(client, server, "ping"), "ping");
  EXPECT_EQ(Transfer(server, client, "pong!"), "pong!");
}

TEST_F(TcpCleanTest, LargeTransferSegmentsAndReassembles) {
  auto [client, server] = EstablishPair();
  std::string data(256 * 1024, 0);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(i * 131 + 17);
  }
  EXPECT_EQ(Transfer(client, server, data), data);
  EXPECT_GT(client->conn_stats().segments_sent, data.size() / 1500);
}

TEST_F(TcpCleanTest, MssNegotiatedFromMtu) {
  auto [client, server] = EstablishPair();
  std::string data(10000, 'm');
  Transfer(client, server, data);
  // No segment may exceed the MTU: verified implicitly (SimNic rejects oversize), and multiple
  // segments must have been used.
  EXPECT_GE(client->conn_stats().segments_sent, 10000u / 1460u);
}

TEST_F(TcpCleanTest, ConnectionRefusedWithoutListener) {
  auto client = a_.tcp.Connect(SocketAddress{b_.eth.local_ip(), 12345});
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(RunUntil([&] { return (*client)->state() == TcpState::kClosed; }));
  EXPECT_EQ((*client)->error(), Status::kConnectionRefused);
  EXPECT_EQ(b_.tcp.stats().rst_sent, 1u);
}

TEST_F(TcpCleanTest, GracefulCloseBothSides) {
  auto [client, server] = EstablishPair();
  Transfer(client, server, "bye");
  EXPECT_EQ(client->Close(), Status::kOk);
  ASSERT_TRUE(RunUntil([&] { return server->EndOfStream(); }));
  EXPECT_EQ(server->state(), TcpState::kCloseWait);
  EXPECT_EQ(server->Close(), Status::kOk);
  ASSERT_TRUE(RunUntil([&] {
    return server->state() == TcpState::kClosed && client->state() == TcpState::kClosed;
  }));
  EXPECT_EQ(client->error(), Status::kOk);
  EXPECT_EQ(server->error(), Status::kOk);
}

TEST_F(TcpCleanTest, DataBeforeFinIsDelivered) {
  auto [client, server] = EstablishPair();
  void* app = a_.alloc.Alloc(2048);
  std::memset(app, 'd', 2048);
  Buffer buf = Buffer::FromApp(a_.alloc, app, 2048);
  ASSERT_EQ(client->Push(std::move(buf)), Status::kOk);
  ASSERT_EQ(client->Close(), Status::kOk);  // FIN queued right behind the data
  std::string received;
  ASSERT_TRUE(RunUntil([&] {
    while (auto chunk = server->PopData()) {
      received.append(reinterpret_cast<const char*>(chunk->data()), chunk->size());
    }
    return server->EndOfStream();
  }));
  EXPECT_EQ(received.size(), 2048u);
  a_.alloc.Free(app);
}

TEST_F(TcpCleanTest, PushAfterCloseRejected) {
  auto [client, server] = EstablishPair();
  ASSERT_EQ(client->Close(), Status::kOk);
  Buffer b = Buffer::Allocate(a_.alloc, 16);
  std::memset(b.mutable_data(), 0, 16);
  EXPECT_EQ(client->Push(std::move(b)), Status::kInvalidArgument);
}

TEST_F(TcpCleanTest, AbortSendsRst) {
  auto [client, server] = EstablishPair();
  client->Abort();
  ASSERT_TRUE(RunUntil([&] { return server->state() == TcpState::kClosed; }));
  EXPECT_EQ(server->error(), Status::kConnectionReset);
}

TEST_F(TcpCleanTest, ListenerBacklogBounded) {
  auto listener = b_.tcp.Listen(80, 2);
  ASSERT_TRUE(listener.ok());
  std::vector<std::shared_ptr<TcpConnection>> clients;
  for (int i = 0; i < 5; i++) {
    auto c = a_.tcp.Connect(SocketAddress{b_.eth.local_ip(), 80});
    ASSERT_TRUE(c.ok());
    clients.push_back(*c);
  }
  RunUntil([&] { return false; }, 3000);  // let the dust settle
  size_t established = 0;
  for (auto& c : clients) {
    if (c->state() == TcpState::kEstablished) {
      established++;
    }
  }
  EXPECT_LE(established, 2u);
}

TEST_F(TcpCleanTest, UafProtectionHoldsUnackedBuffers) {
  // The marquee zero-copy scenario (§5.3): app pushes, immediately frees; memory must survive
  // until the data is acked, then recycle cleanly.
  auto [client, server] = EstablishPair();
  void* app = a_.alloc.Alloc(4096);
  std::memset(app, 0x77, 4096);
  Buffer buf = Buffer::FromApp(a_.alloc, app, 4096);
  ASSERT_EQ(client->Push(std::move(buf)), Status::kOk);
  a_.alloc.Free(app);  // app frees immediately after push — the Redis pattern
  EXPECT_GE(a_.alloc.GetStats().deferred_frees, 1u);

  std::string received;
  ASSERT_TRUE(RunUntil([&] {
    while (auto chunk = server->PopData()) {
      received.append(reinterpret_cast<const char*>(chunk->data()), chunk->size());
    }
    return received.size() == 4096;
  }));
  for (char c : received) {
    ASSERT_EQ(static_cast<uint8_t>(c), 0x77);
  }
  // Once acked, all libOS refs drop and the deferred free completes.
  ASSERT_TRUE(RunUntil([&] { return a_.alloc.GetStats().deferred_frees == 0; }));
}

TEST_F(TcpCleanTest, ReapDestroysClosedReleasedConnections) {
  auto [client, server] = EstablishPair();
  ASSERT_EQ(client->Close(), Status::kOk);
  ASSERT_EQ(server->Close(), Status::kOk);
  ASSERT_TRUE(RunUntil([&] {
    return client->state() == TcpState::kClosed && server->state() == TcpState::kClosed;
  }));
  client->ReleaseByApp();
  server->ReleaseByApp();
  a_.tcp.Reap();
  b_.tcp.Reap();
  EXPECT_EQ(a_.tcp.NumConnections(), 0u);
  EXPECT_EQ(b_.tcp.NumConnections(), 0u);
}

// --- TCP under adverse networks ---

class TcpLossyTest : public NetPairTest {
 protected:
  TcpLossyTest()
      : NetPairTest(LinkConfig{.loss = 0.05}, /*seed=*/1234) {}
};

TEST_F(TcpLossyTest, HandshakeSurvivesLoss) {
  auto [client, server] = EstablishPair();
  EXPECT_EQ(client->state(), TcpState::kEstablished);
}

TEST_F(TcpLossyTest, RetransmissionRecoversData) {
  auto [client, server] = EstablishPair();
  std::string data(64 * 1024, 0);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(i % 251);
  }
  EXPECT_EQ(Transfer(client, server, data), data);
  EXPECT_GT(client->conn_stats().retransmits + client->conn_stats().fast_retransmits, 0u);
}

class TcpReorderTest : public NetPairTest {
 protected:
  TcpReorderTest()
      : NetPairTest(LinkConfig{.reorder = 0.2, .reorder_extra = 30 * kMicrosecond},
                    /*seed=*/77) {}
};

TEST_F(TcpReorderTest, ReassemblyRestoresOrder) {
  auto [client, server] = EstablishPair();
  std::string data(128 * 1024, 0);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>((i / 3) % 256);
  }
  EXPECT_EQ(Transfer(client, server, data), data);
  EXPECT_GT(server->conn_stats().out_of_order, 0u);
}

class TcpDuplicateTest : public NetPairTest {
 protected:
  TcpDuplicateTest() : NetPairTest(LinkConfig{.duplicate = 0.1}, /*seed=*/5) {}
};

TEST_F(TcpDuplicateTest, DuplicatesAreDiscarded) {
  auto [client, server] = EstablishPair();
  std::string data(32 * 1024, 0);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(255 - (i % 256));
  }
  EXPECT_EQ(Transfer(client, server, data), data);
}

// Property sweep: integrity across loss rates (parameterized per the repro instructions).
class TcpLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweep, DataIntegrityUnderLoss) {
  const double loss = GetParam();
  VirtualClock clock;
  SimNetwork net(LinkConfig{.loss = loss}, /*seed=*/static_cast<uint64_t>(loss * 1000) + 3);
  Host a(net, clock, MacAddr{0xA1}, Ipv4Addr::FromOctets(10, 1, 0, 1));
  Host b(net, clock, MacAddr{0xB1}, Ipv4Addr::FromOctets(10, 1, 0, 2));
  a.eth.arp().Insert(b.eth.local_ip(), MacAddr{0xB1});
  b.eth.arp().Insert(a.eth.local_ip(), MacAddr{0xA1});

  auto step = [&] {
    size_t activity = a.eth.PollOnce() + b.eth.PollOnce() + a.sched.Poll() + b.sched.Poll();
    if (activity == 0) {
      TimeNs next = 0;
      for (TimeNs t : {net.NextDeliveryTime(), a.sched.NextTimerDeadline(),
                       b.sched.NextTimerDeadline()}) {
        if (t != 0 && (next == 0 || t < next)) {
          next = t;
        }
      }
      if (next > clock.Now()) {
        clock.SetTime(next);
      } else {
        clock.Advance(kMicrosecond);
      }
    }
  };

  auto listener = b.tcp.Listen(99, 8);
  ASSERT_TRUE(listener.ok());
  auto client = a.tcp.Connect(SocketAddress{b.eth.local_ip(), 99});
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 300000 && !(*listener)->HasPending(); i++) {
    step();
  }
  ASSERT_TRUE((*listener)->HasPending()) << "handshake failed at loss=" << loss;
  auto server = (*listener)->Accept();

  std::string data(40 * 1024, 0);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>(i * 31 % 256);
  }
  void* app = a.alloc.Alloc(data.size());
  std::memcpy(app, data.data(), data.size());
  ASSERT_EQ((*client)->Push(Buffer::FromApp(a.alloc, app, data.size())), Status::kOk);

  std::string received;
  for (int i = 0; i < 600000 && received.size() < data.size(); i++) {
    step();
    while (auto chunk = server->PopData()) {
      received.append(reinterpret_cast<const char*>(chunk->data()), chunk->size());
    }
  }
  EXPECT_EQ(received, data) << "corruption or stall at loss=" << loss;
  a.alloc.Free(app);
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep, ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.2));

// --- Determinism: identical seeds and virtual time must give identical protocol behaviour ---

TEST(TcpDeterminismTest, IdenticalRunsProduceIdenticalStats) {
  auto run = [](uint64_t seed) -> std::pair<uint64_t, uint64_t> {
    VirtualClock clock;
    SimNetwork net(LinkConfig{.loss = 0.08}, seed);
    Host a(net, clock, MacAddr{0xA2}, Ipv4Addr::FromOctets(10, 2, 0, 1));
    Host b(net, clock, MacAddr{0xB2}, Ipv4Addr::FromOctets(10, 2, 0, 2));
    a.eth.arp().Insert(b.eth.local_ip(), MacAddr{0xB2});
    b.eth.arp().Insert(a.eth.local_ip(), MacAddr{0xA2});
    auto listener = b.tcp.Listen(5, 4);
    auto client = a.tcp.Connect(SocketAddress{b.eth.local_ip(), 5});
    auto step = [&] {
      if (a.eth.PollOnce() + b.eth.PollOnce() + a.sched.Poll() + b.sched.Poll() == 0) {
        TimeNs next = 0;
        for (TimeNs t : {net.NextDeliveryTime(), a.sched.NextTimerDeadline(),
                         b.sched.NextTimerDeadline()}) {
          if (t != 0 && (next == 0 || t < next)) {
            next = t;
          }
        }
        if (next > clock.Now()) {
          clock.SetTime(next);
        } else {
          clock.Advance(kMicrosecond);
        }
      }
    };
    for (int i = 0; i < 200000 && !(*listener)->HasPending(); i++) {
      step();
    }
    auto server = (*listener)->Accept();
    std::string data(120000, 'd');
    void* app = a.alloc.Alloc(data.size());
    std::memcpy(app, data.data(), data.size());
    EXPECT_EQ((*client)->Push(Buffer::FromApp(a.alloc, app, data.size())), Status::kOk);
    size_t got = 0;
    for (int i = 0; i < 400000 && got < data.size(); i++) {
      step();
      while (auto c = server->PopData()) {
        got += c->size();
      }
    }
    a.alloc.Free(app);
    return {(*client)->conn_stats().segments_sent,
            (*client)->conn_stats().retransmits + (*client)->conn_stats().fast_retransmits};
  };
  auto r1 = run(42);
  auto r2 = run(42);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(r1.second, 0u);  // the scenario actually exercised retransmission
}

}  // namespace
}  // namespace demi
