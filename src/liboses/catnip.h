// Catnip: the DPDK library OS (paper §6.3), here over the simulated poll-mode NIC.
//
// Implements PDPIX over the full userspace UDP/TCP stacks. A single fast-path coroutine polls
// the NIC (and, when a disk is attached, the storage completion queue — the Catnip×Cattree
// round-robin split of §5.5); pop/accept/connect allocate blocked coroutines only when the
// data isn't already available, and push transmits inline run-to-completion.
//
// Constructing with a SimBlockDevice yields the integrated Catnip×Cattree libOS: network
// sockets and storage queues share one scheduler and one DMA heap, enabling the paper's
// NIC→app→disk run-to-completion path without copies or thread switches.

#ifndef SRC_LIBOSES_CATNIP_H_
#define SRC_LIBOSES_CATNIP_H_

#include <deque>
#include <memory>
#include <unordered_map>

#include "src/core/libos.h"
#include "src/liboses/storage_queue_engine.h"
#include "src/net/ethernet.h"
#include "src/net/tcp/tcp.h"
#include "src/net/udp.h"
#include "src/netsim/sim_network.h"

namespace demi {

class Catnip final : public LibOS {
 public:
  struct Config {
    MacAddr mac;
    Ipv4Addr ip;
    TcpConfig tcp;
    // Attach a disk to get the integrated Catnip×Cattree libOS.
    SimBlockDevice* disk = nullptr;
    // NIC checksum offload (default on, as DPDK deployments configure); off = software
    // checksums (ablation).
    bool checksum_offload = true;
    // Frames the fast path drains from the NIC per scheduler round (DPDK rx_burst nb_pkts);
    // 1 reproduces the pre-batching frame-per-poll datapath for ablation.
    size_t rx_burst_frames = EthernetLayer::kDefaultRxBurst;
    // Reap closed TCP state every N fast-path iterations.
    uint32_t reap_interval = 1024;
    // --- Sharding (paper §7 multi-worker mode; see src/core/shard_group.h) ---
    // Total shared-nothing workers the NIC splits flows across: the owned NIC is created with
    // this many RSS queue pairs. 1 (the default) is the classic single-threaded libOS.
    size_t num_workers = 1;
    // The RSS queue pair this instance polls and transmits on; each worker owns exactly one.
    size_t queue_id = 0;
    // When set, this instance attaches to an existing multi-queue NIC instead of creating its
    // own — how ShardGroup gives every worker the same port. The NIC must outlive the libOS.
    SimNic* shared_nic = nullptr;
    // --- Storage partitioning (multi-worker Catnip×Cattree; docs/STORAGE.md) ---
    // The log partition this shard's storage engine owns. The default is the whole device (the
    // classic single-worker layout); ShardGroup assigns each worker its PartitionedLog range.
    LogPartition disk_partition{};
    // Allocation epoch shared across every partition of `disk` (owned by PartitionedLog). When
    // set, the device is multi-owner: this instance must not attach its tracer to it.
    std::atomic<uint64_t>* log_epoch = nullptr;
    // Rebuild the log's head/tail from the media at construction (the restart/recovery path).
    bool recover_log = false;
  };

  Catnip(SimNetwork& network, const Config& config, Clock& clock);
  ~Catnip() override;

  // --- PDPIX ---
  Result<QueueDesc> Socket(SocketType type) override;
  [[nodiscard]] Status Bind(QueueDesc qd, SocketAddress local) override;
  [[nodiscard]] Status Listen(QueueDesc qd, int backlog) override;
  Result<QToken> Accept(QueueDesc qd) override;
  Result<QToken> Connect(QueueDesc qd, SocketAddress remote) override;
  [[nodiscard]] Status Close(QueueDesc qd) override;
  Result<QueueDesc> Open(std::string_view path) override;
  [[nodiscard]] Status Seek(QueueDesc qd, uint64_t offset) override;
  [[nodiscard]] Status Truncate(QueueDesc qd, uint64_t offset) override;
  Result<QueueDesc> MemoryQueue() override;
  Result<QToken> Push(QueueDesc qd, const Sgarray& sga) override;
  Result<QToken> PushTo(QueueDesc qd, const Sgarray& sga, SocketAddress to) override;
  Result<QToken> Pop(QueueDesc qd) override;
  // Zero-copy splice (docs/STORAGE.md): TCP→file pops registered Buffer views off the
  // connection and gather-DMAs them into the log (pipelined: the next batch is popped while
  // the previous one is in flight on the disk); file→TCP reads each record into one pool
  // allocation and pushes the payload view into the connection. Requires the integrated
  // Catnip×Cattree build (a disk) and a (kTcpConn, kFile) queue pair in either order.
  Result<QToken> Splice(QueueDesc src_qd, QueueDesc dst_qd) override;
  // Assigns a queue to an isolation domain: its qtokens, buffers, and TX frames are charged to
  // that tenant, and accepted connections inherit the listener's tenant.
  [[nodiscard]] Status SetQueueTenant(QueueDesc qd, TenantId tenant) override;

  // DemiSan thread-affinity: the common tags (heap, qtoken table) plus Catnip's shard-local
  // TCP state (flow table, TCB slab). See LibOS::BindShardAffinity.
  void BindShardAffinity(int shard_id) override {
    LibOS::BindShardAffinity(shard_id);
    tcp_.BindShard(shard_id);
  }
  void UnbindShardAffinity() override {
    tcp_.UnbindShard();
    LibOS::UnbindShardAffinity();
  }

  // --- Introspection ---
  EthernetLayer& ethernet() { return eth_; }
  TcpStack& tcp() { return tcp_; }
  UdpStack& udp() { return udp_; }
  SimNic& nic() { return nic_; }
  Ipv4Addr local_ip() const { return eth_.local_ip(); }
  bool has_storage() const { return storage_ != nullptr; }
  // Null unless constructed with a disk; chaos tests use this to tune the log retry policy.
  StorageQueueEngine* storage() { return storage_.get(); }

 private:
  struct MemChannel {
    std::deque<Buffer> items;
    Event readable;
    bool closed = false;
  };

  // One in-flight unit of a TCP→disk splice: the popped views travel to the log untouched.
  struct SpliceBatch {
    std::vector<Buffer> views;
    size_t bytes = 0;
  };

  // Shared between the popper (producer) and appender (consumer) coroutines of one splice op.
  // The bounded batch queue is the pipeline: while the appender awaits disk durability for one
  // batch, the producer keeps draining the connection, so disk latency overlaps transmission.
  struct SpliceState {
    std::deque<SpliceBatch> batches;
    Event batch_ready;
    Event batch_space;
    Event appender_finished;
    bool producer_done = false;
    bool appender_done = false;
    Status status = Status::kOk;
    uint64_t bytes = 0;    // durable payload bytes
    uint64_t records = 0;  // log records written
  };

  // Batch sizing: bytes stay under the largest pooled size class even after MSS rounding and
  // block alignment (so the reverse ReadZc span allocation recycles, keeping the heap flat)
  // and slices stay under the device SGL limit (so AppendSg never has to flatten —
  // splice.bounce_bytes == 0 on the happy path). 48 kB also amortizes the device's per-op
  // write latency enough that the append pipeline outruns a 10 Gbps wire.
  static constexpr size_t kSpliceBatchBytes = 48 * 1024;
  static constexpr size_t kSpliceBatchMaxSlices = 64;
  static constexpr size_t kSpliceMaxQueuedBatches = 8;
  // disk→net backpressure: pause reads while the connection's send backlog is above this.
  static constexpr size_t kSpliceTxHighWater = 256 * 1024;

  struct SpliceStats {
    uint64_t ops = 0;     // completed splice operations
    uint64_t active = 0;  // currently running splice operations
    uint64_t bytes = 0;   // payload bytes moved end to end
    uint64_t records = 0; // log records written or read on behalf of splices
  };

  enum class QKind : uint8_t {
    kTcpUnbound,  // Socket(kStream) before listen/connect
    kTcpListener,
    kTcpConn,
    kUdp,
    kFile,
    kMemory,
  };

  struct QueueState {
    QKind kind = QKind::kTcpUnbound;
    bool closing = false;
    TenantId tenant = kDefaultTenant;
    int waiters = 0;  // blocked op coroutines touching events owned by this queue
    SocketAddress bound{};
    bool has_bound = false;
    TcpListener* listener = nullptr;
    std::shared_ptr<TcpConnection> conn;
    UdpStack::Socket* udp = nullptr;
    SocketAddress udp_default_remote{};
    bool udp_connected = false;
    uint64_t file_cursor = 0;
    std::shared_ptr<MemChannel> mem;
  };

  QueueState* Find(QueueDesc qd);
  QueueDesc NewQd() { return next_qd_++; }
  // Load shedding at submission: true (and counted/traced) when the tenant is over its
  // inflight-qtoken watermark; the caller returns kQueueFull without allocating a qtoken.
  bool ShedOp(TenantId tenant);
  void OnTenantRegistered(TenantId tenant, const TenantConfig& config) override;
  QueueDesc InstallConnQueue(std::shared_ptr<TcpConnection> conn);
  void FinishClose(QueueDesc qd, QueueState& q);

  // Op coroutines.
  Task<void> FastPathFiber();
  Task<void> AcceptOp(QueueDesc qd, QToken qt);
  Task<void> ConnectOp(QueueDesc qd, QToken qt, std::shared_ptr<TcpConnection> conn);
  Task<void> PopTcpOp(QueueDesc qd, QToken qt, std::shared_ptr<TcpConnection> conn);
  Task<void> PopUdpOp(QueueDesc qd, QToken qt);
  Task<void> PopMemOp(QueueDesc qd, QToken qt, std::shared_ptr<MemChannel> mem);
  Task<void> SpliceNetToDiskOp(QueueDesc src_qd, QToken qt,
                               std::shared_ptr<TcpConnection> conn,
                               std::shared_ptr<SpliceState> st);
  Task<void> SpliceAppendFiber(std::shared_ptr<SpliceState> st);
  Task<void> SpliceDiskToNetOp(QueueDesc src_qd, QToken qt,
                               std::shared_ptr<TcpConnection> conn, uint64_t cursor);

  // Completes a TCP pop from ready data (fast path and coroutine tail share this).
  void CompleteTcpPop(QToken qt, QueueDesc qd, TcpConnection& conn);

  std::unique_ptr<SimNic> owned_nic_;  // null when Config::shared_nic is used
  SimNic& nic_;
  EthernetLayer eth_;
  UdpStack udp_;
  TcpStack tcp_;
  std::unique_ptr<StorageQueueEngine> storage_;
  SimBlockDevice* disk_ = nullptr;  // external device: tracer detached at destruction
  std::unordered_map<QueueDesc, QueueState> queues_;
  std::deque<QueueDesc> deferred_close_;
  uint32_t reap_interval_ = 1024;
  bool shutdown_ = false;
  SpliceStats splice_stats_;
};

}  // namespace demi

#endif  // SRC_LIBOSES_CATNIP_H_
