// Deterministic pseudo-random generators for workloads and the simulated fabric.
//
// The fabric's loss/reorder decisions and the YCSB key-popularity distribution must be
// reproducible across runs, so everything takes an explicitly seeded generator rather than
// touching global randomness.

#ifndef SRC_COMMON_RANDOM_H_
#define SRC_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace demi {

// xoshiro256** — fast, good-quality, 64-bit state PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool NextBool(double probability) { return NextDouble() < probability; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

// Zipfian key distribution (YCSB-style) over [0, n). Uses the Gray/Jim-Gray rejection-free
// formulation with precomputed constants; theta defaults to YCSB's 0.99.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n >= 1);
    zetan_ = Zeta(n_, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const double v = static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
    uint64_t k = static_cast<uint64_t>(v);
    return k >= n_ ? n_ - 1 : k;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; i++) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace demi

#endif  // SRC_COMMON_RANDOM_H_
