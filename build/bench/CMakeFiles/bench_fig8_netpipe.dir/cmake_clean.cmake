file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_netpipe.dir/bench_fig8_netpipe.cc.o"
  "CMakeFiles/bench_fig8_netpipe.dir/bench_fig8_netpipe.cc.o.d"
  "bench_fig8_netpipe"
  "bench_fig8_netpipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_netpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
