// Bulk zero-copy transfer over Catnip TCP into a Cattree log: the sender pushes a file as large
// sgarray segments; the receiver splices the connection straight into its log partition
// (demi_splice semantics — no payload memcpy between the NIC rx path and the disk's gather DMA).
// Shows MSS segmentation, Cubic congestion-window growth, the splice batch pipeline overlapping
// disk appends with reception, and the heap's UAF protection holding buffers until acked.
//
// Default: 8 MB, prints goodput. `--check`: 64 MB self-check mode — asserts the receiver heap
// stays flat across the transfer (zero-copy means no per-byte allocations), that the log never
// bounced a payload byte host-side, and that the log readback is byte-exact.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/liboses/catnip.h"
#include "src/storage/sim_block_device.h"

int main(int argc, char** argv) {
  using namespace demi;

  const bool check = argc > 1 && std::string(argv[1]) == "--check";
  const size_t kFileSize = (check ? 64 : 8) * 1024 * 1024;
  constexpr size_t kChunk = 64 * 1024;

  MonotonicClock clock;
  SimNetwork network(LinkConfig{}, 13);
  SimBlockDevice::Config disk_cfg;
  disk_cfg.num_blocks = (kFileSize + kFileSize / 2) / disk_cfg.block_size;  // 1.5x for headers
  SimBlockDevice disk(disk_cfg, clock);
  const Ipv4Addr tx_ip = Ipv4Addr::FromOctets(10, 0, 0, 1);
  const Ipv4Addr rx_ip = Ipv4Addr::FromOctets(10, 0, 0, 2);
  Catnip sender(network, Catnip::Config{MacAddr{0x1}, tx_ip, TcpConfig{}, nullptr}, clock);
  Catnip receiver(network, Catnip::Config{MacAddr{0x2}, rx_ip, TcpConfig{}, &disk}, clock);

  // Receiver: bind, listen, arm an accept.
  auto listen_sock = receiver.Socket(SocketType::kStream);
  if (receiver.Bind(*listen_sock, {rx_ip, 9090}) != Status::kOk ||
      receiver.Listen(*listen_sock, 4) != Status::kOk) {
    std::fprintf(stderr, "listen failed\n");
    return 1;
  }
  auto accept_qt = receiver.Accept(*listen_sock);

  // Duet: each side's waits pump the other (PollOnce is non-blocking, so this can't recurse).
  sender.SetExternalPump([&] { receiver.PollOnce(); });
  receiver.SetExternalPump([&] { sender.PollOnce(); });

  auto sock = sender.Socket(SocketType::kStream);
  auto connect_qt = sender.Connect(*sock, {rx_ip, 9090});
  auto conn = sender.Wait(*connect_qt);
  if (!conn.ok() || conn->status != Status::kOk) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  // The server-side accept completes when the handshake's final ACK lands; pump until then.
  while (!receiver.IsDone(*accept_qt)) {
    receiver.PollOnce();
    sender.PollOnce();
  }
  auto accepted = receiver.TryTake(*accept_qt);
  if (!accepted.ok() || accepted->status != Status::kOk) {
    std::fprintf(stderr, "accept failed\n");
    return 1;
  }

  // Receiver: splice the connection into the log — every popped view goes to the disk's gather
  // DMA untouched; the appender fiber overlaps disk latency with continued reception.
  auto file_qd = receiver.Open("transfer");
  auto splice_qt = receiver.Splice(accepted->new_qd, *file_qd);
  if (!file_qd.ok() || !splice_qt.ok()) {
    std::fprintf(stderr, "splice setup failed\n");
    return 1;
  }

  const TimeNs start = clock.Now();
  size_t pushed = 0;
  size_t reserved_after_warmup = 0;
  constexpr size_t kPipelineSlack = 2 * 1024 * 1024;
  for (size_t off = 0; off < kFileSize; off += kChunk) {
    void* c = sender.DmaMalloc(kChunk);
    if (c == nullptr) {
      std::fprintf(stderr, "sender heap exhausted at %zu MB\n", off >> 20);
      return 1;
    }
    std::memset(c, static_cast<int>((off / kChunk) & 0xFF), kChunk);
    auto push = sender.Push(*sock, Sgarray::Of(c, kChunk));
    sender.DmaFree(c);  // UAF protection: the stack holds each chunk until acked
    if (!push.ok()) {
      std::fprintf(stderr, "push failed at %zu MB\n", off >> 20);
      return 1;
    }
    pushed += kChunk;
    // Pace the producer against the splice: run both stacks until the log has absorbed all but
    // a pipeline's worth of what we pushed. This is what overlaps disk appends with
    // transmission (and bounds every queue in between).
    while (receiver.storage()->log().tail() + kPipelineSlack < pushed) {
      sender.PollOnce();
      receiver.PollOnce();
    }
    // Snapshot the receiver heap once the splice pipeline is warmed up (pools populated, batch
    // ring full); zero-copy means it must not grow past this point however much more we stream.
    if (reserved_after_warmup == 0 && pushed >= kFileSize / 4) {
      reserved_after_warmup = receiver.allocator().GetStats().bytes_reserved;
    }
  }
  if (sender.Close(*sock) != Status::kOk) {  // FIN: the splice completes at end of stream
    std::fprintf(stderr, "close failed\n");
    return 1;
  }

  auto spliced = receiver.Wait(*splice_qt, 30 * kSecond);
  if (!spliced.ok() || spliced->status != Status::kOk || spliced->bytes != kFileSize) {
    std::fprintf(stderr, "splice failed (status %d, %llu bytes)\n",
                 spliced.ok() ? static_cast<int>(spliced->status) : -1,
                 spliced.ok() ? static_cast<unsigned long long>(spliced->bytes) : 0ULL);
    return 1;
  }
  const DurationNs elapsed = clock.Now() - start;

  const auto& log_stats = receiver.storage()->log().stats();
  const double gbps = static_cast<double>(kFileSize) * 8.0 / static_cast<double>(elapsed);
  std::printf("spliced %zu MB net->disk in %.2f ms: %.2f Gbps goodput\n", kFileSize >> 20,
              static_cast<double>(elapsed) / 1e6, gbps);
  std::printf("sender sent %llu TCP segments; log wrote %llu SG records, bounced %llu bytes\n",
              static_cast<unsigned long long>(sender.tcp().stats().segments_tx),
              static_cast<unsigned long long>(log_stats.sg_appends),
              static_cast<unsigned long long>(log_stats.bounce_bytes));

  if (!check) {
    return 0;
  }

  // --check: the zero-copy claims, verified.
  const size_t reserved_at_end = receiver.allocator().GetStats().bytes_reserved;
  if (reserved_at_end != reserved_after_warmup) {
    std::fprintf(stderr, "FAIL: receiver heap grew %zu -> %zu bytes across the transfer\n",
                 reserved_after_warmup, reserved_at_end);
    return 1;
  }
  if (log_stats.bounce_bytes != 0) {
    std::fprintf(stderr, "FAIL: %llu payload bytes were flattened host-side\n",
                 static_cast<unsigned long long>(log_stats.bounce_bytes));
    return 1;
  }

  // Byte-exact log readback: a fresh cursor over the same log must replay the file exactly.
  auto replay_qd = receiver.Open("transfer");
  size_t verified = 0;
  while (verified < kFileSize) {
    auto pop = receiver.Pop(*replay_qd);
    auto r = receiver.Wait(*pop, 10 * kSecond);
    if (!r.ok() || r->status != Status::kOk) {
      std::fprintf(stderr, "FAIL: log readback ended early at %zu/%zu bytes\n", verified,
                   kFileSize);
      return 1;
    }
    for (uint32_t i = 0; i < r->sga.num_segs; i++) {
      const uint8_t* p = static_cast<const uint8_t*>(r->sga.segs[i].buf);
      for (uint32_t b = 0; b < r->sga.segs[i].len; b++) {
        const uint8_t want = static_cast<uint8_t>(((verified + b) / kChunk) & 0xFF);
        if (p[b] != want) {
          std::fprintf(stderr, "FAIL: byte %zu: got 0x%02x want 0x%02x\n", verified + b, p[b],
                       want);
          return 1;
        }
      }
      verified += r->sga.segs[i].len;
    }
    receiver.FreeSga(r->sga);
  }
  std::printf("check OK: flat heap (%zu bytes reserved), zero bounce, byte-exact readback\n",
              reserved_at_end);
  return 0;
}
