// Buffer: the libOS-side zero-copy handle onto heap objects.
//
// A Buffer is a (base, offset, length) view of an allocator object plus one libOS reference on
// it. Copying a Buffer takes another reference; destruction drops one. TCP keeps Buffers for
// unacked segments, so application data stays pinned (UAF protection) until the receiver acks
// (paper §5.3). Views support slicing without copying, which the TCP send ring uses to cut
// application pushes into MSS-sized segments.
//
// Buffers below PoolAllocator::kZeroCopyThreshold are *copied* out of application memory instead
// of referenced — zero-copy only pays off above ~1 kB (paper §5.3) — in which case the libOS
// owns a private object outright.

#ifndef SRC_MEMORY_BUFFER_H_
#define SRC_MEMORY_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "src/common/logging.h"
#include "src/memory/pool_allocator.h"

namespace demi {

class Buffer {  // demilint: shard-local
 public:
  Buffer() = default;

  // Wraps application memory handed to the libOS by push(). Takes a libOS reference above the
  // zero-copy threshold; copies below it. `ptr` must lie in `alloc`'s heap for the zero-copy
  // path (PDPIX requires all I/O memory to come from the DMA-capable heap). Returns an invalid
  // Buffer (!valid()) if the heap is exhausted — datapath callers surface kNoMemory instead of
  // aborting. `tenant` names the isolation domain doing the push: the zero-copy path verifies
  // the object belongs to it (DemiSan cross-tenant abort), the copy path charges its budget.
  static Buffer TryFromApp(PoolAllocator& alloc, const void* ptr, size_t len,
                           TenantId tenant = kDefaultTenant) {
    if (len >= PoolAllocator::kZeroCopyThreshold && alloc.Owns(ptr)) {
      alloc.AssertTenantAccess(ptr, tenant, "push of another tenant's buffer");
      void* base = const_cast<void*>(ptr);
      alloc.IncRef(base);
      return Buffer(&alloc, base, 0, len, /*owned=*/false);
    }
    void* copy = alloc.AllocFor(len == 0 ? 1 : len, tenant);
    if (copy == nullptr) {
      return Buffer();
    }
    std::memcpy(copy, ptr, len);
    alloc.IncRef(copy);
    return Buffer(&alloc, copy, 0, len, /*owned=*/true);
  }

  // As TryFromApp, but heap exhaustion is a fatal invariant violation (control-path callers).
  static Buffer FromApp(PoolAllocator& alloc, const void* ptr, size_t len) {
    Buffer b = TryFromApp(alloc, ptr, len);
    DEMI_CHECK(b.valid());
    return b;
  }

  // Allocates a fresh libOS-owned buffer (e.g., for incoming packet payloads), charged to
  // `tenant`'s memory budget. Returns an invalid Buffer (!valid()) if the heap is exhausted
  // or the tenant is over budget.
  static Buffer TryAllocate(PoolAllocator& alloc, size_t len, TenantId tenant = kDefaultTenant) {
    void* base = alloc.AllocFor(len == 0 ? 1 : len, tenant);
    if (base == nullptr) {
      return Buffer();
    }
    alloc.IncRef(base);
    return Buffer(&alloc, base, 0, len, /*owned=*/true);
  }

  // As TryAllocate, but heap exhaustion is a fatal invariant violation.
  static Buffer Allocate(PoolAllocator& alloc, size_t len) {
    Buffer b = TryAllocate(alloc, len);
    DEMI_CHECK(b.valid());
    return b;
  }

  Buffer(const Buffer& other) { CopyFrom(other); }
  Buffer& operator=(const Buffer& other) {
    if (this != &other) {
      Release();
      CopyFrom(other);
    }
    return *this;
  }
  Buffer(Buffer&& other) noexcept { MoveFrom(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }
  ~Buffer() { Release(); }

  bool empty() const { return len_ == 0; }
  size_t size() const { return len_; }
  const uint8_t* data() const {
    ValidateAccess();
    return static_cast<const uint8_t*>(base_) + offset_;
  }
  uint8_t* mutable_data() {
    ValidateAccess();
    return static_cast<uint8_t*>(base_) + offset_;
  }
  bool valid() const { return base_ != nullptr; }

  // A sub-view sharing the same underlying object (takes another reference).
  Buffer Slice(size_t offset, size_t len) const {
    DEMI_CHECK(offset + len <= len_);
    Buffer b(*this);
    b.offset_ += offset;
    b.len_ = len;
    return b;
  }

  // Narrows this view in place without touching refcounts.
  void TrimFront(size_t n) {
    DEMI_CHECK(n <= len_);
    offset_ += n;
    len_ -= n;
  }
  void TrimTo(size_t n) {
    DEMI_CHECK(n <= len_);
    len_ = n;
  }

  // Transfers ownership of the underlying object to the application: drops the libOS reference
  // without freeing (the app_owned bit was set at Alloc and stays set). Used by pop(): the
  // application receives the pointer and frees it when done (PDPIX memory semantics).
  // Only valid for libOS-owned whole-object buffers.
  void* ReleaseToApp() {
    DEMI_CHECK_MSG(owned_ && offset_ == 0, "ReleaseToApp requires a whole owned object");
    void* base = base_;
    alloc_->DecRef(base_);
    base_ = nullptr;
    alloc_ = nullptr;
    len_ = 0;
    return base;
  }

  PoolAllocator* allocator() const { return alloc_; }
  // Device key of the underlying superblock (registers lazily). Zero-copy devices use this.
  uint64_t Rkey() const {
    ValidateAccess();
    return alloc_->GetRkey(base_);
  }

  // DemiSan: records the queue/qtoken that pinned this buffer, so ownership-violation reports
  // can name the owner. No-op unless built with DEMI_OWNERSHIP_CHECKS.
  void NoteOwner(int32_t qd, uint64_t qt) const {
    if (alloc_ != nullptr && base_ != nullptr) {
      alloc_->NoteOwner(base_, qd, qt);
    }
  }

 private:
  Buffer(PoolAllocator* alloc, void* base, size_t offset, size_t len, bool owned)
      : alloc_(alloc), base_(base), offset_(offset), len_(len), owned_(owned) {
    // Fresh acquisition: snapshot the object's generation. Copies/moves inherit the snapshot
    // instead of re-reading it, so a view created from a stale view cannot launder staleness.
    gen_ = alloc_->Generation(base_);
  }

  // DemiSan: every data access revalidates that the underlying object has not been recycled
  // since this view legitimately acquired it (use-after-pop / double-release detection).
  // Compiles to nothing unless built with DEMI_OWNERSHIP_CHECKS.
  void ValidateAccess() const {
#if defined(DEMI_OWNERSHIP_CHECKS)
    if (base_ != nullptr) {
      // Thread-affinity first: a cross-shard touch is a race even when the object is still
      // live, so report it as such rather than as a generation mismatch.
      alloc_->AssertShardAccess("Buffer data access");
      if (alloc_->Generation(base_) != gen_) {
        alloc_->OwnershipViolation(base_, gen_, "Buffer access after underlying object recycled");
      }
    }
#endif
  }

  void Release() {
    if (base_ != nullptr) {
      if (owned_) {
        // The libOS allocated this object; drop both identities so it is truly recycled.
        alloc_->DecRef(base_);
        alloc_->Free(base_);
      } else {
        alloc_->DecRef(base_);
      }
      base_ = nullptr;
    }
  }

  void CopyFrom(const Buffer& other) {
    other.ValidateAccess();  // refuse to clone a stale view
    alloc_ = other.alloc_;
    base_ = other.base_;
    offset_ = other.offset_;
    len_ = other.len_;
    gen_ = other.gen_;
    owned_ = false;  // only one Buffer may carry the app-side identity of an owned object
    if (base_ != nullptr) {
      alloc_->IncRef(base_);
    }
    if (other.owned_) {
      // Copies of an owned buffer share references; the original keeps the ownership role.
      // (Callers that need to hand off ownership use move or ReleaseToApp.)
    }
  }

  void MoveFrom(Buffer& other) {
    alloc_ = other.alloc_;
    base_ = other.base_;
    offset_ = other.offset_;
    len_ = other.len_;
    gen_ = other.gen_;
    owned_ = other.owned_;
    other.base_ = nullptr;
    other.alloc_ = nullptr;
    other.len_ = 0;
    other.owned_ = false;
  }

  PoolAllocator* alloc_ = nullptr;
  void* base_ = nullptr;
  size_t offset_ = 0;
  size_t len_ = 0;
  uint32_t gen_ = 0;  // DemiSan generation snapshot; fits in padding, 0 in unchecked builds
  bool owned_ = false;
};

}  // namespace demi

#endif  // SRC_MEMORY_BUFFER_H_
