// demilint-expect: header-guard
// The guard below doesn't match the file's repo path (expected SRC_FIXTURES_BAD_GUARD_H_),
// and the quoted include isn't a full "src/..." path.

#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

#include "ethernet.h"  // demilint-expect: include-style
#include "src/net/ethernet.h"

#endif  // WRONG_GUARD_H
