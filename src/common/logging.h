// Minimal logging, off the datapath. DEMI_LOG for rare control-path events only; hot paths must
// stay log-free. DEMI_CHECK terminates on violated invariants (never disabled, unlike assert).

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace demi {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide log threshold; messages below it are suppressed.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

}  // namespace demi

#define DEMI_LOG(level, fmt, ...)                                                         \
  do {                                                                                    \
    if (static_cast<int>(level) >= static_cast<int>(::demi::GetLogLevel())) {             \
      std::fprintf(stderr, "[demi %s:%d] " fmt "\n", __FILE__, __LINE__, ##__VA_ARGS__);  \
    }                                                                                     \
  } while (0)

#define DEMI_LOG_DEBUG(fmt, ...) DEMI_LOG(::demi::LogLevel::kDebug, fmt, ##__VA_ARGS__)
#define DEMI_LOG_INFO(fmt, ...) DEMI_LOG(::demi::LogLevel::kInfo, fmt, ##__VA_ARGS__)
#define DEMI_LOG_WARN(fmt, ...) DEMI_LOG(::demi::LogLevel::kWarning, fmt, ##__VA_ARGS__)
#define DEMI_LOG_ERROR(fmt, ...) DEMI_LOG(::demi::LogLevel::kError, fmt, ##__VA_ARGS__)

#define DEMI_CHECK(cond)                                                                \
  do {                                                                                  \
    if (!(cond)) {                                                                      \
      std::fprintf(stderr, "[demi %s:%d] CHECK failed: %s\n", __FILE__, __LINE__, #cond); \
      std::abort();                                                                     \
    }                                                                                   \
  } while (0)

#define DEMI_CHECK_MSG(cond, fmt, ...)                                                  \
  do {                                                                                  \
    if (!(cond)) {                                                                      \
      std::fprintf(stderr, "[demi %s:%d] CHECK failed: %s: " fmt "\n", __FILE__, __LINE__, \
                   #cond, ##__VA_ARGS__);                                               \
      std::abort();                                                                     \
    }                                                                                   \
  } while (0)

// Debug-only invariant check: compiled out (condition not evaluated) in NDEBUG builds. This is
// the only check form demilint permits inside `// demilint: fastpath` regions — release
// datapaths must be abort-free (docs/STATIC_ANALYSIS.md).
#ifndef NDEBUG
#define DEMI_DCHECK(cond) DEMI_CHECK(cond)
#else
#define DEMI_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // SRC_COMMON_LOGGING_H_
