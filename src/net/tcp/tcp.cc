#include "src/net/tcp/tcp.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/observability/metrics.h"

namespace demi {

// A connection object plus its shared_ptr control block must fit one slab slot; the hot line
// is the first 64 bytes, and the remaining members stay small because everything bulky lives
// behind cold_ (docs/SCALING.md §3).
static_assert(sizeof(TcpConnection) <= TcbSlab::kSlotBytes - 64,
              "TcpConnection outgrew its slab slot budget");

// ============================== SegmentPayload ====================================

void SegmentPayload::TrimFront(size_t n) {
  bytes_ -= n;
  size_t keep = 0;
  for (size_t i = 0; i < count_; i++) {
    if (n >= slices_[i].size()) {
      n -= slices_[i].size();
      slices_[i] = Buffer{};  // fully covered: drop the reference (buffer may recycle)
      continue;
    }
    if (n > 0) {
      slices_[i].TrimFront(n);
      n = 0;
    }
    if (keep != i) {
      slices_[keep] = std::move(slices_[i]);
    }
    keep++;
  }
  count_ = keep;
}

// ============================== TcpConnection =====================================

TcpConnection::TcpConnection(TcpStack& stack, SocketAddress local, SocketAddress remote,
                             SeqNum iss)
    : stack_(stack), local_(local), remote_(remote), iss_(iss), rtt_(stack.config()) {
  hot_.snd_una = iss;
  hot_.snd_nxt = iss;
  hot_.mss = static_cast<uint16_t>(stack.DefaultMss());
}

TcpConnection::~TcpConnection() {
  // An application-held connection can outlive the stack; EnterClosed already cancelled every
  // timer then, so only touch the scheduler if something is still armed.
  if (hot_.retx_timer != kInvalidTimerId || hot_.ack_timer != kInvalidTimerId ||
      hot_.state_timer != kInvalidTimerId) {
    CancelAllTimers();
  }
}

TcpConnection::ColdState& TcpConnection::EnsureCold() {
  if (cold_ == nullptr) {
    cold_ = std::make_unique<ColdState>();
    cold_->cc = CongestionControl::Create(stack_.config().congestion, hot_.mss,
                                          stack_.config().fixed_window_bytes);
  }
  return *cold_;
}

const TcpConnection::ConnStats& TcpConnection::conn_stats() const {
  static const ConnStats kZero{};
  return cold_ == nullptr ? kZero : cold_->stats;
}

uint64_t TcpConnection::FlowKey() const {
  return FlowTable::MakeKey(remote_.ip.value, remote_.port, local_.port);
}

size_t TcpConnection::EffectiveSendWindow() const {
  if (cold_ == nullptr) {
    return 0;
  }
  const size_t wnd = std::min<size_t>(cold_->cc->cwnd(), hot_.snd_wnd);
  return wnd > cold_->bytes_inflight ? wnd - cold_->bytes_inflight : 0;
}

size_t TcpConnection::ReceiveCapacityLeft() const {
  const size_t used = cold_ == nullptr ? 0 : cold_->ready_bytes + cold_->reassembly_bytes;
  const size_t cap = stack_.config().recv_buffer_bytes;
  return used >= cap ? 0 : cap - used;
}

uint16_t TcpConnection::AdvertisedWindow() const {
  const size_t wnd = ReceiveCapacityLeft() >> hot_.rcv_wscale;
  return static_cast<uint16_t>(std::min<size_t>(wnd, 0xFFFF));
}

// --- Timer plumbing -------------------------------------------------------------

void TcpConnection::RetxTimerCb(void* ctx, uint64_t /*arg*/) {
  auto* conn = static_cast<TcpConnection*>(ctx);
  conn->hot_.retx_timer = kInvalidTimerId;  // this entry just fired
  conn->OnRetxTimer(conn->stack_.clock().Now());
}

void TcpConnection::AckTimerCb(void* ctx, uint64_t /*arg*/) {
  auto* conn = static_cast<TcpConnection*>(ctx);
  conn->hot_.ack_timer = kInvalidTimerId;
  conn->OnAckTimer(conn->stack_.clock().Now());
}

void TcpConnection::StateTimerCb(void* ctx, uint64_t /*arg*/) {
  auto* conn = static_cast<TcpConnection*>(ctx);
  conn->hot_.state_timer = kInvalidTimerId;
  conn->OnStateTimer(conn->stack_.clock().Now());
}

void TcpConnection::ReschedRetx() {
  Scheduler& sched = stack_.scheduler();
  if (hot_.retx_timer != kInvalidTimerId) {
    sched.CancelTimer(hot_.retx_timer);
    hot_.retx_timer = kInvalidTimerId;
  }
  if (hot_.state != TcpState::kClosed && cold_ != nullptr && !cold_->inflight.empty()) {
    hot_.retx_timer =
        sched.ArmTimer(cold_->inflight.front().rto_deadline, &RetxTimerCb, this, 0);
  }
}

void TcpConnection::ArmAckTimer(TimeNs deadline) {
  Scheduler& sched = stack_.scheduler();
  if (hot_.ack_timer != kInvalidTimerId) {
    sched.CancelTimer(hot_.ack_timer);
  }
  hot_.ack_timer = sched.ArmTimer(deadline, &AckTimerCb, this, 0);
}

void TcpConnection::CancelAckTimer() {
  if (hot_.ack_timer != kInvalidTimerId) {
    stack_.scheduler().CancelTimer(hot_.ack_timer);
    hot_.ack_timer = kInvalidTimerId;
  }
}

void TcpConnection::ArmStateTimer(StateTimerKind kind, TimeNs deadline) {
  Scheduler& sched = stack_.scheduler();
  if (hot_.state_timer != kInvalidTimerId) {
    sched.CancelTimer(hot_.state_timer);
  }
  hot_.state_timer = sched.ArmTimer(deadline, &StateTimerCb, this, 0);
  hot_.state_timer_kind = kind;
}

void TcpConnection::CancelStateTimer() {
  if (hot_.state_timer != kInvalidTimerId) {
    stack_.scheduler().CancelTimer(hot_.state_timer);
    hot_.state_timer = kInvalidTimerId;
  }
  hot_.state_timer_kind = StateTimerKind::kNone;
}

void TcpConnection::CancelAllTimers() {
  if (hot_.retx_timer != kInvalidTimerId) {
    stack_.scheduler().CancelTimer(hot_.retx_timer);
    hot_.retx_timer = kInvalidTimerId;
  }
  CancelAckTimer();
  CancelStateTimer();
}

void TcpConnection::MaybeArmPersist(TimeNs now) {
  const bool data_state =
      hot_.state == TcpState::kEstablished || hot_.state == TcpState::kCloseWait ||
      hot_.state == TcpState::kFinWait1 || hot_.state == TcpState::kLastAck ||
      hot_.state == TcpState::kClosing;
  const bool need = data_state && cold_ != nullptr && !cold_->unsent.empty() &&
                    hot_.snd_wnd == 0 && cold_->bytes_inflight == 0;
  if (need) {
    if (hot_.state_timer_kind != StateTimerKind::kPersist) {
      // Zero-window persist (RFC 1122 4.2.2.17): wait an RTO, then force a 1-byte probe.
      ArmStateTimer(StateTimerKind::kPersist, now + rtt_.rto());
    }
  } else if (hot_.state_timer_kind == StateTimerKind::kPersist) {
    CancelStateTimer();
  }
}

void TcpConnection::OnRetxTimer(TimeNs now) {
  if (hot_.state == TcpState::kClosed || cold_ == nullptr || cold_->inflight.empty()) {
    return;
  }
  InflightSegment& front = cold_->inflight.front();
  if (front.rto_deadline > now) {
    ReschedRetx();  // deadline was refreshed after this entry was armed
    return;
  }
  // RTO fired. A zero-window stall is a *persist* situation, not a dead peer: keep probing
  // without counting toward the abort limit (RFC 1122 4.2.2.17 — the connection stays open
  // as long as the receiver keeps acking).
  if (hot_.snd_wnd != 0) {
    if (hot_.consecutive_retx < 255) {
      hot_.consecutive_retx++;
    }
    if (hot_.consecutive_retx > stack_.config().max_retransmits) {
      // Established-connection give-up: the abort status (not a connect timeout) reaches every
      // waiter — pending pops complete with it and subsequent pushes return it.
      EnterClosed(Status::kConnectionAborted);
      return;
    }
  }
  front.retransmitted = true;
  rtt_.Backoff();
  SendDataSegment(front, now);  // also refreshes rto_deadline via current rto
  cold_->stats.retransmits++;
  stack_.TraceRetransmit(local_.port, front.seq);
  cold_->cc->OnTimeout(now);
  ReschedRetx();
}

void TcpConnection::OnAckTimer(TimeNs /*now*/) {
  if (hot_.state == TcpState::kClosed || !hot_.ack_needed) {
    return;  // piggybacked away or the connection died; nothing to do
  }
  if (cold_ != nullptr && !hot_.ack_immediate && stack_.config().delayed_acks) {
    cold_->stats.delayed_acks++;  // held to the timer; no data segment piggybacked it
  }
  SendPureAck();
}

void TcpConnection::OnStateTimer(TimeNs now) {
  const StateTimerKind kind = hot_.state_timer_kind;
  hot_.state_timer_kind = StateTimerKind::kNone;
  const TcpConfig& cfg = stack_.config();
  switch (kind) {
    case StateTimerKind::kConnectRetry: {
      if (hot_.state != TcpState::kSynSent) {
        return;
      }
      hot_.hs_attempts++;
      if (hot_.hs_attempts > cfg.max_syn_retries) {
        EnterClosed(Status::kTimedOut);
        return;
      }
      if (SendControl(TcpFlags{.syn = true}, iss_, /*with_options=*/true) != Status::kOk) {
        stack_.CountTxError();
      }
      if (cold_ != nullptr) {
        cold_->stats.retransmits++;
      }
      stack_.TraceRetransmit(local_.port, iss_);
      const unsigned shift = std::min<unsigned>(hot_.hs_attempts, 16);
      ArmStateTimer(StateTimerKind::kConnectRetry, now + (cfg.initial_rto << shift));
      return;
    }
    case StateTimerKind::kSynAckRetry: {
      if (hot_.state != TcpState::kSynReceived) {
        return;
      }
      hot_.hs_attempts++;
      if (hot_.hs_attempts > cfg.max_syn_retries) {
        EnterClosed(Status::kTimedOut);
        return;
      }
      if (SendControl(TcpFlags{.syn = true, .ack = true}, iss_, /*with_options=*/true) !=
          Status::kOk) {
        stack_.CountTxError();
      }
      if (cold_ != nullptr) {
        cold_->stats.retransmits++;
      }
      stack_.TraceRetransmit(local_.port, iss_);
      const unsigned shift = std::min<unsigned>(hot_.hs_attempts, 16);
      ArmStateTimer(StateTimerKind::kSynAckRetry, now + (cfg.initial_rto << shift));
      return;
    }
    case StateTimerKind::kPersist: {
      if (hot_.state == TcpState::kClosed || cold_ == nullptr) {
        return;
      }
      if (!cold_->unsent.empty() && hot_.snd_wnd == 0 && cold_->bytes_inflight == 0) {
        // Force a 1-byte probe through the closed window; once inflight, the normal RTO path
        // (exempt from the abort count while snd_wnd == 0) sustains the probing.
        Buffer& front = cold_->unsent.front();
        InflightSegment seg;
        seg.seq = hot_.snd_nxt;
        seg.data.Append(front.Slice(0, 1));
        front.TrimFront(1);
        if (front.empty()) {
          cold_->unsent.pop_front();
        }
        cold_->unsent_bytes -= 1;
        hot_.snd_nxt = hot_.snd_nxt + 1;
        cold_->bytes_inflight += 1;
        SendDataSegment(seg, now);
        cold_->inflight.push_back(std::move(seg));
        ReschedRetx();
      }
      return;
    }
    case StateTimerKind::kTimeWait: {
      if (hot_.state == TcpState::kTimeWait) {
        EnterClosed(Status::kOk);
      }
      return;
    }
    case StateTimerKind::kNone:
      return;
  }
}

// --- Application-facing ----------------------------------------------------------

Status TcpConnection::Push(Buffer data) {
  if (error_ != Status::kOk) {
    return error_;
  }
  if (hot_.fin_queued) {
    return Status::kInvalidArgument;  // already closed for sending
  }
  if (hot_.state != TcpState::kEstablished && hot_.state != TcpState::kCloseWait) {
    return Status::kNotConnected;
  }
  if (data.empty()) {
    return Status::kOk;
  }
  // Registers the underlying superblock with the device on first use (get_rkey path) so the
  // zero-copy TX below passes the NIC's DMA check.
  if (data.size() >= PoolAllocator::kZeroCopyThreshold) {
    data.Rkey();
  }
  ColdState& c = EnsureCold();
  c.unsent_bytes += data.size();
  c.unsent.push_back(std::move(data));
  // Fast path: transmit inline, run-to-completion (§5.2). Window-blocked leftovers drain from
  // ProcessAck (new ack / window update) or the persist probe.
  const TimeNs now = stack_.clock().Now();
  TrySend(now);
  MaybeArmPersist(now);
  return Status::kOk;
}

std::optional<Buffer> TcpConnection::PopData() {
  if (cold_ == nullptr || cold_->ready.empty()) {
    return std::nullopt;
  }
  const bool window_was_closed = ReceiveCapacityLeft() == 0;
  Buffer b = std::move(cold_->ready.front());
  cold_->ready.pop_front();
  cold_->ready_bytes -= b.size();
  // The receive window just opened; advertise it — urgently if it had slammed shut (the peer
  // may be persist-probing against a zero window), lazily otherwise (the next data segment or
  // delayed ack carries the update).
  if (window_was_closed) {
    ScheduleAck();
  } else {
    ScheduleDelayedAck(stack_.clock().Now());
  }
  return b;
}

Status TcpConnection::Close() {
  switch (hot_.state) {
    case TcpState::kSynSent:
    case TcpState::kSynReceived:
      EnterClosed(Status::kOk);
      return Status::kOk;
    case TcpState::kEstablished:
      hot_.state = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      hot_.state = TcpState::kLastAck;
      break;
    case TcpState::kClosed:
      return Status::kOk;
    default:
      return Status::kOk;  // close already in progress
  }
  hot_.fin_queued = true;
  EnsureCold();  // the FIN needs an inflight slot
  const TimeNs now = stack_.clock().Now();
  TrySend(now);
  MaybeArmPersist(now);
  return Status::kOk;
}

void TcpConnection::Abort() {
  if (hot_.state != TcpState::kClosed) {
    TcpHeader rst;
    rst.src_port = local_.port;
    rst.dst_port = remote_.port;
    rst.seq = hot_.snd_nxt.v;
    rst.flags.rst = true;
    rst.flags.ack = true;
    rst.ack = hot_.rcv_nxt.v;
    if (stack_.SendSegment(rst, remote_.ip, {}, tenant_) != Status::kOk) {
      stack_.CountTxError();  // peer will see the abort via RTO instead
    }
    EnterClosed(Status::kConnectionAborted);
  }
}

// --- Open paths ------------------------------------------------------------------

void TcpConnection::StartActiveOpen() {
  EnsureCold();
  hot_.state = TcpState::kSynSent;
  hot_.snd_nxt = iss_ + 1;  // SYN consumes one sequence number
  hot_.rcv_wscale = stack_.config().window_scale;
  if (SendControl(TcpFlags{.syn = true}, iss_, /*with_options=*/true) != Status::kOk) {
    stack_.CountTxError();  // the retry timer below resends the SYN
  }
  hot_.hs_attempts = 0;
  ArmStateTimer(StateTimerKind::kConnectRetry,
                stack_.clock().Now() + stack_.config().initial_rto);
}

void TcpConnection::StartPassiveOpen(const TcpHeader& syn, TcpListener* listener) {
  EnsureCold();
  hot_.state = TcpState::kSynReceived;
  pending_listener_ = listener;
  tenant_ = listener->tenant();
  listener->syn_rcvd_count_++;
  irs_ = SeqNum{syn.seq};
  hot_.rcv_nxt = irs_ + 1;
  hot_.snd_nxt = iss_ + 1;
  if (syn.mss_option) {
    hot_.mss = static_cast<uint16_t>(std::min<size_t>(hot_.mss, *syn.mss_option));
  }
  if (syn.window_scale_option) {
    hot_.snd_wscale = *syn.window_scale_option;
    hot_.rcv_wscale = stack_.config().window_scale;
  }
  if (syn.timestamps_option && stack_.config().timestamps) {
    hot_.ts_enabled = true;
    hot_.ts_recent = syn.timestamps_option->tsval;
    hot_.ts_recent_valid = true;
  }
  hot_.snd_wnd = syn.window;  // SYN windows are never scaled
  if (SendControl(TcpFlags{.syn = true, .ack = true}, iss_, /*with_options=*/true) !=
      Status::kOk) {
    stack_.CountTxError();  // the retry timer below resends the SYN-ACK
  }
  hot_.hs_attempts = 0;
  ArmStateTimer(StateTimerKind::kSynAckRetry,
                stack_.clock().Now() + stack_.config().initial_rto);
}

void TcpConnection::CompleteCookieOpen(const TcpHeader& ack, const SynCookies::SynOptions& opts) {
  hot_.state = TcpState::kEstablished;
  hot_.snd_una = iss_ + 1;  // iss_ is the cookie; the SYN-ACK consumed one sequence number
  hot_.snd_nxt = iss_ + 1;
  irs_ = SeqNum{ack.seq} - 1;
  hot_.rcv_nxt = SeqNum{ack.seq};
  hot_.mss = static_cast<uint16_t>(
      std::min<uint32_t>(opts.mss, static_cast<uint32_t>(stack_.DefaultMss())));
  if (opts.peer_wscale != SynCookies::kNoWscale) {
    hot_.snd_wscale = opts.peer_wscale;
    hot_.rcv_wscale = stack_.config().window_scale;
  }
  hot_.snd_wnd = static_cast<uint32_t>(ack.window) << hot_.snd_wscale;
  if (opts.timestamps && stack_.config().timestamps) {
    hot_.ts_enabled = true;
    if (ack.timestamps_option) {
      hot_.ts_recent = ack.timestamps_option->tsval;
      hot_.ts_recent_valid = true;
    }
  }
  // Deliberately hot-only: no cold state, no timers. Everything else materializes on first
  // data (ProcessData/Push) — a floods-worth of idle accepted connections stays at one slab
  // slot plus one flow-table entry each.
}

// --- Segment TX ------------------------------------------------------------------

uint32_t TcpConnection::NowTsval() const {
  // 1 µs timestamp tick: fine-grained enough for µs RTTs, wraps in ~71 minutes (acceptable for
  // the fabric's MSL; PAWS comparisons use wrapping arithmetic anyway).
  return static_cast<uint32_t>(stack_.clock().Now() / 1000);
}

void TcpConnection::StampTimestamps(TcpHeader* hdr) const {
  if (hot_.ts_enabled) {
    hdr->timestamps_option =
        TcpHeader::Timestamps{NowTsval(), hot_.ts_recent_valid ? hot_.ts_recent : 0};
  }
}

Status TcpConnection::SendControl(TcpFlags flags, SeqNum seq, bool with_options) {
  TcpHeader hdr;
  hdr.src_port = local_.port;
  hdr.dst_port = remote_.port;
  hdr.seq = seq.v;
  hdr.flags = flags;
  if (flags.ack) {
    hdr.ack = hot_.rcv_nxt.v;
  }
  if (flags.syn) {
    hdr.window = static_cast<uint16_t>(
        std::min<size_t>(ReceiveCapacityLeft(), 0xFFFF));  // unscaled on SYN
  } else {
    hdr.window = AdvertisedWindow();
  }
  if (with_options) {
    hdr.mss_option = static_cast<uint16_t>(stack_.DefaultMss());
    hdr.window_scale_option = stack_.config().window_scale;
    if (stack_.config().timestamps) {
      // Offer (or confirm) RFC 7323 timestamps on the SYN/SYN-ACK.
      hdr.timestamps_option = TcpHeader::Timestamps{NowTsval(), hot_.ts_recent};
    }
  } else {
    StampTimestamps(&hdr);
  }
  return stack_.SendSegment(hdr, remote_.ip, {}, tenant_);
}

void TcpConnection::SendDataSegment(InflightSegment& seg, TimeNs now) {
  TcpHeader hdr;
  hdr.src_port = local_.port;
  hdr.dst_port = remote_.port;
  hdr.seq = seg.seq.v;
  hdr.ack = hot_.rcv_nxt.v;
  hdr.flags.ack = true;
  hdr.flags.psh = !seg.data.empty();
  hdr.flags.fin = seg.fin;
  hdr.window = AdvertisedWindow();
  StampTimestamps(&hdr);
  std::span<const uint8_t> slices[SegmentPayload::kMaxSlices];
  const size_t nslices = seg.data.Gather(slices);
  if (stack_.SendSegment(hdr, remote_.ip, {slices, nslices}, tenant_) != Status::kOk) {
    stack_.CountTxError();  // segment stays inflight; the RTO path retransmits it
  }
  seg.sent_at = now;
  seg.rto_deadline = now + rtt_.rto();
  if (cold_ != nullptr) {
    cold_->stats.segments_sent++;
    cold_->stats.bytes_sent += seg.data.size();
  }
  // This segment carried the ack: drop any pending pure-ack obligation (piggybacking).
  hot_.ack_needed = false;
  hot_.ack_immediate = false;
  hot_.full_segs_since_ack = 0;
  CancelAckTimer();
}

void TcpConnection::TrySend(TimeNs now) {
  if (hot_.state != TcpState::kEstablished && hot_.state != TcpState::kCloseWait &&
      hot_.state != TcpState::kFinWait1 && hot_.state != TcpState::kLastAck &&
      hot_.state != TcpState::kClosing) {
    return;
  }
  if (cold_ == nullptr) {
    return;  // nothing queued: hot-only connections have nothing to send
  }
  ColdState& c = *cold_;
  const bool coalesce = stack_.config().coalesce_segments;
  bool sent_any = false;
  while (!c.unsent.empty()) {
    const size_t window = EffectiveSendWindow();
    if (window == 0) {
      break;
    }
    const size_t budget = std::min(EffectiveMss(), window);
    InflightSegment seg;
    seg.seq = hot_.snd_nxt;
    size_t filled = 0;
    // Gather queued buffers (or leading slices of them) until the segment fills to MSS/window
    // or runs out of gather slots; with coalescing off, one Push buffer per segment.
    while (!c.unsent.empty() && filled < budget && !seg.data.full()) {
      Buffer& front = c.unsent.front();
      const size_t take = std::min(front.size(), budget - filled);
      if (take == front.size()) {
        // Whole buffer fits in this segment: move it, avoiding a second reference (which
        // would spill into the allocator's overflow table).
        seg.data.Append(std::move(front));
        c.unsent.pop_front();
      } else {
        seg.data.Append(front.Slice(0, take));
        front.TrimFront(take);
      }
      filled += take;
      if (!coalesce) {
        break;
      }
    }
    c.unsent_bytes -= filled;
    hot_.snd_nxt = hot_.snd_nxt + static_cast<uint32_t>(filled);
    c.bytes_inflight += filled;
    if (seg.data.num_slices() > 1) {
      c.stats.coalesced_segments++;
    }
    SendDataSegment(seg, now);
    c.inflight.push_back(std::move(seg));
    sent_any = true;
  }
  // FIN rides after all data has been carved into segments.
  if (hot_.fin_queued && !hot_.fin_sent && c.unsent.empty()) {
    InflightSegment seg;
    seg.seq = hot_.snd_nxt;
    seg.fin = true;
    fin_seq_ = hot_.snd_nxt;
    hot_.fin_sent = true;
    hot_.snd_nxt = hot_.snd_nxt + 1;
    SendDataSegment(seg, now);
    c.inflight.push_back(std::move(seg));
    sent_any = true;
  }
  if (sent_any) {
    ReschedRetx();
  }
}

// --- Ack scheduling --------------------------------------------------------------

void TcpConnection::ScheduleAck() {
  const TcpConfig& cfg = stack_.config();
  if (!cfg.delayed_acks && cfg.ack_delay > 0) {
    // Legacy fixed-delay coalescing ablation: every ack waits exactly ack_delay.
    if (hot_.ack_needed) {
      return;
    }
    hot_.ack_needed = true;
    hot_.ack_immediate = false;
    ArmAckTimer(stack_.clock().Now() + cfg.ack_delay);
    return;
  }
  if (hot_.ack_needed && hot_.ack_immediate) {
    return;  // already scheduled urgently
  }
  // Newly needed, or escalating an armed delayed ack.
  hot_.ack_needed = true;
  hot_.ack_immediate = true;
  CancelAckTimer();
  if (stack_.in_burst_) {
    // Coalesce within the RX burst: one pure ack per connection at burst end, however many
    // segments this burst delivered.
    if (!hot_.ack_pending_listed) {
      hot_.ack_pending_listed = true;
      stack_.pending_ack_conns_.push_back(this);
    }
  } else {
    // Outside a burst (application-side window updates): a past-deadline wheel entry fires on
    // the next poll, batching repeated schedules from the same poll round into one ack.
    ArmAckTimer(stack_.clock().Now());
  }
}

void TcpConnection::ScheduleDelayedAck(TimeNs now) {
  if (!stack_.config().delayed_acks) {
    ScheduleAck();  // ablation: legacy ack-per-segment (plus the fixed ack_delay, if set)
    return;
  }
  if (hot_.ack_needed) {
    return;  // already armed (or urgent); never push an armed deadline back (RFC 1122)
  }
  hot_.ack_needed = true;
  hot_.ack_immediate = false;
  ArmAckTimer(now + DelayedAckTimeout());
}

void TcpConnection::SendPureAck() {
  hot_.ack_needed = false;
  hot_.ack_immediate = false;
  hot_.full_segs_since_ack = 0;
  CancelAckTimer();
  if (SendControl(TcpFlags{.ack = true}, hot_.snd_nxt, /*with_options=*/false) != Status::kOk) {
    stack_.CountTxError();  // a lost pure ack is recovered by the peer's retransmit
  }
}

DurationNs TcpConnection::DelayedAckTimeout() const {
  // RFC 1122 4.2.3.2 hard cap: never hold an ack longer than 500 ms, whatever the config says.
  return std::min<DurationNs>(stack_.config().delayed_ack_timeout, 500 * kMillisecond);
}

// --- Segment RX ------------------------------------------------------------------

void TcpConnection::OnSegment(const TcpHeader& hdr, std::span<const uint8_t> payload,
                              TimeNs now) {
  if (!payload.empty() || hdr.flags.fin) {
    EnsureCold();  // data (or a FIN's state machinery) needs the cold half
  }
  if (cold_ != nullptr) {
    cold_->stats.segments_received++;
    cold_->stats.bytes_received += payload.size();
  }

  if (hdr.flags.rst) {
    if (hot_.state == TcpState::kSynSent) {
      EnterClosed(Status::kConnectionRefused);
    } else if (hot_.state != TcpState::kClosed) {
      EnterClosed(Status::kConnectionReset);
    }
    return;
  }

  switch (hot_.state) {
    case TcpState::kSynSent: {
      if (!hdr.flags.syn || !hdr.flags.ack) {
        return;  // simultaneous open unsupported; ignore
      }
      if (SeqNum{hdr.ack} != iss_ + 1) {
        return;  // bogus ack of our SYN
      }
      irs_ = SeqNum{hdr.seq};
      hot_.rcv_nxt = irs_ + 1;
      hot_.snd_una = SeqNum{hdr.ack};
      if (hdr.mss_option) {
        hot_.mss = static_cast<uint16_t>(std::min<size_t>(hot_.mss, *hdr.mss_option));
      }
      if (hdr.window_scale_option) {
        hot_.snd_wscale = *hdr.window_scale_option;
      } else {
        hot_.rcv_wscale = 0;  // peer doesn't scale; neither do we
      }
      if (hdr.timestamps_option && stack_.config().timestamps) {
        hot_.ts_enabled = true;
        hot_.ts_recent = hdr.timestamps_option->tsval;
        hot_.ts_recent_valid = true;
      }
      hot_.snd_wnd = hdr.window;  // unscaled on SYN
      hot_.state = TcpState::kEstablished;
      CancelStateTimer();  // connect-retry no longer needed
      if (SendControl(TcpFlags{.ack = true}, hot_.snd_nxt, /*with_options=*/false) !=
          Status::kOk) {
        stack_.CountTxError();  // peer's SYN-ACK retransmit re-triggers this ack
      }
      EnsureCold().established.Notify();
      return;
    }
    case TcpState::kSynReceived: {
      if (hdr.flags.syn) {
        // Duplicate SYN: our SYN-ACK may have been lost; the retry timer resends it.
        return;
      }
      if (!hdr.flags.ack || SeqNum{hdr.ack} != iss_ + 1) {
        return;
      }
      hot_.snd_una = SeqNum{hdr.ack};
      hot_.snd_wnd = static_cast<uint32_t>(hdr.window) << hot_.snd_wscale;
      hot_.state = TcpState::kEstablished;
      CancelStateTimer();  // SYN-ACK retry no longer needed
      EnsureCold().established.Notify();
      if (pending_listener_ != nullptr) {
        TcpListener* l = pending_listener_;
        pending_listener_ = nullptr;
        l->syn_rcvd_count_--;
        auto self = stack_.conns_.FindShared(FlowKey());
        DEMI_CHECK(self != nullptr);
        l->ready_.push_back(std::move(self));
        l->acceptable_.Notify();
      }
      // Fall through to process any piggybacked payload.
      break;
    }
    case TcpState::kClosed:
      return;
    default:
      break;
  }

  if (hot_.ts_enabled && hdr.timestamps_option) {
    // PAWS (RFC 7323 §5): reject segments whose timestamp regressed strictly before ts_recent
    // (wrapping compare), unless they are bare acks for new data.
    const uint32_t tsval = hdr.timestamps_option->tsval;
    if (hot_.ts_recent_valid && static_cast<int32_t>(tsval - hot_.ts_recent) < 0) {
      if (cold_ != nullptr) {
        cold_->stats.paws_drops++;
      }
      ScheduleAck();  // duplicate-looking segment: re-ack so the peer resynchronizes
      return;
    }
    // Update ts_recent when the segment covers rcv_nxt (RFC 7323 §4.3's simplified rule).
    if (SeqNum{hdr.seq} <= hot_.rcv_nxt) {
      hot_.ts_recent = tsval;
      hot_.ts_recent_valid = true;
    }
  }

  if (hdr.flags.ack) {
    ProcessAck(hdr, now);
  }
  if (!payload.empty() || hdr.flags.fin) {
    ProcessData(hdr, payload, now);
  }
}

void TcpConnection::ProcessAck(const TcpHeader& hdr, TimeNs now) {
  // demilint: fastpath
  const SeqNum ack{hdr.ack};
  const auto new_wnd = static_cast<uint32_t>(static_cast<size_t>(hdr.window) << hot_.snd_wscale);
  const bool window_grew = new_wnd > hot_.snd_wnd;
  hot_.snd_wnd = new_wnd;

  if (ack > hot_.snd_nxt) {
    return;  // acks data we never sent; ignore
  }
  bool acked_new = false;
  if (ack > hot_.snd_una && cold_ != nullptr) {
    ColdState& c = *cold_;
    acked_new = true;
    const auto newly_acked = static_cast<size_t>(ack - hot_.snd_una);
    bool sampled = false;
    if (hot_.ts_enabled && hdr.timestamps_option && hdr.timestamps_option->tsecr != 0) {
      // RTTM: tsecr echoes our clock at transmit time, valid even across retransmissions.
      const uint32_t echoed = hdr.timestamps_option->tsecr;
      const uint32_t delta_us = NowTsval() - echoed;
      if (delta_us < 60u * 1000u * 1000u) {  // sanity: ignore >60 s (wrap artifacts)
        rtt_.OnSample(static_cast<DurationNs>(delta_us) * 1000);
        c.stats.ts_rtt_samples++;
        sampled = true;  // prefer the timestamp sample over the per-segment timer
      }
    }
    // Karn's algorithm (RFC 6298 §3): if the cumulative ack covers ANY retransmitted segment,
    // the ack's timing is driven by the retransmission and every per-segment timer in the
    // range is ambiguous — take no timer sample at all. (A lost first segment held later ones
    // in the peer's reassembly queue; the cumulative ack releasing them measures the RTO, not
    // the path RTT.) Timestamp RTTM above is retransmission-safe and exempt.
    bool ack_covers_retx = false;
    for (const InflightSegment& seg : c.inflight) {
      const uint32_t seg_len = static_cast<uint32_t>(seg.data.size()) + (seg.fin ? 1 : 0);
      if (ack < seg.seq + seg_len) {
        break;  // past the fully-covered prefix
      }
      if (seg.retransmitted) {
        ack_covers_retx = true;
        break;
      }
    }
    while (!c.inflight.empty()) {
      InflightSegment& seg = c.inflight.front();
      const uint32_t seg_len = static_cast<uint32_t>(seg.data.size()) + (seg.fin ? 1 : 0);
      if (ack >= seg.seq + seg_len) {
        if (!seg.retransmitted && !ack_covers_retx && !sampled) {
          rtt_.OnSample(now - seg.sent_at);
          sampled = true;
        }
        c.bytes_inflight -= seg.data.size();
        c.inflight.pop_front();  // drops the libOS reference: UAF-protected buffer may recycle
      } else if (ack > seg.seq) {
        const auto covered = static_cast<uint32_t>(ack - seg.seq);
        seg.data.TrimFront(covered);
        seg.seq = ack;
        c.bytes_inflight -= covered;
        break;
      } else {
        break;
      }
    }
    hot_.snd_una = ack;
    hot_.dup_acks = 0;
    hot_.consecutive_retx = 0;
    c.cc->OnAck(newly_acked, now);
    if (hot_.fin_sent && !hot_.our_fin_acked && ack >= fin_seq_ + 1) {
      hot_.our_fin_acked = true;
      OnOurFinAcked(now);
    }
    ReschedRetx();
  } else if (ack == hot_.snd_una && cold_ != nullptr && !cold_->inflight.empty() &&
             !hdr.flags.syn && !hdr.flags.fin) {
    cold_->stats.dup_acks_seen++;
    if (++hot_.dup_acks == 3) {
      // Fast retransmit.
      InflightSegment& seg = cold_->inflight.front();
      seg.retransmitted = true;
      SendDataSegment(seg, now);
      cold_->stats.fast_retransmits++;
      stack_.TraceRetransmit(local_.port, seg.seq);
      cold_->cc->OnFastRetransmit(now);
      hot_.dup_acks = 0;
      ReschedRetx();
    }
  } else if (ack > hot_.snd_una) {
    hot_.snd_una = ack;  // hot-only connection (nothing inflight to reconcile)
  }
  if (acked_new || window_grew) {
    // The window opened or freed: drain queued data now (this replaces the old sender fiber's
    // wakeup) and re-evaluate the zero-window persist timer.
    TrySend(now);
    MaybeArmPersist(now);
  }
  // demilint: end-fastpath
}

void TcpConnection::ProcessData(const TcpHeader& hdr, std::span<const uint8_t> payload,
                                TimeNs now) {
  ColdState& c = EnsureCold();
  SeqNum seq{hdr.seq};

  // Ack policy (RFC 1122 4.2.3.2, RFC 5681 §4.2): in-order sub-threshold data may ride a
  // delayed ack; everything ambiguous or urgent — duplicates (the peer is retransmitting),
  // out-of-order arrivals (dup-ack drives fast retransmit), gap fills, FIN advancement, and
  // every `ack_every_segments`-th full-sized segment — acks immediately.
  bool immediate = false;

  if (hdr.flags.fin) {
    const SeqNum fin_at = seq + static_cast<uint32_t>(payload.size());
    if (!hot_.remote_fin_seen) {
      hot_.remote_fin_seen = true;
      remote_fin_seq_ = fin_at;
    }
  }

  if (!payload.empty()) {
    // Left-trim data we already have.
    if (seq < hot_.rcv_nxt) {
      immediate = true;  // duplicate bytes: re-ack now so the retransmitting peer resyncs
      const auto overlap = static_cast<uint32_t>(hot_.rcv_nxt - seq);
      if (overlap >= payload.size()) {
        payload = {};
      } else {
        payload = payload.subspan(overlap);
        seq = hot_.rcv_nxt;
      }
    }
  }

  if (!payload.empty()) {
    if (payload.size() > ReceiveCapacityLeft()) {
      // Receiver overrun: drop; the ack (without window) makes the sender back off.
      ScheduleAck();
      return;
    }
    if (seq == hot_.rcv_nxt) {
      Buffer buf = Buffer::TryAllocate(stack_.allocator(), payload.size(), tenant_);
      if (!buf.valid()) {
        // Heap exhausted: drop without advancing rcv_nxt; the un-acked sender retransmits.
        stack_.CountRxAllocDrop();
        ScheduleAck();
        return;
      }
      std::memcpy(buf.mutable_data(), payload.data(), payload.size());
      hot_.rcv_nxt = hot_.rcv_nxt + static_cast<uint32_t>(payload.size());
      c.ready_bytes += buf.size();
      c.ready.push_back(std::move(buf));
      const SeqNum before_drain = hot_.rcv_nxt;
      DrainReassembly();
      if (hot_.rcv_nxt != before_drain) {
        immediate = true;  // this segment filled a gap: ack the whole advance right away
      }
      if (payload.size() >= EffectiveMss()) {
        if (hot_.full_segs_since_ack < 255) {
          hot_.full_segs_since_ack++;
        }
        if (hot_.full_segs_since_ack >= stack_.config().ack_every_segments) {
          immediate = true;
        }
      }
      c.readable.Notify();
    } else if (seq > hot_.rcv_nxt) {
      // Out of order: stash for reassembly (dedup by start seq; overlaps resolved on drain).
      c.stats.out_of_order++;
      immediate = true;  // dup-ack immediately so the peer's fast retransmit can trigger
      if (c.reassembly.find(seq.v) == c.reassembly.end()) {
        Buffer buf = Buffer::TryAllocate(stack_.allocator(), payload.size(), tenant_);
        if (!buf.valid()) {
          // The reassembly stash is an optimization; dropping only costs a retransmit later.
          stack_.CountRxAllocDrop();
        } else {
          std::memcpy(buf.mutable_data(), payload.data(), payload.size());
          c.reassembly_bytes += buf.size();
          c.reassembly.emplace(seq.v, std::move(buf));
        }
      }
    }
  }

  // A FIN becomes "received" only once all data before it is in order.
  if (hot_.remote_fin_seen && !hot_.remote_fin_received && hot_.rcv_nxt == remote_fin_seq_) {
    hot_.rcv_nxt = hot_.rcv_nxt + 1;
    hot_.remote_fin_received = true;
    immediate = true;  // don't hold the peer's close on a delay timer
    HandleFinReached(now);
    c.readable.Notify();
  } else if (hot_.remote_fin_seen && !hot_.remote_fin_received) {
    immediate = true;  // FIN past a gap: keep dup-acking until the hole fills
  }

  if (immediate) {
    ScheduleAck();
  } else {
    ScheduleDelayedAck(now);
  }
}

void TcpConnection::DrainReassembly() {
  ColdState& c = *cold_;
  while (!c.reassembly.empty()) {
    auto it = c.reassembly.begin();
    SeqNum seq{it->first};
    if (seq > hot_.rcv_nxt) {
      break;
    }
    Buffer buf = std::move(it->second);
    c.reassembly_bytes -= buf.size();
    c.reassembly.erase(it);
    if (seq < hot_.rcv_nxt) {
      const auto overlap = static_cast<uint32_t>(hot_.rcv_nxt - seq);
      if (overlap >= buf.size()) {
        continue;  // fully duplicate
      }
      buf.TrimFront(overlap);
    }
    hot_.rcv_nxt = hot_.rcv_nxt + static_cast<uint32_t>(buf.size());
    c.ready_bytes += buf.size();
    c.ready.push_back(std::move(buf));
  }
}

void TcpConnection::HandleFinReached(TimeNs /*now*/) {
  switch (hot_.state) {
    case TcpState::kEstablished:
      hot_.state = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      if (hot_.our_fin_acked) {
        EnterTimeWait();
      } else {
        hot_.state = TcpState::kClosing;
      }
      break;
    case TcpState::kFinWait2:
      EnterTimeWait();
      break;
    default:
      break;
  }
}

void TcpConnection::OnOurFinAcked(TimeNs /*now*/) {
  switch (hot_.state) {
    case TcpState::kFinWait1:
      hot_.state = TcpState::kFinWait2;
      break;
    case TcpState::kClosing:
      EnterTimeWait();
      break;
    case TcpState::kLastAck:
      EnterClosed(Status::kOk);
      break;
    default:
      break;
  }
}

void TcpConnection::EnterTimeWait() {
  hot_.state = TcpState::kTimeWait;
  CancelStateTimer();  // a pending persist (if any) is moot now
  ArmStateTimer(StateTimerKind::kTimeWait, stack_.clock().Now() + stack_.config().time_wait);
}

void TcpConnection::EnterClosed(Status error) {
  if (hot_.state == TcpState::kClosed) {
    return;
  }
  hot_.state = TcpState::kClosed;
  if (error_ == Status::kOk && error != Status::kOk) {
    error_ = error;
  }
  if (pending_listener_ != nullptr) {
    pending_listener_->syn_rcvd_count_--;
    pending_listener_ = nullptr;
    // Died before delivery to the app: give the tenant its accept-admission slot back.
    if (stack_.tenants_ != nullptr) {
      stack_.tenants_->ReleaseAccept(tenant_);
    }
  }
  CancelAllTimers();
  hot_.ack_needed = false;  // a listed burst-flush entry becomes a no-op
  hot_.ack_immediate = false;
  if (cold_ != nullptr) {
    // Drop all buffer references (releases UAF-deferred application frees).
    cold_->inflight.clear();
    cold_->unsent.clear();
    cold_->unsent_bytes = 0;
    cold_->bytes_inflight = 0;
    // Wake application waiters so they observe the close.
    cold_->readable.Notify();
    cold_->established.Notify();
  }
}

// ============================== TcpStack ==========================================

TcpStack::TcpStack(EthernetLayer& eth, Scheduler& scheduler, PoolAllocator& alloc, Clock& clock,
                   TcpConfig config)
    : eth_(eth), scheduler_(scheduler), alloc_(alloc), clock_(clock), config_(config),
      rng_(config.isn_seed), cookies_(rng_.Next()), conns_(config.flow_table_capacity) {
  eth_.RegisterReceiver(IpProto::kTcp, this);
}

TcpStack::~TcpStack() {
  conns_.ForEach([](uint64_t /*key*/, const std::shared_ptr<TcpConnection>& conn) {
    conn->EnterClosed(Status::kCancelled);
  });
}

size_t TcpStack::DefaultMss() const {
  return eth_.MaxIpPayload() - TcpHeader::kBaseSize;
}

uint16_t TcpStack::AllocEphemeralPort() {
  for (int tries = 0; tries < 65536; tries++) {
    const uint16_t port = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ >= 65500 ? 40000 : next_ephemeral_ + 1;
    bool taken = listeners_.count(port) > 0;
    if (!taken) {
      return port;
    }
  }
  return 0;
}

Result<std::shared_ptr<TcpConnection>> TcpStack::Connect(SocketAddress remote) {
  const uint16_t local_port = AllocEphemeralPort();
  if (local_port == 0) {
    return Status::kNoBufferSpace;
  }
  const uint64_t key = FlowTable::MakeKey(remote.ip.value, remote.port, local_port);
  if (conns_.Find(key) != nullptr) {
    return Status::kAddressInUse;
  }
  const SocketAddress local{eth_.local_ip(), local_port};
  auto conn = slab_.Make<TcpConnection>(*this, local, remote, NewIss());
  conns_.Insert(key, conn);
  stats_.conns_opened++;
  conn->StartActiveOpen();
  return conn;
}

Result<TcpListener*> TcpStack::Listen(uint16_t port, size_t backlog) {
  if (port == 0 || listeners_.count(port) > 0) {
    return Status::kAddressInUse;
  }
  auto listener = std::make_unique<TcpListener>();
  listener->port_ = port;
  listener->backlog_ = backlog == 0 ? 64 : backlog;
  listener->stack_ = this;
  TcpListener* raw = listener.get();
  listeners_[port] = std::move(listener);
  return raw;
}

void TcpStack::CloseListener(TcpListener* listener) {
  if (listener == nullptr) {
    return;
  }
  for (auto& conn : listener->ready_) {
    conn->Abort();
    conn->ReleaseByApp();
    // Ready-but-never-accepted: the admission slot charged at SYN time comes back here.
    if (tenants_ != nullptr) {
      tenants_->ReleaseAccept(conn->tenant());
    }
  }
  listeners_.erase(listener->port_);
}

std::shared_ptr<TcpConnection> TcpListener::Accept() {
  if (ready_.empty()) {
    return nullptr;
  }
  auto conn = std::move(ready_.front());
  ready_.pop_front();
  // Delivered to the application: the accept-admission slot frees up for the next handshake.
  if (stack_ != nullptr && stack_->tenants_ != nullptr) {
    stack_->tenants_->ReleaseAccept(conn->tenant());
  }
  return conn;
}

Status TcpStack::SendSegment(const TcpHeader& hdr, Ipv4Addr dst,
                             std::span<const std::span<const uint8_t>> payload_slices,
                             TenantId tenant) {
  uint8_t hdr_bytes[TcpHeader::kBaseSize + TcpHeader::kMaxOptionBytes];
  hdr.Serialize(hdr_bytes, eth_.local_ip(), dst, payload_slices,
                /*compute_checksum=*/!eth_.checksum_offload());
  const size_t hdr_len = hdr.SerializedSize();
  stats_.segments_tx++;
  // Gather [tcp hdr | payload slices...]; the ethernet layer prepends its own header slot.
  DEMI_CHECK(payload_slices.size() <= SegmentPayload::kMaxSlices);
  std::span<const uint8_t> segs[1 + SegmentPayload::kMaxSlices];
  segs[0] = {hdr_bytes, hdr_len};
  size_t n = 1;
  for (const auto& slice : payload_slices) {
    if (!slice.empty()) {
      segs[n++] = slice;
    }
  }
  return eth_.SendIpv4(dst, IpProto::kTcp, {segs, n}, tenant);
}

void TcpStack::SendRst(const TcpHeader& in, Ipv4Addr dst) {
  TcpHeader rst;
  rst.src_port = in.dst_port;
  rst.dst_port = in.src_port;
  rst.flags.rst = true;
  rst.flags.ack = true;
  rst.seq = in.ack;
  rst.ack = in.seq + 1;
  stats_.rst_sent++;
  if (SendSegment(rst, dst, {}) != Status::kOk) {
    stats_.tx_errors++;  // best-effort by design; an unanswered peer retries and re-triggers it
  }
}

void TcpStack::SendSynCookieSynAck(const TcpHeader& syn, Ipv4Addr src, uint64_t key) {
  SynCookies::SynOptions opts;
  const uint32_t peer_mss =
      syn.mss_option ? *syn.mss_option : SynCookies::kMssTable[0];
  opts.mss = SynCookies::RoundMss(
      std::min<uint32_t>(peer_mss, static_cast<uint32_t>(DefaultMss())));
  opts.peer_wscale =
      syn.window_scale_option ? *syn.window_scale_option : SynCookies::kNoWscale;
  opts.timestamps = syn.timestamps_option.has_value() && config_.timestamps;
  const uint32_t cookie = cookies_.Encode(key, syn.seq, opts, clock_.Now());

  TcpHeader hdr;
  hdr.src_port = syn.dst_port;
  hdr.dst_port = syn.src_port;
  hdr.seq = cookie;  // the ISS *is* the cookie
  hdr.ack = syn.seq + 1;
  hdr.flags.syn = true;
  hdr.flags.ack = true;
  hdr.window = static_cast<uint16_t>(std::min<size_t>(config_.recv_buffer_bytes, 0xFFFF));
  hdr.mss_option = static_cast<uint16_t>(opts.mss);
  if (syn.window_scale_option) {
    hdr.window_scale_option = config_.window_scale;
  }
  if (opts.timestamps) {
    hdr.timestamps_option = TcpHeader::Timestamps{
        static_cast<uint32_t>(clock_.Now() / 1000), syn.timestamps_option->tsval};
  }
  stats_.syn_cookies_sent++;
  if (SendSegment(hdr, src, {}) != Status::kOk) {
    stats_.tx_errors++;  // the client's SYN retransmit re-triggers a fresh cookie
  }
}

bool TcpStack::TryCookieValidate(const TcpHeader& hdr, const Ipv4Header& ip,
                                 std::span<const uint8_t> payload, uint64_t key, TimeNs now) {
  auto lit = listeners_.find(hdr.dst_port);
  if (lit == listeners_.end()) {
    return false;
  }
  const uint32_t cookie = hdr.ack - 1;      // our SYN-ACK's ISS
  const uint32_t client_iss = hdr.seq - 1;  // their SYN's ISS
  const auto opts = cookies_.Decode(key, client_iss, cookie, now);
  if (!opts) {
    return false;
  }
  TcpListener* listener = lit->second.get();
  if (listener->ready_.size() >= listener->backlog_) {
    return true;  // valid cookie, no accept-queue room: drop silently (no RST), client retries
  }
  if (tenants_ != nullptr && !tenants_->TryAdmitAccept(listener->tenant())) {
    // Same shed policy as the stateful path: a validated cookie still consumes an
    // accept-admission slot, so an over-limit tenant's handshake completes later.
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventType::kTenantAcceptShed, listener->tenant(), hdr.dst_port);
    }
    return true;
  }
  const SocketAddress local{eth_.local_ip(), hdr.dst_port};
  const SocketAddress remote{ip.src, hdr.src_port};
  auto conn = slab_.Make<TcpConnection>(*this, local, remote, SeqNum{cookie});
  conn->set_tenant(listener->tenant());
  conn->CompleteCookieOpen(hdr, *opts);
  conns_.Insert(key, conn);
  stats_.conns_opened++;
  stats_.syn_cookies_validated++;
  listener->ready_.push_back(conn);
  listener->acceptable_.Notify();
  if (!payload.empty() || hdr.flags.fin) {
    conn->OnSegment(hdr, payload, now);  // the validating ACK may carry the first data
  }
  return true;
}

void TcpStack::OnRxBurstBegin() { in_burst_ = true; }

void TcpStack::OnRxBurstEnd() {
  in_burst_ = false;
  for (TcpConnection* conn : pending_ack_conns_) {
    conn->hot_.ack_pending_listed = false;
    if (conn->hot_.state != TcpState::kClosed && conn->hot_.ack_needed) {
      conn->SendPureAck();  // one coalesced pure ack per connection per burst
    }
  }
  pending_ack_conns_.clear();
}

void TcpStack::OnIpv4Packet(const Ipv4Header& ip, std::span<const uint8_t> l4) {
  // demilint: fastpath
  size_t hdr_len = 0;
  bool checksum_failed = false;
  const auto hdr = TcpHeader::Parse(l4, ip.src, ip.dst, &hdr_len,
                                    /*verify=*/!eth_.checksum_offload(), &checksum_failed);
  if (!hdr) {
    if (checksum_failed) {
      stats_.rx_checksum_drops++;  // corruption caught before it could reach a connection
    } else {
      stats_.parse_errors++;
    }
    return;
  }
  stats_.segments_rx++;
  const auto payload = l4.subspan(hdr_len);

  const uint64_t key = FlowTable::MakeKey(ip.src.value, hdr->src_port, hdr->dst_port);
  TcpConnection* conn = conns_.Find(key);
  if (conn != nullptr) {
    conn->OnSegment(*hdr, payload, clock_.Now());
    return;
  }
  // demilint: end-fastpath

  // No connection: a SYN may match a listener.
  if (hdr->flags.syn && !hdr->flags.ack) {
    auto lit = listeners_.find(hdr->dst_port);
    if (lit != listeners_.end()) {
      TcpListener* listener = lit->second.get();
      if (config_.syn_cookies) {
        // Stateless handshake: answer with a cookie SYN-ACK, allocate nothing until the
        // third ACK validates (docs/SCALING.md §2).
        SendSynCookieSynAck(*hdr, ip.src, key);
        return;
      }
      if (listener->ready_.size() + listener->syn_rcvd_count_ >= listener->backlog_ ||
          conns_.size() >= config_.max_syn_backlog + 1024) {
        return;  // backlog full: drop the SYN, client retries
      }
      if (tenants_ != nullptr && !tenants_->TryAdmitAccept(listener->tenant())) {
        // Tenant over its accept-admission limit: shed the SYN silently (no RST), the
        // client's retransmit retries once the tenant drains its accept queue.
        if (tracer_ != nullptr) {
          tracer_->Record(TraceEventType::kTenantAcceptShed, listener->tenant(),
                          hdr->dst_port);
        }
        return;
      }
      const SocketAddress local{eth_.local_ip(), hdr->dst_port};
      const SocketAddress remote{ip.src, hdr->src_port};
      auto new_conn = slab_.Make<TcpConnection>(*this, local, remote, NewIss());
      conns_.Insert(key, new_conn);
      stats_.conns_opened++;
      new_conn->StartPassiveOpen(*hdr, listener);
      return;
    }
  } else if (config_.syn_cookies && hdr->flags.ack && !hdr->flags.rst && !hdr->flags.syn) {
    if (TryCookieValidate(*hdr, ip, payload, key, clock_.Now())) {
      return;
    }
  }
  stats_.no_connection++;
  if (!hdr->flags.rst) {
    SendRst(*hdr, ip.src);
  }
}

namespace {
void AccumulateConnStats(TcpConnection::ConnStats* into, const TcpConnection::ConnStats& s) {
  into->segments_sent += s.segments_sent;
  into->segments_received += s.segments_received;
  into->bytes_sent += s.bytes_sent;
  into->bytes_received += s.bytes_received;
  into->retransmits += s.retransmits;
  into->fast_retransmits += s.fast_retransmits;
  into->out_of_order += s.out_of_order;
  into->dup_acks_seen += s.dup_acks_seen;
  into->paws_drops += s.paws_drops;
  into->ts_rtt_samples += s.ts_rtt_samples;
  into->coalesced_segments += s.coalesced_segments;
  into->delayed_acks += s.delayed_acks;
}
}  // namespace

void TcpStack::Reap() {
  const size_t reaped = conns_.EraseIf(
      [this](uint64_t /*key*/, const std::shared_ptr<TcpConnection>& conn) {
        if (conn->state() == TcpState::kClosed && conn->app_released()) {
          AccumulateConnStats(&reaped_conn_stats_, conn->conn_stats());
          return true;
        }
        return false;
      });
  stats_.conns_reaped += reaped;
}

TcpConnection::ConnStats TcpStack::AggregateConnStats() const {
  TcpConnection::ConnStats total = reaped_conn_stats_;
  conns_.ForEach([&total](uint64_t /*key*/, const std::shared_ptr<TcpConnection>& conn) {
    AccumulateConnStats(&total, conn->conn_stats());
  });
  return total;
}

void TcpStack::SetObservability(MetricsRegistry* registry, Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    return;
  }
  MetricsRegistry& reg = *registry;
  reg.RegisterCallback("tcp.segments_rx", "tcp", "segments", "Segments received by the stack",
                       [this] { return stats_.segments_rx; });
  reg.RegisterCallback("tcp.segments_tx", "tcp", "segments", "Segments transmitted",
                       [this] { return stats_.segments_tx; });
  reg.RegisterCallback("tcp.rst_sent", "tcp", "segments", "RSTs sent",
                       [this] { return stats_.rst_sent; });
  reg.RegisterCallback("tcp.no_connection", "tcp", "segments",
                       "Segments for no known connection or listener",
                       [this] { return stats_.no_connection; });
  reg.RegisterCallback("tcp.parse_errors", "tcp", "segments", "Unparseable segments",
                       [this] { return stats_.parse_errors; });
  reg.RegisterCallback("tcp.rx_checksum_drops", "tcp", "segments",
                       "Segments dropped: software checksum verification failed",
                       [this] { return stats_.rx_checksum_drops; });
  reg.RegisterCallback("tcp.rx_alloc_drops", "tcp", "segments",
                       "Segment payloads dropped on heap exhaustion (recovered by retransmit)",
                       [this] { return stats_.rx_alloc_drops; });
  reg.RegisterCallback("tcp.tx_errors", "tcp", "segments",
                       "Segment transmit failures absorbed (recovered by retransmit)",
                       [this] { return stats_.tx_errors; });
  reg.RegisterCallback("tcp.conns_opened", "tcp", "conns", "Connections opened",
                       [this] { return stats_.conns_opened; });
  reg.RegisterCallback("tcp.conns_reaped", "tcp", "conns", "Closed connections reaped",
                       [this] { return stats_.conns_reaped; });
  reg.RegisterCallback("tcp.connections", "tcp", "conns", "Current connection table size",
                       [this] { return conns_.size(); });
  reg.RegisterCallback("tcp.flows", "tcp", "conns", "Live flow-table entries",
                       [this] { return conns_.size(); });
  reg.RegisterCallback("tcp.syn_cookies_sent", "tcp", "segments",
                       "Stateless SYN-ACKs sent with a cookie ISS",
                       [this] { return stats_.syn_cookies_sent; });
  reg.RegisterCallback("tcp.syn_cookies_validated", "tcp", "conns",
                       "Connections established from a validated SYN cookie",
                       [this] { return stats_.syn_cookies_validated; });
  reg.RegisterCallback("tcp.tcb_bytes", "tcp", "bytes",
                       "Bytes reserved by the TCB slab and flow table",
                       [this] { return TcbBytesReserved(); });
  reg.RegisterCallback("tcp.bytes_sent", "tcp", "bytes", "Payload bytes sent (all conns)",
                       [this] { return AggregateConnStats().bytes_sent; });
  reg.RegisterCallback("tcp.bytes_received", "tcp", "bytes",
                       "Payload bytes received (all conns)",
                       [this] { return AggregateConnStats().bytes_received; });
  reg.RegisterCallback("tcp.retransmits", "tcp", "segments", "RTO + handshake retransmissions",
                       [this] { return AggregateConnStats().retransmits; });
  reg.RegisterCallback("tcp.fast_retransmits", "tcp", "segments",
                       "Fast retransmits (3 duplicate acks)",
                       [this] { return AggregateConnStats().fast_retransmits; });
  reg.RegisterCallback("tcp.out_of_order", "tcp", "segments",
                       "Segments arriving out of order (reassembly queue)",
                       [this] { return AggregateConnStats().out_of_order; });
  reg.RegisterCallback("tcp.dup_acks", "tcp", "acks", "Duplicate acks seen",
                       [this] { return AggregateConnStats().dup_acks_seen; });
  reg.RegisterCallback("tcp.paws_drops", "tcp", "segments",
                       "Segments rejected by PAWS (RFC 7323)",
                       [this] { return AggregateConnStats().paws_drops; });
  reg.RegisterCallback("tcp.coalesced_segments", "tcp", "segments",
                       "Data segments sent carrying more than one gathered buffer slice",
                       [this] { return AggregateConnStats().coalesced_segments; });
  reg.RegisterCallback("tcp.delayed_acks", "tcp", "acks",
                       "Pure acks held to the delayed-ack timer before sending",
                       [this] { return AggregateConnStats().delayed_acks; });
}

}  // namespace demi
