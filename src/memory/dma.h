// DMA registration interface between the heap and kernel-bypass devices.
//
// Different devices designate DMA-capable memory differently (paper §2.2): RDMA registers
// regions and returns rkeys; DPDK/SPDK draw from a pre-registered mempool. The allocator hides
// this behind DmaRegistrar: each superblock is registered lazily on first I/O use and the
// returned key is cached in the superblock header (the get_rkey design of §5.3).

#ifndef SRC_MEMORY_DMA_H_
#define SRC_MEMORY_DMA_H_

#include <cstddef>
#include <cstdint>

namespace demi {

class DmaRegistrar {
 public:
  virtual ~DmaRegistrar() = default;

  // Registers [base, base+len) for device DMA and returns a device key (e.g., an RDMA rkey).
  // Must remain valid until UnregisterRegion.
  virtual uint64_t RegisterRegion(void* base, size_t len) = 0;
  virtual void UnregisterRegion(void* base) = 0;
};

// Registrar for devices needing no registration (e.g., Catnap's kernel path).
class NullDmaRegistrar final : public DmaRegistrar {
 public:
  uint64_t RegisterRegion(void* base, size_t len) override { return 0; }
  void UnregisterRegion(void* base) override {}

  static NullDmaRegistrar& Global() {
    // demilint: allow(shared-state) stateless singleton: no data members and no-op overrides, so sharing one instance across shards cannot race
    static NullDmaRegistrar r;
    return r;
  }
};

}  // namespace demi

#endif  // SRC_MEMORY_DMA_H_
