# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_test "/root/repo/build/tests/runtime_test")
set_tests_properties(runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(memory_test "/root/repo/build/tests/memory_test")
set_tests_properties(memory_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(netsim_test "/root/repo/build/tests/netsim_test")
set_tests_properties(netsim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(libos_test "/root/repo/build/tests/libos_test")
set_tests_properties(libos_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(apps_test "/root/repo/build/tests/apps_test")
set_tests_properties(apps_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tcp_advanced_test "/root/repo/build/tests/tcp_advanced_test")
set_tests_properties(tcp_advanced_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(catmint_test "/root/repo/build/tests/catmint_test")
set_tests_properties(catmint_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_test "/root/repo/build/tests/robustness_test")
set_tests_properties(robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;demi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pdpix_c_test "/root/repo/build/tests/pdpix_c_test")
set_tests_properties(pdpix_c_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;demi_test;/root/repo/tests/CMakeLists.txt;0;")
