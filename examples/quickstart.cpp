// Quickstart: a 64-byte echo over the Catnip (DPDK-style) libOS, client and server in one
// process on the simulated fabric.
//
// Walks the whole PDPIX surface: socket/bind/listen/accept/connect, push/pop, qtokens and
// wait, the DMA-capable heap, and zero-copy buffer ownership (reference: docs/API.md).
// Build & run (add -G Ninja if you prefer that generator):
//   cmake -B build -S . && cmake --build build -j && ./build/examples/quickstart

#include <cstdio>
#include <cstring>

#include "src/apps/echo.h"
#include "src/liboses/catnip.h"

int main() {
  using namespace demi;

  // One simulated switch; two hosts. The link models a datacenter ToR: 100 Gbps, 1 µs one-way.
  MonotonicClock clock;
  SimNetwork network(LinkConfig{}, /*seed=*/42);

  const Ipv4Addr server_ip = Ipv4Addr::FromOctets(10, 0, 0, 1);
  const Ipv4Addr client_ip = Ipv4Addr::FromOctets(10, 0, 0, 2);
  Catnip server(network, Catnip::Config{MacAddr{0xA}, server_ip, TcpConfig{}, nullptr}, clock);
  Catnip client(network, Catnip::Config{MacAddr{0xB}, client_ip, TcpConfig{}, nullptr}, clock);

  // Server side: an echo event loop we pump from this thread ("duet" mode — on real deployments
  // the server is another machine; see bench/ for the threaded variant).
  EchoServerApp echo_server(server, EchoServerOptions{{server_ip, 7}, SocketType::kStream});
  client.SetExternalPump([&] {
    server.PollOnce();
    echo_server.Pump();
  });

  // Client side, written exactly like a PDPIX application.
  auto sock = client.Socket(SocketType::kStream);
  if (!sock.ok()) {
    std::fprintf(stderr, "socket failed\n");
    return 1;
  }
  auto connect_qt = client.Connect(*sock, SocketAddress{server_ip, 7});
  auto conn = client.Wait(*connect_qt);
  if (!conn.ok() || conn->status != Status::kOk) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  std::printf("connected to %s\n", conn->remote.ToString().c_str());

  Histogram rtt;
  for (int i = 0; i < 10000; i++) {
    // All I/O memory comes from the DMA-capable heap.
    void* msg = client.DmaMalloc(64);
    std::memset(msg, 'x', 64);
    const TimeNs start = clock.Now();

    auto push_qt = client.Push(*sock, Sgarray::Of(msg, 64));
    client.DmaFree(msg);  // safe immediately: use-after-free protection pins it until sent

    auto pop_qt = client.Pop(*sock);
    auto reply = client.Wait(*pop_qt);
    if (!reply.ok() || reply->status != Status::kOk) {
      std::fprintf(stderr, "echo %d failed\n", i);
      return 1;
    }
    rtt.Record(clock.Now() - start);
    client.FreeSga(reply->sga);  // pop hands us ownership; we free when done
    (void)push_qt;
  }

  std::printf("10000 echos over Catnip TCP: mean %.2f us, p50 %.2f us, p99 %.2f us\n",
              rtt.Mean() / 1e3, rtt.P50() / 1e3, rtt.P99() / 1e3);
  (void)client.Close(*sock);  // process exit tears the queue down either way
  return 0;
}
