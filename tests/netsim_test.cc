// Tests for the simulated kernel-bypass devices: fabric, SimNic, SimRdmaDevice.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/memory/pool_allocator.h"
#include "src/netsim/rss.h"
#include "src/netsim/sim_network.h"
#include "src/netsim/sim_rdma.h"

namespace demi {
namespace {

WireFrame MakeFrame(const char* text) {
  const auto* p = reinterpret_cast<const uint8_t*>(text);
  return WireFrame(p, p + std::strlen(text));
}

std::span<const uint8_t> AsSpan(const WireFrame& f) { return {f.data(), f.size()}; }

class SimNicTest : public ::testing::Test {
 protected:
  SimNicTest() : net_(LinkConfig{}, /*seed=*/7), a_(net_, MacAddr{1}, clock_), b_(net_, MacAddr{2}, clock_) {}

  VirtualClock clock_;
  SimNetwork net_;
  SimNic a_;
  SimNic b_;
};

TEST_F(SimNicTest, FrameArrivesAfterLatency) {
  WireFrame payload = MakeFrame("hello");
  std::span<const uint8_t> seg = AsSpan(payload);
  ASSERT_EQ(a_.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);

  WireFrame rx[4];
  EXPECT_EQ(b_.RxBurst(rx), 0u);  // not yet: propagation delay
  clock_.Advance(net_.link().latency + 1 * kMicrosecond);
  ASSERT_EQ(b_.RxBurst(rx), 1u);
  EXPECT_EQ(std::memcmp(rx[0].data(), "hello", 5), 0);
}

TEST_F(SimNicTest, OversizeFrameRejected) {
  std::vector<uint8_t> big(net_.link().mtu + 1, 0);
  std::span<const uint8_t> seg(big);
  EXPECT_EQ(a_.TxBurst(MacAddr{2}, {&seg, 1}), Status::kMessageTooLong);
  EXPECT_EQ(a_.stats().tx_oversize, 1u);
}

TEST_F(SimNicTest, GatherConcatenatesSegments) {
  WireFrame h = MakeFrame("head|");
  WireFrame t = MakeFrame("tail");
  std::span<const uint8_t> segs[2] = {AsSpan(h), AsSpan(t)};
  ASSERT_EQ(a_.TxBurst(MacAddr{2}, segs), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  WireFrame rx[1];
  ASSERT_EQ(b_.RxBurst(rx), 1u);
  EXPECT_EQ(rx[0].size(), 9u);
  EXPECT_EQ(std::memcmp(rx[0].data(), "head|tail", 9), 0);
}

TEST_F(SimNicTest, BroadcastReachesAllButSender) {
  SimNic c(net_, MacAddr{3}, clock_);
  WireFrame payload = MakeFrame("arp");
  std::span<const uint8_t> seg = AsSpan(payload);
  ASSERT_EQ(a_.TxBurst(MacAddr::Broadcast(), {&seg, 1}), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  WireFrame rx[4];
  EXPECT_EQ(b_.RxBurst(rx), 1u);
  EXPECT_EQ(c.RxBurst(rx), 1u);
  EXPECT_EQ(a_.RxBurst(rx), 0u);
}

TEST_F(SimNicTest, UnknownDestinationVanishes) {
  WireFrame payload = MakeFrame("x");
  std::span<const uint8_t> seg = AsSpan(payload);
  EXPECT_EQ(a_.TxBurst(MacAddr{99}, {&seg, 1}), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  WireFrame rx[1];
  EXPECT_EQ(b_.RxBurst(rx), 0u);
}

// A burst-sized RxBurst must return only frames whose simulated delivery time has arrived:
// batching the poll loop must not let later frames jump their propagation delay.
TEST_F(SimNicTest, RxBurstHonorsPerFrameDeliveryTimes) {
  // Three frames staggered 10 µs apart on a 1 µs-latency link.
  bool first = true;
  for (const char* text : {"f-one", "f-two", "f-three"}) {
    if (!first) {
      clock_.Advance(10 * kMicrosecond);
    }
    first = false;
    WireFrame f = MakeFrame(text);
    std::span<const uint8_t> seg = AsSpan(f);
    ASSERT_EQ(a_.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  // Halfway into frame 3's propagation: frames 1 and 2 (sent at t=0 and t=10 µs) are due,
  // frame 3 (sent at t=20 µs, due at ~21 µs) is still on the wire.
  clock_.Advance(net_.link().latency / 2);
  WireFrame rx[32];
  EXPECT_EQ(b_.RxBurst(rx), 2u) << "burst returned a frame ahead of its delivery time";
  EXPECT_EQ(std::memcmp(rx[0].data(), "f-one", 5), 0);
  EXPECT_EQ(std::memcmp(rx[1].data(), "f-two", 5), 0);
  clock_.Advance(net_.link().latency);
  ASSERT_EQ(b_.RxBurst(rx), 1u);
  EXPECT_EQ(std::memcmp(rx[0].data(), "f-three", 7), 0);
}

TEST_F(SimNicTest, FramesStayInOrderOnCleanLink) {
  for (int i = 0; i < 50; i++) {
    WireFrame f{static_cast<uint8_t>(i)};
    std::span<const uint8_t> seg = AsSpan(f);
    ASSERT_EQ(a_.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  clock_.Advance(1 * kMillisecond);
  WireFrame rx[64];
  const size_t n = b_.RxBurst(rx);
  ASSERT_EQ(n, 50u);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(rx[i][0], static_cast<uint8_t>(i));
  }
}

TEST(SimNetworkTest, LossDropsRoughlyAtConfiguredRate) {
  LinkConfig link;
  link.loss = 0.2;
  VirtualClock clock;
  SimNetwork net(link, /*seed=*/11);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  constexpr int kFrames = 5000;
  WireFrame f = MakeFrame("z");
  std::span<const uint8_t> seg = AsSpan(f);
  for (int i = 0; i < kFrames; i++) {
    ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  clock.Advance(1 * kSecond);
  size_t received = 0;
  WireFrame rx[64];
  for (;;) {
    const size_t n = b.RxBurst(rx);
    if (n == 0) {
      break;
    }
    received += n;
  }
  EXPECT_NEAR(static_cast<double>(received) / kFrames, 0.8, 0.03);
  EXPECT_EQ(net.GetStats().frames_dropped_loss + received, static_cast<uint64_t>(kFrames));
}

TEST(SimNetworkTest, DuplicationDeliversTwice) {
  LinkConfig link;
  link.duplicate = 1.0;
  VirtualClock clock;
  SimNetwork net(link, 3);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  WireFrame f = MakeFrame("dup");
  std::span<const uint8_t> seg = AsSpan(f);
  ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  clock.Advance(1 * kMillisecond);
  WireFrame rx[4];
  EXPECT_EQ(b.RxBurst(rx), 2u);
}

TEST(SimNetworkTest, ReorderDelaysSomeFrames) {
  LinkConfig link;
  link.reorder = 0.5;
  link.reorder_extra = 100 * kMicrosecond;
  VirtualClock clock;
  SimNetwork net(link, 5);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  for (int i = 0; i < 20; i++) {
    WireFrame f{static_cast<uint8_t>(i)};
    std::span<const uint8_t> seg = AsSpan(f);
    ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  clock.Advance(1 * kSecond);
  WireFrame rx[32];
  const size_t n = b.RxBurst(rx);
  ASSERT_EQ(n, 20u);
  bool out_of_order = false;
  for (size_t i = 1; i < n; i++) {
    if (rx[i][0] < rx[i - 1][0]) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order);
  EXPECT_GT(net.GetStats().frames_reordered, 0u);
}

TEST(SimNetworkTest, BandwidthAddsSerializationDelay) {
  LinkConfig link;
  link.latency = 0;
  link.bandwidth_bps = 8'000'000;  // 8 Mbps: 1000 bytes take 1 ms
  VirtualClock clock;
  SimNetwork net(link, 1);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  std::vector<uint8_t> kb(1000, 1);
  std::span<const uint8_t> seg(kb);
  ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  WireFrame rx[1];
  clock.Advance(999 * kMicrosecond);
  EXPECT_EQ(b.RxBurst(rx), 0u);
  clock.Advance(2 * kMicrosecond);
  EXPECT_EQ(b.RxBurst(rx), 1u);
}

TEST(SimNetworkTest, RxQueueTailDrops) {
  LinkConfig link;
  link.rx_queue_frames = 8;
  VirtualClock clock;
  SimNetwork net(link, 1);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  WireFrame f = MakeFrame("q");
  std::span<const uint8_t> seg = AsSpan(f);
  for (int i = 0; i < 20; i++) {
    ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  EXPECT_EQ(net.GetStats().frames_dropped_queue, 12u);
}

TEST(SimNetworkTest, NextDeliveryTimeTracksEarliestFrame) {
  VirtualClock clock(1000);
  SimNetwork net(LinkConfig{}, 1);
  SimNic a(net, MacAddr{1}, clock);
  SimNic b(net, MacAddr{2}, clock);
  EXPECT_EQ(net.NextDeliveryTime(), 0u);
  WireFrame f = MakeFrame("t");
  std::span<const uint8_t> seg = AsSpan(f);
  ASSERT_EQ(a.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  EXPECT_GT(net.NextDeliveryTime(), 1000u);
}

TEST(SimNetworkTest, CrossThreadPingPong) {
  // Two threads, monotonic clocks, like the echo benchmark topology.
  MonotonicClock clock;
  SimNetwork net(LinkConfig{.latency = 1 * kMicrosecond}, 1);
  SimNic server(net, MacAddr{1}, clock);
  SimNic client(net, MacAddr{2}, clock);
  constexpr int kRounds = 2000;

  std::thread server_thread([&] {
    WireFrame rx[8];
    int echoed = 0;
    while (echoed < kRounds) {
      const size_t n = server.RxBurst(rx);
      for (size_t i = 0; i < n; i++) {
        std::span<const uint8_t> seg(rx[i]);
        ASSERT_EQ(server.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
        echoed++;
      }
    }
  });

  WireFrame rx[8];
  for (int r = 0; r < kRounds; r++) {
    WireFrame f{static_cast<uint8_t>(r & 0xFF)};
    std::span<const uint8_t> seg = AsSpan(f);
    ASSERT_EQ(client.TxBurst(MacAddr{1}, {&seg, 1}), Status::kOk);
    size_t n = 0;
    while (n == 0) {
      n = client.RxBurst(std::span<WireFrame>(rx, 1));
    }
    ASSERT_EQ(rx[0][0], static_cast<uint8_t>(r & 0xFF));
  }
  server_thread.join();
}

// --- SimRdmaDevice ---

class SimRdmaTest : public ::testing::Test {
 protected:
  SimRdmaTest()
      : net_(LinkConfig{}, 9),
        a_(net_, MacAddr{10}, clock_),
        b_(net_, MacAddr{20}, clock_) {
    qp_a_ = *a_.CreateQp(1);
    qp_b_ = *b_.CreateQp(1);
  }

  // Registers a buffer on a device and returns it zeroed.
  std::vector<uint8_t>& MakeRegistered(SimRdmaDevice& dev, std::vector<uint8_t>& storage,
                                       size_t size) {
    storage.assign(size, 0);
    dev.RegisterMemory(storage.data(), storage.size());
    return storage;
  }

  VirtualClock clock_;
  SimNetwork net_;
  SimRdmaDevice a_;
  SimRdmaDevice b_;
  uint32_t qp_a_ = 0;
  uint32_t qp_b_ = 0;
};

TEST_F(SimRdmaTest, TwoSidedSendRecv) {
  std::vector<uint8_t> recv_buf;
  MakeRegistered(b_, recv_buf, 256);
  ASSERT_EQ(b_.PostRecv(qp_b_, recv_buf.data(), 256, /*wr_id=*/77), Status::kOk);

  std::vector<uint8_t> msg = {1, 2, 3, 4, 5};
  std::span<const uint8_t> seg(msg);
  ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, /*wr_id=*/55), Status::kOk);

  // Sender sees a send completion.
  RdmaCompletion comps[4];
  ASSERT_EQ(a_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].type, RdmaCompletion::Type::kSend);
  EXPECT_EQ(comps[0].wr_id, 55u);

  // Receiver sees the message after the fabric delay.
  EXPECT_EQ(b_.PollCq(comps), 0u);
  clock_.Advance(10 * kMicrosecond);
  ASSERT_EQ(b_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].type, RdmaCompletion::Type::kRecv);
  EXPECT_EQ(comps[0].wr_id, 77u);
  EXPECT_EQ(comps[0].byte_len, 5u);
  EXPECT_EQ(comps[0].src_mac.value, 10u);
  EXPECT_EQ(std::memcmp(recv_buf.data(), msg.data(), 5), 0);
}

TEST_F(SimRdmaTest, LargeMessageFragmentsAndReassembles) {
  const size_t size = 10'000;  // several MTU-sized fragments
  std::vector<uint8_t> recv_buf;
  MakeRegistered(b_, recv_buf, size);
  ASSERT_EQ(b_.PostRecv(qp_b_, recv_buf.data(), static_cast<uint32_t>(size), 1), Status::kOk);

  std::vector<uint8_t> msg(size);
  for (size_t i = 0; i < size; i++) {
    msg[i] = static_cast<uint8_t>(i * 7);
  }
  a_.RegisterMemory(msg.data(), msg.size());
  std::span<const uint8_t> seg(msg);
  ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, 2), Status::kOk);

  clock_.Advance(1 * kMillisecond);
  RdmaCompletion comps[4];
  ASSERT_EQ(b_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].byte_len, size);
  EXPECT_EQ(std::memcmp(recv_buf.data(), msg.data(), size), 0);
}

TEST_F(SimRdmaTest, RnrDropWhenNoRecvPosted) {
  std::vector<uint8_t> msg = {9};
  std::span<const uint8_t> seg(msg);
  ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, 3), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  RdmaCompletion comps[4];
  EXPECT_EQ(b_.PollCq(comps), 0u);
  EXPECT_EQ(b_.stats().rnr_drops, 1u);
}

TEST_F(SimRdmaTest, RecvBufferTooSmallCompletesWithError) {
  std::vector<uint8_t> recv_buf;
  MakeRegistered(b_, recv_buf, 4);
  ASSERT_EQ(b_.PostRecv(qp_b_, recv_buf.data(), 4, 8), Status::kOk);
  std::vector<uint8_t> msg(100, 1);
  std::span<const uint8_t> seg(msg);
  ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, 9), Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  RdmaCompletion comps[4];
  ASSERT_EQ(b_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].status, Status::kMessageTooLong);
  EXPECT_EQ(b_.stats().recv_too_small, 1u);
}

TEST_F(SimRdmaTest, OneSidedWriteLandsInRegisteredMemory) {
  std::vector<uint8_t> window(64, 0);
  const uint64_t rkey = b_.RegisterMemory(window.data(), window.size());

  std::vector<uint8_t> update = {0xAB, 0xCD};
  ASSERT_EQ(a_.PostWrite(qp_a_, MacAddr{20}, qp_b_, rkey,
                         reinterpret_cast<uint64_t>(window.data() + 8), update, 4),
            Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  RdmaCompletion comps[4];
  // One-sided: no receiver completion, but memory updated after device processes the frame.
  EXPECT_EQ(b_.PollCq(comps), 0u);
  EXPECT_EQ(window[8], 0xAB);
  EXPECT_EQ(window[9], 0xCD);
  // Sender got a write completion.
  ASSERT_EQ(a_.PollCq(comps), 1u);
  EXPECT_EQ(comps[0].type, RdmaCompletion::Type::kWrite);
}

TEST_F(SimRdmaTest, WriteWithBadRkeyRejected) {
  std::vector<uint8_t> window(64, 0);
  b_.RegisterMemory(window.data(), window.size());
  std::vector<uint8_t> update = {1};
  ASSERT_EQ(a_.PostWrite(qp_a_, MacAddr{20}, qp_b_, /*rkey=*/999999,
                         reinterpret_cast<uint64_t>(window.data()), update, 5),
            Status::kOk);
  clock_.Advance(10 * kMicrosecond);
  RdmaCompletion comps[4];
  b_.PollCq(comps);
  EXPECT_EQ(b_.stats().bad_rkey_writes, 1u);
  EXPECT_EQ(window[0], 0);
}

TEST_F(SimRdmaTest, ManyMessagesStayOrdered) {
  std::vector<std::vector<uint8_t>> bufs(64, std::vector<uint8_t>(16, 0));
  for (size_t i = 0; i < bufs.size(); i++) {
    b_.RegisterMemory(bufs[i].data(), bufs[i].size());
    ASSERT_EQ(b_.PostRecv(qp_b_, bufs[i].data(), 16, i), Status::kOk);
  }
  for (uint8_t i = 0; i < 64; i++) {
    std::vector<uint8_t> msg = {i};
    std::span<const uint8_t> seg(msg);
    ASSERT_EQ(a_.PostSend(qp_a_, MacAddr{20}, qp_b_, {&seg, 1}, i), Status::kOk);
  }
  clock_.Advance(1 * kMillisecond);
  RdmaCompletion comps[128];
  const size_t n = b_.PollCq(comps);
  ASSERT_EQ(n, 64u);
  for (size_t i = 0; i < n; i++) {
    EXPECT_EQ(comps[i].wr_id, i);  // recv buffers consumed FIFO, messages in order
    EXPECT_EQ(bufs[i][0], static_cast<uint8_t>(i));
  }
  EXPECT_EQ(b_.stats().seq_violations, 0u);
}

TEST_F(SimRdmaTest, QpNumbersCollideExplicitly) {
  auto r = a_.CreateQp(1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), Status::kAddressInUse);
  auto r2 = a_.CreateQp();
  EXPECT_TRUE(r2.ok());
}

// --- RSS + multi-queue ---

// Builds an Ethernet+IPv4+UDP frame carrying the given 4-tuple (payload empty).
WireFrame MakeUdpFrame(Ipv4Addr src, Ipv4Addr dst, uint16_t sport, uint16_t dport) {
  WireFrame f(14 + 20 + 8, 0);
  f[12] = 0x08;  // ethertype IPv4
  f[13] = 0x00;
  f[14] = 0x45;  // v4, ihl=5
  f[17] = 28;    // total length = 20 + 8
  f[22] = 64;    // ttl
  f[23] = 17;    // UDP
  for (int i = 0; i < 4; i++) {
    f[26 + i] = static_cast<uint8_t>(src.value >> (24 - 8 * i));
    f[30 + i] = static_cast<uint8_t>(dst.value >> (24 - 8 * i));
  }
  f[34] = static_cast<uint8_t>(sport >> 8);
  f[35] = static_cast<uint8_t>(sport);
  f[36] = static_cast<uint8_t>(dport >> 8);
  f[37] = static_cast<uint8_t>(dport);
  f[39] = 8;  // udp length
  return f;
}

// The hash must be the real Toeplitz construction: check the IPv4 test vectors from the
// Microsoft RSS specification (the ones every NIC datasheet validates against).
TEST(RssTest, MatchesMicrosoftToeplitzTestVectors) {
  struct Vec {
    const char* src_ip;
    uint16_t src_port;
    const char* dst_ip;
    uint16_t dst_port;
    uint32_t expected;
  };
  const Vec vecs[] = {
      {"66.9.149.187", 2794, "161.142.100.80", 1766, 0x51ccc178},
      {"199.92.111.2", 14230, "65.69.140.83", 4739, 0xc626b0ea},
      {"24.19.198.95", 12898, "12.22.207.184", 38024, 0x5c2b394a},
      {"38.27.205.30", 48228, "209.142.163.6", 2217, 0xafc7327f},
      {"153.39.163.191", 44251, "202.188.127.2", 1303, 0x10e828a2},
  };
  auto parse = [](const char* s) {
    unsigned a, b, c, d;
    EXPECT_EQ(std::sscanf(s, "%u.%u.%u.%u", &a, &b, &c, &d), 4);
    return Ipv4Addr::FromOctets(static_cast<uint8_t>(a), static_cast<uint8_t>(b),
                                static_cast<uint8_t>(c), static_cast<uint8_t>(d));
  };
  for (const Vec& v : vecs) {
    EXPECT_EQ(RssHash4Tuple(parse(v.src_ip), parse(v.dst_ip), v.src_port, v.dst_port),
              v.expected)
        << v.src_ip;
  }
}

TEST(RssTest, SameTupleAlwaysSameQueue) {
  const Ipv4Addr src = Ipv4Addr::FromOctets(10, 0, 0, 2);
  const Ipv4Addr dst = Ipv4Addr::FromOctets(10, 0, 0, 1);
  const WireFrame f = MakeUdpFrame(src, dst, 40007, 7000);
  const size_t queue = RssQueueForFrame(AsSpan(f), 4);
  ASSERT_LT(queue, 4u);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(RssQueueForFrame(AsSpan(f), 4), queue);
    EXPECT_EQ(RssQueueForFrame(AsSpan(MakeUdpFrame(src, dst, 40007, 7000)), 4), queue);
  }
  // Non-IPv4 (ARP etc.) and single-queue ports always use queue 0.
  EXPECT_EQ(RssQueueForFrame(AsSpan(MakeFrame("not-an-ip-frame")), 4), 0u);
  EXPECT_EQ(RssQueueForFrame(AsSpan(f), 1), 0u);
}

TEST(RssTest, RandomFlowsSpreadAcrossQueues) {
  Rng rng(42);
  constexpr size_t kFlows = 1000;
  constexpr size_t kQueues = 4;
  size_t counts[kQueues] = {};
  for (size_t i = 0; i < kFlows; i++) {
    const Ipv4Addr src{static_cast<uint32_t>(rng.Next())};
    const Ipv4Addr dst = Ipv4Addr::FromOctets(10, 0, 0, 1);
    const uint16_t sport = static_cast<uint16_t>(1024 + rng.NextBounded(60000));
    const WireFrame f = MakeUdpFrame(src, dst, sport, 7000);
    counts[RssQueueForFrame(AsSpan(f), kQueues)]++;
  }
  // Binomial(1000, 1/4): mean 250, stddev ~13.7. [180, 320] is a >5-sigma bound — a failure
  // means the hash is biased, not that we got unlucky.
  for (size_t q = 0; q < kQueues; q++) {
    EXPECT_GE(counts[q], 180u) << "queue " << q;
    EXPECT_LE(counts[q], 320u) << "queue " << q;
  }
}

TEST(MultiQueueNicTest, RssSteersFlowsToPredictedQueues) {
  VirtualClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/7);
  SimNic sender(net, MacAddr{1}, clock);       // classic single-queue device
  SimNic receiver(net, MacAddr{2}, clock, 4);  // multi-queue PMD
  ASSERT_EQ(receiver.num_queues(), 4u);

  const Ipv4Addr dst_ip = Ipv4Addr::FromOctets(10, 0, 0, 1);
  size_t expected_per_queue[4] = {};
  constexpr size_t kFlows = 32;
  for (size_t i = 0; i < kFlows; i++) {
    const Ipv4Addr src_ip = Ipv4Addr::FromOctets(10, 0, 1, static_cast<uint8_t>(i + 1));
    WireFrame f = MakeUdpFrame(src_ip, dst_ip, static_cast<uint16_t>(40000 + i), 7000);
    expected_per_queue[RssQueueForFrame(AsSpan(f), 4)]++;
    std::span<const uint8_t> seg(f);
    ASSERT_EQ(sender.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  }
  clock.Advance(10 * kMicrosecond);

  size_t total = 0;
  for (size_t q = 0; q < 4; q++) {
    WireFrame rx[kFlows];
    size_t got = 0;
    size_t n;
    while ((n = receiver.RxBurst(q, std::span<WireFrame>(rx + got, kFlows - got))) > 0) {
      got += n;
    }
    EXPECT_EQ(got, expected_per_queue[q]) << "queue " << q;
    // Every frame on queue q must hash to q: flow-to-queue pinning is what shards rely on.
    for (size_t i = 0; i < got; i++) {
      EXPECT_EQ(RssQueueForFrame(AsSpan(rx[i]), 4), q);
    }
    EXPECT_EQ(receiver.queue_stats(q).rx_frames, got);
    total += got;
  }
  EXPECT_EQ(total, kFlows);
  EXPECT_EQ(receiver.stats().rx_frames, kFlows);  // aggregate sums the queue views
  // At least two queues must actually be populated for this to test steering.
  size_t populated = 0;
  for (size_t q = 0; q < 4; q++) {
    populated += expected_per_queue[q] > 0 ? 1 : 0;
  }
  EXPECT_GE(populated, 2u);
}

TEST(MultiQueueNicTest, NonIpv4LandsOnQueueZero) {
  VirtualClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/7);
  SimNic sender(net, MacAddr{1}, clock);
  SimNic receiver(net, MacAddr{2}, clock, 4);
  WireFrame f = MakeFrame("raw-non-ip-payload");
  std::span<const uint8_t> seg(f);
  ASSERT_EQ(sender.TxBurst(MacAddr{2}, {&seg, 1}), Status::kOk);
  clock.Advance(10 * kMicrosecond);
  WireFrame rx[4];
  EXPECT_EQ(receiver.RxBurst(0, rx), 1u);
  for (size_t q = 1; q < 4; q++) {
    EXPECT_EQ(receiver.RxBurst(q, rx), 0u);
  }
}

TEST(MultiQueueNicTest, PerQueueTxStatsAggregate) {
  VirtualClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/7);
  SimNic nic(net, MacAddr{1}, clock, 2);
  WireFrame f = MakeFrame("x");
  std::span<const uint8_t> seg(f);
  ASSERT_EQ(nic.TxBurst(0, MacAddr{9}, {&seg, 1}), Status::kOk);
  ASSERT_EQ(nic.TxBurst(1, MacAddr{9}, {&seg, 1}), Status::kOk);
  ASSERT_EQ(nic.TxBurst(1, MacAddr{9}, {&seg, 1}), Status::kOk);
  EXPECT_EQ(nic.queue_stats(0).tx_frames, 1u);
  EXPECT_EQ(nic.queue_stats(1).tx_frames, 2u);
  EXPECT_EQ(nic.stats().tx_frames, 3u);
}

}  // namespace
}  // namespace demi
