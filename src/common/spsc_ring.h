// Single-producer single-consumer lock-free ring buffer.
//
// This is the transport primitive of the simulated kernel-bypass fabric: a SimNic's rx/tx queues
// are SPSC rings shared between the device (producer) and the libOS fast-path coroutine
// (consumer), mirroring the descriptor rings a DPDK PMD polls. The ring is wait-free for both
// sides and safe across two threads.

#ifndef SRC_COMMON_SPSC_RING_H_
#define SRC_COMMON_SPSC_RING_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/common/bitops.h"

namespace demi {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two; the ring holds up to `capacity` elements.
  explicit SpscRing(size_t capacity)
      : mask_(NextPowerOfTwo(capacity < 2 ? 2 : capacity) - 1), slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false if the ring is full.
  bool Push(T value) {
    // demilint: atomic(head_ is written only by this producer thread; relaxed self-read)
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_cache_;
    if (head - tail > mask_) {
      // demilint: atomic(acquire pairs with consumer's release in Pop; the slots the
      // consumer vacated are fully moved-out before we observe its new tail and reuse them)
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) {
        return false;
      }
    }
    slots_[head & mask_] = std::move(value);
    // demilint: atomic(release publishes the slot write above; consumer's acquire of head_
    // guarantees it reads the fully-constructed element)
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Producer side, batched: moves as many of `values` into the ring as fit and publishes them
  // with a single release store — one fence per burst instead of one per element, the same
  // amortization a DPDK PMD gets from rte_ring enqueue bursts. Returns the number pushed
  // (< values.size() when the ring fills). Moved-from slots in `values` are left valid-empty.
  size_t PushBurst(std::span<T> values) {
    // demilint: atomic(head_ is written only by this producer thread; relaxed self-read)
    const uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t free_slots = mask_ + 1 - (head - tail_cache_);
    if (free_slots < values.size()) {
      // demilint: atomic(acquire pairs with consumer's release; vacated slots are safe to
      // overwrite once the refreshed tail is observed)
      tail_cache_ = tail_.load(std::memory_order_acquire);
      free_slots = mask_ + 1 - (head - tail_cache_);
    }
    const size_t n = values.size() < free_slots ? values.size() : free_slots;
    for (size_t i = 0; i < n; i++) {
      slots_[(head + i) & mask_] = std::move(values[i]);
    }
    if (n > 0) {
      // demilint: atomic(single release publishes the whole burst of slot writes above)
      head_.store(head + n, std::memory_order_release);
    }
    return n;
  }

  // Consumer side. Returns nullopt if the ring is empty.
  std::optional<T> Pop() {
    // demilint: atomic(tail_ is written only by this consumer thread; relaxed self-read)
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      // demilint: atomic(acquire pairs with producer's release in Push; the element in
      // slots_[tail] is fully constructed before we observe the new head and move from it)
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) {
        return std::nullopt;
      }
    }
    T value = std::move(slots_[tail & mask_]);
    // demilint: atomic(release publishes the moved-out slot; producer's acquire of tail_
    // guarantees it only reuses slots we have finished vacating)
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  // Consumer side, batched: pops up to `out.size()` elements, publishing the consumption with a
  // single release store. Returns the number popped (0 when empty).
  size_t PopBurst(std::span<T> out) {
    // demilint: atomic(tail_ is written only by this consumer thread; relaxed self-read)
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t available = head_cache_ - tail;
    if (available < out.size()) {
      // demilint: atomic(acquire pairs with producer's release; every element up to the
      // refreshed head is fully constructed before we move from it)
      head_cache_ = head_.load(std::memory_order_acquire);
      available = head_cache_ - tail;
    }
    const size_t n = out.size() < available ? out.size() : available;
    for (size_t i = 0; i < n; i++) {
      out[i] = std::move(slots_[(tail + i) & mask_]);
    }
    if (n > 0) {
      // demilint: atomic(single release publishes the whole burst of vacated slots)
      tail_.store(tail + n, std::memory_order_release);
    }
    return n;
  }

  // Consumer side: peeks without consuming. The reference stays valid until the next Pop.
  const T* Front() const {
    // demilint: atomic(tail_ is written only by this consumer thread; relaxed self-read)
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    // demilint: atomic(acquire pairs with producer's release so the peeked element is
    // fully constructed)
    uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      return nullptr;
    }
    return &slots_[tail & mask_];
  }

  // Approximate element count; exact when called from either endpoint's own thread.
  size_t SizeApprox() const {
    // demilint: atomic(callable from either thread, so neither index is a self-read;
    // acquire on both gives a consistent-enough snapshot for an approximate count)
    const uint64_t head = head_.load(std::memory_order_acquire);
    // demilint: atomic(see head_ load above)
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(head - tail);
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }
  size_t capacity() const { return mask_ + 1; }

 private:
  const uint64_t mask_;
  std::vector<T> slots_;
  // demilint: atomic(single-writer indices: head_ by the producer, tail_ by the consumer;
  // release/acquire pairs on them are the ring's only synchronization — slots_ itself is
  // plain memory published through these edges. 64-byte alignment keeps the two hot words
  // on separate cache lines so the sides don't false-share.)
  alignas(64) std::atomic<uint64_t> head_{0};  // written by producer
  // demilint: atomic(see head_)
  alignas(64) std::atomic<uint64_t> tail_{0};  // written by consumer
  alignas(64) uint64_t tail_cache_ = 0;        // producer-local
  alignas(64) uint64_t head_cache_ = 0;        // consumer-local
};

}  // namespace demi

#endif  // SRC_COMMON_SPSC_RING_H_
