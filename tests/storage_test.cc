// Tests for the storage substrate: SimBlockDevice and LogDevice.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/runtime/scheduler.h"
#include "src/storage/log_device.h"
#include "src/storage/sim_block_device.h"

namespace demi {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

class BlockDeviceTest : public ::testing::Test {
 protected:
  BlockDeviceTest() : dev_(SimBlockDevice::Config{}, clock_) {}
  VirtualClock clock_;
  SimBlockDevice dev_;
};

TEST_F(BlockDeviceTest, WriteThenReadRoundTrips) {
  std::vector<uint8_t> data(4096, 0x5A);
  ASSERT_EQ(dev_.SubmitWrite(3, data, 1), Status::kOk);
  SimBlockDevice::Completion comps[4];
  EXPECT_EQ(dev_.PollCompletions(comps), 0u);  // async: latency not elapsed
  clock_.Advance(100 * kMicrosecond);
  ASSERT_EQ(dev_.PollCompletions(comps), 1u);
  EXPECT_EQ(comps[0].cookie, 1u);

  std::vector<uint8_t> out(4096, 0);
  ASSERT_EQ(dev_.SubmitRead(3, out, 2), Status::kOk);
  clock_.Advance(100 * kMicrosecond);
  ASSERT_EQ(dev_.PollCompletions(comps), 1u);
  EXPECT_EQ(out, data);
}

TEST_F(BlockDeviceTest, WriteLatencyModelHolds) {
  std::vector<uint8_t> data(4096, 1);
  ASSERT_EQ(dev_.SubmitWrite(0, data, 1), Status::kOk);
  const TimeNs expected = dev_.NextCompletionTime();
  // write_latency (10us) + transfer (4096B @ 2GB/s ~ 2us)
  EXPECT_GE(expected, 10 * kMicrosecond);
  EXPECT_LE(expected, 15 * kMicrosecond);
}

TEST_F(BlockDeviceTest, RejectsPartialBlocks) {
  std::vector<uint8_t> data(100, 1);
  EXPECT_EQ(dev_.SubmitWrite(0, data, 1), Status::kInvalidArgument);
}

TEST_F(BlockDeviceTest, RejectsOutOfRange) {
  std::vector<uint8_t> data(4096, 1);
  EXPECT_EQ(dev_.SubmitWrite(dev_.config().num_blocks, data, 1), Status::kInvalidArgument);
}

TEST_F(BlockDeviceTest, QueueDepthEnforced) {
  std::vector<uint8_t> data(4096, 1);
  Status s = Status::kOk;
  size_t accepted = 0;
  for (size_t i = 0; i < dev_.config().queue_depth + 10; i++) {
    s = dev_.SubmitWrite(0, data, i);
    if (s == Status::kOk) {
      accepted++;
    }
  }
  EXPECT_EQ(s, Status::kQueueFull);
  EXPECT_EQ(accepted, dev_.config().queue_depth);
  EXPECT_GT(dev_.GetStats().queue_full_rejections, 0u);
}

TEST_F(BlockDeviceTest, CompletionsOrderedByTime) {
  std::vector<uint8_t> data(4096, 1);
  ASSERT_EQ(dev_.SubmitWrite(0, data, 10), Status::kOk);
  ASSERT_EQ(dev_.SubmitWrite(1, data, 11), Status::kOk);
  ASSERT_EQ(dev_.SubmitWrite(2, data, 12), Status::kOk);
  clock_.Advance(1 * kMillisecond);
  SimBlockDevice::Completion comps[8];
  const size_t n = dev_.PollCompletions(comps);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(comps[0].cookie, 10u);
  EXPECT_EQ(comps[1].cookie, 11u);
  EXPECT_EQ(comps[2].cookie, 12u);
}

// LogDevice tests drive coroutines on a scheduler with a background poller fiber, the way
// Cattree does.
class LogDeviceTest : public ::testing::Test {
 protected:
  LogDeviceTest()
      : dev_(SimBlockDevice::Config{}, clock_), sched_(clock_), log_(dev_, sched_) {}

  // Runs the scheduler until `done` while advancing the virtual clock to device completions.
  void RunUntil(const bool& done) {
    for (int guard = 0; guard < 100000 && !done; guard++) {
      log_.PollDevice();
      sched_.Poll();
      if (!done && log_.HasPendingIo()) {
        const TimeNs next = dev_.NextCompletionTime();
        if (next > clock_.Now()) {
          clock_.SetTime(next);
        }
      }
    }
    ASSERT_TRUE(done) << "log operation did not finish";
  }

  uint64_t AppendSync(const std::string& payload, Status* status_out = nullptr) {
    bool done = false;
    uint64_t offset = UINT64_MAX;
    sched_.Spawn([](LogDevice* log, std::string data, bool* done_out, uint64_t* offset_out,
                    Status* st) -> Task<void> {
      auto r = co_await log->Append(Bytes(data));
      if (st != nullptr) {
        *st = r.error();
      }
      if (r.ok()) {
        *offset_out = *r;
      }
      *done_out = true;
    }(&log_, payload, &done, &offset, status_out));
    RunUntil(done);
    return offset;
  }

  Result<LogDevice::ReadResult> ReadSync(uint64_t cursor) {
    bool done = false;
    Result<LogDevice::ReadResult> result = Status::kInternal;
    sched_.Spawn([](LogDevice* log, uint64_t at, bool* done_out,
                    Result<LogDevice::ReadResult>* out) -> Task<void> {
      *out = co_await log->Read(at);
      *done_out = true;
    }(&log_, cursor, &done, &result));
    RunUntil(done);
    return result;
  }

  VirtualClock clock_;
  SimBlockDevice dev_;
  Scheduler sched_;
  LogDevice log_;
};

TEST_F(LogDeviceTest, AppendThenReadBack) {
  const uint64_t off = AppendSync("hello log");
  EXPECT_EQ(off, 0u);
  auto r = ReadSync(off);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->payload.begin(), r->payload.end()), "hello log");
}

TEST_F(LogDeviceTest, SequentialRecordsChainViaCursor) {
  AppendSync("first");
  AppendSync("second record");
  AppendSync("third");
  uint64_t cursor = 0;
  std::vector<std::string> seen;
  for (int i = 0; i < 3; i++) {
    auto r = ReadSync(cursor);
    ASSERT_TRUE(r.ok());
    seen.emplace_back(r->payload.begin(), r->payload.end());
    cursor = r->next_cursor;
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"first", "second record", "third"}));
  auto eof = ReadSync(cursor);
  EXPECT_EQ(eof.error(), Status::kEndOfFile);
}

TEST_F(LogDeviceTest, RecordsSpanningBlocksRoundTrip) {
  std::string big(10'000, 'x');
  for (size_t i = 0; i < big.size(); i++) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  AppendSync("padding-to-offset");
  const uint64_t off = AppendSync(big);
  auto r = ReadSync(off);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->payload.begin(), r->payload.end()), big);
}

TEST_F(LogDeviceTest, TruncateGarbageCollects) {
  AppendSync("old");
  const uint64_t second = AppendSync("new");
  ASSERT_EQ(log_.Truncate(second), Status::kOk);
  EXPECT_EQ(ReadSync(0).error(), Status::kInvalidArgument);
  auto r = ReadSync(second);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::string(r->payload.begin(), r->payload.end()), "new");
}

TEST_F(LogDeviceTest, TruncateBeyondTailRejected) {
  AppendSync("x");
  EXPECT_EQ(log_.Truncate(1 << 20), Status::kInvalidArgument);
}

TEST_F(LogDeviceTest, RecoveryRebuildsTailFromMedia) {
  AppendSync("persisted-one");
  AppendSync("persisted-two");
  const uint64_t tail_before = log_.tail();

  LogDevice recovered(dev_, sched_);
  ASSERT_EQ(recovered.Recover(), Status::kOk);
  EXPECT_EQ(recovered.tail(), tail_before);

  // The recovered log reads the same records.
  bool done = false;
  std::string first;
  sched_.Spawn([](LogDevice* log, bool* done_out, std::string* out) -> Task<void> {
    auto r = co_await log->Read(0);
    EXPECT_TRUE(r.ok());
    out->assign(r->payload.begin(), r->payload.end());
    *done_out = true;
  }(&recovered, &done, &first));
  for (int guard = 0; guard < 100000 && !done; guard++) {
    recovered.PollDevice();
    sched_.Poll();
    if (!done) {
      const TimeNs next = dev_.NextCompletionTime();
      if (next > clock_.Now()) {
        clock_.SetTime(next);
      }
    }
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(first, "persisted-one");
}

TEST_F(LogDeviceTest, RecoveryAfterAppendContinuesLog) {
  AppendSync("before-crash");
  LogDevice recovered(dev_, sched_);
  ASSERT_EQ(recovered.Recover(), Status::kOk);

  bool done = false;
  sched_.Spawn([](LogDevice* log, bool* done_out) -> Task<void> {
    auto r = co_await log->Append(Bytes("after-crash"));
    EXPECT_TRUE(r.ok());
    *done_out = true;
  }(&recovered, &done));
  for (int guard = 0; guard < 100000 && !done; guard++) {
    recovered.PollDevice();
    sched_.Poll();
    if (!done) {
      const TimeNs next = dev_.NextCompletionTime();
      if (next > clock_.Now()) {
        clock_.SetTime(next);
      }
    }
  }
  ASSERT_TRUE(done);

  uint64_t cursor = 0;
  std::vector<std::string> seen;
  for (int i = 0; i < 2; i++) {
    bool rdone = false;
    sched_.Spawn([](LogDevice* log, uint64_t at, bool* done_out,
                    std::vector<std::string>* seen_out, uint64_t* next) -> Task<void> {
      auto r = co_await log->Read(at);
      EXPECT_TRUE(r.ok());
      seen_out->emplace_back(r->payload.begin(), r->payload.end());
      *next = r->next_cursor;
      *done_out = true;
    }(&recovered, cursor, &rdone, &seen, &cursor));
    for (int guard = 0; guard < 100000 && !rdone; guard++) {
      recovered.PollDevice();
      sched_.Poll();
      if (!rdone) {
        const TimeNs next = dev_.NextCompletionTime();
        if (next > clock_.Now()) {
          clock_.SetTime(next);
        }
      }
    }
    ASSERT_TRUE(rdone);
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"before-crash", "after-crash"}));
}

TEST_F(LogDeviceTest, ConcurrentAppendsSerialize) {
  // Several application coroutines appending at once must not interleave corruptly.
  constexpr int kAppenders = 8;
  int finished = 0;
  for (int i = 0; i < kAppenders; i++) {
    sched_.Spawn([](LogDevice* log, int id, int* finished_out) -> Task<void> {
      std::string payload = "appender-" + std::to_string(id);
      auto r = co_await log->Append(
          std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(payload.data()),
                                   payload.size()));
      EXPECT_TRUE(r.ok());
      (*finished_out)++;
    }(&log_, i, &finished));
  }
  for (int guard = 0; guard < 100000 && finished < kAppenders; guard++) {
    log_.PollDevice();
    sched_.Poll();
    const TimeNs next = dev_.NextCompletionTime();
    if (next > clock_.Now()) {
      clock_.SetTime(next);
    }
  }
  ASSERT_EQ(finished, kAppenders);

  // All records readable, each exactly once.
  uint64_t cursor = 0;
  std::vector<std::string> seen;
  for (int i = 0; i < kAppenders; i++) {
    auto r = ReadSync(cursor);
    ASSERT_TRUE(r.ok());
    seen.emplace_back(r->payload.begin(), r->payload.end());
    cursor = r->next_cursor;
  }
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kAppenders; i++) {
    EXPECT_NE(std::find(seen.begin(), seen.end(), "appender-" + std::to_string(i)), seen.end());
  }
}

TEST_F(LogDeviceTest, FillsToCapacityThenRejects) {
  std::string chunk(4096 - 16, 'c');
  Status st = Status::kOk;
  int appended = 0;
  while (st == Status::kOk && appended < 100000) {
    AppendSync(chunk, &st);
    if (st == Status::kOk) {
      appended++;
    }
  }
  EXPECT_EQ(st, Status::kNoBufferSpace);
  EXPECT_GT(appended, 0);
}

}  // namespace
}  // namespace demi
