// Seeded nodiscard-status violations: a Status-returning declaration in a header must carry
// [[nodiscard]] on the same line or the line above.

#ifndef SRC_FIXTURES_MISSING_NODISCARD_H_
#define SRC_FIXTURES_MISSING_NODISCARD_H_

#include "src/common/status.h"

namespace demi {

class Widget {
 public:
  Status Open(int fd);                           // demilint-expect: nodiscard-status
  virtual Status Close() = 0;                    // demilint-expect: nodiscard-status
  [[nodiscard]] Status Flush();                  // annotated: fine
  [[nodiscard]]
  Status Sync();                                 // attribute on the previous line: fine
  void Reset();                                  // not Status-returning: fine
  static Status Probe(const char* path);         // demilint-expect: nodiscard-status
};

}  // namespace demi

#endif  // SRC_FIXTURES_MISSING_NODISCARD_H_
