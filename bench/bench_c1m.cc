// C1M: one Catnip shard ramped to a million concurrent TCP connections (docs/SCALING.md).
//
// The scaling claims under test, per decade of the flow ramp (10k -> 100k -> 1M):
//   - per-connection server memory stays flat (hot-only TCBs in the slab + flow-table slots);
//   - packet-to-app echo latency does not degrade with the live-flow population (the flow
//     table is O(1), timers live in the O(1) wheel, idle connections cost no CPU);
//   - the ramp itself allocates nothing transient per half-open handshake (SYN cookies).
//
// Topology: the server is a bare TcpStack (no libOS wrapper) with syn_cookies on and a
// pre-sized flow table. The client side is NOT a peer stack — a million client TCBs would
// double the footprint and muddy the measurement — but a stateless load generator: a raw
// SimNic whose SYN/ACK/data segments this harness crafts and parses directly, like a DPDK
// packet generator. Echo latency is wall-clock time around the full virtual datapath
// (client NIC -> wire -> server eth/tcp -> app pop+push -> wire -> client NIC) with the
// VirtualClock advanced only to frame-delivery times, so timers never fire spuriously.
//
// Modes:
//   --quick   100k-flow ramp + gate assertions (the perf_smoke_c1m ctest gate)
//   (none)    full 1M ramp, report-only (EXPERIMENTS.md results)
//
// Self-skips (exit 0) on hosts without enough available memory for an honest run.

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/net/tcp/tcp.h"
#include "src/netsim/sim_network.h"

namespace demi {
namespace {

constexpr MacAddr kServerMac{0x51};
constexpr MacAddr kClientMac{0xC1};
constexpr Ipv4Addr kServerIp = Ipv4Addr::FromOctets(10, 20, 255, 1);
constexpr uint16_t kServerPort = 7000;
constexpr uint32_t kClientIss = 0x01000000;  // + flow id
constexpr size_t kEchoBytes = 64;

// flow id -> the load generator's (ip, port). 256 ports per client IP: a full 1M ramp uses
// 3907 source IPs, the realistic many-clients shape (and exactly what RSS/cookies hash over).
Ipv4Addr FlowIp(size_t flow) {
  const uint32_t idx = static_cast<uint32_t>(flow >> 8);
  return Ipv4Addr::FromOctets(10, 20, static_cast<uint8_t>(idx >> 8),
                              static_cast<uint8_t>(idx & 0xFF));
}
uint16_t FlowPort(size_t flow) { return static_cast<uint16_t>(20000 + (flow & 0xFF)); }
size_t FlowFromAddr(Ipv4Addr ip, uint16_t port) {
  const uint32_t idx = ip.value & 0xFFFF;
  return (static_cast<size_t>(idx) << 8) | (port - 20000u);
}

long long MemAvailableKb() {
  FILE* f = std::fopen("/proc/meminfo", "r");
  if (f == nullptr) {
    return -1;
  }
  char line[256];
  long long kb = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "MemAvailable: %lld kB", &kb) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kb;
}

long long RssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return -1;
  }
  long long pages_total = 0;
  long long pages_rss = 0;
  const int n = std::fscanf(f, "%lld %lld", &pages_total, &pages_rss);
  std::fclose(f);
  return n == 2 ? pages_rss * 4096 : -1;
}

struct C1mWorld {
  explicit C1mWorld(TcpConfig cfg)
      : net(LinkConfig{}, /*seed=*/1),
        server_nic(net, kServerMac, clock),
        alloc(server_nic.registrar()),
        sched(clock),
        eth(server_nic, kServerIp),
        tcp(eth, sched, alloc, clock, cfg),
        client_nic(net, kClientMac, clock) {}

  // Serializes one crafted TCP frame onto the wire toward the server. Checksums are skipped:
  // the stack runs in its default checksum-offload mode (device-validated RX).
  void DeliverToServer(const TcpHeader& h, Ipv4Addr src, std::span<const uint8_t> payload) {
    Ipv4Header ip;
    ip.protocol = IpProto::kTcp;
    ip.src = src;
    ip.dst = kServerIp;
    ip.total_length =
        static_cast<uint16_t>(Ipv4Header::kSize + h.SerializedSize() + payload.size());
    WireFrame f(EthernetHeader::kSize + ip.total_length);
    EthernetHeader{kServerMac, kClientMac, EtherType::kIpv4}.Serialize(f.data());
    ip.Serialize(f.data() + EthernetHeader::kSize, /*compute_checksum=*/false);
    uint8_t* l4 = f.data() + EthernetHeader::kSize + Ipv4Header::kSize;
    h.Serialize(l4, src, kServerIp, payload, /*compute_checksum=*/false);
    if (!payload.empty()) {
      std::memcpy(l4 + h.SerializedSize(), payload.data(), payload.size());
    }
    net.Deliver(kClientMac, kServerMac, std::move(f), clock.Now());
  }

  // Drains the load generator's NIC into `rx` (TCP headers + payload sizes only).
  struct RxSeg {
    TcpHeader hdr;
    Ipv4Addr dst_ip;  // the spoofed client this reply addresses
    size_t payload = 0;
  };
  size_t CaptureClient() {
    std::array<WireFrame, 64> burst;
    size_t total = 0;
    for (;;) {
      const size_t n = client_nic.RxBurst(std::span<WireFrame>(burst.data(), burst.size()));
      for (size_t i = 0; i < n; i++) {
        const WireFrame& f = burst[i];
        if (f.size() < EthernetHeader::kSize + Ipv4Header::kSize) {
          continue;
        }
        auto ip = Ipv4Header::Parse(
            {f.data() + EthernetHeader::kSize, f.size() - EthernetHeader::kSize},
            /*verify=*/false);
        if (!ip.has_value() || ip->protocol != IpProto::kTcp) {
          continue;  // ARP or junk: the generator only tracks TCP
        }
        std::span<const uint8_t> l4{f.data() + EthernetHeader::kSize + Ipv4Header::kSize,
                                    f.size() - EthernetHeader::kSize - Ipv4Header::kSize};
        size_t hdr_len = 0;
        auto tcp_hdr = TcpHeader::Parse(l4, kServerIp, ip->dst, &hdr_len, /*verify=*/false);
        if (!tcp_hdr.has_value()) {
          continue;
        }
        rx.push_back(RxSeg{*tcp_hdr, ip->dst, l4.size() - hdr_len});
      }
      total += n;
      if (n < burst.size()) {
        return total;
      }
    }
  }

  // Polls the world until nothing is runnable and no frame is in flight. Virtual time only
  // advances to delivery instants — never to timer deadlines, so an idle million-flow
  // population must truly cost zero CPU for this to return.
  void PumpQuiet() {
    for (int i = 0; i < 50'000'000; i++) {
      const size_t activity = eth.PollOnce() + sched.Poll() + CaptureClient();
      if (activity != 0) {
        continue;
      }
      const TimeNs next = net.NextDeliveryTime();
      if (next == 0) {
        return;
      }
      if (next > clock.Now()) {
        clock.SetTime(next);
      }
    }
    std::fprintf(stderr, "bench_c1m: world did not quiesce\n");
    std::abort();
  }

  VirtualClock clock;
  SimNetwork net;
  SimNic server_nic;
  PoolAllocator alloc;
  Scheduler sched;
  EthernetLayer eth;
  TcpStack tcp;
  SimNic client_nic;  // stateless load generator: polled raw, no stack behind it
  std::vector<RxSeg> rx;
};

struct BenchState {
  C1mWorld* w = nullptr;
  TcpListener* listener = nullptr;
  std::vector<std::shared_ptr<TcpConnection>> conns;  // index == flow id
  std::vector<uint32_t> srv_iss;                      // cookie ISS per flow, from the SYN-ACK
  std::vector<uint32_t> echo_rounds;                  // completed echo rounds per flow
};

// Ramps the established-connection count to `target` in handshake batches: SYN out,
// SYN-ACK parsed (recording the cookie ISS), ACK back, listener drained.
void RampTo(BenchState& st, size_t target) {
  C1mWorld& w = *st.w;
  constexpr size_t kBatch = 256;
  st.srv_iss.resize(target, 0);
  st.echo_rounds.resize(target, 0);
  st.conns.reserve(target);
  while (st.conns.size() < target) {
    const size_t begin = st.conns.size();
    const size_t n = std::min(kBatch, target - begin);
    for (size_t i = 0; i < n; i++) {
      const size_t flow = begin + i;
      TcpHeader syn;
      syn.src_port = FlowPort(flow);
      syn.dst_port = kServerPort;
      syn.seq = kClientIss + static_cast<uint32_t>(flow);
      syn.flags.syn = true;
      syn.window = 65535;
      syn.mss_option = 1460;
      w.DeliverToServer(syn, FlowIp(flow), {});
    }
    w.rx.clear();
    w.PumpQuiet();
    size_t acked = 0;
    for (const C1mWorld::RxSeg& seg : w.rx) {
      if (!seg.hdr.flags.syn || !seg.hdr.flags.ack) {
        continue;
      }
      const size_t flow = FlowFromAddr(seg.dst_ip, seg.hdr.dst_port);
      st.srv_iss[flow] = seg.hdr.seq;
      TcpHeader ack;
      ack.src_port = seg.hdr.dst_port;
      ack.dst_port = kServerPort;
      ack.seq = seg.hdr.ack;  // client iss + 1
      ack.ack = seg.hdr.seq + 1;
      ack.flags.ack = true;
      ack.window = 65535;
      w.DeliverToServer(ack, seg.dst_ip, {});
      acked++;
    }
    if (acked != n) {
      std::fprintf(stderr, "bench_c1m: batch at %zu: %zu/%zu SYN-ACKs seen\n", begin, acked, n);
      std::abort();
    }
    w.rx.clear();
    w.PumpQuiet();
    while (auto conn = st.listener->Accept()) {
      // Deterministic single-threaded world: accept order is injection order. Verify anyway —
      // the whole bench indexes per-flow state by that assumption.
      const size_t flow = st.conns.size();
      if (conn->remote().port != FlowPort(flow) || conn->remote().ip.value != FlowIp(flow).value) {
        std::fprintf(stderr, "bench_c1m: accept order broke at flow %zu\n", flow);
        std::abort();
      }
      st.conns.push_back(std::move(conn));
    }
    if (st.conns.size() != begin + n) {
      std::fprintf(stderr, "bench_c1m: %zu/%zu handshakes completed at %zu\n",
                   st.conns.size() - begin, n, begin);
      std::abort();
    }
  }
}

// One echo round on `flow`: 64 B in, server app pops and pushes it back, 64 B out, final ack.
// Returns the wall-clock nanoseconds from frame injection to echo arrival at the client NIC.
uint64_t EchoOnce(BenchState& st, size_t flow) {
  C1mWorld& w = *st.w;
  const uint32_t k = st.echo_rounds[flow]++;
  const uint32_t cli_seq = kClientIss + static_cast<uint32_t>(flow) + 1 + k * kEchoBytes;
  const uint32_t srv_seq = st.srv_iss[flow] + 1 + k * kEchoBytes;

  std::array<uint8_t, kEchoBytes> payload;
  for (size_t i = 0; i < kEchoBytes; i++) {
    payload[i] = static_cast<uint8_t>(flow ^ (k * 31) ^ i);
  }
  TcpHeader data;
  data.src_port = FlowPort(flow);
  data.dst_port = kServerPort;
  data.seq = cli_seq;
  data.ack = srv_seq;
  data.flags.ack = true;
  data.flags.psh = true;
  data.window = 65535;

  const auto t0 = std::chrono::steady_clock::now();
  w.rx.clear();
  w.DeliverToServer(data, FlowIp(flow), payload);
  w.PumpQuiet();

  // The server application: drain the readable connection, echo the bytes back.
  const std::shared_ptr<TcpConnection>& conn = st.conns[flow];
  size_t got = 0;
  while (auto buf = conn->PopData()) {
    got += buf->size();
  }
  if (got != kEchoBytes) {
    std::fprintf(stderr, "bench_c1m: flow %zu round %u: popped %zu bytes\n", flow, k, got);
    std::abort();
  }
  void* p = w.alloc.Alloc(kEchoBytes);
  std::memcpy(p, payload.data(), kEchoBytes);
  if (conn->Push(Buffer::FromApp(w.alloc, p, kEchoBytes)) != Status::kOk) {
    std::fprintf(stderr, "bench_c1m: push failed on flow %zu\n", flow);
    std::abort();
  }
  w.alloc.Free(p);
  w.PumpQuiet();

  bool echoed = false;
  for (const C1mWorld::RxSeg& seg : w.rx) {
    if (seg.payload == kEchoBytes && seg.hdr.dst_port == FlowPort(flow)) {
      echoed = true;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (!echoed) {
    std::fprintf(stderr, "bench_c1m: no echo back on flow %zu round %u\n", flow, k);
    std::abort();
  }

  // Ack the echo so the server's retransmit timer disarms and the flow goes fully idle again.
  TcpHeader ack;
  ack.src_port = FlowPort(flow);
  ack.dst_port = kServerPort;
  ack.seq = cli_seq + kEchoBytes;
  ack.ack = srv_seq + kEchoBytes;
  ack.flags.ack = true;
  ack.window = 65535;
  w.rx.clear();
  w.DeliverToServer(ack, FlowIp(flow), {});
  w.PumpQuiet();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

struct DecadeReport {
  size_t flows = 0;
  double bytes_per_conn = 0;
  uint64_t echo_p50 = 0;
  uint64_t echo_p99 = 0;
};

DecadeReport RunDecade(BenchState& st, size_t flows, int echo_samples) {
  RampTo(st, flows);
  C1mWorld& w = *st.w;

  // Echo over flows spread across the whole population (cold cache lines, varied table
  // slots), several rounds each for a stable tail.
  Histogram lat;
  const size_t kSpread = 64;
  for (int i = 0; i < echo_samples; i++) {
    const size_t flow = (flows / kSpread) * (static_cast<size_t>(i) % kSpread);
    lat.Record(EchoOnce(st, flow));
  }

  DecadeReport r;
  r.flows = flows;
  r.bytes_per_conn = static_cast<double>(w.tcp.TcbBytesReserved()) / static_cast<double>(flows);
  r.echo_p50 = lat.P50();
  r.echo_p99 = lat.P99();
  std::printf(
      "flows=%-8zu bytes/conn=%-7.1f slab_live=%-8zu wheel_armed=%-4zu rss_mb=%-6lld "
      "echo_ns avg=%-7.0f p50=%-7" PRIu64 " p99=%-7" PRIu64 "\n",
      flows, r.bytes_per_conn, w.tcp.tcb_slab().live(), w.sched.timer_wheel().armed(),
      RssBytes() / (1024 * 1024), lat.Mean(), r.echo_p50, r.echo_p99);
  return r;
}

int Run(bool quick) {
  // A full ramp reserves ~310 MB inside the stack plus harness bookkeeping; refuse to swap.
  const long long need_kb = quick ? 512 * 1024 : 2 * 1024 * 1024;
  const long long avail_kb = MemAvailableKb();
  if (avail_kb >= 0 && avail_kb < need_kb) {
    std::printf("bench_c1m: skipped (MemAvailable %lld kB < %lld kB needed)\n", avail_kb,
                need_kb);
    return 0;
  }

  const size_t top = quick ? 100'000 : 1'000'000;
  TcpConfig cfg;
  cfg.syn_cookies = true;  // the ramp is a million half-open handshakes; keep them stateless
  cfg.flow_table_capacity = quick ? (1u << 18) : (1u << 21);  // pre-sized: no rehash mid-ramp
  C1mWorld w(cfg);
  // The generator's source IPs resolve to its MAC up front: ARP traffic is not under test.
  for (size_t flow = 0; flow < top; flow += 256) {
    w.eth.arp().Insert(FlowIp(flow), kClientMac);
  }

  BenchState st;
  st.w = &w;
  auto listener = w.tcp.Listen(kServerPort, /*backlog=*/1024);
  if (!listener.ok()) {
    std::fprintf(stderr, "bench_c1m: listen failed\n");
    return 1;
  }
  st.listener = *listener;

  std::printf("bench_c1m: ramping to %zu flows (%s mode)\n", top, quick ? "quick" : "full");
  std::vector<DecadeReport> reports;
  const int samples = quick ? 512 : 1024;
  for (size_t flows : {size_t{10'000}, size_t{100'000}, size_t{1'000'000}}) {
    if (flows > top) {
      break;
    }
    reports.push_back(RunDecade(st, flows, samples));
  }

  // Ramp-wide invariants, any mode: cookies made every handshake stateless, and the
  // pre-sized flow table never rehashed.
  const TcpStack::Stats& ts = w.tcp.stats();
  if (ts.syn_cookies_validated != top || w.tcp.NumConnections() != top) {
    std::fprintf(stderr, "bench_c1m FAILED: %" PRIu64 " validated / %zu connections\n",
                 ts.syn_cookies_validated, w.tcp.NumConnections());
    return 1;
  }
  if (w.tcp.flow_table().stats().grows != 0) {
    std::fprintf(stderr, "bench_c1m FAILED: flow table rehashed during a pre-sized ramp\n");
    return 1;
  }

  if (quick) {
    // Gate thresholds are deliberately loose (2x-ish headroom on the reference container) so
    // machine variance doesn't flake CI while real regressions — a fatter TCB, a rehash in
    // the ramp, O(n) behavior in the datapath — trip them hard.
    const DecadeReport& final_decade = reports.back();
    if (final_decade.bytes_per_conn > 1024.0) {
      std::fprintf(stderr, "bench_c1m FAILED: %.1f bytes/conn exceeds the 1 KB budget\n",
                   final_decade.bytes_per_conn);
      return 1;
    }
    if (final_decade.echo_p99 > 2'000'000) {
      std::fprintf(stderr,
                   "bench_c1m FAILED: echo p99 %" PRIu64 " ns at %zu flows (gate: 2 ms)\n",
                   final_decade.echo_p99, final_decade.flows);
      return 1;
    }
    std::printf("perf-smoke c1m OK\n");
  }
  return 0;
}

}  // namespace
}  // namespace demi

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  return demi::Run(quick);
}
