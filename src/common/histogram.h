// Log-bucketed latency histogram for benchmark reporting (avg / p50 / p99 / p99.9).
//
// HDR-style: values are bucketed with ~1.5% relative precision so recording is a couple of
// shifts and an increment — cheap enough to call on every request in a closed loop.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace demi {

class Histogram {
 public:
  Histogram() : buckets_(kNumBuckets, 0) {}

  void Record(uint64_t value) {
    count_++;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    buckets_[BucketFor(value)]++;
  }

  void Merge(const Histogram& other) {
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (size_t i = 0; i < kNumBuckets; i++) {
      buckets_[i] += other.buckets_[i];
    }
  }

  void Reset() {
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), 0);
  }

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_; }

  // Value at the given quantile in [0, 1]; returns the representative value of the bucket
  // containing that rank (upper bound of the bucket, so quantiles are conservative).
  uint64_t Quantile(double q) const {
    if (count_ == 0) {
      return 0;
    }
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; i++) {
      seen += buckets_[i];
      if (seen >= rank) {
        return BucketUpperBound(i);
      }
    }
    return max_;
  }

  uint64_t P50() const { return Quantile(0.50); }
  uint64_t P99() const { return Quantile(0.99); }
  uint64_t P999() const { return Quantile(0.999); }

 private:
  // 64 orders of magnitude (base 2) x 64 sub-buckets each.
  static constexpr size_t kSubBucketBits = 6;
  static constexpr size_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr size_t kNumBuckets = 64 * kSubBuckets;

  static size_t BucketFor(uint64_t value) {
    if (value < kSubBuckets) {
      return static_cast<size_t>(value);
    }
    const int msb = 63 - std::countl_zero(value);
    const int shift = msb - static_cast<int>(kSubBucketBits);
    const size_t sub = static_cast<size_t>(value >> shift) & (kSubBuckets - 1);
    return (static_cast<size_t>(msb - kSubBucketBits + 1) << kSubBucketBits) + sub;
  }

  static uint64_t BucketUpperBound(size_t bucket) {
    if (bucket < kSubBuckets) {
      return bucket;
    }
    const size_t order = (bucket >> kSubBucketBits);
    const size_t sub = bucket & (kSubBuckets - 1);
    const int shift = static_cast<int>(order) - 1;
    return ((static_cast<uint64_t>(kSubBuckets) + sub + 1) << shift) - 1;
  }

  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  std::vector<uint64_t> buckets_;
};

}  // namespace demi

#endif  // SRC_COMMON_HISTOGRAM_H_
