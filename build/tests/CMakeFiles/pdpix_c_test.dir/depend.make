# Empty dependencies file for pdpix_c_test.
# This may be replaced when dependencies are built.
