// Receive Side Scaling: deterministic Toeplitz flow hashing for the multi-queue SimNic.
//
// Real NICs steer each inbound frame to one of N rx queues by hashing the packet's flow
// identity — the Microsoft RSS specification's Toeplitz hash over the IPv4/port 4-tuple —
// so that all packets of one flow land on one queue and therefore one core. The paper's
// multi-worker evaluation (§7, Fig. 9) relies on exactly this: one single-threaded libOS per
// core, flows pinned to workers by NIC RSS, no cross-core synchronization on the datapath.
//
// The hash here is the verbatim Toeplitz construction with the canonical Microsoft key, so
// queue placement is deterministic across runs, platforms and queue counts — a requirement
// for seeded simulation replay.

#ifndef SRC_NETSIM_RSS_H_
#define SRC_NETSIM_RSS_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/net/address.h"

namespace demi {

// Toeplitz hash of `input` (at most 36 bytes — the largest standard RSS input) under the
// canonical Microsoft 40-byte key.
uint32_t ToeplitzHash(std::span<const uint8_t> input);

// RSS hash of an IPv4 4-tuple, fields in host byte order (hashed in network order, per spec).
uint32_t RssHash4Tuple(Ipv4Addr src_ip, Ipv4Addr dst_ip, uint16_t src_port, uint16_t dst_port);

// Maps a raw Ethernet frame to an rx queue in [0, num_queues): TCP/UDP frames hash their
// 4-tuple, other IPv4 frames hash the address 2-tuple, and non-IPv4 frames (ARP, runts)
// land on queue 0 — the default-queue behaviour of real RSS hardware.
size_t RssQueueForFrame(std::span<const uint8_t> frame, size_t num_queues);

}  // namespace demi

#endif  // SRC_NETSIM_RSS_H_
