/*
 * PDPIX C API (paper Figure 2).
 *
 * The paper's library-call surface is C — existing µs-scale applications (Redis, TxnStore, the
 * TURN relay) are C/C++ programs ported by swapping POSIX calls for these. This header is
 * C-compatible; the implementation binds to a demi::LibOS instance per thread.
 *
 * Conventions follow the paper: calls that return descriptors in POSIX return queue
 * descriptors; push/pop return qtokens redeemed via demi_wait*; all I/O memory comes from
 * demi_sga_alloc / the DMA-capable heap; errors are negative errno-style codes.
 */

#ifndef SRC_CORE_PDPIX_C_H_
#define SRC_CORE_PDPIX_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#define DEMI_SGA_MAXSEGS 4

typedef int demi_qd_t;
typedef uint64_t demi_qtoken_t;

typedef struct demi_sgaseg {
  void* buf;
  uint32_t len;
} demi_sgaseg_t;

typedef struct demi_sgarray {
  uint32_t numsegs;
  demi_sgaseg_t segs[DEMI_SGA_MAXSEGS];
} demi_sgarray_t;

typedef struct demi_sockaddr {
  uint32_t ip;   /* IPv4, host byte order */
  uint16_t port;
} demi_sockaddr_t;

typedef enum demi_opcode {
  DEMI_OPC_INVALID = 0,
  DEMI_OPC_PUSH,
  DEMI_OPC_POP,
  DEMI_OPC_ACCEPT,
  DEMI_OPC_CONNECT,
  DEMI_OPC_SPLICE,
} demi_opcode_t;

typedef struct demi_qresult {
  demi_opcode_t opcode;
  demi_qd_t qd;
  int error;               /* 0 on success, negative errno otherwise */
  demi_sgarray_t sga;      /* pop: app-owned buffers */
  demi_sockaddr_t remote;  /* accept/pop(udp): peer */
  demi_qd_t new_qd;        /* accept: connection queue */
  uint64_t bytes;          /* splice: total payload bytes moved */
} demi_qresult_t;

/* Queue creation and management. type: 0 = stream (SOCK_STREAM), 1 = datagram (SOCK_DGRAM). */
demi_qd_t demi_socket(int type);
int demi_bind(demi_qd_t qd, const demi_sockaddr_t* addr);
int demi_listen(demi_qd_t qd, int backlog);
demi_qtoken_t demi_accept(demi_qd_t qd);
demi_qtoken_t demi_connect(demi_qd_t qd, const demi_sockaddr_t* addr);
int demi_close(demi_qd_t qd);
demi_qd_t demi_open(const char* path);
int demi_seek(demi_qd_t qd, uint64_t offset);
int demi_truncate(demi_qd_t qd, uint64_t offset);
demi_qd_t demi_queue(void); /* lightweight in-memory queue */

/* I/O processing. Returns 0 on qtoken allocation failure. */
demi_qtoken_t demi_push(demi_qd_t qd, const demi_sgarray_t* sga);
demi_qtoken_t demi_pushto(demi_qd_t qd, const demi_sgarray_t* sga,
                          const demi_sockaddr_t* addr);
demi_qtoken_t demi_pop(demi_qd_t qd);
/* Zero-copy in-libOS stream move (sendfile): runs until src's end of stream, then the qtoken
 * completes with bytes = total payload moved. Supported pairs are libOS-specific (the
 * integrated network x storage libOSes splice TCP connections and log files either way). */
demi_qtoken_t demi_splice(demi_qd_t src_qd, demi_qd_t dst_qd);

/* Notification. timeout_ns 0 = wait forever. */
int demi_wait(demi_qresult_t* out, demi_qtoken_t qt, uint64_t timeout_ns);
int demi_wait_any(demi_qresult_t* out, size_t* index_out, const demi_qtoken_t* qts,
                  size_t num_qts, uint64_t timeout_ns);
int demi_wait_all(demi_qresult_t* out /* num_qts entries */, const demi_qtoken_t* qts,
                  size_t num_qts, uint64_t timeout_ns);

/* Memory: the DMA-capable heap. */
demi_sgarray_t demi_sga_alloc(uint32_t size);
void demi_sga_free(demi_sgarray_t* sga);
void* demi_malloc(size_t size);
void demi_free(void* ptr);

#ifdef __cplusplus
} /* extern "C" */

/* C++-side binding: attach a libOS to the calling thread's PDPIX C API. */
namespace demi {
class LibOS;
/* Sets (or clears, with nullptr) the libOS the C calls above operate on. */
void BindPdpixThread(LibOS* os);
LibOS* CurrentPdpixLibOS();
}  // namespace demi
#endif

#endif /* SRC_CORE_PDPIX_C_H_ */
