// Tests for the C-compatible PDPIX surface (paper Figure 2): a C-style echo written entirely
// against demi_* calls, running over Catnip in duet mode, plus error-path coverage.

#include <gtest/gtest.h>

#include <cstring>

#include "src/apps/echo.h"
#include "src/core/pdpix_c.h"
#include "src/liboses/catnip.h"

namespace demi {
namespace {

class PdpixCTest : public ::testing::Test {
 protected:
  PdpixCTest()
      : net_(LinkConfig{}, 7),
        server_(net_, Catnip::Config{MacAddr{1}, Ipv4Addr::FromOctets(10, 0, 0, 1), TcpConfig{}, nullptr}, clock_),
        client_(net_, Catnip::Config{MacAddr{2}, Ipv4Addr::FromOctets(10, 0, 0, 2), TcpConfig{}, nullptr}, clock_) {
    server_.ethernet().arp().Insert(client_.local_ip(), MacAddr{2});
    client_.ethernet().arp().Insert(server_.local_ip(), MacAddr{1});
    BindPdpixThread(&client_);
  }
  ~PdpixCTest() override { BindPdpixThread(nullptr); }

  MonotonicClock clock_;
  SimNetwork net_;
  Catnip server_;
  Catnip client_;
};

TEST_F(PdpixCTest, CStyleTcpEcho) {
  // Server side: the C++ echo app pumped from the client's waits.
  EchoServerApp echo(server_, EchoServerOptions{{server_.local_ip(), 8080},
                                                SocketType::kStream});
  client_.SetExternalPump([&] {
    server_.PollOnce();
    echo.Pump();
  });

  // Client side: pure C calls, written exactly as the paper's Figure 2 suggests.
  demi_qd_t qd = demi_socket(0);
  ASSERT_GE(qd, 0);
  demi_sockaddr_t addr = {Ipv4Addr::FromOctets(10, 0, 0, 1).value, 8080};
  demi_qtoken_t qt = demi_connect(qd, &addr);
  ASSERT_NE(qt, 0u);
  demi_qresult_t qr;
  ASSERT_EQ(demi_wait(&qr, qt, 0), 0);
  ASSERT_EQ(qr.error, 0);
  EXPECT_EQ(qr.opcode, DEMI_OPC_CONNECT);

  for (int i = 0; i < 50; i++) {
    demi_sgarray_t sga = demi_sga_alloc(64);
    ASSERT_EQ(sga.numsegs, 1u);
    std::memset(sga.segs[0].buf, 'a' + (i % 26), 64);

    qt = demi_push(qd, &sga);
    ASSERT_NE(qt, 0u);
    demi_sga_free(&sga);  // UAF protection: free right after push
    ASSERT_EQ(demi_wait(&qr, qt, 0), 0);
    ASSERT_EQ(qr.error, 0);

    size_t got = 0;
    while (got < 64) {
      qt = demi_pop(qd);
      ASSERT_NE(qt, 0u);
      ASSERT_EQ(demi_wait(&qr, qt, 0), 0);
      ASSERT_EQ(qr.error, 0);
      ASSERT_EQ(qr.opcode, DEMI_OPC_POP);
      for (uint32_t s = 0; s < qr.sga.numsegs; s++) {
        const char* p = static_cast<const char*>(qr.sga.segs[s].buf);
        for (uint32_t b = 0; b < qr.sga.segs[s].len; b++) {
          ASSERT_EQ(p[b], 'a' + (i % 26));
        }
        got += qr.sga.segs[s].len;
      }
      demi_sga_free(&qr.sga);
    }
  }
  EXPECT_EQ(demi_close(qd), 0);
}

TEST_F(PdpixCTest, WaitAnyAcrossMemoryQueues) {
  demi_qd_t q1 = demi_queue();
  demi_qd_t q2 = demi_queue();
  ASSERT_GE(q1, 0);
  ASSERT_GE(q2, 0);
  demi_qtoken_t pops[2] = {demi_pop(q1), demi_pop(q2)};
  ASSERT_NE(pops[0], 0u);
  ASSERT_NE(pops[1], 0u);

  demi_sgarray_t msg = demi_sga_alloc(8);
  std::memcpy(msg.segs[0].buf, "to-q2!!", 8);
  demi_qtoken_t push = demi_push(q2, &msg);
  demi_sga_free(&msg);
  demi_qresult_t qr;
  ASSERT_EQ(demi_wait(&qr, push, 0), 0);

  size_t index = 99;
  ASSERT_EQ(demi_wait_any(&qr, &index, pops, 2, kSecond), 0);
  EXPECT_EQ(index, 1u);
  EXPECT_EQ(std::memcmp(qr.sga.segs[0].buf, "to-q2!!", 8), 0);
  demi_sga_free(&qr.sga);
}

TEST_F(PdpixCTest, ErrorPaths) {
  EXPECT_EQ(demi_bind(999, nullptr), -EINVAL);
  EXPECT_EQ(demi_close(999), -EBADF);
  EXPECT_EQ(demi_pop(999), 0u);  // bad descriptor: no token
  demi_qresult_t qr;
  EXPECT_EQ(demi_wait(&qr, 0xFEFE, kMillisecond), -EINVAL);  // bogus token

  // Unbound thread: every call fails cleanly.
  BindPdpixThread(nullptr);
  EXPECT_EQ(demi_socket(0), -ENODEV);
  EXPECT_EQ(demi_malloc(64), nullptr);
  demi_sgarray_t sga = demi_sga_alloc(64);
  EXPECT_EQ(sga.numsegs, 0u);
  BindPdpixThread(&client_);
}

TEST_F(PdpixCTest, WaitAllCollectsEverything) {
  demi_qd_t q = demi_queue();
  ASSERT_GE(q, 0);
  demi_qtoken_t pushes[3];
  for (int i = 0; i < 3; i++) {
    demi_sgarray_t m = demi_sga_alloc(4);
    std::memcpy(m.segs[0].buf, "abc", 4);
    pushes[i] = demi_push(q, &m);
    demi_sga_free(&m);
    ASSERT_NE(pushes[i], 0u);
  }
  demi_qresult_t results[3];
  ASSERT_EQ(demi_wait_all(results, pushes, 3, kSecond), 0);
  for (int i = 0; i < 3; i++) {
    EXPECT_EQ(results[i].error, 0);
    EXPECT_EQ(results[i].opcode, DEMI_OPC_PUSH);
  }
}

}  // namespace
}  // namespace demi
