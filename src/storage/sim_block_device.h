// SimBlockDevice: the simulated NVMe/SPDK substrate.
//
// Substitution for an Intel Optane SSD driven through SPDK (DESIGN.md §2): an asynchronous,
// block-addressed submit/poll interface with a configurable latency model (default tuned to the
// paper's 3D-XPoint device: ~10 µs writes). Cattree drives this exactly as it would drive SPDK:
// submit, yield, poll completions from the fast-path coroutine.
//
// Multi-queue: like an NVMe controller, the device exposes N completion queues
// (ConfigureQueues). Each submitter tags its ops with a queue id and polls only that queue, so
// per-shard LogDevice partitions (docs/STORAGE.md) never observe each other's completions. All
// entry points take an internal mutex — the device is the one piece of storage state ShardGroup
// workers share, exactly as the NIC's fabric locks are on the network side.

#ifndef SRC_STORAGE_SIM_BLOCK_DEVICE_H_
#define SRC_STORAGE_SIM_BLOCK_DEVICE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <queue>
#include <span>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace demi {

class FaultInjector;
class MetricsRegistry;
class Tracer;

class SimBlockDevice {
 public:
  struct Config {
    size_t block_size = 4096;
    size_t num_blocks = 16384;  // 64 MB
    DurationNs read_latency = 7 * kMicrosecond;
    DurationNs write_latency = 10 * kMicrosecond;
    uint64_t bandwidth_bytes_per_sec = 2'000'000'000ULL;  // 2 GB/s; 0 = infinite
    size_t queue_depth = 64;
  };

  struct Completion {
    uint64_t cookie;
    Status status;
  };

  // Largest scatter-gather list SubmitWritev accepts (models the controller's SGL descriptor
  // limit; callers with more slices must coalesce — LogDevice counts those as bounce bytes).
  static constexpr size_t kMaxWritevSegments = 128;

  SimBlockDevice(const Config& config, Clock& clock);

  // Sizes the completion-queue set (NVMe queue pairs). Must be called before any I/O is
  // submitted on queues >= 1; existing completions must be drained first. Queue 0 always
  // exists.
  void ConfigureQueues(size_t num_queues);
  size_t num_queues() const;

  // Submits an asynchronous write of `data` (must be a whole number of blocks) at `lba`.
  // The data is captured at submit time (models DMA from the submission ring).
  [[nodiscard]] Status SubmitWrite(uint64_t lba, std::span<const uint8_t> data, uint64_t cookie,
                                   size_t queue = 0);

  // Scatter-gather write: the device gathers `iov` at submit time (controller-side DMA from
  // the registered slices — the host never concatenates them). Total bytes must be a whole
  // number of blocks.
  [[nodiscard]] Status SubmitWritev(uint64_t lba, std::span<const std::span<const uint8_t>> iov,
                                    uint64_t cookie, size_t queue = 0);

  // Submits an asynchronous read of `out.size()` bytes (whole blocks) at `lba`; `out` must stay
  // valid until the completion is polled. Data lands in `out` when the completion is delivered.
  [[nodiscard]] Status SubmitRead(uint64_t lba, std::span<uint8_t> out, uint64_t cookie,
                                  size_t queue = 0);

  // Polls for finished operations on `queue`; returns the number written to `out`. Due
  // completions for other queues are moved to their ready lists (any poller advances the
  // device; only the owning queue sees the cookie).
  size_t PollCompletions(std::span<Completion> out, size_t queue = 0);

  // Earliest pending completion time (0 if idle) for stepped VirtualClock tests. Spans every
  // queue: a conservative wake-up for any poller.
  TimeNs NextCompletionTime() const;

  const Config& config() const { return config_; }
  size_t CapacityBytes() const { return config_.block_size * config_.num_blocks; }

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t queue_full_rejections = 0;
    uint64_t io_errors = 0;  // completions delivered with a non-kOk status (injected faults)
  };
  Stats GetStats() const;

  // Registers the blockdev.* counters as callback gauges (docs/OBSERVABILITY.md). Called by
  // whichever libOS is driving this device; the registry must not outlive the device. Safe to
  // call from several shard registries — callbacks read under the device mutex and ShardGroup's
  // rollup counts blockdev.* once.
  void RegisterMetrics(MetricsRegistry& registry);
  // Attaches a tracer for kDiskSubmit/kDiskComplete events. The tracer's ring is not
  // thread-safe, so multi-worker setups (a shared partitioned device) must leave this unset.
  void SetTracer(Tracer* tracer);

  // Optional chaos hook (null by default): consulted per submitted op for injected transient
  // I/O errors, latency spikes and crash-point torn writes. See src/faults/fault_injector.h.
  void SetFaultInjector(FaultInjector* faults);

  // Direct synchronous access for tests/recovery tooling (not a datapath API).
  void RawRead(uint64_t byte_offset, std::span<uint8_t> out) const;

 private:
  struct Pending {
    TimeNs complete_at;
    uint64_t seq;
    uint64_t cookie;
    size_t queue;
    bool is_read;
    uint64_t lba;
    Status status = Status::kOk;      // injected fault outcome, decided at submit time
    size_t media_bytes = 0;           // writes: how much of write_data reaches the media
    std::vector<uint8_t> write_data;  // writes: captured data
    std::span<uint8_t> read_target;   // reads: caller's destination
    bool operator>(const Pending& o) const {
      return complete_at != o.complete_at ? complete_at > o.complete_at : seq > o.seq;
    }
  };

  TimeNs CompletionTimeFor(size_t bytes, bool is_read);
  [[nodiscard]] Status SubmitWriteLocked(uint64_t lba, Pending&& p, size_t total_bytes);
  // Moves every due pending op to its queue's ready list (applies media effects).
  void RetireDueLocked(TimeNs now);

  Config config_;
  Clock& clock_;
  std::vector<uint8_t> media_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> pending_;
  std::vector<std::deque<Completion>> ready_;  // per completion queue
  uint64_t next_seq_ = 0;
  TimeNs device_free_at_ = 0;
  Stats stats_;
  Tracer* tracer_ = nullptr;
  FaultInjector* faults_ = nullptr;
  mutable std::mutex mu_;
};

}  // namespace demi

#endif  // SRC_STORAGE_SIM_BLOCK_DEVICE_H_
