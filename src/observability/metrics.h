// MetricsRegistry: the uniform observability surface over every datapath component.
//
// The paper's evaluation (§7) lives and dies on nanosecond-granularity datapath counters —
// wait latency, scheduler poll behaviour, retransmits. Components keep their existing plain
// `Stats` structs on the hot path (a plain increment, zero new cost) and *register* them here
// as callback gauges sampled only at snapshot time; metrics that no component owned before
// (wait latency histograms, registry-owned counters) are allocated by the registry itself.
// Counters and gauges are lock-free (relaxed atomics) so a snapshot taken from another thread
// never blocks the datapath.
//
// Names are dotted `component.metric` strings (see docs/OBSERVABILITY.md for the full
// reference); snapshots export as aligned text or JSON.

#ifndef SRC_OBSERVABILITY_METRICS_H_
#define SRC_OBSERVABILITY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"

namespace demi {

enum class MetricType : uint8_t { kCounter, kGauge, kCallback, kHistogram };

const char* MetricTypeName(MetricType type);

// Monotonically increasing, lock-free.
class Counter {
 public:
  // demilint: atomic(pure statistic: no other memory is published through a counter, so
  // relaxed RMWs lose nothing — fetch_add is still atomic and the value stays exact; a
  // snapshot may lag concurrent increments, which is fine for telemetry)
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  // demilint: atomic(see Inc — telemetry read, staleness acceptable)
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  // demilint: atomic(see Inc — test-only reset, never raced with readers that care)
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  // demilint: atomic(single word updated with relaxed RMWs; see Inc for why relaxed holds)
  std::atomic<uint64_t> value_{0};
};

// Point-in-time signed value, lock-free.
class Gauge {
 public:
  // demilint: atomic(pure statistic, same contract as Counter: no ordering with other
  // state is implied by a gauge update, and RMW atomicity keeps Add/Sub pairs exact)
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  // demilint: atomic(see Set)
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  // demilint: atomic(see Set)
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  // demilint: atomic(see Set — telemetry read, staleness acceptable)
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // demilint: atomic(single word updated with relaxed RMWs; see Set for why relaxed holds)
  std::atomic<int64_t> value_{0};
};

class MetricsRegistry {
 public:
  // Snapshot of one metric. Scalar metrics fill `value`; histograms fill the latency fields.
  struct Sample {
    std::string name;
    std::string component;
    std::string unit;
    MetricType type = MetricType::kCounter;
    int64_t value = 0;
    // Histogram-only.
    uint64_t count = 0;
    double mean = 0.0;
    uint64_t min = 0;
    uint64_t p50 = 0;
    uint64_t p99 = 0;
    uint64_t p999 = 0;
    uint64_t max = 0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration is idempotent per name: re-registering an existing name of the same type
  // returns the existing instrument (callbacks are replaced). References stay valid for the
  // registry's lifetime. Not for the hot path — register at construction time.
  Counter& RegisterCounter(std::string name, std::string component, std::string unit,
                           std::string help);
  Gauge& RegisterGauge(std::string name, std::string component, std::string unit,
                       std::string help);
  Histogram& RegisterHistogram(std::string name, std::string component, std::string unit,
                               std::string help);
  // Samples `fn()` at snapshot time: how pre-existing component `Stats` structs are retrofitted
  // without touching their increment sites.
  void RegisterCallback(std::string name, std::string component, std::string unit,
                        std::string help, std::function<uint64_t()> fn);

  // Drops a metric (component being torn down before the registry). Returns false if absent.
  bool Unregister(std::string_view name);
  // Drops every metric registered under `component`; returns how many were removed.
  size_t UnregisterComponent(std::string_view component);

  bool Has(std::string_view name) const { return index_.count(std::string(name)) > 0; }
  size_t NumMetrics() const { return entries_.size(); }
  size_t NumComponents() const;

  // Samples every metric, sorted by (component, name).
  std::vector<Sample> Snapshot() const;

  // Aligned human-readable table (one line per metric).
  std::string ExportText() const;
  // {"metrics":[{"name":...,"component":...,"type":...,"unit":...,...}]}
  std::string ExportJson() const;

 private:
  struct Entry {
    std::string name;
    std::string component;
    std::string unit;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<uint64_t()> callback;
  };

  Entry& Intern(std::string name, std::string component, std::string unit, std::string help,
                MetricType type);

  std::vector<std::unique_ptr<Entry>> entries_;
  std::unordered_map<std::string, size_t> index_;  // name -> entries_ slot
};

}  // namespace demi

#endif  // SRC_OBSERVABILITY_METRICS_H_
