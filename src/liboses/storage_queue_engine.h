// StorageQueueEngine: the Cattree queue logic (paper §6.4), shared between the standalone
// Cattree libOS and the integrated network×storage libOSes (Catnip×Cattree, Catmint×Cattree).
//
// Maps PDPIX queues onto the abstract log: each open() returns a queue with its own read
// cursor; push appends records (durable on completion), pop reads the record at the cursor,
// seek/truncate move the cursor and garbage-collect.

#ifndef SRC_LIBOSES_STORAGE_QUEUE_ENGINE_H_
#define SRC_LIBOSES_STORAGE_QUEUE_ENGINE_H_

#include <cstring>
#include <vector>

#include "src/core/libos.h"
#include "src/storage/log_device.h"

namespace demi {

class StorageQueueEngine {
 public:
  // `partition`/`epoch` select the block range and shared allocation epoch this engine's log
  // owns (multi-worker Catnip×Cattree; see src/storage/partitioned_log.h). The defaults give
  // the classic whole-device single-worker log.
  StorageQueueEngine(SimBlockDevice& disk, Scheduler& sched, PoolAllocator& alloc,
                     QTokenTable& tokens, const LogPartition& partition = {},
                     std::atomic<uint64_t>* epoch = nullptr)
      : log_(disk, sched, partition, epoch), alloc_(alloc), tokens_(tokens) {}

  LogDevice& log() { return log_; }
  void Poll() { log_.PollDevice(); }
  bool HasPendingIo() const { return log_.HasPendingIo(); }

  // Spawnable op coroutines; the libOS owns qtoken allocation and queue bookkeeping.

  // Appends the sga as one record; completes `qt` when durable. The application's buffers are
  // pinned HERE, synchronously at push time — a coroutine body only runs at its first resume,
  // by which point PDPIX allows the app to have freed the memory (UAF semantics).
  Task<void> PushOp(QToken qt, const Sgarray& sga) {
    std::vector<Buffer> pinned;
    pinned.reserve(sga.num_segs);
    for (uint32_t i = 0; i < sga.num_segs; i++) {
      Buffer buf = Buffer::TryFromApp(alloc_, sga.segs[i].buf, sga.segs[i].len);
      if (!buf.valid()) {
        return FailOp(qt, Status::kNoMemory);  // heap exhausted: ENOMEM via the qtoken
      }
      buf.NoteOwner(/*qd=*/-1, qt);  // DemiSan: the engine does not know the qd, the qt suffices
      pinned.push_back(std::move(buf));
    }
    return PushOpPinned(qt, std::move(pinned));  // parameters move into the frame immediately
  }

  // Reads the record at *cursor; completes `qt` with an app-owned sga and advances the cursor.
  Task<void> PopOp(QToken qt, uint64_t* cursor) {
    auto result = co_await log_.Read(*cursor);
    QResult qr;
    if (!result.ok()) {
      qr.status = result.error();
      tokens_.Complete(qt, qr);
      co_return;
    }
    *cursor = result->next_cursor;
    Buffer buf = Buffer::TryAllocate(alloc_, result->payload.size());
    if (!buf.valid()) {
      qr.status = Status::kNoMemory;  // cursor already advanced past a durable record; the
      tokens_.Complete(qt, qr);       // caller may Seek back and re-pop once memory frees up
      co_return;
    }
    if (!result->payload.empty()) {
      std::memcpy(buf.mutable_data(), result->payload.data(), result->payload.size());
    }
    qr.status = Status::kOk;
    qr.sga = BufferToAppSga(std::move(buf));
    tokens_.Complete(qt, qr);
  }

  [[nodiscard]] Status Seek(uint64_t* cursor, uint64_t offset) {
    if (offset < log_.head() || offset > log_.tail()) {
      return Status::kInvalidArgument;
    }
    *cursor = offset;
    return Status::kOk;
  }

  [[nodiscard]] Status Truncate(uint64_t offset) { return log_.Truncate(offset); }

 private:
  // Completes `qt` with a failure status on the next scheduler round (ops are spawned, so the
  // failure must still arrive asynchronously through the qtoken like any other completion).
  Task<void> FailOp(QToken qt, Status status) {
    QResult qr;
    qr.status = status;
    tokens_.Complete(qt, qr);
    co_return;
  }

  Task<void> PushOpPinned(QToken qt, std::vector<Buffer> pinned) {
    // Flatten into the record image (models the controller's DMA gather from the ring).
    std::vector<uint8_t> record;
    for (const Buffer& b : pinned) {
      record.insert(record.end(), b.data(), b.data() + b.size());
    }
    auto result = co_await log_.Append(record);
    QResult qr;
    qr.status = result.error();
    tokens_.Complete(qt, qr);
  }

  LogDevice log_;
  PoolAllocator& alloc_;
  QTokenTable& tokens_;
};

}  // namespace demi

#endif  // SRC_LIBOSES_STORAGE_QUEUE_ENGINE_H_
