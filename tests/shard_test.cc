// Tests for ShardGroup: shared-nothing per-core Catnip shards over a multi-queue RSS NIC.
//
// These are the multi-worker integration tests of the Fig. 9 runtime: real worker threads
// busy-polling their own queue pairs, real TCP connections steered by the Toeplitz hash.
// Everything runs on a MonotonicClock (busy-polling threads would spin forever on an
// unadvanced VirtualClock). Suite names keep the `ShardGroup` prefix — the TSan job in
// scripts/run_sanitizers.sh runs this binary under `--gtest_filter='ShardGroup*'`.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "src/apps/echo.h"
#include "src/apps/minikv.h"
#include "src/common/clock.h"
#include "src/core/shard_group.h"
#include "src/liboses/catnip.h"
#include "src/netsim/sim_network.h"
#include "src/storage/sim_block_device.h"

namespace demi {
namespace {

constexpr Ipv4Addr kServerIp = Ipv4Addr::FromOctets(10, 0, 0, 1);
constexpr MacAddr kServerMac{0xA1};

constexpr Ipv4Addr kClientIps[2] = {Ipv4Addr::FromOctets(10, 0, 0, 2),
                                    Ipv4Addr::FromOctets(10, 0, 0, 3)};
constexpr MacAddr kClientMacs[2] = {MacAddr{0xB2}, MacAddr{0xB3}};

ShardGroup::Options TwoWorkerOptions() {
  ShardGroup::Options opts;
  opts.num_workers = 2;
  opts.base = Catnip::Config{kServerMac, kServerIp, TcpConfig{}, nullptr};
  for (size_t i = 0; i < 2; i++) {
    opts.static_arp.emplace_back(kClientIps[i], kClientMacs[i]);
  }
  return opts;
}

std::unique_ptr<Catnip> MakeClient(SimNetwork& net, Clock& clock, size_t i) {
  Catnip::Config cfg{kClientMacs[i], kClientIps[i], TcpConfig{}, nullptr};
  auto os = std::make_unique<Catnip>(net, cfg, clock);
  os->ethernet().arp().Insert(kServerIp, kServerMac);
  return os;
}

// Opens one connection, echoes `rounds` patterned messages and byte-verifies every reply.
// Adds the echoed byte count to *bytes_echoed.
void ByteExactEchoRun(Catnip& os, SocketAddress server, size_t rounds, uint8_t tag,
                      uint64_t* bytes_echoed) {
  auto sock = os.Socket(SocketType::kStream);
  ASSERT_TRUE(sock.ok());
  auto cqt = os.Connect(*sock, server);
  ASSERT_TRUE(cqt.ok());
  auto cr = os.Wait(*cqt, 5 * kSecond);
  ASSERT_TRUE(cr.ok());
  ASSERT_EQ(cr->status, Status::kOk);

  for (size_t round = 0; round < rounds; round++) {
    const size_t len = 32 + (round * 37) % 96;
    auto pattern = [&](size_t i) { return static_cast<uint8_t>(tag ^ (round * 31 + i)); };
    void* buf = os.DmaMalloc(len);
    ASSERT_NE(buf, nullptr);
    for (size_t i = 0; i < len; i++) {
      static_cast<uint8_t*>(buf)[i] = pattern(i);
    }
    auto push_qt = os.Push(*sock, Sgarray::Of(buf, static_cast<uint32_t>(len)));
    ASSERT_TRUE(push_qt.ok());
    auto push_r = os.Wait(*push_qt, 5 * kSecond);
    os.DmaFree(buf);
    ASSERT_TRUE(push_r.ok());
    ASSERT_EQ(push_r->status, Status::kOk);

    size_t received = 0;
    while (received < len) {
      auto pop_qt = os.Pop(*sock);
      ASSERT_TRUE(pop_qt.ok());
      auto pop_r = os.Wait(*pop_qt, 5 * kSecond);
      ASSERT_TRUE(pop_r.ok());
      ASSERT_EQ(pop_r->status, Status::kOk);
      for (uint32_t s = 0; s < pop_r->sga.num_segs; s++) {
        const auto* p = static_cast<const uint8_t*>(pop_r->sga.segs[s].buf);
        for (uint32_t b = 0; b < pop_r->sga.segs[s].len; b++) {
          ASSERT_EQ(p[b], pattern(received)) << "byte " << received << " round " << round;
          received++;
        }
      }
      os.FreeSga(pop_r->sga);
    }
    ASSERT_EQ(received, len);
    *bytes_echoed += len;
  }
  EXPECT_EQ(os.Close(*sock), Status::kOk);
}

TEST(ShardGroupTest, TwoWorkerEchoIsByteExactAndUsesBothQueues) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/7);
  ShardGroup group(net, clock, TwoWorkerOptions());

  const SocketAddress server_addr{kServerIp, 7777};
  std::vector<EchoServerStats> per_shard;
  StartShardedEchoServer(group, EchoServerOptions{server_addr}, &per_shard);

  // 2 client hosts x 4 connections: each connection gets a fresh ephemeral port, so the RSS
  // hash scatters them across both shards. Sequential closed-loop runs on the main thread.
  uint64_t bytes_sent = 0;
  for (size_t c = 0; c < 2; c++) {
    auto client = MakeClient(net, clock, c);
    for (size_t conn = 0; conn < 4; conn++) {
      ByteExactEchoRun(*client, server_addr, /*rounds=*/20,
                       static_cast<uint8_t>(0x10 * (c + 1) + conn), &bytes_sent);
    }
  }

  group.RequestStop();
  group.Join();

  uint64_t served_bytes = 0;
  uint64_t connections = 0;
  ASSERT_EQ(per_shard.size(), 2u);
  for (const EchoServerStats& s : per_shard) {
    served_bytes += s.bytes;
    connections += s.connections;
  }
  EXPECT_EQ(served_bytes, bytes_sent);
  EXPECT_EQ(connections, 8u);
  // The whole point of RSS sharding: both queue pairs carried traffic.
  EXPECT_GT(group.nic().queue_stats(0).rx_frames, 0u);
  EXPECT_GT(group.nic().queue_stats(1).rx_frames, 0u);
  EXPECT_EQ(group.nic().stats().rx_frames,
            group.nic().queue_stats(0).rx_frames + group.nic().queue_stats(1).rx_frames);
}

TEST(ShardGroupTest, ShardedMiniKvServesSetsAndGets) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/11);
  ShardGroup group(net, clock, TwoWorkerOptions());

  const SocketAddress server_addr{kServerIp, 7070};
  std::vector<MiniKvStats> per_shard;
  StartShardedMiniKvServer(group, MiniKvOptions{server_addr}, &per_shard);

  // Each bench connection is pinned to one shard, so its keyspace lives wholly on that shard
  // (the redis-cluster model) and GET-after-SET stays consistent.
  uint64_t completed = 0;
  for (size_t c = 0; c < 2; c++) {
    auto client = MakeClient(net, clock, c);
    KvBenchOptions opts;
    opts.server = server_addr;
    opts.num_keys = 32;
    opts.value_size = 32;
    opts.operations = 300;
    opts.pipeline = 4;
    opts.seed = 100 + c;
    KvBenchResult r = RunKvBenchClient(*client, opts);
    EXPECT_EQ(r.completed, opts.operations);
    completed += r.completed;
  }

  group.RequestStop();
  group.Join();

  uint64_t served = 0;
  uint64_t connections = 0;
  for (const MiniKvStats& s : per_shard) {
    served += s.gets + s.sets + s.dels;
    connections += s.connections;
  }
  EXPECT_EQ(served, completed);
  EXPECT_EQ(connections, 2u);
}

TEST(ShardGroupTest, MetricsExportLabelsShardsAndRollupAggregates) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/5);
  ShardGroup group(net, clock, TwoWorkerOptions());

  const SocketAddress server_addr{kServerIp, 7171};
  StartShardedEchoServer(group, EchoServerOptions{server_addr});
  uint64_t bytes = 0;
  for (size_t c = 0; c < 2; c++) {
    auto client = MakeClient(net, clock, c);
    ByteExactEchoRun(*client, server_addr, /*rounds=*/5, static_cast<uint8_t>(0x40 + c), &bytes);
  }
  group.RequestStop();
  group.Join();

  const std::string text = group.ExportMetricsText();
  EXPECT_NE(text.find("shard=0"), std::string::npos);
  EXPECT_NE(text.find("shard=1"), std::string::npos);
  EXPECT_NE(text.find("rollup"), std::string::npos);
  EXPECT_NE(text.find("nic.queue_rx_frames"), std::string::npos);

  // The rollup sums per-queue counters across shards and matches the device totals.
  const auto rollup = group.AggregateSnapshot();
  uint64_t rolled_rx = 0;
  bool found_rx = false;
  bool found_workers = false;
  for (const auto& s : rollup) {
    EXPECT_NE(s.name, "shard.id");      // identity gauges are skipped
    EXPECT_NE(s.name, "nic.queue_id");  // likewise
    if (s.name == "nic.queue_rx_frames") {
      found_rx = true;
      rolled_rx = static_cast<uint64_t>(s.value);
    }
    if (s.name == "shard.workers") {
      found_workers = true;
      EXPECT_EQ(s.value, 2);  // reported, not summed
    }
  }
  ASSERT_TRUE(found_rx);
  ASSERT_TRUE(found_workers);
  EXPECT_EQ(rolled_rx, group.nic().stats().rx_frames);
}

TEST(ShardGroupTest, SingleWorkerBehavesLikeClassicCatnip) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/3);
  ShardGroup::Options opts;
  opts.num_workers = 1;
  opts.base = Catnip::Config{kServerMac, kServerIp, TcpConfig{}, nullptr};
  opts.static_arp.emplace_back(kClientIps[0], kClientMacs[0]);
  ShardGroup group(net, clock, opts);
  ASSERT_EQ(group.nic().num_queues(), 1u);

  const SocketAddress server_addr{kServerIp, 7272};
  std::vector<EchoServerStats> per_shard;
  StartShardedEchoServer(group, EchoServerOptions{server_addr}, &per_shard);

  uint64_t bytes = 0;
  auto client = MakeClient(net, clock, 0);
  ByteExactEchoRun(*client, server_addr, /*rounds=*/20, 0x77, &bytes);

  group.RequestStop();
  group.Join();
  ASSERT_EQ(per_shard.size(), 1u);
  EXPECT_EQ(per_shard[0].bytes, bytes);
  EXPECT_EQ(per_shard[0].connections, 1u);
}

// Shutdown drain regression: a pop still in flight when RequestStop lands — plus a completed
// pop whose sga the app never took — must not leak qtoken slots or heap buffers. WorkerMain
// calls DrainPendingTokens() on the owning thread before it exits; this pins that behavior.
TEST(ShardGroupTest, StopWithInflightPopsDrainsTokensAndBuffers) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/21);
  ShardGroup group(net, clock, TwoWorkerOptions());

  group.Start([&group](size_t /*shard_id*/, Catnip& os) {
    auto mq = os.MemoryQueue();
    ASSERT_TRUE(mq.ok());
    // Pop #1 completes with a buffer nobody ever takes: the drain must free its sga.
    void* msg = os.DmaMalloc(64);
    ASSERT_NE(msg, nullptr);
    std::memset(msg, 0x42, 64);
    auto push = os.Push(*mq, Sgarray::Of(msg, 64));
    ASSERT_TRUE(push.ok());
    os.DmaFree(msg);
    auto done_pop = os.Pop(*mq);
    ASSERT_TRUE(done_pop.ok());
    // Pop #2 stays pending forever: the drain must release its slot.
    auto pending_pop = os.Pop(*mq);
    ASSERT_TRUE(pending_pop.ok());
    group.ServeLoop(os, [] {});
  });

  group.RequestStop();
  group.Join();
  for (size_t i = 0; i < group.num_workers(); i++) {
    EXPECT_EQ(group.shard(i).tokens().NumInUse(), 0u) << "shard " << i << " leaked qtokens";
    EXPECT_EQ(group.shard(i).allocator().GetStats().live_objects, 0u)
        << "shard " << i << " leaked pop buffers";
  }
}

// Tenant isolation under real worker threads: every shard registers the tenant, the sharded
// echo server charges its listener (and thus every accepted connection) to it, and the
// per-shard token buckets account the TX bytes. Suite name keeps the `ShardGroup` prefix so
// the TSan job exercises the tenant datapath too.
TEST(ShardGroupTest, ShardedEchoUnderTenantAccountsEveryShard) {
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/23);
  ShardGroup group(net, clock, TwoWorkerOptions());

  constexpr TenantId kTenant = 7;
  const SocketAddress server_addr{kServerIp, 7878};
  EchoServerOptions options{server_addr};
  options.tenant = kTenant;
  std::vector<EchoServerStats> per_shard(group.num_workers());
  group.Start([&group, options, &per_shard](size_t shard_id, Catnip& os) {
    TenantConfig cfg;
    cfg.tx_rate_bps = 80'000'000;  // fast enough to never stall echo RTTs in real time
    cfg.tx_burst_bytes = 64 * 1024;
    cfg.tx_weight = 2;
    ASSERT_EQ(os.RegisterTenant(kTenant, cfg), Status::kOk);
    EchoServerApp app(os, options);
    group.ServeLoop(os, [&app] { app.Pump(); });
    per_shard[shard_id] = app.stats();
  });

  uint64_t bytes_sent = 0;
  for (size_t c = 0; c < 2; c++) {
    auto client = MakeClient(net, clock, c);
    for (size_t conn = 0; conn < 3; conn++) {
      ByteExactEchoRun(*client, server_addr, /*rounds=*/10,
                       static_cast<uint8_t>(0x20 * (c + 1) + conn), &bytes_sent);
    }
  }

  group.RequestStop();
  group.Join();

  uint64_t served = 0;
  uint64_t admitted = 0;
  uint64_t tenant_tx_bytes = 0;
  for (size_t i = 0; i < group.num_workers(); i++) {
    Catnip& shard = group.shard(i);
    EXPECT_TRUE(shard.tenants().IsRegistered(kTenant));
    served += per_shard[i].bytes;
    admitted += shard.tenants().GetStats(kTenant).accept_admitted;
    tenant_tx_bytes += shard.ethernet().tx_scheduler().GetTenantTxStats(kTenant).tx_bytes;
    EXPECT_EQ(shard.tokens().NumInUse(), 0u) << "shard " << i;
  }
  EXPECT_EQ(served, bytes_sent);
  EXPECT_EQ(admitted, 6u) << "every accepted connection must be admission-charged";
  // Every echoed byte crossed the rate-limited tenant's bucket, so the per-tenant TX
  // accounting must at least cover the payload bytes (headers come on top).
  EXPECT_GE(tenant_tx_bytes, bytes_sent);
}

// Deterministic per-(shard, record) payload so recovery checks can be byte-exact.
std::vector<uint8_t> ShardRecordPayload(size_t shard_id, size_t record) {
  const size_t len = 64 + (record * 13) % 128;
  std::vector<uint8_t> payload(len);
  for (size_t i = 0; i < len; i++) {
    payload[i] = static_cast<uint8_t>(0x40 * (shard_id + 1) ^ (record * 31 + i));
  }
  return payload;
}

// Multi-worker storage — the layout the EXPECT_DEATH test used to guard against: each shard's
// Cattree engine owns its own log partition and completion queue, so a 2-worker Catnip×Cattree
// group appends concurrently without sharing any datapath state but the epoch counter.
TEST(ShardGroupTest, MultiWorkerStoragePartitionedAppends) {
  constexpr size_t kRecordsPerShard = 24;
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/13);
  SimBlockDevice disk(SimBlockDevice::Config{}, clock);
  ShardGroup::Options opts = TwoWorkerOptions();
  opts.base.disk = &disk;
  ShardGroup group(net, clock, opts);

  ASSERT_NE(group.partitioned_log(), nullptr);
  // Geometry: two contiguous non-overlapping ranges covering the whole device, ids = shard.
  const LogPartition p0 = group.partitioned_log()->partition(0);
  const LogPartition p1 = group.partitioned_log()->partition(1);
  EXPECT_EQ(p0.first_block, 0u);
  EXPECT_EQ(p1.first_block, p0.num_blocks);
  EXPECT_EQ((p0.num_blocks + p1.num_blocks) * disk.config().block_size, disk.CapacityBytes());
  EXPECT_EQ(p0.id, 0u);
  EXPECT_EQ(p1.id, 1u);

  group.Start([&](size_t shard_id, Catnip& os) {
    auto fqd = os.Open("log");
    ASSERT_TRUE(fqd.ok());
    for (size_t r = 0; r < kRecordsPerShard; r++) {
      const std::vector<uint8_t> payload = ShardRecordPayload(shard_id, r);
      void* buf = os.DmaMalloc(payload.size());
      ASSERT_NE(buf, nullptr);
      std::memcpy(buf, payload.data(), payload.size());
      auto qt = os.Push(*fqd, Sgarray::Of(buf, static_cast<uint32_t>(payload.size())));
      ASSERT_TRUE(qt.ok());
      auto res = os.Wait(*qt, 5 * kSecond);
      os.DmaFree(buf);
      ASSERT_TRUE(res.ok());
      EXPECT_EQ(res->status, Status::kOk) << "shard " << shard_id << " record " << r;
    }
  });
  group.RequestStop();
  group.Join();

  for (size_t i = 0; i < 2; i++) {
    EXPECT_GT(group.shard(i).storage()->log().tail(), 0u) << "shard " << i;
    EXPECT_EQ(group.shard(i).tokens().NumInUse(), 0u);
  }
  // Stitched recovery scan: every record from both partitions, globally ordered by epoch.
  std::vector<PartitionedLog::StitchedRecord> records;
  group.partitioned_log()->RecoverAll(&records);
  ASSERT_EQ(records.size(), 2 * kRecordsPerShard);
  uint64_t last_epoch = 0;
  size_t next_record[2] = {0, 0};
  for (const auto& rec : records) {
    EXPECT_GT(rec.epoch, last_epoch) << "epochs must be globally unique and ordered";
    last_epoch = rec.epoch;
    ASSERT_LT(rec.partition, 2u);
    const std::vector<uint8_t> expect =
        ShardRecordPayload(rec.partition, next_record[rec.partition]++);
    EXPECT_EQ(group.partitioned_log()->ReadPayload(rec), expect);
  }
  EXPECT_EQ(next_record[0], kRecordsPerShard);
  EXPECT_EQ(next_record[1], kRecordsPerShard);
}

// Restart byte-exactness: a second group over the same device recovers every partition's tail
// by scanning the media, and each shard pops back exactly the records it wrote pre-restart.
TEST(ShardGroupTest, MultiWorkerStoragePartitionedRecoveryAfterRestart) {
  constexpr size_t kRecordsPerShard = 12;
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/17);
  SimBlockDevice disk(SimBlockDevice::Config{}, clock);
  ShardGroup::Options opts = TwoWorkerOptions();
  opts.base.disk = &disk;
  {
    ShardGroup group(net, clock, opts);
    group.Start([&](size_t shard_id, Catnip& os) {
      auto fqd = os.Open("log");
      ASSERT_TRUE(fqd.ok());
      for (size_t r = 0; r < kRecordsPerShard; r++) {
        const std::vector<uint8_t> payload = ShardRecordPayload(shard_id, r);
        void* buf = os.DmaMalloc(payload.size());
        ASSERT_NE(buf, nullptr);
        std::memcpy(buf, payload.data(), payload.size());
        auto qt = os.Push(*fqd, Sgarray::Of(buf, static_cast<uint32_t>(payload.size())));
        ASSERT_TRUE(qt.ok());
        auto res = os.Wait(*qt, 5 * kSecond);
        os.DmaFree(buf);
        ASSERT_TRUE(res.ok());
        EXPECT_EQ(res->status, Status::kOk);
      }
    });
    group.RequestStop();
    group.Join();
  }  // the first group (and its shards) is gone; only the media survives

  // Ports never detach from a fabric, so the "rebooted host" gets a fresh network; the disk —
  // the only thing recovery may rely on — is carried over.
  SimNetwork net2(LinkConfig{}, /*seed=*/18);
  ShardGroup restarted(net2, clock, opts);
  restarted.Start([&](size_t shard_id, Catnip& os) {
    EXPECT_GT(os.storage()->log().tail(), 0u) << "shard " << shard_id << " recovered nothing";
    auto fqd = os.Open("log");  // cursor starts at the recovered head
    ASSERT_TRUE(fqd.ok());
    for (size_t r = 0; r < kRecordsPerShard; r++) {
      auto qt = os.Pop(*fqd);
      ASSERT_TRUE(qt.ok());
      auto res = os.Wait(*qt, 5 * kSecond);
      ASSERT_TRUE(res.ok());
      ASSERT_EQ(res->status, Status::kOk) << "shard " << shard_id << " record " << r;
      const std::vector<uint8_t> expect = ShardRecordPayload(shard_id, r);
      ASSERT_EQ(res->sga.num_segs, 1u);
      ASSERT_EQ(res->sga.segs[0].len, expect.size());
      EXPECT_EQ(std::memcmp(res->sga.segs[0].buf, expect.data(), expect.size()), 0)
          << "shard " << shard_id << " record " << r << " not byte-exact after restart";
      os.FreeSga(res->sga);
    }
    // Nothing beyond the recovered tail: the next pop must report end-of-log.
    auto qt = os.Pop(*fqd);
    ASSERT_TRUE(qt.ok());
    auto res = os.Wait(*qt, 5 * kSecond);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->status, Status::kEndOfFile);
  });
  restarted.RequestStop();
  restarted.Join();
}

}  // namespace
}  // namespace demi
