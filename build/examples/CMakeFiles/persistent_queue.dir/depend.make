# Empty dependencies file for persistent_queue.
# This may be replaced when dependencies are built.
