// Chaos soak: echo and miniKV client/server pairs under randomized, seeded fault injection
// (docs/FAULTS.md). Every scenario is fully deterministic — all fault decisions flow from one
// seeded FaultPlan, the stacks run on a shared VirtualClock, and a failing seed replays exactly
// with DEMI_FAULT_SEED=<seed>.
//
// Invariants checked end to end:
//   - no hang: a wall-clock watchdog (reads steady_clock, never sleeps) bounds every scenario;
//   - byte-exact payloads: TCP echo streams and KV values survive corruption/loss/disk faults;
//   - consistent fault accounting: injector counters match substrate counters match app stats;
//   - graceful degradation only: no injected fault ever terminates the process — failures
//     surface as Status through qtoken completions.
//
// Environment knobs (see docs/FAULTS.md):
//   DEMI_FAULT_SEED=<n>          replay exactly one seed
//   DEMI_CHAOS_SEEDS=<n>         number of seeds to soak (default 20)
//   DEMI_CHAOS_RETRY_BUDGET=<n>  override the storage retry budget (0 demonstrates the
//                                broken-build mode: terminal disk errors surface and the
//                                offending seed is printed for replay)

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/apps/echo.h"
#include "src/apps/minikv.h"
#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/core/shard_group.h"
#include "src/faults/fault_injector.h"
#include "src/liboses/catnip.h"
#include "src/net/headers.h"
#include "src/netsim/sim_network.h"
#include "src/storage/sim_block_device.h"

namespace demi {
namespace {

// --- Seed selection ---

std::vector<uint64_t> SeedList() {
  if (const char* s = std::getenv("DEMI_FAULT_SEED")) {
    return {std::strtoull(s, nullptr, 10)};
  }
  uint64_t count = 20;
  if (const char* c = std::getenv("DEMI_CHAOS_SEEDS")) {
    count = std::strtoull(c, nullptr, 10);
    if (count == 0) {
      count = 1;
    }
  }
  std::vector<uint64_t> seeds;
  for (uint64_t i = 1; i <= count; i++) {
    seeds.push_back(i);
  }
  return seeds;
}

std::string ReplayHint(uint64_t seed) {
  return "seed " + std::to_string(seed) +
         " — replay with: DEMI_FAULT_SEED=" + std::to_string(seed) + " ./chaos_soak_test";
}

uint32_t RetryBudgetFromEnv() {
  if (const char* b = std::getenv("DEMI_CHAOS_RETRY_BUDGET")) {
    return static_cast<uint32_t>(std::strtoul(b, nullptr, 10));
  }
  return LogDevice::RetryPolicy{}.max_retries;
}

// --- Wall-clock watchdog: reads steady_clock, never sleeps; virtual time drives the stacks ---

class Watchdog {
 public:
  explicit Watchdog(int budget_seconds = 30)
      : start_(std::chrono::steady_clock::now()), budget_seconds_(budget_seconds) {}
  bool Expired() const {
    return std::chrono::steady_clock::now() - start_ > std::chrono::seconds(budget_seconds_);
  }

 private:
  std::chrono::steady_clock::time_point start_;
  int budget_seconds_;
};

// --- The deterministic two-host world: client and server Catnip stacks on one VirtualClock ---

struct ChaosWorld {
  ChaosWorld(const FaultPlan& plan, TcpConfig server_tcp, TcpConfig client_tcp, bool with_disk,
             uint32_t retry_budget)
      : net(LinkConfig{}, /*seed=*/plan.seed + 0x5EED),
        disk(DiskConfig(), clock),
        server(net, ServerConfig(server_tcp, with_disk ? &disk : nullptr), clock),
        client(net, ClientConfig(client_tcp), clock) {
    server.ethernet().arp().Insert(client.local_ip(), MacAddr{0xC});
    client.ethernet().arp().Insert(server.local_ip(), MacAddr{0x5});
    if (server.storage() != nullptr) {
      LogDevice::RetryPolicy policy;
      policy.max_retries = retry_budget;
      server.storage()->log().set_retry_policy(policy);
    }
    faults.SetTracer(&server.tracer());
    faults.RegisterMetrics(server.metrics());
    net.SetFaultInjector(&faults);
    disk.SetFaultInjector(&faults);
    faults.Arm(plan);
    // In-app Wait() calls (e.g. the miniKV AOF append) poll only the server's scheduler; the
    // pump keeps the rest of the world — peer stack and virtual time — moving underneath them.
    server.SetExternalPump([this] {
      client.PollOnce();
      AdvanceClock();
    });
  }

  static SimBlockDevice::Config DiskConfig() {
    SimBlockDevice::Config c;
    c.num_blocks = 4096;  // 16 MB: plenty for a chaos AOF, cheap to construct per seed
    return c;
  }

  static Catnip::Config ServerConfig(TcpConfig tcp, SimBlockDevice* d) {
    Catnip::Config c{MacAddr{0x5}, Ipv4Addr::FromOctets(10, 7, 0, 1), tcp, d};
    c.checksum_offload = false;  // software checksums must catch the injected bit flips
    return c;
  }

  static Catnip::Config ClientConfig(TcpConfig tcp) {
    Catnip::Config c{MacAddr{0xC}, Ipv4Addr::FromOctets(10, 7, 0, 2), tcp, nullptr};
    c.checksum_offload = false;
    return c;
  }

  // Advances virtual time to the earliest pending event (frame delivery, scheduler timer, disk
  // completion), or by 1 µs when fibers are merely yielding to each other.
  void AdvanceClock() {
    TimeNs next = 0;
    const auto consider = [&next](TimeNs t) {
      if (t != 0 && (next == 0 || t < next)) {
        next = t;
      }
    };
    consider(net.NextDeliveryTime());
    consider(server.scheduler().NextTimerDeadline());
    consider(client.scheduler().NextTimerDeadline());
    consider(disk.NextCompletionTime());
    if (next > clock.Now()) {
      clock.SetTime(next);
    } else {
      clock.Advance(kMicrosecond);
    }
  }

  void Step() {
    server.PollOnce();
    client.PollOnce();
    AdvanceClock();
  }

  template <typename Pred>
  bool RunUntil(Pred&& pred, const Watchdog& dog, int max_steps = 4'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) {
        return true;
      }
      if ((i & 1023) == 0 && dog.Expired()) {
        return false;
      }
      Step();
    }
    return pred();
  }

  // Declaration order doubles as destruction order (reversed): the libOSes go first, while the
  // injector, disk and network they point into are still alive.
  VirtualClock clock;
  SimNetwork net;
  SimBlockDevice disk;
  FaultInjector faults;
  Catnip server;
  Catnip client;
};

// Pushes `data` from a non-pool buffer (copy path) on `os`; returns the qtoken.
Result<QToken> PushCopied(Catnip& os, QueueDesc qd, const std::string& data) {
  // Safe to pass stack/heap memory: the libOS pins by copying before the call returns.
  return os.Push(qd, Sgarray::Of(const_cast<char*>(data.data()),
                                 static_cast<uint32_t>(data.size())));
}

void AppendSga(Catnip& os, QResult& r, std::string* out) {
  for (uint32_t i = 0; i < r.sga.num_segs; i++) {
    out->append(static_cast<const char*>(r.sga.segs[i].buf), r.sga.segs[i].len);
  }
  os.FreeSga(r.sga);
}

// --- Fault plans derived deterministically from the soak seed ---

FaultPlan EchoPlanForSeed(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xC0FFEE);
  FaultPlan p;
  p.seed = seed;
  p.net_corrupt = 0.01 + 0.04 * rng.NextDouble();
  // Exactly one flipped bit per corrupted frame: the Internet checksum provably detects every
  // single-bit error, but offsetting multi-bit flips (two opposite flips in the same 16-bit
  // column) cancel in the one's-complement sum and sail through undetected (Stone & Partridge,
  // SIGCOMM 2000). Byte-exactness is only assertable for corruption TCP can actually detect.
  p.net_corrupt_bits = 1;
  p.net_link_flap = 0.001 * rng.NextDouble();
  p.net_link_down_ns = 20 * kMicrosecond + rng.NextBounded(100) * kMicrosecond;
  p.net_partition = 0.0005 * rng.NextDouble();
  p.net_partition_ns = 100 * kMicrosecond + rng.NextBounded(200) * kMicrosecond;
  return p;
}

FaultPlan KvPlanForSeed(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD15C);
  FaultPlan p;
  p.seed = seed;
  p.net_corrupt = 0.005 + 0.015 * rng.NextDouble();
  p.net_corrupt_bits = 1;  // single-bit: always checksum-detectable (see EchoPlanForSeed)
  p.disk_error = 0.05 + 0.10 * rng.NextDouble();
  p.disk_delay = 0.10 + 0.10 * rng.NextDouble();
  p.disk_delay_ns = 50 * kMicrosecond + rng.NextBounded(200) * kMicrosecond;
  p.disk_torn = 0.02 + 0.03 * rng.NextDouble();
  return p;
}

// --- Echo scenario ---

// Counters sampled after a scenario; two runs of the same seed must produce identical values.
struct EchoFingerprint {
  uint64_t frames_corrupted = 0;
  uint64_t frames_dropped = 0;
  uint64_t link_flaps = 0;
  uint64_t partitions = 0;
  uint64_t rx_checksum_drops = 0;
  uint64_t parse_errors = 0;
  uint64_t bytes_echoed = 0;

  bool operator==(const EchoFingerprint&) const = default;
};

// ASSERT_* requires a void-returning function; the fingerprint travels via out-param.
void RunTcpEchoScenario(uint64_t seed, EchoFingerprint* out) {
  Watchdog dog;
  // Vary the ISN seed with the soak seed: replays pin it, distinct seeds exercise distinct
  // sequence-number spaces (satellite: TcpConfig::isn_seed).
  TcpConfig tcp;
  tcp.isn_seed = seed * 0xBEEF + 1;
  ChaosWorld w(EchoPlanForSeed(seed), tcp, tcp, /*with_disk=*/false, RetryBudgetFromEnv());
  w.server.tracer().Enable(4096);

  EchoServerOptions opts;
  opts.listen = {w.server.local_ip(), 7777};
  EchoServerApp app(w.server, opts);

  auto cqd = w.client.Socket(SocketType::kStream);
  ASSERT_TRUE(cqd.ok());
  auto conn_qt = w.client.Connect(*cqd, {w.server.local_ip(), 7777});
  ASSERT_TRUE(conn_qt.ok());
  ASSERT_TRUE(w.RunUntil(
      [&] {
        app.Pump();
        return w.client.IsDone(*conn_qt);
      },
      dog))
      << "connect hung under chaos";
  auto conn_r = w.client.TryTake(*conn_qt);
  ASSERT_TRUE(conn_r.ok());
  ASSERT_EQ(conn_r->status, Status::kOk);

  // Seeded message mix: sizes span one-segment and multi-segment sends. 60 messages keeps the
  // frame volume high enough for every seed's corruption draw to land even though batching
  // (MSS coalescing + delayed acks) roughly halves frames-per-byte.
  Rng payload_rng(seed * 7919 + 3);
  std::string sent_all;
  std::vector<std::string> messages;
  for (int i = 0; i < 60; i++) {
    std::string m(1 + payload_rng.NextBounded(1200), '\0');
    for (char& ch : m) {
      ch = static_cast<char>('a' + payload_rng.NextBounded(26));
    }
    sent_all += m;
    messages.push_back(std::move(m));
  }

  std::string rx_all;
  size_t next_to_send = 0;
  std::optional<QToken> push_qt;
  auto pop = w.client.Pop(*cqd);
  ASSERT_TRUE(pop.ok());
  QToken pop_qt = *pop;
  Status stream_error = Status::kOk;

  const bool done = w.RunUntil(
      [&] {
        app.Pump();
        if (w.client.IsDone(pop_qt)) {
          auto r = w.client.TryTake(pop_qt);
          if (r.ok() && r->status == Status::kOk) {
            AppendSga(w.client, *r, &rx_all);
            auto next = w.client.Pop(*cqd);
            if (next.ok()) {
              pop_qt = *next;
            }
          } else if (r.ok()) {
            stream_error = r->status;
            return true;
          }
        }
        if (push_qt.has_value() && w.client.IsDone(*push_qt)) {
          auto r = w.client.TryTake(*push_qt);
          if (r.ok() && r->status != Status::kOk) {
            stream_error = r->status;
            return true;
          }
          push_qt.reset();
        }
        if (!push_qt.has_value() && next_to_send < messages.size()) {
          auto qt = PushCopied(w.client, *cqd, messages[next_to_send]);
          if (qt.ok()) {
            push_qt = *qt;
            next_to_send++;
          }
        }
        return rx_all.size() >= sent_all.size();
      },
      dog);

  EXPECT_TRUE(done) << "echo soak hung (watchdog/step budget)";
  EXPECT_EQ(stream_error, Status::kOk);
  EXPECT_EQ(rx_all.size(), sent_all.size());
  EXPECT_TRUE(rx_all == sent_all) << "echoed bytes differ from sent bytes";

  // Fault accounting is consistent across layers.
  const FaultInjector::Stats fs = w.faults.GetStats();
  const SimNetwork::Stats ns = w.net.GetStats();
  EXPECT_EQ(fs.frames_corrupted, ns.frames_corrupted);
  EXPECT_EQ(fs.frames_dropped, ns.frames_dropped_fault);
  EXPECT_GT(fs.frames_corrupted, 0u) << "plan should have injected corruption";

  // The software checksums (or parsers) must have caught at least some of the injected flips —
  // flips can also land in L2/L3 headers, so sum every defensive counter before judging.
  const uint64_t caught = w.server.tcp().stats().rx_checksum_drops +
                          w.client.tcp().stats().rx_checksum_drops +
                          w.server.tcp().stats().parse_errors +
                          w.client.tcp().stats().parse_errors +
                          w.server.ethernet().stats().parse_errors +
                          w.client.ethernet().stats().parse_errors;
  if (fs.frames_corrupted > 50) {
    EXPECT_GT(caught, 0u) << "no layer noticed " << fs.frames_corrupted << " corrupted frames";
  }

  // Every injected fault is visible through the observability layer: metrics...
  size_t fault_metrics = 0;
  for (const auto& sample : w.server.metrics().Snapshot()) {
    if (sample.component == "faults") {
      fault_metrics++;
      if (sample.name == "faults.frames_corrupted") {
        EXPECT_EQ(static_cast<uint64_t>(sample.value), fs.frames_corrupted);
      }
    }
  }
  EXPECT_EQ(fault_metrics, 9u) << "faults.* metric family incomplete";

  // ...and trace events.
  bool saw_fault_event = false;
  for (const TraceEvent& e : w.server.tracer().Drain()) {
    if (e.type == TraceEventType::kFaultFrameCorrupt || e.type == TraceEventType::kFaultLinkFlap ||
        e.type == TraceEventType::kFaultPartition) {
      saw_fault_event = true;
      break;
    }
  }
  EXPECT_TRUE(saw_fault_event) << "injected faults left no kFault* trace events";

  if (out != nullptr) {
    out->frames_corrupted = fs.frames_corrupted;
    out->frames_dropped = fs.frames_dropped;
    out->link_flaps = fs.link_flaps;
    out->partitions = fs.partitions;
    out->rx_checksum_drops =
        w.server.tcp().stats().rx_checksum_drops + w.client.tcp().stats().rx_checksum_drops;
    out->parse_errors = w.server.tcp().stats().parse_errors + w.client.tcp().stats().parse_errors;
    out->bytes_echoed = rx_all.size();
  }
}

TEST(ChaosSoakTest, TcpEchoSurvivesSeededChaos) {
  for (uint64_t seed : SeedList()) {
    SCOPED_TRACE(ReplayHint(seed));
    RunTcpEchoScenario(seed, nullptr);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(ChaosSoakTest, SameSeedReplaysToIdenticalCounters) {
  EchoFingerprint first, second;
  SCOPED_TRACE(ReplayHint(7));
  RunTcpEchoScenario(7, &first);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  RunTcpEchoScenario(7, &second);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  EXPECT_TRUE(first == second) << "seed 7 did not replay deterministically: corrupted "
                               << first.frames_corrupted << " vs " << second.frames_corrupted
                               << ", echoed " << first.bytes_echoed << " vs "
                               << second.bytes_echoed;
}

// --- MiniKV scenario (Catnip×Cattree server: network + persistent AOF under disk faults) ---

// Length-framed KV client speaking the miniKV wire protocol over one stepped TCP connection.
class SteppedKvClient {
 public:
  SteppedKvClient(ChaosWorld& w, MiniKvServerApp& app, QueueDesc qd)
      : w_(w), app_(app), qd_(qd) {
    auto pop = w_.client.Pop(qd_);
    EXPECT_TRUE(pop.ok());
    pop_qt_ = *pop;
  }

  // Closed-loop request: send, then step the world until one response frame arrives.
  bool Call(KvOp op, const std::string& key, const std::string& value, KvStatus* status_out,
            std::string* value_out, const Watchdog& dog) {
    uint8_t buf[4096];
    const size_t n = KvEncodeRequest(op, key, value, buf, sizeof(buf));
    if (n == 0) {
      return false;
    }
    std::string wire(reinterpret_cast<const char*>(buf), n);
    auto push = PushCopied(w_.client, qd_, wire);
    if (!push.ok()) {
      return false;
    }
    bool push_done = false;
    std::optional<std::pair<KvStatus, std::string>> response;
    const bool ok = w_.RunUntil(
        [&] {
          app_.Pump();
          if (!push_done && w_.client.IsDone(*push)) {
            auto r = w_.client.TryTake(*push);
            if (!r.ok() || r->status != Status::kOk) {
              return true;  // push failed; surfaces below as !response
            }
            push_done = true;
          }
          PumpPop();
          response = TakeFrame();
          return response.has_value();
        },
        dog);
    if (!ok || !response.has_value()) {
      return false;
    }
    *status_out = response->first;
    if (value_out != nullptr) {
      *value_out = response->second;
    }
    return true;
  }

 private:
  void PumpPop() {
    if (!w_.client.IsDone(pop_qt_)) {
      return;
    }
    auto r = w_.client.TryTake(pop_qt_);
    if (r.ok() && r->status == Status::kOk) {
      for (uint32_t i = 0; i < r->sga.num_segs; i++) {
        const uint8_t* p = static_cast<const uint8_t*>(r->sga.segs[i].buf);
        acc_.insert(acc_.end(), p, p + r->sga.segs[i].len);
      }
      w_.client.FreeSga(r->sga);
      auto next = w_.client.Pop(qd_);
      if (next.ok()) {
        pop_qt_ = *next;
      }
    }
  }

  std::optional<std::pair<KvStatus, std::string>> TakeFrame() {
    if (acc_.size() < 4) {
      return std::nullopt;
    }
    uint32_t frame_len;
    std::memcpy(&frame_len, acc_.data(), 4);
    if (acc_.size() - 4 < frame_len) {
      return std::nullopt;
    }
    KvResponseView resp;
    std::optional<std::pair<KvStatus, std::string>> out;
    if (KvParseResponse(std::span<const uint8_t>(acc_.data() + 4, frame_len), &resp)) {
      out = {resp.status, std::string(resp.value)};
    }
    acc_.erase(acc_.begin(), acc_.begin() + 4 + frame_len);
    return out;
  }

  ChaosWorld& w_;
  MiniKvServerApp& app_;
  QueueDesc qd_;
  QToken pop_qt_{};
  std::vector<uint8_t> acc_;
};

void RunMiniKvScenario(uint64_t seed) {
  Watchdog dog;
  const uint32_t retry_budget = RetryBudgetFromEnv();
  TcpConfig tcp;
  tcp.isn_seed = seed * 0xBEEF + 1;
  ChaosWorld w(KvPlanForSeed(seed), tcp, tcp, /*with_disk=*/true, retry_budget);
  w.server.tracer().Enable(4096);

  MiniKvOptions opts;
  opts.listen = {w.server.local_ip(), 6379};
  opts.persist = true;
  opts.aof_path = "chaos.aof";
  MiniKvServerApp app(w.server, opts);

  auto cqd = w.client.Socket(SocketType::kStream);
  ASSERT_TRUE(cqd.ok());
  auto conn_qt = w.client.Connect(*cqd, {w.server.local_ip(), 6379});
  ASSERT_TRUE(conn_qt.ok());
  ASSERT_TRUE(w.RunUntil(
      [&] {
        app.Pump();
        return w.client.IsDone(*conn_qt);
      },
      dog));
  auto conn_r = w.client.TryTake(*conn_qt);
  ASSERT_TRUE(conn_r.ok());
  ASSERT_EQ(conn_r->status, Status::kOk);

  SteppedKvClient kv(w, app, *cqd);
  Rng rng(seed * 104729 + 11);
  std::unordered_map<std::string, std::string> expected;

  // 40 SETs over 20 keys (overwrites included), every one acknowledged durable.
  for (int i = 0; i < 40; i++) {
    const std::string key = "key:" + std::to_string(rng.NextBounded(20));
    std::string value(1 + rng.NextBounded(256), '\0');
    for (char& ch : value) {
      ch = static_cast<char>('A' + rng.NextBounded(26));
    }
    KvStatus status = KvStatus::kError;
    ASSERT_TRUE(kv.Call(KvOp::kSet, key, value, &status, nullptr, dog))
        << "SET " << i << " hung or failed to complete";
    EXPECT_EQ(status, KvStatus::kOk) << "SET " << i << " not acknowledged durable";
    expected[key] = std::move(value);
  }

  // Read everything back byte-exact.
  for (const auto& [key, value] : expected) {
    KvStatus status = KvStatus::kError;
    std::string got;
    ASSERT_TRUE(kv.Call(KvOp::kGet, key, "", &status, &got, dog)) << "GET hung";
    EXPECT_EQ(status, KvStatus::kOk);
    EXPECT_TRUE(got == value) << "GET " << key << " returned wrong bytes";
  }

  // Deletes take effect.
  const std::string victim = expected.begin()->first;
  KvStatus status = KvStatus::kError;
  ASSERT_TRUE(kv.Call(KvOp::kDel, victim, "", &status, nullptr, dog));
  EXPECT_EQ(status, KvStatus::kOk);
  ASSERT_TRUE(kv.Call(KvOp::kGet, victim, "", &status, nullptr, dog));
  EXPECT_EQ(status, KvStatus::kNotFound);

  // The retry budget must have absorbed every transient disk fault: nothing terminal, no SET
  // degraded to kError. With DEMI_CHAOS_RETRY_BUDGET=0 this is the assertion that fails and
  // prints the offending seed.
  EXPECT_EQ(app.stats().aof_failures, 0u)
      << "AOF appends failed terminally (retry budget " << retry_budget << ")";
  const LogDevice::Stats& ls = w.server.storage()->log().stats();
  EXPECT_EQ(ls.io_terminal_errors, 0u);

  // Fault accounting is consistent from injector to device to log engine.
  const FaultInjector::Stats fs = w.faults.GetStats();
  EXPECT_EQ(w.disk.GetStats().io_errors, fs.disk_io_errors);
  EXPECT_EQ(ls.io_retries + ls.io_terminal_errors, fs.disk_io_errors)
      << "every error completion must be either retried or terminal";
  EXPECT_GT(fs.disk_io_errors + fs.disk_delays, 0u) << "plan should have injected disk faults";

  // Replay the AOF from the head: the recovered store must equal the final expected map.
  auto aof_qd = w.server.Open("chaos.aof");
  ASSERT_TRUE(aof_qd.ok());
  std::unordered_map<std::string, std::string> replayed;
  bool eof = false;
  while (!eof) {
    auto pop = w.server.Pop(*aof_qd);
    ASSERT_TRUE(pop.ok());
    std::optional<QResult> rec;
    ASSERT_TRUE(w.RunUntil(
        [&] {
          if (!w.server.IsDone(*pop)) {
            return false;
          }
          auto r = w.server.TryTake(*pop);
          if (r.ok()) {
            rec = *r;
          }
          return true;
        },
        dog))
        << "AOF replay hung";
    ASSERT_TRUE(rec.has_value());
    if (rec->status == Status::kEndOfFile) {
      eof = true;
      break;
    }
    ASSERT_EQ(rec->status, Status::kOk) << "AOF record unreadable after chaos";
    std::string frame;
    AppendSga(w.server, *rec, &frame);
    KvRequestView req;
    ASSERT_TRUE(KvParseRequest(
        std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(frame.data()), frame.size()),
        &req))
        << "torn/corrupt record survived in the AOF";
    ASSERT_EQ(req.op, KvOp::kSet);
    replayed[std::string(req.key)] = std::string(req.value);
  }
  // The deleted key was acknowledged before deletion; replay includes it by design (an AOF of
  // SETs only), so compare against the pre-delete expectation.
  EXPECT_EQ(replayed.size(), expected.size());
  for (const auto& [key, value] : expected) {
    auto it = replayed.find(key);
    ASSERT_TRUE(it != replayed.end()) << "acked SET missing from AOF: " << key;
    EXPECT_TRUE(it->second == value) << "AOF value differs for " << key;
  }

  // Disk fault trace events made it to the observability layer.
  if (fs.disk_io_errors > 0) {
    bool saw_disk_fault = false;
    for (const TraceEvent& e : w.server.tracer().Drain()) {
      if (e.type == TraceEventType::kFaultDiskError || e.type == TraceEventType::kFaultTornWrite ||
          e.type == TraceEventType::kFaultDiskDelay) {
        saw_disk_fault = true;
        break;
      }
    }
    EXPECT_TRUE(saw_disk_fault);
  }
}

TEST(ChaosSoakTest, MiniKvPersistenceSurvivesSeededChaos) {
  for (uint64_t seed : SeedList()) {
    SCOPED_TRACE(ReplayHint(seed));
    RunMiniKvScenario(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// --- Targeted graceful-degradation tests ---

// Pool exhaustion surfaces kNoMemory through the push qtoken — and the RX side counts, drops
// and recovers via retransmission once memory frees up. No aborts anywhere.
TEST(ChaosSoakTest, AllocFailureSurfacesEnomemAndRecovers) {
  Watchdog dog;
  ChaosWorld w(FaultPlan{}, TcpConfig{}, TcpConfig{}, /*with_disk=*/false, 6);

  EchoServerOptions opts;
  opts.listen = {w.server.local_ip(), 7800};
  EchoServerApp app(w.server, opts);

  auto cqd = w.client.Socket(SocketType::kStream);
  ASSERT_TRUE(cqd.ok());
  auto conn_qt = w.client.Connect(*cqd, {w.server.local_ip(), 7800});
  ASSERT_TRUE(conn_qt.ok());
  ASSERT_TRUE(w.RunUntil(
      [&] {
        app.Pump();
        return w.client.IsDone(*conn_qt);
      },
      dog));
  ASSERT_EQ(w.client.TryTake(*conn_qt)->status, Status::kOk);

  // TX side: every allocation fails → the push (copy path: non-pool source buffer) completes
  // with kNoMemory instead of aborting the process.
  FaultPlan all_allocs_fail;
  all_allocs_fail.seed = 42;
  all_allocs_fail.alloc_fail = 1.0;
  w.client.allocator().SetFaultInjector(&w.faults);
  w.faults.Arm(all_allocs_fail);
  const std::string msg = "must not crash";
  auto push = PushCopied(w.client, *cqd, msg);
  ASSERT_TRUE(push.ok());
  ASSERT_TRUE(w.RunUntil([&] { return w.client.IsDone(*push); }, dog));
  EXPECT_EQ(w.client.TryTake(*push)->status, Status::kNoMemory);
  EXPECT_GT(w.faults.GetStats().alloc_failures, 0u);

  // Recovery: disarm and the same push succeeds end to end.
  w.faults.Disarm();
  std::string rx;
  auto pop = w.client.Pop(*cqd);
  ASSERT_TRUE(pop.ok());
  auto push2 = PushCopied(w.client, *cqd, msg);
  ASSERT_TRUE(push2.ok());
  ASSERT_TRUE(w.RunUntil(
      [&] {
        app.Pump();
        if (w.client.IsDone(*pop)) {
          auto r = w.client.TryTake(*pop);
          if (r.ok() && r->status == Status::kOk) {
            AppendSga(w.client, *r, &rx);
          }
          return true;
        }
        return false;
      },
      dog));
  EXPECT_EQ(rx, msg);

  // RX side: the server's heap runs dry mid-stream; the stack counts and drops without
  // advancing rcv_nxt, then the sender's retransmission delivers once memory returns. The
  // client's allocator must heal first or the push itself would fail.
  w.client.allocator().SetFaultInjector(nullptr);
  w.server.allocator().SetFaultInjector(&w.faults);
  w.faults.Arm(all_allocs_fail);
  std::string rx2;
  auto pop2 = w.client.Pop(*cqd);
  ASSERT_TRUE(pop2.ok());
  auto push3 = PushCopied(w.client, *cqd, msg);
  ASSERT_TRUE(push3.ok());
  ASSERT_TRUE(w.RunUntil([&] { return w.server.tcp().stats().rx_alloc_drops > 0; }, dog))
      << "server never hit the injected RX allocation failure";
  w.faults.Disarm();
  ASSERT_TRUE(w.RunUntil(
      [&] {
        app.Pump();
        if (w.client.IsDone(*pop2)) {
          auto r = w.client.TryTake(*pop2);
          if (r.ok() && r->status == Status::kOk) {
            AppendSga(w.client, *r, &rx2);
          }
          return true;
        }
        return false;
      },
      dog))
      << "retransmission did not recover the dropped segment";
  EXPECT_EQ(rx2, msg);
}

// Under 100% injected loss an established connection exhausts max_retransmits and aborts with
// kConnectionAborted, which reaches the pending pop qtoken (and subsequent pushes).
TEST(ChaosSoakTest, TotalLossAbortsConnectionThroughQtokens) {
  Watchdog dog;
  TcpConfig tcp;
  tcp.max_retransmits = 6;
  ChaosWorld w(FaultPlan{}, tcp, tcp, /*with_disk=*/false, 6);

  EchoServerOptions opts;
  opts.listen = {w.server.local_ip(), 7900};
  EchoServerApp app(w.server, opts);

  auto cqd = w.client.Socket(SocketType::kStream);
  ASSERT_TRUE(cqd.ok());
  auto conn_qt = w.client.Connect(*cqd, {w.server.local_ip(), 7900});
  ASSERT_TRUE(conn_qt.ok());
  ASSERT_TRUE(w.RunUntil(
      [&] {
        app.Pump();
        return w.client.IsDone(*conn_qt);
      },
      dog));
  ASSERT_EQ(w.client.TryTake(*conn_qt)->status, Status::kOk);

  // Prove the connection works, then kill the link completely.
  auto pop = w.client.Pop(*cqd);
  ASSERT_TRUE(pop.ok());
  auto push = PushCopied(w.client, *cqd, "healthy");
  ASSERT_TRUE(push.ok());
  std::string echoed;
  ASSERT_TRUE(w.RunUntil(
      [&] {
        app.Pump();
        if (w.client.IsDone(*pop)) {
          auto r = w.client.TryTake(*pop);
          if (r.ok() && r->status == Status::kOk) {
            AppendSga(w.client, *r, &echoed);
          }
          return true;
        }
        return false;
      },
      dog));
  ASSERT_EQ(echoed, "healthy");

  FaultPlan dead_link;
  dead_link.seed = 99;
  dead_link.net_link_flap = 1.0;
  dead_link.net_link_down_ns = 10 * kSecond;
  w.faults.Arm(dead_link);

  auto doomed_pop = w.client.Pop(*cqd);
  ASSERT_TRUE(doomed_pop.ok());
  auto doomed_push = PushCopied(w.client, *cqd, "into the void");
  ASSERT_TRUE(doomed_push.ok());

  ASSERT_TRUE(w.RunUntil([&] { return w.client.IsDone(*doomed_pop); }, dog))
      << "abort never reached the pending pop qtoken";
  EXPECT_EQ(w.client.TryTake(*doomed_pop)->status, Status::kConnectionAborted);
  EXPECT_GT(w.faults.GetStats().frames_dropped, 0u);

  // Pushes after the abort observe the terminal status through their qtokens too.
  auto late_push = PushCopied(w.client, *cqd, "too late");
  ASSERT_TRUE(late_push.ok());
  ASSERT_TRUE(w.RunUntil([&] { return w.client.IsDone(*late_push); }, dog));
  EXPECT_EQ(w.client.TryTake(*late_push)->status, Status::kConnectionAborted);
}

// Zero-window persist probes must NOT count toward the retransmit abort limit: a receiver that
// stalls for much longer than max_retransmits RTOs keeps the connection alive, and every byte
// arrives once it drains.
TEST(ChaosSoakTest, ZeroWindowPersistDoesNotCountTowardAbort) {
  Watchdog dog;
  TcpConfig client_tcp;
  client_tcp.max_retransmits = 3;  // would abort fast if persist probes counted
  TcpConfig server_tcp;
  server_tcp.recv_buffer_bytes = 8192;  // tiny window: fills quickly
  ChaosWorld w(FaultPlan{}, server_tcp, client_tcp, /*with_disk=*/false, 6);

  // Manual server that accepts but does not pop: the receive buffer fills and the advertised
  // window closes.
  auto sqd = w.server.Socket(SocketType::kStream);
  ASSERT_TRUE(sqd.ok());
  ASSERT_EQ(w.server.Bind(*sqd, {w.server.local_ip(), 7950}), Status::kOk);
  ASSERT_EQ(w.server.Listen(*sqd, 4), Status::kOk);
  auto accept_qt = w.server.Accept(*sqd);
  ASSERT_TRUE(accept_qt.ok());

  auto cqd = w.client.Socket(SocketType::kStream);
  ASSERT_TRUE(cqd.ok());
  auto conn_qt = w.client.Connect(*cqd, {w.server.local_ip(), 7950});
  ASSERT_TRUE(conn_qt.ok());
  ASSERT_TRUE(w.RunUntil(
      [&] { return w.client.IsDone(*conn_qt) && w.server.IsDone(*accept_qt); }, dog));
  ASSERT_EQ(w.client.TryTake(*conn_qt)->status, Status::kOk);
  auto acc_r = w.server.TryTake(*accept_qt);
  ASSERT_TRUE(acc_r.ok());
  ASSERT_EQ(acc_r->status, Status::kOk);
  const QueueDesc server_conn = acc_r->new_qd;

  // 64 KB into an 8 KB window: most of it parks behind a zero window.
  Rng rng(4242);
  std::string payload(64 * 1024, '\0');
  for (char& ch : payload) {
    ch = static_cast<char>('0' + rng.NextBounded(10));
  }
  auto push = PushCopied(w.client, *cqd, payload);
  ASSERT_TRUE(push.ok());

  // Stall in zero-window for 30 virtual seconds — far beyond 3 retransmits of backoff. If
  // persist probes counted toward the abort limit, the connection would be dead by now.
  const TimeNs deadline = w.clock.Now() + 30 * kSecond;
  ASSERT_TRUE(w.RunUntil([&] { return w.clock.Now() >= deadline; }, dog));

  // Drain: every byte must arrive, in order, on the never-aborted connection.
  std::string rx;
  bool failed = false;
  std::optional<QToken> pop_qt;  // exactly one server-side pop outstanding
  ASSERT_TRUE(w.RunUntil(
      [&] {
        if (rx.size() >= payload.size()) {
          return true;
        }
        if (!pop_qt.has_value()) {
          auto pop = w.server.Pop(server_conn);
          if (!pop.ok()) {
            failed = true;
            return true;
          }
          pop_qt = *pop;
        }
        if (w.server.IsDone(*pop_qt)) {
          auto r = w.server.TryTake(*pop_qt);
          pop_qt.reset();
          if (!r.ok() || r->status != Status::kOk) {
            failed = true;
            return true;
          }
          AppendSga(w.server, *r, &rx);
        }
        return false;
      },
      dog))
      << "zero-window drain hung";
  EXPECT_FALSE(failed) << "connection aborted during zero-window persist";
  EXPECT_EQ(rx.size(), payload.size());
  EXPECT_TRUE(rx == payload);
}

// A SYN flood from thousands of spoofed sources must cost the server nothing — with SYN
// cookies on, every half-open "connection" lives entirely inside the 32-bit ISS of a
// stateless SYN-ACK (docs/SCALING.md §2). This goes through the real wire (software
// checksums, ARP, the NIC queue), unlike syn_cookie_test's direct-injection variant, and
// proves the service stays up for a legitimate client DURING the flood's aftermath.
TEST(ChaosSoakTest, SynFloodWithCookiesAllocatesNothingAndServiceSurvives) {
  Watchdog dog;
  TcpConfig server_tcp;
  server_tcp.syn_cookies = true;
  ChaosWorld w(FaultPlan{}, server_tcp, TcpConfig{}, /*with_disk=*/false, 6);

  // Spoofed SYN-ACK replies go to a MAC with no attached port: they vanish at the switch.
  // Pre-warming the ARP cache keeps the flood measuring TCB cost, not ARP-pending queues.
  constexpr MacAddr kSpoofMac{0xEE};
  constexpr int kSpoofIps = 256;
  for (int i = 0; i < kSpoofIps; i++) {
    w.server.ethernet().arp().Insert(Ipv4Addr::FromOctets(10, 9, 1, static_cast<uint8_t>(i)),
                                     kSpoofMac);
  }

  auto sqd = w.server.Socket(SocketType::kStream);
  ASSERT_TRUE(sqd.ok());
  ASSERT_EQ(w.server.Bind(*sqd, {w.server.local_ip(), 7777}), Status::kOk);
  ASSERT_EQ(w.server.Listen(*sqd, 8), Status::kOk);
  auto accept_qt = w.server.Accept(*sqd);
  ASSERT_TRUE(accept_qt.ok());

  // ChaosWorld disables checksum offload, so crafted frames need real checksums.
  auto deliver_syn = [&](Ipv4Addr src_ip, uint16_t src_port, uint32_t iss) {
    TcpHeader syn;
    syn.src_port = src_port;
    syn.dst_port = 7777;
    syn.seq = iss;
    syn.flags.syn = true;
    syn.window = 65535;
    syn.mss_option = 1460;
    Ipv4Header ip;
    ip.protocol = IpProto::kTcp;
    ip.src = src_ip;
    ip.dst = w.server.local_ip();
    ip.total_length = static_cast<uint16_t>(Ipv4Header::kSize + syn.SerializedSize());
    WireFrame frame(EthernetHeader::kSize + Ipv4Header::kSize + syn.SerializedSize());
    EthernetHeader{MacAddr{0x5}, kSpoofMac, EtherType::kIpv4}.Serialize(frame.data());
    ip.Serialize(frame.data() + EthernetHeader::kSize);
    syn.Serialize(frame.data() + EthernetHeader::kSize + Ipv4Header::kSize, ip.src, ip.dst,
                  std::span<const uint8_t>{});
    w.net.Deliver(kSpoofMac, MacAddr{0x5}, std::move(frame), w.clock.Now());
  };

  // Warm-up burst: let the pool allocator reserve its steady-state RX chunks before the
  // baseline is taken, so the flat-memory assertion below measures the flood, not startup.
  Rng rng(0xF100D);
  auto spoofed = [&] {
    return std::make_pair(
        Ipv4Addr::FromOctets(10, 9, 1, static_cast<uint8_t>(rng.NextBounded(kSpoofIps))),
        static_cast<uint16_t>(10000 + rng.NextBounded(50000)));
  };
  for (int i = 0; i < 64; i++) {
    auto [ip, port] = spoofed();
    deliver_syn(ip, port, static_cast<uint32_t>(rng.Next()));
    w.Step();
  }
  ASSERT_TRUE(w.RunUntil([&] { return w.net.NextDeliveryTime() == 0; }, dog));
  const size_t heap_baseline = w.server.allocator().GetStats().bytes_reserved;
  const size_t slab_baseline = w.server.tcp().tcb_slab().ReservedBytes();
  const uint64_t warmup_cookies = w.server.tcp().stats().syn_cookies_sent;

  // The flood proper: 4000 spoofed SYNs, a few per poll so the NIC ring never taildrops.
  constexpr uint64_t kFlood = 4000;
  for (uint64_t i = 0; i < kFlood; i++) {
    auto [ip, port] = spoofed();
    deliver_syn(ip, port, static_cast<uint32_t>(rng.Next()));
    if ((i & 3) == 3) {
      w.Step();
    }
  }
  ASSERT_TRUE(w.RunUntil(
      [&] { return w.server.tcp().stats().syn_cookies_sent >= warmup_cookies + kFlood; }, dog))
      << "server did not answer every flood SYN";

  // The half-open flood allocated NOTHING: no TCBs, no slab growth, no heap growth.
  EXPECT_EQ(w.server.tcp().NumConnections(), 0u);
  EXPECT_EQ(w.server.tcp().tcb_slab().live(), 0u);
  EXPECT_EQ(w.server.tcp().tcb_slab().ReservedBytes(), slab_baseline);
  EXPECT_EQ(w.server.allocator().GetStats().bytes_reserved, heap_baseline);
  EXPECT_EQ(w.server.tcp().stats().syn_cookies_validated, 0u);
  EXPECT_EQ(w.server.tcp().stats().rst_sent, 0u);

  // Service survives: a legitimate client completes a cookie handshake and gets its echo.
  auto cqd = w.client.Socket(SocketType::kStream);
  ASSERT_TRUE(cqd.ok());
  auto conn_qt = w.client.Connect(*cqd, {w.server.local_ip(), 7777});
  ASSERT_TRUE(conn_qt.ok());
  ASSERT_TRUE(w.RunUntil(
      [&] { return w.client.IsDone(*conn_qt) && w.server.IsDone(*accept_qt); }, dog))
      << "legitimate handshake starved by the flood";
  ASSERT_EQ(w.client.TryTake(*conn_qt)->status, Status::kOk);
  auto acc = w.server.TryTake(*accept_qt);
  ASSERT_TRUE(acc.ok());
  ASSERT_EQ(acc->status, Status::kOk);
  EXPECT_EQ(w.server.tcp().stats().syn_cookies_validated, 1u);

  const std::string msg = "still serving through the flood";
  auto push = PushCopied(w.client, *cqd, msg);
  ASSERT_TRUE(push.ok());
  auto pop = w.server.Pop(acc->new_qd);
  ASSERT_TRUE(pop.ok());
  ASSERT_TRUE(w.RunUntil([&] { return w.server.IsDone(*pop); }, dog));
  auto rx = w.server.TryTake(*pop);
  ASSERT_TRUE(rx.ok());
  ASSERT_EQ(rx->status, Status::kOk);
  std::string got;
  AppendSga(w.server, *rx, &got);
  EXPECT_EQ(got, msg);
}

// --- Multi-shard scenario: two shared-nothing workers under seeded corruption ---
//
// Unlike everything above, this runs in REAL time: shard workers busy-poll on their own
// threads, so the world lives on a MonotonicClock and the thread interleaving (and with it
// the exact fault counters) is not replayable. The invariants checked are the thread-safe
// subset: no hang (watchdog + per-op timeouts), byte-exact echo through BOTH RSS queues, and
// graceful recovery — every corrupted segment is caught by the software checksums and healed
// by retransmission, never by aborting.

std::vector<uint64_t> ShardSeedList() {
  if (const char* s = std::getenv("DEMI_FAULT_SEED")) {
    return {std::strtoull(s, nullptr, 10)};
  }
  uint64_t count = 5;  // real-time scenarios: keep the default soak short
  if (const char* c = std::getenv("DEMI_CHAOS_SHARD_SEEDS")) {
    count = std::strtoull(c, nullptr, 10);
    if (count == 0) {
      count = 1;
    }
  }
  std::vector<uint64_t> seeds;
  for (uint64_t i = 1; i <= count; i++) {
    seeds.push_back(i);
  }
  return seeds;
}

FaultPlan ShardPlanForSeed(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x54A8D);
  FaultPlan p;
  p.seed = seed;
  // Modest rate: every drop costs a real-time RTO here, not a virtual one.
  p.net_corrupt = 0.005 + 0.015 * rng.NextDouble();
  p.net_corrupt_bits = 1;  // single-bit: always checksum-detectable (see EchoPlanForSeed)
  return p;
}

// Byte-exact closed-loop echo over one connection; every reply byte is verified against the
// deterministic pattern. Adds echoed bytes to *bytes_echoed.
void ShardedEchoConnection(Catnip& os, SocketAddress server, size_t rounds, uint8_t tag,
                           const Watchdog& dog, uint64_t* bytes_echoed) {
  auto sock = os.Socket(SocketType::kStream);
  ASSERT_TRUE(sock.ok());
  auto cqt = os.Connect(*sock, server);
  ASSERT_TRUE(cqt.ok());
  auto cr = os.Wait(*cqt, 10 * kSecond);
  ASSERT_TRUE(cr.ok()) << "connect hung under sharded chaos";
  ASSERT_EQ(cr->status, Status::kOk);

  for (size_t round = 0; round < rounds && !dog.Expired(); round++) {
    const size_t len = 16 + (round * 293) % 1200;
    auto pattern = [&](size_t i) { return static_cast<uint8_t>(tag ^ (round * 31 + i)); };
    void* buf = os.DmaMalloc(len);
    ASSERT_NE(buf, nullptr);
    for (size_t i = 0; i < len; i++) {
      static_cast<uint8_t*>(buf)[i] = pattern(i);
    }
    auto push_qt = os.Push(*sock, Sgarray::Of(buf, static_cast<uint32_t>(len)));
    ASSERT_TRUE(push_qt.ok());
    auto push_r = os.Wait(*push_qt, 10 * kSecond);
    os.DmaFree(buf);
    ASSERT_TRUE(push_r.ok());
    ASSERT_EQ(push_r->status, Status::kOk);

    size_t received = 0;
    while (received < len) {
      auto pop_qt = os.Pop(*sock);
      ASSERT_TRUE(pop_qt.ok());
      auto pop_r = os.Wait(*pop_qt, 10 * kSecond);
      ASSERT_TRUE(pop_r.ok()) << "echo reply hung (round " << round << ")";
      ASSERT_EQ(pop_r->status, Status::kOk);
      for (uint32_t s = 0; s < pop_r->sga.num_segs; s++) {
        const auto* p = static_cast<const uint8_t*>(pop_r->sga.segs[s].buf);
        for (uint32_t b = 0; b < pop_r->sga.segs[s].len; b++) {
          ASSERT_EQ(p[b], pattern(received))
              << "corrupted byte slipped through (byte " << received << " round " << round << ")";
          received++;
        }
      }
      os.FreeSga(pop_r->sga);
    }
    *bytes_echoed += len;
  }
  EXPECT_FALSE(dog.Expired()) << "sharded echo connection ran out of watchdog budget";
  EXPECT_EQ(os.Close(*sock), Status::kOk);
}

// Runs one 2-worker scenario; accumulates fault/defense counters into the out-params.
void RunShardedEchoChaosScenario(uint64_t seed, uint64_t* corrupted_total,
                                 uint64_t* caught_total) {
  Watchdog dog(60);
  MonotonicClock clock;
  SimNetwork net(LinkConfig{}, /*seed=*/seed + 0x5EED);
  FaultInjector faults;
  net.SetFaultInjector(&faults);
  faults.Arm(ShardPlanForSeed(seed));

  TcpConfig tcp;
  tcp.isn_seed = seed * 0xBEEF + 1;
  tcp.initial_rto = 2 * kMillisecond;  // corruption drops cost wall-clock time in this test
  tcp.min_rto = 500 * kMicrosecond;

  const Ipv4Addr server_ip = Ipv4Addr::FromOctets(10, 7, 1, 1);
  const MacAddr server_mac{0x51};
  const Ipv4Addr client_ips[2] = {Ipv4Addr::FromOctets(10, 7, 1, 2),
                                  Ipv4Addr::FromOctets(10, 7, 1, 3)};
  const MacAddr client_macs[2] = {MacAddr{0xC1}, MacAddr{0xC2}};

  ShardGroup::Options opts;
  opts.num_workers = 2;
  opts.base = Catnip::Config{server_mac, server_ip, tcp, nullptr};
  opts.base.checksum_offload = false;  // software checksums must catch the injected flips
  for (size_t i = 0; i < 2; i++) {
    opts.static_arp.emplace_back(client_ips[i], client_macs[i]);
  }
  ShardGroup group(net, clock, opts);

  const SocketAddress server_addr{server_ip, 7878};
  std::vector<EchoServerStats> per_shard;
  StartShardedEchoServer(group, EchoServerOptions{server_addr}, &per_shard);

  // 2 client hosts x 3 connections each: fresh ephemeral ports scatter the six flows across
  // both shards. Clients run closed-loop on this thread while the workers busy-poll.
  uint64_t bytes_sent = 0;
  uint64_t client_caught = 0;
  for (size_t c = 0; c < 2 && !dog.Expired(); c++) {
    Catnip::Config ccfg{client_macs[c], client_ips[c], tcp, nullptr};
    ccfg.checksum_offload = false;
    Catnip client(net, ccfg, clock);
    client.ethernet().arp().Insert(server_ip, server_mac);
    for (size_t conn = 0; conn < 3 && !dog.Expired(); conn++) {
      ShardedEchoConnection(client, server_addr, /*rounds=*/12,
                            static_cast<uint8_t>(0x20 * (c + 1) + conn), dog, &bytes_sent);
      if (::testing::Test::HasFatalFailure()) {
        break;
      }
    }
    client_caught += client.tcp().stats().rx_checksum_drops + client.tcp().stats().parse_errors +
                     client.ethernet().stats().parse_errors;
  }

  group.RequestStop();
  group.Join();
  if (::testing::Test::HasFatalFailure()) {
    return;
  }

  // Byte accounting holds across both shards, and both RSS queues carried traffic.
  uint64_t served_bytes = 0;
  for (const EchoServerStats& s : per_shard) {
    served_bytes += s.bytes;
  }
  EXPECT_EQ(served_bytes, bytes_sent);
  EXPECT_GT(group.nic().queue_stats(0).rx_frames, 0u) << "queue 0 idle: RSS steering broken";
  EXPECT_GT(group.nic().queue_stats(1).rx_frames, 0u) << "queue 1 idle: RSS steering broken";

  // Injector and fabric agree on what was injected (quiesced: workers joined).
  const FaultInjector::Stats fs = faults.GetStats();
  EXPECT_EQ(fs.frames_corrupted, net.GetStats().frames_corrupted);
  *corrupted_total += fs.frames_corrupted;
  for (size_t i = 0; i < 2; i++) {
    Catnip& shard = group.shard(i);
    *caught_total += shard.tcp().stats().rx_checksum_drops + shard.tcp().stats().parse_errors +
                     shard.ethernet().stats().parse_errors;
  }
  *caught_total += client_caught;
}

TEST(ChaosSoakTest, ShardedEchoSurvivesSeededChaos) {
  uint64_t corrupted = 0;
  uint64_t caught = 0;
  for (uint64_t seed : ShardSeedList()) {
    SCOPED_TRACE("sharded " + ReplayHint(seed));
    RunShardedEchoChaosScenario(seed, &corrupted, &caught);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
  // Across the soak the plans must have injected corruption and some layer must have caught
  // flips (per-seed counts are interleaving-dependent, so only the totals are assertable).
  EXPECT_GT(corrupted, 0u) << "no corruption injected across the whole sharded soak";
  if (corrupted > 20) {
    EXPECT_GT(caught, 0u) << "no layer noticed " << corrupted << " corrupted frames";
  }
}

// --- FaultPlan parsing and environment plumbing ---

TEST(FaultPlanTest, ParsesKeyValueSpecs) {
  std::string error;
  auto plan = FaultPlan::Parse(
      "seed=9,net_corrupt=0.25,net_corrupt_bits=4,disk_error=0.5,alloc_fail=0.125,"
      "net_link_flap=0.01,net_link_down_ns=50000,disk_delay=0.1,disk_delay_ns=200000,"
      "disk_torn=0.02,net_partition=0.005,net_partition_ns=300000",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->seed, 9u);
  EXPECT_DOUBLE_EQ(plan->net_corrupt, 0.25);
  EXPECT_EQ(plan->net_corrupt_bits, 4u);
  EXPECT_DOUBLE_EQ(plan->disk_error, 0.5);
  EXPECT_DOUBLE_EQ(plan->alloc_fail, 0.125);
  EXPECT_EQ(plan->net_link_down_ns, static_cast<DurationNs>(50000));
  EXPECT_TRUE(plan->Any());

  // Round-trip through ToString.
  auto again = FaultPlan::Parse(plan->ToString(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_DOUBLE_EQ(again->net_corrupt, plan->net_corrupt);
  EXPECT_EQ(again->seed, plan->seed);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("bogus_key=1", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultPlan::Parse("net_corrupt=1.5", &error).has_value());  // probability > 1
  EXPECT_FALSE(FaultPlan::Parse("net_corrupt=abc", &error).has_value());
  EXPECT_FALSE(FaultPlan::Parse("net_corrupt_bits=0", &error).has_value());
  EXPECT_FALSE(FaultPlan::Parse("seed", &error).has_value());  // missing '='
  EXPECT_TRUE(FaultPlan::Parse("", &error).has_value());       // empty spec = default plan
  EXPECT_FALSE(FaultPlan{}.Any());
}

TEST(FaultPlanTest, FromEnvOverridesSeedAndPlan) {
  ::unsetenv("DEMI_FAULT_PLAN");
  ::unsetenv("DEMI_FAULT_SEED");
  EXPECT_FALSE(FaultPlan::FromEnv().has_value());

  ::setenv("DEMI_FAULT_SEED", "1234", 1);
  auto seed_only = FaultPlan::FromEnv();
  ASSERT_TRUE(seed_only.has_value());
  EXPECT_EQ(seed_only->seed, 1234u);

  ::setenv("DEMI_FAULT_PLAN", "net_corrupt=0.1,seed=5", 1);
  auto both = FaultPlan::FromEnv();
  ASSERT_TRUE(both.has_value());
  EXPECT_DOUBLE_EQ(both->net_corrupt, 0.1);
  EXPECT_EQ(both->seed, 1234u);  // DEMI_FAULT_SEED wins over the plan's seed

  ::unsetenv("DEMI_FAULT_SEED");
  auto plan_only = FaultPlan::FromEnv();
  ASSERT_TRUE(plan_only.has_value());
  EXPECT_EQ(plan_only->seed, 5u);

  ::setenv("DEMI_FAULT_PLAN", "not a plan", 1);
  EXPECT_FALSE(FaultPlan::FromEnv().has_value());
  ::unsetenv("DEMI_FAULT_PLAN");
}

}  // namespace
}  // namespace demi
