// PcapWriter: captures fabric traffic to a standard pcap file readable by tcpdump/Wireshark.
//
// Catnip's determinism makes trace-driven debugging practical (paper §6.3: "let us easily debug
// the stack by feeding it a trace with packet timings"); this is the capture half of that
// workflow — attach it to a SimNetwork and every frame put on the wire is recorded with its
// simulated timestamp.

#ifndef SRC_NETSIM_PCAP_WRITER_H_
#define SRC_NETSIM_PCAP_WRITER_H_

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "src/common/clock.h"

namespace demi {

class PcapWriter {
 public:
  // Opens `path` and writes the pcap global header (LINKTYPE_ETHERNET, µs precision).
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  uint64_t frames_written() const { return frames_written_; }

  // Appends one captured frame stamped with the (simulated) time `ts`.
  void WriteFrame(std::span<const uint8_t> frame, TimeNs ts);

  void Flush();

 private:
  FILE* file_ = nullptr;
  uint64_t frames_written_ = 0;
};

// PcapReader: loads frames back from a pcap file — the replay half of the trace-driven
// debugging workflow (feed a captured trace, with its packet timings, into the deterministic
// stack).
class PcapReader {
 public:
  explicit PcapReader(const std::string& path);
  ~PcapReader();

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  bool ok() const { return file_ != nullptr; }

  struct Record {
    TimeNs timestamp;
    std::vector<uint8_t> frame;
  };

  // Reads the next record; returns false at end of file or on a malformed record.
  bool Next(Record* out);

 private:
  FILE* file_ = nullptr;
};

}  // namespace demi

#endif  // SRC_NETSIM_PCAP_WRITER_H_
