#include "src/netsim/sim_rdma.h"

#include <cstring>

#include "src/common/logging.h"

namespace demi {

namespace {

constexpr uint32_t kRdmaMagic = 0x52444D41;  // "RDMA"

enum class WireOp : uint8_t { kSend = 1, kWrite = 2 };

// Device-internal wire header, prepended to every fabric frame.
struct WireHeader {
  uint32_t magic;
  uint8_t opcode;
  uint8_t pad[3];
  uint32_t src_qp;
  uint32_t dst_qp;
  uint64_t src_mac;
  uint64_t seq;        // per-flow frame sequence (lossless fabric check)
  uint32_t msg_len;    // total message payload length
  uint32_t frag_off;   // offset of this fragment within the message
  uint64_t remote_addr;  // writes only
  uint64_t rkey;         // writes only
};

uint64_t TxFlowKey(MacAddr dst, uint32_t src_qp, uint32_t dst_qp) {
  return dst.value * 1000003ULL + (uint64_t{src_qp} << 32) + dst_qp;
}

}  // namespace

SimRdmaDevice::SimRdmaDevice(SimNetwork& network, MacAddr mac, Clock& clock)
    : network_(network), mac_(mac), clock_(clock), registrar_(*this) {
  port_ = network.CreatePort(mac);
  DEMI_CHECK_MSG(port_ != nullptr, "MAC %s already attached", mac.ToString().c_str());
}

size_t SimRdmaDevice::MaxFragPayload() const { return network_.link().mtu - sizeof(WireHeader); }

uint64_t SimRdmaDevice::RegisterMemory(void* base, size_t len) {
  const uint64_t rkey = next_rkey_++;
  regions_[reinterpret_cast<uintptr_t>(base)] = {len, rkey};
  rkeys_[rkey] = {reinterpret_cast<uintptr_t>(base), len};
  return rkey;
}

void SimRdmaDevice::UnregisterMemory(void* base) {
  auto it = regions_.find(reinterpret_cast<uintptr_t>(base));
  if (it != regions_.end()) {
    rkeys_.erase(it->second.second);
    regions_.erase(it);
  }
}

bool SimRdmaDevice::IsRegistered(const void* ptr, size_t len) const {
  const auto addr = reinterpret_cast<uintptr_t>(ptr);
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) {
    return false;
  }
  --it;
  return addr + len <= it->first + it->second.first;
}

Result<uint32_t> SimRdmaDevice::CreateQp(uint32_t desired) {
  uint32_t qp = desired != 0 ? desired : next_qp_++;
  auto [it, inserted] = qps_.try_emplace(qp);
  if (!inserted && it->second.live) {
    return Status::kAddressInUse;
  }
  it->second.live = true;
  return qp;
}

void SimRdmaDevice::DestroyQp(uint32_t qp) {
  auto it = qps_.find(qp);
  if (it != qps_.end()) {
    it->second.live = false;
    it->second.recv_queue.clear();
  }
}

Status SimRdmaDevice::PostRecv(uint32_t qp, void* buf, uint32_t len, uint64_t wr_id) {
  auto it = qps_.find(qp);
  if (it == qps_.end() || !it->second.live) {
    return Status::kBadQueueDescriptor;
  }
  DEMI_CHECK_MSG(IsRegistered(buf, len), "recv buffer not in registered memory");
  it->second.recv_queue.push_back(RecvWr{buf, len, wr_id});
  return Status::kOk;
}

Status SimRdmaDevice::PostSend(uint32_t qp, MacAddr dst_mac, uint32_t dst_qp,
                               std::span<const std::span<const uint8_t>> segments,
                               uint64_t wr_id) {
  auto it = qps_.find(qp);
  if (it == qps_.end() || !it->second.live) {
    return Status::kBadQueueDescriptor;
  }
  size_t total = 0;
  for (const auto& seg : segments) {
    if (seg.size() >= 1024) {
      DEMI_CHECK_MSG(IsRegistered(seg.data(), seg.size()),
                     "zero-copy RDMA send segment not in registered memory");
    }
    total += seg.size();
  }

  // Gather the message, then fragment onto the fabric. The gather copy stands in for the HCA's
  // DMA of each registered segment onto the wire.
  std::vector<uint8_t> msg;
  msg.reserve(total);
  for (const auto& seg : segments) {
    msg.insert(msg.end(), seg.begin(), seg.end());
  }

  uint64_t& seq = tx_seq_[TxFlowKey(dst_mac, qp, dst_qp)];
  const size_t frag_max = MaxFragPayload();
  size_t off = 0;
  do {
    const size_t chunk = std::min(frag_max, msg.size() - off);
    WireFrame frame(sizeof(WireHeader) + chunk);
    WireHeader hdr{};
    hdr.magic = kRdmaMagic;
    hdr.opcode = static_cast<uint8_t>(WireOp::kSend);
    hdr.src_qp = qp;
    hdr.dst_qp = dst_qp;
    hdr.src_mac = mac_.value;
    hdr.seq = seq++;
    hdr.msg_len = static_cast<uint32_t>(msg.size());
    hdr.frag_off = static_cast<uint32_t>(off);
    std::memcpy(frame.data(), &hdr, sizeof(hdr));
    std::memcpy(frame.data() + sizeof(hdr), msg.data() + off, chunk);
    network_.Deliver(mac_, dst_mac, std::move(frame), clock_.Now());
    off += chunk;
  } while (off < msg.size());

  stats_.sends++;
  // The lossless-fabric model acknowledges instantly: signal send completion now. The data has
  // left host memory (gathered above), so the caller may release its buffers.
  completions_.push_back(RdmaCompletion{RdmaCompletion::Type::kSend, Status::kOk, wr_id, qp, 0,
                                        MacAddr{}, 0});
  return Status::kOk;
}

Status SimRdmaDevice::PostWrite(uint32_t qp, MacAddr dst_mac, uint32_t dst_qp,
                                uint64_t remote_rkey, uint64_t remote_addr,
                                std::span<const uint8_t> data, uint64_t wr_id) {
  auto it = qps_.find(qp);
  if (it == qps_.end() || !it->second.live) {
    return Status::kBadQueueDescriptor;
  }
  DEMI_CHECK_MSG(data.size() <= MaxFragPayload(), "one-sided writes limited to one fragment");
  WireFrame frame(sizeof(WireHeader) + data.size());
  WireHeader hdr{};
  hdr.magic = kRdmaMagic;
  hdr.opcode = static_cast<uint8_t>(WireOp::kWrite);
  hdr.src_qp = qp;
  hdr.dst_qp = dst_qp;
  hdr.src_mac = mac_.value;
  hdr.seq = tx_seq_[TxFlowKey(dst_mac, qp, dst_qp)]++;
  hdr.msg_len = static_cast<uint32_t>(data.size());
  hdr.frag_off = 0;
  hdr.remote_addr = remote_addr;
  hdr.rkey = remote_rkey;
  std::memcpy(frame.data(), &hdr, sizeof(hdr));
  std::memcpy(frame.data() + sizeof(hdr), data.data(), data.size());
  network_.Deliver(mac_, dst_mac, std::move(frame), clock_.Now());
  stats_.writes++;
  completions_.push_back(RdmaCompletion{RdmaCompletion::Type::kWrite, Status::kOk, wr_id, qp, 0,
                                        MacAddr{}, 0});
  return Status::kOk;
}

void SimRdmaDevice::ProcessInbound() {
  WireFrame frames[32];
  for (;;) {
    const size_t n = port_->Poll(std::span<WireFrame>(frames, 32), clock_.Now());
    if (n == 0) {
      return;
    }
    for (size_t i = 0; i < n; i++) {
      HandleFrame(frames[i]);
    }
  }
}

void SimRdmaDevice::HandleFrame(const WireFrame& frame) {
  if (frame.size() < sizeof(WireHeader)) {
    return;
  }
  WireHeader hdr;
  std::memcpy(&hdr, frame.data(), sizeof(hdr));
  if (hdr.magic != kRdmaMagic) {
    return;  // not an RDMA frame (e.g., stray broadcast)
  }
  const uint8_t* payload = frame.data() + sizeof(WireHeader);
  const size_t payload_len = frame.size() - sizeof(WireHeader);

  FlowKey key{hdr.src_mac, hdr.src_qp, hdr.dst_qp};
  FlowState& flow = flows_[key];
  if (hdr.seq != flow.next_rx_seq) {
    // Lossless in-order fabric assumption broken; count and resynchronize.
    stats_.seq_violations++;
    flow.next_rx_seq = hdr.seq;
    flow.assembling = false;
  }
  flow.next_rx_seq = hdr.seq + 1;

  if (hdr.opcode == static_cast<uint8_t>(WireOp::kWrite)) {
    auto it = rkeys_.find(hdr.rkey);
    if (it == rkeys_.end() || hdr.remote_addr < it->second.first ||
        hdr.remote_addr + hdr.msg_len > it->second.first + it->second.second) {
      stats_.bad_rkey_writes++;
      return;
    }
    std::memcpy(reinterpret_cast<void*>(hdr.remote_addr), payload, payload_len);
    return;
  }

  // Two-sided send: first fragment claims a posted receive buffer.
  auto qp_it = qps_.find(hdr.dst_qp);
  if (qp_it == qps_.end() || !qp_it->second.live) {
    return;
  }
  QueuePair& qp = qp_it->second;

  if (!flow.assembling) {
    if (qp.recv_queue.empty()) {
      stats_.rnr_drops++;
      return;
    }
    RecvWr wr = qp.recv_queue.front();
    qp.recv_queue.pop_front();
    if (wr.len < hdr.msg_len) {
      stats_.recv_too_small++;
      completions_.push_back(RdmaCompletion{RdmaCompletion::Type::kRecv, Status::kMessageTooLong,
                                            wr.wr_id, hdr.dst_qp, 0, MacAddr{hdr.src_mac},
                                            hdr.src_qp});
      return;
    }
    flow.assembling = true;
    flow.target = wr;
    flow.received = 0;
    flow.msg_len = hdr.msg_len;
    flow.src_mac = MacAddr{hdr.src_mac};
    flow.src_qp = hdr.src_qp;
    flow.dst_qp = hdr.dst_qp;
  }

  DEMI_CHECK(hdr.frag_off + payload_len <= flow.target.len);
  std::memcpy(static_cast<uint8_t*>(flow.target.buf) + hdr.frag_off, payload, payload_len);
  flow.received += static_cast<uint32_t>(payload_len);

  if (flow.received >= flow.msg_len) {
    stats_.recvs++;
    completions_.push_back(RdmaCompletion{RdmaCompletion::Type::kRecv, Status::kOk,
                                          flow.target.wr_id, flow.dst_qp, flow.msg_len,
                                          flow.src_mac, flow.src_qp});
    flow.assembling = false;
  }
}

size_t SimRdmaDevice::PollCq(std::span<RdmaCompletion> out) {
  ProcessInbound();
  size_t n = 0;
  while (n < out.size() && !completions_.empty()) {
    out[n++] = completions_.front();
    completions_.pop_front();
  }
  return n;
}

}  // namespace demi
