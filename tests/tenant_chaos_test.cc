// Noisy-neighbor chaos soak (docs/TENANCY.md, docs/FAULTS.md): a flooding tenant and a victim
// tenant share one server under seeded corruption plus tenant-scoped frame loss aimed at the
// flooder. Every scenario is fully deterministic — fault decisions flow from one seeded
// FaultPlan and the stacks run on a shared VirtualClock — so any failing seed replays exactly
// with DEMI_FAULT_SEED=<seed>.
//
// Invariants checked per seed:
//   - byte-exact victim echoes: the victim's stream survives the flood and the corruption;
//   - bounded victim latency: the flooder's backlog must not capture the link (token bucket +
//     weighted DRR keep the victim's median RTT small);
//   - the flooder is actually throttled (its bucket queues frames) and tenant_drop fires;
//   - zero cross-tenant violations: under -DDEMI_OWNERSHIP_CHECKS=ON any wrong-tenant buffer
//     touch aborts the process, so a green run is the proof;
//   - determinism: the same seed replays to the identical victim transcript and counters.
//
// Environment knobs: DEMI_FAULT_SEED=<n> replays one seed; DEMI_CHAOS_SEEDS=<n> sets the soak
// width (default 20).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/random.h"
#include "src/faults/fault_injector.h"
#include "src/liboses/catnip.h"
#include "src/net/headers.h"
#include "src/netsim/sim_network.h"

namespace demi {
namespace {

constexpr TenantId kVictim = 1;
constexpr TenantId kFlooder = 2;
constexpr uint16_t kVictimPort = 9100;
constexpr uint16_t kFlooderPort = 9200;
constexpr int kVictimRounds = 40;
constexpr size_t kFloodMsgBytes = 2048;
constexpr int kFloodWindow = 4;  // junk messages the flooding client keeps outstanding

std::vector<uint64_t> SeedList() {
  if (const char* s = std::getenv("DEMI_FAULT_SEED")) {
    return {std::strtoull(s, nullptr, 10)};
  }
  uint64_t count = 20;
  if (const char* c = std::getenv("DEMI_CHAOS_SEEDS")) {
    count = std::strtoull(c, nullptr, 10);
    if (count == 0) {
      count = 1;
    }
  }
  std::vector<uint64_t> seeds;
  for (uint64_t i = 1; i <= count; i++) {
    seeds.push_back(i);
  }
  return seeds;
}

std::string ReplayHint(uint64_t seed) {
  return "seed " + std::to_string(seed) +
         " — replay with: DEMI_FAULT_SEED=" + std::to_string(seed) + " ./tenant_chaos_test";
}

class Watchdog {
 public:
  explicit Watchdog(int budget_seconds = 30)
      : start_(std::chrono::steady_clock::now()), budget_seconds_(budget_seconds) {}
  bool Expired() const {
    return std::chrono::steady_clock::now() - start_ > std::chrono::seconds(budget_seconds_);
  }

 private:
  std::chrono::steady_clock::time_point start_;
  int budget_seconds_;
};

// The deterministic two-host world: server (both tenants) and client Catnips on one
// VirtualClock, with the injector wired into the fabric so tenant_drop reaches the server's
// TX path through the SimNetwork fallback.
struct NoisyWorld {
  explicit NoisyWorld(const FaultPlan& plan)
      : net(LinkConfig{}, /*seed=*/plan.seed + 0x7EA47),
        server(net, StackConfig(MacAddr{0x5}, Ipv4Addr::FromOctets(10, 9, 0, 1)), clock),
        client(net, StackConfig(MacAddr{0xC}, Ipv4Addr::FromOctets(10, 9, 0, 2)), clock) {
    server.ethernet().arp().Insert(client.local_ip(), MacAddr{0xC});
    client.ethernet().arp().Insert(server.local_ip(), MacAddr{0x5});
    faults.SetTracer(&server.tracer());
    faults.RegisterMetrics(server.metrics());
    net.SetFaultInjector(&faults);
    faults.Arm(plan);
  }

  static Catnip::Config StackConfig(MacAddr mac, Ipv4Addr ip) {
    Catnip::Config c{mac, ip, TcpConfig{}, nullptr};
    c.checksum_offload = false;  // software checksums must catch the injected bit flips
    return c;
  }

  void AdvanceClock() {
    TimeNs next = 0;
    const auto consider = [&next](TimeNs t) {
      if (t != 0 && (next == 0 || t < next)) {
        next = t;
      }
    };
    consider(net.NextDeliveryTime());
    consider(server.scheduler().NextTimerDeadline());
    consider(client.scheduler().NextTimerDeadline());
    if (next > clock.Now()) {
      clock.SetTime(next);
    } else {
      clock.Advance(kMicrosecond);
    }
  }

  void Step() {
    server.PollOnce();
    client.PollOnce();
    AdvanceClock();
  }

  // Declaration order doubles as destruction order (reversed): the libOSes go first, while the
  // injector and network they point into are still alive.
  VirtualClock clock;
  SimNetwork net;
  FaultInjector faults;
  Catnip server;
  Catnip client;
};

Result<QToken> PushCopied(Catnip& os, QueueDesc qd, const std::string& data) {
  // Foreign memory: the libOS pins by copying before the call returns.
  return os.Push(qd, Sgarray::Of(const_cast<char*>(data.data()),
                                 static_cast<uint32_t>(data.size())));
}

void AppendSga(Catnip& os, QResult& r, std::string* out) {
  for (uint32_t i = 0; i < r.sga.num_segs; i++) {
    out->append(static_cast<const char*>(r.sga.segs[i].buf), r.sga.segs[i].len);
  }
  os.FreeSga(r.sga);
}

// Everything the scenario measures, compared across replays of the same seed.
struct Outcome {
  bool completed = false;
  std::string victim_transcript;
  TimeNs victim_rtt_p50 = 0;
  TimeNs victim_rtt_max = 0;
  uint64_t flooder_throttled = 0;
  uint64_t flooder_tx_bytes = 0;
  uint64_t tenant_frames_dropped = 0;
  uint64_t victim_echoes = 0;
  uint64_t flood_echoes = 0;

  bool operator==(const Outcome& o) const {
    return completed == o.completed && victim_transcript == o.victim_transcript &&
           victim_rtt_p50 == o.victim_rtt_p50 && victim_rtt_max == o.victim_rtt_max &&
           flooder_throttled == o.flooder_throttled && flooder_tx_bytes == o.flooder_tx_bytes &&
           tenant_frames_dropped == o.tenant_frames_dropped &&
           victim_echoes == o.victim_echoes && flood_echoes == o.flood_echoes;
  }
};

// One pop token per server-side connection, re-armed after every echo.
struct EchoConn {
  QueueDesc qd = kInvalidQd;
  QToken pop = kInvalidQToken;
  bool open = false;
  uint64_t echoes = 0;
};

Outcome RunNoisyNeighborScenario(uint64_t seed, const Watchdog& dog) {
  FaultPlan plan;
  plan.seed = seed;
  plan.net_corrupt = 0.01;  // light corruption on every link, both tenants
  plan.net_corrupt_bits = 2;
  plan.tenant_drop_id = kFlooder;
  plan.tenant_drop = 0.25;  // heavy targeted loss on the flooder's TX only
  NoisyWorld w(plan);
  Outcome out;

  // The flooder gets a tight token bucket; the victim rides the control-configured default
  // weight. Registration also publishes both tenants' labelled metrics.
  TenantConfig victim_cfg;
  EXPECT_EQ(w.server.RegisterTenant(kVictim, victim_cfg), Status::kOk);
  TenantConfig flood_cfg;
  flood_cfg.tx_rate_bps = 2'000'000;  // 250 KB/s of virtual link time
  flood_cfg.tx_burst_bytes = 8 * 1024;
  flood_cfg.tx_weight = 1;
  EXPECT_EQ(w.server.RegisterTenant(kFlooder, flood_cfg), Status::kOk);

  // Two listeners, one per tenant.
  const auto listen = [&](uint16_t port, TenantId tenant) -> QueueDesc {
    auto qd = w.server.Socket(SocketType::kStream);
    EXPECT_TRUE(qd.ok());
    EXPECT_EQ(w.server.Bind(*qd, {w.server.local_ip(), port}), Status::kOk);
    EXPECT_EQ(w.server.SetQueueTenant(*qd, tenant), Status::kOk);
    EXPECT_EQ(w.server.Listen(*qd, 8), Status::kOk);
    return *qd;
  };
  const QueueDesc victim_lqd = listen(kVictimPort, kVictim);
  const QueueDesc flood_lqd = listen(kFlooderPort, kFlooder);
  auto victim_accept = w.server.Accept(victim_lqd);
  auto flood_accept = w.server.Accept(flood_lqd);
  EXPECT_TRUE(victim_accept.ok());
  EXPECT_TRUE(flood_accept.ok());

  auto victim_cqd = w.client.Socket(SocketType::kStream);
  auto flood_cqd = w.client.Socket(SocketType::kStream);
  EXPECT_TRUE(victim_cqd.ok());
  EXPECT_TRUE(flood_cqd.ok());
  auto victim_connect = w.client.Connect(*victim_cqd, {w.server.local_ip(), kVictimPort});
  auto flood_connect = w.client.Connect(*flood_cqd, {w.server.local_ip(), kFlooderPort});
  EXPECT_TRUE(victim_connect.ok());
  EXPECT_TRUE(flood_connect.ok());

  EchoConn victim_sc;
  EchoConn flood_sc;

  // Server-side echo pump: pops both tenants' connections, echoes every message back
  // (zero-copy: push then free; UAF protection pins the buffer until acked).
  const auto pump_server = [&](EchoConn& c) {
    if (!c.open || !w.server.IsDone(c.pop)) {
      return;
    }
    auto r = w.server.TryTake(c.pop);
    if (!r.ok() || r->status != Status::kOk) {
      c.open = false;
      return;
    }
    auto echo = w.server.Push(c.qd, r->sga);
    (void)echo;  // a shed/full push loses the echo; the client side just sees a gap
    w.server.FreeSga(r->sga);
    c.echoes++;
    auto next = w.server.Pop(c.qd);
    if (next.ok()) {
      c.pop = *next;
    } else {
      c.open = false;
    }
  };

  // Client-side flooder: keeps kFloodWindow junk messages outstanding and pops echoes to keep
  // the window sliding. Push tokens complete inline; echo pops gate the refill.
  const std::string junk(kFloodMsgBytes, 'J');
  std::vector<QToken> flood_pops;
  bool flood_open = false;
  const auto pump_flooder = [&]() {
    if (!flood_open) {
      return;
    }
    for (size_t i = 0; i < flood_pops.size(); i++) {
      if (!w.client.IsDone(flood_pops[i])) {
        continue;
      }
      auto r = w.client.TryTake(flood_pops[i]);
      if (!r.ok() || r->status != Status::kOk) {
        flood_open = false;
        return;
      }
      out.flood_echoes++;
      w.client.FreeSga(r->sga);
      auto push = PushCopied(w.client, *flood_cqd, junk);
      if (!push.ok()) {
        flood_open = false;
        return;
      }
      auto pop = w.client.Pop(*flood_cqd);
      if (!pop.ok()) {
        flood_open = false;
        return;
      }
      flood_pops[i] = *pop;
    }
  };

  const auto step_world = [&]() {
    pump_server(victim_sc);
    pump_server(flood_sc);
    pump_flooder();
    w.Step();
  };
  const auto run_until = [&](auto&& pred) {
    for (int i = 0; i < 4'000'000; i++) {
      if (pred()) {
        return true;
      }
      if ((i & 1023) == 0 && dog.Expired()) {
        return false;
      }
      step_world();
    }
    return pred();
  };

  // Establish both connections and arm the server pumps.
  if (!run_until([&] {
        return w.server.IsDone(*victim_accept) && w.server.IsDone(*flood_accept) &&
               w.client.IsDone(*victim_connect) && w.client.IsDone(*flood_connect);
      })) {
    return out;
  }
  {
    auto va = w.server.TryTake(*victim_accept);
    auto fa = w.server.TryTake(*flood_accept);
    EXPECT_TRUE(va.ok() && va->status == Status::kOk);
    EXPECT_TRUE(fa.ok() && fa->status == Status::kOk);
    if (!va.ok() || !fa.ok()) {
      return out;
    }
    victim_sc.qd = va->new_qd;
    flood_sc.qd = fa->new_qd;
    EXPECT_TRUE(w.client.TryTake(*victim_connect).ok());
    EXPECT_TRUE(w.client.TryTake(*flood_connect).ok());
  }
  for (EchoConn* c : {&victim_sc, &flood_sc}) {
    auto pop = w.server.Pop(c->qd);
    EXPECT_TRUE(pop.ok());
    if (!pop.ok()) {
      return out;
    }
    c->pop = *pop;
    c->open = true;
  }
  // Prime the flood window.
  flood_open = true;
  for (int i = 0; i < kFloodWindow; i++) {
    auto push = PushCopied(w.client, *flood_cqd, junk);
    auto pop = w.client.Pop(*flood_cqd);
    EXPECT_TRUE(push.ok() && pop.ok());
    if (!pop.ok()) {
      return out;
    }
    flood_pops.push_back(*pop);
  }

  // Victim rounds: seeded random payloads, closed-loop, byte-exact echo required.
  Rng payload_rng(seed * 0x9E3779B9u + 7);
  std::vector<TimeNs> rtts;
  for (int round = 0; round < kVictimRounds; round++) {
    std::string msg;
    const size_t len = 64 + payload_rng.NextBounded(960);
    msg.reserve(len);
    for (size_t i = 0; i < len; i++) {
      msg.push_back(static_cast<char>('a' + payload_rng.NextBounded(26)));
    }
    const TimeNs start = w.clock.Now();
    auto push = PushCopied(w.client, *victim_cqd, msg);
    auto pop = w.client.Pop(*victim_cqd);
    EXPECT_TRUE(push.ok() && pop.ok());
    if (!push.ok() || !pop.ok()) {
      return out;
    }
    std::string echo;
    bool round_done = false;
    if (!run_until([&] {
          if (!w.client.IsDone(*pop)) {
            return false;
          }
          auto r = w.client.TryTake(*pop);
          if (!r.ok() || r->status != Status::kOk) {
            return true;  // connection died: leave round_done false
          }
          AppendSga(w.client, *r, &echo);
          if (echo.size() < msg.size()) {
            auto again = w.client.Pop(*victim_cqd);
            if (!again.ok()) {
              return true;
            }
            pop = *again;  // echo split across segments: keep popping
            return false;
          }
          round_done = true;
          return true;
        })) {
      ADD_FAILURE() << "victim round " << round << " timed out, " << ReplayHint(seed);
      return out;
    }
    if (!round_done) {
      ADD_FAILURE() << "victim connection died in round " << round << ", " << ReplayHint(seed);
      return out;
    }
    EXPECT_EQ(echo, msg) << "victim echo not byte-exact in round " << round << ", "
                         << ReplayHint(seed);
    rtts.push_back(w.clock.Now() - start);
    out.victim_transcript += msg;
  }

  std::sort(rtts.begin(), rtts.end());
  out.victim_rtt_p50 = rtts[rtts.size() / 2];
  out.victim_rtt_max = rtts.back();
  const auto flood_tx = w.server.ethernet().tx_scheduler().GetTenantTxStats(kFlooder);
  out.flooder_throttled = flood_tx.throttled;
  out.flooder_tx_bytes = flood_tx.tx_bytes;
  out.tenant_frames_dropped = w.faults.GetStats().tenant_frames_dropped;
  out.victim_echoes = victim_sc.echoes;
  out.completed = true;
  return out;
}

TEST(TenantChaosSoak, VictimSurvivesNoisyNeighborAcrossSeeds) {
  for (uint64_t seed : SeedList()) {
    Watchdog dog(30);
    SCOPED_TRACE(ReplayHint(seed));
    Outcome out = RunNoisyNeighborScenario(seed, dog);
    ASSERT_TRUE(out.completed) << "scenario did not complete, " << ReplayHint(seed);
    // The victim's stream stayed byte-exact (checked per round) and its latency bounded: the
    // flooder's backlog must not capture the link. Medians are sub-millisecond in a quiet
    // world; corruption-induced retransmits can stretch the tail, not the middle.
    EXPECT_LE(out.victim_rtt_p50, 50 * kMillisecond);
    EXPECT_LE(out.victim_rtt_max, 10 * kSecond);
    // The flood actually hit both control mechanisms: the token bucket queued its echoes, and
    // the tenant-scoped fault plan swallowed some of its frames.
    EXPECT_GT(out.flooder_throttled, 0u) << "flooder was never throttled";
    EXPECT_GT(out.tenant_frames_dropped, 0u) << "tenant_drop never fired";
    EXPECT_GT(out.victim_echoes, 0u);
  }
}

TEST(TenantChaosSoak, SameSeedReplaysToIdenticalOutcome) {
  const uint64_t seed = SeedList().front();
  Watchdog dog1(30);
  Outcome a = RunNoisyNeighborScenario(seed, dog1);
  Watchdog dog2(30);
  Outcome b = RunNoisyNeighborScenario(seed, dog2);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_TRUE(a == b) << "same seed diverged: transcripts "
                      << (a.victim_transcript == b.victim_transcript ? "match" : "differ")
                      << ", dropped " << a.tenant_frames_dropped << " vs "
                      << b.tenant_frames_dropped << ", " << ReplayHint(seed);
}

}  // namespace
}  // namespace demi
