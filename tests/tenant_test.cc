// Multi-tenant isolation tests (docs/TENANCY.md): TX token buckets + weighted DRR, per-tenant
// DMA-heap budgets, accept-queue admission, inflight-watermark load shedding, tenant-scoped
// fault injection, and the DemiSan cross-tenant access abort.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/core/qtoken_table.h"
#include "src/core/tenant.h"
#include "src/faults/fault_injector.h"
#include "src/liboses/catnip.h"
#include "src/memory/buffer.h"
#include "src/memory/pool_allocator.h"
#include "src/net/tx_scheduler.h"

namespace demi {
namespace {

// --- TxScheduler: token bucket + weighted DRR ---

TxScheduler::Frame MakeFrame(size_t bytes) {
  TxScheduler::Frame f;
  f.dst_mac = MacAddr{1};
  f.dst_ip = Ipv4Addr::FromOctets(10, 0, 0, 1);
  f.proto = IpProto::kTcp;
  f.l4_bytes.assign(bytes, 0xAB);
  return f;
}

TEST(TxSchedulerTest, UnconfiguredTenantBypassesScheduler) {
  TxScheduler sched;
  EXPECT_TRUE(sched.AdmitInline(42, 1'000'000, /*now=*/0));
  EXPECT_FALSE(sched.IsLimited(42));
  EXPECT_EQ(sched.backlog_frames(), 0u);
}

TEST(TxSchedulerTest, TokenBucketThrottlesAtConfiguredRate) {
  TxScheduler sched;
  // 8 Mbit/s = 1000 bytes per millisecond; burst of exactly 1000 bytes.
  sched.Configure(/*tenant=*/1, /*rate_bps=*/8'000'000, /*burst_bytes=*/1000, /*weight=*/1);
  EXPECT_TRUE(sched.IsLimited(1));

  // The initial bucket is full: the first 1000 bytes pass inline.
  EXPECT_TRUE(sched.AdmitInline(1, 1000, /*now=*/0));
  // Bucket empty: the next frame must queue.
  EXPECT_FALSE(sched.AdmitInline(1, 100, /*now=*/0));

  // One millisecond of virtual time refills exactly 1000 bytes.
  EXPECT_TRUE(sched.AdmitInline(1, 1000, /*now=*/1 * kMillisecond));
  EXPECT_FALSE(sched.AdmitInline(1, 1, /*now=*/1 * kMillisecond));
  EXPECT_EQ(sched.stats().inline_frames, 2u);
}

TEST(TxSchedulerTest, RefillNeverExceedsBurst) {
  TxScheduler sched;
  sched.Configure(1, 8'000'000, 1000, 1);
  EXPECT_TRUE(sched.AdmitInline(1, 1000, 0));
  // A long idle period refills to the burst cap, not beyond it.
  EXPECT_FALSE(sched.AdmitInline(1, 1001, 10 * kSecond));
  EXPECT_TRUE(sched.AdmitInline(1, 1000, 10 * kSecond));
}

TEST(TxSchedulerTest, ThrottledFramesDrainWhenTokensAccrue) {
  TxScheduler sched;
  sched.Configure(1, 8'000'000, 1000, 1);
  EXPECT_TRUE(sched.AdmitInline(1, 1000, 0));
  EXPECT_FALSE(sched.AdmitInline(1, 500, 0));
  sched.Enqueue(1, MakeFrame(500), 0);
  EXPECT_EQ(sched.backlog_frames(), 1u);
  EXPECT_EQ(sched.GetTenantTxStats(1).throttled, 1u);

  // No tokens yet: nothing drains.
  size_t sent = sched.Drain(0, [](const TxScheduler::Frame&) { return Status::kOk; });
  EXPECT_EQ(sent, 0u);

  // 1ms refills 1000 bytes: the queued 500-byte frame goes out.
  sent = sched.Drain(1 * kMillisecond, [](const TxScheduler::Frame&) { return Status::kOk; });
  EXPECT_EQ(sent, 1u);
  EXPECT_EQ(sched.backlog_frames(), 0u);
  EXPECT_EQ(sched.stats().drained_frames, 1u);
  EXPECT_EQ(sched.GetTenantTxStats(1).tx_bytes, 1500u);
}

TEST(TxSchedulerTest, InlineAdmissionPreservesFrameOrderBehindBacklog) {
  TxScheduler sched;
  sched.Configure(1, 8'000'000, 1000, 1);
  EXPECT_TRUE(sched.AdmitInline(1, 1000, 0));
  sched.Enqueue(1, MakeFrame(100), 0);
  // Even with a full bucket, a tenant with queued frames may not jump its own queue.
  EXPECT_FALSE(sched.AdmitInline(1, 10, 10 * kSecond));
}

TEST(TxSchedulerTest, WeightedDrrSharesDrainByWeight) {
  TxScheduler sched;
  // Both tenants have ample tokens; only the DRR deficit arbitrates. Weight 3 vs 1, with
  // tenant 2's frames distinguishable by size.
  sched.Configure(1, 8'000'000'000, 1 << 20, /*weight=*/3);
  sched.Configure(2, 8'000'000'000, 1 << 20, /*weight=*/1);
  for (int i = 0; i < 8; i++) {
    sched.Enqueue(1, MakeFrame(1500), 0);
    sched.Enqueue(2, MakeFrame(1400), 0);
  }
  size_t sent_total = 0;
  size_t t1_in_first_8 = 0;
  sched.Drain(1 * kSecond, [&](const TxScheduler::Frame& f) {
    if (sent_total < 8 && f.l4_bytes.size() == 1500) {
      t1_in_first_8++;
    }
    sent_total++;
    return Status::kOk;
  });
  EXPECT_EQ(sent_total, 16u);
  // Per DRR round: tenant 1 banks 3×1500 deficit (3 frames), tenant 2 banks 1500 (1 frame).
  EXPECT_EQ(t1_in_first_8, 6u) << "weighted DRR did not honor the 3:1 split";
}

TEST(TxSchedulerTest, TailDropsAtPerTenantQueueCap) {
  TxScheduler sched;
  sched.Configure(1, 1'000'000, 100, 1);
  for (size_t i = 0; i < TxScheduler::kMaxQueuedPerTenant + 5; i++) {
    sched.Enqueue(1, MakeFrame(200), 0);
  }
  EXPECT_EQ(sched.backlog_frames(), TxScheduler::kMaxQueuedPerTenant);
  EXPECT_EQ(sched.stats().dropped_frames, 5u);
}

// --- TenantTable: registration, accept admission, watermark shedding ---

TEST(TenantTableTest, DefaultTenantIsNotRegistrable) {
  TenantTable table;
  table.Register(kDefaultTenant, TenantConfig{});
  EXPECT_FALSE(table.IsRegistered(kDefaultTenant));
  EXPECT_EQ(table.NumRegistered(), 0u);
}

TEST(TenantTableTest, RegisterStoresAndUpdatesConfig) {
  TenantTable table;
  TenantConfig cfg;
  cfg.accept_backlog = 7;
  table.Register(3, cfg);
  ASSERT_TRUE(table.IsRegistered(3));
  ASSERT_NE(table.Find(3), nullptr);
  EXPECT_EQ(table.Find(3)->accept_backlog, 7u);
  cfg.accept_backlog = 9;
  table.Register(3, cfg);  // reconfigure in place
  EXPECT_EQ(table.NumRegistered(), 1u);
  EXPECT_EQ(table.Find(3)->accept_backlog, 9u);
}

TEST(TenantTableTest, AcceptAdmissionChargesAndReleasesSlots) {
  TenantTable table;
  TenantConfig cfg;
  cfg.accept_backlog = 2;
  table.Register(1, cfg);

  EXPECT_TRUE(table.TryAdmitAccept(1));
  EXPECT_TRUE(table.TryAdmitAccept(1));
  EXPECT_FALSE(table.TryAdmitAccept(1)) << "third admit must shed at backlog 2";
  EXPECT_EQ(table.GetStats(1).accept_admitted, 2u);
  EXPECT_EQ(table.GetStats(1).accept_shed, 1u);
  EXPECT_EQ(table.GetStats(1).accept_inflight, 2u);

  table.ReleaseAccept(1);
  EXPECT_TRUE(table.TryAdmitAccept(1)) << "released slot must be reusable";
  // Underflow guard: extra releases never wrap the inflight counter.
  table.ReleaseAccept(1);
  table.ReleaseAccept(1);
  table.ReleaseAccept(1);
  EXPECT_EQ(table.GetStats(1).accept_inflight, 0u);
}

TEST(TenantTableTest, UnregisteredAndDefaultTenantsAlwaysAdmit) {
  TenantTable table;
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(table.TryAdmitAccept(kDefaultTenant));
    EXPECT_TRUE(table.TryAdmitAccept(55));
  }
  EXPECT_EQ(table.TotalAcceptShed(), 0u);
}

TEST(TenantTableTest, WatermarkShedsOnlyAtOrAboveLimit) {
  TenantTable table;
  TenantConfig cfg;
  cfg.inflight_watermark = 4;
  table.Register(2, cfg);

  EXPECT_FALSE(table.ShouldShed(2, 3));
  EXPECT_TRUE(table.ShouldShed(2, 4));
  EXPECT_TRUE(table.ShouldShed(2, 100));
  // The control domain and watermark-less tenants are never shed.
  EXPECT_FALSE(table.ShouldShed(kDefaultTenant, 1 << 20));
  EXPECT_FALSE(table.ShouldShed(9, 1 << 20));

  table.CountOpShed(2);
  table.CountOpShed(2);
  EXPECT_EQ(table.GetStats(2).op_shed, 2u);
  EXPECT_EQ(table.TotalOpShed(), 2u);
}

// --- PoolAllocator: per-tenant budgets and tags ---

TEST(TenantMemoryTest, BudgetDeniesOverAllocationForThatTenantOnly) {
  PoolAllocator alloc;
  alloc.SetTenantBudget(1, 8 * 1024);

  // Charges are in size-class capacity, so 4KB allocations land exactly on the budget.
  void* a = alloc.AllocFor(4096, 1);
  void* b = alloc.AllocFor(4096, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(alloc.AllocFor(4096, 1), nullptr) << "third 4KB alloc must exceed the 8KB budget";
  EXPECT_GE(alloc.GetTenantMemStats(1).denials, 1u);

  // The control domain and other tenants are untouched by tenant 1's exhaustion.
  void* c = alloc.Alloc(4096);
  void* d = alloc.AllocFor(4096, 2);
  EXPECT_NE(c, nullptr);
  EXPECT_NE(d, nullptr);

  alloc.Free(a);
  alloc.Free(b);
  alloc.Free(c);
  alloc.Free(d);
}

TEST(TenantMemoryTest, FreeingCreditsTheBudgetBack) {
  PoolAllocator alloc;
  alloc.SetTenantBudget(1, 8 * 1024);
  void* a = alloc.AllocFor(4096, 1);
  void* b = alloc.AllocFor(4096, 1);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(alloc.AllocFor(4096, 1), nullptr);
  alloc.Free(a);
  void* again = alloc.AllocFor(4096, 1);
  EXPECT_NE(again, nullptr) << "freed capacity must return to the tenant's budget";
  alloc.Free(b);
  alloc.Free(again);
  EXPECT_EQ(alloc.GetTenantMemStats(1).used_bytes, 0u);
}

TEST(TenantMemoryTest, TenantTagFollowsObjectAndResetsOnRecycle) {
  PoolAllocator alloc;
  void* p = alloc.AllocFor(256, 5);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(alloc.TenantOf(p), 5);
  alloc.Free(p);
  // The recycled slot comes back off the LIFO free list for the control domain: its tag must
  // not leak the previous tenant.
  void* q = alloc.Alloc(256);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(alloc.TenantOf(q), kDefaultTenant);
  alloc.Free(q);
}

TEST(TenantMemoryTest, HugeAllocationsChargeAndCreditTheBudget) {
  PoolAllocator alloc;
  const size_t huge = 2 * 1024 * 1024;  // beyond the largest size class
  alloc.SetTenantBudget(1, huge);
  void* p = alloc.AllocFor(huge, 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(alloc.TenantOf(p), 1);
  EXPECT_EQ(alloc.AllocFor(huge, 1), nullptr) << "budget spent by the huge block";
  alloc.Free(p);
  EXPECT_EQ(alloc.GetTenantMemStats(1).used_bytes, 0u);
  void* q = alloc.AllocFor(huge, 1);
  EXPECT_NE(q, nullptr);
  alloc.Free(q);
}

// --- QTokenTable: per-tenant inflight accounting and shutdown drain ---

TEST(QTokenTenantTest, InflightPerTenantTracksAllocateAndTake) {
  QTokenTable table;
  const QToken a = table.Allocate(OpCode::kPop, 3, /*tenant=*/1);
  const QToken b = table.Allocate(OpCode::kPop, 3, /*tenant=*/1);
  const QToken c = table.Allocate(OpCode::kPush, 4, /*tenant=*/2);
  EXPECT_EQ(table.InflightForTenant(1), 2u);
  EXPECT_EQ(table.InflightForTenant(2), 1u);
  EXPECT_EQ(table.TenantOf(a), 1);
  EXPECT_EQ(table.TenantOf(c), 2);

  table.Complete(a, QResult{});
  EXPECT_EQ(table.InflightForTenant(1), 2u) << "completion alone does not release the charge";
  ASSERT_TRUE(table.Take(a).ok());
  EXPECT_EQ(table.InflightForTenant(1), 1u);

  table.Complete(b, QResult{});
  table.Complete(c, QResult{});
  ASSERT_TRUE(table.Take(b).ok());
  ASSERT_TRUE(table.Take(c).ok());
  EXPECT_EQ(table.InflightForTenant(1), 0u);
  EXPECT_EQ(table.InflightForTenant(2), 0u);
}

TEST(QTokenTenantTest, DrainDisposesCompletedResultsAndClearsInflight) {
  QTokenTable table;
  const QToken a = table.Allocate(OpCode::kPop, 3, 1);
  (void)table.Allocate(OpCode::kPop, 3, 1);  // stays pending
  QResult done;
  done.status = Status::kOk;
  table.Complete(a, done);

  size_t disposed = 0;
  const size_t drained = table.Drain([&](QResult& r) {
    EXPECT_EQ(r.status, Status::kOk);
    disposed++;
  });
  EXPECT_EQ(drained, 2u);
  EXPECT_EQ(disposed, 1u) << "only the completed token carries a result to dispose";
  EXPECT_EQ(table.NumInUse(), 0u);
  EXPECT_EQ(table.InflightForTenant(1), 0u);
}

// --- FaultPlan: tenant_drop parsing and targeting ---

TEST(TenantFaultTest, ParsesTenantDropSpec) {
  std::string error;
  auto plan = FaultPlan::Parse("tenant_drop=7:0.25,seed=3", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->tenant_drop_id, 7u);
  EXPECT_DOUBLE_EQ(plan->tenant_drop, 0.25);
  EXPECT_TRUE(plan->Any());

  // ToString round-trips through Parse.
  auto again = FaultPlan::Parse(plan->ToString(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->tenant_drop_id, 7u);
  EXPECT_DOUBLE_EQ(again->tenant_drop, 0.25);
}

TEST(TenantFaultTest, RejectsMalformedTenantDrop) {
  EXPECT_FALSE(FaultPlan::Parse("tenant_drop=1").has_value()) << "missing rate";
  EXPECT_FALSE(FaultPlan::Parse("tenant_drop=99999999:0.5").has_value()) << "id over uint16";
  EXPECT_FALSE(FaultPlan::Parse("tenant_drop=1:1.5").has_value()) << "rate over 1.0";
  EXPECT_FALSE(FaultPlan::Parse("tenant_drop=x:0.5").has_value()) << "non-numeric id";
}

TEST(TenantFaultTest, TenantShouldDropTargetsOnlyThePlannedTenant) {
  FaultPlan plan;
  plan.seed = 11;
  plan.tenant_drop_id = 3;
  plan.tenant_drop = 1.0;
  FaultInjector fx(plan);
  EXPECT_TRUE(fx.TenantShouldDrop(3, 100));
  EXPECT_FALSE(fx.TenantShouldDrop(2, 100));
  EXPECT_FALSE(fx.TenantShouldDrop(kDefaultTenant, 100));
  EXPECT_EQ(fx.GetStats().tenant_frames_dropped, 1u);
}

// --- Catnip integration: end-to-end tenant plumbing over the simulated NIC ---

QResult WaitStepped(LibOS& self, QToken qt, std::vector<LibOS*> world,
                    int max_steps = 2'000'000) {
  for (int i = 0; i < max_steps; i++) {
    for (LibOS* os : world) {
      os->PollOnce();
    }
    if (self.IsDone(qt)) {
      auto r = self.TryTake(qt);
      EXPECT_TRUE(r.ok());
      return r.ok() ? *r : QResult{};
    }
  }
  ADD_FAILURE() << "token did not complete";
  return QResult{};
}

Sgarray MakeSga(LibOS& os, const std::string& data) {
  void* buf = os.DmaMalloc(data.size());
  std::memcpy(buf, data.data(), data.size());
  return Sgarray::Of(buf, static_cast<uint32_t>(data.size()));
}

class TenantPairTest : public ::testing::Test {
 protected:
  TenantPairTest()
      : net_(LinkConfig{}, 7),
        server_(net_,
                Catnip::Config{MacAddr{1}, Ipv4Addr::FromOctets(10, 0, 0, 1), TcpConfig{},
                               nullptr},
                clock_),
        client_(net_,
                Catnip::Config{MacAddr{2}, Ipv4Addr::FromOctets(10, 0, 0, 2), TcpConfig{},
                               nullptr},
                clock_) {
    server_.ethernet().arp().Insert(client_.local_ip(), MacAddr{2});
    client_.ethernet().arp().Insert(server_.local_ip(), MacAddr{1});
  }

  std::vector<LibOS*> World() { return {&server_, &client_}; }

  // Establishes one client→server connection on a listener owned by `tenant` and returns
  // {server conn qd, client conn qd}.
  std::pair<QueueDesc, QueueDesc> ConnectOnce(TenantId tenant, uint16_t port) {
    auto sqd = server_.Socket(SocketType::kStream);
    EXPECT_TRUE(sqd.ok());
    EXPECT_EQ(server_.Bind(*sqd, {server_.local_ip(), port}), Status::kOk);
    if (tenant != kDefaultTenant) {
      EXPECT_EQ(server_.SetQueueTenant(*sqd, tenant), Status::kOk);
    }
    EXPECT_EQ(server_.Listen(*sqd, 8), Status::kOk);
    auto accept_qt = server_.Accept(*sqd);
    EXPECT_TRUE(accept_qt.ok());

    auto cqd = client_.Socket(SocketType::kStream);
    EXPECT_TRUE(cqd.ok());
    auto connect_qt = client_.Connect(*cqd, {server_.local_ip(), port});
    EXPECT_TRUE(connect_qt.ok());
    EXPECT_EQ(WaitStepped(client_, *connect_qt, World()).status, Status::kOk);
    QResult acc = WaitStepped(server_, *accept_qt, World());
    EXPECT_EQ(acc.status, Status::kOk);
    return {acc.new_qd, *cqd};
  }

  MonotonicClock clock_;
  SimNetwork net_;
  Catnip server_;
  Catnip client_;
};

TEST_F(TenantPairTest, RegisterTenantRejectsControlDomain) {
  EXPECT_EQ(server_.RegisterTenant(kDefaultTenant, TenantConfig{}), Status::kInvalidArgument);
  EXPECT_EQ(server_.RegisterTenant(1, TenantConfig{}), Status::kOk);
  EXPECT_TRUE(server_.tenants().IsRegistered(1));
}

TEST_F(TenantPairTest, AcceptedConnectionsInheritTheListenerTenant) {
  ASSERT_EQ(server_.RegisterTenant(4, TenantConfig{}), Status::kOk);
  auto [server_conn, client_conn] = ConnectOnce(4, 7100);

  // The accepted connection's queue is charged to tenant 4: its qtokens carry the tenant.
  auto pop_qt = server_.Pop(server_conn);
  ASSERT_TRUE(pop_qt.ok());
  EXPECT_EQ(server_.tokens().TenantOf(*pop_qt), 4);
  EXPECT_EQ(server_.tokens().InflightForTenant(4), 1u);
  EXPECT_GE(server_.tenants().GetStats(4).accept_admitted, 1u);
  EXPECT_EQ(server_.tenants().GetStats(4).accept_inflight, 0u)
      << "Accept() must release the admission slot";

  // Echo a message to prove the tenant-tagged datapath still moves bytes.
  auto push_qt = client_.Push(client_conn, MakeSga(client_, "tenant four"));
  ASSERT_TRUE(push_qt.ok());
  EXPECT_EQ(WaitStepped(client_, *push_qt, World()).status, Status::kOk);
  QResult pop_r = WaitStepped(server_, *pop_qt, World());
  ASSERT_EQ(pop_r.status, Status::kOk);
  server_.FreeSga(pop_r.sga);
}

TEST_F(TenantPairTest, AcceptBacklogShedsExcessHandshakes) {
  TenantConfig cfg;
  cfg.accept_backlog = 1;
  ASSERT_EQ(server_.RegisterTenant(6, cfg), Status::kOk);

  auto sqd = server_.Socket(SocketType::kStream);
  ASSERT_TRUE(sqd.ok());
  ASSERT_EQ(server_.Bind(*sqd, {server_.local_ip(), 7200}), Status::kOk);
  ASSERT_EQ(server_.SetQueueTenant(*sqd, 6), Status::kOk);
  ASSERT_EQ(server_.Listen(*sqd, 8), Status::kOk);

  // First connection: admitted and parked in the accept queue (nobody calls Accept yet).
  auto c1 = client_.Socket(SocketType::kStream);
  ASSERT_TRUE(c1.ok());
  auto qt1 = client_.Connect(*c1, {server_.local_ip(), 7200});
  ASSERT_TRUE(qt1.ok());
  EXPECT_EQ(WaitStepped(client_, *qt1, World()).status, Status::kOk);

  // Second connection: the tenant is at accept_backlog=1, so its SYN is shed silently and the
  // client handshake times out rather than completing.
  auto c2 = client_.Socket(SocketType::kStream);
  ASSERT_TRUE(c2.ok());
  auto qt2 = client_.Connect(*c2, {server_.local_ip(), 7200});
  ASSERT_TRUE(qt2.ok());
  // The shed decision lands as soon as the second SYN reaches the listener; keep this loop
  // short so a SYN retransmission cannot fire before we stop the second client below.
  for (int i = 0; i < 2000; i++) {
    server_.PollOnce();
    client_.PollOnce();
  }
  EXPECT_FALSE(client_.IsDone(*qt2));
  EXPECT_GE(server_.tenants().GetStats(6).accept_shed, 1u)
      << "second handshake should have been shed at the admission limit";
  // Stop the shed client before releasing the slot, so its SYN retransmit cannot steal it.
  (void)client_.Close(*c2);

  // Accepting the parked connection frees the slot; a third connect then succeeds.
  auto accept_qt = server_.Accept(*sqd);
  ASSERT_TRUE(accept_qt.ok());
  EXPECT_EQ(WaitStepped(server_, *accept_qt, World()).status, Status::kOk);
  EXPECT_EQ(server_.tenants().GetStats(6).accept_inflight, 0u);
  auto c3 = client_.Socket(SocketType::kStream);
  ASSERT_TRUE(c3.ok());
  auto qt3 = client_.Connect(*c3, {server_.local_ip(), 7200});
  ASSERT_TRUE(qt3.ok());
  EXPECT_EQ(WaitStepped(client_, *qt3, World()).status, Status::kOk);
}

TEST_F(TenantPairTest, InflightWatermarkShedsWithQueueFull) {
  TenantConfig cfg;
  cfg.inflight_watermark = 3;
  ASSERT_EQ(server_.RegisterTenant(5, cfg), Status::kOk);

  // A memory queue keeps pops pending indefinitely — ideal for pinning inflight tokens.
  auto mq = server_.MemoryQueue();
  ASSERT_TRUE(mq.ok());
  ASSERT_EQ(server_.SetQueueTenant(*mq, 5), Status::kOk);

  auto p1 = server_.Pop(*mq);
  auto p2 = server_.Pop(*mq);
  auto p3 = server_.Pop(*mq);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(p3.ok());
  EXPECT_EQ(server_.tokens().InflightForTenant(5), 3u);

  auto p4 = server_.Pop(*mq);
  EXPECT_FALSE(p4.ok());
  EXPECT_EQ(p4.error(), Status::kQueueFull) << "watermark breach must shed with kQueueFull";
  EXPECT_GE(server_.tenants().GetStats(5).op_shed, 1u);

  // The control domain (another queue, default tenant) is unaffected.
  auto mq0 = server_.MemoryQueue();
  ASSERT_TRUE(mq0.ok());
  auto p0 = server_.Pop(*mq0);
  EXPECT_TRUE(p0.ok());
}

TEST_F(TenantPairTest, TenantBudgetSurfacesAsNoMemoryOnOwnQtokensOnly) {
  TenantConfig cfg;
  cfg.mem_budget_bytes = 8 * 1024;
  ASSERT_EQ(server_.RegisterTenant(9, cfg), Status::kOk);
  auto [server_conn, client_conn] = ConnectOnce(9, 7300);

  // A push of foreign (non-DMA) memory takes the copy path, which charges the queue's tenant.
  // 16KB exceeds tenant 9's 8KB budget → kNoMemory on tenant 9's qtoken.
  std::vector<uint8_t> foreign(16 * 1024, 0x5A);
  Sgarray sga = Sgarray::Of(foreign.data(), static_cast<uint32_t>(foreign.size()));
  auto push_qt = server_.Push(server_conn, sga);
  ASSERT_TRUE(push_qt.ok());
  QResult r = WaitStepped(server_, *push_qt, World());
  EXPECT_EQ(r.status, Status::kNoMemory);
  EXPECT_GE(server_.allocator().GetTenantMemStats(9).denials, 1u);

  // The same push on a control-domain connection succeeds: the heap is not exhausted, only
  // tenant 9's budget is.
  auto [server_conn0, client_conn0] = ConnectOnce(kDefaultTenant, 7301);
  auto push0 = server_.Push(server_conn0, sga);
  ASSERT_TRUE(push0.ok());
  EXPECT_EQ(WaitStepped(server_, *push0, World()).status, Status::kOk);
}

TEST_F(TenantPairTest, DmaMallocForHonorsBudget) {
  TenantConfig cfg;
  cfg.mem_budget_bytes = 4 * 1024;
  ASSERT_EQ(server_.RegisterTenant(8, cfg), Status::kOk);
  void* ok = server_.DmaMallocFor(8, 2048);
  EXPECT_NE(ok, nullptr);
  EXPECT_EQ(server_.DmaMallocFor(8, 4096), nullptr) << "over budget with 2KB already charged";
  EXPECT_NE(server_.DmaMalloc(4096), nullptr) << "control domain unaffected";
  server_.DmaFree(ok);
}

TEST_F(TenantPairTest, TenantMetricsAppearInSnapshot) {
  ASSERT_EQ(server_.RegisterTenant(2, TenantConfig{}), Status::kOk);
  bool saw_registered = false;
  bool saw_labelled = false;
  for (const auto& s : server_.metrics().Snapshot()) {
    if (s.name == "tenant.registered") {
      saw_registered = true;
      EXPECT_EQ(s.value, 1);
    }
    if (s.name == "tenant.mem_used{tenant=2}") {
      saw_labelled = true;
    }
  }
  EXPECT_TRUE(saw_registered);
  EXPECT_TRUE(saw_labelled);
}

// --- DemiSan: cross-tenant access aborts with a tenant-naming diagnostic ---

TEST(TenantDemiSanDeathTest, CrossTenantPushAborts) {
#if defined(DEMI_OWNERSHIP_CHECKS)
  PoolAllocator alloc;
  // At or above kZeroCopyThreshold the push pins the object zero-copy, which is where the
  // ownership check lives (smaller pushes copy into the accessor's own budget instead).
  void* p = alloc.AllocFor(2048, /*tenant=*/1);
  ASSERT_NE(p, nullptr);
  // Tenant 2 pushes tenant 1's buffer zero-copy: the pin must abort and name both domains.
  EXPECT_DEATH((void)Buffer::TryFromApp(alloc, p, 2048, /*tenant=*/2),
               "cross-tenant access.*owner tenant=1 accessor tenant=2");
#else
  GTEST_SKIP() << "requires -DDEMI_OWNERSHIP_CHECKS=ON";
#endif
}

TEST(TenantDemiSanDeathTest, ControlDomainAndOwnerMayTouchTaggedBuffers) {
#if defined(DEMI_OWNERSHIP_CHECKS)
  PoolAllocator alloc;
  void* p = alloc.AllocFor(512, 1);
  ASSERT_NE(p, nullptr);
  // The owning tenant and the control domain both pass the check.
  alloc.AssertTenantAccess(p, 1, "owner access");
  alloc.AssertTenantAccess(p, kDefaultTenant, "control-domain access");
  alloc.Free(p);
#else
  GTEST_SKIP() << "requires -DDEMI_OWNERSHIP_CHECKS=ON";
#endif
}

}  // namespace
}  // namespace demi
