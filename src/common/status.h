// Status codes and a lightweight Result<T> for exception-free datapath error handling.
//
// Demikernel's datapath runs at ns-scale; we avoid exceptions on the hot path and return
// Status/Result values instead (C++ Core Guidelines E.
// "Use error codes when exceptions cannot be used").

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <new>
#include <string_view>
#include <utility>

namespace demi {

// Error codes loosely mirroring the errno values the PDPIX prototype returns.
enum class Status : int32_t {
  kOk = 0,
  kInvalidArgument,    // EINVAL
  kBadQueueDescriptor, // EBADF
  kBadQToken,          // stale or unknown queue token
  kWouldBlock,         // EWOULDBLOCK: operation not complete yet
  kConnectionRefused,  // ECONNREFUSED
  kConnectionReset,    // ECONNRESET
  kConnectionAborted,  // ECONNABORTED
  kNotConnected,       // ENOTCONN
  kAlreadyConnected,   // EISCONN
  kAddressInUse,       // EADDRINUSE
  kTimedOut,           // ETIMEDOUT
  kMessageTooLong,     // EMSGSIZE
  kNoMemory,           // ENOMEM
  kNoBufferSpace,      // ENOBUFS
  kQueueFull,          // transient device queue exhaustion
  kEndOfFile,          // orderly remote close / end of log
  kNotSupported,       // EOPNOTSUPP
  kPermissionDenied,   // EACCES
  kNotFound,           // ENOENT
  kIoError,            // EIO
  kProtocolError,      // malformed packet or protocol violation
  kCancelled,          // operation cancelled (queue closed while pending)
  kInternal,           // invariant violation; indicates a bug
};

constexpr std::string_view StatusName(Status s) {
  switch (s) {
    case Status::kOk: return "Ok";
    case Status::kInvalidArgument: return "InvalidArgument";
    case Status::kBadQueueDescriptor: return "BadQueueDescriptor";
    case Status::kBadQToken: return "BadQToken";
    case Status::kWouldBlock: return "WouldBlock";
    case Status::kConnectionRefused: return "ConnectionRefused";
    case Status::kConnectionReset: return "ConnectionReset";
    case Status::kConnectionAborted: return "ConnectionAborted";
    case Status::kNotConnected: return "NotConnected";
    case Status::kAlreadyConnected: return "AlreadyConnected";
    case Status::kAddressInUse: return "AddressInUse";
    case Status::kTimedOut: return "TimedOut";
    case Status::kMessageTooLong: return "MessageTooLong";
    case Status::kNoMemory: return "NoMemory";
    case Status::kNoBufferSpace: return "NoBufferSpace";
    case Status::kQueueFull: return "QueueFull";
    case Status::kEndOfFile: return "EndOfFile";
    case Status::kNotSupported: return "NotSupported";
    case Status::kPermissionDenied: return "PermissionDenied";
    case Status::kNotFound: return "NotFound";
    case Status::kIoError: return "IoError";
    case Status::kProtocolError: return "ProtocolError";
    case Status::kCancelled: return "Cancelled";
    case Status::kInternal: return "Internal";
  }
  return "Unknown";
}

// Result<T>: either a value of T or a non-Ok Status. Minimal std::expected stand-in that keeps
// the datapath allocation-free.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(Status error) : ok_(false), error_(error) {  // NOLINT(google-explicit-constructor)
    assert(error != Status::kOk);
  }
  Result(T value) : ok_(true) {  // NOLINT(google-explicit-constructor)
    new (&storage_) T(std::move(value));
  }
  Result(const Result& other) : ok_(other.ok_), error_(other.error_) {
    if (ok_) {
      new (&storage_) T(other.value());
    }
  }
  Result(Result&& other) noexcept : ok_(other.ok_), error_(other.error_) {
    if (ok_) {
      new (&storage_) T(std::move(other.value()));
    }
  }
  Result& operator=(const Result& other) {
    if (this != &other) {
      this->~Result();
      new (this) Result(other);
    }
    return *this;
  }
  Result& operator=(Result&& other) noexcept {
    if (this != &other) {
      this->~Result();
      new (this) Result(std::move(other));
    }
    return *this;
  }
  ~Result() {
    if (ok_) {
      value().~T();
    }
  }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  [[nodiscard]] Status error() const { return ok_ ? Status::kOk : error_; }

  T& value() {
    assert(ok_);
    return *std::launder(reinterpret_cast<T*>(&storage_));
  }
  const T& value() const {
    assert(ok_);
    return *std::launder(reinterpret_cast<const T*>(&storage_));
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok_ ? value() : std::move(fallback); }

 private:
  bool ok_;
  Status error_ = Status::kOk;
  alignas(T) unsigned char storage_[sizeof(T)];
};

}  // namespace demi

#endif  // SRC_COMMON_STATUS_H_
