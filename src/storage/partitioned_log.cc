#include "src/storage/partitioned_log.h"

#include <algorithm>

#include "src/common/logging.h"

namespace demi {

PartitionedLog::PartitionedLog(SimBlockDevice& device, size_t num_partitions) : device_(device) {
  DEMI_CHECK_MSG(num_partitions > 0, "PartitionedLog needs at least one partition");
  const uint64_t total = device.config().num_blocks;
  DEMI_CHECK_MSG(total >= num_partitions, "fewer blocks than partitions");
  device_.ConfigureQueues(num_partitions);
  const uint64_t per = total / num_partitions;
  const uint64_t rem = total % num_partitions;
  uint64_t next = 0;
  parts_.reserve(num_partitions);
  for (size_t i = 0; i < num_partitions; i++) {
    LogPartition p;
    p.first_block = next;
    p.num_blocks = per + (i < rem ? 1 : 0);
    p.id = static_cast<uint32_t>(i);
    next += p.num_blocks;
    parts_.push_back(p);
  }
}

void PartitionedLog::RecoverAll(std::vector<StitchedRecord>* out) {
  uint64_t max_epoch = 0;
  std::vector<StitchedRecord> all;
  for (const LogPartition& part : parts_) {
    std::vector<LogDevice::RecordInfo> records;
    LogDevice::ScanPartition(device_, part, &records);
    for (const auto& r : records) {
      max_epoch = std::max(max_epoch, r.epoch);
      if (out != nullptr) {
        all.push_back(StitchedRecord{part.id, r.offset, r.len, r.epoch});
      }
    }
  }
  // demilint: atomic(recovery is synchronous — before workers spawn or after they join —
  // so nothing races this seed; relaxed CAS only has to win the modification order)
  uint64_t cur = epoch_.load(std::memory_order_relaxed);
  // demilint: atomic(see load above; CAS loop seeds the epoch past the recovered maximum)
  while (cur <= max_epoch &&
         !epoch_.compare_exchange_weak(  // demilint: atomic(see load above)
             cur, max_epoch + 1, std::memory_order_relaxed)) {
  }
  if (out != nullptr) {
    // Epochs are globally unique (one shared counter), so this is a total order: the global
    // append sequence stitched back together across partitions.
    std::sort(all.begin(), all.end(),
              [](const StitchedRecord& a, const StitchedRecord& b) { return a.epoch < b.epoch; });
    *out = std::move(all);
  }
}

std::vector<uint8_t> PartitionedLog::ReadPayload(const StitchedRecord& rec) const {
  const size_t block_size = device_.config().block_size;
  const uint64_t base = parts_[rec.partition].first_block * block_size;
  std::vector<uint8_t> payload(rec.len);
  if (rec.len > 0) {
    device_.RawRead(base + rec.offset + LogDevice::kHeaderSize, payload);
  }
  return payload;
}

}  // namespace demi
