// ShardAffinity: DemiSan thread-affinity tags for shard-owned state (docs/STATIC_ANALYSIS.md).
//
// The multi-worker runtime is shared-nothing: each shard's heap, qtoken table, flow table and
// TCB slab belong to exactly one worker thread, and the demilint `shard-local` rule guards the
// source. This is the runtime half of that contract: under DEMI_OWNERSHIP_CHECKS the shard's
// structures carry a ShardAffinity that ShardGroup binds to the owning worker at shard spawn,
// and every hot-path access revalidates the calling thread — a cross-shard touch aborts
// deterministically on the FIRST wrong-thread access, naming the owning shard and both thread
// ids, instead of hoping TSan happens to interleave the race. Legitimate cross-domain access
// (post-Join inspection is handled by unbinding at worker exit; explicit handoffs like splice
// bracket themselves with AffinityExemptScope). Unbound tags check nothing, so single-threaded
// tests and benches run unchanged. With the option off, everything here is an empty inline.

#ifndef SRC_COMMON_AFFINITY_H_
#define SRC_COMMON_AFFINITY_H_

#include <cstdint>

#if defined(DEMI_OWNERSHIP_CHECKS)
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#endif

namespace demi {

#if defined(DEMI_OWNERSHIP_CHECKS)

class ShardAffinity {
 public:
  // Binds to the calling thread; call on the owning worker itself at shard spawn
  // (LibOS::BindShardAffinity). Rebinding moves ownership to the caller.
  void Bind(int shard_id) {
    owner_tag_ = CurrentThreadTag();
    shard_id_ = shard_id;
    bound_ = true;
  }
  // Worker-exit release: post-Join control-plane inspection is unchecked by design.
  void Unbind() { bound_ = false; }
  bool bound() const { return bound_; }
  int shard_id() const { return shard_id_; }

  // Aborts with a two-thread diagnostic unless called on the owning thread (or unbound, or
  // inside an AffinityExemptScope).
  void Check(const char* what) const {
    if (!bound_ || exempt_depth_ > 0) {
      return;
    }
    const uint64_t tag = CurrentThreadTag();
    if (tag != owner_tag_) {
      Violation(what, tag);
    }
  }

 private:
  friend class AffinityExemptScope;

  [[noreturn]] void Violation(const char* what, uint64_t accessor_tag) const {
    std::fprintf(stderr,
                 "[demi] DemiSan: cross-shard access: %s: owner shard=%d owner thread=0x%llx "
                 "accessor thread=0x%llx\n",
                 what, shard_id_, static_cast<unsigned long long>(owner_tag_),
                 static_cast<unsigned long long>(accessor_tag));
    std::abort();
  }

  static uint64_t CurrentThreadTag() {
    return std::hash<std::thread::id>{}(std::this_thread::get_id());
  }

  // Depth of AffinityExemptScope nesting on the calling thread (handoff points).
  inline static thread_local int exempt_depth_ = 0;

  uint64_t owner_tag_ = 0;
  int shard_id_ = -1;
  bool bound_ = false;
};

// RAII exemption for annotated handoff points: code inside the scope may touch another
// shard's tagged state on this thread. Use sparingly and say why at the construction site.
class AffinityExemptScope {
 public:
  AffinityExemptScope() { ShardAffinity::exempt_depth_++; }
  ~AffinityExemptScope() { ShardAffinity::exempt_depth_--; }
  AffinityExemptScope(const AffinityExemptScope&) = delete;
  AffinityExemptScope& operator=(const AffinityExemptScope&) = delete;
};

#else  // !DEMI_OWNERSHIP_CHECKS: zero-cost stand-ins.

class ShardAffinity {
 public:
  void Bind(int /*shard_id*/) {}
  void Unbind() {}
  bool bound() const { return false; }
  int shard_id() const { return -1; }
  void Check(const char* /*what*/) const {}
};

class AffinityExemptScope {
 public:
  AffinityExemptScope() = default;
  AffinityExemptScope(const AffinityExemptScope&) = delete;
  AffinityExemptScope& operator=(const AffinityExemptScope&) = delete;
};

#endif

}  // namespace demi

#endif  // SRC_COMMON_AFFINITY_H_
