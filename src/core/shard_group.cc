#include "src/core/shard_group.h"

#include <algorithm>
#include <sstream>

#include "src/common/affinity.h"
#include "src/common/logging.h"

namespace demi {

ShardGroup::ShardGroup(SimNetwork& network, Clock& clock, const Options& options)
    : network_(network),
      clock_(clock),
      options_(options),
      nic_(network, options.base.mac, clock,
           options.num_workers == 0 ? 1 : options.num_workers) {
  if (options_.num_workers == 0) {
    options_.num_workers = 1;
  }
  if (options_.base.disk != nullptr && options_.num_workers > 1) {
    // Partition the shared log device: each shard gets one contiguous block range and one
    // device completion queue; a shared epoch orders records across partitions so recovery
    // stitches them back into one history (docs/STORAGE.md).
    plog_ = std::make_unique<PartitionedLog>(*options_.base.disk, options_.num_workers);
    plog_->RecoverAll();
  }
  shards_.resize(options_.num_workers);
}

ShardGroup::~ShardGroup() {
  RequestStop();
  Join();
}

// Runs on the spawning thread: shard-local state (per-worker tables, stacks, pools) must
// not be touched here while workers are live — demilint enforces the region.
// demilint: control-plane
void ShardGroup::Start(WorkerFn fn) {
  DEMI_CHECK_MSG(threads_.empty(), "ShardGroup::Start called twice");
  fn_ = std::move(fn);
  threads_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; i++) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
  // Wait until every shard is constructed (sockets can be created, ARP is warm) so callers can
  // start clients immediately; worker bodies also only run once all listeners can exist.
  std::unique_lock<std::mutex> lock(init_mu_);
  init_cv_.wait(lock, [this] { return ready_ == options_.num_workers; });
}
// demilint: end-control-plane

// Runs on the worker's own thread: this is the one context allowed to touch shard
// `shard_id`'s state, and only that shard's slot (demilint flags shards_[anything-else]).
// demilint: worker-context
void ShardGroup::WorkerMain(size_t shard_id) {
  Catnip::Config cfg = options_.base;
  cfg.num_workers = options_.num_workers;
  cfg.queue_id = shard_id;
  cfg.shared_nic = &nic_;
  if (plog_ != nullptr) {
    cfg.disk_partition = plog_->partition(shard_id);
    cfg.log_epoch = &plog_->epoch();
    cfg.recover_log = true;  // RecoverAll already scanned; this rebuilds the shard's tail cache
  }
  auto os = std::make_unique<Catnip>(network_, cfg, clock_);
  for (const auto& [ip, mac] : options_.static_arp) {
    os->ethernet().arp().Insert(ip, mac);
  }
  os->metrics().RegisterGauge("shard.id", "shard", "index", "This worker's shard index")
      .Set(static_cast<int64_t>(shard_id));
  os->metrics()
      .RegisterGauge("shard.workers", "shard", "count", "Workers in this shard group")
      .Set(static_cast<int64_t>(options_.num_workers));
  {
    std::unique_lock<std::mutex> lock(init_mu_);
    shards_[shard_id] = std::move(os);
    ready_++;
    init_cv_.notify_all();
    // All-constructed barrier: no worker serves until every listener can be bound, so RSS
    // never steers a SYN at a shard that does not exist yet.
    init_cv_.wait(lock, [this] { return ready_ == options_.num_workers; });
  }
  // DemiSan: tag the shard's heap, qtoken table and TCP state with this thread. From here to
  // the matching unbind, any other thread touching them aborts with a two-thread diagnostic.
  // Also records first-touch NUMA placement for the shard's future superblocks.
  shards_[shard_id]->BindShardAffinity(static_cast<int>(shard_id));
  fn_(shard_id, *shards_[shard_id]);
  // Drain before the thread exits: a pop still in flight when RequestStop lands would leak its
  // qtoken slot and — if it completed after the app stopped waiting — its sga buffer. Disposal
  // happens on the owning worker thread while the shard's heap and stacks are fully alive.
  shards_[shard_id]->DrainPendingTokens();
  // Release the affinity tags on the owning thread itself, so post-Join control-plane
  // inspection and teardown (metric export, destructors) stay exempt by construction.
  shards_[shard_id]->UnbindShardAffinity();
}

void ShardGroup::ServeLoop(Catnip& os, const std::function<void()>& pump) {
  // demilint: fastpath
  // demilint: atomic(stop_ is a latch with no payload; relaxed keeps the poll loop free of
  // fences and the one-iteration observation lag is irrelevant to shutdown)
  while (!stop_.load(std::memory_order_relaxed)) {
    os.PollOnce();
    pump();
  }
  // demilint: end-fastpath
}
// demilint: end-worker-context

// Control plane again: Join/metric aggregation run on the spawning thread and only read
// shard state once workers have quiesced (the thread join is the synchronization edge).
// demilint: control-plane
void ShardGroup::Join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

std::string ShardGroup::ExportMetricsText() const {
  // Annotated control-domain exemption (docs/STATIC_ANALYSIS.md): scraping metrics reads
  // shard-owned instruments from the spawning thread. Counters/gauges are relaxed atomics and
  // callback-backed stats tolerate staleness, so this cross-domain read is deliberate.
  [[maybe_unused]] AffinityExemptScope metrics_scrape;
  std::ostringstream out;
  for (size_t i = 0; i < shards_.size(); i++) {
    out << "# shard=" << i << "\n";
    if (shards_[i] != nullptr) {
      out << shards_[i]->metrics().ExportText();
    }
  }
  out << "# shard=all (rollup)\n";
  for (const auto& s : AggregateSnapshot()) {
    out << s.name << " " << (s.type == MetricType::kHistogram
                                 ? static_cast<int64_t>(s.count)
                                 : s.value)
        << "\n";
  }
  return out.str();
}

std::vector<MetricsRegistry::Sample> ShardGroup::AggregateSnapshot() const {
  // Same control-domain exemption as ExportMetricsText: telemetry reads only.
  [[maybe_unused]] AffinityExemptScope metrics_scrape;
  std::vector<MetricsRegistry::Sample> rollup;
  auto find = [&rollup](const std::string& name) -> MetricsRegistry::Sample* {
    for (auto& s : rollup) {
      if (s.name == name) {
        return &s;
      }
    }
    return nullptr;
  };
  for (size_t i = 0; i < shards_.size(); i++) {
    if (shards_[i] == nullptr) {
      continue;
    }
    for (const MetricsRegistry::Sample& s : shards_[i]->metrics().Snapshot()) {
      if (s.name == "shard.id" || s.name == "nic.queue_id" || s.name == "log.partition_id") {
        continue;  // per-shard identity, meaningless summed
      }
      if (s.component == "net" && i != 0) {
        continue;  // fabric-global counter, identical in every shard's view: count it once
      }
      if (plog_ != nullptr && s.component == "blockdev" && i != 0) {
        continue;  // the shared device's counters are identical in every shard: count once
      }
      MetricsRegistry::Sample* agg = find(s.name);
      if (agg == nullptr) {
        rollup.push_back(s);
        continue;
      }
      if (s.type == MetricType::kHistogram) {
        // Sum counts; keep the quantile fields of the shard that saw the most samples.
        const uint64_t combined = agg->count + s.count;
        if (s.count > agg->count) {
          MetricsRegistry::Sample dens = s;
          dens.count = combined;
          *agg = dens;
        } else {
          agg->count = combined;
        }
      } else if (s.name == "shard.workers") {
        agg->value = s.value;  // identical everywhere; summing would read as workers^2
      } else {
        agg->value += s.value;
      }
    }
  }
  std::sort(rollup.begin(), rollup.end(),
            [](const MetricsRegistry::Sample& a, const MetricsRegistry::Sample& b) {
              return a.component != b.component ? a.component < b.component : a.name < b.name;
            });
  return rollup;
}
// demilint: end-control-plane

}  // namespace demi
