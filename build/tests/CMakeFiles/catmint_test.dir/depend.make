# Empty dependencies file for catmint_test.
# This may be replaced when dependencies are built.
