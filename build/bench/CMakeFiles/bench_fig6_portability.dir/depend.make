# Empty dependencies file for bench_fig6_portability.
# This may be replaced when dependencies are built.
