// Zero-copy network×storage splice benchmark (docs/STORAGE.md): goodput of
// Catnip::Splice in both directions — TCP stream appended to the Cattree log
// (net→disk) and log records streamed out over TCP (disk→net).
//
// Entirely virtual-time: the link is capped at 10 Gbps, below the simulated disk's 2 GB/s, so
// a correctly pipelined splice (disk appends overlapped with reception) is link-bound and the
// measured goodput is deterministic — no kernel scheduler or wall-clock noise.
//
// `--quick` is the perf_smoke_splice ctest gate:
//   net→disk goodput >= 80% of the link bandwidth cap (the pipeline keeps the wire full), and
//   log bounce_bytes == 0 (no payload byte was flattened host-side), and
//   no terminal disk errors.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/liboses/catnip.h"
#include "src/netsim/sim_network.h"
#include "src/storage/sim_block_device.h"

namespace demi {
namespace {

constexpr uint64_t kLinkBps = 10'000'000'000ULL;  // 10 Gbps, under the disk's 2 GB/s
constexpr size_t kChunk = 64 * 1024;

struct World {
  World()
      : net(Link(), /*seed=*/21),
        disk(DiskConfig(), clock),
        server(net, ServerConfig(&disk), clock),
        client(net, ClientConfig(), clock) {
    server.ethernet().arp().Insert(client.local_ip(), MacAddr{0xC});
    client.ethernet().arp().Insert(server.local_ip(), MacAddr{0x5});
  }

  static LinkConfig Link() {
    LinkConfig l;
    l.bandwidth_bps = kLinkBps;
    return l;
  }

  static SimBlockDevice::Config DiskConfig() {
    SimBlockDevice::Config c;
    c.num_blocks = 32768;  // 128 MB: headroom for the largest table row
    return c;
  }

  static Catnip::Config ServerConfig(SimBlockDevice* d) {
    return Catnip::Config{MacAddr{0x5}, Ipv4Addr::FromOctets(10, 9, 0, 1), TcpConfig{}, d};
  }

  static Catnip::Config ClientConfig() {
    return Catnip::Config{MacAddr{0xC}, Ipv4Addr::FromOctets(10, 9, 0, 2), TcpConfig{}, nullptr};
  }

  void Step() {
    server.PollOnce();
    client.PollOnce();
    TimeNs next = 0;
    const auto consider = [&next](TimeNs t) {
      if (t != 0 && (next == 0 || t < next)) {
        next = t;
      }
    };
    consider(net.NextDeliveryTime());
    consider(server.scheduler().NextTimerDeadline());
    consider(client.scheduler().NextTimerDeadline());
    consider(disk.NextCompletionTime());
    if (next > clock.Now()) {
      clock.SetTime(next);
    } else {
      clock.Advance(kMicrosecond);
    }
  }

  template <typename Pred>
  bool RunUntil(Pred&& pred, int max_steps = 8'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) {
        return true;
      }
      Step();
    }
    return pred();
  }

  // Establishes a client→server connection; returns {client qd, server-side conn qd}.
  bool Connect(QueueDesc* cqd_out, QueueDesc* sqd_out) {
    auto lqd = server.Socket(SocketType::kStream);
    if (server.Bind(*lqd, {server.local_ip(), 7300}) != Status::kOk ||
        server.Listen(*lqd, 4) != Status::kOk) {
      return false;
    }
    auto aq = server.Accept(*lqd);
    auto cqd = client.Socket(SocketType::kStream);
    auto cq = client.Connect(*cqd, {server.local_ip(), 7300});
    if (!aq.ok() || !cq.ok() ||
        !RunUntil([&] { return client.IsDone(*cq) && server.IsDone(*aq); })) {
      return false;
    }
    auto acc = server.TryTake(*aq);
    if (client.TryTake(*cq)->status != Status::kOk || acc->status != Status::kOk) {
      return false;
    }
    *cqd_out = *cqd;
    *sqd_out = acc->new_qd;
    return true;
  }

  VirtualClock clock;
  SimNetwork net;
  SimBlockDevice disk;
  Catnip server;
  Catnip client;
};

double ToGbps(size_t bytes, DurationNs elapsed) {
  return elapsed == 0 ? 0 : static_cast<double>(bytes) * 8.0 / static_cast<double>(elapsed);
}

struct SpliceRun {
  bool ok = false;
  double gbps = 0;
  uint64_t bounce_bytes = 0;
  uint64_t terminal_errors = 0;
};

// net→disk: the client streams `bytes` into the server, which splices the connection into its
// log. Goodput is measured in virtual time from the first push to splice completion.
SpliceRun RunNetToDisk(size_t bytes) {
  SpliceRun out;
  World w;
  QueueDesc cqd, sqd;
  if (!w.Connect(&cqd, &sqd)) {
    return out;
  }
  auto fqd = w.server.Open("bench");
  auto splice_qt = w.server.Splice(sqd, *fqd);
  if (!fqd.ok() || !splice_qt.ok()) {
    return out;
  }

  std::vector<uint8_t> chunk(kChunk, 0x5C);
  const TimeNs start = w.clock.Now();
  for (size_t off = 0; off < bytes; off += kChunk) {
    void* buf = w.client.DmaMalloc(kChunk);
    if (buf == nullptr) {
      return out;
    }
    std::memcpy(buf, chunk.data(), kChunk);
    auto push = w.client.Push(cqd, Sgarray::Of(buf, kChunk));
    w.client.DmaFree(buf);
    if (!push.ok()) {
      return out;
    }
    // Keep the producer a bounded distance ahead of the wire so the sender heap stays flat;
    // the link cap, not this loop, sets the pace.
    while (w.client.allocator().GetStats().deferred_frees > 64) {
      w.Step();
    }
  }
  if (w.client.Close(cqd) != Status::kOk) {
    return out;
  }
  if (!w.RunUntil([&] { return w.server.IsDone(*splice_qt); })) {
    return out;
  }
  auto r = w.server.TryTake(*splice_qt);
  if (r->status != Status::kOk || r->bytes != bytes) {
    return out;
  }
  const auto& ls = w.server.storage()->log().stats();
  out.ok = true;
  out.gbps = ToGbps(bytes, w.clock.Now() - start);
  out.bounce_bytes = ls.bounce_bytes;
  out.terminal_errors = ls.io_terminal_errors;
  return out;
}

// disk→net: `bytes` are appended to the server's log first, then spliced out over TCP while the
// client drains. Goodput spans the splice start to the last byte popped.
SpliceRun RunDiskToNet(size_t bytes) {
  SpliceRun out;
  World w;
  QueueDesc cqd, sqd;
  if (!w.Connect(&cqd, &sqd)) {
    return out;
  }
  // Preload the log through a loopback splice-free path: plain pushes on a file queue.
  auto fqd = w.server.Open("bench");
  if (!fqd.ok()) {
    return out;
  }
  std::vector<uint8_t> chunk(kChunk, 0x5D);
  for (size_t off = 0; off < bytes; off += kChunk) {
    void* buf = w.server.DmaMalloc(kChunk);
    if (buf == nullptr) {
      return out;
    }
    std::memcpy(buf, chunk.data(), kChunk);
    auto push = w.server.Push(*fqd, Sgarray::Of(buf, kChunk));
    w.server.DmaFree(buf);
    if (!push.ok() || !w.RunUntil([&] { return w.server.IsDone(*push); }) ||
        w.server.TryTake(*push)->status != Status::kOk) {
      return out;
    }
  }

  auto replay_qd = w.server.Open("bench");
  const TimeNs start = w.clock.Now();
  auto splice_qt = w.server.Splice(*replay_qd, sqd);
  if (!replay_qd.ok() || !splice_qt.ok()) {
    return out;
  }
  size_t received = 0;
  while (received < bytes) {
    auto pop = w.client.Pop(cqd);
    if (!pop.ok() || !w.RunUntil([&] { return w.client.IsDone(*pop); })) {
      return out;
    }
    auto r = w.client.TryTake(*pop);
    if (r->status != Status::kOk) {
      return out;
    }
    received += r->sga.TotalBytes();
    w.client.FreeSga(r->sga);
  }
  const TimeNs end = w.clock.Now();
  if (!w.RunUntil([&] { return w.server.IsDone(*splice_qt); })) {
    return out;
  }
  if (w.server.TryTake(*splice_qt)->status != Status::kOk) {
    return out;
  }
  const auto& ls = w.server.storage()->log().stats();
  out.ok = true;
  out.gbps = ToGbps(bytes, end - start);
  out.bounce_bytes = ls.bounce_bytes;
  out.terminal_errors = ls.io_terminal_errors;
  return out;
}

int Run(bool quick) {
  const double link_gbps = static_cast<double>(kLinkBps) / 1e9;
  if (quick) {
    constexpr size_t kQuickBytes = 12 * 1024 * 1024;
    const SpliceRun r = RunNetToDisk(kQuickBytes);
    const double floor_gbps = 0.8 * link_gbps;
    std::printf("perf_smoke_splice: net->disk %.2f Gbps (floor %.2f of %.0f Gbps link), "
                "bounce=%llu, terminal_errors=%llu\n",
                r.gbps, floor_gbps, link_gbps,
                static_cast<unsigned long long>(r.bounce_bytes),
                static_cast<unsigned long long>(r.terminal_errors));
    if (!r.ok) {
      std::fprintf(stderr, "FAIL: splice did not complete cleanly\n");
      return 1;
    }
    if (r.gbps < floor_gbps) {
      std::fprintf(stderr, "FAIL: goodput below 80%% of the link cap — pipeline stall\n");
      return 1;
    }
    if (r.bounce_bytes != 0) {
      std::fprintf(stderr, "FAIL: splice left the zero-copy path (bounce_bytes != 0)\n");
      return 1;
    }
    if (r.terminal_errors != 0) {
      std::fprintf(stderr, "FAIL: terminal disk errors on a clean device\n");
      return 1;
    }
    std::printf("PASS\n");
    return 0;
  }

  std::printf("splice goodput over a %.0f Gbps link (disk: 2 GB/s, virtual time)\n", link_gbps);
  std::printf("%10s %14s %14s\n", "size", "net->disk", "disk->net");
  for (const size_t mb : {4, 16, 64}) {
    const SpliceRun in = RunNetToDisk(mb * 1024 * 1024);
    const SpliceRun outr = RunDiskToNet(mb * 1024 * 1024);
    std::printf("%8zuMB %11.2f Gb %11.2f Gb%s\n", mb, in.gbps, outr.gbps,
                (in.ok && outr.ok) ? "" : "  (INCOMPLETE)");
  }
  return 0;
}

}  // namespace
}  // namespace demi

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    }
  }
  return demi::Run(quick);
}
