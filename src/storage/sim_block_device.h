// SimBlockDevice: the simulated NVMe/SPDK substrate.
//
// Substitution for an Intel Optane SSD driven through SPDK (DESIGN.md §2): an asynchronous,
// block-addressed submit/poll interface with a configurable latency model (default tuned to the
// paper's 3D-XPoint device: ~10 µs writes). Cattree drives this exactly as it would drive SPDK:
// submit, yield, poll completions from the fast-path coroutine.

#ifndef SRC_STORAGE_SIM_BLOCK_DEVICE_H_
#define SRC_STORAGE_SIM_BLOCK_DEVICE_H_

#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"

namespace demi {

class FaultInjector;
class MetricsRegistry;
class Tracer;

class SimBlockDevice {
 public:
  struct Config {
    size_t block_size = 4096;
    size_t num_blocks = 16384;  // 64 MB
    DurationNs read_latency = 7 * kMicrosecond;
    DurationNs write_latency = 10 * kMicrosecond;
    uint64_t bandwidth_bytes_per_sec = 2'000'000'000ULL;  // 2 GB/s; 0 = infinite
    size_t queue_depth = 64;
  };

  struct Completion {
    uint64_t cookie;
    Status status;
  };

  SimBlockDevice(const Config& config, Clock& clock);

  // Submits an asynchronous write of `data` (must be a whole number of blocks) at `lba`.
  // The data is captured at submit time (models DMA from the submission ring).
  [[nodiscard]] Status SubmitWrite(uint64_t lba, std::span<const uint8_t> data, uint64_t cookie);

  // Submits an asynchronous read of `out.size()` bytes (whole blocks) at `lba`; `out` must stay
  // valid until the completion is polled. Data lands in `out` when the completion is delivered.
  [[nodiscard]] Status SubmitRead(uint64_t lba, std::span<uint8_t> out, uint64_t cookie);

  // Polls for finished operations; returns the number written to `out`.
  size_t PollCompletions(std::span<Completion> out);

  // Earliest pending completion time (0 if idle) for stepped VirtualClock tests.
  TimeNs NextCompletionTime() const;

  const Config& config() const { return config_; }
  size_t CapacityBytes() const { return config_.block_size * config_.num_blocks; }

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t queue_full_rejections = 0;
    uint64_t io_errors = 0;  // completions delivered with a non-kOk status (injected faults)
  };
  const Stats& stats() const { return stats_; }

  // Registers the blockdev.* counters as callback gauges (docs/OBSERVABILITY.md). Called by
  // whichever libOS is driving this device; the registry must not outlive the device.
  void RegisterMetrics(MetricsRegistry& registry);
  // Attaches a tracer for kDiskSubmit/kDiskComplete events.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  // Optional chaos hook (null by default): consulted per submitted op for injected transient
  // I/O errors, latency spikes and crash-point torn writes. See src/faults/fault_injector.h.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  // Direct synchronous access for tests/recovery tooling (not a datapath API).
  void RawRead(uint64_t byte_offset, std::span<uint8_t> out) const;

 private:
  struct Pending {
    TimeNs complete_at;
    uint64_t seq;
    uint64_t cookie;
    bool is_read;
    uint64_t lba;
    Status status = Status::kOk;      // injected fault outcome, decided at submit time
    size_t media_bytes = 0;           // writes: how much of write_data reaches the media
    std::vector<uint8_t> write_data;  // writes: captured data
    std::span<uint8_t> read_target;   // reads: caller's destination
    bool operator>(const Pending& o) const {
      return complete_at != o.complete_at ? complete_at > o.complete_at : seq > o.seq;
    }
  };

  TimeNs CompletionTimeFor(size_t bytes, bool is_read);

  Config config_;
  Clock& clock_;
  std::vector<uint8_t> media_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> pending_;
  uint64_t next_seq_ = 0;
  TimeNs device_free_at_ = 0;
  Stats stats_;
  Tracer* tracer_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

}  // namespace demi

#endif  // SRC_STORAGE_SIM_BLOCK_DEVICE_H_
